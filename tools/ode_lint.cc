// ode_lint: lexical project-invariant checker.  See tools/lint/lint_rules.h
// for the rule catalogue.  Exit status 0 = clean, 1 = violations, 2 = usage
// or I/O error.
//
// Usage:  ode_lint [--root <repo-root>]
//
// Scans src/, tools/, tests/, bench/, and examples/ under the root for .h
// and .cc files and prints one "file:line: [rule] message" per violation.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/lint/lint_rules.h"

namespace fs = std::filesystem;

namespace {

bool ReadFile(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: ode_lint [--root <repo-root>]\n";
      return 0;
    } else {
      std::cerr << "ode_lint: unknown argument '" << arg << "'\n";
      return 2;
    }
  }
  std::error_code ec;
  root = fs::canonical(root, ec);
  if (ec) {
    std::cerr << "ode_lint: cannot resolve root: " << ec.message() << "\n";
    return 2;
  }

  std::vector<std::string> rel_paths;
  for (const char* top : {"src", "tools", "tests", "bench", "examples"}) {
    const fs::path dir = root / top;
    if (!fs::is_directory(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      std::string rel = fs::relative(entry.path(), root).generic_string();
      if (ode::lint::ShouldScan(rel)) rel_paths.push_back(std::move(rel));
    }
  }
  std::sort(rel_paths.begin(), rel_paths.end());

  size_t files_scanned = 0;
  size_t violations = 0;
  for (const std::string& rel : rel_paths) {
    std::string content;
    if (!ReadFile(root / rel, &content)) {
      std::cerr << "ode_lint: cannot read " << rel << "\n";
      return 2;
    }
    ++files_scanned;
    for (const ode::lint::Issue& issue :
         ode::lint::LintSource(rel, content)) {
      std::cout << ode::lint::FormatIssue(issue) << "\n";
      ++violations;
    }
  }

  if (violations > 0) {
    std::cerr << "ode_lint: " << violations << " violation(s) in "
              << files_scanned << " file(s) scanned\n";
    return 1;
  }
  std::cerr << "ode_lint: clean (" << files_scanned << " files scanned)\n";
  return 0;
}
