#include "tools/lint/lint_rules.h"

#include <algorithm>
#include <cctype>
#include <regex>
#include <set>
#include <sstream>

namespace ode {
namespace lint {

namespace {

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) lines.push_back(cur);
  return lines;
}

// ---------------------------------------------------------------------------
// raw-io
// ---------------------------------------------------------------------------

/// Files allowed to speak to the filesystem directly: the Env implementations
/// themselves (everything else must route through ode::Env so fault
/// injection and the crash matrix see every I/O).
const std::set<std::string> kRawIoAllowed = {
    "src/storage/env.h",
    "src/storage/env.cc",
    "src/storage/fault_env.h",
    "src/storage/fault_env.cc",
};

void CheckRawIo(const std::string& path,
                const std::vector<std::string>& stripped_lines,
                std::vector<Issue>* issues) {
  // Production code only; tests may poke at artifact files directly.
  if (!StartsWith(path, "src/") && !StartsWith(path, "tools/")) return;
  if (kRawIoAllowed.count(path) > 0) return;
  static const std::regex kCall(
      R"((^|[^A-Za-z0-9_])(open|fopen|fsync|fdatasync|rename|unlink|ftruncate|pread|pwrite)\s*\()");
  for (size_t i = 0; i < stripped_lines.size(); ++i) {
    std::smatch m;
    if (std::regex_search(stripped_lines[i], m, kCall)) {
      issues->push_back(Issue{
          path, static_cast<int>(i + 1), "raw-io",
          "raw filesystem call '" + m[2].str() +
              "' outside storage/env*; route it through ode::Env so fault "
              "injection and the crash matrix cover it"});
    }
  }
}

// ---------------------------------------------------------------------------
// raw-clock
// ---------------------------------------------------------------------------

// Direct std::chrono::system_clock reads outside util/ bypass the injectable
// Clock (util/clock.h), so fault-injection and crash-matrix runs lose their
// deterministic timeline.  The two sanctioned readers — util/clock.cc and
// the event log's lock-free wall-micros source — live under src/util/.
void CheckRawClock(const std::string& path,
                   const std::vector<std::string>& stripped_lines,
                   std::vector<Issue>* issues) {
  if (StartsWith(path, "src/util/")) return;
  static const std::regex kSystemClock(R"(\bsystem_clock\b)");
  for (size_t i = 0; i < stripped_lines.size(); ++i) {
    if (std::regex_search(stripped_lines[i], kSystemClock)) {
      issues->push_back(Issue{
          path, static_cast<int>(i + 1), "raw-clock",
          "direct system_clock use outside src/util/; take timestamps from "
          "ode::Clock / EventLog::NowMicros() so injected clocks and the "
          "crash matrix stay deterministic"});
    }
  }
}

// ---------------------------------------------------------------------------
// todo-date
// ---------------------------------------------------------------------------

// Runs on comment-preserving, string-stripped text: to-do markers live in
// comments, but a string literal that merely mentions one (test fixtures,
// the lint messages themselves) is not an intention that can go stale.
void CheckTodoDate(const std::string& path,
                   const std::vector<std::string>& raw_lines,
                   std::vector<Issue>* issues) {
  static const std::regex kTodo(R"(\bTODO\b)");
  static const std::regex kDatedTodo(
      R"(\bTODO\((\w[\w.-]*,\s*)?\d{4}-\d{2}-\d{2})");
  for (size_t i = 0; i < raw_lines.size(); ++i) {
    if (std::regex_search(raw_lines[i], kTodo) &&
        !std::regex_search(raw_lines[i], kDatedTodo)) {
      issues->push_back(Issue{
          path, static_cast<int>(i + 1), "todo-date",
          "TODO without a date; write TODO(YYYY-MM-DD: ...) or "
          "TODO(name, YYYY-MM-DD: ...) so it can go stale visibly"});
    }
  }
}

// ---------------------------------------------------------------------------
// mutex-guard (+ raw-mutex)
// ---------------------------------------------------------------------------

struct BraceFrame {
  bool is_class = false;
  bool has_guard = false;
  std::vector<std::pair<int, std::string>> mutex_members;  // line, type.
};

bool LooksLikeClassPreamble(const std::string& preamble) {
  static const std::regex kClass(R"(\b(class|struct)\b)");
  static const std::regex kEnum(R"(\benum\b)");
  return std::regex_search(preamble, kClass) &&
         !std::regex_search(preamble, kEnum);
}

void CheckMutexMembers(const std::string& path, const std::string& stripped,
                       std::vector<Issue>* issues) {
  if (path == "src/util/mutex.h") return;  // The annotated wrappers.
  static const std::regex kMutexMember(
      R"(^\s*(mutable\s+)?((std::)?(mutex|shared_mutex|recursive_mutex)|(ode::)?(Mutex|SharedMutex))\s+[A-Za-z_]\w*\s*$)");
  static const std::regex kStdMutex(
      R"(^\s*(mutable\s+)?(std::)?(mutex|shared_mutex|recursive_mutex)\b)");

  std::vector<BraceFrame> stack;
  std::string statement;  // Text since the last ; { or } at this nesting.
  std::string preamble;   // Same, but kept for brace-open classification.
  int line = 1;
  for (char c : stripped) {
    if (c == '\n') {
      ++line;
      statement.push_back(' ');
      preamble.push_back(' ');
      continue;
    }
    if (c == '{') {
      BraceFrame frame;
      frame.is_class = LooksLikeClassPreamble(preamble);
      stack.push_back(frame);
      statement.clear();
      preamble.clear();
      continue;
    }
    if (c == '}') {
      if (!stack.empty()) {
        BraceFrame frame = stack.back();
        stack.pop_back();
        if (frame.is_class && !frame.mutex_members.empty() &&
            !frame.has_guard) {
          for (const auto& [mline, mtype] : frame.mutex_members) {
            issues->push_back(Issue{
                path, mline, "mutex-guard",
                "class declares a " + mtype +
                    " member but annotates no field with ODE_GUARDED_BY; "
                    "state what the lock protects so clang -Wthread-safety "
                    "can check it"});
          }
        }
      }
      statement.clear();
      preamble.clear();
      continue;
    }
    if (c == ';') {
      if (!stack.empty() && stack.back().is_class) {
        if (statement.find("ODE_GUARDED_BY") != std::string::npos ||
            statement.find("ODE_PT_GUARDED_BY") != std::string::npos) {
          stack.back().has_guard = true;
        }
        // Access-specifier labels don't end in ';', so "private: Mutex mu_"
        // arrives as one statement; peel the labels off before matching.
        static const std::regex kLabel(R"(^\s*(public|private|protected)\s*:)");
        std::smatch lm;
        while (std::regex_search(statement, lm, kLabel)) {
          statement = lm.suffix().str();
        }
        std::smatch m;
        if (std::regex_match(statement, m, kMutexMember)) {
          std::string type = m[2].str();
          stack.back().mutex_members.emplace_back(line, type);
          if (StartsWith(path, "src/") &&
              std::regex_search(statement, kStdMutex)) {
            issues->push_back(Issue{
                path, line, "raw-mutex",
                "raw " + type +
                    " member in src/; use ode::Mutex / ode::SharedMutex "
                    "(util/mutex.h) so the capability annotations apply"});
          }
        }
      }
      statement.clear();
      preamble.clear();
      continue;
    }
    statement.push_back(c);
    preamble.push_back(c);
  }
}

// ---------------------------------------------------------------------------
// foreach-caller
// ---------------------------------------------------------------------------

/// The ForEach* wrappers deprecated in PR 4 were removed outright in PR 9;
/// this rule keeps them from growing back.  There is no grandfather list —
/// every caller iterates with ObjectCursor/VersionCursor/TypeCursor/
/// ClusterCursor (core/cursor.h).
void CheckForEachCallers(const std::string& path,
                         const std::vector<std::string>& stripped_lines,
                         std::vector<Issue>* issues) {
  static const std::regex kForEach(
      R"(\bForEach(Object|Version|Type|InCluster)\s*\()");
  for (size_t i = 0; i < stripped_lines.size(); ++i) {
    std::smatch m;
    if (std::regex_search(stripped_lines[i], m, kForEach)) {
      issues->push_back(Issue{
          path, static_cast<int>(i + 1), "foreach-caller",
          "call to removed Database::ForEach" + m[1].str() +
              "; use the cursor API (core/cursor.h) instead"});
    }
  }
}

// ---------------------------------------------------------------------------
// unchecked-cast
// ---------------------------------------------------------------------------

/// Files whose casts/copies ARE the audited byte-access primitive: the rest
/// of the tree reaches bytes through these, so flagging them would just
/// force suppressions onto every line of the helper itself.
const std::set<std::string> kUncheckedCastAllowed = {
    "src/util/byte_buffer.h",       // Float<->bits punning, sizeof-bounded.
    "src/util/coding.h",            // Fixed-width codecs, sizeof-bounded.
    "src/storage/env.cc",           // Whole-buffer file I/O primitives.
    "src/storage/fault_env.cc",
    "src/storage/disk_manager.cc",  // kPageSize-bounded page transfer.
    "src/storage/buffer_pool.cc",   // kPageSize-bounded frame copy.
};

void CheckUncheckedCast(const std::string& path,
                        const std::vector<std::string>& stripped_lines,
                        std::vector<Issue>* issues) {
  // Production code only: tests and benches build hostile bytes on purpose.
  if (!StartsWith(path, "src/") && !StartsWith(path, "tools/")) return;
  // The fuzz harnesses' whole job is handing raw attacker bytes to
  // decoders; their casts of the input buffer are the harness idiom.
  if (StartsWith(path, "src/fuzz/")) return;
  if (kUncheckedCastAllowed.count(path) > 0) return;
  static const std::regex kCast(R"(\breinterpret_cast\s*<)");
  static const std::regex kMemcpy(R"((^|[^A-Za-z0-9_:])(std::)?memcpy\s*\()");
  for (size_t i = 0; i < stripped_lines.size(); ++i) {
    if (std::regex_search(stripped_lines[i], kCast)) {
      issues->push_back(Issue{
          path, static_cast<int>(i + 1), "unchecked-cast",
          "reinterpret_cast in a decode-capable path; consume bytes through "
          "BufferReader / coding.h / Slice (bounds-checked), or state why "
          "this cast cannot read out of bounds with an allow marker"});
    }
    if (std::regex_search(stripped_lines[i], kMemcpy)) {
      issues->push_back(Issue{
          path, static_cast<int>(i + 1), "unchecked-cast",
          "raw memcpy in a decode-capable path; copy through the "
          "bounds-checked helpers, or state why the length was just "
          "validated with an allow marker"});
    }
  }
}

// ---------------------------------------------------------------------------
// include-guard
// ---------------------------------------------------------------------------

std::string ExpectedGuard(const std::string& path) {
  std::string rel = StartsWith(path, "src/") ? path.substr(4) : path;
  std::string guard = "ODE_";
  for (char c : rel) {
    if (c == '/' || c == '.') {
      guard.push_back('_');
    } else {
      guard.push_back(
          static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
    }
  }
  guard.push_back('_');
  return guard;
}

void CheckIncludeGuard(const std::string& path,
                       const std::vector<std::string>& raw_lines,
                       std::vector<Issue>* issues) {
  if (!EndsWith(path, ".h")) return;
  const std::string expected = ExpectedGuard(path);
  static const std::regex kIfndef(R"(^\s*#\s*ifndef\s+(\w+)\s*$)");
  static const std::regex kDefine(R"(^\s*#\s*define\s+(\w+)\s*$)");
  static const std::regex kPragmaOnce(R"(^\s*#\s*pragma\s+once\b)");
  for (size_t i = 0; i < raw_lines.size(); ++i) {
    if (std::regex_search(raw_lines[i], kPragmaOnce)) {
      issues->push_back(Issue{path, static_cast<int>(i + 1), "include-guard",
                              "#pragma once; use the canonical guard " +
                                  expected + " like the rest of the tree"});
      return;
    }
    std::smatch m;
    if (std::regex_match(raw_lines[i], m, kIfndef)) {
      if (m[1].str() != expected) {
        issues->push_back(Issue{path, static_cast<int>(i + 1),
                                "include-guard",
                                "guard '" + m[1].str() +
                                    "' does not match the canonical '" +
                                    expected + "'"});
        return;
      }
      // The very next line must #define the same token.
      std::smatch d;
      if (i + 1 >= raw_lines.size() ||
          !std::regex_match(raw_lines[i + 1], d, kDefine) ||
          d[1].str() != expected) {
        issues->push_back(Issue{path, static_cast<int>(i + 2),
                                "include-guard",
                                "#ifndef " + expected +
                                    " is not followed by the matching "
                                    "#define"});
      }
      return;
    }
  }
  issues->push_back(Issue{path, 1, "include-guard",
                          "header has no include guard; expected #ifndef " +
                              expected});
}

}  // namespace

// ---------------------------------------------------------------------------
// Shared machinery
// ---------------------------------------------------------------------------

namespace {

/// Shared lexer for both public views.  `keep_comments` emits comment text
/// verbatim (used by todo-date, which wants comments but not strings);
/// string/char literal bodies are always dropped (quotes kept), and line
/// structure is always preserved.
std::string StripImpl(const std::string& content, bool keep_comments) {
  std::string out;
  out.reserve(content.size());
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString
  };
  State state = State::kCode;
  std::string raw_delim;  // For R"delim( ... )delim".
  size_t i = 0;
  const size_t n = content.size();
  while (i < n) {
    const char c = content[i];
    const char next = i + 1 < n ? content[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          if (keep_comments) out.append("//");
          state = State::kLineComment;
          i += 2;
        } else if (c == '/' && next == '*') {
          if (keep_comments) out.append("/*");
          state = State::kBlockComment;
          i += 2;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || !(std::isalnum(static_cast<unsigned char>(
                                    content[i - 1])) ||
                                content[i - 1] == '_'))) {
          // Raw string literal: R"delim( ... )delim".
          size_t j = i + 2;
          raw_delim.clear();
          while (j < n && content[j] != '(') raw_delim.push_back(content[j++]);
          out.append("\"\"");
          i = j + 1;
          state = State::kRawString;
        } else if (c == '"') {
          out.push_back('"');
          state = State::kString;
          ++i;
        } else if (c == '\'') {
          out.push_back('\'');
          state = State::kChar;
          ++i;
        } else {
          out.push_back(c);
          ++i;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          out.push_back('\n');
          state = State::kCode;
        } else if (keep_comments) {
          out.push_back(c);
        }
        ++i;
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          if (keep_comments) out.append("*/");
          state = State::kCode;
          i += 2;
        } else {
          if (c == '\n') {
            out.push_back('\n');
          } else if (keep_comments) {
            out.push_back(c);
          }
          ++i;
        }
        break;
      case State::kString:
        if (c == '\\') {
          i += 2;
        } else if (c == '"') {
          out.push_back('"');
          state = State::kCode;
          ++i;
        } else {
          if (c == '\n') out.push_back('\n');  // Unterminated; keep lines.
          ++i;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          i += 2;
        } else if (c == '\'') {
          out.push_back('\'');
          state = State::kCode;
          ++i;
        } else {
          ++i;
        }
        break;
      case State::kRawString: {
        const std::string close = ")" + raw_delim + "\"";
        if (content.compare(i, close.size(), close) == 0) {
          state = State::kCode;
          i += close.size();
        } else {
          if (c == '\n') out.push_back('\n');
          ++i;
        }
        break;
      }
    }
  }
  return out;
}

}  // namespace

std::string StripCommentsAndStrings(const std::string& content) {
  return StripImpl(content, /*keep_comments=*/false);
}

bool ShouldScan(const std::string& path) {
  if (!(EndsWith(path, ".h") || EndsWith(path, ".cc"))) return false;
  // The negative-compilation snippets violate rules on purpose.
  if (StartsWith(path, "tests/static/")) return false;
  return StartsWith(path, "src/") || StartsWith(path, "tools/") ||
         StartsWith(path, "tests/") || StartsWith(path, "bench/") ||
         StartsWith(path, "examples/");
}

std::vector<Issue> LintSource(const std::string& path,
                              const std::string& content) {
  std::vector<Issue> issues;
  const std::vector<std::string> raw_lines = SplitLines(content);
  const std::string stripped = StripCommentsAndStrings(content);
  const std::vector<std::string> stripped_lines = SplitLines(stripped);
  // Comments kept, string bodies dropped: a to-do marker in a comment is
  // live, the same word inside a string literal is data.
  const std::vector<std::string> comment_lines =
      SplitLines(StripImpl(content, /*keep_comments=*/true));

  CheckRawIo(path, stripped_lines, &issues);
  CheckRawClock(path, stripped_lines, &issues);
  CheckTodoDate(path, comment_lines, &issues);
  CheckMutexMembers(path, stripped, &issues);
  CheckForEachCallers(path, stripped_lines, &issues);
  CheckUncheckedCast(path, stripped_lines, &issues);
  CheckIncludeGuard(path, raw_lines, &issues);

  // Per-site suppression: `// ode_lint: allow(<rule>)` on the flagged line
  // or the line above keeps the issue out of the report.  Grep for the
  // marker to audit every exemption in the tree.
  issues.erase(std::remove_if(issues.begin(), issues.end(),
                              [&](const Issue& issue) {
                                const std::string marker =
                                    "ode_lint: allow(" + issue.rule + ")";
                                for (int l : {issue.line - 1, issue.line - 2}) {
                                  if (l >= 0 &&
                                      l < static_cast<int>(raw_lines.size()) &&
                                      raw_lines[l].find(marker) !=
                                          std::string::npos) {
                                    return true;
                                  }
                                }
                                return false;
                              }),
               issues.end());

  std::sort(issues.begin(), issues.end(), [](const Issue& a, const Issue& b) {
    return a.line != b.line ? a.line < b.line : a.rule < b.rule;
  });
  return issues;
}

std::string FormatIssue(const Issue& issue) {
  std::ostringstream os;
  os << issue.file << ":" << issue.line << ": [" << issue.rule << "] "
     << issue.message;
  return os.str();
}

}  // namespace lint
}  // namespace ode
