#ifndef ODE_TOOLS_LINT_LINT_RULES_H_
#define ODE_TOOLS_LINT_LINT_RULES_H_

#include <string>
#include <vector>

namespace ode {
namespace lint {

// ode_lint: project-invariant checks that clang-tidy cannot express.
//
// Each rule encodes a repo rule that has bitten (or would bite) at runtime:
//
//  raw-io         Filesystem syscalls (open/fsync/fdatasync/rename/unlink/
//                 ftruncate/pread/pwrite/fopen) outside storage/env*.cc and
//                 storage/fault_env*.cc.  Everything must go through
//                 ode::Env, or the fault-injection and crash-matrix
//                 machinery silently loses coverage of that I/O.
//  raw-clock      Direct std::chrono::system_clock use outside src/util/.
//                 Timestamps must come from the injectable ode::Clock
//                 (util/clock.h) or EventLog::NowMicros(), or fault- and
//                 crash-injection runs lose their deterministic timeline.
//  todo-date      A TODO must carry an ISO date — `TODO(2026-08-07: ...)` or
//                 `TODO(name, 2026-08-07: ...)` — so stale intentions are
//                 identifiable instead of immortal.
//  mutex-guard    A class declaring a mutex member (std::mutex,
//                 std::shared_mutex, ode::Mutex, ode::SharedMutex) must
//                 annotate at least one field with ODE_GUARDED_BY /
//                 ODE_PT_GUARDED_BY in the same class body.  A lock that
//                 guards nothing it can name is an unstated invariant the
//                 thread-safety analysis cannot check.  Raw std:: mutex
//                 types are additionally flagged in src/ (use the annotated
//                 wrappers from util/mutex.h).
//  foreach-caller The callback scans Database::ForEach{Object,Version,Type,
//                 InCluster} are deprecated in favor of cursors
//                 (core/cursor.h).  Callers that predate the cursors are
//                 grandfathered by file; new call sites are rejected.
//  include-guard  Headers under src/ must open with the canonical
//                 `#ifndef ODE_<PATH>_H_` / `#define` pair (no #pragma
//                 once), so guards never collide.
//  unchecked-cast `reinterpret_cast` or raw `memcpy` in production code
//                 (src/, tools/) outside the allowlisted bounds-checked
//                 helpers (byte_buffer.h, env/disk/buffer-pool internals,
//                 the fuzz harnesses).  Decoders must consume untrusted
//                 bytes through BufferReader / coding.h / Slice, which
//                 check bounds; an ad-hoc cast or copy is exactly where
//                 corrupt input turns into an out-of-bounds read.  The few
//                 legitimate sites (sockaddr casts, copies whose length
//                 was just bounds-checked) carry `ode_lint:
//                 allow(unchecked-cast)` with a stated reason.
//
// The checker is intentionally lexical (comments and string literals are
// stripped first): it runs in milliseconds over the whole tree, has no
// compiler dependency, and the rules are chosen so a lexical match IS the
// violation.
//
// Suppression: a comment `ode_lint: allow(<rule>)` on the flagged line or
// the line directly above silences that one issue.  Every suppression is
// greppable, and should carry a reason (see src/storage/storage_engine.h
// for the canonical example: a lock whose lifetime spans functions cannot
// name what it guards in a way the capability analysis accepts).

/// One rule violation.
struct Issue {
  std::string file;  ///< Repo-relative path, forward slashes.
  int line = 0;      ///< 1-based.
  std::string rule;
  std::string message;
};

/// Lints one file.  `path` must be repo-relative with forward slashes
/// (rules are path-sensitive); `content` is the raw file text.
std::vector<Issue> LintSource(const std::string& path,
                              const std::string& content);

/// Strips // and /* */ comments and the bodies of string/char literals
/// (keeping the quotes), preserving line structure.  Exposed for tests.
std::string StripCommentsAndStrings(const std::string& content);

/// True if `path` (repo-relative) should be scanned at all.
bool ShouldScan(const std::string& path);

/// Renders "file:line: [rule] message".
std::string FormatIssue(const Issue& issue);

}  // namespace lint
}  // namespace ode

#endif  // ODE_TOOLS_LINT_LINT_RULES_H_
