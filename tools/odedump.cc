// odedump: inspect an Ode database from the command line.
//
// Usage:
//   odedump <db-path> [command]
//
// Commands:
//   summary   (default) object/version/type counts and storage stats
//   objects   every object with header fields
//   graph     the version graph of every object (derived-from + temporal)
//   types     the registered type table
//   check     run the full consistency check (exit 1 on violations)
//   vacuum    compact the catalog B+trees
//   storage   physical page/record statistics

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>

#include "core/check.h"
#include "core/database.h"
#include "policy/history.h"

namespace {

int Fail(const ode::Status& status) {
  std::fprintf(stderr, "odedump: %s\n", status.ToString().c_str());
  return 1;
}

int Summary(ode::Database& db) {
  uint64_t objects = 0, versions = 0, full = 0, deltas = 0;
  uint64_t logical_bytes = 0;
  ode::Status s = db.ForEachObject(
      [&](ode::ObjectId oid, const ode::ObjectHeader& header) {
        ++objects;
        versions += header.version_count;
        ode::Status vs = db.ForEachVersion(
            oid, [&](ode::VersionId, const ode::VersionMeta& meta) {
              if (meta.kind == ode::PayloadKind::kFull) {
                ++full;
              } else {
                ++deltas;
              }
              logical_bytes += meta.logical_size;
              return true;
            });
        if (!vs.ok()) std::fprintf(stderr, "warning: %s\n", vs.ToString().c_str());
        return true;
      });
  if (!s.ok()) return Fail(s);
  uint64_t types = 0;
  s = db.ForEachType([&](const std::string&, uint32_t) {
    ++types;
    return true;
  });
  if (!s.ok()) return Fail(s);
  std::printf("objects:        %" PRIu64 "\n", objects);
  std::printf("versions:       %" PRIu64 "\n", versions);
  std::printf("  full:         %" PRIu64 "\n", full);
  std::printf("  delta:        %" PRIu64 "\n", deltas);
  std::printf("logical bytes:  %" PRIu64 "\n", logical_bytes);
  std::printf("types:          %" PRIu64 "\n", types);
  return 0;
}

int Objects(ode::Database& db) {
  ode::Status s = db.ForEachObject(
      [&](ode::ObjectId oid, const ode::ObjectHeader& header) {
        std::printf("object %-8" PRIu64 " type=%-4u versions=%-4u latest=v%-4u"
                    " created_ts=%" PRIu64 "\n",
                    oid.value, header.type_id, header.version_count,
                    header.latest, header.created_ts);
        return true;
      });
  return s.ok() ? 0 : Fail(s);
}

int Graph(ode::Database& db) {
  ode::Status s =
      db.ForEachObject([&](ode::ObjectId oid, const ode::ObjectHeader&) {
        auto rendered = ode::history::RenderGraph(db, oid);
        if (rendered.ok()) {
          std::printf("%s\n", rendered->c_str());
        } else {
          std::fprintf(stderr, "object %" PRIu64 ": %s\n", oid.value,
                       rendered.status().ToString().c_str());
        }
        return true;
      });
  return s.ok() ? 0 : Fail(s);
}

int Types(ode::Database& db) {
  ode::Status s = db.ForEachType([&](const std::string& name, uint32_t id) {
    std::printf("type %-4u %s\n", id, name.c_str());
    return true;
  });
  return s.ok() ? 0 : Fail(s);
}

int Check(ode::Database& db) {
  auto report = ode::CheckDatabase(db);
  if (!report.ok()) return Fail(report.status());
  std::printf("checked %" PRIu64 " objects, %" PRIu64 " versions, %" PRIu64
              " payload bytes\n",
              report->objects_checked, report->versions_checked,
              report->payload_bytes);
  if (report->errors.empty()) {
    std::printf("database is consistent\n");
    return 0;
  }
  for (const std::string& error : report->errors) {
    std::printf("VIOLATION: %s\n", error.c_str());
  }
  return 1;
}

int Vacuum(ode::Database& db) {
  if (ode::Status s = db.Vacuum(); !s.ok()) return Fail(s);
  std::printf("vacuum complete\n");
  return 0;
}

int Storage(ode::Database& db) {
  auto stats = db.GatherStorageStats();
  if (!stats.ok()) return Fail(stats.status());
  std::printf("total pages:    %u (%u KiB)\n", stats->total_pages,
              stats->total_pages * 4);
  std::printf("  free:         %u\n", stats->free_pages);
  std::printf("  heap:         %u\n", stats->heap_pages);
  std::printf("  overflow:     %u\n", stats->overflow_pages);
  std::printf("  btree:        %u\n", stats->btree_pages);
  std::printf("live records:   %" PRIu64 "\n", stats->live_records);
  std::printf("wal bytes:      %" PRIu64 "\n", stats->wal_bytes);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: odedump <db-path> "
                 "[summary|objects|graph|types|check|vacuum]\n");
    return 2;
  }
  ode::DatabaseOptions options;
  options.storage.path = argv[1];
  auto db = ode::Database::Open(options);
  if (!db.ok()) return Fail(db.status());

  const std::string command = argc >= 3 ? argv[2] : "summary";
  if (command == "summary") return Summary(**db);
  if (command == "objects") return Objects(**db);
  if (command == "graph") return Graph(**db);
  if (command == "types") return Types(**db);
  if (command == "check") return Check(**db);
  if (command == "vacuum") return Vacuum(**db);
  if (command == "storage") return Storage(**db);
  std::fprintf(stderr, "odedump: unknown command '%s'\n", command.c_str());
  return 2;
}
