// odedump: inspect an Ode database from the command line.
//
// Usage:
//   odedump <db-path> [command]
//
// Commands:
//   summary   (default) object/version/type counts and storage stats
//   objects   every object with header fields
//   graph     the version graph of every object (derived-from + temporal)
//   types     the registered type table
//   check     run the full consistency check (exit 1 on violations)
//   verify    recovery-time verification of a closed database: report what
//             WAL recovery did, then cross-check headers, version metadata,
//             and the temporal/derived-from chains (exit 1 on violations)
//   vacuum    compact the catalog B+trees
//   storage   physical page/record statistics + cache counters
//   caches    read every version twice, report read-cache hit rates
//   stats     read every version once, dump the full metrics registry
//             (--format=text|json|prom selects the rendering)
//   trace     read every version once, emit Chrome trace_event JSON
//             (--out <file> writes to a file instead of stdout)
//   diag      list the flight-recorder dumps (DIAGNOSTICS-<seq>.json) and
//             pretty-print the newest (or --file <name>); works without
//             opening the database, so it runs even when opening cannot
//   health    health verdict; exit code IS the state (0 ok, 1 degraded,
//             2 poisoned/unopenable)

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>

#include <algorithm>
#include <map>

#include "core/check.h"
#include "core/cursor.h"
#include "core/database.h"
#include "core/diagnostics.h"
#include "policy/history.h"
#include "storage/env.h"
#include "storage/payload_store.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace {

constexpr char kUsage[] =
    "usage: odedump <db-path> "
    "[summary|objects|graph|types|check|verify|vacuum|storage|caches"
    "|stats [--format=text|json|prom]|trace [--out <file>]"
    "|diag [--file <name>]|health]\n"
    "<db-path> must be an existing Ode database directory (containing "
    "data.odb)\n";

int Fail(const ode::Status& status) {
  std::fprintf(stderr, "odedump: %s\n", status.ToString().c_str());
  return 1;
}

int Summary(ode::Database& db) {
  uint64_t objects = 0, versions = 0, full = 0, deltas = 0;
  uint64_t logical_bytes = 0;
  ode::ObjectCursor objs(db);
  for (; objs.Valid(); objs.Next()) {
    ++objects;
    versions += objs.header().version_count;
    ode::VersionCursor vers(db, objs.oid());
    for (; vers.Valid(); vers.Next()) {
      if (vers.meta().kind == ode::PayloadKind::kFull) {
        ++full;
      } else {
        ++deltas;
      }
      logical_bytes += vers.meta().logical_size;
    }
    if (!vers.status().ok()) {
      std::fprintf(stderr, "warning: %s\n",
                   vers.status().ToString().c_str());
    }
  }
  if (!objs.status().ok()) return Fail(objs.status());
  uint64_t types = 0;
  ode::TypeCursor type_cursor(db);
  for (; type_cursor.Valid(); type_cursor.Next()) ++types;
  if (!type_cursor.status().ok()) return Fail(type_cursor.status());
  std::printf("objects:        %" PRIu64 "\n", objects);
  std::printf("versions:       %" PRIu64 "\n", versions);
  std::printf("  full:         %" PRIu64 "\n", full);
  std::printf("  delta:        %" PRIu64 "\n", deltas);
  std::printf("logical bytes:  %" PRIu64 "\n", logical_bytes);
  std::printf("types:          %" PRIu64 "\n", types);
  return 0;
}

int Objects(ode::Database& db) {
  ode::ObjectCursor objs(db);
  for (; objs.Valid(); objs.Next()) {
    const ode::ObjectHeader& header = objs.header();
    std::printf("object %-8" PRIu64 " type=%-4u versions=%-4u latest=v%-4u"
                " created_ts=%" PRIu64 "\n",
                objs.oid().value, header.type_id, header.version_count,
                header.latest, header.created_ts);
  }
  return objs.status().ok() ? 0 : Fail(objs.status());
}

int Graph(ode::Database& db) {
  ode::ObjectCursor objs(db);
  for (; objs.Valid(); objs.Next()) {
    const ode::ObjectId oid = objs.oid();
    auto rendered = ode::history::RenderGraph(db, oid);
    if (rendered.ok()) {
      std::printf("%s\n", rendered->c_str());
    } else {
      std::fprintf(stderr, "object %" PRIu64 ": %s\n", oid.value,
                   rendered.status().ToString().c_str());
    }
  }
  return objs.status().ok() ? 0 : Fail(objs.status());
}

int Types(ode::Database& db) {
  ode::TypeCursor types(db);
  for (; types.Valid(); types.Next()) {
    std::printf("type %-4u %s\n", types.id(), types.name().c_str());
  }
  return types.status().ok() ? 0 : Fail(types.status());
}

int Check(ode::Database& db) {
  auto report = ode::CheckDatabase(db);
  if (!report.ok()) return Fail(report.status());
  std::printf("checked %" PRIu64 " objects, %" PRIu64 " versions, %" PRIu64
              " payload bytes\n",
              report->objects_checked, report->versions_checked,
              report->payload_bytes);
  if (report->errors.empty()) {
    std::printf("database is consistent\n");
    return 0;
  }
  for (const std::string& error : report->errors) {
    std::printf("VIOLATION: %s\n", error.c_str());
  }
  return 1;
}

// Recovery-time verification of a (previously closed) database.  Opening
// already ran WAL recovery; report what it did, then cross-check the catalog
// through the cursor API: every header against its version entries, every
// version's metadata against the temporal (Tprevious/Tnext) and derived-from
// (Dprevious/Dnext) traversals, and finally the full fsck (CheckDatabase,
// which additionally materializes every payload and checks clusters).
int Verify(ode::Database& db) {
  const ode::RecoveryStats& rec = db.storage().last_recovery();
  std::printf("recovery: %" PRIu64 " committed txns replayed, %" PRIu64
              " uncommitted discarded, %" PRIu64 " pages, %" PRIu64
              " records scanned%s\n",
              rec.committed_txns, rec.discarded_txns, rec.pages_replayed,
              rec.records_scanned,
              rec.tail_truncated ? ", torn WAL tail truncated" : "");

  uint64_t violations = 0;
  const auto violation = [&](const std::string& what) {
    std::printf("VIOLATION: %s\n", what.c_str());
    ++violations;
  };

  uint64_t objects = 0, versions = 0;
  ode::ObjectCursor objs(db);
  for (; objs.Valid(); objs.Next()) {
    const ode::ObjectId oid = objs.oid();
    const ode::ObjectHeader& header = objs.header();
    ++objects;
    const std::string label = "object " + std::to_string(oid.value);

    // Header vs. the generic-reference resolution path.
    auto latest = db.Latest(oid);
    if (!latest.ok()) {
      violation(label + ": Latest() failed: " + latest.status().ToString());
    } else if (latest->vnum != header.latest) {
      violation(label + ": header.latest v" + std::to_string(header.latest) +
                " but Latest() resolves v" + std::to_string(latest->vnum));
    }

    // Walk the version entries, re-deriving the temporal chain.
    uint64_t count = 0;
    std::optional<ode::VersionId> prev;
    ode::VersionCursor vers(db, oid);
    for (; vers.Valid(); vers.Next()) {
      const ode::VersionId vid = vers.vid();
      const ode::VersionMeta& meta = vers.meta();
      ++versions;
      ++count;
      const std::string vlabel =
          label + " v" + std::to_string(vid.vnum);
      if (meta.vnum != vid.vnum) {
        violation(vlabel + ": key/meta vnum mismatch (meta says v" +
                  std::to_string(meta.vnum) + ")");
      }
      // Temporal chain: Tprevious must name the preceding live entry, and
      // the edge must invert (Tnext of the predecessor is this version).
      auto tprev = db.Tprevious(vid);
      if (!tprev.ok()) {
        violation(vlabel + ": Tprevious failed: " + tprev.status().ToString());
      } else if (*tprev != prev) {
        violation(vlabel + ": broken Tprevious link");
      } else if (prev.has_value()) {
        auto tnext = db.Tnext(*prev);
        if (!tnext.ok() || !tnext->has_value() || !(**tnext == vid)) {
          violation(vlabel + ": broken Tnext link from v" +
                    std::to_string(prev->vnum));
        }
      }
      // Derived-from tree: Dprevious must mirror the metadata, and this
      // version must appear among its parent's Dnext children.
      auto dprev = db.Dprevious(vid);
      if (!dprev.ok()) {
        violation(vlabel + ": Dprevious failed: " + dprev.status().ToString());
      } else {
        const ode::VersionNum want = meta.derived_from;
        if (want == ode::kNoVersion) {
          if (dprev->has_value()) violation(vlabel + ": spurious Dprevious");
        } else if (!dprev->has_value() || (*dprev)->vnum != want) {
          violation(vlabel + ": broken Dprevious link (expected v" +
                    std::to_string(want) + ")");
        } else {
          auto children = db.Dnext(**dprev);
          bool found = false;
          if (children.ok()) {
            for (const ode::VersionId& child : *children) {
              if (child == vid) { found = true; break; }
            }
          }
          if (!found) {
            violation(vlabel + ": missing from Dnext of v" +
                      std::to_string(want));
          }
        }
      }
      prev = vid;
    }
    if (!vers.status().ok()) return Fail(vers.status());
    if (count != header.version_count) {
      violation(label + ": header.version_count " +
                std::to_string(header.version_count) + " but " +
                std::to_string(count) + " version entries");
    }
    if (!prev.has_value()) {
      violation(label + ": no version entries at all");
    } else if (prev->vnum != header.latest) {
      violation(label + ": temporally last entry v" +
                std::to_string(prev->vnum) + " != header.latest v" +
                std::to_string(header.latest));
    }
  }
  if (!objs.status().ok()) return Fail(objs.status());
  std::printf("chains:   %" PRIu64 " objects, %" PRIu64
              " versions cross-checked\n",
              objects, versions);

  // The payload/cluster half of the story: materialize everything.  The
  // check includes the content-addressed store audit (pass 3): refcounts
  // against referencing metas, no orphan blobs, no dangling references.
  auto report = ode::CheckDatabase(db);
  if (!report.ok()) return Fail(report.status());
  for (const std::string& error : report->errors) violation(error);
  std::printf("payloads: %" PRIu64 " bytes materialized\n",
              report->payload_bytes);
  std::printf("refcounts: %" PRIu64 " blobs audited against %" PRIu64
              " version references\n",
              report->payload_blobs_checked, report->payload_refs_checked);

  if (violations > 0) {
    std::printf("verify FAILED: %" PRIu64 " violations\n", violations);
    return 1;
  }
  std::printf("verify OK\n");
  return 0;
}

int Vacuum(ode::Database& db) {
  if (ode::Status s = db.Vacuum(); !s.ok()) return Fail(s);
  std::printf("vacuum complete\n");
  return 0;
}

double HitRate(uint64_t hits, uint64_t misses) {
  const uint64_t total = hits + misses;
  return total == 0 ? 0.0 : 100.0 * static_cast<double>(hits) /
                                static_cast<double>(total);
}

/// Counters are cumulative for this process, so for the read caches they
/// cover whatever command ran before the report (e.g. `summary` touches
/// every version).  A freshly opened database reports mostly zeros.  Each
/// stats() call below returns a coherent snapshot of the component's atomic
/// counters (pool and caches are lock-striped; the shard counts are shown).
void PrintCacheStats(ode::Database& db) {
  const ode::BufferPoolStats pool = db.storage().cache_stats();
  std::printf("buffer pool:    %" PRIu64 " hits, %" PRIu64
              " misses (%.1f%% hit rate), %" PRIu64 " evictions, %zu shards\n",
              pool.hits, pool.misses, HitRate(pool.hits, pool.misses),
              pool.evictions, db.storage().buffer_pool().shard_count());
  const ode::VersionPayloadCache& payload = db.payload_cache();
  const ode::PayloadCacheStats ps = payload.stats();
  std::printf("payload cache:  %" PRIu64 " hits, %" PRIu64
              " misses (%.1f%% hit rate), %zu shards\n",
              ps.hits, ps.misses, HitRate(ps.hits, ps.misses),
              payload.shard_count());
  std::printf("  entries:      %zu (%" PRIu64 " / %" PRIu64 " bytes)\n",
              payload.entries(), payload.bytes_in_use(),
              payload.byte_budget());
  std::printf("  evictions:    %" PRIu64 "  invalidations: %" PRIu64
              "  epoch discards: %" PRIu64 "\n",
              ps.evictions, ps.invalidations, ps.epoch_discards);
  const ode::PayloadCacheStats ls = db.latest_cache().stats();
  std::printf("latest cache:   %" PRIu64 " hits, %" PRIu64
              " misses (%.1f%% hit rate), %zu entries, %zu shards\n",
              ls.hits, ls.misses, HitRate(ls.hits, ls.misses),
              db.latest_cache().entries(), db.latest_cache().shard_count());
}

int Storage(ode::Database& db) {
  auto stats = db.GatherStorageStats();
  if (!stats.ok()) return Fail(stats.status());
  std::printf("total pages:    %u (%u KiB)\n", stats->total_pages,
              stats->total_pages * 4);
  std::printf("  free:         %u\n", stats->free_pages);
  std::printf("  heap:         %u\n", stats->heap_pages);
  std::printf("  overflow:     %u\n", stats->overflow_pages);
  std::printf("  btree:        %u\n", stats->btree_pages);
  std::printf("live records:   %" PRIu64 "\n", stats->live_records);
  std::printf("wal bytes:      %" PRIu64 "\n", stats->wal_bytes);
  PrintCacheStats(db);
  return 0;
}

// Dereferences every version of every object once, so the metrics and trace
// commands have representative read traffic to report on.
ode::Status ReadPass(ode::Database& db) {
  ode::ObjectCursor objs(db);
  for (; objs.Valid(); objs.Next()) {
    ode::VersionCursor vers(db, objs.oid());
    for (; vers.Valid(); vers.Next()) {
      const ode::VersionId vid = vers.vid();
      auto bytes = db.ReadVersion(vid);
      if (!bytes.ok()) {
        std::fprintf(stderr, "warning: v%u of object %" PRIu64 ": %s\n",
                     vid.vnum, vid.oid.value,
                     bytes.status().ToString().c_str());
      }
    }
    if (!vers.status().ok()) {
      std::fprintf(stderr, "warning: %s\n",
                   vers.status().ToString().c_str());
    }
  }
  return objs.status();
}

// Reads every version once, then again, and reports the cache counters —
// the second pass should be served almost entirely from the payload cache.
int Caches(ode::Database& db) {
  for (int pass = 0; pass < 2; ++pass) {
    if (ode::Status s = ReadPass(db); !s.ok()) return Fail(s);
  }
  PrintCacheStats(db);
  return 0;
}

// Physical payload topology: dedupe effectiveness of the content-addressed
// store plus the shape of the delta graph.
int PrintPayloadSection(ode::Database& db) {
  // Version-side tally: chain depths and how many metas reference the store.
  uint64_t versions = 0, delta_versions = 0, hashed_refs = 0;
  uint64_t chain_depth_sum = 0, chain_depth_max = 0;
  uint64_t logical_bytes = 0;
  ode::ObjectCursor objs(db);
  for (; objs.Valid(); objs.Next()) {
    ode::VersionCursor vers(db, objs.oid());
    for (; vers.Valid(); vers.Next()) {
      const ode::VersionMeta& meta = vers.meta();
      ++versions;
      logical_bytes += meta.logical_size;
      if (meta.kind == ode::PayloadKind::kDelta) {
        ++delta_versions;
        chain_depth_sum += meta.delta_chain_len;
        chain_depth_max =
            std::max<uint64_t>(chain_depth_max, meta.delta_chain_len);
      }
      if (!meta.content_hash.IsZero()) ++hashed_refs;
    }
    if (!vers.status().ok()) return Fail(vers.status());
  }
  if (!objs.status().ok()) return Fail(objs.status());
  // Store-side tally: unique blobs, stored bytes, refcount distribution.
  uint64_t blobs = 0, stored_bytes = 0, total_refs = 0;
  std::map<uint64_t, uint64_t> refcount_histogram;
  ode::Status s = db.storage().WithReadTxn([&](ode::ReadTxn& txn) -> ode::Status {
    return db.storage().payload_store().ForEach(
        &txn,
        [&](const ode::Hash128&, const ode::PayloadStoreEntry& entry) {
          ++blobs;
          stored_bytes += entry.size;
          total_refs += entry.refcount;
          ++refcount_histogram[entry.refcount];
          return true;
        });
  });
  if (!s.ok()) return Fail(s);
  std::printf("--- payloads ---\n");
  std::printf("versions:       %" PRIu64 " (%" PRIu64 " delta, %" PRIu64
              " content-addressed)\n",
              versions, delta_versions, hashed_refs);
  std::printf("unique blobs:   %" PRIu64 " holding %" PRIu64
              " bytes (logical %" PRIu64 " bytes)\n",
              blobs, stored_bytes, logical_bytes);
  std::printf("dedupe ratio:   %.2f references/blob\n",
              blobs == 0 ? 0.0 : static_cast<double>(total_refs) /
                                     static_cast<double>(blobs));
  std::printf("chain depth:    mean %.2f, max %" PRIu64 "\n",
              delta_versions == 0
                  ? 0.0
                  : static_cast<double>(chain_depth_sum) /
                        static_cast<double>(delta_versions),
              chain_depth_max);
  std::printf("refcounts:      ");
  bool first = true;
  for (const auto& [refcount, count] : refcount_histogram) {
    std::printf("%s%" PRIu64 "x%" PRIu64, first ? "" : ", ", count, refcount);
    first = false;
  }
  std::printf("%s\n", first ? "(store empty)" : "");
  return 0;
}

// Runs one read pass, then renders the whole metrics registry: counters,
// gauges, and histogram percentiles, sorted by name.  `format` selects
// "text" (the human table below), "json" (MetricsRegistry::RenderJson), or
// "prom" (Prometheus text exposition) — the latter two reuse the library
// renderers, so scraping odedump and scraping a live process agree.
int Stats(ode::Database& db, const std::string& format) {
  if (ode::Status s = ReadPass(db); !s.ok()) return Fail(s);
  if (format == "json") {
    std::printf("%s\n", ode::MetricsRegistry::RenderJson(db.MetricsSnapshot())
                            .c_str());
    return 0;
  }
  if (format == "prom") {
    std::fputs(
        ode::MetricsRegistry::RenderPrometheusText(db.MetricsSnapshot())
            .c_str(),
        stdout);
    return 0;
  }
  if (int rc = PrintPayloadSection(db); rc != 0) return rc;
  // Group-commit health up front: the commits/fsync ratio is THE number
  // that says whether concurrent writers are actually sharing fsyncs
  // (1.00 = solo-writer discipline; higher = batching is working), and a
  // non-zero async-pending gauge means acked-but-not-yet-durable commits
  // are still in flight.
  {
    const ode::VersionStats vs = db.stats();
    const double ratio =
        vs.group_commit_fsyncs == 0
            ? 0.0
            : static_cast<double>(vs.group_commit_commits) /
                  static_cast<double>(vs.group_commit_fsyncs);
    std::printf("--- group commit ---\n");
    std::printf("batches:        %" PRIu64 "\n", vs.group_commit_batches);
    std::printf("commits:        %" PRIu64 "\n", vs.group_commit_commits);
    std::printf("fsyncs:         %" PRIu64 " (%.2f commits/fsync)\n",
                vs.group_commit_fsyncs, ratio);
    std::printf("async pending:  %" PRIu64 "\n", vs.async_pending);
  }
  const ode::MetricsRegistry::Snapshot snap = db.MetricsSnapshot();
  std::printf("--- counters ---\n");
  for (const auto& [name, value] : snap.counters) {
    std::printf("%-32s %12" PRIu64 "\n", name.c_str(), value);
  }
  std::printf("--- gauges ---\n");
  for (const auto& [name, value] : snap.gauges) {
    std::printf("%-32s %12" PRId64 "\n", name.c_str(), value);
  }
  std::printf("--- histograms (ns) ---\n");
  std::printf("%-32s %10s %10s %10s %10s %10s\n", "name", "count", "p50",
              "p90", "p99", "max");
  for (const auto& [name, h] : snap.histograms) {
    std::printf("%-32s %10" PRIu64 " %10.0f %10.0f %10.0f %10" PRIu64 "\n",
                name.c_str(), h.count, h.p50, h.p90, h.p99, h.max);
  }
  return 0;
}

// Runs one read pass with trace sampling forced on (main() opened the
// database with trace_sample_every = 1), then drains every thread's ring
// buffer into Chrome trace_event JSON (load via chrome://tracing or
// https://ui.perfetto.dev).
int Trace(ode::Database& db, const std::string& out_path) {
  if (ode::Status s = ReadPass(db); !s.ok()) return Fail(s);
  const std::string json = db.tracer().DrainToChromeJson();
  if (out_path.empty()) {
    std::printf("%s\n", json.c_str());
    return 0;
  }
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "odedump: cannot open %s for writing\n",
                 out_path.c_str());
    return 1;
  }
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  out.put('\n');
  out.close();
  if (!out) {
    std::fprintf(stderr, "odedump: short write to %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %zu bytes of trace JSON to %s\n",
               json.size() + 1, out_path.c_str());
  return 0;
}

// Structural JSON re-indenter (no parse, no validation): newline + indent
// after every container open and comma, matching un-indent before close.
// String contents (with escapes) pass through untouched.
std::string PrettyPrintJson(const std::string& json) {
  std::string out;
  out.reserve(json.size() * 2);
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  const auto newline = [&] {
    out.push_back('\n');
    out.append(static_cast<size_t>(depth) * 2, ' ');
  };
  for (char c : json) {
    if (in_string) {
      out.push_back(c);
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        out.push_back(c);
        break;
      case '{':
      case '[':
        out.push_back(c);
        ++depth;
        newline();
        break;
      case '}':
      case ']':
        --depth;
        newline();
        out.push_back(c);
        break;
      case ',':
        out.push_back(c);
        newline();
        break;
      case ':':
        out.append(": ");
        break;
      default:
        out.push_back(c);
        break;
    }
  }
  return out;
}

// Lists the flight-recorder dumps and pretty-prints one (the newest, or
// --file <name>).  Deliberately does NOT open the database: the dumps are
// post-mortem artifacts and must stay readable when opening cannot.
int Diag(const std::string& path, const std::string& file) {
  ode::Env* env = ode::Env::Posix();
  auto dumps = ode::ListDiagnosticsDumps(env, path);
  if (!dumps.ok()) return Fail(dumps.status());
  if (dumps->empty() && file.empty()) {
    std::printf("no diagnostics dumps in %s\n", path.c_str());
    return 0;
  }
  std::printf("--- dumps ---\n");
  for (const auto& [seq, name] : *dumps) {
    uint64_t size = 0;
    if (auto f = env->OpenFile(path + "/" + name); f.ok()) {
      if (auto sz = (*f)->Size(); sz.ok()) size = *sz;
    }
    std::printf("seq %-6" PRIu64 " %-28s %8" PRIu64 " bytes\n", seq,
                name.c_str(), size);
  }
  const std::string chosen = file.empty() ? dumps->back().second : file;
  auto contents = ode::ReadDiagnosticsFile(env, path + "/" + chosen);
  if (!contents.ok()) return Fail(contents.status());
  std::printf("--- %s ---\n%s\n", chosen.c_str(),
              PrettyPrintJson(*contents).c_str());
  return 0;
}

// Health verdict with the state as the exit code (0 ok / 1 degraded /
// 2 poisoned; main() returns 2 itself when the database cannot be opened).
// Poison is runtime state — a freshly opened database is never poisoned —
// so a dump whose trigger was "poison" reports the PREVIOUS run's failure
// as a degradation until the dumps are cleared.
int Health(ode::Database& db, const std::string& path) {
  ode::HealthReport report = db.HealthCheck();
  ode::Env* env = ode::Env::Posix();
  if (auto dumps = ode::ListDiagnosticsDumps(env, path); dumps.ok()) {
    for (const auto& [seq, name] : *dumps) {
      auto contents = ode::ReadDiagnosticsFile(env, path + "/" + name);
      if (contents.ok() &&
          contents->find("\"trigger\":\"poison\"") != std::string::npos) {
        if (report.state == ode::HealthState::kOk) {
          report.state = ode::HealthState::kDegraded;
        }
        report.reasons.push_back("previous run poisoned (see " + name + ")");
      }
    }
  }
  std::printf("state:           %s\n", ode::HealthStateName(report.state));
  std::printf("checkpointer lag: %" PRIu64 " us\n", report.checkpointer_lag_us);
  std::printf("wal backlog:     %" PRIu64 " bytes\n", report.wal_backlog_bytes);
  std::printf("async pending:   %" PRId64 "\n", report.async_pending);
  for (const std::string& reason : report.reasons) {
    std::printf("reason: %s\n", reason.c_str());
  }
  return static_cast<int>(report.state);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fputs(kUsage, stderr);
    return 2;
  }
  // Validate the command (and its flags) before opening anything: opening
  // would CREATE a database at a mistyped path, and the trace command needs
  // every event sampled, which is an open-time option.
  const std::string command = argc >= 3 ? argv[2] : "summary";
  const bool known_command =
      command == "summary" || command == "objects" || command == "graph" ||
      command == "types" || command == "check" || command == "verify" ||
      command == "vacuum" || command == "storage" || command == "caches" ||
      command == "stats" || command == "trace" || command == "diag" ||
      command == "health";
  if (!known_command) {
    std::fprintf(stderr, "odedump: unknown command '%s'\n", command.c_str());
    std::fputs(kUsage, stderr);
    return 2;
  }
  std::string trace_out;
  std::string stats_format = "text";
  std::string diag_file;
  for (int i = 3; i < argc; ++i) {
    if (command == "trace" && std::strcmp(argv[i], "--out") == 0 &&
        i + 1 < argc) {
      trace_out = argv[++i];
    } else if (command == "stats" &&
               std::strncmp(argv[i], "--format=", 9) == 0) {
      stats_format = argv[i] + 9;
      if (stats_format != "text" && stats_format != "json" &&
          stats_format != "prom") {
        std::fprintf(stderr, "odedump: unknown format '%s'\n",
                     stats_format.c_str());
        std::fputs(kUsage, stderr);
        return 2;
      }
    } else if (command == "diag" && std::strcmp(argv[i], "--file") == 0 &&
               i + 1 < argc) {
      diag_file = argv[++i];
    } else {
      std::fprintf(stderr, "odedump: unknown flag '%s'\n", argv[i]);
      std::fputs(kUsage, stderr);
      return 2;
    }
  }
  const std::string path = argv[1];
  // diag never opens the database: dumps must stay readable post-mortem.
  if (command == "diag") return Diag(path, diag_file);
  if (!ode::Env::Posix()->FileExists(path + "/data.odb")) {
    std::fprintf(stderr, "odedump: no Ode database at '%s' (missing %s)\n",
                 path.c_str(), (path + "/data.odb").c_str());
    std::fputs(kUsage, stderr);
    return 2;
  }

  ode::DatabaseOptions options;
  options.storage.path = path;
  if (command == "stats") {
    // Sample every dereference so the latency histograms reflect the whole
    // read pass, not 1-in-64 of it.
    options.metrics_sample_every = 1;
  }
  if (command == "trace") {
    options.trace_sample_every = 1;
    options.trace_buffer_events = 1 << 16;
    // Dereference spans ride the metrics sampler's decision (see
    // Database::ReadLatest), so sample every call here too.
    options.metrics_sample_every = 1;
  }
  auto db = ode::Database::Open(options);
  if (!db.ok()) {
    // For the health verdict an unopenable database is the worst state.
    if (command == "health") {
      std::fprintf(stderr, "odedump: %s\n", db.status().ToString().c_str());
      std::printf("state:           unopenable\n");
      return 2;
    }
    return Fail(db.status());
  }

  if (command == "health") return Health(**db, path);
  if (command == "summary") return Summary(**db);
  if (command == "objects") return Objects(**db);
  if (command == "graph") return Graph(**db);
  if (command == "types") return Types(**db);
  if (command == "check") return Check(**db);
  if (command == "verify") return Verify(**db);
  if (command == "vacuum") return Vacuum(**db);
  if (command == "storage") return Storage(**db);
  if (command == "caches") return Caches(**db);
  if (command == "stats") return Stats(**db, stats_format);
  return Trace(**db, trace_out);
}
