// ode_server: serve an Ode database over the binary wire protocol.
//
// Usage:
//   ode_server <db-path> [--host H] [--port P] [--workers N]
//              [--max-pipeline N] [--print-port]
//
// Opens (creating if missing) the database at <db-path>, binds, and serves
// until SIGINT/SIGTERM.  --port 0 picks an ephemeral port; --print-port
// writes the bound port to stdout as a bare line (and flushes) so scripts
// can connect without racing the log output.  DESIGN.md §4i documents the
// protocol; ode_client is the matching CLI.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <semaphore.h>

#include "core/database.h"
#include "net/server.h"

namespace {

constexpr char kUsage[] =
    "usage: ode_server <db-path> [--host H] [--port P] [--workers N]\n"
    "                  [--max-pipeline N] [--print-port]\n";

// async-signal-safe shutdown latch: the handler posts, main waits.
sem_t g_shutdown;

void HandleSignal(int) { sem_post(&g_shutdown); }

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fputs(kUsage, stderr);
    return 2;
  }
  const std::string path = argv[1];
  ode::net::ServerOptions options;
  bool print_port = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "ode_server: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--host") {
      options.host = value();
    } else if (arg == "--port") {
      options.port = static_cast<uint16_t>(std::atoi(value()));
    } else if (arg == "--workers") {
      options.workers = std::atoi(value());
    } else if (arg == "--max-pipeline") {
      options.max_pipeline = static_cast<size_t>(std::atol(value()));
    } else if (arg == "--print-port") {
      print_port = true;
    } else {
      std::fprintf(stderr, "ode_server: unknown flag %s\n%s", arg.c_str(),
                   kUsage);
      return 2;
    }
  }

  ode::DatabaseOptions db_options;
  db_options.storage.path = path;
  auto db = ode::Database::Open(db_options);
  if (!db.ok()) {
    std::fprintf(stderr, "ode_server: %s\n", db.status().ToString().c_str());
    return 1;
  }

  auto server = ode::net::Server::Start(**db, options);
  if (!server.ok()) {
    std::fprintf(stderr, "ode_server: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  if (print_port) {
    std::printf("%u\n", (*server)->port());
    std::fflush(stdout);
  }
  std::fprintf(stderr, "ode_server: serving %s on %s:%u (%d workers)\n",
               path.c_str(), options.host.c_str(), (*server)->port(),
               options.workers);

  sem_init(&g_shutdown, 0, 0);
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (sem_wait(&g_shutdown) != 0 && errno == EINTR) {
  }

  std::fprintf(stderr, "ode_server: shutting down\n");
  (*server)->Stop();
  return 0;
}
