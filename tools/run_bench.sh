#!/usr/bin/env bash
# Runs the google-benchmark suites and writes machine-readable results to
# BENCH_<suite>.json at the repo root.  Usage:
#
#   tools/run_bench.sh [build_dir] [out_dir]
#
# Defaults: build_dir=build, out_dir=<repo root>.  Pass extra filtering via
# BENCH_ARGS, e.g. BENCH_ARGS='--benchmark_filter=Deref_Generic'.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
out_dir="${2:-$repo_root}"

# Stamped into each suite's JSON "context" block (bench_common.h
# AddStandardContext) so results stay attributable to a commit.
export ODE_GIT_SHA="${ODE_GIT_SHA:-$(git -C "$repo_root" rev-parse --short HEAD 2>/dev/null || echo unknown)}"

# Every suite listed here must have been built: a missing binary aborts the
# whole run (non-zero exit) rather than silently writing a partial result set.
suites=(deref delta concurrent)

for suite in "${suites[@]}"; do
  bin="$build_dir/bench/bench_$suite"
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not found or not executable; build first:" >&2
    echo "  cmake -B build -S . && cmake --build build -j" >&2
    exit 1
  fi
done

for suite in "${suites[@]}"; do
  bin="$build_dir/bench/bench_$suite"
  out="$out_dir/BENCH_$suite.json"
  echo "== bench_$suite -> $out"
  # shellcheck disable=SC2086
  "$bin" \
    --benchmark_out="$out" \
    --benchmark_out_format=json \
    --benchmark_format=console \
    ${BENCH_ARGS:-}
done

# bench_server is a plain binary (it drives real sockets against an
# in-process ode_server and writes its JSON itself); SERVER_BENCH_ARGS
# passes extra knobs, e.g. SERVER_BENCH_ARGS='--connections 8'.
server_bin="$build_dir/bench/bench_server"
if [[ ! -x "$server_bin" ]]; then
  echo "error: $server_bin not found or not executable; build first" >&2
  exit 1
fi
echo "== bench_server -> $out_dir/BENCH_server.json"
# shellcheck disable=SC2086
"$server_bin" --out "$out_dir/BENCH_server.json" ${SERVER_BENCH_ARGS:-}

echo "done: ${suites[*]/#/BENCH_} BENCH_server written to $out_dir"
