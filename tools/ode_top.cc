// ode_top: live metrics monitor for a running Ode database.
//
// Usage:
//   ode_top <db-path> [--interval-ms N] [--iterations N] [--no-clear]
//
// Polls <db-path>/METRICS.json — the file a database re-exports every
// DatabaseOptions::stats_export_interval_ms — and renders counters as
// per-second rates between polls, gauges as current values, and latency
// histograms as count/p50/p99.  Reading a file instead of opening the
// database keeps the monitor safe to point at a live process: an Ode
// database is embedded and single-process, so a second Open would run
// recovery under the owner's feet.
//
// Rates use the ts_micros stamp the exporter writes into the document, not
// this process's clock, so a stalled exporter shows as a frozen timestamp
// rather than as phantom zero rates.
//
//   --interval-ms N   poll every N ms (default 1000)
//   --iterations N    exit after N polls (default 0 = run until killed)
//   --no-clear        append frames instead of clearing the terminal

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/diagnostics.h"
#include "storage/env.h"
#include "util/status.h"

namespace {

// ---------------------------------------------------------------------------
// Flat numeric view of a JSON document
// ---------------------------------------------------------------------------
//
// METRICS.json is machine-written (util/json.h), so a linear walker that
// tracks the object-key stack is enough: every number becomes
// "path.to.key" -> value.  Strings, booleans and nulls are skipped.  Not a
// validator — a malformed document yields a partial (possibly empty) map,
// which the caller reports as "no metrics yet".
std::map<std::string, double> FlattenJsonNumbers(const std::string& json) {
  std::map<std::string, double> out;
  std::vector<std::string> stack;  // Enclosing object keys.
  std::string pending_key;         // Key awaiting its value.
  size_t i = 0;
  const size_t n = json.size();
  const auto parse_string = [&](std::string* s) {
    // Called with json[i] == '"'; leaves i one past the closing quote.
    // Escapes are kept verbatim — metric names never contain them.
    ++i;
    s->clear();
    while (i < n && json[i] != '"') {
      if (json[i] == '\\' && i + 1 < n) s->push_back(json[i++]);
      s->push_back(json[i++]);
    }
    if (i < n) ++i;
  };
  while (i < n) {
    const char c = json[i];
    if (c == '"') {
      std::string s;
      parse_string(&s);
      while (i < n && (json[i] == ' ' || json[i] == '\n')) ++i;
      if (i < n && json[i] == ':') {
        pending_key = s;
        ++i;
      }
      // A string VALUE is skipped (pending_key already consumed it).
      continue;
    }
    if (c == '{') {
      stack.push_back(pending_key);
      pending_key.clear();
      ++i;
      continue;
    }
    if (c == '}') {
      if (!stack.empty()) stack.pop_back();
      ++i;
      continue;
    }
    if ((c >= '0' && c <= '9') || c == '-') {
      char* end = nullptr;
      const double value = std::strtod(json.c_str() + i, &end);
      i = static_cast<size_t>(end - json.c_str());
      if (!pending_key.empty()) {
        std::string path;
        for (const std::string& k : stack) {
          if (!k.empty()) path += k + ".";
        }
        path += pending_key;
        out[path] = value;
        pending_key.clear();
      }
      continue;
    }
    ++i;
  }
  return out;
}

bool HasPrefix(const std::string& s, const char* prefix) {
  return s.compare(0, std::strlen(prefix), prefix) == 0;
}

void RenderFrame(const std::map<std::string, double>& now,
                 const std::map<std::string, double>& prev,
                 double elapsed_seconds) {
  const auto ts = now.find("ts_micros");
  std::printf("ode_top  ts=%.0fus  (%.2fs since previous sample)\n",
              ts != now.end() ? ts->second : 0.0, elapsed_seconds);
  std::printf("%-44s %14s %12s\n", "counter", "total", "per-sec");
  for (const auto& [path, value] : now) {
    if (!HasPrefix(path, "metrics.counters.")) continue;
    const std::string name = path.substr(std::strlen("metrics.counters."));
    double rate = 0.0;
    if (const auto it = prev.find(path);
        it != prev.end() && elapsed_seconds > 0.0) {
      rate = (value - it->second) / elapsed_seconds;
    }
    std::printf("%-44s %14.0f %12.1f\n", name.c_str(), value, rate);
  }
  std::printf("%-44s %14s\n", "gauge", "value");
  for (const auto& [path, value] : now) {
    if (!HasPrefix(path, "metrics.gauges.")) continue;
    std::printf("%-44s %14.0f\n",
                path.substr(std::strlen("metrics.gauges.")).c_str(), value);
  }
  std::printf("%-44s %10s %12s %12s\n", "histogram (ns)", "count", "p50",
              "p99");
  // Histogram subfields flatten to metrics.histograms.<name>.<field>; group
  // by walking the count entries and probing their siblings.
  for (const auto& [path, value] : now) {
    if (!HasPrefix(path, "metrics.histograms.")) continue;
    const size_t dot = path.rfind('.');
    if (path.substr(dot + 1) != "count") continue;
    const std::string base = path.substr(0, dot);
    const auto field = [&](const char* f) {
      const auto it = now.find(base + "." + f);
      return it == now.end() ? 0.0 : it->second;
    };
    std::printf("%-44s %10.0f %12.0f %12.0f\n",
                base.substr(std::strlen("metrics.histograms.")).c_str(), value,
                field("p50"), field("p99"));
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fputs(
        "usage: ode_top <db-path> [--interval-ms N] [--iterations N] "
        "[--no-clear]\n",
        stderr);
    return 2;
  }
  const std::string path = argv[1];
  uint64_t interval_ms = 1000;
  uint64_t iterations = 0;  // 0 = until killed.
  bool clear_screen = true;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--interval-ms") == 0 && i + 1 < argc) {
      interval_ms = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--iterations") == 0 && i + 1 < argc) {
      iterations = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--no-clear") == 0) {
      clear_screen = false;
    } else {
      std::fprintf(stderr, "ode_top: unknown flag '%s'\n", argv[i]);
      return 2;
    }
  }

  ode::Env* env = ode::Env::Posix();
  const std::string metrics_path =
      path + "/" + std::string(ode::kMetricsExportFileName);
  std::map<std::string, double> prev;
  bool have_prev = false;
  for (uint64_t i = 0; iterations == 0 || i < iterations; ++i) {
    if (i > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
    auto contents = ode::ReadDiagnosticsFile(env, metrics_path);
    if (!contents.ok()) {
      std::fprintf(stderr,
                   "ode_top: cannot read %s: %s\n"
                   "(is the database running with "
                   "stats_export_interval_ms > 0?)\n",
                   metrics_path.c_str(),
                   contents.status().ToString().c_str());
      return 1;
    }
    const std::map<std::string, double> now = FlattenJsonNumbers(*contents);
    if (now.empty()) {
      std::fprintf(stderr, "ode_top: %s holds no metrics yet\n",
                   metrics_path.c_str());
      return 1;
    }
    double elapsed = 0.0;
    if (have_prev) {
      const auto ts_now = now.find("ts_micros");
      const auto ts_prev = prev.find("ts_micros");
      if (ts_now != now.end() && ts_prev != prev.end()) {
        elapsed = (ts_now->second - ts_prev->second) / 1e6;
      }
    }
    if (clear_screen) std::fputs("\x1b[2J\x1b[H", stdout);
    RenderFrame(now, have_prev ? prev : now, elapsed);
    std::fflush(stdout);
    prev = now;
    have_prev = true;
  }
  return 0;
}
