// ode_client: command-line client for ode_server.
//
// Usage:
//   ode_client [--host H] [--port P] <command> [args...]
//
// Commands:
//   ping
//   register-type <name>
//   pnew <type-id> <payload>
//   newversion <oid>
//   update <oid> <payload>            update the latest version
//   update-version <oid> <vnum> <payload>
//   deref <oid>                       generic (latest) dereference
//   deref-version <oid> <vnum>        specific dereference
//   versions <oid>
//   delete <oid>
//   stats                             server metrics snapshot (JSON)
//
// Exit code 0 on success, 1 on any error (message on stderr).

#include <cstdio>
#include <cstdlib>
#include <string>

#include "net/client.h"

namespace {

constexpr char kUsage[] =
    "usage: ode_client [--host H] [--port P] <command> [args...]\n"
    "commands: ping | register-type <name> | pnew <type-id> <payload>\n"
    "          | newversion <oid> | update <oid> <payload>\n"
    "          | update-version <oid> <vnum> <payload> | deref <oid>\n"
    "          | deref-version <oid> <vnum> | versions <oid>\n"
    "          | delete <oid> | stats\n";

int Fail(const ode::Status& status) {
  std::fprintf(stderr, "ode_client: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  int i = 1;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else {
      break;
    }
  }
  if (i >= argc || port == 0) {
    std::fputs(kUsage, stderr);
    return 2;
  }
  const std::string command = argv[i++];
  const int remaining = argc - i;
  auto arg_u64 = [&](int k) {
    return static_cast<uint64_t>(std::strtoull(argv[i + k], nullptr, 10));
  };

  auto client = ode::net::Client::Connect(host, port);
  if (!client.ok()) return Fail(client.status());
  ode::net::Client& c = **client;

  if (command == "ping" && remaining == 0) {
    if (ode::Status s = c.Ping(); !s.ok()) return Fail(s);
    std::printf("ok\n");
    return 0;
  }
  if (command == "register-type" && remaining == 1) {
    auto id = c.RegisterType(argv[i]);
    if (!id.ok()) return Fail(id.status());
    std::printf("type %u\n", *id);
    return 0;
  }
  if (command == "pnew" && remaining == 2) {
    auto vid = c.Pnew(static_cast<uint32_t>(arg_u64(0)), argv[i + 1]);
    if (!vid.ok()) return Fail(vid.status());
    std::printf("oid %llu vnum %u\n",
                static_cast<unsigned long long>(vid->oid.value), vid->vnum);
    return 0;
  }
  if (command == "newversion" && remaining == 1) {
    auto vid = c.NewVersionOf(ode::ObjectId{arg_u64(0)});
    if (!vid.ok()) return Fail(vid.status());
    std::printf("oid %llu vnum %u\n",
                static_cast<unsigned long long>(vid->oid.value), vid->vnum);
    return 0;
  }
  if (command == "update" && remaining == 2) {
    if (ode::Status s = c.UpdateLatest(ode::ObjectId{arg_u64(0)}, argv[i + 1]);
        !s.ok()) {
      return Fail(s);
    }
    std::printf("ok\n");
    return 0;
  }
  if (command == "update-version" && remaining == 3) {
    ode::VersionId vid{ode::ObjectId{arg_u64(0)},
                       static_cast<ode::VersionNum>(arg_u64(1))};
    if (ode::Status s = c.UpdateVersion(vid, argv[i + 2]); !s.ok()) {
      return Fail(s);
    }
    std::printf("ok\n");
    return 0;
  }
  if (command == "deref" && remaining == 1) {
    ode::VersionId resolved;
    auto payload = c.DerefLatest(ode::ObjectId{arg_u64(0)}, &resolved);
    if (!payload.ok()) return Fail(payload.status());
    std::fprintf(stderr, "resolved vnum %u\n", resolved.vnum);
    std::fwrite(payload->data(), 1, payload->size(), stdout);
    std::printf("\n");
    return 0;
  }
  if (command == "deref-version" && remaining == 2) {
    ode::VersionId vid{ode::ObjectId{arg_u64(0)},
                       static_cast<ode::VersionNum>(arg_u64(1))};
    auto payload = c.DerefVersion(vid);
    if (!payload.ok()) return Fail(payload.status());
    std::fwrite(payload->data(), 1, payload->size(), stdout);
    std::printf("\n");
    return 0;
  }
  if (command == "versions" && remaining == 1) {
    auto vnums = c.VersionsOf(ode::ObjectId{arg_u64(0)});
    if (!vnums.ok()) return Fail(vnums.status());
    for (ode::VersionNum v : *vnums) std::printf("%u\n", v);
    return 0;
  }
  if (command == "delete" && remaining == 1) {
    if (ode::Status s = c.DeleteObject(ode::ObjectId{arg_u64(0)}); !s.ok()) {
      return Fail(s);
    }
    std::printf("ok\n");
    return 0;
  }
  if (command == "stats" && remaining == 0) {
    auto json = c.Stats();
    if (!json.ok()) return Fail(json.status());
    std::printf("%s\n", json->c_str());
    return 0;
  }

  std::fputs(kUsage, stderr);
  return 2;
}
