// TAB-C: relationship-traversal cost vs history size and shape.
//   - Tprevious/Dprevious single steps (the navigation primitives)
//   - full root walks on linear vs bushy derivation trees
//   - Dnext (children listing), which scans the object's version range

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "policy/history.h"

namespace ode {
namespace bench {
namespace {

/// Linear history: v1 <- v2 <- ... <- vN.
VersionId BuildLinear(Database& db, uint32_t type, int depth) {
  auto vid = db.PnewRaw(type, Slice("x"));
  ODE_CHECK(vid.ok());
  VersionId current = *vid;
  for (int i = 1; i < depth; ++i) {
    auto next = db.NewVersionFrom(current);
    ODE_CHECK(next.ok());
    current = *next;
  }
  return current;  // Deepest version.
}

/// Bushy tree: every version derives from the root (maximal alternatives).
VersionId BuildBushy(Database& db, uint32_t type, int width) {
  auto root = db.PnewRaw(type, Slice("x"));
  ODE_CHECK(root.ok());
  VersionId last = *root;
  for (int i = 1; i < width; ++i) {
    auto alt = db.NewVersionFrom(*root);
    ODE_CHECK(alt.ok());
    last = *alt;
  }
  return *root;
}

void BM_TpreviousStep(benchmark::State& state) {
  BenchDb handle = OpenBenchDb();
  VersionId deepest =
      BuildLinear(*handle, RawType(*handle), static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto prev = handle->Tprevious(deepest);
    ODE_CHECK(prev.ok());
    benchmark::DoNotOptimize(prev->has_value());
  }
  ReportOps(state);
}
BENCHMARK(BM_TpreviousStep)->Arg(4)->Arg(64)->Arg(1024)->Arg(4096);

void BM_DpreviousStep(benchmark::State& state) {
  BenchDb handle = OpenBenchDb();
  VersionId deepest =
      BuildLinear(*handle, RawType(*handle), static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto prev = handle->Dprevious(deepest);
    ODE_CHECK(prev.ok());
    benchmark::DoNotOptimize(prev->has_value());
  }
  ReportOps(state);
}
BENCHMARK(BM_DpreviousStep)->Arg(4)->Arg(64)->Arg(1024)->Arg(4096);

void BM_WalkToRoot_Linear(benchmark::State& state) {
  BenchDb handle = OpenBenchDb();
  const int depth = static_cast<int>(state.range(0));
  VersionId deepest = BuildLinear(*handle, RawType(*handle), depth);
  for (auto _ : state) {
    auto path = history::PathToRoot(*handle, deepest);
    ODE_CHECK(path.ok());
    ODE_CHECK(static_cast<int>(path->size()) == depth);
  }
  ReportOps(state, depth);
  state.counters["steps"] = depth;
}
BENCHMARK(BM_WalkToRoot_Linear)->Arg(16)->Arg(256)->Arg(4096);

void BM_Dnext_Bushy(benchmark::State& state) {
  BenchDb handle = OpenBenchDb();
  const int width = static_cast<int>(state.range(0));
  VersionId root = BuildBushy(*handle, RawType(*handle), width);
  for (auto _ : state) {
    auto children = handle->Dnext(root);
    ODE_CHECK(children.ok());
    ODE_CHECK(static_cast<int>(children->size()) == width - 1);
  }
  ReportOps(state);
}
BENCHMARK(BM_Dnext_Bushy)->Arg(16)->Arg(256)->Arg(2048);

void BM_VersionsOf(benchmark::State& state) {
  BenchDb handle = OpenBenchDb();
  VersionId deepest =
      BuildLinear(*handle, RawType(*handle), static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto versions = handle->VersionsOf(deepest.oid);
    ODE_CHECK(versions.ok());
    benchmark::DoNotOptimize(versions->size());
  }
  ReportOps(state);
}
BENCHMARK(BM_VersionsOf)->Arg(16)->Arg(256)->Arg(4096);

void BM_Leaves_Bushy(benchmark::State& state) {
  BenchDb handle = OpenBenchDb();
  VersionId root =
      BuildBushy(*handle, RawType(*handle), static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto leaves = history::Leaves(*handle, root.oid);
    ODE_CHECK(leaves.ok());
    benchmark::DoNotOptimize(leaves->size());
  }
  ReportOps(state);
}
BENCHMARK(BM_Leaves_Bushy)->Arg(16)->Arg(256);

// History walk that also reads every payload along the path — the pattern
// a design tool hits when diffing an object's whole lineage.  Warm runs
// serve repeated payloads from the cache; cold re-materializes each one.
void ReadAllVersions(benchmark::State& state, CacheMode cache_mode) {
  BenchDb handle = OpenBenchDb(PayloadKind::kDelta, 16, 4096, cache_mode);
  const int depth = static_cast<int>(state.range(0));
  VersionId deepest = BuildLinear(*handle, RawType(*handle), depth);
  auto versions = handle->VersionsOf(deepest.oid);
  ODE_CHECK(versions.ok());
  for (auto _ : state) {
    for (const VersionId& vid : *versions) {
      auto bytes = handle->ReadVersion(vid);
      ODE_CHECK(bytes.ok());
      benchmark::DoNotOptimize(bytes->data());
    }
  }
  ReportOps(state, depth);
}

void BM_ReadAllVersions(benchmark::State& state) {
  ReadAllVersions(state, CacheMode::kWarm);
}
BENCHMARK(BM_ReadAllVersions)->Arg(16)->Arg(256);

void BM_ReadAllVersions_Cold(benchmark::State& state) {
  ReadAllVersions(state, CacheMode::kCold);
}
BENCHMARK(BM_ReadAllVersions_Cold)->Arg(16)->Arg(256);

}  // namespace
}  // namespace bench
}  // namespace ode

BENCHMARK_MAIN();
