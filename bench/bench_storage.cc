// TAB-D: the persistence substrate itself — record insert/read throughput,
// B+tree point ops, transaction commit overhead (WAL page logging), and the
// buffer-pool hit-ratio sweep (pool size vs working set).

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "storage/btree.h"
#include "storage/storage_engine.h"
#include "util/event_log.h"

namespace ode {
namespace bench {
namespace {

struct BenchEngine {
  std::unique_ptr<MemEnv> env;
  std::unique_ptr<StorageEngine> engine;
  StorageEngine* operator->() { return engine.get(); }
};

BenchEngine OpenEngine(size_t pool_pages = 4096,
                       EventLog* event_log = nullptr) {
  BenchEngine handle;
  handle.env = std::make_unique<MemEnv>();
  StorageOptions options;
  options.env = handle.env.get();
  options.path = "/bench";
  options.buffer_pool_pages = pool_pages;
  options.event_log = event_log;
  auto engine = StorageEngine::Open(options);
  ODE_CHECK(engine.ok());
  handle.engine = std::move(*engine);
  return handle;
}

void BM_HeapInsert(benchmark::State& state) {
  const size_t record_size = static_cast<size_t>(state.range(0));
  BenchEngine engine = OpenEngine();
  const std::string payload = MakePayload(record_size);
  for (auto _ : state) {
    Status s = engine->WithTxn([&](Txn& txn) -> Status {
      auto rid = engine->heap().Insert(&txn, Slice(payload));
      return rid.ok() ? Status::OK() : rid.status();
    });
    ODE_CHECK(s.ok());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          record_size);
}
BENCHMARK(BM_HeapInsert)->Arg(64)->Arg(1024)->Arg(16384);

void BM_HeapRead(benchmark::State& state) {
  const size_t record_size = static_cast<size_t>(state.range(0));
  BenchEngine engine = OpenEngine();
  RecordId rid;
  ODE_CHECK(engine->WithTxn([&](Txn& txn) -> Status {
    auto r = engine->heap().Insert(&txn, Slice(MakePayload(record_size)));
    if (!r.ok()) return r.status();
    rid = *r;
    return Status::OK();
  }).ok());
  for (auto _ : state) {
    Status s = engine->WithTxn([&](Txn& txn) -> Status {
      auto bytes = engine->heap().Read(&txn, rid);
      if (!bytes.ok()) return bytes.status();
      benchmark::DoNotOptimize(bytes->data());
      return Status::OK();
    });
    ODE_CHECK(s.ok());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          record_size);
}
BENCHMARK(BM_HeapRead)->Arg(64)->Arg(1024)->Arg(16384);

void BM_BTreePut(benchmark::State& state) {
  BenchEngine engine = OpenEngine();
  Random rng(1);
  uint64_t counter = 0;
  for (auto _ : state) {
    Status s = engine->WithTxn([&](Txn& txn) -> Status {
      auto tree = BTree::Open(&txn, 4);
      if (!tree.ok()) return tree.status();
      std::string key = "key" + std::to_string(counter++);
      return tree->Put(Slice(key), Slice("value"));
    });
    ODE_CHECK(s.ok());
  }
}
BENCHMARK(BM_BTreePut);

void BM_BTreeGet(benchmark::State& state) {
  BenchEngine engine = OpenEngine();
  constexpr int kKeys = 100000;
  ODE_CHECK(engine->WithTxn([&](Txn& txn) -> Status {
    auto tree = BTree::Open(&txn, 4);
    if (!tree.ok()) return tree.status();
    for (int i = 0; i < kKeys; ++i) {
      ODE_RETURN_IF_ERROR(
          tree->Put(Slice("key" + std::to_string(i)), Slice("value")));
    }
    return Status::OK();
  }).ok());
  Random rng(2);
  for (auto _ : state) {
    Status s = engine->WithTxn([&](Txn& txn) -> Status {
      auto tree = BTree::Open(&txn, 4);
      if (!tree.ok()) return tree.status();
      std::string key = "key" + std::to_string(rng.Uniform(kKeys));
      auto value = tree->Get(Slice(key));
      if (!value.ok()) return value.status();
      benchmark::DoNotOptimize(value->data());
      return Status::OK();
    });
    ODE_CHECK(s.ok());
  }
}
BENCHMARK(BM_BTreeGet);

// Transaction batching: N small writes per commit.  Shows the WAL's
// full-page-image cost amortizing across batched operations.
void BM_TxnBatchedWrites(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  BenchEngine engine = OpenEngine();
  uint64_t counter = 0;
  const uint64_t wal_before = engine->wal_total_bytes();
  for (auto _ : state) {
    Status s = engine->WithTxn([&](Txn& txn) -> Status {
      auto tree = BTree::Open(&txn, 4);
      if (!tree.ok()) return tree.status();
      for (int i = 0; i < batch; ++i) {
        ODE_RETURN_IF_ERROR(tree->Put(
            Slice("key" + std::to_string(counter++)), Slice("value")));
      }
      return Status::OK();
    });
    ODE_CHECK(s.ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * batch);
  state.counters["wal_bytes_per_item"] = benchmark::Counter(
      static_cast<double>(engine->wal_total_bytes() - wal_before) /
      (static_cast<double>(state.iterations()) * batch));
}
BENCHMARK(BM_TxnBatchedWrites)->Arg(1)->Arg(16)->Arg(256);

// Flight-recorder overhead on the commit hot path: the same single-Put
// commit loop with the event journal detached (Arg 0) vs attached (Arg 1).
// The ISSUE budget is <= 2% — the journaled run records one fixed-size ring
// append per commit (plus the group-commit batch record on the leader), no
// allocation, no shared lock.  Compare the two rows' real_time directly.
void BM_TxnCommitEventLog(benchmark::State& state) {
  const bool journaled = state.range(0) != 0;
  EventLog log;  // Outlives (declared before) the engine that records to it.
  BenchEngine engine = OpenEngine(4096, journaled ? &log : nullptr);
  uint64_t counter = 0;
  for (auto _ : state) {
    Status s = engine->WithTxn([&](Txn& txn) -> Status {
      auto tree = BTree::Open(&txn, 4);
      if (!tree.ok()) return tree.status();
      return tree->Put(Slice("key" + std::to_string(counter++)),
                       Slice("value"));
    });
    ODE_CHECK(s.ok());
  }
  state.SetLabel(journaled ? "event_log_on" : "event_log_off");
  ReportOps(state);
}
BENCHMARK(BM_TxnCommitEventLog)->Arg(0)->Arg(1);

// Buffer-pool hit ratio: random point reads over a working set larger or
// smaller than the pool.
void BM_PoolHitRatio(benchmark::State& state) {
  const size_t pool_pages = static_cast<size_t>(state.range(0));
  BenchEngine engine = OpenEngine(pool_pages);
  constexpr int kRecords = 4000;  // ~4000 pages of working set.
  std::vector<RecordId> rids;
  ODE_CHECK(engine->WithTxn([&](Txn& txn) -> Status {
    for (int i = 0; i < kRecords; ++i) {
      auto rid = engine->heap().Insert(&txn, Slice(MakePayload(3000, i)));
      if (!rid.ok()) return rid.status();
      rids.push_back(*rid);
    }
    return Status::OK();
  }).ok());
  ODE_CHECK(engine->Checkpoint().ok());
  engine->buffer_pool().DropAllUnpinned();

  Random rng(3);
  const auto before = engine->cache_stats();
  for (auto _ : state) {
    Status s = engine->WithTxn([&](Txn& txn) -> Status {
      auto bytes =
          engine->heap().Read(&txn, rids[rng.Uniform(rids.size())]);
      if (!bytes.ok()) return bytes.status();
      benchmark::DoNotOptimize(bytes->data());
      return Status::OK();
    });
    ODE_CHECK(s.ok());
  }
  const auto& after = engine->cache_stats();
  const double hits = static_cast<double>(after.hits - before.hits);
  const double misses = static_cast<double>(after.misses - before.misses);
  state.counters["hit_ratio"] =
      benchmark::Counter(hits / std::max(1.0, hits + misses));
}
BENCHMARK(BM_PoolHitRatio)->Arg(64)->Arg(512)->Arg(2048)->Arg(8192);

}  // namespace
}  // namespace bench
}  // namespace ode

ODE_BENCH_MAIN()
