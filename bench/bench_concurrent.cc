// TAB-K: multi-reader scaling — the single-writer / multi-reader read path
// under 1/2/4/8 concurrent reader threads.  The acceptance row is cache-warm
// generic dereference: with the read caches lock-striped and the engine lock
// taken shared, throughput should scale near-linearly with reader count
// (>= 3x from 1 -> 4 threads).  Cold variants measure the shared-lock +
// buffer-pool path (every read descends the catalog B+trees through the
// sharded pool); the _WithWriter variants pit readers against a writer
// committing exclusive transactions on a disjoint object set.
//
// google-benchmark's ->Threads(N) runs the benchmark body on N threads with
// a start barrier, so per-thread items_per_second sums to the aggregate
// throughput reported in BENCH_concurrent.json.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "core/version_ptr.h"

namespace ode {
namespace bench {
namespace {

struct Payload {
  static constexpr char kTypeName[] = "bench.Payload";
  std::string bytes;
  void Serialize(BufferWriter& w) const { w.WriteString(Slice(bytes)); }
  static StatusOr<Payload> Deserialize(BufferReader& r) {
    Payload p;
    ODE_RETURN_IF_ERROR(r.ReadString(&p.bytes));
    return p;
  }
};

constexpr int kReaderObjects = 64;
constexpr int kWriterObjects = 8;
constexpr int kHistory = 16;
constexpr size_t kPayloadBytes = 256;

/// Shared fixture for one multi-threaded benchmark run.  Thread 0 builds it
/// before the start barrier; every thread then reads from the same database.
struct SharedDb {
  BenchDb handle;
  std::vector<Ref<Payload>> reader_refs;    // Read-only during the run.
  std::vector<VersionPtr<Payload>> pinned;  // Specific (pinned) references.
  std::vector<ObjectId> writer_oids;        // Mutated by the writer thread.
};

SharedDb* g_shared = nullptr;

void SetUpShared(PayloadKind strategy, CacheMode cache_mode) {
  auto* shared = new SharedDb;
  shared->handle = OpenBenchDb(strategy, kHistory, 4096, cache_mode);
  Database& db = *shared->handle;
  for (int i = 0; i < kReaderObjects; ++i) {
    auto ref = pnew(db, Payload{MakePayload(kPayloadBytes, /*seed=*/i)});
    ODE_CHECK(ref.ok());
    for (int v = 1; v < kHistory; ++v) {
      ODE_CHECK(newversion(*ref).ok());
    }
    shared->reader_refs.push_back(*ref);
    auto pinned = ref->Pin();
    ODE_CHECK(pinned.ok());
    shared->pinned.push_back(*pinned);
  }
  for (int i = 0; i < kWriterObjects; ++i) {
    auto ref = pnew(db, Payload{MakePayload(kPayloadBytes, /*seed=*/1000 + i)});
    ODE_CHECK(ref.ok());
    shared->writer_oids.push_back(ref->oid());
  }
  // Warm the caches (a no-op in cold mode) so the measured region starts
  // from steady state.
  for (const auto& ref : shared->reader_refs) {
    ODE_CHECK(ref.Load().ok());
  }
  g_shared = shared;
}

void TearDownShared(benchmark::State& state) {
  const VersionStats stats = g_shared->handle->stats();
  state.counters["payload_cache_hits"] =
      static_cast<double>(stats.payload_cache_hits);
  state.counters["payload_cache_misses"] =
      static_cast<double>(stats.payload_cache_misses);
  state.counters["pool_shards"] = static_cast<double>(
      g_shared->handle->storage().buffer_pool().shard_count());
  delete g_shared;
  g_shared = nullptr;
}

// ---------------------------------------------------------------------------
// Read-only scaling
// ---------------------------------------------------------------------------

void ConcurrentDerefGeneric(benchmark::State& state, PayloadKind strategy,
                            CacheMode cache_mode) {
  if (state.thread_index() == 0) SetUpShared(strategy, cache_mode);
  const int stride = state.thread_index() + 1;
  int i = state.thread_index() * 7;
  for (auto _ : state) {
    const auto& ref =
        g_shared->reader_refs[(i += stride) % kReaderObjects];
    auto value = ref.Load();
    ODE_CHECK(value.ok());
    benchmark::DoNotOptimize(value->bytes.data());
  }
  ReportOps(state);
  if (state.thread_index() == 0) TearDownShared(state);
}

void BM_Concurrent_DerefGeneric_Warm(benchmark::State& state) {
  ConcurrentDerefGeneric(state, PayloadKind::kFull, CacheMode::kWarm);
}
BENCHMARK(BM_Concurrent_DerefGeneric_Warm)
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)
    ->UseRealTime();

void BM_Concurrent_DerefGeneric_Cold(benchmark::State& state) {
  ConcurrentDerefGeneric(state, PayloadKind::kFull, CacheMode::kCold);
}
BENCHMARK(BM_Concurrent_DerefGeneric_Cold)
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)
    ->UseRealTime();

void BM_Concurrent_DerefGeneric_Delta_Warm(benchmark::State& state) {
  ConcurrentDerefGeneric(state, PayloadKind::kDelta, CacheMode::kWarm);
}
BENCHMARK(BM_Concurrent_DerefGeneric_Delta_Warm)
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)
    ->UseRealTime();

void BM_Concurrent_DerefGeneric_Delta_Cold(benchmark::State& state) {
  ConcurrentDerefGeneric(state, PayloadKind::kDelta, CacheMode::kCold);
}
BENCHMARK(BM_Concurrent_DerefGeneric_Delta_Cold)
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)
    ->UseRealTime();

void ConcurrentDerefSpecific(benchmark::State& state, CacheMode cache_mode) {
  if (state.thread_index() == 0) {
    SetUpShared(PayloadKind::kFull, cache_mode);
  }
  const int stride = state.thread_index() + 1;
  int i = state.thread_index() * 7;
  for (auto _ : state) {
    const auto& pinned = g_shared->pinned[(i += stride) % kReaderObjects];
    auto value = pinned.Load();
    ODE_CHECK(value.ok());
    benchmark::DoNotOptimize(value->bytes.data());
  }
  ReportOps(state);
  if (state.thread_index() == 0) TearDownShared(state);
}

void BM_Concurrent_DerefSpecific_Warm(benchmark::State& state) {
  ConcurrentDerefSpecific(state, CacheMode::kWarm);
}
BENCHMARK(BM_Concurrent_DerefSpecific_Warm)
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)
    ->UseRealTime();

void BM_Concurrent_DerefSpecific_Cold(benchmark::State& state) {
  ConcurrentDerefSpecific(state, CacheMode::kCold);
}
BENCHMARK(BM_Concurrent_DerefSpecific_Cold)
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)
    ->UseRealTime();

// Traversals always go through the engine (shared lock + B+tree descent);
// they measure the ReadTxn path even in warm mode.
void BM_Concurrent_Traversal(benchmark::State& state) {
  if (state.thread_index() == 0) {
    SetUpShared(PayloadKind::kFull, CacheMode::kWarm);
  }
  const int stride = state.thread_index() + 1;
  int i = state.thread_index() * 7;
  // g_shared must only be touched inside the loop: the iteration barrier is
  // what orders thread 0's SetUpShared before the other threads' reads.
  for (auto _ : state) {
    Database& db = *g_shared->handle;
    const auto& ref = g_shared->reader_refs[(i += stride) % kReaderObjects];
    auto versions = db.VersionsOf(ref.oid());
    ODE_CHECK(versions.ok());
    auto prev = db.Tprevious(versions->back());
    ODE_CHECK(prev.ok());
    benchmark::DoNotOptimize(prev->has_value());
  }
  ReportOps(state);
  if (state.thread_index() == 0) TearDownShared(state);
}
BENCHMARK(BM_Concurrent_Traversal)
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)
    ->UseRealTime();

// Percentile view of the warm parallel read path.  Each thread keeps its
// own recorder; the counters average across threads (a sum of percentiles
// means nothing), so BENCH_concurrent.json shows what a typical reader
// experienced — including tail inflation from time-slicing on few cores.
void BM_Concurrent_DerefGeneric_Pct(benchmark::State& state) {
  if (state.thread_index() == 0) {
    SetUpShared(PayloadKind::kFull, CacheMode::kWarm);
  }
  const int stride = state.thread_index() + 1;
  int i = state.thread_index() * 7;
  LatencyRecorder recorder;
  for (auto _ : state) {
    const auto& ref = g_shared->reader_refs[(i += stride) % kReaderObjects];
    const uint64_t t0 = Histogram::NowNanos();
    auto value = ref.Load();
    recorder.Record(Histogram::NowNanos() - t0);
    ODE_CHECK(value.ok());
    benchmark::DoNotOptimize(value->bytes.data());
  }
  ReportOps(state);
  const HistogramSnapshot snap = recorder.Snapshot();
  using benchmark::Counter;
  state.counters["lat_p50_ns"] = Counter(snap.p50, Counter::kAvgThreads);
  state.counters["lat_p90_ns"] = Counter(snap.p90, Counter::kAvgThreads);
  state.counters["lat_p99_ns"] = Counter(snap.p99, Counter::kAvgThreads);
  state.counters["lat_max_ns"] =
      Counter(static_cast<double>(snap.max), Counter::kAvgThreads);
  if (state.thread_index() == 0) TearDownShared(state);
}
BENCHMARK(BM_Concurrent_DerefGeneric_Pct)
    ->Threads(1)->Threads(4)
    ->UseRealTime();

// ---------------------------------------------------------------------------
// Readers vs. one writer
// ---------------------------------------------------------------------------

// Thread 0 commits exclusive update transactions on a disjoint object set
// while the remaining threads dereference; items_per_second counts reader
// throughput only.  This measures how much writer lock hold time steals from
// the parallel read path.
void BM_Concurrent_DerefGeneric_WithWriter(benchmark::State& state) {
  if (state.thread_index() == 0) {
    SetUpShared(PayloadKind::kFull, CacheMode::kWarm);
    Database& db = *g_shared->handle;
    Random rng(7);
    std::string payload = MakePayload(kPayloadBytes, /*seed=*/99);
    int i = 0;
    for (auto _ : state) {
      SmallEdit(&payload, &rng);
      ODE_CHECK(db.UpdateLatest(g_shared->writer_oids[i++ % kWriterObjects],
                                Slice(payload))
                    .ok());
    }
    state.SetItemsProcessed(0);
    state.counters["writer_commits"] =
        static_cast<double>(state.iterations());
  } else {
    const int stride = state.thread_index() + 1;
    int i = state.thread_index() * 7;
    for (auto _ : state) {
      const auto& ref = g_shared->reader_refs[(i += stride) % kReaderObjects];
      auto value = ref.Load();
      ODE_CHECK(value.ok());
      benchmark::DoNotOptimize(value->bytes.data());
    }
    ReportOps(state);
  }
  if (state.thread_index() == 0) TearDownShared(state);
}
BENCHMARK(BM_Concurrent_DerefGeneric_WithWriter)
    ->Threads(2)->Threads(4)->Threads(8)
    ->UseRealTime();

// ---------------------------------------------------------------------------
// Writer scaling (striped latches + group commit)
// ---------------------------------------------------------------------------
//
// Every thread is a WRITER committing update transactions to its own object:
// the stripe latches never collide, so the runs measure how well the apply
// latch + group-commit queue turn concurrent commits into shared fsyncs.
// items_per_second and the explicit commits_per_second counter both report
// aggregate commit throughput; commits_per_fsync (from the metrics
// registry) reports the batching factor the run achieved.
//
// Same 1-CPU caveat as the reader rows: on a single hardware thread the
// scaling numbers mostly show time-slicing, not parallelism — and MemEnv's
// cheap Sync() understates how much a real disk gains from fsync
// amortization.  Treat cross-thread-count ratios as lower bounds.

struct WriterScalingDb {
  BenchDb handle;
  std::vector<ObjectId> oids;  // One per writer thread: disjoint stripes.
};

WriterScalingDb* g_writer_db = nullptr;

void SetUpWriterScaling(CommitMode mode, size_t max_batch, int threads) {
  auto* shared = new WriterScalingDb;
  shared->handle.env = std::make_unique<MemEnv>();
  DatabaseOptions options;
  options.storage.env = shared->handle.env.get();
  options.storage.path = "/bench";
  options.storage.buffer_pool_pages = 4096;
  options.storage.commit_mode = mode;
  options.storage.group_commit_max_batch = max_batch;
  Database* db = nullptr;
  {
    auto opened = Database::Open(options);
    ODE_CHECK(opened.ok());
    shared->handle.db = std::move(*opened);
    db = shared->handle.db.get();
  }
  const uint32_t type_id = RawType(*db);
  for (int t = 0; t < threads; ++t) {
    auto vid = db->PnewRaw(type_id, Slice(MakePayload(kPayloadBytes,
                                                      /*seed=*/500 + t)));
    ODE_CHECK(vid.ok());
    shared->oids.push_back(vid->oid);
  }
  g_writer_db = shared;
}

void TearDownWriterScaling(benchmark::State& state) {
  Database& db = *g_writer_db->handle;
  // Async runs: the measured region acked commits that are not durable yet;
  // fence them so every run pays for its whole workload.
  ODE_CHECK(db.WaitForDurable().ok());
  const VersionStats stats = db.stats();
  state.counters["commits_per_fsync"] =
      stats.group_commit_fsyncs == 0
          ? 0.0
          : static_cast<double>(stats.group_commit_commits) /
                static_cast<double>(stats.group_commit_fsyncs);
  state.counters["gc_batches"] =
      static_cast<double>(stats.group_commit_batches);
  delete g_writer_db;
  g_writer_db = nullptr;
}

void WriterScaling(benchmark::State& state, CommitMode mode,
                   size_t max_batch) {
  if (state.thread_index() == 0) {
    SetUpWriterScaling(mode, max_batch, state.threads());
  }
  Random rng(static_cast<uint64_t>(state.thread_index()) + 11);
  std::string payload =
      MakePayload(kPayloadBytes, /*seed=*/77 + state.thread_index());
  // g_writer_db is only touched inside the loop: the iteration barrier
  // orders thread 0's setup before the other threads' first commit.
  for (auto _ : state) {
    SmallEdit(&payload, &rng);
    Database& db = *g_writer_db->handle;
    ODE_CHECK(db.UpdateLatest(g_writer_db->oids[state.thread_index()],
                              Slice(payload))
                  .ok());
  }
  ReportOps(state);
  using benchmark::Counter;
  state.counters["commits_per_second"] =
      Counter(static_cast<double>(state.iterations()), Counter::kIsRate);
  if (state.thread_index() == 0) TearDownWriterScaling(state);
}

void BM_Concurrent_WriterScaling_Sync(benchmark::State& state) {
  WriterScaling(state, CommitMode::kSync, /*max_batch=*/64);
}
BENCHMARK(BM_Concurrent_WriterScaling_Sync)
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)
    ->UseRealTime();

void BM_Concurrent_WriterScaling_Async(benchmark::State& state) {
  WriterScaling(state, CommitMode::kAsync, /*max_batch=*/64);
}
BENCHMARK(BM_Concurrent_WriterScaling_Async)
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)
    ->UseRealTime();

// Batch-size sweep at a fixed writer count: how much does capping the
// leader's batch cost?  max_batch=1 degenerates to one fsync per commit
// (the old single-writer discipline) and anchors the comparison.
void BM_Concurrent_WriterScaling_BatchSweep(benchmark::State& state) {
  WriterScaling(state, CommitMode::kSync,
                static_cast<size_t>(state.range(0)));
}
BENCHMARK(BM_Concurrent_WriterScaling_BatchSweep)
    ->ArgName("max_batch")
    ->Arg(1)->Arg(4)->Arg(16)->Arg(64)
    ->Threads(4)
    ->UseRealTime();

}  // namespace
}  // namespace bench
}  // namespace ode

ODE_BENCH_MAIN_THREADS(8)
