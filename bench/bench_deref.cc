// TAB-B: dereference cost — generic (late-bound, always resolves to the
// latest version) vs specific (pinned VersionPtr) vs raw payload read.
// Late binding pays one extra header lookup per dereference; the paper's
// design bets this is cheap.  The history-length sweep shows the latest
// pointer keeps generic dereference O(1) in history size.
//
// Warm vs cold: the default (warm) configuration runs with the read-path
// caches on (payload cache + latest-pointer cache, core/payload_cache.h);
// the _Cold variants disable them, reproducing the seed read path where
// every dereference resolves headers through the catalog B+trees and
// re-applies the whole delta chain.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "core/version_ptr.h"

namespace ode {
namespace bench {
namespace {

struct Payload {
  static constexpr char kTypeName[] = "bench.Payload";
  std::string bytes;
  void Serialize(BufferWriter& w) const { w.WriteString(Slice(bytes)); }
  static StatusOr<Payload> Deserialize(BufferReader& r) {
    Payload p;
    ODE_RETURN_IF_ERROR(r.ReadString(&p.bytes));
    return p;
  }
};

/// Builds an object with `history` versions; returns a generic ref.
Ref<Payload> BuildHistory(Database& db, int history, size_t payload_size) {
  auto ref = pnew(db, Payload{MakePayload(payload_size)});
  ODE_CHECK(ref.ok());
  for (int i = 1; i < history; ++i) {
    ODE_CHECK(newversion(*ref).ok());
  }
  return *ref;
}

void DerefGeneric(benchmark::State& state, PayloadKind strategy,
                  CacheMode cache_mode) {
  BenchDb handle = OpenBenchDb(strategy, 16, 4096, cache_mode);
  Ref<Payload> ref =
      BuildHistory(*handle, static_cast<int>(state.range(0)), 256);
  for (auto _ : state) {
    auto value = ref.Load();
    ODE_CHECK(value.ok());
    benchmark::DoNotOptimize(value->bytes.data());
  }
  ReportOps(state);
  state.counters["payload_cache_hits"] = static_cast<double>(
      handle->stats().payload_cache_hits);
  state.counters["latest_cache_hits"] = static_cast<double>(
      handle->stats().latest_cache_hits);
}

void BM_Deref_Generic(benchmark::State& state) {
  DerefGeneric(state, PayloadKind::kFull, CacheMode::kWarm);
}
BENCHMARK(BM_Deref_Generic)->Arg(1)->Arg(16)->Arg(256)->Arg(4096);

void BM_Deref_Generic_Cold(benchmark::State& state) {
  DerefGeneric(state, PayloadKind::kFull, CacheMode::kCold);
}
BENCHMARK(BM_Deref_Generic_Cold)->Arg(1)->Arg(16)->Arg(256)->Arg(4096);

// The acceptance row for the caching layer: generic dereference under the
// delta strategy, where a cold read also pays the delta-chain walk.
void BM_Deref_Generic_Delta(benchmark::State& state) {
  DerefGeneric(state, PayloadKind::kDelta, CacheMode::kWarm);
}
BENCHMARK(BM_Deref_Generic_Delta)->Arg(1)->Arg(16)->Arg(256)->Arg(4096);

void BM_Deref_Generic_Delta_Cold(benchmark::State& state) {
  DerefGeneric(state, PayloadKind::kDelta, CacheMode::kCold);
}
BENCHMARK(BM_Deref_Generic_Delta_Cold)->Arg(1)->Arg(16)->Arg(256)->Arg(4096);

void DerefSpecific(benchmark::State& state, CacheMode cache_mode) {
  BenchDb handle = OpenBenchDb(PayloadKind::kFull, 16, 4096, cache_mode);
  Ref<Payload> ref =
      BuildHistory(*handle, static_cast<int>(state.range(0)), 256);
  auto pinned = ref.Pin();
  ODE_CHECK(pinned.ok());
  for (auto _ : state) {
    auto value = pinned->Load();
    ODE_CHECK(value.ok());
    benchmark::DoNotOptimize(value->bytes.data());
  }
  ReportOps(state);
}

void BM_Deref_Specific(benchmark::State& state) {
  DerefSpecific(state, CacheMode::kWarm);
}
BENCHMARK(BM_Deref_Specific)->Arg(1)->Arg(16)->Arg(256)->Arg(4096);

void BM_Deref_Specific_Cold(benchmark::State& state) {
  DerefSpecific(state, CacheMode::kCold);
}
BENCHMARK(BM_Deref_Specific_Cold)->Arg(1)->Arg(256)->Arg(4096);

// The floor: reading the payload bytes by version id, no typed decode.
void BM_Deref_RawRead(benchmark::State& state) {
  BenchDb handle = OpenBenchDb();
  Ref<Payload> ref =
      BuildHistory(*handle, static_cast<int>(state.range(0)), 256);
  auto latest = handle->Latest(ref.oid());
  ODE_CHECK(latest.ok());
  for (auto _ : state) {
    auto bytes = handle->ReadVersion(*latest);
    ODE_CHECK(bytes.ok());
    benchmark::DoNotOptimize(bytes->data());
  }
  ReportOps(state);
}
BENCHMARK(BM_Deref_RawRead)->Arg(1)->Arg(256);

// Percentile view of warm generic dereference: times every operation
// individually and exports lat_p50/p90/p99/max_ns counters alongside the
// mean.  Kept separate from BM_Deref_Generic so the per-op clock reads
// never perturb the headline mean-latency row that regression checks
// compare across PRs.
void BM_Deref_Generic_Pct(benchmark::State& state) {
  BenchDb handle = OpenBenchDb(PayloadKind::kFull, 16, 4096, CacheMode::kWarm);
  Ref<Payload> ref =
      BuildHistory(*handle, static_cast<int>(state.range(0)), 256);
  LatencyRecorder recorder;
  for (auto _ : state) {
    const uint64_t t0 = Histogram::NowNanos();
    auto value = ref.Load();
    recorder.Record(Histogram::NowNanos() - t0);
    ODE_CHECK(value.ok());
    benchmark::DoNotOptimize(value->bytes.data());
  }
  ReportOps(state);
  recorder.Report(state);
}
BENCHMARK(BM_Deref_Generic_Pct)->Arg(16)->Arg(4096);

// Cached VersionPtr dereference through operator-> (the O++ pointer idiom).
void BM_Deref_CachedArrow(benchmark::State& state) {
  BenchDb handle = OpenBenchDb();
  Ref<Payload> ref = BuildHistory(*handle, 16, 256);
  auto pinned = ref.Pin();
  ODE_CHECK(pinned.ok());
  for (auto _ : state) {
    benchmark::DoNotOptimize((*pinned)->bytes.size());
  }
  ReportOps(state);
}
BENCHMARK(BM_Deref_CachedArrow);

}  // namespace
}  // namespace bench
}  // namespace ode

ODE_BENCH_MAIN()
