// TAB-B: dereference cost — generic (late-bound, always resolves to the
// latest version) vs specific (pinned VersionPtr) vs raw payload read.
// Late binding pays one extra header lookup per dereference; the paper's
// design bets this is cheap.  The history-length sweep shows the latest
// pointer keeps generic dereference O(1) in history size.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "core/version_ptr.h"

namespace ode {
namespace bench {
namespace {

struct Payload {
  static constexpr char kTypeName[] = "bench.Payload";
  std::string bytes;
  void Serialize(BufferWriter& w) const { w.WriteString(Slice(bytes)); }
  static StatusOr<Payload> Deserialize(BufferReader& r) {
    Payload p;
    ODE_RETURN_IF_ERROR(r.ReadString(&p.bytes));
    return p;
  }
};

/// Builds an object with `history` versions; returns a generic ref.
Ref<Payload> BuildHistory(Database& db, int history, size_t payload_size) {
  auto ref = pnew(db, Payload{MakePayload(payload_size)});
  ODE_CHECK(ref.ok());
  for (int i = 1; i < history; ++i) {
    ODE_CHECK(newversion(*ref).ok());
  }
  return *ref;
}

void BM_Deref_Generic(benchmark::State& state) {
  BenchDb handle = OpenBenchDb();
  Ref<Payload> ref =
      BuildHistory(*handle, static_cast<int>(state.range(0)), 256);
  for (auto _ : state) {
    auto value = ref.Load();
    ODE_CHECK(value.ok());
    benchmark::DoNotOptimize(value->bytes.data());
  }
}
BENCHMARK(BM_Deref_Generic)->Arg(1)->Arg(16)->Arg(256)->Arg(4096);

void BM_Deref_Specific(benchmark::State& state) {
  BenchDb handle = OpenBenchDb();
  Ref<Payload> ref =
      BuildHistory(*handle, static_cast<int>(state.range(0)), 256);
  auto pinned = ref.Pin();
  ODE_CHECK(pinned.ok());
  for (auto _ : state) {
    auto value = pinned->Load();
    ODE_CHECK(value.ok());
    benchmark::DoNotOptimize(value->bytes.data());
  }
}
BENCHMARK(BM_Deref_Specific)->Arg(1)->Arg(16)->Arg(256)->Arg(4096);

// The floor: reading the payload bytes by version id, no typed decode.
void BM_Deref_RawRead(benchmark::State& state) {
  BenchDb handle = OpenBenchDb();
  Ref<Payload> ref =
      BuildHistory(*handle, static_cast<int>(state.range(0)), 256);
  auto latest = handle->Latest(ref.oid());
  ODE_CHECK(latest.ok());
  for (auto _ : state) {
    auto bytes = handle->ReadVersion(*latest);
    ODE_CHECK(bytes.ok());
    benchmark::DoNotOptimize(bytes->data());
  }
}
BENCHMARK(BM_Deref_RawRead)->Arg(1)->Arg(256);

// Cached VersionPtr dereference through operator-> (the O++ pointer idiom).
void BM_Deref_CachedArrow(benchmark::State& state) {
  BenchDb handle = OpenBenchDb();
  Ref<Payload> ref = BuildHistory(*handle, 16, 256);
  auto pinned = ref.Pin();
  ODE_CHECK(pinned.ok());
  for (auto _ : state) {
    benchmark::DoNotOptimize((*pinned)->bytes.size());
  }
}
BENCHMARK(BM_Deref_CachedArrow);

}  // namespace
}  // namespace bench
}  // namespace ode

BENCHMARK_MAIN();
