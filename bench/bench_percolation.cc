// TAB-G: the percolation fan-out the paper warns about ("creating a new
// version can lead to the automatic creation of a large number of versions
// of other objects", §2 — the reason percolation is a policy, not a
// primitive).  One user newversion triggers N (fan-out) or D (chain-depth)
// automatic versions; the cost scales accordingly.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "policy/percolation.h"

namespace ode {
namespace bench {
namespace {

// A component shared by `fanout` composite designs.
void BM_Percolation_FanOut(benchmark::State& state) {
  const int fanout = static_cast<int>(state.range(0));
  BenchDb handle = OpenBenchDb();
  const uint32_t type = RawType(*handle);
  PercolationPolicy policy(*handle);
  auto component = handle->PnewRaw(type, Slice("shared component"));
  ODE_CHECK(component.ok());
  for (int i = 0; i < fanout; ++i) {
    auto dependent = handle->PnewRaw(type, Slice("design"));
    ODE_CHECK(dependent.ok());
    policy.Declare(component->oid, dependent->oid);
  }
  for (auto _ : state) {
    auto vid = handle->NewVersionOf(component->oid);
    ODE_CHECK(vid.ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          (1 + fanout));
  state.counters["versions_per_op"] = 1 + fanout;
}
BENCHMARK(BM_Percolation_FanOut)->Arg(0)->Arg(4)->Arg(32)->Arg(256);

// A containment chain of depth D: leaf -> ... -> root composite.
void BM_Percolation_ChainDepth(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  BenchDb handle = OpenBenchDb();
  const uint32_t type = RawType(*handle);
  PercolationPolicy policy(*handle);
  auto leaf = handle->PnewRaw(type, Slice("leaf"));
  ODE_CHECK(leaf.ok());
  ObjectId previous = leaf->oid;
  for (int i = 0; i < depth; ++i) {
    auto composite = handle->PnewRaw(type, Slice("composite"));
    ODE_CHECK(composite.ok());
    policy.Declare(previous, composite->oid);
    previous = composite->oid;
  }
  for (auto _ : state) {
    auto vid = handle->NewVersionOf(leaf->oid);
    ODE_CHECK(vid.ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          (1 + depth));
  state.counters["versions_per_op"] = 1 + depth;
}
BENCHMARK(BM_Percolation_ChainDepth)->Arg(0)->Arg(4)->Arg(32)->Arg(128);

// The alternative the paper recommends: NO percolation — composites bind
// dynamically and simply see new component versions.  Constant cost,
// regardless of how many designs share the component.
void BM_NoPercolation_DynamicBinding(benchmark::State& state) {
  const int sharers = static_cast<int>(state.range(0));
  BenchDb handle = OpenBenchDb();
  const uint32_t type = RawType(*handle);
  auto component = handle->PnewRaw(type, Slice("shared component"));
  ODE_CHECK(component.ok());
  for (int i = 0; i < sharers; ++i) {
    auto dependent = handle->PnewRaw(type, Slice("design"));
    ODE_CHECK(dependent.ok());
    // Dependents hold generic references; nothing to declare.
  }
  for (auto _ : state) {
    auto vid = handle->NewVersionOf(component->oid);
    ODE_CHECK(vid.ok());
  }
  state.counters["versions_per_op"] = 1;
}
BENCHMARK(BM_NoPercolation_DynamicBinding)->Arg(0)->Arg(256);

}  // namespace
}  // namespace bench
}  // namespace ode

BENCHMARK_MAIN();
