// TAB-F: delta-chain ablation.  Materialization cost grows with the chain
// length between the read version and its nearest full keyframe; the
// keyframe interval trades storage (more full copies) against read latency.
// This is the quantitative side of the paper's delta-storage discussion
// (§2, citing SCCS/RCS).

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "core/delta.h"

namespace ode {
namespace bench {
namespace {

/// Builds a chain of `length` versions with small edits between steps under
/// the given keyframe interval; returns the newest version.
VersionId BuildChain(Database& db, uint32_t type, int length,
                     size_t payload_size) {
  std::string payload = MakePayload(payload_size);
  auto vid = db.PnewRaw(type, Slice(payload));
  ODE_CHECK(vid.ok());
  VersionId current = *vid;
  Random rng(11);
  for (int i = 1; i < length; ++i) {
    auto next = db.NewVersionFrom(current);
    ODE_CHECK(next.ok());
    SmallEdit(&payload, &rng);
    ODE_CHECK(db.UpdateVersion(*next, Slice(payload)).ok());
    current = *next;
  }
  return current;
}

void MaterializeBenchmark(benchmark::State& state, uint32_t keyframe,
                          CacheMode cache_mode = CacheMode::kWarm) {
  const int chain = static_cast<int>(state.range(0));
  BenchDb handle = OpenBenchDb(PayloadKind::kDelta, keyframe, 4096, cache_mode);
  const uint32_t type = RawType(*handle);
  VersionId newest = BuildChain(*handle, type, chain, 16384);
  for (auto _ : state) {
    auto bytes = handle->ReadVersion(newest);
    ODE_CHECK(bytes.ok());
    benchmark::DoNotOptimize(bytes->data());
  }
  ReportOps(state);
  auto meta = handle->Meta(newest);
  ODE_CHECK(meta.ok());
  state.counters["chain_len"] = meta->delta_chain_len;
  const auto& stats = handle->stats();
  state.counters["stored_bytes"] = benchmark::Counter(static_cast<double>(
      stats.full_bytes_written + stats.delta_bytes_written));
  state.counters["payload_cache_hits"] =
      static_cast<double>(stats.payload_cache_hits);
}

void BM_Materialize_Keyframe4(benchmark::State& state) {
  MaterializeBenchmark(state, 4);
}
BENCHMARK(BM_Materialize_Keyframe4)->Arg(2)->Arg(16)->Arg(128);

void BM_Materialize_Keyframe16(benchmark::State& state) {
  MaterializeBenchmark(state, 16);
}
BENCHMARK(BM_Materialize_Keyframe16)->Arg(2)->Arg(16)->Arg(128);

void BM_Materialize_Keyframe64(benchmark::State& state) {
  MaterializeBenchmark(state, 64);
}
BENCHMARK(BM_Materialize_Keyframe64)->Arg(2)->Arg(16)->Arg(128);

// Cold variants disable the payload cache, so every read re-applies the
// delta chain from the nearest keyframe — the seed read path, and the
// baseline for the caching layer's win.
void BM_Materialize_Keyframe16_Cold(benchmark::State& state) {
  MaterializeBenchmark(state, 16, CacheMode::kCold);
}
BENCHMARK(BM_Materialize_Keyframe16_Cold)->Arg(2)->Arg(16)->Arg(128);

void BM_Materialize_Keyframe64_Cold(benchmark::State& state) {
  MaterializeBenchmark(state, 64, CacheMode::kCold);
}
BENCHMARK(BM_Materialize_Keyframe64_Cold)->Arg(2)->Arg(16)->Arg(128);

// Percentile view of cold materialization (the read path with real tail
// behaviour: chain walks + page misses).  Exports lat_p50/p90/p99/max_ns
// counters into BENCH_delta.json.
void BM_Materialize_Pct(benchmark::State& state) {
  const int chain = static_cast<int>(state.range(0));
  BenchDb handle =
      OpenBenchDb(PayloadKind::kDelta, 16, 4096, CacheMode::kCold);
  const uint32_t type = RawType(*handle);
  VersionId newest = BuildChain(*handle, type, chain, 16384);
  LatencyRecorder recorder;
  for (auto _ : state) {
    const uint64_t t0 = Histogram::NowNanos();
    auto bytes = handle->ReadVersion(newest);
    recorder.Record(Histogram::NowNanos() - t0);
    ODE_CHECK(bytes.ok());
    benchmark::DoNotOptimize(bytes->data());
  }
  ReportOps(state);
  recorder.Report(state);
}
BENCHMARK(BM_Materialize_Pct)->Arg(16)->Arg(128);

// Full-copy baseline: reads are chain-length independent.
void BM_Materialize_FullCopy(benchmark::State& state) {
  const int chain = static_cast<int>(state.range(0));
  BenchDb handle = OpenBenchDb(PayloadKind::kFull);
  const uint32_t type = RawType(*handle);
  VersionId newest = BuildChain(*handle, type, chain, 16384);
  for (auto _ : state) {
    auto bytes = handle->ReadVersion(newest);
    ODE_CHECK(bytes.ok());
    benchmark::DoNotOptimize(bytes->data());
  }
  ReportOps(state);
  const auto& stats = handle->stats();
  state.counters["stored_bytes"] = benchmark::Counter(static_cast<double>(
      stats.full_bytes_written + stats.delta_bytes_written));
}
BENCHMARK(BM_Materialize_FullCopy)->Arg(2)->Arg(16)->Arg(128);

// Topology ablation: cold dereference cost vs chain depth for linear vs
// skip delta-base selection, with NO keyframe forcing (the topology alone
// determines how many deltas a read applies).  Linear applies depth-1
// deltas; skip applies at most popcount(depth) ~ log2(depth), so the sweep
// shows reads flattening while stored_bytes reports the space cost of the
// longer-range deltas.
void TopologyBenchmark(benchmark::State& state, DeltaTopology topology) {
  const int chain = static_cast<int>(state.range(0));
  BenchDb handle = OpenBenchDb(PayloadKind::kDelta, /*keyframe_interval=*/
                               1u << 20, 4096, CacheMode::kCold, topology);
  const uint32_t type = RawType(*handle);
  VersionId newest = BuildChain(*handle, type, chain, 16384);
  for (auto _ : state) {
    auto bytes = handle->ReadVersion(newest);
    ODE_CHECK(bytes.ok());
    benchmark::DoNotOptimize(bytes->data());
  }
  ReportOps(state);
  auto meta = handle->Meta(newest);
  ODE_CHECK(meta.ok());
  state.counters["chain_len"] = meta->delta_chain_len;
  const auto& stats = handle->stats();
  state.counters["stored_bytes"] = benchmark::Counter(static_cast<double>(
      stats.full_bytes_written + stats.delta_bytes_written));
  state.counters["delta_applications"] =
      static_cast<double>(stats.delta_applications);
}

void BM_ColdDeref_Linear(benchmark::State& state) {
  TopologyBenchmark(state, DeltaTopology::kLinear);
}
BENCHMARK(BM_ColdDeref_Linear)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_ColdDeref_Skip(benchmark::State& state) {
  TopologyBenchmark(state, DeltaTopology::kSkip);
}
BENCHMARK(BM_ColdDeref_Skip)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

// Content-addressed dedupe: write the SAME payload into range(0) objects
// and report physical vs logical bytes.  With dedupe one blob is stored and
// every further pnew is a refcount bump; the plain run rewrites the bytes
// every time.
void DedupeWriteBenchmark(benchmark::State& state, bool content_addressed) {
  const int objects = static_cast<int>(state.range(0));
  const std::string payload = MakePayload(16384);
  for (auto _ : state) {
    state.PauseTiming();
    BenchDb handle =
        OpenBenchDb(PayloadKind::kFull, 16, 4096, CacheMode::kWarm,
                    DeltaTopology::kSkip, content_addressed);
    const uint32_t type = RawType(*handle);
    state.ResumeTiming();
    for (int i = 0; i < objects; ++i) {
      ODE_CHECK(handle->PnewRaw(type, Slice(payload)).ok());
    }
    state.PauseTiming();
    const auto& stats = handle->stats();
    state.counters["logical_bytes"] = static_cast<double>(
        stats.full_bytes_written + stats.delta_bytes_written);
    state.counters["dedupe_bytes_saved"] =
        static_cast<double>(stats.payload_dedupe_bytes_saved);
    state.counters["blobs_created"] =
        static_cast<double>(stats.payload_blobs_created);
    state.ResumeTiming();
  }
  ReportOps(state, objects);
}

void BM_DuplicateWrites_Dedupe(benchmark::State& state) {
  DedupeWriteBenchmark(state, /*content_addressed=*/true);
}
BENCHMARK(BM_DuplicateWrites_Dedupe)->Arg(64);

void BM_DuplicateWrites_Plain(benchmark::State& state) {
  DedupeWriteBenchmark(state, /*content_addressed=*/false);
}
BENCHMARK(BM_DuplicateWrites_Plain)->Arg(64);

// The raw differ itself: encode cost vs payload size for a small edit.
void BM_DeltaEncode(benchmark::State& state) {
  const size_t size = static_cast<size_t>(state.range(0));
  std::string base = MakePayload(size);
  std::string target = base;
  Random rng(5);
  SmallEdit(&target, &rng);
  for (auto _ : state) {
    std::string encoded = delta::Encode(Slice(base), Slice(target));
    benchmark::DoNotOptimize(encoded.data());
  }
  ReportOps(state);
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * size);
}
BENCHMARK(BM_DeltaEncode)->Arg(1024)->Arg(16384)->Arg(262144);

void BM_DeltaApply(benchmark::State& state) {
  const size_t size = static_cast<size_t>(state.range(0));
  std::string base = MakePayload(size);
  std::string target = base;
  Random rng(6);
  SmallEdit(&target, &rng);
  const std::string encoded = delta::Encode(Slice(base), Slice(target));
  for (auto _ : state) {
    auto applied = delta::Apply(Slice(base), Slice(encoded));
    ODE_CHECK(applied.ok());
    benchmark::DoNotOptimize(applied->data());
  }
  ReportOps(state);
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * size);
}
BENCHMARK(BM_DeltaApply)->Arg(1024)->Arg(16384)->Arg(262144);

}  // namespace
}  // namespace bench
}  // namespace ode

ODE_BENCH_MAIN()
