// TAB-D addendum: the same commit path on the REAL filesystem, where every
// commit pays an fsync.  In-memory numbers isolate the algorithms; these
// show the durability floor a deployment actually sees.  (Plain binary —
// wall-clock fsync measurements don't fit the google-benchmark loop well.)

#include <chrono>
#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "core/database.h"
#include "core/version_ptr.h"

namespace ode {
namespace bench {
namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void MeasureCommits(int txns, int writes_per_txn) {
  const std::string path = "/tmp/ode_bench_disk";
  for (const char* name : {"/data.odb", "/wal.log"}) {
    (void)Env::Posix()->DeleteFile(path + name);
  }
  DatabaseOptions options;
  options.storage.path = path;
  auto db = Database::Open(options);
  ODE_CHECK(db.ok());
  const uint32_t type = RawType(**db);
  const std::string payload = MakePayload(256);

  const auto start = std::chrono::steady_clock::now();
  for (int t = 0; t < txns; ++t) {
    ODE_CHECK((*db)->Begin().ok());
    for (int w = 0; w < writes_per_txn; ++w) {
      ODE_CHECK((*db)->PnewRaw(type, Slice(payload)).ok());
    }
    ODE_CHECK((*db)->Commit().ok());
  }
  const double total_ms = MillisSince(start);
  std::printf(
      "disk commits  txns=%-5d writes/txn=%-3d total=%9.2f ms  "
      "%8.3f ms/commit  %8.0f writes/s\n",
      txns, writes_per_txn, total_ms, total_ms / txns,
      txns * writes_per_txn / (total_ms / 1000.0));
}

}  // namespace
}  // namespace bench
}  // namespace ode

int main() {
  std::printf(
      "TAB-D addendum: durable commit cost on the real filesystem "
      "(every commit fsyncs the WAL)\n\n");
  ode::bench::MeasureCommits(200, 1);
  ode::bench::MeasureCommits(200, 16);
  ode::bench::MeasureCommits(50, 256);
  return 0;
}
