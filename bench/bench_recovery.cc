// TAB-I: crash-recovery cost — WAL replay time as a function of the volume
// of committed-but-not-checkpointed work, plus checkpoint cost itself.
// (Plain binary: each measurement needs a fresh crashed database, which
// does not fit the google-benchmark steady-state loop.)

#include <chrono>
#include <cstdio>

#include "bench/bench_common.h"
#include "storage/btree.h"
#include "storage/fault_env.h"
#include "storage/storage_engine.h"

namespace ode {
namespace bench {
namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Commits `txns` transactions of `writes_per_txn` small tree writes against
/// a fault env, crashes, then measures reopen (= WAL replay) time.
void MeasureRecovery(int txns, int writes_per_txn) {
  FaultInjectionEnv env(nullptr);
  StorageOptions options;
  options.env = &env;
  options.path = "/db";
  options.checkpoint_wal_bytes = 1ull << 40;  // Never auto-checkpoint.
  uint64_t wal_bytes = 0;
  {
    auto engine = StorageEngine::Open(options);
    ODE_CHECK(engine.ok());
    uint64_t key = 0;
    for (int t = 0; t < txns; ++t) {
      ODE_CHECK((*engine)
                    ->WithTxn([&](Txn& txn) -> Status {
                      auto tree = BTree::Open(&txn, 4);
                      if (!tree.ok()) return tree.status();
                      for (int w = 0; w < writes_per_txn; ++w) {
                        ODE_RETURN_IF_ERROR(
                            tree->Put(Slice("key" + std::to_string(key++)),
                                      Slice("value")));
                      }
                      return Status::OK();
                    })
                    .ok());
    }
    wal_bytes = (*engine)->wal_bytes();
    env.CrashAndLoseUnsynced();
  }
  const auto start = std::chrono::steady_clock::now();
  auto engine = StorageEngine::Open(options);
  const double reopen_ms = MillisSince(start);
  ODE_CHECK(engine.ok());
  const RecoveryStats& stats = (*engine)->last_recovery();
  std::printf(
      "recovery  txns=%-5d writes/txn=%-4d wal=%8.2f MiB  replayed=%-6llu "
      "pages  reopen=%8.2f ms\n",
      txns, writes_per_txn, wal_bytes / (1024.0 * 1024.0),
      static_cast<unsigned long long>(stats.pages_replayed), reopen_ms);
}

/// Measures checkpoint cost for a given number of dirty pages.
void MeasureCheckpoint(int records) {
  auto env = std::make_unique<MemEnv>();
  StorageOptions options;
  options.env = env.get();
  options.path = "/db";
  options.checkpoint_wal_bytes = 1ull << 40;
  auto engine = StorageEngine::Open(options);
  ODE_CHECK(engine.ok());
  ODE_CHECK((*engine)
                ->WithTxn([&](Txn& txn) -> Status {
                  for (int i = 0; i < records; ++i) {
                    auto rid = (*engine)->heap().Insert(
                        &txn, Slice(MakePayload(3000, i)));
                    if (!rid.ok()) return rid.status();
                  }
                  return Status::OK();
                })
                .ok());
  const auto start = std::chrono::steady_clock::now();
  ODE_CHECK((*engine)->Checkpoint().ok());
  const double checkpoint_ms = MillisSince(start);
  std::printf("checkpoint  records=%-6d (~%d pages)  flush=%8.2f ms\n",
              records, records, checkpoint_ms);
}

}  // namespace
}  // namespace bench
}  // namespace ode

int main() {
  // The simulated crashes make the engine's close-time checkpoint fail by
  // design; keep those expected warnings out of the measurement output.
  ode::Logger::set_level(ode::LogLevel::kError);
  std::printf("TAB-I: crash recovery and checkpoint cost\n\n");
  for (int txns : {10, 100, 1000}) {
    ode::bench::MeasureRecovery(txns, 10);
  }
  ode::bench::MeasureRecovery(100, 100);
  std::printf("\n");
  for (int records : {100, 1000, 5000}) {
    ode::bench::MeasureCheckpoint(records);
  }
  return 0;
}
