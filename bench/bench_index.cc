// TAB-J: secondary index vs cluster scan — the classic crossover.  A point
// query through the index costs O(log N); the equivalent `suchthat`-style
// Select scans (and decodes) every latest version.  Also measures the
// index's maintenance tax on writes.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "core/index.h"
#include "core/query.h"

namespace ode {
namespace bench {
namespace {

struct Part {
  static constexpr char kTypeName[] = "bench.IndexedPart";
  std::string name;
  int64_t area = 0;
  void Serialize(BufferWriter& w) const {
    w.WriteString(Slice(name));
    w.WriteI64(area);
  }
  static StatusOr<Part> Deserialize(BufferReader& r) {
    Part p;
    ODE_RETURN_IF_ERROR(r.ReadString(&p.name));
    ODE_RETURN_IF_ERROR(r.ReadI64(&p.area));
    return p;
  }
};

std::unique_ptr<SecondaryIndex<Part>> OpenNameIndex(Database& db) {
  auto index = SecondaryIndex<Part>::Open(
      db, "part-by-name",
      [](const Part& p) { return std::optional<std::string>(p.name); });
  ODE_CHECK(index.ok());
  return std::move(*index);
}

void Populate(Database& db, int objects) {
  ODE_CHECK(db.Begin().ok());
  for (int i = 0; i < objects; ++i) {
    ODE_CHECK(pnew(db, Part{"part" + std::to_string(i), i}).ok());
  }
  ODE_CHECK(db.Commit().ok());
}

void BM_PointQuery_IndexLookup(benchmark::State& state) {
  const int objects = static_cast<int>(state.range(0));
  BenchDb handle = OpenBenchDb();
  auto index = OpenNameIndex(*handle.db);
  Populate(*handle.db, objects);
  Random rng(1);
  for (auto _ : state) {
    const std::string key = "part" + std::to_string(rng.Uniform(objects));
    auto hits = index->Lookup(Slice(key));
    ODE_CHECK(hits.ok());
    ODE_CHECK(hits->size() == 1);
  }
}
BENCHMARK(BM_PointQuery_IndexLookup)->Arg(64)->Arg(1024)->Arg(16384);

void BM_PointQuery_ClusterScan(benchmark::State& state) {
  const int objects = static_cast<int>(state.range(0));
  BenchDb handle = OpenBenchDb();
  Populate(*handle.db, objects);
  Random rng(1);
  for (auto _ : state) {
    const std::string key = "part" + std::to_string(rng.Uniform(objects));
    auto hits =
        Select<Part>(*handle.db, [&](const Part& p) { return p.name == key; });
    ODE_CHECK(hits.ok());
    ODE_CHECK(hits->size() == 1);
  }
}
BENCHMARK(BM_PointQuery_ClusterScan)->Arg(64)->Arg(1024)->Arg(4096);

void BM_RangeQuery_Index(benchmark::State& state) {
  const int objects = static_cast<int>(state.range(0));
  BenchDb handle = OpenBenchDb();
  auto index = SecondaryIndex<Part>::Open(
      *handle.db, "part-by-area", [](const Part& p) {
        return std::optional<std::string>(OrderedKeyFromInt(p.area));
      });
  ODE_CHECK(index.ok());
  Populate(*handle.db, objects);
  for (auto _ : state) {
    // A 1% band of the key space.
    auto hits = (*index)->Range(Slice(OrderedKeyFromInt(0)),
                                Slice(OrderedKeyFromInt(objects / 100)));
    ODE_CHECK(hits.ok());
    benchmark::DoNotOptimize(hits->size());
  }
}
BENCHMARK(BM_RangeQuery_Index)->Arg(1024)->Arg(16384);

// The write-side tax: pnew with 0, 1, or 2 live indexes over the type.
void WriteTaxBenchmark(benchmark::State& state, int indexes) {
  BenchDb handle = OpenBenchDb();
  std::vector<std::unique_ptr<SecondaryIndex<Part>>> live;
  if (indexes >= 1) live.push_back(OpenNameIndex(*handle.db));
  if (indexes >= 2) {
    auto by_area = SecondaryIndex<Part>::Open(
        *handle.db, "part-by-area", [](const Part& p) {
          return std::optional<std::string>(OrderedKeyFromInt(p.area));
        });
    ODE_CHECK(by_area.ok());
    live.push_back(std::move(*by_area));
  }
  int64_t i = 0;
  for (auto _ : state) {
    ODE_CHECK(pnew(*handle.db, Part{"p" + std::to_string(i), i}).ok());
    ++i;
  }
  state.counters["indexes"] = indexes;
}

void BM_WriteTax_NoIndex(benchmark::State& state) {
  WriteTaxBenchmark(state, 0);
}
BENCHMARK(BM_WriteTax_NoIndex);

void BM_WriteTax_OneIndex(benchmark::State& state) {
  WriteTaxBenchmark(state, 1);
}
BENCHMARK(BM_WriteTax_OneIndex);

void BM_WriteTax_TwoIndexes(benchmark::State& state) {
  WriteTaxBenchmark(state, 2);
}
BENCHMARK(BM_WriteTax_TwoIndexes);

}  // namespace
}  // namespace bench
}  // namespace ode

BENCHMARK_MAIN();
