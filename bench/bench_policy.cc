// TAB-E: configuration binding and context resolution.
//   - static vs dynamic Resolve (dynamic pays the latest-version lookup)
//   - ResolveAll over configurations of growing width
//   - context-stack resolution vs stack depth

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "policy/configuration.h"
#include "policy/context.h"

namespace ode {
namespace bench {
namespace {

void BM_Resolve_Static(benchmark::State& state) {
  BenchDb handle = OpenBenchDb();
  const uint32_t type = RawType(*handle);
  auto part = handle->PnewRaw(type, Slice("part"));
  ODE_CHECK(part.ok());
  auto config = Configuration::Create(*handle, "c");
  ODE_CHECK(config.ok());
  ODE_CHECK(config->BindStatic("cpu", *part).ok());
  for (auto _ : state) {
    auto vid = config->Resolve("cpu");
    ODE_CHECK(vid.ok());
    benchmark::DoNotOptimize(vid->vnum);
  }
}
BENCHMARK(BM_Resolve_Static);

void BM_Resolve_Dynamic(benchmark::State& state) {
  BenchDb handle = OpenBenchDb();
  const uint32_t type = RawType(*handle);
  auto part = handle->PnewRaw(type, Slice("part"));
  ODE_CHECK(part.ok());
  auto config = Configuration::Create(*handle, "c");
  ODE_CHECK(config.ok());
  ODE_CHECK(config->BindDynamic("cpu", part->oid).ok());
  for (auto _ : state) {
    auto vid = config->Resolve("cpu");
    ODE_CHECK(vid.ok());
    benchmark::DoNotOptimize(vid->vnum);
  }
}
BENCHMARK(BM_Resolve_Dynamic);

void BM_ResolveAll_Width(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  BenchDb handle = OpenBenchDb();
  const uint32_t type = RawType(*handle);
  auto config = Configuration::Create(*handle, "wide");
  ODE_CHECK(config.ok());
  for (int i = 0; i < width; ++i) {
    auto part = handle->PnewRaw(type, Slice("part"));
    ODE_CHECK(part.ok());
    // Half static, half dynamic — a realistic mixed configuration.
    if (i % 2 == 0) {
      ODE_CHECK(config->BindStatic("c" + std::to_string(i), *part).ok());
    } else {
      ODE_CHECK(config->BindDynamic("c" + std::to_string(i), part->oid).ok());
    }
  }
  for (auto _ : state) {
    auto all = config->ResolveAll();
    ODE_CHECK(all.ok());
    benchmark::DoNotOptimize(all->size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * width);
}
BENCHMARK(BM_ResolveAll_Width)->Arg(4)->Arg(32)->Arg(256);

void BM_ContextStackResolve(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  BenchDb handle = OpenBenchDb();
  const uint32_t type = RawType(*handle);
  auto target = handle->PnewRaw(type, Slice("x"));
  ODE_CHECK(target.ok());
  ContextStack stack(handle.db.get());
  // Only the BOTTOM context has a default for the target: worst case, the
  // whole stack is searched.
  for (int i = 0; i < depth; ++i) {
    auto context = Context::Create(*handle, "ctx" + std::to_string(i));
    ODE_CHECK(context.ok());
    if (i == 0) ODE_CHECK(context->SetDefault(*target).ok());
    stack.Push(*context);
  }
  for (auto _ : state) {
    auto vid = stack.Resolve(target->oid);
    ODE_CHECK(vid.ok());
    benchmark::DoNotOptimize(vid->vnum);
  }
}
BENCHMARK(BM_ContextStackResolve)->Arg(1)->Arg(8)->Arg(64);

void BM_Freeze(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  BenchDb handle = OpenBenchDb();
  const uint32_t type = RawType(*handle);
  std::vector<ObjectId> parts;
  for (int i = 0; i < width; ++i) {
    auto part = handle->PnewRaw(type, Slice("part"));
    ODE_CHECK(part.ok());
    parts.push_back(part->oid);
  }
  for (auto _ : state) {
    state.PauseTiming();
    auto config = Configuration::Create(*handle, "release");
    ODE_CHECK(config.ok());
    for (int i = 0; i < width; ++i) {
      ODE_CHECK(config->BindDynamic("c" + std::to_string(i), parts[i]).ok());
    }
    state.ResumeTiming();
    ODE_CHECK(config->Freeze().ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * width);
}
BENCHMARK(BM_Freeze)->Arg(8)->Arg(64);

}  // namespace
}  // namespace bench
}  // namespace ode

BENCHMARK_MAIN();
