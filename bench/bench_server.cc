// TAB-L: ode_server end-to-end load generator.
//
// Plain binary (no google-benchmark): it spins up an in-process ode_server
// on a MemEnv-backed database, drives it over real TCP sockets with a pool
// of client connections, and writes BENCH_server.json in the same JSON
// shape tools/run_bench.sh collects from the google-benchmark suites
// (name / iterations / real_time / items_per_second / lat_p*_ns counters).
//
// Scenarios, each at --connections parallel clients (default 4):
//   server_deref_sync        closed-loop: one request in flight per conn
//   server_deref_pipelined   closed-loop, --window requests in flight
//   server_deref_batch       batched deref, --batch items per round trip
//   server_mixed             90% deref / 10% mutation through the txn path
//   server_open_loop         target --qps across conns; latency measured
//                            from the scheduled (not actual) send time, so
//                            a stalled server shows up in p99 instead of
//                            being absorbed by the schedule slipping
//                            (coordinated omission)
//
// Usage:
//   bench_server [--connections N] [--duration-ms MS] [--objects N]
//                [--payload BYTES] [--window N] [--batch N] [--qps N]
//                [--workers N] [--out FILE]

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/database.h"
#include "net/client.h"
#include "net/server.h"
#include "util/metrics.h"
#include "util/random.h"

namespace {

using ode::Histogram;
using ode::HistogramSnapshot;
using ode::ObjectId;
using ode::net::Client;
using ode::net::DerefItem;

struct Config {
  int connections = 4;
  uint64_t duration_ms = 2000;
  uint64_t objects = 1024;
  size_t payload_bytes = 256;
  uint32_t window = 32;
  uint32_t batch = 64;
  uint64_t qps = 20000;
  int workers = 4;
  std::string out = "BENCH_server.json";
};

struct ScenarioResult {
  std::string name;
  uint64_t ops = 0;          ///< Logical operations (derefs count per item).
  uint64_t elapsed_ns = 0;
  HistogramSnapshot latency;  ///< Per-round-trip latency.
  uint64_t errors = 0;
};

/// One client thread of a closed-loop scenario: connect, run `body` until
/// the deadline, tally ops/errors into the shared accumulators.
void RunClients(const Config& config, uint16_t port,
                std::atomic<uint64_t>& ops, std::atomic<uint64_t>& errors,
                Histogram& latency,
                const std::function<void(int, Client&, uint64_t deadline_ns,
                                         std::atomic<uint64_t>&,
                                         std::atomic<uint64_t>&, Histogram&)>&
                    body) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(config.connections));
  const uint64_t deadline =
      Histogram::NowNanos() + config.duration_ms * 1'000'000ull;
  for (int c = 0; c < config.connections; ++c) {
    threads.emplace_back([&, c] {
      auto client = Client::Connect("127.0.0.1", port);
      ODE_CHECK(client.ok());
      body(c, **client, deadline, ops, errors, latency);
    });
  }
  for (auto& t : threads) t.join();
}

ScenarioResult RunScenario(
    const std::string& name, const Config& config, uint16_t port,
    const std::function<void(int, Client&, uint64_t, std::atomic<uint64_t>&,
                             std::atomic<uint64_t>&, Histogram&)>& body) {
  std::printf("== %s (%d connections, %" PRIu64 " ms)\n", name.c_str(),
              config.connections, config.duration_ms);
  std::atomic<uint64_t> ops{0};
  std::atomic<uint64_t> errors{0};
  Histogram latency;
  const uint64_t start = Histogram::NowNanos();
  RunClients(config, port, ops, errors, latency, body);
  ScenarioResult result;
  result.name = name;
  result.ops = ops.load();
  result.errors = errors.load();
  result.elapsed_ns = Histogram::NowNanos() - start;
  result.latency = latency.Snapshot();
  const double secs = static_cast<double>(result.elapsed_ns) / 1e9;
  std::printf("   %" PRIu64 " ops in %.2fs = %.0f ops/s; "
              "p50 %.0fns p99 %.0fns max %" PRIu64 "ns; %" PRIu64 " errors\n",
              result.ops, secs, static_cast<double>(result.ops) / secs,
              result.latency.p50, result.latency.p99, result.latency.max,
              result.errors);
  return result;
}

void WriteJson(const Config& config, const std::vector<ScenarioResult>& results,
               const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_server: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  const char* sha = std::getenv("ODE_GIT_SHA");
  std::fprintf(f,
               "{\n"
               "  \"context\": {\n"
               "    \"executable\": \"bench_server\",\n"
               "    \"git_sha\": \"%s\",\n"
               "    \"cpu_count\": \"%u\",\n"
               "    \"connections\": \"%d\",\n"
               "    \"server_workers\": \"%d\",\n"
               "    \"transport\": \"tcp-loopback\"\n"
               "  },\n"
               "  \"benchmarks\": [\n",
               sha != nullptr ? sha : "unknown",
               std::thread::hardware_concurrency(), config.connections,
               config.workers);
  for (size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& r = results[i];
    const double per_op_ns =
        r.ops == 0 ? 0.0
                   : static_cast<double>(r.elapsed_ns) /
                         static_cast<double>(r.ops);
    const double per_sec =
        r.elapsed_ns == 0
            ? 0.0
            : static_cast<double>(r.ops) * 1e9 /
                  static_cast<double>(r.elapsed_ns);
    std::fprintf(
        f,
        "    {\n"
        "      \"name\": \"%s\",\n"
        "      \"run_type\": \"iteration\",\n"
        "      \"iterations\": %" PRIu64 ",\n"
        "      \"real_time\": %.1f,\n"
        "      \"cpu_time\": %.1f,\n"
        "      \"time_unit\": \"ns\",\n"
        "      \"items_per_second\": %.1f,\n"
        "      \"lat_p50_ns\": %.1f,\n"
        "      \"lat_p90_ns\": %.1f,\n"
        "      \"lat_p99_ns\": %.1f,\n"
        "      \"lat_max_ns\": %.1f,\n"
        "      \"errors\": %" PRIu64 "\n"
        "    }%s\n",
        r.name.c_str(), r.ops, per_op_ns, per_op_ns, per_sec, r.latency.p50,
        r.latency.p90, r.latency.p99, static_cast<double>(r.latency.max),
        r.errors, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_server: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--connections") config.connections = std::atoi(value());
    else if (arg == "--duration-ms") config.duration_ms =
        static_cast<uint64_t>(std::atoll(value()));
    else if (arg == "--objects") config.objects =
        static_cast<uint64_t>(std::atoll(value()));
    else if (arg == "--payload") config.payload_bytes =
        static_cast<size_t>(std::atol(value()));
    else if (arg == "--window") config.window =
        static_cast<uint32_t>(std::atoi(value()));
    else if (arg == "--batch") config.batch =
        static_cast<uint32_t>(std::atoi(value()));
    else if (arg == "--qps") config.qps =
        static_cast<uint64_t>(std::atoll(value()));
    else if (arg == "--workers") config.workers = std::atoi(value());
    else if (arg == "--out") config.out = value();
    else {
      std::fprintf(stderr, "bench_server: unknown flag %s\n", arg.c_str());
      return 2;
    }
  }

  // In-process server on a MemEnv database: the numbers measure the wire
  // stack (codec, dispatcher, epoll loop, worker pool) plus the in-memory
  // engine, with real TCP loopback sockets in between.
  ode::bench::BenchDb handle = ode::bench::OpenBenchDb();
  const uint32_t type_id = ode::bench::RawType(*handle);
  const std::string payload = ode::bench::MakePayload(config.payload_bytes);
  for (uint64_t i = 0; i < config.objects; ++i) {
    ODE_CHECK(handle->PnewRaw(type_id, ode::Slice(payload)).ok());
  }

  ode::net::ServerOptions server_options;
  server_options.workers = config.workers;
  // The pipelined scenarios intentionally run deep windows; keep headroom.
  server_options.max_pipeline =
      std::max<size_t>(1024, 4ull * config.window);
  auto server = ode::net::Server::Start(*handle.db, server_options);
  ODE_CHECK(server.ok());
  const uint16_t port = (*server)->port();

  const uint64_t num_objects = config.objects;
  std::vector<ScenarioResult> results;

  results.push_back(RunScenario(
      "server_deref_sync/conns:" + std::to_string(config.connections),
      config, port,
      [&](int conn, Client& client, uint64_t deadline,
          std::atomic<uint64_t>& ops, std::atomic<uint64_t>& errors,
          Histogram& latency) {
        ode::Random rng(static_cast<uint64_t>(conn) + 1);
        uint64_t local_ops = 0, local_errors = 0;
        while (Histogram::NowNanos() < deadline) {
          const ObjectId oid{1 + rng.Uniform(num_objects)};
          const uint64_t t0 = Histogram::NowNanos();
          auto bytes = client.DerefLatest(oid);
          latency.Record(Histogram::NowNanos() - t0);
          if (bytes.ok()) ++local_ops; else ++local_errors;
        }
        ops.fetch_add(local_ops);
        errors.fetch_add(local_errors);
      }));

  results.push_back(RunScenario(
      "server_deref_pipelined/conns:" + std::to_string(config.connections) +
          "/window:" + std::to_string(config.window),
      config, port,
      [&](int conn, Client& client, uint64_t deadline,
          std::atomic<uint64_t>& ops, std::atomic<uint64_t>& errors,
          Histogram& latency) {
        ode::Random rng(static_cast<uint64_t>(conn) + 101);
        uint64_t local_ops = 0, local_errors = 0;
        std::vector<uint64_t> sent_at;  // FIFO; responses arrive in order.
        sent_at.reserve(config.window);
        size_t head = 0;
        auto recv_one = [&] {
          ode::net::Response resp;
          if (!client.Recv(&resp).ok() ||
              resp.status != ode::net::WireStatus::kOk) {
            ++local_errors;
          } else {
            ++local_ops;
          }
          latency.Record(Histogram::NowNanos() - sent_at[head++]);
        };
        while (Histogram::NowNanos() < deadline) {
          sent_at.clear();
          head = 0;
          for (uint32_t w = 0; w < config.window; ++w) {
            ode::net::Request req;
            req.op = ode::net::OpCode::kDerefLatest;
            req.oid = 1 + rng.Uniform(num_objects);
            ODE_CHECK(client.Send(req).ok());
            sent_at.push_back(Histogram::NowNanos());
          }
          ODE_CHECK(client.Flush().ok());
          while (head < sent_at.size()) recv_one();
        }
        ops.fetch_add(local_ops);
        errors.fetch_add(local_errors);
      }));

  results.push_back(RunScenario(
      "server_deref_batch/conns:" + std::to_string(config.connections) +
          "/batch:" + std::to_string(config.batch),
      config, port,
      [&](int conn, Client& client, uint64_t deadline,
          std::atomic<uint64_t>& ops, std::atomic<uint64_t>& errors,
          Histogram& latency) {
        ode::Random rng(static_cast<uint64_t>(conn) + 201);
        uint64_t local_ops = 0, local_errors = 0;
        std::vector<DerefItem> items(config.batch);
        while (Histogram::NowNanos() < deadline) {
          for (DerefItem& item : items) {
            item.oid = 1 + rng.Uniform(num_objects);
            item.vnum = ode::kNoVersion;  // Generic deref.
          }
          const uint64_t t0 = Histogram::NowNanos();
          auto batch = client.DerefBatch(items);
          latency.Record(Histogram::NowNanos() - t0);
          if (!batch.ok()) {
            ++local_errors;
            continue;
          }
          for (const auto& r : *batch) {
            if (r.status == ode::net::WireStatus::kOk) ++local_ops;
            else ++local_errors;
          }
        }
        ops.fetch_add(local_ops);
        errors.fetch_add(local_errors);
      }));

  results.push_back(RunScenario(
      "server_mixed/conns:" + std::to_string(config.connections),
      config, port,
      [&](int conn, Client& client, uint64_t deadline,
          std::atomic<uint64_t>& ops, std::atomic<uint64_t>& errors,
          Histogram& latency) {
        ode::Random rng(static_cast<uint64_t>(conn) + 301);
        std::string edit = payload;
        uint64_t local_ops = 0, local_errors = 0;
        while (Histogram::NowNanos() < deadline) {
          const ObjectId oid{1 + rng.Uniform(num_objects)};
          const uint64_t t0 = Histogram::NowNanos();
          bool ok;
          if (rng.Uniform(10) == 0) {
            // Mutation through the transactional path: new version + update.
            ode::bench::SmallEdit(&edit, &rng);
            ok = client.NewVersionOf(oid).ok() &&
                 client.UpdateLatest(oid, edit).ok();
          } else {
            ok = client.DerefLatest(oid).ok();
          }
          latency.Record(Histogram::NowNanos() - t0);
          if (ok) ++local_ops; else ++local_errors;
        }
        ops.fetch_add(local_ops);
        errors.fetch_add(local_errors);
      }));

  results.push_back(RunScenario(
      "server_open_loop/qps:" + std::to_string(config.qps),
      config, port,
      [&](int conn, Client& client, uint64_t deadline,
          std::atomic<uint64_t>& ops, std::atomic<uint64_t>& errors,
          Histogram& latency) {
        ode::Random rng(static_cast<uint64_t>(conn) + 401);
        const uint64_t interval_ns =
            1'000'000'000ull * static_cast<uint64_t>(config.connections) /
            std::max<uint64_t>(1, config.qps);
        uint64_t local_ops = 0, local_errors = 0;
        std::vector<uint64_t> due_at;  // FIFO of scheduled send times.
        size_t head = 0;
        uint32_t in_flight = 0;
        uint64_t next_due = Histogram::NowNanos();
        auto recv_one = [&] {
          ode::net::Response resp;
          if (client.Recv(&resp).ok() &&
              resp.status == ode::net::WireStatus::kOk) {
            ++local_ops;
          } else {
            ++local_errors;
          }
          latency.Record(Histogram::NowNanos() - due_at[head++]);
          --in_flight;
        };
        while (Histogram::NowNanos() < deadline) {
          const uint64_t now = Histogram::NowNanos();
          if (now < next_due) {
            if (in_flight > 0) {
              recv_one();  // Use the wait productively.
            } else {
              std::this_thread::sleep_for(
                  std::chrono::nanoseconds(next_due - now));
            }
            continue;
          }
          ode::net::Request req;
          req.op = ode::net::OpCode::kDerefLatest;
          req.oid = 1 + rng.Uniform(num_objects);
          ODE_CHECK(client.Send(req).ok());
          ODE_CHECK(client.Flush().ok());
          // Latency anchored on the schedule, not the actual send: if the
          // loop fell behind, the delay counts against the server.
          due_at.push_back(next_due);
          ++in_flight;
          next_due += interval_ns;
          if (in_flight >= config.window) recv_one();
        }
        while (in_flight > 0) recv_one();
        ops.fetch_add(local_ops);
        errors.fetch_add(local_errors);
      }));

  (*server)->Stop();
  WriteJson(config, results, config.out);
  return 0;
}
