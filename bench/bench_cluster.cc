// TAB-H: cluster (per-type extent) operations — the substrate of O++'s
// associative queries.  Scan cost is linear in cluster size; Select adds a
// payload materialization + decode per member.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "core/query.h"
#include "opp/runtime.h"

namespace ode {
namespace bench {
namespace {

struct Part {
  static constexpr char kTypeName[] = "bench.Part";
  std::string name;
  int64_t area = 0;
  void Serialize(BufferWriter& w) const {
    w.WriteString(Slice(name));
    w.WriteI64(area);
  }
  static StatusOr<Part> Deserialize(BufferReader& r) {
    Part p;
    ODE_RETURN_IF_ERROR(r.ReadString(&p.name));
    ODE_RETURN_IF_ERROR(r.ReadI64(&p.area));
    return p;
  }
};

BenchDb PopulatedDb(int objects) {
  BenchDb handle = OpenBenchDb();
  ODE_CHECK(handle->Begin().ok());
  for (int i = 0; i < objects; ++i) {
    auto ref = pnew(*handle.db, Part{"part" + std::to_string(i), i});
    ODE_CHECK(ref.ok());
  }
  ODE_CHECK(handle->Commit().ok());
  return handle;
}

void BM_ClusterScan(benchmark::State& state) {
  const int objects = static_cast<int>(state.range(0));
  BenchDb handle = PopulatedDb(objects);
  auto type_id = handle->TypeId<Part>();
  ODE_CHECK(type_id.ok());
  for (auto _ : state) {
    auto oids = handle->ClusterScan(*type_id);
    ODE_CHECK(oids.ok());
    ODE_CHECK(static_cast<int>(oids->size()) == objects);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * objects);
}
BENCHMARK(BM_ClusterScan)->Arg(16)->Arg(256)->Arg(4096);

void BM_Select_LoadsEveryLatest(benchmark::State& state) {
  const int objects = static_cast<int>(state.range(0));
  BenchDb handle = PopulatedDb(objects);
  for (auto _ : state) {
    auto selected = Select<Part>(
        *handle.db, [](const Part& p) { return p.area % 2 == 0; });
    ODE_CHECK(selected.ok());
    ODE_CHECK(static_cast<int>(selected->size()) == (objects + 1) / 2);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * objects);
}
BENCHMARK(BM_Select_LoadsEveryLatest)->Arg(16)->Arg(256)->Arg(4096);

void BM_OppClusterRange(benchmark::State& state) {
  const int objects = static_cast<int>(state.range(0));
  BenchDb handle = PopulatedDb(objects);
  for (auto _ : state) {
    int64_t total = 0;
    for (Ref<Part> part : opp::ClusterRange<Part>(*handle.db)) {
      total += part->area;
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * objects);
}
BENCHMARK(BM_OppClusterRange)->Arg(16)->Arg(256);

// Versioned members: the scan touches only latest versions, so history
// depth must not matter.
void BM_Select_WithDeepHistories(benchmark::State& state) {
  const int history = static_cast<int>(state.range(0));
  BenchDb handle = OpenBenchDb();
  constexpr int kObjects = 64;
  ODE_CHECK(handle->Begin().ok());
  for (int i = 0; i < kObjects; ++i) {
    auto ref = pnew(*handle.db, Part{"p" + std::to_string(i), i});
    ODE_CHECK(ref.ok());
    for (int v = 1; v < history; ++v) {
      ODE_CHECK(newversion(*ref).ok());
    }
  }
  ODE_CHECK(handle->Commit().ok());
  for (auto _ : state) {
    auto count =
        CountWhere<Part>(*handle.db, [](const Part&) { return true; });
    ODE_CHECK(count.ok());
    ODE_CHECK(static_cast<int>(*count) == kObjects);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kObjects);
}
BENCHMARK(BM_Select_WithDeepHistories)->Arg(1)->Arg(16)->Arg(128);

}  // namespace
}  // namespace bench
}  // namespace ode

BENCHMARK_MAIN();
