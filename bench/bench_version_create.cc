// TAB-A: version creation cost — full-copy vs delta strategy, over a sweep
// of object sizes.  The delta strategy's newversion takes the identity-delta
// fast path (no materialization of the base), so it should be roughly
// size-independent, while full-copy scales linearly with object size.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace ode {
namespace bench {
namespace {

void BM_Pnew(benchmark::State& state) {
  const size_t payload_size = static_cast<size_t>(state.range(0));
  BenchDb handle = OpenBenchDb();
  const uint32_t type = RawType(*handle);
  const std::string payload = MakePayload(payload_size);
  for (auto _ : state) {
    auto vid = handle->PnewRaw(type, Slice(payload));
    ODE_CHECK(vid.ok());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          payload_size);
}
BENCHMARK(BM_Pnew)->Arg(64)->Arg(1024)->Arg(16384)->Arg(65536);

void NewVersionBenchmark(benchmark::State& state, PayloadKind strategy) {
  const size_t payload_size = static_cast<size_t>(state.range(0));
  BenchDb handle = OpenBenchDb(strategy, /*keyframe_interval=*/16);
  const uint32_t type = RawType(*handle);
  auto root = handle->PnewRaw(type, Slice(MakePayload(payload_size)));
  ODE_CHECK(root.ok());
  for (auto _ : state) {
    auto vid = handle->NewVersionOf(root->oid);
    ODE_CHECK(vid.ok());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          payload_size);
  state.counters["full_payloads"] =
      static_cast<double>(handle->stats().full_payloads_written);
  state.counters["delta_payloads"] =
      static_cast<double>(handle->stats().delta_payloads_written);
}

void BM_NewVersion_FullCopy(benchmark::State& state) {
  NewVersionBenchmark(state, PayloadKind::kFull);
}
BENCHMARK(BM_NewVersion_FullCopy)->Arg(64)->Arg(1024)->Arg(16384)->Arg(65536);

void BM_NewVersion_Delta(benchmark::State& state) {
  NewVersionBenchmark(state, PayloadKind::kDelta);
}
BENCHMARK(BM_NewVersion_Delta)->Arg(64)->Arg(1024)->Arg(16384)->Arg(65536);

// Version creation followed by a small edit — the realistic CAD cycle
// (derive, then change a little).  Contrast the bytes written per version.
void EditCycleBenchmark(benchmark::State& state, PayloadKind strategy) {
  const size_t payload_size = static_cast<size_t>(state.range(0));
  BenchDb handle = OpenBenchDb(strategy, /*keyframe_interval=*/16);
  const uint32_t type = RawType(*handle);
  std::string payload = MakePayload(payload_size);
  auto root = handle->PnewRaw(type, Slice(payload));
  ODE_CHECK(root.ok());
  Random rng(7);
  for (auto _ : state) {
    auto vid = handle->NewVersionOf(root->oid);
    ODE_CHECK(vid.ok());
    SmallEdit(&payload, &rng);
    ODE_CHECK(handle->UpdateVersion(*vid, Slice(payload)).ok());
  }
  const auto& stats = handle->stats();
  state.counters["bytes_per_version"] = benchmark::Counter(
      static_cast<double>(stats.full_bytes_written +
                          stats.delta_bytes_written) /
      static_cast<double>(state.iterations()));
}

void BM_EditCycle_FullCopy(benchmark::State& state) {
  EditCycleBenchmark(state, PayloadKind::kFull);
}
BENCHMARK(BM_EditCycle_FullCopy)->Arg(1024)->Arg(16384)->Arg(65536);

void BM_EditCycle_Delta(benchmark::State& state) {
  EditCycleBenchmark(state, PayloadKind::kDelta);
}
BENCHMARK(BM_EditCycle_Delta)->Arg(1024)->Arg(16384)->Arg(65536);

}  // namespace
}  // namespace bench
}  // namespace ode

BENCHMARK_MAIN();
