// FIG-1..FIG-6 regenerator: replays the paper's operation sequences and
// prints the version-graph state each figure depicts (§4, §5 of "Object
// Versioning in Ode").  The same states are asserted structurally in
// tests/integration/paper_figures_test.cc.
//
// Usage: fig_paper_graphs [--fig=N]     (default: all figures)

#include <cstdio>
#include <cstring>
#include <string>

#include "bench/bench_common.h"
#include "core/version_ptr.h"
#include "policy/configuration.h"
#include "policy/history.h"

namespace {

using ode::bench::BenchDb;
using ode::bench::OpenBenchDb;
using ode::bench::RawType;

void PrintGraph(ode::Database& db, ode::ObjectId oid) {
  auto rendered = ode::history::RenderGraph(db, oid);
  std::printf("%s", rendered.ok() ? rendered->c_str() : "render failed\n");
}

ode::VersionId MustPnew(ode::Database& db, uint32_t type,
                        const std::string& payload) {
  auto vid = db.PnewRaw(type, ode::Slice(payload));
  ODE_CHECK(vid.ok());
  return *vid;
}

ode::VersionId MustDerive(ode::Database& db, ode::VersionId base) {
  auto vid = db.NewVersionFrom(base);
  ODE_CHECK(vid.ok());
  return *vid;
}

void Fig1() {
  std::printf("--- FIG-1: p = pnew ...  (one object, one version) ---\n");
  BenchDb handle = OpenBenchDb();
  const uint32_t type = RawType(*handle);
  ode::VersionId v0 = MustPnew(*handle, type, "initial state");
  PrintGraph(*handle, v0.oid);
  std::printf("\n");
}

void Fig2() {
  std::printf(
      "--- FIG-2: newversion(p)  (v2 is a revision of v1; p now denotes v2) "
      "---\n");
  BenchDb handle = OpenBenchDb();
  const uint32_t type = RawType(*handle);
  ode::VersionId v0 = MustPnew(*handle, type, "v0");
  MustDerive(*handle, v0);
  PrintGraph(*handle, v0.oid);
  std::printf("\n");
}

void Fig3() {
  std::printf(
      "--- FIG-3: two newversion(vp0) calls  (v2, v3 are alternatives) "
      "---\n");
  BenchDb handle = OpenBenchDb();
  const uint32_t type = RawType(*handle);
  ode::VersionId v0 = MustPnew(*handle, type, "v0");
  MustDerive(*handle, v0);
  MustDerive(*handle, v0);
  PrintGraph(*handle, v0.oid);
  std::printf("\n");
}

void Fig4() {
  std::printf(
      "--- FIG-4: newversion(vp1)  (v4,v2,v1 form a version history) ---\n");
  BenchDb handle = OpenBenchDb();
  const uint32_t type = RawType(*handle);
  ode::VersionId v0 = MustPnew(*handle, type, "v0");
  ode::VersionId v1 = MustDerive(*handle, v0);
  MustDerive(*handle, v0);
  MustDerive(*handle, v1);
  PrintGraph(*handle, v0.oid);
  auto path = ode::history::PathToRoot(*handle, ode::VersionId{v0.oid, 4});
  if (path.ok()) {
    std::printf("version history of v4:");
    for (ode::VersionId vid : *path) std::printf(" v%u", vid.vnum);
    std::printf("\n");
  }
  std::printf("\n");
}

void Fig5() {
  std::printf(
      "--- FIG-5: pdelete(vid)  (deletion splices both relationships) ---\n");
  BenchDb handle = OpenBenchDb();
  const uint32_t type = RawType(*handle);
  ode::VersionId v0 = MustPnew(*handle, type, "v0");
  ode::VersionId v1 = MustDerive(*handle, v0);
  MustDerive(*handle, v0);
  MustDerive(*handle, v1);
  std::printf("before deleting v%u:\n", v1.vnum);
  PrintGraph(*handle, v0.oid);
  ODE_CHECK(handle->PdeleteVersion(v1).ok());
  std::printf("after deleting v%u (its child re-parents to v%u):\n", v1.vnum,
              v0.vnum);
  PrintGraph(*handle, v0.oid);
  std::printf("\n");
}

void Fig6() {
  std::printf(
      "--- FIG-6: the DMS ALU example (representations as configurations) "
      "---\n");
  BenchDb handle = OpenBenchDb();
  ode::Database& db = *handle;
  const uint32_t type = RawType(db);
  ode::VersionId schematic = MustPnew(db, type, "schematic rev A");
  ode::VersionId vectors = MustPnew(db, type, "vectors rev A");
  ode::VersionId timing_cmds = MustPnew(db, type, "timing rev A");

  auto timing_rep = ode::Configuration::Create(db, "alu.timing");
  ODE_CHECK(timing_rep.ok());
  ODE_CHECK(timing_rep->BindDynamic("schematic", schematic.oid).ok());
  ODE_CHECK(timing_rep->BindDynamic("vectors", vectors.oid).ok());
  ODE_CHECK(timing_rep->BindDynamic("timing", timing_cmds.oid).ok());
  ODE_CHECK(timing_rep->Freeze().ok());  // Release 1.0.

  // Evolution after the release: revision + alternative of the schematic.
  ode::VersionId rev_b = MustDerive(db, schematic);
  ODE_CHECK(db.UpdateVersion(rev_b, ode::Slice("schematic rev B")).ok());
  ode::VersionId alt = MustDerive(db, schematic);
  ODE_CHECK(db.UpdateVersion(alt, ode::Slice("schematic rev A'")).ok());

  std::printf("schematic data object:\n");
  PrintGraph(db, schematic.oid);
  auto resolved = timing_rep->ResolveAll();
  ODE_CHECK(resolved.ok());
  std::printf("frozen timing representation still binds:");
  for (const auto& [component, vid] : *resolved) {
    std::printf(" %s=v%u", component.c_str(), vid.vnum);
  }
  std::printf("\nlatest schematic is v%u (\"%s\")\n",
              db.Latest(schematic.oid)->vnum,
              db.ReadLatest(schematic.oid)->c_str());
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  int only = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--fig=", 6) == 0) only = std::atoi(argv[i] + 6);
  }
  std::printf("Reproducing the version-graph figures of "
              "\"Object Versioning in Ode\" (ICDE 1991)\n\n");
  if (only == 0 || only == 1) Fig1();
  if (only == 0 || only == 2) Fig2();
  if (only == 0 || only == 3) Fig3();
  if (only == 0 || only == 4) Fig4();
  if (only == 0 || only == 5) Fig5();
  if (only == 0 || only == 6) Fig6();
  return 0;
}
