#ifndef ODE_BENCH_BENCH_COMMON_H_
#define ODE_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>

#include "core/database.h"
#include "storage/env.h"
#include "util/logging.h"
#include "util/random.h"

namespace ode {
namespace bench {

/// An in-memory database plus the env that backs it (the env must outlive
/// the database).  Benchmarks run on MemEnv so they measure the algorithms,
/// not the host's disk; EXPERIMENTS.md discusses the substitution.
struct BenchDb {
  std::unique_ptr<MemEnv> env;
  std::unique_ptr<Database> db;

  Database& operator*() { return *db; }
  Database* operator->() { return db.get(); }
};

/// Read-path cache sizing for a benchmark database.  kWarm is the default
/// production configuration; kCold disables both caches, reproducing the
/// pre-cache read path (every dereference resolves through the catalog and
/// re-applies delta chains).
enum class CacheMode { kWarm, kCold };

inline BenchDb OpenBenchDb(PayloadKind strategy = PayloadKind::kFull,
                           uint32_t keyframe_interval = 16,
                           size_t pool_pages = 4096,
                           CacheMode cache_mode = CacheMode::kWarm) {
  BenchDb handle;
  handle.env = std::make_unique<MemEnv>();
  DatabaseOptions options;
  options.storage.env = handle.env.get();
  options.storage.path = "/bench";
  options.storage.buffer_pool_pages = pool_pages;
  options.payload_strategy = strategy;
  options.delta_keyframe_interval = keyframe_interval;
  if (cache_mode == CacheMode::kCold) {
    options.payload_cache_bytes = 0;
    options.latest_cache_entries = 0;
  }
  auto db = Database::Open(options);
  ODE_CHECK(db.ok());
  handle.db = std::move(*db);
  return handle;
}

/// Registers a raw type and returns its id.
inline uint32_t RawType(Database& db) {
  auto type_id = db.RegisterType("bench.raw");
  ODE_CHECK(type_id.ok());
  return *type_id;
}

/// Deterministic payload of `size` bytes.
inline std::string MakePayload(size_t size, uint64_t seed = 42) {
  Random rng(seed);
  return rng.NextBytes(size);
}

/// Mutates ~`edits` bytes of `payload` in place (models a small design
/// change between versions).
inline void SmallEdit(std::string* payload, Random* rng, int edits = 4) {
  if (payload->empty()) return;
  for (int i = 0; i < edits; ++i) {
    (*payload)[rng->Uniform(payload->size())] ^= 0x5a;
  }
}

/// Records `ops_per_iteration` logical operations per iteration so every
/// suite reports a comparable items_per_second in the JSON output
/// (tools/run_bench.sh -> BENCH_*.json).  Templated on the state type so
/// including this header does not require google-benchmark (some binaries
/// in bench/ are plain executables).
template <typename State>
inline void ReportOps(State& state, int64_t ops_per_iteration = 1) {
  state.SetItemsProcessed(state.iterations() * ops_per_iteration);
}

}  // namespace bench
}  // namespace ode

#endif  // ODE_BENCH_BENCH_COMMON_H_
