#ifndef ODE_BENCH_BENCH_COMMON_H_
#define ODE_BENCH_BENCH_COMMON_H_

#include <cstdlib>
#include <memory>
#include <string>
#include <thread>

#include "core/database.h"
#include "storage/env.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/random.h"

namespace ode {
namespace bench {

/// An in-memory database plus the env that backs it (the env must outlive
/// the database).  Benchmarks run on MemEnv so they measure the algorithms,
/// not the host's disk; EXPERIMENTS.md discusses the substitution.
struct BenchDb {
  std::unique_ptr<MemEnv> env;
  std::unique_ptr<Database> db;

  Database& operator*() { return *db; }
  Database* operator->() { return db.get(); }
};

/// Read-path cache sizing for a benchmark database.  kWarm is the default
/// production configuration; kCold disables both caches, reproducing the
/// pre-cache read path (every dereference resolves through the catalog and
/// re-applies delta chains).
enum class CacheMode { kWarm, kCold };

inline BenchDb OpenBenchDb(PayloadKind strategy = PayloadKind::kFull,
                           uint32_t keyframe_interval = 16,
                           size_t pool_pages = 4096,
                           CacheMode cache_mode = CacheMode::kWarm,
                           DeltaTopology topology = DeltaTopology::kSkip,
                           bool content_addressed = true) {
  BenchDb handle;
  handle.env = std::make_unique<MemEnv>();
  DatabaseOptions options;
  options.storage.env = handle.env.get();
  options.storage.path = "/bench";
  options.storage.buffer_pool_pages = pool_pages;
  options.payload_strategy = strategy;
  options.delta_keyframe_interval = keyframe_interval;
  options.delta_topology = topology;
  options.content_addressed_payloads = content_addressed;
  if (cache_mode == CacheMode::kCold) {
    options.payload_cache_bytes = 0;
    options.latest_cache_entries = 0;
  }
  auto db = Database::Open(options);
  ODE_CHECK(db.ok());
  handle.db = std::move(*db);
  return handle;
}

/// Registers a raw type and returns its id.
inline uint32_t RawType(Database& db) {
  auto type_id = db.RegisterType("bench.raw");
  ODE_CHECK(type_id.ok());
  return *type_id;
}

/// Deterministic payload of `size` bytes.
inline std::string MakePayload(size_t size, uint64_t seed = 42) {
  Random rng(seed);
  return rng.NextBytes(size);
}

/// Mutates ~`edits` bytes of `payload` in place (models a small design
/// change between versions).
inline void SmallEdit(std::string* payload, Random* rng, int edits = 4) {
  if (payload->empty()) return;
  for (int i = 0; i < edits; ++i) {
    (*payload)[rng->Uniform(payload->size())] ^= 0x5a;
  }
}

/// Records `ops_per_iteration` logical operations per iteration so every
/// suite reports a comparable items_per_second in the JSON output
/// (tools/run_bench.sh -> BENCH_*.json).  Templated on the state type so
/// including this header does not require google-benchmark (some binaries
/// in bench/ are plain executables).
template <typename State>
inline void ReportOps(State& state, int64_t ops_per_iteration = 1) {
  state.SetItemsProcessed(state.iterations() * ops_per_iteration);
}

/// Per-operation latency distribution for a benchmark loop: the caller
/// times each operation (Start/Stop or Record) and the destructor-free
/// Report() exports p50/p90/p99/max as benchmark counters, which
/// tools/run_bench.sh carries into BENCH_*.json.  Mean throughput alone
/// hides tail effects (a checkpoint stall, a cache-miss burst); the
/// percentile counters make them visible per suite run.
class LatencyRecorder {
 public:
  void Record(uint64_t nanos) { hist_.Record(nanos); }

  HistogramSnapshot Snapshot() const { return hist_.Snapshot(); }

  /// Copies the distribution into `state.counters` (p50/p90/p99/max, in
  /// nanoseconds).  Call once after the benchmark loop.
  template <typename State>
  void Report(State& state) const {
    const HistogramSnapshot snap = hist_.Snapshot();
    state.counters["lat_p50_ns"] = snap.p50;
    state.counters["lat_p90_ns"] = snap.p90;
    state.counters["lat_p99_ns"] = snap.p99;
    state.counters["lat_max_ns"] = static_cast<double>(snap.max);
  }

 private:
  Histogram hist_;
};

// The context helpers need google-benchmark itself; they are compiled only
// for translation units that already included <benchmark/benchmark.h>
// (which the suites do before this header), keeping bench_common.h usable
// from the plain executables in bench/.
#ifdef BENCHMARK_BENCHMARK_H_

/// Adds run-provenance keys to the benchmark JSON "context" object:
/// cpu_count / hardware_concurrency (how parallel the host is — interprets
/// the _Concurrent suites) and git_sha (which commit produced the numbers;
/// tools/run_bench.sh exports ODE_GIT_SHA).  `max_threads` is the widest
/// ->Threads(N) the suite configures; when it exceeds the host's CPU count
/// the context records an explicit oversubscription warning, so a
/// BENCH_*.json from a small container is never mistaken for a scaling
/// measurement.  Must run before benchmark::Initialize.
inline void AddStandardContext(unsigned max_threads = 1) {
  const unsigned cpu_count = std::thread::hardware_concurrency();
  benchmark::AddCustomContext("cpu_count", std::to_string(cpu_count));
  benchmark::AddCustomContext("hardware_concurrency",
                              std::to_string(cpu_count));
  if (max_threads > cpu_count && cpu_count > 0) {
    benchmark::AddCustomContext(
        "warning_cpu_oversubscribed",
        "suite configures up to " + std::to_string(max_threads) +
            " threads on a " + std::to_string(cpu_count) +
            "-cpu host; multi-thread results measure contention, not "
            "parallel scaling");
  }
  const char* sha = std::getenv("ODE_GIT_SHA");
  benchmark::AddCustomContext("git_sha", sha != nullptr ? sha : "unknown");
}

#endif  // BENCHMARK_BENCHMARK_H_

}  // namespace bench
}  // namespace ode

/// Drop-in replacement for BENCHMARK_MAIN() that stamps the standard
/// context keys into the JSON output first.  Suites that register
/// ->Threads(N) must use ODE_BENCH_MAIN_THREADS with their widest N so the
/// context can flag CPU oversubscription.
#define ODE_BENCH_MAIN() ODE_BENCH_MAIN_THREADS(1)

#define ODE_BENCH_MAIN_THREADS(max_threads)                   \
  int main(int argc, char** argv) {                           \
    ode::bench::AddStandardContext(max_threads);              \
    benchmark::Initialize(&argc, argv);                       \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) { \
      return 1;                                               \
    }                                                         \
    benchmark::RunSpecifiedBenchmarks();                      \
    benchmark::Shutdown();                                    \
    return 0;                                                 \
  }

#endif  // ODE_BENCH_BENCH_COMMON_H_
