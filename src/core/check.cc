#include "core/check.h"

#include <map>
#include <set>
#include <sstream>

#include "core/cursor.h"
#include "storage/payload_store.h"

namespace ode {

namespace {

std::string Describe(VersionId vid) {
  std::ostringstream os;
  os << vid;
  return os.str();
}

/// Expected references to one content-addressed blob, tallied over pass 1.
struct RefTally {
  uint64_t count = 0;
  RecordId rid;  ///< The record every referencing meta must agree on.
};

}  // namespace

StatusOr<CheckReport> CheckDatabase(Database& db) {
  CheckReport report;
  auto complain = [&report](const std::string& message) {
    report.errors.push_back(message);
  };

  // Pass 1: every object and its versions.
  std::map<uint64_t, uint32_t> object_types;  // oid -> type (for clusters).
  std::map<Hash128, RefTally> expected_refs;  // For the pass-3 store audit.
  ObjectCursor objects(db);
  for (; objects.Valid(); objects.Next()) {
    const ObjectId oid = objects.oid();
    const ObjectHeader header = objects.header();
    ++report.objects_checked;
    object_types[oid.value] = header.type_id;

    std::set<VersionNum> live;
    VersionNum max_vnum = 0;
    std::map<VersionNum, VersionMeta> metas;
    VersionCursor versions(db, oid);
    for (; versions.Valid(); versions.Next()) {
      const VersionId vid = versions.vid();
      const VersionMeta& meta = versions.meta();
      ++report.versions_checked;
      live.insert(vid.vnum);
      max_vnum = std::max(max_vnum, vid.vnum);
      metas[vid.vnum] = meta;
      if (meta.vnum != vid.vnum) {
        complain("version key/meta vnum mismatch at " + Describe(vid));
      }
      if (!meta.content_hash.IsZero()) {
        RefTally& tally = expected_refs[meta.content_hash];
        if (tally.count == 0) {
          tally.rid = meta.payload;
        } else if (!(tally.rid == meta.payload)) {
          complain(Describe(vid) + ": blob " + meta.content_hash.ToHex() +
                   " referenced through a different record id than other "
                   "versions");
        }
        ++tally.count;
      }
    }
    if (!versions.status().ok()) {
      complain("version scan failed for object " +
               std::to_string(oid.value) + ": " +
               versions.status().ToString());
      continue;
    }

    if (live.size() != header.version_count) {
      complain("object " + std::to_string(oid.value) + ": header counts " +
               std::to_string(header.version_count) + " versions, found " +
               std::to_string(live.size()));
    }
    if (live.empty()) {
      complain("object " + std::to_string(oid.value) + " has no versions");
      continue;
    }
    if (live.count(header.latest) == 0) {
      complain("object " + std::to_string(oid.value) + ": latest v" +
               std::to_string(header.latest) + " does not exist");
    } else if (header.latest != max_vnum) {
      complain("object " + std::to_string(oid.value) + ": latest v" +
               std::to_string(header.latest) +
               " is not the temporally newest v" + std::to_string(max_vnum));
    }
    if (header.next_vnum <= max_vnum) {
      complain("object " + std::to_string(oid.value) + ": next_vnum " +
               std::to_string(header.next_vnum) + " <= max existing v" +
               std::to_string(max_vnum));
    }

    for (const auto& [vnum, meta] : metas) {
      const VersionId vid{oid, vnum};
      if (meta.derived_from != kNoVersion) {
        if (live.count(meta.derived_from) == 0) {
          complain(Describe(vid) + ": derived_from v" +
                   std::to_string(meta.derived_from) + " does not exist");
        }
      }
      if (meta.kind == PayloadKind::kDelta) {
        if (meta.delta_base == kNoVersion ||
            live.count(meta.delta_base) == 0) {
          complain(Describe(vid) + ": delta base v" +
                   std::to_string(meta.delta_base) + " does not exist");
        } else {
          if (meta.delta_base >= vnum) {
            complain(Describe(vid) + ": delta base v" +
                     std::to_string(meta.delta_base) + " is not older");
          }
          const VersionMeta& base = metas[meta.delta_base];
          if (meta.delta_chain_len != base.delta_chain_len + 1) {
            complain(Describe(vid) + ": chain length " +
                     std::to_string(meta.delta_chain_len) +
                     " inconsistent with base chain " +
                     std::to_string(base.delta_chain_len));
          }
        }
      } else if (meta.delta_chain_len != 0) {
        complain(Describe(vid) + ": full payload with nonzero chain length");
      }
      // Every payload must materialize to its recorded size.
      auto bytes = db.ReadVersion(vid);
      if (!bytes.ok()) {
        complain(Describe(vid) +
                 ": payload unreadable: " + bytes.status().ToString());
      } else {
        report.payload_bytes += bytes->size();
        if (bytes->size() != meta.logical_size) {
          complain(Describe(vid) + ": materialized " +
                   std::to_string(bytes->size()) + " bytes, meta says " +
                   std::to_string(meta.logical_size));
        }
      }
    }
  }
  if (!objects.status().ok()) return objects.status();

  // Pass 2: cluster membership is exactly the object set, per type.
  std::set<uint64_t> seen_in_clusters;
  TypeCursor types(db);
  for (; types.Valid(); types.Next()) {
    const std::string name = types.name();
    const uint32_t type_id = types.id();
    ClusterCursor cluster(db, type_id);
    for (; cluster.Valid(); cluster.Next()) {
      const ObjectId oid = cluster.oid();
      auto it = object_types.find(oid.value);
      if (it == object_types.end()) {
        complain("cluster '" + name + "' lists missing object " +
                 std::to_string(oid.value));
      } else if (it->second != type_id) {
        complain("cluster '" + name + "' lists object " +
                 std::to_string(oid.value) + " of another type");
      }
      seen_in_clusters.insert(oid.value);
    }
    if (!cluster.status().ok()) {
      complain("cluster scan failed for '" + name +
               "': " + cluster.status().ToString());
    }
  }
  if (!types.status().ok()) return types.status();

  for (const auto& [oid, type] : object_types) {
    (void)type;
    if (seen_in_clusters.count(oid) == 0) {
      complain("object " + std::to_string(oid) + " missing from its cluster");
    }
  }

  // Pass 3: content-addressed payload store audit.  Every index entry must
  // be justified by exactly `refcount` version metas naming its hash (an
  // unreferenced entry is an orphan / leaked blob; an over-counted one means
  // a missed unref; an under-counted one is a latent double free), and every
  // meta's hash must resolve in the index.
  std::map<Hash128, PayloadStoreEntry> store_entries;
  Status store_status =
      db.storage().WithReadTxn([&](ReadTxn& txn) -> Status {
        return db.storage().payload_store().ForEach(
            &txn,
            [&](const Hash128& hash, const PayloadStoreEntry& entry) {
              store_entries[hash] = entry;
              return true;
            });
      });
  if (!store_status.ok()) return store_status;
  for (const auto& [hash, entry] : store_entries) {
    ++report.payload_blobs_checked;
    auto it = expected_refs.find(hash);
    if (it == expected_refs.end()) {
      complain("payload store: orphan blob " + hash.ToHex() + " (refcount " +
               std::to_string(entry.refcount) +
               ") has no referencing version");
      continue;
    }
    if (entry.refcount != it->second.count) {
      complain("payload store: blob " + hash.ToHex() + " has refcount " +
               std::to_string(entry.refcount) + " but " +
               std::to_string(it->second.count) +
               " versions reference it");
    }
    if (!(entry.rid == it->second.rid)) {
      complain("payload store: blob " + hash.ToHex() +
               " record id disagrees with the referencing versions");
    }
  }
  for (const auto& [hash, tally] : expected_refs) {
    report.payload_refs_checked += tally.count;
    if (store_entries.find(hash) == store_entries.end()) {
      complain("payload store: blob " + hash.ToHex() + " referenced by " +
               std::to_string(tally.count) +
               " versions is missing from the store");
    }
  }

  return report;
}

}  // namespace ode
