#ifndef ODE_CORE_CURSOR_H_
#define ODE_CORE_CURSOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/ids.h"
#include "core/meta.h"
#include "util/status.h"

namespace ode {

class Database;

/// First-class streaming iterators over the catalog — the Status-first
/// replacement for the callback `ForEach*` scans on Database.
///
/// Usage (all four cursors share this shape):
///
///     for (ObjectCursor c(db); c.Valid(); c.Next()) {
///       use(c.oid(), c.header());
///     }
///     ODE_RETURN_IF_ERROR(c.status());   // Distinguishes "done" from error.
///
/// A cursor is positioned on its first entry at construction; `Valid()` is
/// false once the scan is exhausted OR an error occurred — check `status()`
/// to tell the two apart.  Accessors may only be called while `Valid()`.
///
/// Consistency: entries are fetched in batches, each batch under one shared
/// (reader) acquisition of the engine lock, resuming at the successor of the
/// last returned key.  Within a batch the view is a consistent committed
/// snapshot (or the calling thread's own open transaction); across batches a
/// concurrent writer may be reflected, but keys are returned in strictly
/// ascending order and each at most once.  User code between Next() calls
/// runs OUTSIDE the lock, so a cursor loop may freely call back into the
/// Database (including mutators, subject to the single-writer rule).
///
/// Cursors are single-threaded objects; the Database must outlive them.

namespace internal {

/// Shared batching machinery: derived cursors supply one tree-scan callback
/// that fills the next batch.  Not part of the public API.
template <typename Entry>
class CursorBase {
 public:
  bool Valid() const { return pos_ < batch_.size(); }
  const Status& status() const { return status_; }

 protected:
  static constexpr size_t kDefaultBatchSize = 1024;

  CursorBase(Database& db, size_t batch_size)
      : db_(&db), batch_size_(batch_size ? batch_size : 1) {}

  const Entry& entry() const { return batch_[pos_]; }

  Database* db_;
  size_t batch_size_;
  std::vector<Entry> batch_;
  size_t pos_ = 0;
  bool exhausted_ = false;  ///< The tree has no entries past the last batch.
  Status status_;
};

}  // namespace internal

/// Iterates every object in ascending oid order with its header.
class ObjectCursor
    : public internal::CursorBase<std::pair<ObjectId, ObjectHeader>> {
 public:
  explicit ObjectCursor(Database& db, size_t batch_size = kDefaultBatchSize);

  void Next();

  ObjectId oid() const { return entry().first; }
  const ObjectHeader& header() const { return entry().second; }

 private:
  void Refill(const std::string& seek_key);
};

/// Iterates every live version of one object in temporal (vnum) order with
/// its metadata.
class VersionCursor
    : public internal::CursorBase<std::pair<VersionId, VersionMeta>> {
 public:
  VersionCursor(Database& db, ObjectId oid,
                size_t batch_size = kDefaultBatchSize);

  void Next();

  VersionId vid() const { return entry().first; }
  const VersionMeta& meta() const { return entry().second; }

 private:
  void Refill(const std::string& seek_key);

  ObjectId oid_;
};

/// Iterates every registered type (name -> id) in name order.
class TypeCursor
    : public internal::CursorBase<std::pair<std::string, uint32_t>> {
 public:
  explicit TypeCursor(Database& db, size_t batch_size = kDefaultBatchSize);

  void Next();

  const std::string& name() const { return entry().first; }
  uint32_t id() const { return entry().second; }

 private:
  void Refill(const std::string& seek_key);
};

/// Iterates the cluster (per-type extent) of one type in ascending oid
/// order — the cursor form of Ode's "for x in Cluster" query substrate.
class ClusterCursor : public internal::CursorBase<ObjectId> {
 public:
  ClusterCursor(Database& db, uint32_t type_id,
                size_t batch_size = kDefaultBatchSize);

  void Next();

  ObjectId oid() const { return entry(); }

 private:
  void Refill(const std::string& seek_key);

  uint32_t type_id_;
};

}  // namespace ode

#endif  // ODE_CORE_CURSOR_H_
