#include "core/database.h"

#include <algorithm>
#include <chrono>

#include "core/cursor.h"
#include "core/delta.h"
#include "storage/btree.h"
#include "util/coding.h"
#include "util/logging.h"

namespace ode {

namespace {

/// Deadline watcher for the read path: journals + force-traces a dereference
/// that blew its threshold.  A zero threshold (the default) costs one branch
/// and reads no clock.
class SlowOpGuard {
 public:
  SlowOpGuard(EventLog* log, Tracer* tracer, const char* op,
              uint32_t threshold_us)
      : log_(log),
        tracer_(tracer),
        op_(op),
        threshold_us_(threshold_us),
        start_ns_(threshold_us == 0 ? 0 : Histogram::NowNanos()) {}

  ~SlowOpGuard() {
    if (threshold_us_ == 0) return;
    const uint64_t end_ns = Histogram::NowNanos();
    const uint64_t duration_us = (end_ns - start_ns_) / 1000;
    if (duration_us < threshold_us_) return;
    log_->Record(EventType::kSlowOp, EventSeverity::kWarn, duration_us,
                 threshold_us_, 0, op_);
    // Unconditional span — the one operation that blew its deadline must be
    // visible regardless of the sampling rate.
    if (tracer_ != nullptr) tracer_->Record(op_, "slow", start_ns_, end_ns);
  }

 private:
  EventLog* log_;
  Tracer* tracer_;
  const char* op_;
  uint32_t threshold_us_;
  uint64_t start_ns_;
};

/// Identity delta: COPY the whole base.  Lets newversion run without
/// materializing the base payload (the "small changes have small impact"
/// principle applied to version creation itself).
std::string MakeIdentityDelta(uint64_t size) {
  std::string out;
  PutVarint64(&out, size);
  if (size > 0) {
    out.push_back(0);  // COPY tag.
    PutVarint64(&out, 0);
    PutVarint64(&out, size);
  }
  return out;
}

/// Write transactions open on this thread, innermost last (a thread can hold
/// transactions on several Databases, e.g. in migration tooling).  Replaces
/// the old single active_txn_/owner pair, which could only describe ONE
/// in-flight transaction — with concurrent writers there are several, each
/// visible only to its own thread.
thread_local std::vector<std::pair<const Database*, Txn*>> tls_open_txns;

/// Marks a Database::Begin that is still blocked in engine Begin; rejects a
/// concurrent user-scoped Begin without holding a mutex across the block.
// ode_lint: allow(unchecked-cast) sentinel pointer value, never dereferenced.
Txn* const kBeginPending = reinterpret_cast<Txn*>(1);

}  // namespace

void Database::CoreMetrics::Attach(MetricsRegistry* registry) {
  pnew = registry->GetCounter("core.pnew");
  newversion = registry->GetCounter("core.newversion");
  update = registry->GetCounter("core.update");
  delete_version = registry->GetCounter("core.delete_version");
  delete_object = registry->GetCounter("core.delete_object");
  materializations = registry->GetCounter("core.materializations");
  delta_applications = registry->GetCounter("core.delta_applications");
  full_payloads_written = registry->GetCounter("core.full_payloads_written");
  delta_payloads_written = registry->GetCounter("core.delta_payloads_written");
  full_bytes_written = registry->GetCounter("core.full_bytes_written");
  delta_bytes_written = registry->GetCounter("core.delta_bytes_written");
  deref_latest_ns = registry->GetHistogram("core.deref_latest_ns");
  deref_version_ns = registry->GetHistogram("core.deref_version_ns");
  materialize_ns = registry->GetHistogram("core.materialize_ns");
  payload_cache_hits = registry->GetCounter("payload_cache.hits");
  payload_cache_misses = registry->GetCounter("payload_cache.misses");
  latest_cache_hits = registry->GetCounter("latest_cache.hits");
  latest_cache_misses = registry->GetCounter("latest_cache.misses");
}

namespace {

bool IsZeroOrPowerOfTwo(size_t v) { return (v & (v - 1)) == 0; }

}  // namespace

Status DatabaseOptions::Validate() const {
  if (storage.buffer_pool_pages < 1) {
    return Status::InvalidArgument(
        "storage.buffer_pool_pages must be >= 1");
  }
  if (!IsZeroOrPowerOfTwo(storage.buffer_pool_shards)) {
    return Status::InvalidArgument(
        "storage.buffer_pool_shards must be 0 (auto) or a power of two");
  }
  if (storage.write_latch_stripes < 1 ||
      !IsZeroOrPowerOfTwo(storage.write_latch_stripes)) {
    return Status::InvalidArgument(
        "storage.write_latch_stripes must be a power of two >= 1");
  }
  if (storage.group_commit_max_batch < 1) {
    return Status::InvalidArgument(
        "storage.group_commit_max_batch must be >= 1");
  }
  if (storage.group_commit_max_wait_us > 1'000'000) {
    return Status::InvalidArgument(
        "storage.group_commit_max_wait_us must be <= 1'000'000 (one second)");
  }
  if (delta_keyframe_interval < 1) {
    return Status::InvalidArgument("delta_keyframe_interval must be >= 1");
  }
  // Written so NaN (every comparison false) is rejected too.
  if (!(delta_max_ratio > 0.0 && delta_max_ratio <= 1.0)) {
    return Status::InvalidArgument("delta_max_ratio must be in (0, 1]");
  }
  if (!IsZeroOrPowerOfTwo(payload_cache_shards)) {
    return Status::InvalidArgument(
        "payload_cache_shards must be 0 (auto) or a power of two");
  }
  if (!IsZeroOrPowerOfTwo(latest_cache_shards)) {
    return Status::InvalidArgument(
        "latest_cache_shards must be 0 (auto) or a power of two");
  }
  if (!IsZeroOrPowerOfTwo(metrics_sample_every)) {
    return Status::InvalidArgument(
        "metrics_sample_every must be 0 (off) or a power of two");
  }
  if (trace_buffer_events < 1) {
    return Status::InvalidArgument("trace_buffer_events must be >= 1");
  }
  if (!IsZeroOrPowerOfTwo(trace_sample_every)) {
    return Status::InvalidArgument(
        "trace_sample_every must be 0 (off) or a power of two");
  }
  if (event_log_buffer_events < 1) {
    return Status::InvalidArgument("event_log_buffer_events must be >= 1");
  }
  if (event_log_ring_events < 1) {
    return Status::InvalidArgument("event_log_ring_events must be >= 1");
  }
  if (diagnostics_retain < 1) {
    return Status::InvalidArgument("diagnostics_retain must be >= 1");
  }
  return Status::OK();
}

StatusOr<std::unique_ptr<Database>> Database::Open(
    const DatabaseOptions& options) {
  ODE_RETURN_IF_ERROR(options.Validate());
  auto db = std::unique_ptr<Database>(new Database());
  db->options_ = options;
  if (options.metrics != nullptr) {
    db->registry_ = options.metrics;
  } else {
    db->owned_registry_ = std::make_unique<MetricsRegistry>();
    db->registry_ = db->owned_registry_.get();
  }
  db->metrics_.Attach(db->registry_);
  db->deref_sampler_ = Sampler(options.metrics_sample_every);
  db->tracer_ = std::make_unique<Tracer>(options.trace_buffer_events);
  db->tracer_->set_sample_every(options.trace_sample_every);
  db->event_log_ = std::make_unique<EventLog>(options.event_log_buffer_events,
                                              options.event_log_ring_events,
                                              options.clock);
  db->event_log_->set_enabled(options.event_log_enabled);
  db->payload_cache_ = std::make_unique<VersionPayloadCache>(
      options.payload_cache_bytes, options.payload_cache_shards);
  db->latest_cache_ = std::make_unique<LatestVersionCache>(
      options.latest_cache_entries, options.latest_cache_shards);
  // The storage engine records into the same registry and tracer unless the
  // caller explicitly routed it elsewhere.
  StorageOptions storage = options.storage;
  if (storage.metrics == nullptr) storage.metrics = db->registry_;
  if (storage.tracer == nullptr) storage.tracer = db->tracer_.get();
  if (storage.event_log == nullptr) storage.event_log = db->event_log_.get();
  // Flight recorder: when the engine poisons itself, its background thread
  // fires this hook — dump everything while the evidence is fresh.  A
  // caller-supplied hook chains after the dump.
  {
    Database* raw = db.get();
    auto user_diag = std::move(storage.on_diagnostics);
    storage.on_diagnostics = [raw, user_diag = std::move(user_diag)](
                                 const char* trigger) {
      auto dump = raw->DumpDiagnostics(trigger);
      if (!dump.ok()) {
        // Best-effort by design: the usual cause is that the same disk
        // failure that poisoned the engine also refuses the dump write.
        ODE_LOG_WARN << "diagnostics dump failed: " << dump.status();
      }
      if (user_diag) user_diag(trigger);
    };
  }
  // Drive the cache epochs from the engine's apply hooks: they run under the
  // exclusive apply latch, where apply sections are strictly serialized even
  // though durable-commit waits overlap — the single-writer discipline the
  // caches' epoch protocol assumes.  Caller-supplied hooks are chained
  // after ours.
  {
    Database* raw = db.get();
    auto user_begin = std::move(storage.on_apply_begin);
    storage.on_apply_begin = [raw, user_begin = std::move(user_begin)] {
      raw->BeginCacheEpoch();
      if (user_begin) user_begin();
    };
    auto user_end = std::move(storage.on_apply_end);
    storage.on_apply_end = [raw,
                            user_end = std::move(user_end)](bool committed) {
      if (committed) {
        raw->CommitCacheEpoch();
      } else {
        raw->AbortCacheEpoch();
      }
      if (user_end) user_end(committed);
    };
  }
  auto engine = StorageEngine::Open(storage);
  if (!engine.ok()) return engine.status();
  db->engine_ = std::move(*engine);
  // Materialize the catalog trees (and the payload index) so their root
  // slots are claimed deterministically, and free any shadow tree a crash
  // left half-built in the vacuum scratch slot.
  Status s = db->RunInTxn([](Txn& txn) -> Status {
    for (int slot : {kObjectsTreeSlot, kVersionsTreeSlot, kClustersTreeSlot,
                     kNamesTreeSlot, kPayloadsTreeSlot}) {
      auto tree = BTree::Open(&txn, slot);
      if (!tree.ok()) return tree.status();
    }
    auto scratch_root = txn.GetRoot(kVacuumScratchSlot);
    if (!scratch_root.ok()) return scratch_root.status();
    if (*scratch_root != 0) {
      auto scratch = BTree::Open(&txn, kVacuumScratchSlot);
      if (!scratch.ok()) return scratch.status();
      ODE_RETURN_IF_ERROR(scratch->Drop());
    }
    return Status::OK();
  });
  if (!s.ok()) return s;
  if (options.stats_export_interval_ms > 0) {
    // First export synchronously so a misconfigured directory fails the open
    // (and short-lived databases still leave a file behind), then refresh in
    // the background.
    ODE_RETURN_IF_ERROR(db->ExportMetricsFile());
    Database* raw = db.get();
    db->stats_exporter_ = std::thread([raw] { raw->StatsExporterLoop(); });
  }
  return db;
}

Database::~Database() {
  if (user_txn_.load(std::memory_order_acquire) != nullptr) {
    Status s = Abort();
    if (!s.ok()) { ODE_LOG_WARN << "abort on close failed: " << s; }
  }
  if (stats_exporter_.joinable()) {
    {
      MutexLock lock(exporter_mu_);
      exporter_stop_ = true;
      exporter_cv_.NotifyAll();
    }
    stats_exporter_.join();
    // Final export: the file reflects the session's closing totals.
    Status s = ExportMetricsFile();
    if (!s.ok()) { ODE_LOG_WARN << "final metrics export failed: " << s; }
  }
  // Shut the engine's background work down while engine_ is still set: the
  // poison-diagnostics hook re-enters DumpDiagnostics, which walks engine_,
  // and unique_ptr::reset nulls engine_ BEFORE ~StorageEngine would fire the
  // hook.  Then destroy the engine from the destructor body, NOT via member
  // order: the hook also reads members (diag_mu_, vacuum_mu_, triggers)
  // declared after engine_ and therefore already gone once default member
  // destruction reaches the engine.
  if (engine_ != nullptr) engine_->Shutdown();
  engine_.reset();
}

void Database::StatsExporterLoop() {
  const auto interval =
      std::chrono::milliseconds(options_.stats_export_interval_ms);
  for (;;) {
    {
      MutexLock lock(exporter_mu_);
      if (!exporter_stop_) (void)exporter_cv_.WaitFor(exporter_mu_, interval);
      if (exporter_stop_) return;
    }
    Status s = ExportMetricsFile();
    if (!s.ok()) { ODE_LOG_WARN << "metrics export failed: " << s; }
  }
}

// ---------------------------------------------------------------------------
// Transactions
// ---------------------------------------------------------------------------

Txn* Database::CurrentThreadTxn() const {
  // Innermost first: a thread can hold transactions on several Databases.
  for (auto it = tls_open_txns.rbegin(); it != tls_open_txns.rend(); ++it) {
    if (it->first == this) return it->second;
  }
  return nullptr;
}

Status Database::RunInTxn(const std::function<Status(Txn&)>& body) {
  // Nested calls (triggers, policies, grouped operations) join the
  // in-flight transaction.
  if (Txn* open = CurrentThreadTxn(); open != nullptr) return body(*open);
  // Cache epochs are driven by the engine's apply hooks (see Open): they
  // bracket the apply section, under the latch, exactly once per engine
  // transaction.
  return engine_->WithTxn([&](Txn& txn) {
    tls_open_txns.emplace_back(this, &txn);
    Status body_status = body(txn);
    // Popped before the engine's commit/abort runs: once the body is done,
    // nothing on this thread may join the closing transaction.
    tls_open_txns.pop_back();
    return body_status;
  });
}

Status Database::MutateObject(ObjectId oid,
                              const std::function<Status(Txn&)>& body) {
  if (CurrentThreadTxn() != nullptr) {
    // Joining an open transaction: its apply latch already serializes every
    // writer, and acquiring a stripe while holding the latch would invert
    // the stripe -> apply-latch order (deadlock).
    return RunInTxn(body);
  }
  WriteLatchGuard guard(engine_->write_latches(), oid.value);
  return RunInTxn(body);
}

Status Database::RunInRead(const std::function<Status(PageIO&)>& body) {
  // A transaction must read its own writes: if this thread has one open,
  // run inside it (it already holds the exclusive lock).
  if (Txn* open = CurrentThreadTxn(); open != nullptr) return body(*open);
  return engine_->WithReadTxn(
      [&](ReadTxn& txn) -> Status { return body(txn); });
}

void Database::BeginCacheEpoch() {
  payload_cache_->BeginEpoch();
  latest_cache_->BeginEpoch();
}

void Database::CommitCacheEpoch() {
  payload_cache_->CommitEpoch();
  latest_cache_->CommitEpoch();
}

void Database::AbortCacheEpoch() {
  payload_cache_->AbortEpoch();
  latest_cache_->AbortEpoch();
}

Status Database::Begin() {
  // Claim the user-transaction slot with a sentinel first: engine Begin may
  // block for the apply latch, and nothing may hold a Database mutex across
  // that (a committer's apply hooks would deadlock against it).
  Txn* expected = nullptr;
  if (!user_txn_.compare_exchange_strong(expected, kBeginPending,
                                         std::memory_order_acq_rel)) {
    return Status::FailedPrecondition("transaction already open");
  }
  auto txn = engine_->Begin();
  if (!txn.ok()) {
    user_txn_.store(nullptr, std::memory_order_release);
    return txn.status();
  }
  tls_open_txns.emplace_back(this, *txn);
  user_txn_.store(*txn, std::memory_order_release);
  return Status::OK();
}

namespace {

/// Removes the innermost registry entry for (db, txn); false if absent.
bool PopThreadTxn(const Database* db, Txn* txn) {
  for (auto it = tls_open_txns.rbegin(); it != tls_open_txns.rend(); ++it) {
    if (it->first == db && it->second == txn) {
      tls_open_txns.erase(std::next(it).base());
      return true;
    }
  }
  return false;
}

}  // namespace

Status Database::Commit() {
  Txn* txn = user_txn_.load(std::memory_order_acquire);
  if (txn == nullptr || txn == kBeginPending) {
    return Status::FailedPrecondition("no open transaction");
  }
  if (!PopThreadTxn(this, txn)) {
    // Open, but on another thread: committing it here would hand the apply
    // latch release to the wrong thread.
    return Status::FailedPrecondition(
        "transaction is open on another thread");
  }
  user_txn_.store(nullptr, std::memory_order_release);
  // Cache promotion/discard rides the engine's apply hooks.  If the commit
  // later fails its fsync, the engine poisons itself and refuses further
  // writes; the caches then match the in-memory pages (both retain the
  // applied-but-not-durable state), so no clearing is needed.
  return engine_->Commit(txn);
}

Status Database::Abort() {
  Txn* txn = user_txn_.load(std::memory_order_acquire);
  if (txn == nullptr || txn == kBeginPending) {
    return Status::FailedPrecondition("no open transaction");
  }
  if (!PopThreadTxn(this, txn)) {
    return Status::FailedPrecondition(
        "transaction is open on another thread");
  }
  user_txn_.store(nullptr, std::memory_order_release);
  // Type registrations made inside the aborted transaction are rolled back;
  // drop the cache so stale ids cannot leak.  (The payload/latest caches
  // roll back through the engine's abort hook.)
  {
    MutexLock lock(type_cache_mu_);
    type_cache_.clear();
  }
  return engine_->Abort(txn);
}

bool Database::InTransaction() const {
  return user_txn_.load(std::memory_order_acquire) != nullptr;
}

Status Database::Checkpoint() { return engine_->Checkpoint(); }

Status Database::WaitForDurable() {
  return engine_->WaitForDurable(UINT64_MAX);
}

// ---------------------------------------------------------------------------
// Small helpers
// ---------------------------------------------------------------------------

StatusOr<uint64_t> Database::NextTimestamp(Txn& txn) {
  if (options_.clock != nullptr) return options_.clock->Now();
  auto current = txn.GetCounter(kClockCounter);
  if (!current.ok()) return current.status();
  const uint64_t next = *current + 1;
  ODE_RETURN_IF_ERROR(txn.SetCounter(kClockCounter, next));
  return next;
}

StatusOr<ObjectId> Database::AllocateOid(Txn& txn) {
  auto current = txn.GetCounter(kNextOidCounter);
  if (!current.ok()) return current.status();
  const uint64_t next = *current + 1;
  ODE_RETURN_IF_ERROR(txn.SetCounter(kNextOidCounter, next));
  return ObjectId{next};
}

Status Database::GetHeader(PageIO& io, ObjectId oid, ObjectHeader* out) {
  auto tree = BTree::Open(&io, kObjectsTreeSlot);
  if (!tree.ok()) return tree.status();
  auto value = tree->Get(ObjectKey(oid));
  if (!value.ok()) return value.status();
  return ObjectHeader::Decode(Slice(*value), out);
}

Status Database::PutHeader(Txn& txn, ObjectId oid, const ObjectHeader& header) {
  auto tree = BTree::Open(&txn, kObjectsTreeSlot);
  if (!tree.ok()) return tree.status();
  return tree->Put(ObjectKey(oid), Slice(header.Encode()));
}

Status Database::GetMeta(PageIO& io, VersionId vid, VersionMeta* out) {
  auto tree = BTree::Open(&io, kVersionsTreeSlot);
  if (!tree.ok()) return tree.status();
  auto value = tree->Get(VersionKey(vid));
  if (!value.ok()) return value.status();
  return VersionMeta::Decode(Slice(*value), out);
}

Status Database::PutMeta(Txn& txn, VersionId vid, const VersionMeta& meta) {
  auto tree = BTree::Open(&txn, kVersionsTreeSlot);
  if (!tree.ok()) return tree.status();
  return tree->Put(VersionKey(vid), Slice(meta.Encode()));
}

// ---------------------------------------------------------------------------
// Payload store (full + delta strategies)
// ---------------------------------------------------------------------------

Status Database::Materialize(PageIO& io, ObjectId oid, const VersionMeta& meta,
                             std::string* out, bool probe_cache) {
  const VersionId vid{oid, meta.vnum};
  const bool use_cache = payload_cache_->enabled();
  if (use_cache && probe_cache) {
    if (payload_cache_->Lookup(vid, out)) {
      return Status::OK();
    }
  }
  TraceSpan span(tracer_.get(), "core.materialize", "core");
  ScopedLatency timer(metrics_.materialize_ns);
  metrics_.materializations->Increment();
  if (meta.kind == PayloadKind::kFull) {
    auto bytes = engine_->heap().Read(&io, meta.payload);
    if (!bytes.ok()) return bytes.status();
    *out = std::move(*bytes);
    if (use_cache) payload_cache_->Insert(vid, *out);
    return Status::OK();
  }
  // Collect the delta chain down to the nearest full payload — or to the
  // nearest cached ancestor, whichever comes first (a residency's chain is
  // walked at most once).
  std::vector<VersionMeta> chain;
  VersionMeta current = meta;
  std::string acc;
  bool base_from_cache = false;
  while (current.kind == PayloadKind::kDelta) {
    chain.push_back(current);
    if (chain.size() > 100000) {
      return Status::Corruption("delta chain cycle");
    }
    VersionMeta base;
    ODE_RETURN_IF_ERROR(
        GetMeta(io, VersionId{oid, current.delta_base}, &base));
    if (use_cache &&
        payload_cache_->Lookup(VersionId{oid, base.vnum}, &acc)) {
      base_from_cache = true;
      break;
    }
    current = base;
  }
  if (!base_from_cache) {
    auto base_bytes = engine_->heap().Read(&io, current.payload);
    if (!base_bytes.ok()) return base_bytes.status();
    acc = std::move(*base_bytes);
    if (use_cache && options_.cache_chain_intermediates &&
        current.kind == PayloadKind::kFull) {
      payload_cache_->Insert(VersionId{oid, current.vnum}, acc);
    }
  }
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    auto delta_bytes = engine_->heap().Read(&io, it->payload);
    if (!delta_bytes.ok()) return delta_bytes.status();
    auto applied = delta::Apply(Slice(acc), Slice(*delta_bytes));
    if (!applied.ok()) return applied.status();
    acc = std::move(*applied);
    metrics_.delta_applications->Increment();
    if (use_cache && options_.cache_chain_intermediates &&
        std::next(it) != chain.rend()) {
      payload_cache_->Insert(VersionId{oid, it->vnum}, acc);
    }
  }
  if (use_cache) payload_cache_->Insert(vid, acc);
  *out = std::move(acc);
  return Status::OK();
}

Status Database::StoreBlob(Txn& txn, const Slice& bytes, VersionMeta* meta) {
  if (options_.content_addressed_payloads) {
    Hash128 hash;
    auto rid = engine_->payload_store().Ref(&txn, engine_->heap(), bytes,
                                            &hash);
    if (!rid.ok()) return rid.status();
    meta->payload = *rid;
    meta->content_hash = hash;
    return Status::OK();
  }
  auto rid = engine_->heap().Insert(&txn, bytes);
  if (!rid.ok()) return rid.status();
  meta->payload = *rid;
  meta->content_hash = Hash128{};
  return Status::OK();
}

Status Database::ReleasePayload(Txn& txn, const VersionMeta& meta) {
  if (!meta.content_hash.IsZero()) {
    return engine_->payload_store().Unref(&txn, engine_->heap(),
                                          meta.content_hash, meta.payload);
  }
  return engine_->heap().Delete(&txn, meta.payload);
}

Status Database::StorePayload(Txn& txn, ObjectId oid, VersionMeta* meta,
                              const Slice& payload) {
  meta->logical_size = payload.size();
  if (options_.payload_strategy == PayloadKind::kDelta &&
      meta->derived_from != kNoVersion) {
    VersionMeta base;
    Status base_status =
        GetMeta(txn, VersionId{oid, meta->derived_from}, &base);
    if (base_status.ok()) {
      // The new version's chain position: one past its derivation parent
      // (parents that are keyframes sit at position 0).
      const uint32_t pos = base.kind == PayloadKind::kDelta
                               ? base.delta_pos + 1
                               : 1;
      if (options_.delta_topology == DeltaTopology::kSkip) {
        // Skip topology: delta against the ancestor at position
        // pos & (pos - 1) instead of the parent.  Walking delta_base links
        // from the parent reaches it (clearing trailing one-bits passes
        // through p & (p - 1)); any keyframe met earlier — including
        // rematerialized ones with stale positions — just becomes the base,
        // which costs delta size, never correctness.
        const uint32_t target_pos = pos & (pos - 1);
        uint32_t guard = 0;
        while (base.kind == PayloadKind::kDelta &&
               base.delta_pos > target_pos) {
          VersionMeta next;
          ODE_RETURN_IF_ERROR(
              GetMeta(txn, VersionId{oid, base.delta_base}, &next));
          base = next;
          if (++guard > 100000) {
            return Status::Corruption("delta base walk does not terminate");
          }
        }
      }
      if (base.delta_chain_len + 1 <= options_.delta_keyframe_interval) {
        std::string base_bytes;
        ODE_RETURN_IF_ERROR(Materialize(txn, oid, base, &base_bytes));
        std::string encoded = delta::Encode(Slice(base_bytes), payload);
        if (!payload.empty() &&
            static_cast<double>(encoded.size()) <=
                options_.delta_max_ratio *
                    static_cast<double>(payload.size())) {
          ODE_RETURN_IF_ERROR(StoreBlob(txn, Slice(encoded), meta));
          meta->kind = PayloadKind::kDelta;
          meta->delta_base = base.vnum;
          meta->delta_chain_len = base.delta_chain_len + 1;
          meta->delta_pos = pos;
          metrics_.delta_payloads_written->Increment();
          metrics_.delta_bytes_written->Add(encoded.size());
          return Status::OK();
        }
      }
    }
  }
  ODE_RETURN_IF_ERROR(StoreBlob(txn, payload, meta));
  meta->kind = PayloadKind::kFull;
  meta->delta_base = kNoVersion;
  meta->delta_chain_len = 0;
  meta->delta_pos = 0;
  metrics_.full_payloads_written->Increment();
  metrics_.full_bytes_written->Add(payload.size());
  return Status::OK();
}

Status Database::StoreCopyOfBase(Txn& txn, ObjectId oid,
                                 const VersionMeta& base, VersionMeta* meta) {
  meta->logical_size = base.logical_size;
  if (options_.payload_strategy == PayloadKind::kDelta) {
    if (base.kind == PayloadKind::kDelta) {
      // Share the base's stored delta blob outright: same delta_base, same
      // bytes, same materialized contents — and the chain gets NO longer
      // (the copy sits at the base's own chain position), so repeated
      // newversion never forces a keyframe by itself.
      uint64_t blob_size = 0;
      if (options_.content_addressed_payloads &&
          !base.content_hash.IsZero()) {
        auto rid =
            engine_->payload_store().RefExisting(&txn, base.content_hash);
        if (!rid.ok()) return rid.status();
        meta->payload = *rid;
        meta->content_hash = base.content_hash;
        auto entry =
            engine_->payload_store().Lookup(&txn, base.content_hash);
        if (!entry.ok()) return entry.status();
        blob_size = entry->size;
      } else {
        auto blob = engine_->heap().Read(&txn, base.payload);
        if (!blob.ok()) return blob.status();
        blob_size = blob->size();
        ODE_RETURN_IF_ERROR(StoreBlob(txn, Slice(*blob), meta));
      }
      meta->kind = PayloadKind::kDelta;
      meta->delta_base = base.delta_base;
      meta->delta_chain_len = base.delta_chain_len;
      meta->delta_pos = base.delta_pos;
      metrics_.delta_payloads_written->Increment();
      metrics_.delta_bytes_written->Add(blob_size);
      return Status::OK();
    }
    if (base.delta_chain_len + 1 <= options_.delta_keyframe_interval) {
      // The base is a keyframe: store an identity delta against it (still no
      // materialization needed).  Identity deltas of equal size are
      // byte-identical, so the content-addressed store collapses them.
      const std::string encoded = MakeIdentityDelta(base.logical_size);
      ODE_RETURN_IF_ERROR(StoreBlob(txn, Slice(encoded), meta));
      meta->kind = PayloadKind::kDelta;
      meta->delta_base = base.vnum;
      meta->delta_chain_len = base.delta_chain_len + 1;
      meta->delta_pos = base.delta_pos + 1;
      metrics_.delta_payloads_written->Increment();
      metrics_.delta_bytes_written->Add(encoded.size());
      return Status::OK();
    }
  }
  if (options_.content_addressed_payloads &&
      base.kind == PayloadKind::kFull && !base.content_hash.IsZero()) {
    // Full-copy strategy over a content-addressed full blob: share it
    // directly, no materialization, no byte copy.
    auto rid = engine_->payload_store().RefExisting(&txn, base.content_hash);
    if (!rid.ok()) return rid.status();
    meta->payload = *rid;
    meta->content_hash = base.content_hash;
    meta->kind = PayloadKind::kFull;
    meta->delta_base = kNoVersion;
    meta->delta_chain_len = 0;
    meta->delta_pos = 0;
    metrics_.full_payloads_written->Increment();
    metrics_.full_bytes_written->Add(base.logical_size);
    return Status::OK();
  }
  std::string bytes;
  ODE_RETURN_IF_ERROR(Materialize(txn, oid, base, &bytes));
  ODE_RETURN_IF_ERROR(StoreBlob(txn, Slice(bytes), meta));
  meta->kind = PayloadKind::kFull;
  meta->delta_base = kNoVersion;
  meta->delta_chain_len = 0;
  meta->delta_pos = 0;
  metrics_.full_payloads_written->Increment();
  metrics_.full_bytes_written->Add(bytes.size());
  return Status::OK();
}

Status Database::RematerializeDeltaChildren(Txn& txn, VersionId vid) {
  // Note for the payload cache: this conversion is byte-preserving (each
  // child's materialized contents are unchanged, only its physical encoding
  // flips to kFull), so cached child entries stay valid and are kept.
  auto tree = BTree::Open(&txn, kVersionsTreeSlot);
  if (!tree.ok()) return tree.status();
  const std::string prefix = VersionKeyPrefix(vid.oid);
  // Collect first (mutating while iterating invalidates the cursor).
  std::vector<VersionMeta> children;
  {
    auto it = tree->NewIterator();
    for (it.Seek(prefix); it.Valid(); it.Next()) {
      if (!Slice(it.key()).starts_with(Slice(prefix))) break;
      VersionMeta meta;
      ODE_RETURN_IF_ERROR(VersionMeta::Decode(Slice(it.value()), &meta));
      if (meta.kind == PayloadKind::kDelta && meta.delta_base == vid.vnum) {
        children.push_back(meta);
      }
    }
    ODE_RETURN_IF_ERROR(it.status());
  }
  for (VersionMeta& child : children) {
    std::string bytes;
    ODE_RETURN_IF_ERROR(Materialize(txn, vid.oid, child, &bytes));
    // Insert the full payload BEFORE releasing the delta blob: if both hash
    // to the same stored content the refcount dips to 1, never to 0 (which
    // would free the record out from under the new reference).
    const VersionMeta old_child = child;
    ODE_RETURN_IF_ERROR(StoreBlob(txn, Slice(bytes), &child));
    ODE_RETURN_IF_ERROR(ReleasePayload(txn, old_child));
    child.kind = PayloadKind::kFull;
    child.delta_base = kNoVersion;
    child.delta_chain_len = 0;
    child.delta_pos = 0;
    metrics_.full_payloads_written->Increment();
    metrics_.full_bytes_written->Add(bytes.size());
    ODE_RETURN_IF_ERROR(PutMeta(txn, VersionId{vid.oid, child.vnum}, child));
    // The child became a keyframe: its delta descendants now sit on a
    // shorter chain; propagate the corrected lengths.
    ODE_RETURN_IF_ERROR(
        RecomputeChainLengths(txn, VersionId{vid.oid, child.vnum}, 0));
  }
  return Status::OK();
}

Status Database::RecomputeChainLengths(Txn& txn, VersionId base,
                                       uint32_t base_chain) {
  auto tree = BTree::Open(&txn, kVersionsTreeSlot);
  if (!tree.ok()) return tree.status();
  const std::string prefix = VersionKeyPrefix(base.oid);
  std::vector<VersionMeta> dependents;
  {
    auto it = tree->NewIterator();
    for (it.Seek(prefix); it.Valid(); it.Next()) {
      if (!Slice(it.key()).starts_with(Slice(prefix))) break;
      VersionMeta m;
      ODE_RETURN_IF_ERROR(VersionMeta::Decode(Slice(it.value()), &m));
      if (m.kind == PayloadKind::kDelta && m.delta_base == base.vnum) {
        dependents.push_back(m);
      }
    }
    ODE_RETURN_IF_ERROR(it.status());
  }
  for (VersionMeta& m : dependents) {
    if (m.delta_chain_len == base_chain + 1) continue;  // Already right.
    m.delta_chain_len = base_chain + 1;
    ODE_RETURN_IF_ERROR(PutMeta(txn, VersionId{base.oid, m.vnum}, m));
    ODE_RETURN_IF_ERROR(RecomputeChainLengths(
        txn, VersionId{base.oid, m.vnum}, m.delta_chain_len));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Lifecycle operations
// ---------------------------------------------------------------------------

Status Database::DoPnew(Txn& txn, uint32_t type_id, const Slice& payload,
                        VersionId* out) {
  TraceSpan span(tracer_.get(), "core.pnew", "core");
  auto ts = NextTimestamp(txn);
  if (!ts.ok()) return ts.status();
  auto oid = AllocateOid(txn);
  if (!oid.ok()) return oid.status();

  ObjectHeader header;
  header.type_id = type_id;
  header.latest = kFirstVersion;
  header.next_vnum = kFirstVersion + 1;
  header.version_count = 1;
  header.created_ts = *ts;

  VersionMeta meta;
  meta.vnum = kFirstVersion;
  meta.derived_from = kNoVersion;
  meta.created_ts = *ts;
  ODE_RETURN_IF_ERROR(StorePayload(txn, *oid, &meta, payload));

  ODE_RETURN_IF_ERROR(PutHeader(txn, *oid, header));
  ODE_RETURN_IF_ERROR(PutMeta(txn, VersionId{*oid, kFirstVersion}, meta));
  {
    auto clusters = BTree::Open(&txn, kClustersTreeSlot);
    if (!clusters.ok()) return clusters.status();
    ODE_RETURN_IF_ERROR(clusters->Put(ClusterKey(type_id, *oid), Slice()));
  }
  *out = VersionId{*oid, kFirstVersion};
  latest_cache_->Insert(*oid, kFirstVersion);
  metrics_.pnew->Increment();
  FireTriggers(TriggerInfo{TriggerEvent::kPnew, *out, type_id, VersionId{}});
  return Status::OK();
}

StatusOr<VersionId> Database::PnewRaw(uint32_t type_id, const Slice& payload) {
  VersionId result;
  Status s = RunInTxn([&](Txn& txn) {
    return DoPnew(txn, type_id, payload, &result);
  });
  if (!s.ok()) return s;
  return result;
}

Status Database::DoNewVersion(Txn& txn, ObjectId oid,
                              std::optional<VersionNum> base_vnum,
                              VersionId* out) {
  TraceSpan span(tracer_.get(), "core.newversion", "core");
  ObjectHeader header;
  ODE_RETURN_IF_ERROR(GetHeader(txn, oid, &header));
  const VersionNum base = base_vnum.value_or(header.latest);
  VersionMeta base_meta;
  ODE_RETURN_IF_ERROR(GetMeta(txn, VersionId{oid, base}, &base_meta));

  auto ts = NextTimestamp(txn);
  if (!ts.ok()) return ts.status();

  VersionMeta meta;
  meta.vnum = header.next_vnum;
  meta.derived_from = base;
  meta.created_ts = *ts;
  ODE_RETURN_IF_ERROR(StoreCopyOfBase(txn, oid, base_meta, &meta));

  header.next_vnum += 1;
  header.latest = meta.vnum;  // The new version is temporally newest.
  header.version_count += 1;
  ODE_RETURN_IF_ERROR(PutMeta(txn, VersionId{oid, meta.vnum}, meta));
  ODE_RETURN_IF_ERROR(PutHeader(txn, oid, header));

  *out = VersionId{oid, meta.vnum};
  // The new version is the new latest; keep the resolution cache exact
  // (epoch-tagged, so an abort discards it) before triggers can re-read.
  latest_cache_->Insert(oid, meta.vnum);
  metrics_.newversion->Increment();
  FireTriggers(TriggerInfo{TriggerEvent::kNewVersion, *out, header.type_id,
                           VersionId{oid, base}});
  return Status::OK();
}

StatusOr<VersionId> Database::NewVersionOf(ObjectId oid) {
  VersionId result;
  Status s = MutateObject(oid, [&](Txn& txn) {
    return DoNewVersion(txn, oid, std::nullopt, &result);
  });
  if (!s.ok()) return s;
  return result;
}

StatusOr<VersionId> Database::NewDetachedVersion(ObjectId oid,
                                                 const Slice& payload) {
  VersionId result;
  Status s = MutateObject(oid, [&](Txn& txn) -> Status {
    ObjectHeader header;
    ODE_RETURN_IF_ERROR(GetHeader(txn, oid, &header));
    auto ts = NextTimestamp(txn);
    if (!ts.ok()) return ts.status();
    VersionMeta meta;
    meta.vnum = header.next_vnum;
    meta.derived_from = kNoVersion;
    meta.created_ts = *ts;
    ODE_RETURN_IF_ERROR(StorePayload(txn, oid, &meta, payload));
    header.next_vnum += 1;
    header.latest = meta.vnum;
    header.version_count += 1;
    ODE_RETURN_IF_ERROR(PutMeta(txn, VersionId{oid, meta.vnum}, meta));
    ODE_RETURN_IF_ERROR(PutHeader(txn, oid, header));
    result = VersionId{oid, meta.vnum};
    latest_cache_->Insert(oid, meta.vnum);
    metrics_.newversion->Increment();
    FireTriggers(TriggerInfo{TriggerEvent::kNewVersion, result,
                             header.type_id, VersionId{}});
    return Status::OK();
  });
  if (!s.ok()) return s;
  return result;
}

StatusOr<VersionId> Database::NewVersionFrom(VersionId vid) {
  VersionId result;
  Status s = MutateObject(vid.oid, [&](Txn& txn) {
    return DoNewVersion(txn, vid.oid, vid.vnum, &result);
  });
  if (!s.ok()) return s;
  return result;
}

Status Database::DoUpdate(Txn& txn, VersionId vid, const Slice& payload) {
  TraceSpan span(tracer_.get(), "core.update", "core");
  VersionMeta meta;
  ODE_RETURN_IF_ERROR(GetMeta(txn, vid, &meta));
  ObjectHeader header;
  ODE_RETURN_IF_ERROR(GetHeader(txn, vid.oid, &header));

  // Versions whose stored delta is based on this one would see their
  // materialized contents change; pin them down as full payloads first.
  ODE_RETURN_IF_ERROR(RematerializeDeltaChildren(txn, vid));

  // StorePayload inserts the replacement BEFORE the old blob is released:
  // an update that stores identical bytes (content-addressed) moves the
  // shared refcount 2 -> 1 instead of through 0.
  const VersionMeta old_meta = meta;
  ODE_RETURN_IF_ERROR(StorePayload(txn, vid.oid, &meta, payload));
  ODE_RETURN_IF_ERROR(ReleasePayload(txn, old_meta));
  ODE_RETURN_IF_ERROR(PutMeta(txn, vid, meta));
  // The cached materialization is stale now.  (Delta children keep their
  // entries: they were pinned down as full payloads above, byte-identical.)
  payload_cache_->Erase(vid);
  metrics_.update->Increment();
  FireTriggers(
      TriggerInfo{TriggerEvent::kUpdate, vid, header.type_id, VersionId{}});
  return Status::OK();
}

Status Database::UpdateVersion(VersionId vid, const Slice& payload) {
  return MutateObject(vid.oid,
                      [&](Txn& txn) { return DoUpdate(txn, vid, payload); });
}

Status Database::UpdateLatest(ObjectId oid, const Slice& payload) {
  return MutateObject(oid, [&](Txn& txn) -> Status {
    ObjectHeader header;
    ODE_RETURN_IF_ERROR(GetHeader(txn, oid, &header));
    return DoUpdate(txn, VersionId{oid, header.latest}, payload);
  });
}

StatusOr<std::string> Database::ReadVersion(VersionId vid) {
  std::string result;
  // Overhead budget: the warm cache-hit path below pays one thread-local
  // sampler tick and two register-value tests; the clock reads and the
  // tracer load happen only on the sampled 1-in-N iterations.  Deref trace
  // spans therefore ride the metrics sampler's decision (odedump trace
  // opens with both knobs at 1).
  const bool sampled = deref_sampler_.Tick();
  ScopedLatency timer(sampled ? metrics_.deref_version_ns : nullptr);
  TraceSpan span(sampled ? tracer_.get() : nullptr, "core.deref_version",
                 "core");
  SlowOpGuard slow(event_log_.get(), tracer_.get(), "slow.deref_version",
                   options_.slow_deref_us);
  // Hot path: a resident payload needs no transaction and no catalog lookup.
  // Safe even inside an open transaction: mutators invalidate immediately,
  // so residency implies the entry reflects the current (possibly
  // uncommitted-but-visible) state.
  if (payload_cache_->enabled()) {
    if (payload_cache_->Lookup(vid, &result)) {
      return result;
    }
  }
  Status s = RunInRead([&](PageIO& io) -> Status {
    VersionMeta meta;
    ODE_RETURN_IF_ERROR(GetMeta(io, vid, &meta));
    return Materialize(io, vid.oid, meta, &result, /*probe_cache=*/false);
  });
  if (!s.ok()) return s;
  return result;
}

StatusOr<std::string> Database::ReadLatest(ObjectId oid, VersionId* resolved) {
  std::string result;
  // Sampled latency + trace span; see ReadVersion for the overhead budget.
  const bool sampled = deref_sampler_.Tick();
  ScopedLatency timer(sampled ? metrics_.deref_latest_ns : nullptr);
  TraceSpan span(sampled ? tracer_.get() : nullptr, "core.deref_latest",
                 "core");
  SlowOpGuard slow(event_log_.get(), tracer_.get(), "slow.deref_latest",
                   options_.slow_deref_us);
  // Hot path for the generic (late-bound) dereference: resolve oid -> latest
  // through the resolution cache, then the payload through the payload cache;
  // a double hit touches neither the catalog nor the heap.
  std::optional<VersionNum> cached_latest;
  if (latest_cache_->enabled()) {
    VersionNum latest = kNoVersion;
    if (latest_cache_->Lookup(oid, &latest)) {
      cached_latest = latest;
      const VersionId vid{oid, latest};
      if (payload_cache_->enabled() &&
          payload_cache_->Lookup(vid, &result)) {
        if (resolved != nullptr) *resolved = vid;
        return result;
      }
    }
  }
  Status s = RunInRead([&](PageIO& io) -> Status {
    VersionNum latest = kNoVersion;
    if (cached_latest.has_value()) {
      latest = *cached_latest;
    } else {
      ObjectHeader header;
      ODE_RETURN_IF_ERROR(GetHeader(io, oid, &header));
      latest = header.latest;
      latest_cache_->Insert(oid, latest);
    }
    VersionMeta meta;
    const VersionId vid{oid, latest};
    ODE_RETURN_IF_ERROR(GetMeta(io, vid, &meta));
    if (resolved != nullptr) *resolved = vid;
    return Materialize(io, oid, meta, &result);
  });
  if (!s.ok()) return s;
  return result;
}

Status Database::DoDeleteVersion(Txn& txn, VersionId vid) {
  TraceSpan span(tracer_.get(), "core.delete_version", "core");
  VersionMeta meta;
  ODE_RETURN_IF_ERROR(GetMeta(txn, vid, &meta));
  ObjectHeader header;
  ODE_RETURN_IF_ERROR(GetHeader(txn, vid.oid, &header));

  // Delta children must stop depending on this payload.
  ODE_RETURN_IF_ERROR(RematerializeDeltaChildren(txn, vid));

  // Splice the derived-from tree: children of v are re-parented to v's own
  // parent (§4.4: deleting a version preserves the derivation history of the
  // survivors).
  {
    auto tree = BTree::Open(&txn, kVersionsTreeSlot);
    if (!tree.ok()) return tree.status();
    const std::string prefix = VersionKeyPrefix(vid.oid);
    std::vector<VersionMeta> children;
    auto it = tree->NewIterator();
    for (it.Seek(prefix); it.Valid(); it.Next()) {
      if (!Slice(it.key()).starts_with(Slice(prefix))) break;
      VersionMeta m;
      ODE_RETURN_IF_ERROR(VersionMeta::Decode(Slice(it.value()), &m));
      if (m.derived_from == vid.vnum) children.push_back(m);
    }
    ODE_RETURN_IF_ERROR(it.status());
    for (VersionMeta& child : children) {
      child.derived_from = meta.derived_from;
      ODE_RETURN_IF_ERROR(PutMeta(txn, VersionId{vid.oid, child.vnum}, child));
    }
  }

  ODE_RETURN_IF_ERROR(ReleasePayload(txn, meta));
  {
    auto tree = BTree::Open(&txn, kVersionsTreeSlot);
    if (!tree.ok()) return tree.status();
    ODE_RETURN_IF_ERROR(tree->Delete(VersionKey(vid)));
  }
  payload_cache_->Erase(vid);

  header.version_count -= 1;
  metrics_.delete_version->Increment();
  if (header.version_count == 0) {
    // Last version gone: the object itself disappears.
    auto objects = BTree::Open(&txn, kObjectsTreeSlot);
    if (!objects.ok()) return objects.status();
    ODE_RETURN_IF_ERROR(objects->Delete(ObjectKey(vid.oid)));
    auto clusters = BTree::Open(&txn, kClustersTreeSlot);
    if (!clusters.ok()) return clusters.status();
    ODE_RETURN_IF_ERROR(clusters->Delete(ClusterKey(header.type_id, vid.oid)));
    payload_cache_->EraseObject(vid.oid);
    latest_cache_->Erase(vid.oid);
    metrics_.delete_object->Increment();
    FireTriggers(TriggerInfo{TriggerEvent::kDeleteVersion, vid, header.type_id,
                             VersionId{}});
    FireTriggers(TriggerInfo{TriggerEvent::kDeleteObject,
                             VersionId{vid.oid, kNoVersion}, header.type_id,
                             VersionId{}});
    return Status::OK();
  }

  if (header.latest == vid.vnum) {
    // Latest was deleted: the new latest is the largest remaining vnum
    // (numeric order == temporal order).
    auto tree = BTree::Open(&txn, kVersionsTreeSlot);
    if (!tree.ok()) return tree.status();
    auto it = tree->NewIterator();
    const std::string prefix = VersionKeyPrefix(vid.oid);
    it.SeekForPrev(VersionKey(VersionId{vid.oid, UINT32_MAX}));
    if (!it.Valid() || !Slice(it.key()).starts_with(Slice(prefix))) {
      return Status::Internal("no versions left despite nonzero count");
    }
    VersionId last;
    ODE_RETURN_IF_ERROR(ParseVersionKey(Slice(it.key()), &last));
    header.latest = last.vnum;
  }
  ODE_RETURN_IF_ERROR(PutHeader(txn, vid.oid, header));
  latest_cache_->Insert(vid.oid, header.latest);
  FireTriggers(TriggerInfo{TriggerEvent::kDeleteVersion, vid, header.type_id,
                           VersionId{}});
  return Status::OK();
}

Status Database::PdeleteVersion(VersionId vid) {
  return MutateObject(
      vid.oid, [&](Txn& txn) { return DoDeleteVersion(txn, vid); });
}

Status Database::DoDeleteObject(Txn& txn, ObjectId oid) {
  TraceSpan span(tracer_.get(), "core.delete_object", "core");
  ObjectHeader header;
  ODE_RETURN_IF_ERROR(GetHeader(txn, oid, &header));

  // Collect all versions, then drop payloads and metadata.
  std::vector<VersionMeta> metas;
  {
    auto tree = BTree::Open(&txn, kVersionsTreeSlot);
    if (!tree.ok()) return tree.status();
    const std::string prefix = VersionKeyPrefix(oid);
    auto it = tree->NewIterator();
    for (it.Seek(prefix); it.Valid(); it.Next()) {
      if (!Slice(it.key()).starts_with(Slice(prefix))) break;
      VersionMeta m;
      ODE_RETURN_IF_ERROR(VersionMeta::Decode(Slice(it.value()), &m));
      metas.push_back(m);
    }
    ODE_RETURN_IF_ERROR(it.status());
  }
  for (const VersionMeta& m : metas) {
    ODE_RETURN_IF_ERROR(ReleasePayload(txn, m));
    auto tree = BTree::Open(&txn, kVersionsTreeSlot);
    if (!tree.ok()) return tree.status();
    ODE_RETURN_IF_ERROR(tree->Delete(VersionKey(VersionId{oid, m.vnum})));
  }
  {
    auto objects = BTree::Open(&txn, kObjectsTreeSlot);
    if (!objects.ok()) return objects.status();
    ODE_RETURN_IF_ERROR(objects->Delete(ObjectKey(oid)));
    auto clusters = BTree::Open(&txn, kClustersTreeSlot);
    if (!clusters.ok()) return clusters.status();
    ODE_RETURN_IF_ERROR(clusters->Delete(ClusterKey(header.type_id, oid)));
  }
  payload_cache_->EraseObject(oid);
  latest_cache_->Erase(oid);
  metrics_.delete_version->Add(metas.size());
  metrics_.delete_object->Increment();
  FireTriggers(TriggerInfo{TriggerEvent::kDeleteObject,
                           VersionId{oid, kNoVersion}, header.type_id,
                           VersionId{}});
  return Status::OK();
}

Status Database::PdeleteObject(ObjectId oid) {
  return MutateObject(oid,
                      [&](Txn& txn) { return DoDeleteObject(txn, oid); });
}

// ---------------------------------------------------------------------------
// Traversal
// ---------------------------------------------------------------------------

StatusOr<VersionId> Database::Latest(ObjectId oid) {
  if (latest_cache_->enabled()) {
    VersionNum latest = kNoVersion;
    if (latest_cache_->Lookup(oid, &latest)) {
      return VersionId{oid, latest};
    }
  }
  VersionId result;
  Status s = RunInRead([&](PageIO& txn) -> Status {
    ObjectHeader header;
    ODE_RETURN_IF_ERROR(GetHeader(txn, oid, &header));
    result = VersionId{oid, header.latest};
    latest_cache_->Insert(oid, header.latest);
    return Status::OK();
  });
  if (!s.ok()) return s;
  return result;
}

StatusOr<std::optional<VersionId>> Database::Tprevious(VersionId vid) {
  std::optional<VersionId> result;
  Status s = RunInRead([&](PageIO& txn) -> Status {
    // Confirm vid itself exists (traversing from a deleted version is an
    // error, not an empty result).
    VersionMeta self;
    ODE_RETURN_IF_ERROR(GetMeta(txn, vid, &self));
    if (vid.vnum == 0) return Status::OK();
    auto tree = BTree::Open(&txn, kVersionsTreeSlot);
    if (!tree.ok()) return tree.status();
    auto it = tree->NewIterator();
    it.SeekForPrev(VersionKey(VersionId{vid.oid, vid.vnum - 1}));
    const std::string prefix = VersionKeyPrefix(vid.oid);
    if (it.Valid() && Slice(it.key()).starts_with(Slice(prefix))) {
      VersionId prev;
      ODE_RETURN_IF_ERROR(ParseVersionKey(Slice(it.key()), &prev));
      result = prev;
    }
    return it.status();
  });
  if (!s.ok()) return s;
  return result;
}

StatusOr<std::optional<VersionId>> Database::Tnext(VersionId vid) {
  std::optional<VersionId> result;
  Status s = RunInRead([&](PageIO& txn) -> Status {
    VersionMeta self;
    ODE_RETURN_IF_ERROR(GetMeta(txn, vid, &self));
    auto tree = BTree::Open(&txn, kVersionsTreeSlot);
    if (!tree.ok()) return tree.status();
    auto it = tree->NewIterator();
    it.Seek(VersionKey(VersionId{vid.oid, vid.vnum + 1}));
    const std::string prefix = VersionKeyPrefix(vid.oid);
    if (it.Valid() && Slice(it.key()).starts_with(Slice(prefix))) {
      VersionId next;
      ODE_RETURN_IF_ERROR(ParseVersionKey(Slice(it.key()), &next));
      result = next;
    }
    return it.status();
  });
  if (!s.ok()) return s;
  return result;
}

StatusOr<std::optional<VersionId>> Database::Dprevious(VersionId vid) {
  std::optional<VersionId> result;
  Status s = RunInRead([&](PageIO& txn) -> Status {
    VersionMeta meta;
    ODE_RETURN_IF_ERROR(GetMeta(txn, vid, &meta));
    if (meta.derived_from != kNoVersion) {
      result = VersionId{vid.oid, meta.derived_from};
    }
    return Status::OK();
  });
  if (!s.ok()) return s;
  return result;
}

StatusOr<std::vector<VersionId>> Database::Dnext(VersionId vid) {
  std::vector<VersionId> result;
  Status s = RunInRead([&](PageIO& txn) -> Status {
    VersionMeta self;
    ODE_RETURN_IF_ERROR(GetMeta(txn, vid, &self));
    auto tree = BTree::Open(&txn, kVersionsTreeSlot);
    if (!tree.ok()) return tree.status();
    const std::string prefix = VersionKeyPrefix(vid.oid);
    auto it = tree->NewIterator();
    for (it.Seek(prefix); it.Valid(); it.Next()) {
      if (!Slice(it.key()).starts_with(Slice(prefix))) break;
      VersionMeta m;
      ODE_RETURN_IF_ERROR(VersionMeta::Decode(Slice(it.value()), &m));
      if (m.derived_from == vid.vnum) {
        result.push_back(VersionId{vid.oid, m.vnum});
      }
    }
    return it.status();
  });
  if (!s.ok()) return s;
  return result;
}

StatusOr<std::vector<VersionId>> Database::VersionsOf(ObjectId oid) {
  std::vector<VersionId> result;
  Status s = RunInRead([&](PageIO& txn) -> Status {
    ObjectHeader header;
    ODE_RETURN_IF_ERROR(GetHeader(txn, oid, &header));
    auto tree = BTree::Open(&txn, kVersionsTreeSlot);
    if (!tree.ok()) return tree.status();
    const std::string prefix = VersionKeyPrefix(oid);
    auto it = tree->NewIterator();
    for (it.Seek(prefix); it.Valid(); it.Next()) {
      if (!Slice(it.key()).starts_with(Slice(prefix))) break;
      VersionId vid;
      ODE_RETURN_IF_ERROR(ParseVersionKey(Slice(it.key()), &vid));
      result.push_back(vid);
    }
    return it.status();
  });
  if (!s.ok()) return s;
  return result;
}

StatusOr<bool> Database::ObjectExists(ObjectId oid) {
  bool exists = false;
  Status s = RunInRead([&](PageIO& txn) -> Status {
    ObjectHeader header;
    Status gs = GetHeader(txn, oid, &header);
    if (gs.ok()) {
      exists = true;
      return Status::OK();
    }
    if (gs.IsNotFound()) return Status::OK();
    return gs;
  });
  if (!s.ok()) return s;
  return exists;
}

StatusOr<bool> Database::VersionExists(VersionId vid) {
  bool exists = false;
  Status s = RunInRead([&](PageIO& txn) -> Status {
    VersionMeta meta;
    Status gs = GetMeta(txn, vid, &meta);
    if (gs.ok()) {
      exists = true;
      return Status::OK();
    }
    if (gs.IsNotFound()) return Status::OK();
    return gs;
  });
  if (!s.ok()) return s;
  return exists;
}

StatusOr<ObjectHeader> Database::Header(ObjectId oid) {
  ObjectHeader header;
  Status s =
      RunInRead([&](PageIO& txn) { return GetHeader(txn, oid, &header); });
  if (!s.ok()) return s;
  return header;
}

StatusOr<VersionMeta> Database::Meta(VersionId vid) {
  VersionMeta meta;
  Status s = RunInRead([&](PageIO& txn) { return GetMeta(txn, vid, &meta); });
  if (!s.ok()) return s;
  return meta;
}

// ---------------------------------------------------------------------------
// Types & clusters
// ---------------------------------------------------------------------------

std::optional<uint32_t> Database::LookupTypeCache(std::string_view name) const {
  MutexLock lock(type_cache_mu_);
  auto it = type_cache_.find(std::string(name));
  if (it == type_cache_.end()) return std::nullopt;
  return it->second;
}

void Database::InsertTypeCache(std::string_view name, uint32_t id) {
  MutexLock lock(type_cache_mu_);
  type_cache_.emplace(std::string(name), id);
}

StatusOr<uint32_t> Database::RegisterType(std::string_view name) {
  if (auto cached = LookupTypeCache(name); cached.has_value()) return *cached;
  uint32_t result = 0;
  Status s = RunInTxn([&](Txn& txn) -> Status {
    auto tree = BTree::Open(&txn, kNamesTreeSlot);
    if (!tree.ok()) return tree.status();
    auto existing = tree->Get(Slice(name));
    if (existing.ok()) return DecodeTypeId(Slice(*existing), &result);
    if (!existing.status().IsNotFound()) return existing.status();
    auto counter = txn.GetCounter(kNextTypeIdCounter);
    if (!counter.ok()) return counter.status();
    result = static_cast<uint32_t>(*counter) + 1;
    ODE_RETURN_IF_ERROR(txn.SetCounter(kNextTypeIdCounter, result));
    return tree->Put(Slice(name), Slice(EncodeTypeId(result)));
  });
  if (!s.ok()) return s;
  InsertTypeCache(name, result);
  return result;
}

StatusOr<std::optional<uint32_t>> Database::LookupType(std::string_view name) {
  std::optional<uint32_t> result;
  Status s = RunInRead([&](PageIO& txn) -> Status {
    auto tree = BTree::Open(&txn, kNamesTreeSlot);
    if (!tree.ok()) return tree.status();
    auto existing = tree->Get(Slice(name));
    if (existing.ok()) {
      uint32_t id = 0;
      ODE_RETURN_IF_ERROR(DecodeTypeId(Slice(*existing), &id));
      result = id;
      return Status::OK();
    }
    if (existing.status().IsNotFound()) return Status::OK();
    return existing.status();
  });
  if (!s.ok()) return s;
  return result;
}

StatusOr<std::vector<ObjectId>> Database::ClusterScan(uint32_t type_id) {
  std::vector<ObjectId> result;
  ClusterCursor c(*this, type_id);
  for (; c.Valid(); c.Next()) result.push_back(c.oid());
  ODE_RETURN_IF_ERROR(c.status());
  return result;
}

StatusOr<uint64_t> Database::ClusterSize(uint32_t type_id) {
  uint64_t count = 0;
  ClusterCursor c(*this, type_id);
  for (; c.Valid(); c.Next()) ++count;
  ODE_RETURN_IF_ERROR(c.status());
  return count;
}

namespace {

/// Root slots the incremental vacuum rebuilds, in pass order.
constexpr int kVacuumSlots[] = {kObjectsTreeSlot, kVersionsTreeSlot,
                                kClustersTreeSlot, kNamesTreeSlot,
                                kPayloadsTreeSlot};
constexpr size_t kNumVacuumSlots =
    sizeof(kVacuumSlots) / sizeof(kVacuumSlots[0]);

}  // namespace

Status Database::Vacuum() {
  // No cache invalidation: vacuum rebuilds the catalog trees physically but
  // every key/value — and every payload record — is logically unchanged.
  while (true) {
    auto done = VacuumStep();
    if (!done.ok()) return done.status();
    if (*done) return Status::OK();
  }
}

Status Database::VacuumTreeStep(Txn& txn, int slot, uint64_t max_entries,
                                VacuumState* st, bool* tree_done,
                                uint64_t* copied) {
  *tree_done = false;
  *copied = 0;
  auto source_root = txn.GetRoot(slot);
  if (!source_root.ok()) return source_root.status();
  if (*source_root == 0) {  // Unclaimed slot: nothing to rebuild.
    *tree_done = true;
    return Status::OK();
  }
  if (!st->shadow_active) {
    // Clear any stale shadow (left by an aborted pass) before claiming the
    // scratch slot for this tree.
    auto scratch_root = txn.GetRoot(kVacuumScratchSlot);
    if (!scratch_root.ok()) return scratch_root.status();
    if (*scratch_root != 0) {
      auto stale = BTree::Open(&txn, kVacuumScratchSlot);
      if (!stale.ok()) return stale.status();
      ODE_RETURN_IF_ERROR(stale->Drop());
    }
    st->shadow_active = true;
    st->resume_key.clear();
  }
  auto shadow = BTree::Open(&txn, kVacuumScratchSlot);
  if (!shadow.ok()) return shadow.status();
  auto source = BTree::Open(&txn, slot);
  if (!source.ok()) return source.status();
  // Snapshot the next batch first: Put() into the shadow must not run while
  // an iterator is live (mutation invalidates cursors — different tree, but
  // keep the discipline uniform and the copies cheap).
  std::vector<std::pair<std::string, std::string>> batch;
  bool exhausted = false;
  {
    auto it = source->NewIterator();
    if (st->resume_key.empty()) {
      it.SeekToFirst();
    } else {
      it.Seek(Slice(st->resume_key));
      if (it.Valid() && it.key() == st->resume_key) it.Next();
    }
    while (it.Valid() && batch.size() < max_entries) {
      batch.emplace_back(it.key(), it.value());
      it.Next();
    }
    ODE_RETURN_IF_ERROR(it.status());
    exhausted = !it.Valid();
  }
  for (const auto& [key, value] : batch) {
    ODE_RETURN_IF_ERROR(shadow->Put(Slice(key), Slice(value)));
  }
  *copied = batch.size();
  if (!batch.empty()) st->resume_key = batch.back().first;
  if (exhausted) {
    // Swap the compact shadow in: free the source tree's pages, point the
    // source slot at the shadow's root, release the scratch slot.  All in
    // this step's transaction, so a crash either keeps the old tree (with
    // the shadow discoverable at the scratch slot for Open to free) or sees
    // the swap complete — never a torn mix.
    const PageId shadow_root = shadow->root();
    ODE_RETURN_IF_ERROR(source->Drop());
    ODE_RETURN_IF_ERROR(txn.SetRoot(slot, shadow_root));
    ODE_RETURN_IF_ERROR(txn.SetRoot(kVacuumScratchSlot, 0));
    *tree_done = true;
  }
  return Status::OK();
}

StatusOr<bool> Database::VacuumStep(uint64_t max_entries) {
  if (max_entries < 1) {
    return Status::InvalidArgument("max_entries must be >= 1");
  }
  if (CurrentThreadTxn() != nullptr) {
    return Status::FailedPrecondition(
        "VacuumStep must run outside any open transaction (each step is its "
        "own transaction)");
  }
  MutexLock lock(vacuum_mu_);
  if (!vacuum_state_.has_value()) vacuum_state_.emplace();
  // Work on a local copy: the lambda below runs in another stack frame where
  // the thread-safety analysis can't see vacuum_mu_ is held.  The mutex IS
  // held throughout; the copy is written back (or the state dropped) after
  // the transaction resolves.
  VacuumState st = *vacuum_state_;
  bool pass_done = false;
  uint64_t entries_copied = 0;
  const uint64_t step_tree = st.tree_index;
  Status s = RunInTxn([&](Txn& txn) -> Status {
    // Interference detection.  The engine bumps commit_count under the
    // exclusive apply latch — which this transaction body holds — so the
    // read is exact: anything beyond what the previous step predicted means
    // a foreign writer committed in between and the shadow may be missing
    // its edits.
    const uint64_t commits_now = engine_->commit_count();
    if (st.shadow_active && commits_now != st.expected_commits) {
      auto shadow = BTree::Open(&txn, kVacuumScratchSlot);
      if (!shadow.ok()) return shadow.status();
      ODE_RETURN_IF_ERROR(shadow->Drop());
      st.shadow_active = false;
      st.resume_key.clear();
      // Fall back to rebuilding this tree atomically within this step (the
      // pre-incremental behavior, already safe against concurrent writers
      // because the whole rebuild sits in one transaction).
      auto tree = BTree::Open(&txn, kVacuumSlots[st.tree_index]);
      if (!tree.ok()) return tree.status();
      ODE_RETURN_IF_ERROR(tree->Vacuum());
      ++st.tree_index;
    } else {
      bool tree_done = false;
      ODE_RETURN_IF_ERROR(VacuumTreeStep(txn, kVacuumSlots[st.tree_index],
                                         max_entries, &st, &tree_done,
                                         &entries_copied));
      if (tree_done) {
        st.shadow_active = false;
        st.resume_key.clear();
        ++st.tree_index;
      }
    }
    ++st.steps_done;
    if (st.tree_index >= kNumVacuumSlots) pass_done = true;
    // This transaction's own commit will take the count to exactly +1.
    st.expected_commits = commits_now + 1;
    return Status::OK();
  });
  if (!s.ok()) {
    // The step's transaction aborted: its page edits rolled back, so the
    // in-memory progress no longer matches storage.  Drop the pass; any
    // surviving shadow is cleared when the next pass claims the scratch
    // slot (or by Database::Open after a crash).
    vacuum_state_.reset();
    return s;
  }
  // Journal the step and tick the maintenance heartbeat (health gauges).
  engine_->metrics()->hb_vacuum_us->Set(
      static_cast<int64_t>(Histogram::NowNanos() / 1000));
  engine_->metrics()->RecordEvent(EventType::kVacuumStep, EventSeverity::kDebug,
                                  step_tree, entries_copied, st.steps_done);
  if (pass_done) {
    vacuum_state_.reset();
    return true;
  }
  *vacuum_state_ = st;
  return false;
}

StatusOr<Database::StorageStats> Database::GatherStorageStats() {
  StorageStats stats;
  Status s = RunInRead([&](PageIO& txn) -> Status {
    auto page_count = txn.PageCount();
    if (!page_count.ok()) return page_count.status();
    stats.total_pages = *page_count;
    for (PageId id = 1; id < *page_count; ++id) {
      auto handle = txn.Fetch(id);
      if (!handle.ok()) return handle.status();
      switch (static_cast<PageType>(
          static_cast<uint8_t>(handle->data()[0]))) {
        case PageType::kFree:
          ++stats.free_pages;
          break;
        case PageType::kHeap:
          ++stats.heap_pages;
          break;
        case PageType::kOverflow:
          ++stats.overflow_pages;
          break;
        case PageType::kBTreeLeaf:
        case PageType::kBTreeInternal:
          ++stats.btree_pages;
          break;
        case PageType::kSuper:
          break;
      }
    }
    auto heap_stats = engine_->heap().Stats(&txn);
    if (!heap_stats.ok()) return heap_stats.status();
    stats.live_records = heap_stats->live_records;
    return Status::OK();
  });
  if (!s.ok()) return s;
  stats.wal_bytes = engine_->wal_bytes();
  return stats;
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

VersionStats Database::stats() const {
  // Compatibility view over the registry's instruments.  The cache hit/miss
  // counters come straight from the caches' own per-shard counters (nothing
  // extra on the cache-hit fast path).  The payload numbers therefore count
  // every probe, including delta-chain ancestor probes inside Materialize.
  VersionStats snapshot;
  snapshot.pnew_count = metrics_.pnew->value();
  snapshot.newversion_count = metrics_.newversion->value();
  snapshot.update_count = metrics_.update->value();
  snapshot.delete_version_count = metrics_.delete_version->value();
  snapshot.delete_object_count = metrics_.delete_object->value();
  snapshot.materializations = metrics_.materializations->value();
  snapshot.delta_applications = metrics_.delta_applications->value();
  snapshot.full_payloads_written = metrics_.full_payloads_written->value();
  snapshot.delta_payloads_written = metrics_.delta_payloads_written->value();
  snapshot.full_bytes_written = metrics_.full_bytes_written->value();
  snapshot.delta_bytes_written = metrics_.delta_bytes_written->value();
  const PayloadStore& payloads = engine_->payload_store();
  snapshot.payload_dedupe_hits = payloads.dedupe_hits()->value();
  snapshot.payload_dedupe_bytes_saved = payloads.dedupe_bytes_saved()->value();
  snapshot.payload_blobs_created = payloads.blobs_created()->value();
  snapshot.payload_blobs_freed = payloads.blobs_freed()->value();
  const PayloadCacheStats payload = payload_cache_->stats();
  snapshot.payload_cache_hits = payload.hits;
  snapshot.payload_cache_misses = payload.misses;
  const PayloadCacheStats latest = latest_cache_->stats();
  snapshot.latest_cache_hits = latest.hits;
  snapshot.latest_cache_misses = latest.misses;
  const StorageMetrics* storage = engine_->metrics();
  snapshot.wal_appends = storage->wal_appends->value();
  snapshot.wal_fsyncs = storage->wal_fsyncs->value();
  snapshot.buffer_pool_evictions = engine_->cache_stats().evictions;
  snapshot.txn_commits = storage->txn_commits->value();
  snapshot.txn_aborts = storage->txn_aborts->value();
  snapshot.group_commit_batches = storage->gc_batches->value();
  snapshot.group_commit_commits = storage->gc_commits->value();
  snapshot.group_commit_fsyncs = storage->gc_fsyncs->value();
  snapshot.async_pending =
      static_cast<uint64_t>(storage->gc_async_pending->value());
  return snapshot;
}

void Database::RefreshMetricMirrors() const {
  const PayloadCacheStats payload = payload_cache_->stats();
  metrics_.payload_cache_hits->Set(payload.hits);
  metrics_.payload_cache_misses->Set(payload.misses);
  const PayloadCacheStats latest = latest_cache_->stats();
  metrics_.latest_cache_hits->Set(latest.hits);
  metrics_.latest_cache_misses->Set(latest.misses);
  const BufferPoolStats pool = engine_->cache_stats();
  StorageMetrics* storage = engine_->metrics();
  storage->pool_hits->Set(pool.hits);
  storage->pool_misses->Set(pool.misses);
  storage->pool_evictions->Set(pool.evictions);
  storage->pool_flushes->Set(pool.flushes);
  storage->pool_resident_pages->Set(
      static_cast<int64_t>(engine_->buffer_pool().resident_pages()));
}

MetricsRegistry::Snapshot Database::MetricsSnapshot() const {
  RefreshMetricMirrors();
  return registry_->SnapshotAll();
}

// ---------------------------------------------------------------------------
// Triggers
// ---------------------------------------------------------------------------

uint64_t Database::RegisterTrigger(TriggerEvent event, TriggerFn fn) {
  MutexLock lock(triggers_mu_);
  const uint64_t handle = next_trigger_handle_++;
  triggers_.push_back(TriggerEntry{handle, event, std::move(fn)});
  return handle;
}

void Database::UnregisterTrigger(uint64_t handle) {
  MutexLock lock(triggers_mu_);
  triggers_.erase(
      std::remove_if(triggers_.begin(), triggers_.end(),
                     [&](const TriggerEntry& e) { return e.handle == handle; }),
      triggers_.end());
}

void Database::FireTriggers(const TriggerInfo& info) {
  // Copy under the mutex so triggers may (un)register triggers while firing
  // and concurrent mutators may fire without racing on the vector; run the
  // callbacks unlocked.
  std::vector<TriggerEntry> snapshot;
  {
    MutexLock lock(triggers_mu_);
    if (triggers_.empty()) return;
    snapshot = triggers_;
  }
  for (const TriggerEntry& entry : snapshot) {
    if (entry.event == info.event) entry.fn(*this, info);
  }
}

}  // namespace ode
