#ifndef ODE_CORE_VERSION_PTR_H_
#define ODE_CORE_VERSION_PTR_H_

#include <cstdlib>
#include <memory>
#include <optional>
#include <vector>

#include "core/codec.h"
#include "core/database.h"
#include "core/ids.h"
#include "util/logging.h"

namespace ode {

// The paper's two reference kinds as C++ smart pointers (§4, §6):
//
//   Ref<T>        — a *generic* reference holding an object id.  Every
//                   dereference late-binds to the object's latest version
//                   (the address-book example of §2: you always see the
//                   current address).
//   VersionPtr<T> — a *specific* reference holding a version id, bound to
//                   one immutable point in the history.
//
// "By overloading the definitions of the -> and * operators we were able to
// define class VersionPtr in such a way that its objects could be
// manipulated just like normal pointers." (§6)  That convenience surface is
// preserved here: operator-> and operator* dereference the persistent store.
// Because C++ operators cannot return a Status, a failed dereference (object
// deleted, I/O error) CHECK-fails; the Status-returning Load() is the
// checked alternative and the right choice in library code.

template <Persistable T>
class VersionPtr;

/// Generic (late-bound) reference to a persistent object.
template <Persistable T>
class Ref {
 public:
  /// Null reference.
  Ref() = default;

  /// Binds to object `oid` in `db`.
  Ref(Database* db, ObjectId oid) : db_(db), oid_(oid) {}

  bool valid() const { return db_ != nullptr && oid_.valid(); }
  ObjectId oid() const { return oid_; }
  Database* db() const { return db_; }

  /// Reads the latest version (checked).
  StatusOr<T> Load() const {
    if (!valid()) return Status::InvalidArgument("null Ref");
    return db_->template GetLatest<T>(oid_);
  }

  /// Replaces the contents of the latest version (no new version is created;
  /// versions are explicit via newversion, per the paper).
  Status Store(const T& value) const {
    if (!valid()) return Status::InvalidArgument("null Ref");
    return db_->PutLatest(oid_, value);
  }

  /// Pins the current latest version into a specific reference.
  StatusOr<VersionPtr<T>> Pin() const;

  /// Dereference: loads the latest version.  The returned pointer stays
  /// valid until the next dereference of this Ref.  CHECK-fails on error.
  const T* operator->() const {
    Reload();
    return cache_.get();
  }
  const T& operator*() const {
    Reload();
    return *cache_;
  }

  friend bool operator==(const Ref& a, const Ref& b) {
    return a.oid_ == b.oid_;
  }
  friend bool operator!=(const Ref& a, const Ref& b) { return !(a == b); }

 private:
  void Reload() const {
    ODE_CHECK(valid());
    auto loaded = Load();
    ODE_CHECK(loaded.ok());
    cache_ = std::make_shared<T>(std::move(*loaded));
  }

  Database* db_ = nullptr;
  ObjectId oid_;
  mutable std::shared_ptr<T> cache_;
};

/// Specific (early-bound) reference to one version of a persistent object.
template <Persistable T>
class VersionPtr {
 public:
  VersionPtr() = default;
  VersionPtr(Database* db, VersionId vid) : db_(db), vid_(vid) {}

  bool valid() const { return db_ != nullptr && vid_.valid(); }
  VersionId vid() const { return vid_; }
  ObjectId oid() const { return vid_.oid; }
  Database* db() const { return db_; }

  /// Reads this version (checked).
  StatusOr<T> Load() const {
    if (!valid()) return Status::InvalidArgument("null VersionPtr");
    return db_->template Get<T>(vid_);
  }

  /// Replaces this version's contents.
  Status Store(const T& value) const {
    if (!valid()) return Status::InvalidArgument("null VersionPtr");
    ODE_RETURN_IF_ERROR(db_->Put(vid_, value));
    cache_.reset();  // Next dereference reloads.
    return Status::OK();
  }

  /// Generic reference to the same object.
  Ref<T> Generic() const { return Ref<T>(db_, vid_.oid); }

  /// Dereference: loads (and caches — versions are updated only through
  /// Store, which invalidates) this version's value.  CHECK-fails on error.
  const T* operator->() const {
    EnsureLoaded();
    return cache_.get();
  }
  const T& operator*() const {
    EnsureLoaded();
    return *cache_;
  }

  /// Drops the cached value so the next dereference re-reads the store.
  void Refresh() const { cache_.reset(); }

  // -- Relationship traversal, paper names (§4.3) ---------------------------

  /// The version this one was derived from.
  StatusOr<std::optional<VersionPtr>> Dprevious() const {
    auto prev = db_->Dprevious(vid_);
    if (!prev.ok()) return prev.status();
    return Wrap(*prev);
  }
  /// Versions derived from this one.
  StatusOr<std::vector<VersionPtr>> Dnext() const {
    auto next = db_->Dnext(vid_);
    if (!next.ok()) return next.status();
    std::vector<VersionPtr> out;
    out.reserve(next->size());
    for (VersionId vid : *next) out.push_back(VersionPtr(db_, vid));
    return out;
  }
  /// Temporal predecessor.
  StatusOr<std::optional<VersionPtr>> Tprevious() const {
    auto prev = db_->Tprevious(vid_);
    if (!prev.ok()) return prev.status();
    return Wrap(*prev);
  }
  /// Temporal successor.
  StatusOr<std::optional<VersionPtr>> Tnext() const {
    auto next = db_->Tnext(vid_);
    if (!next.ok()) return next.status();
    return Wrap(*next);
  }

  friend bool operator==(const VersionPtr& a, const VersionPtr& b) {
    return a.vid_ == b.vid_;
  }
  friend bool operator!=(const VersionPtr& a, const VersionPtr& b) {
    return !(a == b);
  }

 private:
  std::optional<VersionPtr> Wrap(std::optional<VersionId> vid) const {
    if (!vid.has_value()) return std::nullopt;
    return VersionPtr(db_, *vid);
  }

  void EnsureLoaded() const {
    ODE_CHECK(valid());
    if (cache_ == nullptr) {
      auto loaded = Load();
      ODE_CHECK(loaded.ok());
      cache_ = std::make_shared<T>(std::move(*loaded));
    }
  }

  Database* db_ = nullptr;
  VersionId vid_;
  mutable std::shared_ptr<T> cache_;
};

template <Persistable T>
StatusOr<VersionPtr<T>> Ref<T>::Pin() const {
  if (!valid()) return Status::InvalidArgument("null Ref");
  auto latest = db_->Latest(oid_);
  if (!latest.ok()) return latest.status();
  return VersionPtr<T>(db_, *latest);
}

// ---------------------------------------------------------------------------
// The O++ operations under their paper names (§4)
// ---------------------------------------------------------------------------

/// pnew: creates a persistent object initialized to `value`; the result is a
/// generic reference to it (O++: `pnew T(...)`).
template <Persistable T>
StatusOr<Ref<T>> pnew(Database& db, const T& value) {
  auto vid = db.Pnew(value);
  if (!vid.ok()) return vid.status();
  return Ref<T>(&db, vid->oid);
}

/// newversion(generic ref): derives a new version from the latest version;
/// the new version becomes the latest.
template <Persistable T>
StatusOr<VersionPtr<T>> newversion(const Ref<T>& ref) {
  if (!ref.valid()) return Status::InvalidArgument("null Ref");
  auto vid = ref.db()->NewVersionOf(ref.oid());
  if (!vid.ok()) return vid.status();
  return VersionPtr<T>(ref.db(), *vid);
}

/// newversion(specific ref): derives a new version from the pointed-to
/// version (creating an alternative when that version already has derived
/// versions).
template <Persistable T>
StatusOr<VersionPtr<T>> newversion(const VersionPtr<T>& vp) {
  if (!vp.valid()) return Status::InvalidArgument("null VersionPtr");
  auto vid = vp.db()->NewVersionFrom(vp.vid());
  if (!vid.ok()) return vid.status();
  return VersionPtr<T>(vp.db(), *vid);
}

/// pdelete(object id): deletes the object and all its versions.
template <Persistable T>
Status pdelete(const Ref<T>& ref) {
  if (!ref.valid()) return Status::InvalidArgument("null Ref");
  return ref.db()->PdeleteObject(ref.oid());
}

/// pdelete(version id): deletes the specified version only.
template <Persistable T>
Status pdelete(const VersionPtr<T>& vp) {
  if (!vp.valid()) return Status::InvalidArgument("null VersionPtr");
  return vp.db()->PdeleteVersion(vp.vid());
}

// ---------------------------------------------------------------------------
// Persisting references inside object payloads
// ---------------------------------------------------------------------------

/// Serializes a generic reference field (stores the object id).
template <Persistable T>
void WriteRef(BufferWriter& w, const Ref<T>& ref) {
  WriteObjectId(w, ref.oid());
}

/// Deserializes a generic reference field; rebind with `Ref(db, oid)` via the
/// returned id.
inline Status ReadRefId(BufferReader& r, ObjectId* oid) {
  return ReadObjectId(r, oid);
}

/// Serializes a specific reference field (stores the version id).
template <Persistable T>
void WriteVersionPtr(BufferWriter& w, const VersionPtr<T>& vp) {
  WriteVersionId(w, vp.vid());
}

/// Deserializes a specific reference field.
inline Status ReadVersionPtrId(BufferReader& r, VersionId* vid) {
  return ReadVersionId(r, vid);
}

}  // namespace ode

#endif  // ODE_CORE_VERSION_PTR_H_
