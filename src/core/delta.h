#ifndef ODE_CORE_DELTA_H_
#define ODE_CORE_DELTA_H_

#include <cstdint>
#include <string>

#include "util/slice.h"
#include "util/status.h"
#include "util/statusor.h"

namespace ode {

/// Binary delta encoding between version payloads.
///
/// The paper (§2) observes that the derived-from relationship "can be used to
/// store versions by storing their differences (called deltas [SCCS, RCS])".
/// This module provides that storage strategy: a greedy block-matching
/// differ (in the spirit of xdelta) that expresses `target` as a sequence of
///
///   COPY(offset, length)  — bytes taken from the base payload
///   ADD(bytes)            — literal bytes
///
/// operations.  Encoding is O(|base| + |target|) expected time using a hash
/// table over fixed-size base blocks; applying is a single linear pass.
///
/// Wire format:
///   varint target_length
///   ops: u8 tag (0 = COPY, 1 = ADD)
///        COPY: varint offset, varint length
///        ADD:  varint length, bytes
namespace delta {

/// Size of the blocks hashed on the base side.  Smaller blocks find more
/// matches but cost more space/time; 16 is the classic sweet spot for
/// record-sized payloads.
inline constexpr size_t kBlockSize = 16;

/// Computes a delta turning `base` into `target`.
std::string Encode(const Slice& base, const Slice& target);

/// Reconstructs the target from `base` + `delta`.  Fails with kCorruption on
/// malformed input or out-of-range copies.
StatusOr<std::string> Apply(const Slice& base, const Slice& delta);

/// Size in bytes the encoded delta would occupy (= Encode(...).size(), but
/// callers usually just encode once and measure).
struct DeltaStats {
  uint64_t copy_ops = 0;
  uint64_t add_ops = 0;
  uint64_t copied_bytes = 0;
  uint64_t added_bytes = 0;
};

/// Like Encode, also reporting op statistics (for benchmarks/ablation).
std::string EncodeWithStats(const Slice& base, const Slice& target,
                            DeltaStats* stats);

}  // namespace delta
}  // namespace ode

#endif  // ODE_CORE_DELTA_H_
