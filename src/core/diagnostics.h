#ifndef ODE_CORE_DIAGNOSTICS_H_
#define ODE_CORE_DIAGNOSTICS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/statusor.h"

namespace ode {

class Env;

// ---------------------------------------------------------------------------
// Flight-recorder dump files
// ---------------------------------------------------------------------------
//
// A diagnostics dump is one self-contained JSON document written into the
// database directory as DIAGNOSTICS-<seq>.json: the event journal, every
// metric instrument, the WAL durability watermarks, cache/buffer-pool/latch
// stats, vacuum progress, the recovery summary and the health verdict — the
// state a post-mortem needs, captured at the moment something went wrong
// (engine poison, crash-matrix failure) or on demand
// (Database::DumpDiagnostics, odedump diag).
//
// Sequence numbers are monotone per directory: a new dump takes
// max(existing) + 1, and retention deletes the oldest files beyond
// DatabaseOptions::diagnostics_retain.  The filename zero-pads seq so a
// lexical directory sort is also the chronological order.

/// Filename prefix of every dump file ("DIAGNOSTICS-<seq>.json").
inline constexpr std::string_view kDiagnosticsFilePrefix = "DIAGNOSTICS-";

/// Filename of the periodic metrics export (see
/// DatabaseOptions::stats_export_interval_ms); ode_top polls this file.
inline constexpr std::string_view kMetricsExportFileName = "METRICS.json";

/// Builds the dump filename for `seq` (zero-padded, .json suffix).
std::string DiagnosticsFileName(uint64_t seq);

/// Parses `name` as a dump filename.  Returns true and sets *seq on a match;
/// false for anything else (including a malformed sequence field).
bool ParseDiagnosticsFileName(std::string_view name, uint64_t* seq);

/// Lists the dump files in `dir` as (seq, filename) pairs, ascending seq.
/// Filenames are relative to `dir`.  A missing/empty directory is an empty
/// list, not an error.
StatusOr<std::vector<std::pair<uint64_t, std::string>>> ListDiagnosticsDumps(
    Env* env, const std::string& dir);

/// Reads the whole dump file `path` through `env`.
StatusOr<std::string> ReadDiagnosticsFile(Env* env, const std::string& path);

}  // namespace ode

#endif  // ODE_CORE_DIAGNOSTICS_H_
