#include "core/meta.h"

namespace ode {

namespace {

void AppendBE32(std::string* out, uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void AppendBE64(std::string* out, uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

uint32_t ReadBE32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | static_cast<uint8_t>(p[i]);
  return v;
}

uint64_t ReadBE64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | static_cast<uint8_t>(p[i]);
  return v;
}

}  // namespace

std::string ObjectHeader::Encode() const {
  BufferWriter w;
  w.WriteU32(type_id);
  w.WriteU32(latest);
  w.WriteU32(next_vnum);
  w.WriteU32(version_count);
  w.WriteU64(created_ts);
  return w.Release();
}

Status ObjectHeader::Decode(const Slice& bytes, ObjectHeader* out) {
  BufferReader r(bytes);
  ODE_RETURN_IF_ERROR(r.ReadU32(&out->type_id));
  ODE_RETURN_IF_ERROR(r.ReadU32(&out->latest));
  ODE_RETURN_IF_ERROR(r.ReadU32(&out->next_vnum));
  ODE_RETURN_IF_ERROR(r.ReadU32(&out->version_count));
  ODE_RETURN_IF_ERROR(r.ReadU64(&out->created_ts));
  return Status::OK();
}

std::string VersionMeta::Encode() const {
  BufferWriter w;
  w.WriteU32(vnum);
  w.WriteU32(derived_from);
  w.WriteU64(created_ts);
  w.WriteU64(payload.Encode());
  w.WriteU8(static_cast<uint8_t>(kind));
  w.WriteU32(delta_base);
  w.WriteU32(delta_chain_len);
  w.WriteU64(logical_size);
  w.WriteU64(content_hash.hi);
  w.WriteU64(content_hash.lo);
  w.WriteU32(delta_pos);
  return w.Release();
}

Status VersionMeta::Decode(const Slice& bytes, VersionMeta* out) {
  BufferReader r(bytes);
  ODE_RETURN_IF_ERROR(r.ReadU32(&out->vnum));
  ODE_RETURN_IF_ERROR(r.ReadU32(&out->derived_from));
  ODE_RETURN_IF_ERROR(r.ReadU64(&out->created_ts));
  uint64_t rid = 0;
  ODE_RETURN_IF_ERROR(r.ReadU64(&rid));
  out->payload = RecordId::Decode(rid);
  uint8_t kind = 0;
  ODE_RETURN_IF_ERROR(r.ReadU8(&kind));
  if (kind > static_cast<uint8_t>(PayloadKind::kDelta)) {
    return Status::Corruption("bad payload kind");
  }
  out->kind = static_cast<PayloadKind>(kind);
  ODE_RETURN_IF_ERROR(r.ReadU32(&out->delta_base));
  ODE_RETURN_IF_ERROR(r.ReadU32(&out->delta_chain_len));
  ODE_RETURN_IF_ERROR(r.ReadU64(&out->logical_size));
  ODE_RETURN_IF_ERROR(r.ReadU64(&out->content_hash.hi));
  ODE_RETURN_IF_ERROR(r.ReadU64(&out->content_hash.lo));
  ODE_RETURN_IF_ERROR(r.ReadU32(&out->delta_pos));
  return Status::OK();
}

std::string ObjectKey(ObjectId oid) {
  std::string key;
  AppendBE64(&key, oid.value);
  return key;
}

std::string VersionKey(VersionId vid) {
  std::string key;
  AppendBE64(&key, vid.oid.value);
  AppendBE32(&key, vid.vnum);
  return key;
}

std::string VersionKeyPrefix(ObjectId oid) {
  std::string key;
  AppendBE64(&key, oid.value);
  return key;
}

std::string ClusterKey(uint32_t type_id, ObjectId oid) {
  std::string key;
  AppendBE32(&key, type_id);
  AppendBE64(&key, oid.value);
  return key;
}

std::string ClusterKeyPrefix(uint32_t type_id) {
  std::string key;
  AppendBE32(&key, type_id);
  return key;
}

Status ParseVersionKey(const Slice& key, VersionId* vid) {
  if (key.size() != 12) return Status::Corruption("bad version key size");
  vid->oid.value = ReadBE64(key.data());
  vid->vnum = ReadBE32(key.data() + 8);
  return Status::OK();
}

Status ParseClusterKey(const Slice& key, uint32_t* type_id, ObjectId* oid) {
  if (key.size() != 12) return Status::Corruption("bad cluster key size");
  *type_id = ReadBE32(key.data());
  oid->value = ReadBE64(key.data() + 4);
  return Status::OK();
}

Status ParseObjectKey(const Slice& key, ObjectId* oid) {
  if (key.size() != 8) return Status::Corruption("bad object key size");
  oid->value = ReadBE64(key.data());
  return Status::OK();
}

std::string EncodeTypeId(uint32_t id) {
  std::string s;
  for (int shift = 24; shift >= 0; shift -= 8) {
    s.push_back(static_cast<char>((id >> shift) & 0xff));
  }
  return s;
}

Status DecodeTypeId(const Slice& bytes, uint32_t* id) {
  if (bytes.size() != 4) return Status::Corruption("bad type id value");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | static_cast<uint8_t>(bytes[i]);
  *id = v;
  return Status::OK();
}

}  // namespace ode
