#ifndef ODE_CORE_IDS_H_
#define ODE_CORE_IDS_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>

namespace ode {

/// Identity of a persistent object.
///
/// Per the paper (§4.1): "an object id ... logically refers to the latest
/// version of the object", i.e., holding an ObjectId is a *generic*
/// (late-bound) reference.  Object ids are allocated once by pnew and never
/// reused.
struct ObjectId {
  uint64_t value = 0;

  bool valid() const { return value != 0; }

  friend bool operator==(const ObjectId& a, const ObjectId& b) {
    return a.value == b.value;
  }
  friend bool operator!=(const ObjectId& a, const ObjectId& b) {
    return a.value != b.value;
  }
  friend bool operator<(const ObjectId& a, const ObjectId& b) {
    return a.value < b.value;
  }
};

/// Number of a version within its object's history.  Version numbers are
/// assigned in creation order and never reused, so numeric order IS the
/// paper's temporal order.
using VersionNum = uint32_t;

/// Sentinel: "no version" (used for the derived-from link of a root version).
inline constexpr VersionNum kNoVersion = 0;

/// First version of every object.
inline constexpr VersionNum kFirstVersion = 1;

/// Identity of one specific, *early-bound* version of an object (the paper's
/// "version id" / specific reference).
struct VersionId {
  ObjectId oid;
  VersionNum vnum = kNoVersion;

  bool valid() const { return oid.valid() && vnum != kNoVersion; }

  friend bool operator==(const VersionId& a, const VersionId& b) {
    return a.oid == b.oid && a.vnum == b.vnum;
  }
  friend bool operator!=(const VersionId& a, const VersionId& b) {
    return !(a == b);
  }
  friend bool operator<(const VersionId& a, const VersionId& b) {
    if (a.oid != b.oid) return a.oid < b.oid;
    return a.vnum < b.vnum;
  }
};

inline std::ostream& operator<<(std::ostream& os, const ObjectId& oid) {
  return os << "oid:" << oid.value;
}

inline std::ostream& operator<<(std::ostream& os, const VersionId& vid) {
  return os << "vid:" << vid.oid.value << "." << vid.vnum;
}

}  // namespace ode

namespace std {
template <>
struct hash<ode::ObjectId> {
  size_t operator()(const ode::ObjectId& id) const noexcept {
    return std::hash<uint64_t>()(id.value);
  }
};
template <>
struct hash<ode::VersionId> {
  size_t operator()(const ode::VersionId& id) const noexcept {
    return std::hash<uint64_t>()(id.oid.value * 1000003u + id.vnum);
  }
};
}  // namespace std

#endif  // ODE_CORE_IDS_H_
