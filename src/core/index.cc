#include "core/index.h"

#include <set>

#include "core/cursor.h"
#include "core/meta.h"
#include "storage/btree.h"
#include "util/logging.h"

namespace ode {

namespace {

void AppendBE32(std::string* out, uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void AppendBE64(std::string* out, uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

uint64_t ReadBE64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | static_cast<uint8_t>(p[i]);
  return v;
}

constexpr char kIndexNamePrefix[] = "ode.index:";

}  // namespace

std::string OrderedKeyFromInt(int64_t value) {
  std::string key;
  AppendBE64(&key, static_cast<uint64_t>(value) ^ (1ull << 63));
  return key;
}

std::string RawSecondaryIndex::ForwardPrefix() const {
  std::string key;
  AppendBE32(&key, index_id_);
  key.push_back('\x01');
  return key;
}

std::string RawSecondaryIndex::ForwardKey(const Slice& user_key,
                                          ObjectId oid) const {
  std::string key = ForwardPrefix();
  key.append(user_key.data(), user_key.size());
  AppendBE64(&key, oid.value);
  return key;
}

std::string RawSecondaryIndex::ReversePrefix() const {
  std::string key;
  AppendBE32(&key, index_id_);
  key.push_back('\x00');
  return key;
}

std::string RawSecondaryIndex::ReverseKey(ObjectId oid) const {
  std::string key = ReversePrefix();
  AppendBE64(&key, oid.value);
  return key;
}

StatusOr<std::unique_ptr<RawSecondaryIndex>> RawSecondaryIndex::Open(
    Database& db, const std::string& name, uint32_t type_id,
    KeyExtractor extractor) {
  // Register (or find) the index id under a reserved name-tree entry.
  uint32_t index_id = 0;
  Status reg = db.RunInTxn([&](Txn& txn) -> Status {
    auto names = BTree::Open(&txn, kNamesTreeSlot);
    if (!names.ok()) return names.status();
    const std::string registry_key = std::string(kIndexNamePrefix) + name;
    auto existing = names->Get(Slice(registry_key));
    if (existing.ok()) {
      if (existing->size() != 4) return Status::Corruption("bad index id");
      uint32_t v = 0;
      for (int i = 0; i < 4; ++i) {
        v = (v << 8) | static_cast<uint8_t>((*existing)[i]);
      }
      index_id = v;
      return Status::OK();
    }
    if (!existing.status().IsNotFound()) return existing.status();
    auto counter = txn.GetCounter(kNextIndexIdCounter);
    if (!counter.ok()) return counter.status();
    index_id = static_cast<uint32_t>(*counter) + 1;
    ODE_RETURN_IF_ERROR(txn.SetCounter(kNextIndexIdCounter, index_id));
    std::string encoded;
    AppendBE32(&encoded, index_id);
    return names->Put(Slice(registry_key), Slice(encoded));
  });
  if (!reg.ok()) return reg;

  auto index = std::unique_ptr<RawSecondaryIndex>(
      new RawSecondaryIndex(&db, index_id, type_id, std::move(extractor)));
  ODE_RETURN_IF_ERROR(index->ReconcileAll());

  RawSecondaryIndex* raw = index.get();
  for (TriggerEvent event :
       {TriggerEvent::kPnew, TriggerEvent::kNewVersion, TriggerEvent::kUpdate,
        TriggerEvent::kDeleteVersion, TriggerEvent::kDeleteObject}) {
    index->trigger_handles_.push_back(db.RegisterTrigger(
        event,
        [raw](Database&, const TriggerInfo& info) { raw->OnTrigger(info); }));
  }
  return index;
}

RawSecondaryIndex::~RawSecondaryIndex() {
  for (uint64_t handle : trigger_handles_) {
    db_->UnregisterTrigger(handle);
  }
}

void RawSecondaryIndex::OnTrigger(const TriggerInfo& info) {
  if (info.type_id != type_id_) return;
  Status s = Reconcile(info.vid.oid);
  if (!s.ok() && health_.ok()) {
    health_ = s;
    ODE_LOG_WARN << "secondary index " << index_id_ << " degraded: " << s;
  }
}

Status RawSecondaryIndex::Reconcile(ObjectId oid) {
  return db_->RunInTxn([&](Txn& txn) -> Status {
    auto tree = BTree::Open(&txn, kIndexesTreeSlot);
    if (!tree.ok()) return tree.status();

    std::optional<std::string> old_key;
    {
      auto stored = tree->Get(Slice(ReverseKey(oid)));
      if (stored.ok()) {
        old_key = *stored;
      } else if (!stored.status().IsNotFound()) {
        return stored.status();
      }
    }

    std::optional<std::string> new_key;
    {
      auto header = db_->Header(oid);
      if (header.ok() && header->type_id == type_id_) {
        auto payload = db_->ReadLatest(oid);
        if (!payload.ok()) return payload.status();
        new_key = extractor_(Slice(*payload));
      } else if (!header.ok() && !header.status().IsNotFound()) {
        return header.status();
      }
    }

    if (old_key == new_key) return Status::OK();
    if (old_key.has_value()) {
      ODE_RETURN_IF_ERROR(tree->Delete(Slice(ForwardKey(*old_key, oid))));
      ODE_RETURN_IF_ERROR(tree->Delete(Slice(ReverseKey(oid))));
    }
    if (new_key.has_value()) {
      ODE_RETURN_IF_ERROR(tree->Put(Slice(ForwardKey(*new_key, oid)), Slice()));
      ODE_RETURN_IF_ERROR(tree->Put(Slice(ReverseKey(oid)), Slice(*new_key)));
    }
    return Status::OK();
  });
}

Status RawSecondaryIndex::ReconcileAll() {
  return db_->RunInTxn([&](Txn& txn) -> Status {
    std::set<uint64_t> candidates;
    {
      auto tree = BTree::Open(&txn, kIndexesTreeSlot);
      if (!tree.ok()) return tree.status();
      const std::string prefix = ReversePrefix();
      auto it = tree->NewIterator();
      for (it.Seek(prefix); it.Valid(); it.Next()) {
        if (!Slice(it.key()).starts_with(Slice(prefix))) break;
        if (it.key().size() != prefix.size() + 8) {
          return Status::Corruption("bad reverse index key");
        }
        candidates.insert(ReadBE64(it.key().data() + prefix.size()));
      }
      ODE_RETURN_IF_ERROR(it.status());
    }
    {
      ClusterCursor cluster(*db_, type_id_);
      for (; cluster.Valid(); cluster.Next()) {
        candidates.insert(cluster.oid().value);
      }
      ODE_RETURN_IF_ERROR(cluster.status());
    }
    for (uint64_t oid : candidates) {
      ODE_RETURN_IF_ERROR(Reconcile(ObjectId{oid}));
    }
    return Status::OK();
  });
}

StatusOr<std::vector<ObjectId>> RawSecondaryIndex::Lookup(const Slice& key) {
  std::vector<ObjectId> result;
  Status s = db_->RunInTxn([&](Txn& txn) -> Status {
    auto tree = BTree::Open(&txn, kIndexesTreeSlot);
    if (!tree.ok()) return tree.status();
    std::string start = ForwardPrefix();
    start.append(key.data(), key.size());
    const size_t expected_size = start.size() + 8;
    auto it = tree->NewIterator();
    for (it.Seek(start); it.Valid(); it.Next()) {
      if (!Slice(it.key()).starts_with(Slice(start))) break;
      if (it.key().size() != expected_size) continue;  // Longer user key.
      result.push_back(
          ObjectId{ReadBE64(it.key().data() + start.size())});
    }
    return it.status();
  });
  if (!s.ok()) return s;
  return result;
}

StatusOr<std::vector<ObjectId>> RawSecondaryIndex::Range(const Slice& lo,
                                                         const Slice& hi) {
  std::vector<ObjectId> result;
  Status s = db_->RunInTxn([&](Txn& txn) -> Status {
    auto tree = BTree::Open(&txn, kIndexesTreeSlot);
    if (!tree.ok()) return tree.status();
    const std::string prefix = ForwardPrefix();
    std::string start = prefix;
    start.append(lo.data(), lo.size());
    auto it = tree->NewIterator();
    for (it.Seek(start); it.Valid(); it.Next()) {
      if (!Slice(it.key()).starts_with(Slice(prefix))) break;
      if (it.key().size() < prefix.size() + 8) {
        return Status::Corruption("bad forward index key");
      }
      const Slice user_key(it.key().data() + prefix.size(),
                           it.key().size() - prefix.size() - 8);
      if (user_key.compare(hi) > 0) break;
      result.push_back(ObjectId{
          ReadBE64(it.key().data() + it.key().size() - 8)});
    }
    return it.status();
  });
  if (!s.ok()) return s;
  return result;
}

Status RawSecondaryIndex::ForEach(
    const std::function<bool(const Slice&, ObjectId)>& fn) {
  return db_->RunInTxn([&](Txn& txn) -> Status {
    auto tree = BTree::Open(&txn, kIndexesTreeSlot);
    if (!tree.ok()) return tree.status();
    const std::string prefix = ForwardPrefix();
    auto it = tree->NewIterator();
    for (it.Seek(prefix); it.Valid(); it.Next()) {
      if (!Slice(it.key()).starts_with(Slice(prefix))) break;
      if (it.key().size() < prefix.size() + 8) {
        return Status::Corruption("bad forward index key");
      }
      const Slice user_key(it.key().data() + prefix.size(),
                           it.key().size() - prefix.size() - 8);
      const ObjectId oid{ReadBE64(it.key().data() + it.key().size() - 8)};
      if (!fn(user_key, oid)) break;
    }
    return it.status();
  });
}

StatusOr<uint64_t> RawSecondaryIndex::Count() {
  uint64_t count = 0;
  Status s = db_->RunInTxn([&](Txn& txn) -> Status {
    auto tree = BTree::Open(&txn, kIndexesTreeSlot);
    if (!tree.ok()) return tree.status();
    const std::string prefix = ReversePrefix();
    auto it = tree->NewIterator();
    for (it.Seek(prefix); it.Valid(); it.Next()) {
      if (!Slice(it.key()).starts_with(Slice(prefix))) break;
      ++count;
    }
    return it.status();
  });
  if (!s.ok()) return s;
  return count;
}

}  // namespace ode
