#ifndef ODE_CORE_INDEX_H_
#define ODE_CORE_INDEX_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/codec.h"
#include "core/database.h"
#include "core/ids.h"
#include "core/version_ptr.h"
#include "util/statusor.h"

namespace ode {

/// Secondary indexes over the *latest versions* of a type's objects.
///
/// Clusters give Ode sequential associative access ("for x in T"); an index
/// adds key-based access: a user-supplied extractor maps each object's
/// latest payload to a byte-string key, and the index maintains
/// key -> object-id entries through every mutation (pnew, newversion,
/// update, deletion — via triggers, the same primitive the policy layer
/// builds on).  Because only latest versions are indexed, the index is a
/// view of "the current database", exactly like a generic reference.
///
/// Entries persist in the shared index tree (one B+tree, per-index id
/// prefixes); the index is registered by name so reopening a database and
/// re-Opening the index reconnects to the same persistent entries, then
/// reconciles them with the current object set (catching changes made while
/// no index instance was live).
///
/// The untyped RawSecondaryIndex extracts keys from raw payload bytes; the
/// SecondaryIndex<T> wrapper below decodes to T first.
class RawSecondaryIndex {
 public:
  /// Maps a latest-version payload to the index key.  Empty optional means
  /// "do not index this object".
  using KeyExtractor =
      std::function<std::optional<std::string>(const Slice& payload)>;

  /// Opens (or creates) index `name` over objects of `type_id`, backfills /
  /// reconciles existing objects, and registers maintenance triggers.
  /// `db` must outlive the returned object.
  static StatusOr<std::unique_ptr<RawSecondaryIndex>> Open(
      Database& db, const std::string& name, uint32_t type_id,
      KeyExtractor extractor);

  ~RawSecondaryIndex();

  RawSecondaryIndex(const RawSecondaryIndex&) = delete;
  RawSecondaryIndex& operator=(const RawSecondaryIndex&) = delete;

  /// Objects whose current key equals `key` (ascending oid).
  StatusOr<std::vector<ObjectId>> Lookup(const Slice& key);

  /// Objects with lo <= key <= hi, in (key, oid) order.
  StatusOr<std::vector<ObjectId>> Range(const Slice& lo, const Slice& hi);

  /// Iterates (key, oid) pairs in order; `fn` returns false to stop.
  Status ForEach(const std::function<bool(const Slice&, ObjectId)>& fn);

  /// Number of indexed objects.
  StatusOr<uint64_t> Count();

  /// First error hit inside trigger-driven maintenance (triggers cannot
  /// propagate Status).  OK when healthy; a degraded index should be
  /// re-Opened (which reconciles).
  const Status& health() const { return health_; }

  uint32_t index_id() const { return index_id_; }

 private:
  RawSecondaryIndex(Database* db, uint32_t index_id, uint32_t type_id,
                    KeyExtractor extractor)
      : db_(db),
        index_id_(index_id),
        type_id_(type_id),
        extractor_(std::move(extractor)) {}

  /// Brings the stored entries for `oid` in line with its current latest
  /// payload (or removes them if the object is gone).
  Status Reconcile(ObjectId oid);
  /// Full reconciliation: every stored entry + every live object.
  Status ReconcileAll();
  void OnTrigger(const TriggerInfo& info);

  // Key layouts within the shared index tree (all big-endian prefixes):
  //   forward: BE32(index_id) . 0x01 . user_key . BE64(oid)  -> ""
  //   reverse: BE32(index_id) . 0x00 . BE64(oid)             -> user_key
  std::string ForwardKey(const Slice& user_key, ObjectId oid) const;
  std::string ForwardPrefix() const;
  std::string ReverseKey(ObjectId oid) const;
  std::string ReversePrefix() const;

  Database* db_;
  uint32_t index_id_;
  uint32_t type_id_;
  KeyExtractor extractor_;
  std::vector<uint64_t> trigger_handles_;
  Status health_;
};

/// Typed secondary index: extract keys from decoded T values.
template <Persistable T>
class SecondaryIndex {
 public:
  using KeyExtractor = std::function<std::optional<std::string>(const T&)>;

  static StatusOr<std::unique_ptr<SecondaryIndex>> Open(
      Database& db, const std::string& name, KeyExtractor extractor) {
    auto type_id = db.TypeId<T>();
    if (!type_id.ok()) return type_id.status();
    auto raw = RawSecondaryIndex::Open(
        db, name, *type_id,
        [extractor =
             std::move(extractor)](const Slice& payload)
            -> std::optional<std::string> {
          auto value = DecodeObject<T>(payload);
          if (!value.ok()) return std::nullopt;
          return extractor(*value);
        });
    if (!raw.ok()) return raw.status();
    auto index = std::unique_ptr<SecondaryIndex>(new SecondaryIndex());
    index->db_ = &db;
    index->raw_ = std::move(*raw);
    return index;
  }

  /// Typed lookups returning generic references.
  StatusOr<std::vector<Ref<T>>> Lookup(const Slice& key) {
    auto oids = raw_->Lookup(key);
    if (!oids.ok()) return oids.status();
    return Wrap(*oids);
  }
  StatusOr<std::vector<Ref<T>>> Range(const Slice& lo, const Slice& hi) {
    auto oids = raw_->Range(lo, hi);
    if (!oids.ok()) return oids.status();
    return Wrap(*oids);
  }
  StatusOr<uint64_t> Count() { return raw_->Count(); }
  const Status& health() const { return raw_->health(); }
  RawSecondaryIndex& raw() { return *raw_; }

 private:
  SecondaryIndex() = default;
  std::vector<Ref<T>> Wrap(const std::vector<ObjectId>& oids) {
    std::vector<Ref<T>> refs;
    refs.reserve(oids.size());
    for (ObjectId oid : oids) refs.emplace_back(db_, oid);
    return refs;
  }

  Database* db_ = nullptr;
  std::unique_ptr<RawSecondaryIndex> raw_;
};

/// Encodes an int64 so the index's byte order equals numeric order (sign
/// bit flipped, big-endian) — for numeric index keys.
std::string OrderedKeyFromInt(int64_t value);

}  // namespace ode

#endif  // ODE_CORE_INDEX_H_
