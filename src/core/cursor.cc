#include "core/cursor.h"

#include <limits>
#include <utility>

#include "core/database.h"
#include "storage/btree.h"
#include "util/slice.h"

namespace ode {

// Each Refill runs one shared-lock batch fetch: seek to `seek_key`, collect
// up to batch_size_ entries, and remember whether the tree may hold more.  A
// short batch proves the scan is exhausted, so the common small-database
// case pays exactly one lock acquisition.

ObjectCursor::ObjectCursor(Database& db, size_t batch_size)
    : CursorBase(db, batch_size) {
  Refill(ObjectKey(ObjectId{0}));
}

void ObjectCursor::Next() {
  if (!Valid()) return;
  const ObjectId last = entry().first;
  ++pos_;
  if (pos_ >= batch_.size() && !exhausted_) {
    if (last.value == std::numeric_limits<uint64_t>::max()) {
      exhausted_ = true;
      return;
    }
    Refill(ObjectKey(ObjectId{last.value + 1}));
  }
}

void ObjectCursor::Refill(const std::string& seek_key) {
  batch_.clear();
  pos_ = 0;
  status_ = db_->RunInRead([&](PageIO& txn) -> Status {
    auto tree = BTree::Open(&txn, kObjectsTreeSlot);
    if (!tree.ok()) return tree.status();
    auto it = tree->NewIterator();
    for (it.Seek(seek_key); it.Valid() && batch_.size() < batch_size_;
         it.Next()) {
      ObjectId oid;
      ODE_RETURN_IF_ERROR(ParseObjectKey(Slice(it.key()), &oid));
      ObjectHeader header;
      ODE_RETURN_IF_ERROR(ObjectHeader::Decode(Slice(it.value()), &header));
      batch_.emplace_back(oid, std::move(header));
    }
    ODE_RETURN_IF_ERROR(it.status());
    if (batch_.size() < batch_size_) exhausted_ = true;
    return Status::OK();
  });
  if (!status_.ok()) {
    batch_.clear();
    exhausted_ = true;
  }
}

VersionCursor::VersionCursor(Database& db, ObjectId oid, size_t batch_size)
    : CursorBase(db, batch_size), oid_(oid) {
  Refill(VersionKeyPrefix(oid_));
}

void VersionCursor::Next() {
  if (!Valid()) return;
  const VersionNum last = entry().first.vnum;
  ++pos_;
  if (pos_ >= batch_.size() && !exhausted_) {
    if (last == std::numeric_limits<VersionNum>::max()) {
      exhausted_ = true;
      return;
    }
    Refill(VersionKey(VersionId{oid_, last + 1}));
  }
}

void VersionCursor::Refill(const std::string& seek_key) {
  batch_.clear();
  pos_ = 0;
  status_ = db_->RunInRead([&](PageIO& txn) -> Status {
    auto tree = BTree::Open(&txn, kVersionsTreeSlot);
    if (!tree.ok()) return tree.status();
    const std::string prefix = VersionKeyPrefix(oid_);
    auto it = tree->NewIterator();
    for (it.Seek(seek_key); it.Valid() && batch_.size() < batch_size_;
         it.Next()) {
      if (!Slice(it.key()).starts_with(Slice(prefix))) break;
      VersionId vid;
      ODE_RETURN_IF_ERROR(ParseVersionKey(Slice(it.key()), &vid));
      VersionMeta meta;
      ODE_RETURN_IF_ERROR(VersionMeta::Decode(Slice(it.value()), &meta));
      batch_.emplace_back(vid, std::move(meta));
    }
    ODE_RETURN_IF_ERROR(it.status());
    if (batch_.size() < batch_size_) exhausted_ = true;
    return Status::OK();
  });
  if (!status_.ok()) {
    batch_.clear();
    exhausted_ = true;
  }
}

TypeCursor::TypeCursor(Database& db, size_t batch_size)
    : CursorBase(db, batch_size) {
  Refill("");
}

void TypeCursor::Next() {
  if (!Valid()) return;
  // name + '\0' is the smallest key strictly greater than name.
  std::string resume = entry().first;
  ++pos_;
  if (pos_ >= batch_.size() && !exhausted_) {
    resume.push_back('\0');
    Refill(resume);
  }
}

void TypeCursor::Refill(const std::string& seek_key) {
  batch_.clear();
  pos_ = 0;
  status_ = db_->RunInRead([&](PageIO& txn) -> Status {
    auto tree = BTree::Open(&txn, kNamesTreeSlot);
    if (!tree.ok()) return tree.status();
    auto it = tree->NewIterator();
    for (it.Seek(seek_key); it.Valid() && batch_.size() < batch_size_;
         it.Next()) {
      uint32_t id = 0;
      ODE_RETURN_IF_ERROR(DecodeTypeId(Slice(it.value()), &id));
      batch_.emplace_back(it.key(), id);
    }
    ODE_RETURN_IF_ERROR(it.status());
    if (batch_.size() < batch_size_) exhausted_ = true;
    return Status::OK();
  });
  if (!status_.ok()) {
    batch_.clear();
    exhausted_ = true;
  }
}

ClusterCursor::ClusterCursor(Database& db, uint32_t type_id, size_t batch_size)
    : CursorBase(db, batch_size), type_id_(type_id) {
  Refill(ClusterKeyPrefix(type_id_));
}

void ClusterCursor::Next() {
  if (!Valid()) return;
  const ObjectId last = entry();
  ++pos_;
  if (pos_ >= batch_.size() && !exhausted_) {
    if (last.value == std::numeric_limits<uint64_t>::max()) {
      exhausted_ = true;
      return;
    }
    Refill(ClusterKey(type_id_, ObjectId{last.value + 1}));
  }
}

void ClusterCursor::Refill(const std::string& seek_key) {
  batch_.clear();
  pos_ = 0;
  status_ = db_->RunInRead([&](PageIO& txn) -> Status {
    auto tree = BTree::Open(&txn, kClustersTreeSlot);
    if (!tree.ok()) return tree.status();
    const std::string prefix = ClusterKeyPrefix(type_id_);
    auto it = tree->NewIterator();
    for (it.Seek(seek_key); it.Valid() && batch_.size() < batch_size_;
         it.Next()) {
      if (!Slice(it.key()).starts_with(Slice(prefix))) break;
      uint32_t parsed_type = 0;
      ObjectId oid;
      ODE_RETURN_IF_ERROR(ParseClusterKey(Slice(it.key()), &parsed_type, &oid));
      batch_.push_back(oid);
    }
    ODE_RETURN_IF_ERROR(it.status());
    if (batch_.size() < batch_size_) exhausted_ = true;
    return Status::OK();
  });
  if (!status_.ok()) {
    batch_.clear();
    exhausted_ = true;
  }
}

}  // namespace ode
