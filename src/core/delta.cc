#include "core/delta.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "util/coding.h"

namespace ode {
namespace delta {

namespace {

constexpr uint8_t kCopyTag = 0;
constexpr uint8_t kAddTag = 1;

uint64_t HashBlock(const char* p) {
  // FNV-1a over kBlockSize bytes.
  uint64_t h = 14695981039346656037ull;
  for (size_t i = 0; i < kBlockSize; ++i) {
    h ^= static_cast<uint8_t>(p[i]);
    h *= 1099511628211ull;
  }
  return h;
}

void EmitAdd(std::string* out, const char* data, size_t len,
             DeltaStats* stats) {
  if (len == 0) return;
  out->push_back(static_cast<char>(kAddTag));
  PutVarint64(out, len);
  out->append(data, len);
  if (stats != nullptr) {
    ++stats->add_ops;
    stats->added_bytes += len;
  }
}

void EmitCopy(std::string* out, size_t offset, size_t len, DeltaStats* stats) {
  out->push_back(static_cast<char>(kCopyTag));
  PutVarint64(out, offset);
  PutVarint64(out, len);
  if (stats != nullptr) {
    ++stats->copy_ops;
    stats->copied_bytes += len;
  }
}

}  // namespace

std::string EncodeWithStats(const Slice& base, const Slice& target,
                            DeltaStats* stats) {
  std::string out;
  PutVarint64(&out, target.size());
  if (target.empty()) return out;
  // For the conservation checks below (stats may be accumulated across
  // calls, so assert on the bytes THIS call produced).
  [[maybe_unused]] const uint64_t produced_before =
      stats != nullptr ? stats->copied_bytes + stats->added_bytes : 0;

  // Literal fast path: a base shorter than one block can never produce a
  // COPY (the matcher needs a full block to anchor on), so the result is
  // exactly one ADD of the whole target.  Emitting it directly skips the
  // pointless per-position hash scan below AND makes the degenerate case
  // explicit in DeltaStats (one add op, zero copies) — skip-delta base
  // selection relies on those stats being trustworthy.
  if (base.size() < kBlockSize) {
    EmitAdd(&out, target.data(), target.size(), stats);
    assert(stats == nullptr || stats->copied_bytes + stats->added_bytes -
                                       produced_before ==
                                   target.size());
    return out;
  }

  // Index block-aligned positions of the base.
  std::unordered_map<uint64_t, std::vector<size_t>> index;
  index.reserve(base.size() / kBlockSize * 2);
  for (size_t pos = 0; pos + kBlockSize <= base.size(); pos += kBlockSize) {
    index[HashBlock(base.data() + pos)].push_back(pos);
  }

  size_t t = 0;            // Scan position in target.
  size_t pending = 0;      // Start of the unmatched literal run.
  while (t + kBlockSize <= target.size()) {
    size_t best_len = 0, best_t_start = 0, best_b_start = 0;
    auto it = index.find(HashBlock(target.data() + t));
    if (it != index.end()) {
      for (size_t candidate : it->second) {
        if (std::memcmp(base.data() + candidate, target.data() + t,
                        kBlockSize) != 0) {
          continue;  // Hash collision.
        }
        // Grow the match backward (into the pending literal run) and
        // forward as far as bytes agree.
        size_t t_start = t, b_start = candidate;
        while (t_start > pending && b_start > 0 &&
               base[b_start - 1] == target[t_start - 1]) {
          --t_start;
          --b_start;
        }
        size_t len = 0;
        while (b_start + len < base.size() && t_start + len < target.size() &&
               base[b_start + len] == target[t_start + len]) {
          ++len;
        }
        if (len > best_len) {
          best_len = len;
          best_t_start = t_start;
          best_b_start = b_start;
        }
      }
    }
    if (best_len >= kBlockSize) {
      EmitAdd(&out, target.data() + pending, best_t_start - pending, stats);
      EmitCopy(&out, best_b_start, best_len, stats);
      t = best_t_start + best_len;
      pending = t;
    } else {
      ++t;
    }
  }
  EmitAdd(&out, target.data() + pending, target.size() - pending, stats);
  // Conservation check: every target byte is produced exactly once, by a
  // COPY or an ADD.
  assert(stats == nullptr ||
         stats->copied_bytes + stats->added_bytes - produced_before ==
             target.size());
  return out;
}

std::string Encode(const Slice& base, const Slice& target) {
  return EncodeWithStats(base, target, nullptr);
}

StatusOr<std::string> Apply(const Slice& base, const Slice& delta) {
  Slice input = delta;
  uint64_t target_len = 0;
  if (!GetVarint64(&input, &target_len)) {
    return Status::Corruption("delta missing target length");
  }
  std::string out;
  // The length prefix is untrusted input: never let it drive allocation or
  // output size beyond what the ops can legitimately produce.
  out.reserve(static_cast<size_t>(
      std::min<uint64_t>(target_len, base.size() + delta.size())));
  while (!input.empty()) {
    const uint8_t tag = static_cast<uint8_t>(input[0]);
    input.remove_prefix(1);
    if (tag == kCopyTag) {
      uint64_t offset = 0, length = 0;
      if (!GetVarint64(&input, &offset) || !GetVarint64(&input, &length)) {
        return Status::Corruption("truncated COPY op");
      }
      if (offset > base.size() || length > base.size() - offset) {
        return Status::Corruption("COPY out of base range");
      }
      if (out.size() + length > target_len) {
        return Status::Corruption("delta output exceeds declared length");
      }
      out.append(base.data() + offset, length);
    } else if (tag == kAddTag) {
      uint64_t length = 0;
      if (!GetVarint64(&input, &length) || length > input.size()) {
        return Status::Corruption("truncated ADD op");
      }
      if (out.size() + length > target_len) {
        return Status::Corruption("delta output exceeds declared length");
      }
      out.append(input.data(), length);
      input.remove_prefix(length);
    } else {
      return Status::Corruption("unknown delta op tag");
    }
  }
  if (out.size() != target_len) {
    return Status::Corruption("delta produced wrong length");
  }
  return out;
}

}  // namespace delta
}  // namespace ode
