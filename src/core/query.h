#ifndef ODE_CORE_QUERY_H_
#define ODE_CORE_QUERY_H_

#include <functional>
#include <vector>

#include "core/cursor.h"
#include "core/database.h"
#include "core/version_ptr.h"
#include "util/statusor.h"

namespace ode {

// Ode's associative access: queries are iterations over clusters (per-type
// extents) with a selection predicate — the library form of O++'s
//
//     for (x in T suchthat (predicate)) ...
//
// (the oppc translator emits exactly these shapes for that syntax).

/// Applies `fn` to the latest version of every object of type T, in oid
/// order; `fn` returns false to stop.
template <Persistable T>
Status ForEachLatest(Database& db,
                     const std::function<bool(const Ref<T>&, const T&)>& fn) {
  auto type_id = db.TypeId<T>();
  if (!type_id.ok()) return type_id.status();
  ClusterCursor cluster(db, *type_id);
  for (; cluster.Valid(); cluster.Next()) {
    Ref<T> ref(&db, cluster.oid());
    auto value = ref.Load();
    if (!value.ok()) return value.status();
    if (!fn(ref, *value)) break;
  }
  return cluster.status();
}

/// All objects of type T whose latest version satisfies `predicate`.
template <Persistable T>
StatusOr<std::vector<Ref<T>>> Select(
    Database& db, const std::function<bool(const T&)>& predicate) {
  std::vector<Ref<T>> result;
  Status s = ForEachLatest<T>(db, [&](const Ref<T>& ref, const T& value) {
    if (predicate(value)) result.push_back(ref);
    return true;
  });
  if (!s.ok()) return s;
  return result;
}

/// All *versions* (across an object's whole history) satisfying a predicate
/// — temporal queries like "every state where balance < 0".
template <Persistable T>
StatusOr<std::vector<VersionPtr<T>>> SelectVersions(
    Database& db, ObjectId oid, const std::function<bool(const T&)>& predicate) {
  std::vector<VersionPtr<T>> result;
  auto versions = db.VersionsOf(oid);
  if (!versions.ok()) return versions.status();
  for (VersionId vid : *versions) {
    auto value = db.Get<T>(vid);
    if (!value.ok()) return value.status();
    if (predicate(*value)) result.push_back(VersionPtr<T>(&db, vid));
  }
  return result;
}

/// Every version of every object of type T satisfying `predicate` — the
/// whole-extent temporal query ("all states of any account that were ever
/// overdrawn").
template <Persistable T>
StatusOr<std::vector<VersionPtr<T>>> SelectAllVersions(
    Database& db, const std::function<bool(const T&)>& predicate) {
  auto type_id = db.TypeId<T>();
  if (!type_id.ok()) return type_id.status();
  std::vector<VersionPtr<T>> result;
  ClusterCursor cluster(db, *type_id);
  for (; cluster.Valid(); cluster.Next()) {
    auto versions = SelectVersions<T>(db, cluster.oid(), predicate);
    if (!versions.ok()) return versions.status();
    result.insert(result.end(), versions->begin(), versions->end());
  }
  ODE_RETURN_IF_ERROR(cluster.status());
  return result;
}

/// Count of objects of type T whose latest version satisfies `predicate`.
template <Persistable T>
StatusOr<uint64_t> CountWhere(Database& db,
                              const std::function<bool(const T&)>& predicate) {
  uint64_t count = 0;
  Status s = ForEachLatest<T>(db, [&](const Ref<T>&, const T& value) {
    if (predicate(value)) ++count;
    return true;
  });
  if (!s.ok()) return s;
  return count;
}

}  // namespace ode

#endif  // ODE_CORE_QUERY_H_
