#include "core/payload_cache.h"

namespace ode {

// ---------------------------------------------------------------------------
// VersionPayloadCache
// ---------------------------------------------------------------------------

bool VersionPayloadCache::Lookup(const VersionId& vid, std::string* out) {
  if (!enabled()) return false;
  auto it = map_.find(vid);
  if (it == map_.end()) {
    ++stats_.misses;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  *out = it->second->payload;
  ++stats_.hits;
  return true;
}

void VersionPayloadCache::Insert(const VersionId& vid,
                                 const std::string& payload) {
  if (!enabled()) return;
  const uint64_t charge = payload.size() + kEntryOverhead;
  if (charge > byte_budget_) return;  // Would evict everything else.
  auto it = map_.find(vid);
  if (it != map_.end()) {
    bytes_in_use_ -= Charge(*it->second);
    it->second->payload = payload;
    bytes_in_use_ += Charge(*it->second);
    lru_.splice(lru_.begin(), lru_, it->second);
    if (in_epoch_ && !it->second->uncommitted) {
      it->second->uncommitted = true;
      epoch_keys_.push_back(vid);
    }
  } else {
    lru_.push_front(Entry{vid, payload, in_epoch_});
    map_.emplace(vid, lru_.begin());
    bytes_in_use_ += charge;
    if (in_epoch_) epoch_keys_.push_back(vid);
  }
  EvictToBudget();
}

void VersionPayloadCache::RemoveEntry(EntryList::iterator it) {
  bytes_in_use_ -= Charge(*it);
  map_.erase(it->vid);
  lru_.erase(it);
}

void VersionPayloadCache::Erase(const VersionId& vid) {
  auto it = map_.find(vid);
  if (it == map_.end()) return;
  RemoveEntry(it->second);
  ++stats_.invalidations;
}

void VersionPayloadCache::EraseObject(const ObjectId& oid) {
  for (auto it = lru_.begin(); it != lru_.end();) {
    auto next = std::next(it);
    if (it->vid.oid == oid) {
      RemoveEntry(it);
      ++stats_.invalidations;
    }
    it = next;
  }
}

void VersionPayloadCache::Clear() {
  lru_.clear();
  map_.clear();
  epoch_keys_.clear();
  bytes_in_use_ = 0;
}

void VersionPayloadCache::EvictToBudget() {
  while (bytes_in_use_ > byte_budget_ && !lru_.empty()) {
    RemoveEntry(std::prev(lru_.end()));
    ++stats_.evictions;
  }
}

void VersionPayloadCache::BeginEpoch() {
  in_epoch_ = true;
  epoch_keys_.clear();
}

void VersionPayloadCache::CommitEpoch() {
  for (const VersionId& vid : epoch_keys_) {
    auto it = map_.find(vid);
    if (it != map_.end()) it->second->uncommitted = false;
  }
  epoch_keys_.clear();
  in_epoch_ = false;
}

void VersionPayloadCache::AbortEpoch() {
  for (const VersionId& vid : epoch_keys_) {
    auto it = map_.find(vid);
    if (it != map_.end() && it->second->uncommitted) {
      RemoveEntry(it->second);
      ++stats_.epoch_discards;
    }
  }
  epoch_keys_.clear();
  in_epoch_ = false;
}

// ---------------------------------------------------------------------------
// LatestVersionCache
// ---------------------------------------------------------------------------

bool LatestVersionCache::Lookup(const ObjectId& oid, VersionNum* out) {
  if (!enabled()) return false;
  auto it = map_.find(oid);
  if (it == map_.end()) {
    ++stats_.misses;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  *out = it->second->latest;
  ++stats_.hits;
  return true;
}

void LatestVersionCache::Insert(const ObjectId& oid, VersionNum latest) {
  if (!enabled()) return;
  auto it = map_.find(oid);
  if (it != map_.end()) {
    it->second->latest = latest;
    lru_.splice(lru_.begin(), lru_, it->second);
    if (in_epoch_ && !it->second->uncommitted) {
      it->second->uncommitted = true;
      epoch_keys_.push_back(oid);
    }
  } else {
    lru_.push_front(Entry{oid, latest, in_epoch_});
    map_.emplace(oid, lru_.begin());
    if (in_epoch_) epoch_keys_.push_back(oid);
    while (map_.size() > max_entries_ && !lru_.empty()) {
      RemoveEntry(std::prev(lru_.end()));
      ++stats_.evictions;
    }
  }
}

void LatestVersionCache::RemoveEntry(EntryList::iterator it) {
  map_.erase(it->oid);
  lru_.erase(it);
}

void LatestVersionCache::Erase(const ObjectId& oid) {
  auto it = map_.find(oid);
  if (it == map_.end()) return;
  RemoveEntry(it->second);
  ++stats_.invalidations;
}

void LatestVersionCache::Clear() {
  lru_.clear();
  map_.clear();
  epoch_keys_.clear();
}

void LatestVersionCache::BeginEpoch() {
  in_epoch_ = true;
  epoch_keys_.clear();
}

void LatestVersionCache::CommitEpoch() {
  for (const ObjectId& oid : epoch_keys_) {
    auto it = map_.find(oid);
    if (it != map_.end()) it->second->uncommitted = false;
  }
  epoch_keys_.clear();
  in_epoch_ = false;
}

void LatestVersionCache::AbortEpoch() {
  for (const ObjectId& oid : epoch_keys_) {
    auto it = map_.find(oid);
    if (it != map_.end() && it->second->uncommitted) {
      RemoveEntry(it->second);
      ++stats_.epoch_discards;
    }
  }
  epoch_keys_.clear();
  in_epoch_ = false;
}

}  // namespace ode
