#include "core/payload_cache.h"

namespace ode {

namespace {

/// Largest power of two <= 16 keeping at least `min_per_shard` of `budget`
/// in every shard.  An explicit request is rounded down to a power of two so
/// shard selection can mask instead of divide.
size_t PickShardCount(uint64_t budget, uint64_t min_per_shard,
                      size_t requested) {
  if (requested != 0) {
    size_t p = 1;
    while (p * 2 <= requested) p *= 2;
    return p;
  }
  size_t shards = 1;
  while (shards < 16 && budget / (shards * 2) >= min_per_shard) shards *= 2;
  return shards;
}

}  // namespace

// ---------------------------------------------------------------------------
// VersionPayloadCache
// ---------------------------------------------------------------------------

VersionPayloadCache::VersionPayloadCache(uint64_t byte_budget, size_t shards)
    : byte_budget_(byte_budget) {
  const size_t n = PickShardCount(byte_budget, 256u << 10, shards);
  shard_budget_ = byte_budget_ / n;
  shard_mask_ = n - 1;
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
}

VersionPayloadCache::~VersionPayloadCache() = default;

VersionPayloadCache::Shard& VersionPayloadCache::ShardFor(
    const VersionId& vid) {
  // Shard counts are powers of two, so selection is a mask (an integer
  // divide here is measurable on the cache-hit dereference path).
  return *shards_[std::hash<VersionId>()(vid) & shard_mask_];
}

bool VersionPayloadCache::Lookup(const VersionId& vid, std::string* out) {
  if (!enabled()) return false;
  Shard& shard = ShardFor(vid);
  MutexLock lock(shard.mu);
  auto it = shard.map.find(vid);
  if (it == shard.map.end()) {
    ++shard.stats.misses;
    return false;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  *out = it->second->payload;
  ++shard.stats.hits;
  return true;
}

void VersionPayloadCache::Insert(const VersionId& vid,
                                 const std::string& payload) {
  if (!enabled()) return;
  const uint64_t charge = payload.size() + kEntryOverhead;
  if (charge > shard_budget_) return;  // Would evict everything else.
  Shard& shard = ShardFor(vid);
  MutexLock lock(shard.mu);
  auto it = shard.map.find(vid);
  if (it != shard.map.end()) {
    shard.bytes_in_use -= Charge(*it->second);
    it->second->payload = payload;
    shard.bytes_in_use += Charge(*it->second);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    if (shard.in_epoch && !it->second->uncommitted) {
      it->second->uncommitted = true;
      shard.epoch_keys.push_back(vid);
    }
  } else {
    shard.lru.push_front(Entry{vid, payload, shard.in_epoch});
    shard.map.emplace(vid, shard.lru.begin());
    shard.bytes_in_use += charge;
    if (shard.in_epoch) shard.epoch_keys.push_back(vid);
  }
  EvictToBudget(shard);
}

void VersionPayloadCache::RemoveEntry(Shard& shard, EntryList::iterator it) {
  shard.bytes_in_use -= Charge(*it);
  shard.map.erase(it->vid);
  shard.lru.erase(it);
}

void VersionPayloadCache::Erase(const VersionId& vid) {
  Shard& shard = ShardFor(vid);
  MutexLock lock(shard.mu);
  auto it = shard.map.find(vid);
  if (it == shard.map.end()) return;
  RemoveEntry(shard, it->second);
  ++shard.stats.invalidations;
}

void VersionPayloadCache::EraseObject(const ObjectId& oid) {
  // An object's versions hash across shards; scan them all.
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    MutexLock lock(shard.mu);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      auto next = std::next(it);
      if (it->vid.oid == oid) {
        RemoveEntry(shard, it);
        ++shard.stats.invalidations;
      }
      it = next;
    }
  }
}

void VersionPayloadCache::Clear() {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    MutexLock lock(shard.mu);
    shard.lru.clear();
    shard.map.clear();
    shard.epoch_keys.clear();
    shard.bytes_in_use = 0;
  }
}

void VersionPayloadCache::EvictToBudget(Shard& shard) {
  while (shard.bytes_in_use > shard_budget_ && !shard.lru.empty()) {
    RemoveEntry(shard, std::prev(shard.lru.end()));
    ++shard.stats.evictions;
  }
}

void VersionPayloadCache::BeginEpoch() {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    MutexLock lock(shard.mu);
    shard.in_epoch = true;
    shard.epoch_keys.clear();
  }
}

void VersionPayloadCache::CommitEpoch() {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    MutexLock lock(shard.mu);
    for (const VersionId& vid : shard.epoch_keys) {
      auto it = shard.map.find(vid);
      if (it != shard.map.end()) it->second->uncommitted = false;
    }
    shard.epoch_keys.clear();
    shard.in_epoch = false;
  }
}

void VersionPayloadCache::AbortEpoch() {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    MutexLock lock(shard.mu);
    for (const VersionId& vid : shard.epoch_keys) {
      auto it = shard.map.find(vid);
      if (it != shard.map.end() && it->second->uncommitted) {
        RemoveEntry(shard, it->second);
        ++shard.stats.epoch_discards;
      }
    }
    shard.epoch_keys.clear();
    shard.in_epoch = false;
  }
}

PayloadCacheStats VersionPayloadCache::stats() const {
  // Counters live per shard (bumped under that shard's mutex, so the hot
  // path pays no atomic RMW); summing under each lock yields a snapshot at
  // least as fresh as any operation that completed before this call.
  PayloadCacheStats out;
  for (const auto& shard_ptr : shards_) {
    MutexLock lock(shard_ptr->mu);
    const PayloadCacheStats& s = shard_ptr->stats;
    out.hits += s.hits;
    out.misses += s.misses;
    out.evictions += s.evictions;
    out.invalidations += s.invalidations;
    out.epoch_discards += s.epoch_discards;
  }
  return out;
}

uint64_t VersionPayloadCache::bytes_in_use() const {
  uint64_t total = 0;
  for (const auto& shard_ptr : shards_) {
    MutexLock lock(shard_ptr->mu);
    total += shard_ptr->bytes_in_use;
  }
  return total;
}

size_t VersionPayloadCache::entries() const {
  size_t total = 0;
  for (const auto& shard_ptr : shards_) {
    MutexLock lock(shard_ptr->mu);
    total += shard_ptr->map.size();
  }
  return total;
}

// ---------------------------------------------------------------------------
// LatestVersionCache
// ---------------------------------------------------------------------------

LatestVersionCache::LatestVersionCache(size_t max_entries, size_t shards)
    : max_entries_(max_entries) {
  const size_t n = PickShardCount(max_entries, 4096, shards);
  shard_max_entries_ = max_entries_ / n;
  shard_mask_ = n - 1;
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
}

LatestVersionCache::~LatestVersionCache() = default;

LatestVersionCache::Shard& LatestVersionCache::ShardFor(const ObjectId& oid) {
  // Mask, not modulo: shard counts are powers of two (see PickShardCount).
  return *shards_[std::hash<ObjectId>()(oid) & shard_mask_];
}

bool LatestVersionCache::Lookup(const ObjectId& oid, VersionNum* out) {
  if (!enabled()) return false;
  Shard& shard = ShardFor(oid);
  MutexLock lock(shard.mu);
  auto it = shard.map.find(oid);
  if (it == shard.map.end()) {
    ++shard.stats.misses;
    return false;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  *out = it->second->latest;
  ++shard.stats.hits;
  return true;
}

void LatestVersionCache::Insert(const ObjectId& oid, VersionNum latest) {
  if (!enabled()) return;
  Shard& shard = ShardFor(oid);
  MutexLock lock(shard.mu);
  auto it = shard.map.find(oid);
  if (it != shard.map.end()) {
    it->second->latest = latest;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    if (shard.in_epoch && !it->second->uncommitted) {
      it->second->uncommitted = true;
      shard.epoch_keys.push_back(oid);
    }
  } else {
    shard.lru.push_front(Entry{oid, latest, shard.in_epoch});
    shard.map.emplace(oid, shard.lru.begin());
    if (shard.in_epoch) shard.epoch_keys.push_back(oid);
    while (shard.map.size() > shard_max_entries_ && !shard.lru.empty()) {
      RemoveEntry(shard, std::prev(shard.lru.end()));
      ++shard.stats.evictions;
    }
  }
}

void LatestVersionCache::RemoveEntry(Shard& shard, EntryList::iterator it) {
  shard.map.erase(it->oid);
  shard.lru.erase(it);
}

void LatestVersionCache::Erase(const ObjectId& oid) {
  Shard& shard = ShardFor(oid);
  MutexLock lock(shard.mu);
  auto it = shard.map.find(oid);
  if (it == shard.map.end()) return;
  RemoveEntry(shard, it->second);
  ++shard.stats.invalidations;
}

void LatestVersionCache::Clear() {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    MutexLock lock(shard.mu);
    shard.lru.clear();
    shard.map.clear();
    shard.epoch_keys.clear();
  }
}

void LatestVersionCache::BeginEpoch() {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    MutexLock lock(shard.mu);
    shard.in_epoch = true;
    shard.epoch_keys.clear();
  }
}

void LatestVersionCache::CommitEpoch() {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    MutexLock lock(shard.mu);
    for (const ObjectId& oid : shard.epoch_keys) {
      auto it = shard.map.find(oid);
      if (it != shard.map.end()) it->second->uncommitted = false;
    }
    shard.epoch_keys.clear();
    shard.in_epoch = false;
  }
}

void LatestVersionCache::AbortEpoch() {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    MutexLock lock(shard.mu);
    for (const ObjectId& oid : shard.epoch_keys) {
      auto it = shard.map.find(oid);
      if (it != shard.map.end() && it->second->uncommitted) {
        RemoveEntry(shard, it->second);
        ++shard.stats.epoch_discards;
      }
    }
    shard.epoch_keys.clear();
    shard.in_epoch = false;
  }
}

PayloadCacheStats LatestVersionCache::stats() const {
  // Counters live per shard (bumped under that shard's mutex, so the hot
  // path pays no atomic RMW); summing under each lock yields a snapshot at
  // least as fresh as any operation that completed before this call.
  PayloadCacheStats out;
  for (const auto& shard_ptr : shards_) {
    MutexLock lock(shard_ptr->mu);
    const PayloadCacheStats& s = shard_ptr->stats;
    out.hits += s.hits;
    out.misses += s.misses;
    out.evictions += s.evictions;
    out.invalidations += s.invalidations;
    out.epoch_discards += s.epoch_discards;
  }
  return out;
}

size_t LatestVersionCache::entries() const {
  size_t total = 0;
  for (const auto& shard_ptr : shards_) {
    MutexLock lock(shard_ptr->mu);
    total += shard_ptr->map.size();
  }
  return total;
}

}  // namespace ode
