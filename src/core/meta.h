#ifndef ODE_CORE_META_H_
#define ODE_CORE_META_H_

#include <cstdint>
#include <string>

#include "core/ids.h"
#include "storage/heap_file.h"
#include "util/byte_buffer.h"
#include "util/hash128.h"
#include "util/slice.h"
#include "util/status.h"

namespace ode {

// ---------------------------------------------------------------------------
// Persistent layout of the versioning catalog
// ---------------------------------------------------------------------------
//
// Four B+trees, addressed by superblock root slots:
//   kObjectsTree:  key = BE64(oid)               -> ObjectHeader
//   kVersionsTree: key = BE64(oid) . BE32(vnum)  -> VersionMeta
//   kClustersTree: key = BE32(type) . BE64(oid)  -> "" (membership only)
//   kNamesTree:    key = type name               -> BE32(type id)
//
// Big-endian keys make memcmp order equal numeric order, so:
//  - all versions of an object are contiguous in kVersionsTree, in version-
//    number order, which IS temporal order (version numbers are assigned in
//    creation order and never reused) — Tprevious/Tnext are one-seek
//    operations;
//  - a cluster (Ode's per-type extent) is one contiguous key range.

inline constexpr int kObjectsTreeSlot = 0;
inline constexpr int kVersionsTreeSlot = 1;
inline constexpr int kClustersTreeSlot = 2;
inline constexpr int kNamesTreeSlot = 3;
/// Secondary-index entries (see core/index.h): all indexes share one tree,
/// with per-index id prefixes.
inline constexpr int kIndexesTreeSlot = 4;
// Slot 5 is the content-addressed payload index
// (storage/payload_store.h: kPayloadsTreeSlot); slot 6 is free.
/// Scratch slot for incremental vacuum: while a catalog tree is being
/// shadow-rebuilt, the half-built replacement is rooted here so a crash
/// leaves it discoverable (Database::Open frees any leftover and zeroes the
/// slot).  Never holds live data across a clean sequence of operations.
inline constexpr int kVacuumScratchSlot = 7;

/// Superblock counter indexes used by the core layer.
inline constexpr int kNextOidCounter = 0;
inline constexpr int kClockCounter = 1;
inline constexpr int kNextTypeIdCounter = 2;
inline constexpr int kNextIndexIdCounter = 3;

/// How a version's payload is physically stored.
enum class PayloadKind : uint8_t {
  kFull = 0,   ///< The heap record holds the complete payload.
  kDelta = 1,  ///< The heap record holds a delta against `delta_base`.
};

/// Per-object bookkeeping (one per persistent object).
struct ObjectHeader {
  uint32_t type_id = 0;
  VersionNum latest = kNoVersion;     ///< Temporally newest live version.
  VersionNum next_vnum = kFirstVersion;  ///< Next number to assign.
  uint32_t version_count = 0;
  uint64_t created_ts = 0;

  std::string Encode() const;
  static Status Decode(const Slice& bytes, ObjectHeader* out);
};

/// Per-version bookkeeping.
struct VersionMeta {
  VersionNum vnum = kNoVersion;
  /// Version this one was derived from (the paper's derived-from edge);
  /// kNoVersion for the root version.  Kept valid under deletion by
  /// re-parenting children to their grandparent (§4.4).
  VersionNum derived_from = kNoVersion;
  uint64_t created_ts = 0;
  RecordId payload;
  PayloadKind kind = PayloadKind::kFull;
  /// Base version of the delta (kDelta only).  Always an older version.
  VersionNum delta_base = kNoVersion;
  /// Number of delta applications needed to materialize (0 for kFull);
  /// bounded by the keyframe interval.
  uint32_t delta_chain_len = 0;
  /// Size of the materialized payload in bytes.
  uint64_t logical_size = 0;
  /// Content hash of the STORED blob (the delta bytes for kDelta, the full
  /// payload for kFull) when it lives in the content-addressed payload
  /// store; the zero hash when the blob is a plain (unshared) heap record.
  /// Routes release: non-zero -> PayloadStore::Unref, zero -> heap Delete.
  Hash128 content_hash;
  /// Position in the skip-delta numbering: 0 for a keyframe (kFull), else
  /// the derivation distance to the nearest keyframe at write time.  The
  /// skip topology deltas position p against the ancestor at p & (p - 1),
  /// so materialization applies at most popcount(p) deltas.  Stale values
  /// (after a base was rematerialized to kFull) only cost optimality; base
  /// selection walks delta_base links and stops at any keyframe.
  uint32_t delta_pos = 0;

  std::string Encode() const;
  static Status Decode(const Slice& bytes, VersionMeta* out);
};

// Key constructors (big-endian for memcmp == numeric order).
std::string ObjectKey(ObjectId oid);
std::string VersionKey(VersionId vid);
/// Prefix covering every version of `oid` (for range scans).
std::string VersionKeyPrefix(ObjectId oid);
std::string ClusterKey(uint32_t type_id, ObjectId oid);
std::string ClusterKeyPrefix(uint32_t type_id);

/// Inverse of VersionKey: decodes (oid, vnum) from a versions-tree key.
Status ParseVersionKey(const Slice& key, VersionId* vid);
/// Inverse of ClusterKey.
Status ParseClusterKey(const Slice& key, uint32_t* type_id, ObjectId* oid);
/// Inverse of ObjectKey.
Status ParseObjectKey(const Slice& key, ObjectId* oid);

/// Names-tree value codec: BE32 type id.
std::string EncodeTypeId(uint32_t id);
Status DecodeTypeId(const Slice& bytes, uint32_t* id);

}  // namespace ode

#endif  // ODE_CORE_META_H_
