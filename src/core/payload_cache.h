#ifndef ODE_CORE_PAYLOAD_CACHE_H_
#define ODE_CORE_PAYLOAD_CACHE_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/ids.h"

namespace ode {

// ---------------------------------------------------------------------------
// Read-path caches above the storage engine
// ---------------------------------------------------------------------------
//
// Versions are immutable by construction (updates rewrite a version's payload
// explicitly; nothing changes behind the catalog's back), which makes fully
// materialized payloads ideal cache fodder: a delta chain needs to be applied
// at most once per cache residency.  Two caches exploit this:
//
//  - VersionPayloadCache: VersionId -> materialized payload bytes, bounded by
//    a byte budget (LRU).  Consulted and populated by Database::Materialize.
//  - LatestVersionCache: ObjectId -> latest VersionNum, bounded by an entry
//    budget (LRU).  Lets a generic dereference skip the header B+tree lookup.
//
// Transactional coherence (single-writer, matching the engine):
//  - Mutators invalidate affected entries IMMEDIATELY.  This is safe under
//    both commit and abort: a missing entry only costs a re-materialization,
//    which reads whatever state the engine currently exposes.
//  - Entries installed while a transaction is open ("epoch") are tagged
//    uncommitted, because they may capture in-transaction state.  CommitEpoch
//    promotes them; AbortEpoch discards them.  Entries installed outside any
//    epoch are committed immediately.
//
// VersionIds are never reused (oids and vnums are monotonic), so a stale key
// can never be resurrected by an unrelated new version.

/// Cumulative counters for one cache instance (session-local, not persisted).
struct PayloadCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;       ///< Entries dropped by the budget.
  uint64_t invalidations = 0;   ///< Entries dropped by Erase/EraseObject.
  uint64_t epoch_discards = 0;  ///< Uncommitted entries dropped by AbortEpoch.
};

/// Byte-budgeted LRU of fully materialized version payloads.
///
/// A budget of 0 disables the cache entirely (every probe misses without
/// touching the stats, every insert is a no-op).
class VersionPayloadCache {
 public:
  /// Fixed per-entry accounting overhead (key, list node, map slot).
  static constexpr uint64_t kEntryOverhead = 64;

  explicit VersionPayloadCache(uint64_t byte_budget)
      : byte_budget_(byte_budget) {}

  VersionPayloadCache(const VersionPayloadCache&) = delete;
  VersionPayloadCache& operator=(const VersionPayloadCache&) = delete;

  bool enabled() const { return byte_budget_ > 0; }

  /// Copies the cached payload into `*out` and refreshes LRU position.
  /// Returns false (and leaves `*out` alone) on a miss.
  bool Lookup(const VersionId& vid, std::string* out);

  /// Installs (or refreshes) the payload for `vid`.  Entries larger than the
  /// whole budget are not admitted.  Inside an epoch the entry is tagged
  /// uncommitted.
  void Insert(const VersionId& vid, const std::string& payload);

  /// Drops the entry for `vid` if present.
  void Erase(const VersionId& vid);

  /// Drops every entry belonging to `oid` (object deletion).
  void EraseObject(const ObjectId& oid);

  /// Drops everything, including epoch bookkeeping.
  void Clear();

  // Epoch (transaction) protocol -- see file comment.
  void BeginEpoch();
  void CommitEpoch();
  void AbortEpoch();

  const PayloadCacheStats& stats() const { return stats_; }
  uint64_t bytes_in_use() const { return bytes_in_use_; }
  uint64_t byte_budget() const { return byte_budget_; }
  size_t entries() const { return map_.size(); }

 private:
  struct Entry {
    VersionId vid;
    std::string payload;
    bool uncommitted = false;
  };
  using EntryList = std::list<Entry>;

  static uint64_t Charge(const Entry& e) {
    return e.payload.size() + kEntryOverhead;
  }
  void EvictToBudget();
  void RemoveEntry(EntryList::iterator it);

  uint64_t byte_budget_;
  uint64_t bytes_in_use_ = 0;
  EntryList lru_;  // Front = most recently used.
  std::unordered_map<VersionId, EntryList::iterator> map_;
  bool in_epoch_ = false;
  std::vector<VersionId> epoch_keys_;
  PayloadCacheStats stats_;
};

/// Entry-budgeted LRU mapping an object id to its latest live version number
/// (the generic-reference resolution the paper's "object id denotes the
/// latest version" semantics requires on every late-bound dereference).
///
/// Same epoch protocol as VersionPayloadCache.  Unlike the payload cache,
/// mutators keep this one up to date precisely (the new latest is always in
/// hand when it changes), so write-heavy workloads stay warm too.
class LatestVersionCache {
 public:
  explicit LatestVersionCache(size_t max_entries)
      : max_entries_(max_entries) {}

  LatestVersionCache(const LatestVersionCache&) = delete;
  LatestVersionCache& operator=(const LatestVersionCache&) = delete;

  bool enabled() const { return max_entries_ > 0; }

  bool Lookup(const ObjectId& oid, VersionNum* out);
  void Insert(const ObjectId& oid, VersionNum latest);
  void Erase(const ObjectId& oid);
  void Clear();

  void BeginEpoch();
  void CommitEpoch();
  void AbortEpoch();

  const PayloadCacheStats& stats() const { return stats_; }
  size_t entries() const { return map_.size(); }
  size_t max_entries() const { return max_entries_; }

 private:
  struct Entry {
    ObjectId oid;
    VersionNum latest = kNoVersion;
    bool uncommitted = false;
  };
  using EntryList = std::list<Entry>;

  void RemoveEntry(EntryList::iterator it);

  size_t max_entries_;
  EntryList lru_;  // Front = most recently used.
  std::unordered_map<ObjectId, EntryList::iterator> map_;
  bool in_epoch_ = false;
  std::vector<ObjectId> epoch_keys_;
  PayloadCacheStats stats_;
};

}  // namespace ode

#endif  // ODE_CORE_PAYLOAD_CACHE_H_
