#ifndef ODE_CORE_PAYLOAD_CACHE_H_
#define ODE_CORE_PAYLOAD_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/ids.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace ode {

// ---------------------------------------------------------------------------
// Read-path caches above the storage engine
// ---------------------------------------------------------------------------
//
// Versions are immutable by construction (updates rewrite a version's payload
// explicitly; nothing changes behind the catalog's back), which makes fully
// materialized payloads ideal cache fodder: a delta chain needs to be applied
// at most once per cache residency.  Two caches exploit this:
//
//  - VersionPayloadCache: VersionId -> materialized payload bytes, bounded by
//    a byte budget (LRU).  Consulted and populated by Database::Materialize.
//  - LatestVersionCache: ObjectId -> latest VersionNum, bounded by an entry
//    budget (LRU).  Lets a generic dereference skip the header B+tree lookup.
//
// Transactional coherence (single-writer, matching the engine):
//  - Mutators invalidate affected entries IMMEDIATELY.  This is safe under
//    both commit and abort: a missing entry only costs a re-materialization,
//    which reads whatever state the engine currently exposes.
//  - Entries installed while a transaction is open ("epoch") are tagged
//    uncommitted, because they may capture in-transaction state.  CommitEpoch
//    promotes them; AbortEpoch discards them.  Entries installed outside any
//    epoch are committed immediately.
//
// VersionIds are never reused (oids and vnums are monotonic), so a stale key
// can never be resurrected by an unrelated new version.
//
// Thread safety (single-writer / multi-reader): both caches are internally
// lock-striped into shards, each with its own mutex, LRU list and slice of
// the budget, so concurrent Lookup/Insert from reader threads only contend
// when they hash to the same shard.  Counters are kept per shard under the
// shard mutex (no atomic RMW on the hot path); stats() sums them into a
// snapshot.  Small budgets collapse to a single shard, preserving the exact
// global-LRU eviction order that unit tests rely on.

/// Cumulative counters for one cache instance (session-local, not persisted).
/// Returned by value as a snapshot summed from the cache's per-shard counters.
struct PayloadCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;       ///< Entries dropped by the budget.
  uint64_t invalidations = 0;   ///< Entries dropped by Erase/EraseObject.
  uint64_t epoch_discards = 0;  ///< Uncommitted entries dropped by AbortEpoch.
};

/// Byte-budgeted, lock-striped LRU of fully materialized version payloads.
///
/// A budget of 0 disables the cache entirely (every probe misses without
/// touching the stats, every insert is a no-op).
class VersionPayloadCache {
 public:
  /// Fixed per-entry accounting overhead (key, list node, map slot).
  static constexpr uint64_t kEntryOverhead = 64;

  /// `shards` = 0 picks automatically: the largest power of two <= 16 that
  /// keeps at least 256 KiB of budget per shard (so tiny test budgets get
  /// exactly one shard and classic LRU semantics).  Explicit counts are
  /// rounded down to a power of two.
  explicit VersionPayloadCache(uint64_t byte_budget, size_t shards = 0);
  ~VersionPayloadCache();

  VersionPayloadCache(const VersionPayloadCache&) = delete;
  VersionPayloadCache& operator=(const VersionPayloadCache&) = delete;

  bool enabled() const { return byte_budget_ > 0; }

  /// Copies the cached payload into `*out` and refreshes LRU position.
  /// Returns false (and leaves `*out` alone) on a miss.  Thread-safe.
  bool Lookup(const VersionId& vid, std::string* out);

  /// Installs (or refreshes) the payload for `vid`.  Entries larger than a
  /// shard's budget are not admitted.  Inside an epoch the entry is tagged
  /// uncommitted.  Thread-safe.
  void Insert(const VersionId& vid, const std::string& payload);

  /// Drops the entry for `vid` if present.
  void Erase(const VersionId& vid);

  /// Drops every entry belonging to `oid` (object deletion).
  void EraseObject(const ObjectId& oid);

  /// Drops everything, including epoch bookkeeping.
  void Clear();

  // Epoch (transaction) protocol -- see file comment.  Writer-side.
  void BeginEpoch();
  void CommitEpoch();
  void AbortEpoch();

  /// Coherent snapshot of the cumulative counters.  Thread-safe.
  PayloadCacheStats stats() const;
  uint64_t bytes_in_use() const;
  uint64_t byte_budget() const { return byte_budget_; }
  size_t entries() const;
  size_t shard_count() const { return shards_.size(); }

 private:
  struct Entry {
    VersionId vid;
    std::string payload;
    bool uncommitted = false;
  };
  using EntryList = std::list<Entry>;

  /// One latch-partition: a slice of the key space with its own LRU, budget
  /// slice and epoch bookkeeping, all guarded by one mutex.
  struct Shard {
    Mutex mu;
    uint64_t bytes_in_use ODE_GUARDED_BY(mu) = 0;
    EntryList lru ODE_GUARDED_BY(mu);  // Front = most recently used.
    std::unordered_map<VersionId, EntryList::iterator> map ODE_GUARDED_BY(mu);
    bool in_epoch ODE_GUARDED_BY(mu) = false;
    std::vector<VersionId> epoch_keys ODE_GUARDED_BY(mu);
    PayloadCacheStats stats ODE_GUARDED_BY(mu);  // Summed by stats().
  };

  static uint64_t Charge(const Entry& e) {
    return e.payload.size() + kEntryOverhead;
  }
  Shard& ShardFor(const VersionId& vid);
  void EvictToBudget(Shard& shard) ODE_REQUIRES(shard.mu);
  void RemoveEntry(Shard& shard, EntryList::iterator it)
      ODE_REQUIRES(shard.mu);

  uint64_t byte_budget_;
  uint64_t shard_budget_ = 0;  // byte_budget_ / shard count.
  size_t shard_mask_ = 0;      // shard count - 1 (count is a power of two).
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Entry-budgeted, lock-striped LRU mapping an object id to its latest live
/// version number (the generic-reference resolution the paper's "object id
/// denotes the latest version" semantics requires on every late-bound
/// dereference).
///
/// Same epoch protocol as VersionPayloadCache.  Unlike the payload cache,
/// mutators keep this one up to date precisely (the new latest is always in
/// hand when it changes), so write-heavy workloads stay warm too.
class LatestVersionCache {
 public:
  /// `shards` = 0 picks automatically: the largest power of two <= 16 that
  /// keeps at least 4096 entries per shard.  Explicit counts are rounded
  /// down to a power of two.
  explicit LatestVersionCache(size_t max_entries, size_t shards = 0);
  ~LatestVersionCache();

  LatestVersionCache(const LatestVersionCache&) = delete;
  LatestVersionCache& operator=(const LatestVersionCache&) = delete;

  bool enabled() const { return max_entries_ > 0; }

  bool Lookup(const ObjectId& oid, VersionNum* out);
  void Insert(const ObjectId& oid, VersionNum latest);
  void Erase(const ObjectId& oid);
  void Clear();

  void BeginEpoch();
  void CommitEpoch();
  void AbortEpoch();

  /// Coherent snapshot of the cumulative counters.  Thread-safe.
  PayloadCacheStats stats() const;
  size_t entries() const;
  size_t max_entries() const { return max_entries_; }
  size_t shard_count() const { return shards_.size(); }

 private:
  struct Entry {
    ObjectId oid;
    VersionNum latest = kNoVersion;
    bool uncommitted = false;
  };
  using EntryList = std::list<Entry>;

  /// One latch-partition; see VersionPayloadCache::Shard.
  struct Shard {
    Mutex mu;
    EntryList lru ODE_GUARDED_BY(mu);  // Front = most recently used.
    std::unordered_map<ObjectId, EntryList::iterator> map ODE_GUARDED_BY(mu);
    bool in_epoch ODE_GUARDED_BY(mu) = false;
    std::vector<ObjectId> epoch_keys ODE_GUARDED_BY(mu);
    PayloadCacheStats stats ODE_GUARDED_BY(mu);  // Summed by stats().
  };

  Shard& ShardFor(const ObjectId& oid);
  void RemoveEntry(Shard& shard, EntryList::iterator it)
      ODE_REQUIRES(shard.mu);

  size_t max_entries_;
  size_t shard_max_entries_ = 0;  // max_entries_ / shard count.
  size_t shard_mask_ = 0;         // shard count - 1 (count is a power of two).
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace ode

#endif  // ODE_CORE_PAYLOAD_CACHE_H_
