#ifndef ODE_CORE_CHECK_H_
#define ODE_CORE_CHECK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/database.h"
#include "util/statusor.h"

namespace ode {

/// Result of a full-database consistency check.
struct CheckReport {
  uint64_t objects_checked = 0;
  uint64_t versions_checked = 0;
  uint64_t payload_bytes = 0;
  /// Content-addressed payload store audit (pass 3).
  uint64_t payload_blobs_checked = 0;  ///< Index entries examined.
  uint64_t payload_refs_checked = 0;   ///< Version references tallied.
  /// Human-readable invariant violations; empty means the database is
  /// consistent.
  std::vector<std::string> errors;

  bool ok() const { return errors.empty(); }
};

/// Verifies every versioning invariant the model guarantees, using only the
/// public Database API:
///
///  - per object: version_count matches the live version entries; `latest`
///    exists and is the maximal version number; next_vnum exceeds every
///    existing number; the object appears in exactly its type's cluster;
///  - per version: the key matches the embedded vnum; derived_from refers
///    to a live version of the same object (or none); delta payloads name a
///    live, older base with a consistent chain length; every payload
///    materializes to its recorded logical size;
///  - per cluster entry: the member object exists and has that type;
///  - per content-addressed blob: its refcount equals the number of version
///    metas naming its hash, the record id matches, and there is neither an
///    orphan blob (no referencing version) nor a dangling reference (version
///    names a hash absent from the store).
///
/// Used after crash-recovery and randomized-workload tests, and available
/// to applications as a fsck-style facility.
StatusOr<CheckReport> CheckDatabase(Database& db);

}  // namespace ode

#endif  // ODE_CORE_CHECK_H_
