#include "core/diagnostics.h"

#include <algorithm>
#include <cstdio>

#include "core/database.h"
#include "storage/env.h"
#include "util/event_log.h"
#include "util/json.h"
#include "util/logging.h"

namespace ode {

std::string DiagnosticsFileName(uint64_t seq) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "DIAGNOSTICS-%06llu.json",
                static_cast<unsigned long long>(seq));
  return buf;
}

bool ParseDiagnosticsFileName(std::string_view name, uint64_t* seq) {
  constexpr std::string_view kSuffix = ".json";
  const size_t prefix = kDiagnosticsFilePrefix.size();
  if (name.size() <= prefix + kSuffix.size()) return false;
  if (name.substr(0, prefix) != kDiagnosticsFilePrefix) return false;
  if (name.substr(name.size() - kSuffix.size()) != kSuffix) return false;
  const std::string_view digits =
      name.substr(prefix, name.size() - prefix - kSuffix.size());
  uint64_t value = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *seq = value;
  return true;
}

StatusOr<std::vector<std::pair<uint64_t, std::string>>> ListDiagnosticsDumps(
    Env* env, const std::string& dir) {
  std::vector<std::pair<uint64_t, std::string>> dumps;
  auto names = env->ListDir(dir);
  // A directory that does not exist yet (first dump ever) is an empty list;
  // there is no portable missing-vs-error distinction across Envs, and the
  // dump writer creates the file regardless.
  if (!names.ok()) return dumps;
  for (const std::string& name : *names) {
    uint64_t seq = 0;
    if (ParseDiagnosticsFileName(name, &seq)) dumps.emplace_back(seq, name);
  }
  std::sort(dumps.begin(), dumps.end());
  return dumps;
}

StatusOr<std::string> ReadDiagnosticsFile(Env* env, const std::string& path) {
  auto file = env->OpenFile(path);
  if (!file.ok()) return file.status();
  auto size = (*file)->Size();
  if (!size.ok()) return size.status();
  std::string scratch;
  Slice result;
  ODE_RETURN_IF_ERROR((*file)->Read(0, *size, &scratch, &result));
  return std::string(result.data(), result.size());
}

namespace {

/// Writes `contents` to `path` atomically: temp file, sync, rename.  Readers
/// (odedump, ode_top) never observe a torn document.
Status WriteFileAtomic(Env* env, const std::string& path,
                       const std::string& contents) {
  const std::string tmp = path + ".tmp";
  {
    auto file = env->OpenFile(tmp);
    if (!file.ok()) return file.status();
    ODE_RETURN_IF_ERROR((*file)->Truncate(0));
    ODE_RETURN_IF_ERROR((*file)->Append(Slice(contents)));
    ODE_RETURN_IF_ERROR((*file)->Sync());
  }
  return env->RenameFile(tmp, path);
}

void AppendHealthJson(JsonWriter& w, const HealthReport& health) {
  w.BeginObject();
  w.KV("state", HealthStateName(health.state));
  w.Key("reasons");
  w.BeginArray();
  for (const std::string& reason : health.reasons) w.Value(reason);
  w.EndArray();
  w.KV("checkpointer_lag_us", health.checkpointer_lag_us);
  w.KV("wal_backlog_bytes", health.wal_backlog_bytes);
  w.KV("async_pending", health.async_pending);
  w.EndObject();
}

}  // namespace

// Defined here (not database.cc) with the rest of the dump machinery; the
// declaration lives on Database because the document reaches into every
// layer the database owns.
StatusOr<std::string> Database::DumpDiagnostics(std::string_view trigger) {
  // One dump at a time: seq allocation scans the directory, and interleaved
  // writers would race the retention sweep.
  MutexLock lock(diag_mu_);
  Env* env = options_.storage.env != nullptr ? options_.storage.env
                                             : Env::Posix();
  const std::string& dir = options_.storage.path;
  auto existing = ListDiagnosticsDumps(env, dir);
  if (!existing.ok()) return existing.status();
  const uint64_t seq = existing->empty() ? 1 : existing->back().first + 1;

  // Journal the dump itself first: the snapshot below then carries the
  // trigger and the dump's own timestamp as its newest record, so even a
  // reader with only the journal knows why the dump exists.
  const HealthReport health = engine_->HealthCheck();
  event_log_->Record(EventType::kHealth, EventSeverity::kInfo,
                     static_cast<uint64_t>(health.state), seq, 0, trigger);
  std::vector<EventRecord> events;
  event_log_->Snapshot(&events);
  const uint64_t ts_micros = events.empty() ? 0 : events.back().ts_micros;

  JsonWriter w;
  w.BeginObject();
  w.KV("schema", uint64_t{1});
  w.KV("seq", seq);
  w.KV("trigger", trigger);
  w.KV("ts_micros", ts_micros);

  w.Key("health");
  AppendHealthJson(w, health);

  w.Key("poison");
  w.BeginObject();
  w.KV("poisoned", engine_->poisoned());
  w.KV("status", engine_->poison_status().ToString());
  w.EndObject();

  const WalWatermarks marks = engine_->wal_watermarks();
  w.Key("wal");
  w.BeginObject();
  w.KV("enqueued_txn", marks.enqueued_txn);
  w.KV("appended_txn", marks.appended_txn);
  w.KV("durable_txn", marks.durable_txn);
  w.KV("acked_txn", marks.acked_txn);
  w.KV("wal_bytes", engine_->wal_bytes());
  w.KV("wal_total_bytes", engine_->wal_total_bytes());
  w.KV("commit_count", engine_->commit_count());
  w.KV("checkpoint_count", engine_->checkpoint_count());
  w.EndObject();

  const RecoveryStats& recovery = engine_->last_recovery();
  w.Key("recovery");
  w.BeginObject();
  w.KV("committed_txns", recovery.committed_txns);
  w.KV("discarded_txns", recovery.discarded_txns);
  w.KV("pages_replayed", recovery.pages_replayed);
  w.KV("records_scanned", recovery.records_scanned);
  w.KV("tail_truncated", recovery.tail_truncated);
  w.EndObject();

  w.Key("latches");
  w.BeginObject();
  w.KV("write_latch_stripes",
       static_cast<uint64_t>(engine_->write_latches().stripe_count()));
  w.KV("write_latch_acquisitions", engine_->write_latches().acquisitions());
  w.EndObject();

  const BufferPoolStats pool = engine_->cache_stats();
  w.Key("buffer_pool");
  w.BeginObject();
  w.KV("hits", pool.hits);
  w.KV("misses", pool.misses);
  w.KV("evictions", pool.evictions);
  w.KV("flushes", pool.flushes);
  w.KV("resident_pages",
       static_cast<uint64_t>(engine_->buffer_pool().resident_pages()));
  w.EndObject();

  w.Key("caches");
  w.BeginObject();
  for (const auto& [name, stats] :
       {std::pair<const char*, PayloadCacheStats>{"payload",
                                                  payload_cache_->stats()},
        std::pair<const char*, PayloadCacheStats>{"latest",
                                                  latest_cache_->stats()}}) {
    w.Key(name);
    w.BeginObject();
    w.KV("hits", stats.hits);
    w.KV("misses", stats.misses);
    w.KV("evictions", stats.evictions);
    w.KV("invalidations", stats.invalidations);
    w.KV("epoch_discards", stats.epoch_discards);
    w.EndObject();
  }
  w.EndObject();

  {
    MutexLock vacuum_lock(vacuum_mu_);
    w.Key("vacuum");
    w.BeginObject();
    w.KV("pass_active", vacuum_state_.has_value());
    w.KV("tree_index",
         static_cast<uint64_t>(vacuum_state_ ? vacuum_state_->tree_index : 0));
    w.KV("shadow_active",
         vacuum_state_ ? vacuum_state_->shadow_active : false);
    w.KV("steps_done",
         vacuum_state_ ? vacuum_state_->steps_done : uint64_t{0});
    w.EndObject();
  }

  w.Key("tracer");
  w.BeginObject();
  w.KV("pending_events", static_cast<uint64_t>(tracer_->pending_events()));
  w.KV("dropped_events", tracer_->dropped_events());
  w.KV("sample_every", tracer_->sample_every());
  w.EndObject();

  w.Key("event_log");
  w.BeginObject();
  w.KV("dropped_events", event_log_->dropped_events());
  w.KV("total_recorded", event_log_->total_recorded());
  w.Key("events");
  w.BeginArray();
  for (const EventRecord& e : events) EventLog::AppendJson(&w, e);
  w.EndArray();
  w.EndObject();

  w.Key("metrics");
  MetricsRegistry::AppendJson(&w, MetricsSnapshot());

  w.EndObject();

  const std::string path = dir + "/" + DiagnosticsFileName(seq);
  ODE_RETURN_IF_ERROR(WriteFileAtomic(env, path, w.str()));

  // Retention: the newest diagnostics_retain dumps survive (this one
  // included).  Deletion failures are reported, not fatal — the dump that
  // was just written is the valuable artifact.
  existing->emplace_back(seq, DiagnosticsFileName(seq));
  if (existing->size() > options_.diagnostics_retain) {
    const size_t excess = existing->size() - options_.diagnostics_retain;
    for (size_t i = 0; i < excess; ++i) {
      Status s = env->DeleteFile(dir + "/" + (*existing)[i].second);
      if (!s.ok()) {
        ODE_LOG_WARN << "diagnostics retention delete failed: " << s;
      }
    }
  }
  return path;
}

Status Database::ExportMetricsFile() {
  Env* env = options_.storage.env != nullptr ? options_.storage.env
                                             : Env::Posix();
  JsonWriter w;
  w.BeginObject();
  w.KV("ts_micros", event_log_->NowMicros());
  w.Key("metrics");
  MetricsRegistry::AppendJson(&w, MetricsSnapshot());
  w.EndObject();
  return WriteFileAtomic(
      env, options_.storage.path + "/" + std::string(kMetricsExportFileName),
      w.str());
}

}  // namespace ode
