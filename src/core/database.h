#ifndef ODE_CORE_DATABASE_H_
#define ODE_CORE_DATABASE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/codec.h"
#include "core/ids.h"
#include "core/meta.h"
#include "core/payload_cache.h"
#include "storage/storage_engine.h"
#include "util/clock.h"
#include "util/event_log.h"
#include "util/metrics.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/statusor.h"
#include "util/trace.h"

namespace ode {

/// Shape of the delta graph the kDelta payload strategy builds.
enum class DeltaTopology : uint8_t {
  /// Every delta targets its derivation parent: cold dereference at chain
  /// depth n applies n deltas (the pre-skip behavior, kept for comparison
  /// benchmarks and as a fallback).
  kLinear = 0,
  /// Skip-deltas (the monotone/SVN scheme): the version at chain position p
  /// stores its delta against the ancestor at position p & (p - 1), so any
  /// dereference applies at most popcount(p) <= log2(n) + 1 deltas.  Deltas
  /// get somewhat larger (the base is farther away) but cold-deref latency
  /// is bounded logarithmically instead of linearly.
  kSkip = 1,
};

/// Configuration of an Ode database.
///
/// Every knob documents its legal range; Validate() checks them all and
/// Database::Open refuses out-of-range values with InvalidArgument instead
/// of silently clamping, so a typo'd configuration fails loudly at open
/// time rather than running with surprise behavior.
struct DatabaseOptions {
  /// Storage-engine knobs.  Legal ranges enforced by Validate():
  /// buffer_pool_pages >= 1; buffer_pool_shards 0 (auto) or a power of two;
  /// write_latch_stripes a power of two >= 1; group_commit_max_batch >= 1;
  /// group_commit_max_wait_us <= 1'000'000 (one second).  commit_mode picks
  /// the durability contract (CommitMode::kSync default; kAsync acknowledges
  /// after the WAL append — pair with Database::WaitForDurable).
  StorageOptions storage;

  /// Physical strategy for version payloads:
  ///  - kFull:  every version stores its complete payload (fast reads).
  ///  - kDelta: a version derived from another stores only the difference
  ///    along its derived-from edge (the SCCS/RCS-style storage §2 of the
  ///    paper motivates); bounded by the keyframe knobs below.
  PayloadKind payload_strategy = PayloadKind::kFull;

  /// Maximum delta-chain length before a full copy is forced (keyframe).
  /// Legal range: >= 1 (1 means every version is a keyframe).
  uint32_t delta_keyframe_interval = 16;

  /// If an encoded delta exceeds this fraction of the payload, store a full
  /// copy instead.  Legal range: (0, 1] (NaN rejected).
  double delta_max_ratio = 0.75;

  /// Delta-base selection under kDelta (see DeltaTopology).  kSkip bounds
  /// cold dereference to O(log chain) delta applications; kLinear preserves
  /// the smallest possible per-version deltas.
  DeltaTopology delta_topology = DeltaTopology::kSkip;

  /// Store payload blobs content-addressed (storage/payload_store.h):
  /// identical payloads — common across alternatives, newversion copies and
  /// duplicate objects — share ONE physical heap record, tracked by
  /// refcounts keyed on a 128-bit content hash.  Refcount edits ride the
  /// ordinary page-image WAL, so the crash matrix covers them.  Turning
  /// this off affects only NEW writes; blobs already stored
  /// content-addressed keep their refcounts and are released correctly
  /// either way (release routes on the per-version content hash, not on
  /// this option).
  bool content_addressed_payloads = true;

  /// Timestamp source for the temporal relationship.  nullptr uses the
  /// database's crash-safe persisted logical clock; tests may inject a
  /// LogicalClock for determinism.
  Clock* clock = nullptr;

  /// Byte budget for the materialized-payload cache (payload_cache.h): reads
  /// of a resident version skip the catalog lookup AND the delta-chain walk.
  /// 0 disables the cache.
  uint64_t payload_cache_bytes = 32ull << 20;

  /// While materializing a delta chain, also install the intermediate chain
  /// nodes produced along the walk (one walk warms the whole chain).
  bool cache_chain_intermediates = true;

  /// Entry budget for the oid -> latest-version resolution cache, which lets
  /// generic (late-bound) dereference skip the header B+tree lookup.
  /// 0 disables the cache.
  size_t latest_cache_entries = 1 << 16;

  /// Lock-stripe counts for the two read caches; 0 = auto (collapses to one
  /// shard for small budgets, scales to 16 for the defaults).  Legal values:
  /// 0 or a power of two (stripe selection is a mask).
  size_t payload_cache_shards = 0;
  size_t latest_cache_shards = 0;

  /// Registry every instrument of this database (and its storage engine)
  /// records into.  nullptr means the database owns a PRIVATE registry —
  /// the default, because several databases commonly coexist in one process
  /// and their counters must not bleed into each other.  Pass
  /// &MetricsRegistry::Default() to aggregate process-wide instead.
  MetricsRegistry* metrics = nullptr;

  /// Record one in N warm-dereference latencies into the core.deref_*_ns
  /// histograms.  Legal values: 0 (disabled) or a power of two (the sampler
  /// is a mask).  Sampling keeps the warm cache-hit path free of clock
  /// reads: the unsampled iteration costs one thread-local countdown tick.
  uint32_t metrics_sample_every = 64;

  /// Per-thread trace ring-buffer capacity, in events.  Legal range: >= 1.
  size_t trace_buffer_events = 8192;

  /// Record one in N trace spans.  Legal values: 0 (tracing off) or a power
  /// of two (1 = every span).  Can be changed at run time via
  /// Database::tracer().set_sample_every().
  uint32_t trace_sample_every = 0;

  /// Structured event journal (util/event_log.h): the flight recorder's
  /// memory.  On by default — recording is lock-free per thread and a
  /// disabled journal still exists (Database::event_log() never dangles),
  /// so benches A/B the cost by flipping this, not by rebuilding.
  bool event_log_enabled = true;
  /// Per-thread journal ring capacity, in records.  Legal range: >= 1.
  size_t event_log_buffer_events = 1024;
  /// Newest records a journal snapshot/drain retains across all threads.
  /// Legal range: >= 1.
  size_t event_log_ring_events = 8192;

  /// Slow-op threshold for the dereference read path (ReadLatest /
  /// ReadVersion), microseconds; 0 (default) disables.  A dereference
  /// exceeding it emits a kSlowOp journal record plus an unconditional trace
  /// span.  Engine-side thresholds (commit, checkpoint) live in
  /// storage.slow_commit_us / storage.slow_checkpoint_us.
  uint32_t slow_deref_us = 0;

  /// Diagnostics dumps retained in the database directory: writing
  /// DIAGNOSTICS-<seq>.json number retain+1 deletes the oldest.  Legal
  /// range: >= 1.
  size_t diagnostics_retain = 8;

  /// Re-export METRICS.json (every instrument as JSON, atomically replaced)
  /// into the database directory this often; 0 (default) disables.  Feeds
  /// ode_top and any external poller without linking against the library.
  uint32_t stats_export_interval_ms = 0;

  /// Checks every knob against its documented legal range.  Returns the
  /// first violation as InvalidArgument (naming the field), or OK.
  /// Database::Open calls this before touching storage.
  Status Validate() const;
};

/// Events a trigger can watch.  The paper deliberately provides *no* built-in
/// change-notification facility, pointing instead at O++ triggers (§1); this
/// is that trigger primitive, on which src/policy builds notification,
/// percolation, etc.
enum class TriggerEvent : uint8_t {
  kPnew = 0,
  kNewVersion = 1,
  kUpdate = 2,
  kDeleteVersion = 3,
  kDeleteObject = 4,
};

class Database;

/// What happened, delivered to trigger functions.
struct TriggerInfo {
  TriggerEvent event;
  /// The affected version.  For kDeleteObject, vnum is kNoVersion.
  VersionId vid;
  uint32_t type_id = 0;
  /// For kNewVersion: the version the new one was derived from.
  VersionId derived_from;
};

using TriggerFn = std::function<void(Database&, const TriggerInfo&)>;

/// Session counters for the version store (not persisted).  Returned by
/// value from Database::stats() as a coherent snapshot.  This is a
/// compatibility view assembled from the database's MetricsRegistry (see
/// Database::MetricsSnapshot() for the full instrument set, including
/// latency histograms).
struct VersionStats {
  uint64_t pnew_count = 0;
  uint64_t newversion_count = 0;
  uint64_t update_count = 0;
  uint64_t delete_version_count = 0;
  uint64_t delete_object_count = 0;
  uint64_t materializations = 0;      ///< Payload reads.
  uint64_t delta_applications = 0;    ///< Individual deltas applied.
  uint64_t full_payloads_written = 0;
  uint64_t delta_payloads_written = 0;
  uint64_t full_bytes_written = 0;
  uint64_t delta_bytes_written = 0;
  /// Content-addressed payload store (physical sharing).  The *_written
  /// counters above are LOGICAL — a deduplicated write still counts its
  /// bytes there; these report what physically happened underneath.
  uint64_t payload_dedupe_hits = 0;        ///< Writes that shared a blob.
  uint64_t payload_dedupe_bytes_saved = 0; ///< Bytes NOT rewritten thanks to sharing.
  uint64_t payload_blobs_created = 0;      ///< Distinct blobs inserted.
  uint64_t payload_blobs_freed = 0;        ///< Blobs freed at refcount zero.
  /// Read-path cache outcomes, counted once per payload-read request (the
  /// caches' own stats additionally count chain-internal probes).
  uint64_t payload_cache_hits = 0;
  uint64_t payload_cache_misses = 0;
  uint64_t latest_cache_hits = 0;
  uint64_t latest_cache_misses = 0;
  /// Storage-layer counters (from the engine's instruments).
  uint64_t wal_appends = 0;
  uint64_t wal_fsyncs = 0;
  uint64_t buffer_pool_evictions = 0;
  uint64_t txn_commits = 0;  ///< Engine commits, incl. internal bootstrap.
  uint64_t txn_aborts = 0;
  /// Group-commit counters: commits/fsyncs > 1 means concurrent writers are
  /// amortizing fsyncs (the whole point of the group-commit WAL).
  uint64_t group_commit_batches = 0;
  uint64_t group_commit_commits = 0;
  uint64_t group_commit_fsyncs = 0;
  /// Commits acknowledged (kAsync) or queued but not yet fsync-covered.
  uint64_t async_pending = 0;
};

/// The Ode object-versioning database: the paper's model (§3) and constructs
/// (§4) as a C++ library API.
///
/// Model recap (all automatic, maintained by this class):
///  - pnew creates a persistent object with one initial version; the object
///    id is a *generic* reference that always denotes the latest version.
///  - newversion derives a new version from a given version (or from the
///    latest); the new version becomes the latest.  Versioning is orthogonal
///    to type — any object can grow versions at any time, no declaration
///    needed.
///  - The temporal order (creation order) and the derived-from tree are both
///    maintained by the system; Tprevious/Tnext walk the former,
///    Dprevious/Dnext the latter.
///  - pdelete of a version splices it out of both relationships (children
///    are re-parented to the grandparent); pdelete of an object removes the
///    object with all its versions (§4.4).
///
/// Untyped methods move raw payload bytes; the typed template layer (and
/// Ref<T>/VersionPtr<T> in version_ptr.h) sits directly on top.
///
/// Transactions: every operation is atomic.  By default each call runs in
/// its own transaction; Begin()/Commit()/Abort() group several calls.
///
/// Concurrency: multi-writer / multi-reader.  Mutators may be called from
/// any number of threads: each one-shot mutator takes the write-latch stripe
/// of the object it touches (ordering logically conflicting writers), then
/// queues for the engine's exclusive apply latch; the engine's group-commit
/// WAL lets independent writers share one fsync (see StorageEngine).  A
/// transaction opened with Begin() is thread-affine — every operation inside
/// it, and the matching Commit()/Abort(), must run on the opening thread —
/// and only one user-scoped transaction may be open per Database at a time.
/// The read-only surface (ReadLatest/ReadVersion, the traversals, the
/// ForEach* scans, the typed getters) may be called from any number of
/// threads in parallel, under the engine's shared lock against applied
/// state; a thread holding an open write transaction sees its own
/// uncommitted writes (its reads join the transaction).  RegisterType,
/// trigger (un)registration and stats() are thread-safe; Vacuum and
/// Checkpoint may run from any thread but serialize behind writers.
///
/// Durability: with the default CommitMode::kSync a returned mutator call is
/// fsync-durable.  With kAsync it is acknowledged after the WAL append;
/// call WaitForDurable() to fence (a crash before the next group fsync can
/// lose a suffix of acknowledged commits, never a non-prefix subset).
class Database {
 public:
  static StatusOr<std::unique_ptr<Database>> Open(
      const DatabaseOptions& options);
  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // -- Object & version lifecycle (untyped) --------------------------------

  /// Creates a persistent object of `type_id` whose initial version has
  /// `payload`.  Returns the id of that initial version; its .oid is the
  /// object id.
  StatusOr<VersionId> PnewRaw(uint32_t type_id, const Slice& payload);

  /// Creates a new version derived from the *latest* version of `oid`
  /// (generic-reference form of newversion).
  StatusOr<VersionId> NewVersionOf(ObjectId oid);

  /// Creates a new version derived from the specific version `vid`.
  StatusOr<VersionId> NewVersionFrom(VersionId vid);

  /// Creates a new version of `oid` with NO derivation parent (a fresh
  /// derivation root holding `payload`).  Not part of the paper's user
  /// surface — but deletions can leave histories with several roots, and
  /// restore tooling (policy/migrate.h) must be able to recreate them.
  StatusOr<VersionId> NewDetachedVersion(ObjectId oid, const Slice& payload);

  /// Replaces the payload of the latest version of `oid` (what assignment
  /// through a generic pointer means in O++: updates do not create versions
  /// — versions are explicit).
  Status UpdateLatest(ObjectId oid, const Slice& payload);

  /// Replaces the payload of the specific version `vid`.
  Status UpdateVersion(VersionId vid, const Slice& payload);

  /// Reads the latest version's payload; optionally reports which version
  /// that was.
  StatusOr<std::string> ReadLatest(ObjectId oid,
                                   VersionId* resolved = nullptr);

  /// Reads a specific version's payload.
  StatusOr<std::string> ReadVersion(VersionId vid);

  /// Deletes the object and ALL its versions (paper: pdelete on an object
  /// id).
  Status PdeleteObject(ObjectId oid);

  /// Deletes one version (paper: pdelete on a version id), splicing the
  /// temporal and derived-from relationships.  Deleting the last version
  /// deletes the object.
  Status PdeleteVersion(VersionId vid);

  // -- Relationship traversal ----------------------------------------------

  /// Latest (temporally newest) version of `oid`.
  StatusOr<VersionId> Latest(ObjectId oid);

  /// Temporal predecessor/successor of `vid` among live versions.
  StatusOr<std::optional<VersionId>> Tprevious(VersionId vid);
  StatusOr<std::optional<VersionId>> Tnext(VersionId vid);

  /// The version `vid` was derived from (empty for a root version).
  StatusOr<std::optional<VersionId>> Dprevious(VersionId vid);

  /// Versions derived from `vid` (its alternatives/revisions), in creation
  /// order.
  StatusOr<std::vector<VersionId>> Dnext(VersionId vid);

  /// Every live version of `oid` in temporal order.
  StatusOr<std::vector<VersionId>> VersionsOf(ObjectId oid);

  StatusOr<bool> ObjectExists(ObjectId oid);
  StatusOr<bool> VersionExists(VersionId vid);
  StatusOr<ObjectHeader> Header(ObjectId oid);
  StatusOr<VersionMeta> Meta(VersionId vid);

  // -- Types & clusters -----------------------------------------------------

  /// Returns the persistent id of type `name`, creating it on first use.
  StatusOr<uint32_t> RegisterType(std::string_view name);

  /// Looks up a type id without creating it.
  StatusOr<std::optional<uint32_t>> LookupType(std::string_view name);

  /// Materializes the cluster (per-type extent) of `type_id` as an oid
  /// vector.  The streaming form is ClusterCursor (core/cursor.h) — the one
  /// traversal API; these two are convenience reductions over it.
  StatusOr<std::vector<ObjectId>> ClusterScan(uint32_t type_id);
  StatusOr<uint64_t> ClusterSize(uint32_t type_id);

  // -- Whole-database enumeration (catalog scans) ---------------------------
  //
  // The scan API is the cursor family in core/cursor.h (ObjectCursor /
  // VersionCursor / TypeCursor / ClusterCursor): Status-first
  // Next()/Valid()/status() iterators that don't hold the engine lock
  // across user code.  The ForEach* callback wrappers deprecated in PR 4
  // are gone; tools/lint (foreach-caller rule) keeps them from coming back.

  /// Rebuilds the catalog B+trees (and the payload index) compactly,
  /// returning pages emptied by past deletions to the allocator.
  ///
  /// Runs INCREMENTALLY: a loop of bounded VacuumStep() calls, each its own
  /// transaction, so writers and the background checkpointer interleave
  /// between steps instead of stalling for the whole rebuild.  Concurrency
  /// contract: vacuum is logically content-preserving — it never changes
  /// what any read observes — so the read caches stay valid; each step
  /// brackets the usual cache epoch like any other transaction.  If a
  /// foreign commit lands between two steps of a tree's shadow rebuild, the
  /// half-built shadow is discarded and that tree falls back to a single
  /// atomic rebuild (the pre-incremental behavior).  Safe to call from any
  /// thread; concurrent calls serialize step-by-step on an internal mutex.
  Status Vacuum();

  /// One bounded unit of vacuum work: copies at most `max_entries` catalog
  /// entries into the shadow tree being built (rooted at kVacuumScratchSlot),
  /// swapping it in when a tree completes.  Returns true when a full vacuum
  /// pass has finished, false when more steps remain.  Fails with
  /// FailedPrecondition inside an open user transaction (each step must be
  /// its own transaction).  Designed to interleave with the background
  /// checkpointer: call from a maintenance thread between batches.
  StatusOr<bool> VacuumStep(uint64_t max_entries = 512);

  /// Physical storage statistics (full scan of the page file).
  struct StorageStats {
    uint32_t total_pages = 0;      ///< Pages in the database file.
    uint32_t free_pages = 0;       ///< On the allocator free list.
    uint32_t heap_pages = 0;       ///< Slotted record pages.
    uint32_t overflow_pages = 0;   ///< Large-record continuation pages.
    uint32_t btree_pages = 0;      ///< Catalog tree nodes.
    uint64_t live_records = 0;     ///< Records in the heap file.
    uint64_t wal_bytes = 0;        ///< WAL since the last checkpoint.
  };
  StatusOr<StorageStats> GatherStorageStats();

  // -- Triggers --------------------------------------------------------------

  /// Registers `fn` to run synchronously (inside the mutating transaction)
  /// after each `event`.  Returns a handle for UnregisterTrigger.
  uint64_t RegisterTrigger(TriggerEvent event, TriggerFn fn);
  void UnregisterTrigger(uint64_t handle);

  // -- Transactions -----------------------------------------------------------

  Status Begin();
  Status Commit();
  Status Abort();
  bool InTransaction() const;

  /// Flushes dirty pages and truncates the WAL (draining the group-commit
  /// queue first).
  Status Checkpoint();

  /// Blocks until every mutation acknowledged so far is fsync-durable.  The
  /// durability fence for CommitMode::kAsync; a no-op under kSync.
  Status WaitForDurable();

  // -- Typed layer -------------------------------------------------------------

  /// Persistent type id of T (registered on first use, cached).
  template <Persistable T>
  StatusOr<uint32_t> TypeId() {
    if (auto cached = LookupTypeCache(T::kTypeName); cached.has_value()) {
      return *cached;
    }
    return RegisterType(T::kTypeName);
  }

  /// pnew for a typed value.
  template <Persistable T>
  StatusOr<VersionId> Pnew(const T& value) {
    auto type_id = TypeId<T>();
    if (!type_id.ok()) return type_id.status();
    return PnewRaw(*type_id, Slice(EncodeObject(value)));
  }

  /// Reads the latest version of `oid` as a T.
  template <Persistable T>
  StatusOr<T> GetLatest(ObjectId oid, VersionId* resolved = nullptr) {
    auto bytes = ReadLatest(oid, resolved);
    if (!bytes.ok()) return bytes.status();
    return DecodeObject<T>(Slice(*bytes));
  }

  /// Reads the specific version `vid` as a T.
  template <Persistable T>
  StatusOr<T> Get(VersionId vid) {
    auto bytes = ReadVersion(vid);
    if (!bytes.ok()) return bytes.status();
    return DecodeObject<T>(Slice(*bytes));
  }

  /// Writes `value` as the latest version's payload.
  template <Persistable T>
  Status PutLatest(ObjectId oid, const T& value) {
    return UpdateLatest(oid, Slice(EncodeObject(value)));
  }

  /// Writes `value` as version `vid`'s payload.
  template <Persistable T>
  Status Put(VersionId vid, const T& value) {
    return UpdateVersion(vid, Slice(EncodeObject(value)));
  }

  /// Coherent snapshot of the session counters.  Thread-safe.
  VersionStats stats() const;

  /// The registry all this database's instruments live in (the one from
  /// DatabaseOptions::metrics, or the database-private default).
  MetricsRegistry& metrics_registry() const { return *registry_; }

  /// Snapshot of every instrument, with the cache and buffer-pool counters
  /// (which are maintained per-shard for hot-path cheapness) mirrored into
  /// the registry first.  Thread-safe.
  MetricsRegistry::Snapshot MetricsSnapshot() const;

  /// The database's event tracer (always present; records nothing until
  /// sampling is enabled via options or set_sample_every).
  Tracer& tracer() const { return *tracer_; }

  /// The structured event journal (always present; see
  /// DatabaseOptions::event_log_enabled).
  EventLog& event_log() const { return *event_log_; }

  /// Writes a flight-recorder dump — DIAGNOSTICS-<seq>.json in the database
  /// directory: event journal, metrics, WAL watermarks, cache/latch/pool
  /// stats, vacuum progress, recovery summary, health verdict.  Returns the
  /// path written.  Retention per DatabaseOptions::diagnostics_retain.
  /// Thread-safe; also fired automatically (from the engine's background
  /// thread) when the engine poisons itself.  Implementation in
  /// core/diagnostics.cc.
  StatusOr<std::string> DumpDiagnostics(std::string_view trigger = "manual");

  /// Point-in-time health verdict of the underlying engine (see
  /// StorageEngine::HealthCheck).  Thread-safe.
  HealthReport HealthCheck() const { return engine_->HealthCheck(); }

  StorageEngine& storage() { return *engine_; }
  const DatabaseOptions& options() const { return options_; }

  /// Read-path caches (payload_cache.h); exposed for stats/tooling.
  const VersionPayloadCache& payload_cache() const { return *payload_cache_; }
  const LatestVersionCache& latest_cache() const { return *latest_cache_; }

 private:
  friend class RawSecondaryIndex;  // Same-layer facility (core/index.h).
  // The catalog cursors (core/cursor.h) batch through RunInRead.
  friend class ObjectCursor;
  friend class VersionCursor;
  friend class TypeCursor;
  friend class ClusterCursor;

  Database() = default;

  /// Runs `body` in the open transaction if any, else in its own.
  Status RunInTxn(const std::function<Status(Txn&)>& body);

  /// RunInTxn for a one-shot mutator keyed by one object: takes `oid`'s
  /// write-latch stripe BEFORE queuing for the engine's apply latch, so
  /// logically conflicting writers (same object) order themselves while
  /// independent objects race to the group-commit queue freely.  Skipped
  /// when this thread already has a transaction open: the apply latch it
  /// holds already serializes everything, and acquiring a stripe while
  /// holding the apply latch would invert the stripe -> apply-latch order
  /// (deadlock).
  Status MutateObject(ObjectId oid, const std::function<Status(Txn&)>& body);

  /// Thread-safe probes of the in-memory type-name -> id cache (backs the
  /// header-inline TypeId<T> fast path).
  std::optional<uint32_t> LookupTypeCache(std::string_view name) const;
  void InsertTypeCache(std::string_view name, uint32_t id);

  /// Runs read-only `body` under the engine's shared lock — in parallel with
  /// other readers.  If THIS thread has a write transaction open, `body`
  /// joins it instead (so a transaction reads its own writes); another
  /// thread's open transaction just means waiting for the shared lock.
  Status RunInRead(const std::function<Status(PageIO&)>& body);

  /// The write transaction opened by the calling thread, if any.
  Txn* CurrentThreadTxn() const;

  StatusOr<uint64_t> NextTimestamp(Txn& txn);
  StatusOr<ObjectId> AllocateOid(Txn& txn);

  // Internal (in-transaction) implementations.
  Status DoPnew(Txn& txn, uint32_t type_id, const Slice& payload,
                VersionId* out);
  Status DoNewVersion(Txn& txn, ObjectId oid,
                      std::optional<VersionNum> base_vnum, VersionId* out);
  Status DoUpdate(Txn& txn, VersionId vid, const Slice& payload);
  Status DoDeleteVersion(Txn& txn, VersionId vid);
  Status DoDeleteObject(Txn& txn, ObjectId oid);

  Status GetHeader(PageIO& io, ObjectId oid, ObjectHeader* out);
  Status PutHeader(Txn& txn, ObjectId oid, const ObjectHeader& header);
  Status GetMeta(PageIO& io, VersionId vid, VersionMeta* out);
  Status PutMeta(Txn& txn, VersionId vid, const VersionMeta& meta);

  /// Reads the full payload of a version, applying delta chains.  Consults
  /// the payload cache first (unless the caller already probed it) and
  /// installs what it materializes, including intermediate chain nodes when
  /// options_.cache_chain_intermediates is set.  Takes PageIO so it runs on
  /// both the write path (Txn) and the shared read path (ReadTxn).
  Status Materialize(PageIO& io, ObjectId oid, const VersionMeta& meta,
                     std::string* out, bool probe_cache = true);

  // Cache epoch plumbing: every engine transaction brackets cache installs
  // so uncommitted state never survives an abort.  Driven by the engine's
  // on_apply_begin / on_apply_end hooks (wired in Open), which run under the
  // exclusive apply latch — apply sections are strictly serialized even
  // though durable-commit waits overlap, which is exactly the single-writer
  // discipline the caches' epoch protocol assumes.
  void BeginCacheEpoch();
  void CommitCacheEpoch();
  void AbortCacheEpoch();

  /// Inserts blob bytes via the content-addressed store when enabled (sets
  /// meta->payload and meta->content_hash), else as a plain heap record
  /// (zero hash).  Does NOT touch kind/delta fields.
  Status StoreBlob(Txn& txn, const Slice& bytes, VersionMeta* meta);

  /// Releases the stored blob of `meta`: PayloadStore::Unref when it has a
  /// content hash, plain heap Delete otherwise.  Routing on the meta (not
  /// the current option) keeps mixed databases correct.
  Status ReleasePayload(Txn& txn, const VersionMeta& meta);

  /// Stores `payload` for version `vnum` of `oid`, choosing full vs delta
  /// per options (delta is computed against a base along the derived-from
  /// chain: the parent under DeltaTopology::kLinear, the skip-delta ancestor
  /// under kSkip).  Fills payload/kind/delta_base/delta_chain_len/delta_pos/
  /// logical_size/content_hash of `meta`.
  Status StorePayload(Txn& txn, ObjectId oid, VersionMeta* meta,
                      const Slice& payload);

  /// Stores a payload identical to the base version's, without
  /// materializing it when the delta strategy allows (the cheap-newversion
  /// path).
  Status StoreCopyOfBase(Txn& txn, ObjectId oid, const VersionMeta& base,
                         VersionMeta* meta);

  /// Converts every delta child of `vid` to a full payload (required before
  /// the parent's payload changes or disappears).
  Status RematerializeDeltaChildren(Txn& txn, VersionId vid);

  /// Fixes delta_chain_len for all delta descendants of `base` after its
  /// chain position changed (it became a keyframe).
  Status RecomputeChainLengths(Txn& txn, VersionId base, uint32_t base_chain);

  void FireTriggers(const TriggerInfo& info);

  /// Progress of the incremental vacuum pass (guarded by vacuum_mu_).  The
  /// pass walks vacuum-eligible root slots in order; within a tree it
  /// shadow-copies key ranges, resuming after `resume_key`.
  struct VacuumState {
    size_t tree_index = 0;      ///< Index into the eligible-slot list.
    bool shadow_active = false; ///< A shadow tree is rooted at the scratch slot.
    std::string resume_key;     ///< Last key copied into the shadow.
    /// Engine commit count observed inside the previous step's transaction
    /// body.  Read again inside the next step (still under the exclusive
    /// apply latch, where the engine increments it): any difference beyond
    /// our own commit means a foreign writer ran between steps and the
    /// shadow may be stale.
    uint64_t expected_commits = 0;
    /// Steps completed this pass (journal/diagnostics bookkeeping).
    uint64_t steps_done = 0;
  };

  /// One bounded vacuum step over the tree at root slot `slot` (see
  /// VacuumStep); runs inside `txn`, advancing `st`.  Sets *tree_done when
  /// the tree has been swapped for its compact shadow and *copied to the
  /// entries moved this step.
  Status VacuumTreeStep(Txn& txn, int slot, uint64_t max_entries,
                        VacuumState* st, bool* tree_done, uint64_t* copied);

  /// Pre-resolved core-layer instruments (looked up once at Open; recording
  /// through the pointers is lock-free).  Cache hit/miss counts are NOT
  /// recorded here on the hot path: stats()/MetricsSnapshot() read them from
  /// the caches' per-shard counters and mirror them into the mirror
  /// instruments, keeping the cache-hit fast path free of extra atomics.
  struct CoreMetrics {
    Counter* pnew = nullptr;
    Counter* newversion = nullptr;
    Counter* update = nullptr;
    Counter* delete_version = nullptr;
    Counter* delete_object = nullptr;
    Counter* materializations = nullptr;
    Counter* delta_applications = nullptr;
    Counter* full_payloads_written = nullptr;
    Counter* delta_payloads_written = nullptr;
    Counter* full_bytes_written = nullptr;
    Counter* delta_bytes_written = nullptr;
    Histogram* deref_latest_ns = nullptr;   ///< Sampled generic dereference.
    Histogram* deref_version_ns = nullptr;  ///< Sampled specific dereference.
    Histogram* materialize_ns = nullptr;
    // Snapshot-time mirrors of the caches' per-shard counters.
    Counter* payload_cache_hits = nullptr;
    Counter* payload_cache_misses = nullptr;
    Counter* latest_cache_hits = nullptr;
    Counter* latest_cache_misses = nullptr;
    void Attach(MetricsRegistry* registry);
  };

  /// Mirrors cache/buffer-pool counters into the registry (before a
  /// snapshot).
  void RefreshMetricMirrors() const;

  DatabaseOptions options_;
  // Declared before engine_: ~StorageEngine runs a final checkpoint (and a
  // last-resort abort, which fires the cache-epoch hooks) that records into
  // these, so they must outlive it.
  /// Fallback registry when DatabaseOptions::metrics is null.
  std::unique_ptr<MetricsRegistry> owned_registry_;
  MetricsRegistry* registry_ = nullptr;
  CoreMetrics metrics_;
  std::unique_ptr<Tracer> tracer_;
  /// Also before engine_: the engine journals into it through its very last
  /// breath (the destructor's final checkpoint and the poison-triggered
  /// diagnostics hook).
  std::unique_ptr<EventLog> event_log_;
  Sampler deref_sampler_{64};
  // Also before engine_ — the engine's apply hooks touch both caches.
  std::unique_ptr<VersionPayloadCache> payload_cache_;
  std::unique_ptr<LatestVersionCache> latest_cache_;
  std::unique_ptr<StorageEngine> engine_;
  /// The user-scoped transaction (Begin/Commit/Abort), if any.  Holds a
  /// begin-pending sentinel while engine_->Begin() blocks for the apply
  /// latch, so a concurrent Database::Begin is rejected without holding any
  /// mutex across that blocking call.  Which thread owns it is tracked in
  /// the thread-local open-transaction registry (see CurrentThreadTxn);
  /// per-call transactions never touch this field.
  std::atomic<Txn*> user_txn_{nullptr};

  struct TriggerEntry {
    uint64_t handle;
    TriggerEvent event;
    TriggerFn fn;
  };
  /// Guards trigger (un)registration; FireTriggers snapshots the matching
  /// entries under the mutex and invokes them unlocked, so triggers may
  /// themselves (un)register triggers.
  mutable Mutex triggers_mu_;
  std::vector<TriggerEntry> triggers_ ODE_GUARDED_BY(triggers_mu_);
  uint64_t next_trigger_handle_ ODE_GUARDED_BY(triggers_mu_) = 1;

  /// Guards the type-name cache (probed by any thread via TypeId<T> /
  /// RegisterType; cleared by Abort).
  mutable Mutex type_cache_mu_;
  std::unordered_map<std::string, uint32_t> type_cache_
      ODE_GUARDED_BY(type_cache_mu_);

  /// Serializes vacuum steps and guards the pass state.  Held across the
  /// step's transaction; safe because no transaction path takes it.
  mutable Mutex vacuum_mu_;
  std::optional<VacuumState> vacuum_state_ ODE_GUARDED_BY(vacuum_mu_);

  // -- Diagnostics & metrics export (core/diagnostics.cc) -------------------

  /// Writes METRICS.json atomically (the periodic exporter's unit of work;
  /// also runs once at open and once at close when exporting is enabled).
  Status ExportMetricsFile();
  /// Body of the periodic exporter thread (stats_export_interval_ms > 0).
  void StatsExporterLoop();

  /// Serializes dumps: seq allocation scans the directory and the retention
  /// sweep must not race a concurrent writer.
  mutable Mutex diag_mu_;
  Mutex exporter_mu_;
  CondVar exporter_cv_;
  bool exporter_stop_ ODE_GUARDED_BY(exporter_mu_) = false;
  std::thread stats_exporter_;  ///< Joined (then final export) in ~Database.
};

}  // namespace ode

#endif  // ODE_CORE_DATABASE_H_
