#include "policy/checkout.h"

#include "util/byte_buffer.h"

namespace ode {

constexpr char CheckoutManager::kTypeName[];

std::string CheckoutManager::EncodePayload() const {
  BufferWriter w;
  w.WriteVarint64(entries_.size());
  for (const auto& [key, entry] : entries_) {
    w.WriteU64(key.first);
    w.WriteU32(key.second);
    w.WriteU8(static_cast<uint8_t>(entry.state));
    w.WriteString(Slice(entry.owner));
  }
  return w.Release();
}

Status CheckoutManager::DecodePayload(const Slice& payload) {
  entries_.clear();
  BufferReader r(payload);
  uint64_t count = 0;
  ODE_RETURN_IF_ERROR(r.ReadVarint64(&count));
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t oid = 0;
    VersionNum vnum = kNoVersion;
    uint8_t state = 0;
    Entry entry;
    ODE_RETURN_IF_ERROR(r.ReadU64(&oid));
    ODE_RETURN_IF_ERROR(r.ReadU32(&vnum));
    ODE_RETURN_IF_ERROR(r.ReadU8(&state));
    if (state > static_cast<uint8_t>(VersionState::kReleased)) {
      return Status::Corruption("bad checkout state");
    }
    entry.state = static_cast<VersionState>(state);
    ODE_RETURN_IF_ERROR(r.ReadString(&entry.owner));
    entries_[{oid, vnum}] = std::move(entry);
  }
  return Status::OK();
}

StatusOr<CheckoutManager> CheckoutManager::Open(Database& db) {
  auto type_id = db.RegisterType(kTypeName);
  if (!type_id.ok()) return type_id.status();
  CheckoutManager manager(&db);
  // The manager's state is the singleton object of its type cluster.
  auto existing = db.ClusterScan(*type_id);
  if (!existing.ok()) return existing.status();
  if (existing->empty()) {
    auto vid = db.PnewRaw(*type_id, Slice(manager.EncodePayload()));
    if (!vid.ok()) return vid.status();
    manager.state_oid_ = vid->oid;
    return manager;
  }
  manager.state_oid_ = existing->front();
  auto payload = db.ReadLatest(manager.state_oid_);
  if (!payload.ok()) return payload.status();
  ODE_RETURN_IF_ERROR(manager.DecodePayload(Slice(*payload)));
  return manager;
}

Status CheckoutManager::Persist() {
  return db_->UpdateLatest(state_oid_, Slice(EncodePayload()));
}

StatusOr<CheckoutManager::VersionState> CheckoutManager::StateOf(
    VersionId vid) const {
  auto exists = db_->VersionExists(vid);
  if (!exists.ok()) return exists.status();
  if (!*exists) return Status::NotFound("no such version");
  auto it = entries_.find({vid.oid.value, vid.vnum});
  if (it == entries_.end()) return VersionState::kReleased;
  return it->second.state;
}

StatusOr<std::string> CheckoutManager::OwnerOf(VersionId vid) const {
  auto it = entries_.find({vid.oid.value, vid.vnum});
  if (it == entries_.end()) return Status::NotFound("version has no owner");
  return it->second.owner;
}

StatusOr<VersionId> CheckoutManager::Checkout(VersionId base,
                                              const std::string& user) {
  auto state = StateOf(base);
  if (!state.ok()) return state.status();
  if (*state == VersionState::kTransient) {
    return Status::FailedPrecondition(
        "cannot check out another user's transient version");
  }
  auto vid = db_->NewVersionFrom(base);
  if (!vid.ok()) return vid.status();
  entries_[{vid->oid.value, vid->vnum}] =
      Entry{VersionState::kTransient, user};
  ODE_RETURN_IF_ERROR(Persist());
  return *vid;
}

Status CheckoutManager::Write(VersionId vid, const std::string& user,
                              const Slice& payload) {
  auto it = entries_.find({vid.oid.value, vid.vnum});
  if (it == entries_.end() || it->second.state == VersionState::kReleased) {
    return Status::FailedPrecondition("released versions are immutable");
  }
  if (it->second.owner != user) {
    return Status::FailedPrecondition("not the owner of this version");
  }
  return db_->UpdateVersion(vid, payload);
}

Status CheckoutManager::Checkin(VersionId vid, const std::string& user) {
  auto it = entries_.find({vid.oid.value, vid.vnum});
  if (it == entries_.end() || it->second.state != VersionState::kTransient) {
    return Status::FailedPrecondition("version is not checked out");
  }
  if (it->second.owner != user) {
    return Status::FailedPrecondition("not the owner of this checkout");
  }
  it->second.state = VersionState::kWorking;
  return Persist();
}

Status CheckoutManager::Promote(VersionId vid) {
  auto it = entries_.find({vid.oid.value, vid.vnum});
  if (it == entries_.end()) {
    return Status::FailedPrecondition("version is already released");
  }
  if (it->second.state != VersionState::kWorking) {
    return Status::FailedPrecondition("only working versions can be promoted");
  }
  entries_.erase(it);  // Unlabeled == released.
  return Persist();
}

Status CheckoutManager::DiscardCheckout(VersionId vid,
                                        const std::string& user) {
  auto it = entries_.find({vid.oid.value, vid.vnum});
  if (it == entries_.end() || it->second.state != VersionState::kTransient) {
    return Status::FailedPrecondition("version is not checked out");
  }
  if (it->second.owner != user) {
    return Status::FailedPrecondition("not the owner of this checkout");
  }
  ODE_RETURN_IF_ERROR(db_->PdeleteVersion(vid));
  entries_.erase(it);
  return Persist();
}

std::vector<VersionId> CheckoutManager::CheckoutsOf(
    const std::string& user) const {
  std::vector<VersionId> result;
  for (const auto& [key, entry] : entries_) {
    if (entry.state == VersionState::kTransient && entry.owner == user) {
      result.push_back(VersionId{ObjectId{key.first}, key.second});
    }
  }
  return result;
}

}  // namespace ode
