#ifndef ODE_POLICY_MIGRATE_H_
#define ODE_POLICY_MIGRATE_H_

#include <map>
#include <string>

#include "core/database.h"
#include "core/ids.h"
#include "util/statusor.h"

namespace ode {

/// Object export/import: moving whole versioned objects between databases.
///
/// This is the mechanism under the ORION-style public/private *distributed*
/// architecture the paper discusses in §7 — a private workspace database
/// exchanging design objects with a project/public database.  Built purely
/// on the public Database API.
namespace migrate {

/// Serialized form of one object: type name, plus every version in temporal
/// order with its payload, derivation parent, and original numbering.
/// Self-contained and database-independent.
StatusOr<std::string> ExportObject(Database& db, ObjectId oid);

/// Result of an import: the new object id and the old->new version-number
/// mapping (imports renumber versions densely while preserving the temporal
/// order and the derived-from topology; new timestamps are assigned in the
/// original order).
struct ImportResult {
  ObjectId oid;
  std::map<VersionNum, VersionNum> vnum_map;
};

/// Materializes an exported object as a NEW object of `db` (the type is
/// registered there on demand).  Runs in one transaction.
StatusOr<ImportResult> ImportObject(Database& db, const Slice& exported);

/// Export + import in one step: copies `oid` from `src` into `dst`.
StatusOr<ImportResult> CopyObject(Database& src, ObjectId oid, Database& dst);

}  // namespace migrate
}  // namespace ode

#endif  // ODE_POLICY_MIGRATE_H_
