#ifndef ODE_POLICY_CHECKOUT_H_
#define ODE_POLICY_CHECKOUT_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/database.h"
#include "core/ids.h"
#include "util/statusor.h"

namespace ode {

/// ORION-style checkout/checkin as a policy (§7 discusses the ORION model:
/// transient, working, and released versions living in private, project, and
/// public databases, moved by checkout, checkin, and promotion).  O++
/// subsumes this with primitives; this class shows the construction:
///
///   - Checkout(base, user): derives a new version from `base` (newversion),
///     marks it kTransient, owned by `user` — the private workspace copy.
///   - Checkin(vid, user): kTransient -> kWorking (owner only).
///   - Promote(vid): kWorking -> kReleased.  Released versions are immutable
///     through this manager and cannot be checked back in.
///
/// Status labels live in a persistent "ode.CheckoutState" object, so the
/// workflow state survives restarts.  Unlabeled versions are kReleased (a
/// plain object is public by default).
class CheckoutManager {
 public:
  enum class VersionState : uint8_t {
    kTransient = 0,
    kWorking = 1,
    kReleased = 2,
  };

  /// Loads the manager's persistent state, creating it on first use.
  static StatusOr<CheckoutManager> Open(Database& db);

  /// Derives a private working copy of `base` for `user`.
  StatusOr<VersionId> Checkout(VersionId base, const std::string& user);

  /// Writes new contents into `user`'s checked-out version.
  Status Write(VersionId vid, const std::string& user, const Slice& payload);

  /// Moves `user`'s transient version into the project (working) level.
  Status Checkin(VersionId vid, const std::string& user);

  /// Releases a working version to the public level.
  Status Promote(VersionId vid);

  /// Abandons a transient checkout, deleting the version.
  Status DiscardCheckout(VersionId vid, const std::string& user);

  StatusOr<VersionState> StateOf(VersionId vid) const;
  StatusOr<std::string> OwnerOf(VersionId vid) const;

  /// All transient versions owned by `user`.
  std::vector<VersionId> CheckoutsOf(const std::string& user) const;

  static constexpr char kTypeName[] = "ode.CheckoutState";

 private:
  struct Entry {
    VersionState state;
    std::string owner;
  };

  explicit CheckoutManager(Database* db) : db_(db) {}

  Status Persist();
  std::string EncodePayload() const;
  Status DecodePayload(const Slice& payload);

  Database* db_;
  ObjectId state_oid_;
  std::map<std::pair<uint64_t, VersionNum>, Entry> entries_;
};

}  // namespace ode

#endif  // ODE_POLICY_CHECKOUT_H_
