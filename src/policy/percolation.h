#ifndef ODE_POLICY_PERCOLATION_H_
#define ODE_POLICY_PERCOLATION_H_

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "core/database.h"
#include "core/ids.h"

namespace ode {

/// Version percolation as a user policy.
///
/// The paper deliberately excludes percolation from the kernel: "we do not
/// provide version percolation because creating a new version can lead to
/// the automatic creation of a large number of versions of other objects.
/// Users may implement version percolation as a policy by using other O++
/// facilities" (§2).  This class is that implementation — and its stats make
/// the warned-about fan-out measurable (benchmarked in TAB-G).
///
/// Usage: declare composite edges (component -> dependent).  Whenever a new
/// version of a component is created, the policy creates a new version of
/// every registered dependent, transitively, each exactly once per wave.
class PercolationPolicy {
 public:
  /// Registers its trigger on `db`; `db` must outlive the policy.
  explicit PercolationPolicy(Database& db);
  ~PercolationPolicy();

  PercolationPolicy(const PercolationPolicy&) = delete;
  PercolationPolicy& operator=(const PercolationPolicy&) = delete;

  /// Declares that `dependent` (a composite) contains `component`: new
  /// versions of the component percolate into new versions of the
  /// dependent.
  void Declare(ObjectId component, ObjectId dependent);

  /// Removes a declaration.
  void Undeclare(ObjectId component, ObjectId dependent);

  /// Versions created by percolation (not by the user) since construction.
  uint64_t percolated_versions() const { return percolated_; }

  /// Dependents registered for a component (for tests).
  std::vector<ObjectId> DependentsOf(ObjectId component) const;

 private:
  void OnNewVersion(Database& db, const TriggerInfo& info);

  Database& db_;
  uint64_t trigger_handle_;
  std::multimap<uint64_t, uint64_t> edges_;  // component oid -> dependent oid.
  uint64_t percolated_ = 0;

  // Wave state: objects already versioned in the current percolation wave
  // (prevents cycles and duplicate versions of shared dependents).
  int wave_depth_ = 0;
  std::set<uint64_t> wave_visited_;
};

}  // namespace ode

#endif  // ODE_POLICY_PERCOLATION_H_
