#include "policy/context.h"

#include "util/byte_buffer.h"

namespace ode {

constexpr char Context::kTypeName[];

std::string Context::EncodePayload() const {
  BufferWriter w;
  w.WriteString(Slice(name_));
  w.WriteVarint64(defaults_.size());
  for (const auto& [oid, vnum] : defaults_) {
    w.WriteU64(oid);
    w.WriteU32(vnum);
  }
  return w.Release();
}

StatusOr<Context> Context::Create(Database& db, std::string name) {
  auto type_id = db.RegisterType(kTypeName);
  if (!type_id.ok()) return type_id.status();
  Context context(&db, ObjectId{});
  context.name_ = std::move(name);
  auto vid = db.PnewRaw(*type_id, Slice(context.EncodePayload()));
  if (!vid.ok()) return vid.status();
  context.oid_ = vid->oid;
  return context;
}

StatusOr<Context> Context::Load(Database& db, ObjectId oid) {
  auto payload = db.ReadLatest(oid);
  if (!payload.ok()) return payload.status();
  Context context(&db, oid);
  BufferReader r{Slice(*payload)};
  ODE_RETURN_IF_ERROR(r.ReadString(&context.name_));
  uint64_t count = 0;
  ODE_RETURN_IF_ERROR(r.ReadVarint64(&count));
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t oid_value = 0;
    VersionNum vnum = kNoVersion;
    ODE_RETURN_IF_ERROR(r.ReadU64(&oid_value));
    ODE_RETURN_IF_ERROR(r.ReadU32(&vnum));
    context.defaults_[oid_value] = vnum;
  }
  return context;
}

Status Context::Persist() {
  return db_->UpdateLatest(oid_, Slice(EncodePayload()));
}

Status Context::SetDefault(VersionId vid) {
  auto exists = db_->VersionExists(vid);
  if (!exists.ok()) return exists.status();
  if (!*exists) return Status::NotFound("no such version");
  defaults_[vid.oid.value] = vid.vnum;
  return Persist();
}

Status Context::ClearDefault(ObjectId oid) {
  if (defaults_.erase(oid.value) == 0) {
    return Status::NotFound("no default for object");
  }
  return Persist();
}

std::optional<VersionNum> Context::DefaultFor(ObjectId oid) const {
  auto it = defaults_.find(oid.value);
  if (it == defaults_.end()) return std::nullopt;
  return it->second;
}

StatusOr<VersionId> ContextStack::Resolve(ObjectId oid) const {
  for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
    std::optional<VersionNum> vnum = it->DefaultFor(oid);
    if (vnum.has_value()) {
      const VersionId vid{oid, *vnum};
      auto exists = db_->VersionExists(vid);
      if (!exists.ok()) return exists.status();
      if (*exists) return vid;
      // A stale default (version since deleted) falls through to the next
      // context.
    }
  }
  return db_->Latest(oid);
}

StatusOr<std::string> ContextStack::Read(ObjectId oid) const {
  auto vid = Resolve(oid);
  if (!vid.ok()) return vid.status();
  return db_->ReadVersion(*vid);
}

}  // namespace ode
