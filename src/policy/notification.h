#ifndef ODE_POLICY_NOTIFICATION_H_
#define ODE_POLICY_NOTIFICATION_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "core/database.h"
#include "core/ids.h"

namespace ode {

/// Change notification as a policy over triggers.
///
/// The paper explicitly declines a built-in notification facility "because
/// users can implement such a facility using O++ triggers" (§1).  This class
/// is that user implementation: it registers one trigger per event kind and
/// routes deliveries to per-object and per-type subscribers.
class ChangeNotifier {
 public:
  struct Event {
    TriggerEvent kind;
    VersionId vid;
    uint32_t type_id;
    VersionId derived_from;  // kNewVersion only.
  };
  using Callback = std::function<void(const Event&)>;

  /// Registers triggers on `db`; `db` must outlive the notifier.
  explicit ChangeNotifier(Database& db);
  ~ChangeNotifier();

  ChangeNotifier(const ChangeNotifier&) = delete;
  ChangeNotifier& operator=(const ChangeNotifier&) = delete;

  /// Delivers every change affecting object `oid`.
  uint64_t Subscribe(ObjectId oid, Callback callback);

  /// Delivers every change affecting any object of `type_id`.
  uint64_t SubscribeType(uint32_t type_id, Callback callback);

  void Unsubscribe(uint64_t handle);

  uint64_t delivered_count() const { return delivered_; }
  size_t subscriber_count() const {
    return object_subs_.size() + type_subs_.size();
  }

 private:
  struct Subscriber {
    uint64_t handle;
    Callback callback;
  };

  void Dispatch(const TriggerInfo& info);

  Database& db_;
  std::vector<uint64_t> trigger_handles_;
  std::multimap<uint64_t, Subscriber> object_subs_;  // By oid value.
  std::multimap<uint32_t, Subscriber> type_subs_;    // By type id.
  uint64_t next_handle_ = 1;
  uint64_t delivered_ = 0;
};

}  // namespace ode

#endif  // ODE_POLICY_NOTIFICATION_H_
