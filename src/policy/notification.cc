#include "policy/notification.h"

namespace ode {

ChangeNotifier::ChangeNotifier(Database& db) : db_(db) {
  for (TriggerEvent event :
       {TriggerEvent::kPnew, TriggerEvent::kNewVersion, TriggerEvent::kUpdate,
        TriggerEvent::kDeleteVersion, TriggerEvent::kDeleteObject}) {
    trigger_handles_.push_back(db_.RegisterTrigger(
        event,
        [this](Database&, const TriggerInfo& info) { Dispatch(info); }));
  }
}

ChangeNotifier::~ChangeNotifier() {
  for (uint64_t handle : trigger_handles_) {
    db_.UnregisterTrigger(handle);
  }
}

uint64_t ChangeNotifier::Subscribe(ObjectId oid, Callback callback) {
  const uint64_t handle = next_handle_++;
  object_subs_.emplace(oid.value, Subscriber{handle, std::move(callback)});
  return handle;
}

uint64_t ChangeNotifier::SubscribeType(uint32_t type_id, Callback callback) {
  const uint64_t handle = next_handle_++;
  type_subs_.emplace(type_id, Subscriber{handle, std::move(callback)});
  return handle;
}

void ChangeNotifier::Unsubscribe(uint64_t handle) {
  for (auto it = object_subs_.begin(); it != object_subs_.end(); ++it) {
    if (it->second.handle == handle) {
      object_subs_.erase(it);
      return;
    }
  }
  for (auto it = type_subs_.begin(); it != type_subs_.end(); ++it) {
    if (it->second.handle == handle) {
      type_subs_.erase(it);
      return;
    }
  }
}

void ChangeNotifier::Dispatch(const TriggerInfo& info) {
  const Event event{info.event, info.vid, info.type_id, info.derived_from};
  auto [obj_begin, obj_end] = object_subs_.equal_range(info.vid.oid.value);
  for (auto it = obj_begin; it != obj_end; ++it) {
    it->second.callback(event);
    ++delivered_;
  }
  auto [type_begin, type_end] = type_subs_.equal_range(info.type_id);
  for (auto it = type_begin; it != type_end; ++it) {
    it->second.callback(event);
    ++delivered_;
  }
}

}  // namespace ode
