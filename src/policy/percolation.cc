#include "policy/percolation.h"

#include "util/logging.h"

namespace ode {

PercolationPolicy::PercolationPolicy(Database& db) : db_(db) {
  trigger_handle_ = db_.RegisterTrigger(
      TriggerEvent::kNewVersion,
      [this](Database& d, const TriggerInfo& info) { OnNewVersion(d, info); });
}

PercolationPolicy::~PercolationPolicy() {
  db_.UnregisterTrigger(trigger_handle_);
}

void PercolationPolicy::Declare(ObjectId component, ObjectId dependent) {
  edges_.emplace(component.value, dependent.value);
}

void PercolationPolicy::Undeclare(ObjectId component, ObjectId dependent) {
  auto [begin, end] = edges_.equal_range(component.value);
  for (auto it = begin; it != end; ++it) {
    if (it->second == dependent.value) {
      edges_.erase(it);
      return;
    }
  }
}

std::vector<ObjectId> PercolationPolicy::DependentsOf(
    ObjectId component) const {
  std::vector<ObjectId> dependents;
  auto [begin, end] = edges_.equal_range(component.value);
  for (auto it = begin; it != end; ++it) {
    dependents.push_back(ObjectId{it->second});
  }
  return dependents;
}

void PercolationPolicy::OnNewVersion(Database& db, const TriggerInfo& info) {
  // The trigger fires re-entrantly for the versions this policy itself
  // creates; the wave bookkeeping caps each object at one new version per
  // user-initiated wave (and breaks composite cycles).
  const bool top_level = (wave_depth_ == 0);
  if (top_level) {
    wave_visited_.clear();
    wave_visited_.insert(info.vid.oid.value);
  }
  ++wave_depth_;
  auto [begin, end] = edges_.equal_range(info.vid.oid.value);
  for (auto it = begin; it != end; ++it) {
    const uint64_t dependent = it->second;
    if (!wave_visited_.insert(dependent).second) continue;  // Already done.
    auto vid = db.NewVersionOf(ObjectId{dependent});
    if (vid.ok()) {
      ++percolated_;
    } else {
      ODE_LOG_WARN << "percolation to oid " << dependent
                   << " failed: " << vid.status();
    }
  }
  --wave_depth_;
}

}  // namespace ode
