#include "policy/configuration.h"

#include "util/byte_buffer.h"

namespace ode {

constexpr char Configuration::kTypeName[];

std::string Configuration::EncodePayload() const {
  BufferWriter w;
  w.WriteString(Slice(name_));
  w.WriteVarint64(bindings_.size());
  for (const auto& [component, binding] : bindings_) {
    w.WriteString(Slice(component));
    w.WriteU8(static_cast<uint8_t>(binding.kind));
    w.WriteU64(binding.oid.value);
    w.WriteU32(binding.vnum);
  }
  return w.Release();
}

StatusOr<Configuration> Configuration::FromPayload(Database* db, ObjectId oid,
                                                   const Slice& payload) {
  Configuration config(db, oid);
  BufferReader r(payload);
  ODE_RETURN_IF_ERROR(r.ReadString(&config.name_));
  uint64_t count = 0;
  ODE_RETURN_IF_ERROR(r.ReadVarint64(&count));
  for (uint64_t i = 0; i < count; ++i) {
    std::string component;
    ODE_RETURN_IF_ERROR(r.ReadString(&component));
    uint8_t kind = 0;
    Binding binding{};
    ODE_RETURN_IF_ERROR(r.ReadU8(&kind));
    if (kind > static_cast<uint8_t>(BindingKind::kDynamic)) {
      return Status::Corruption("bad binding kind");
    }
    binding.kind = static_cast<BindingKind>(kind);
    ODE_RETURN_IF_ERROR(r.ReadU64(&binding.oid.value));
    ODE_RETURN_IF_ERROR(r.ReadU32(&binding.vnum));
    config.bindings_.emplace(std::move(component), binding);
  }
  return config;
}

StatusOr<Configuration> Configuration::Create(Database& db, std::string name) {
  auto type_id = db.RegisterType(kTypeName);
  if (!type_id.ok()) return type_id.status();
  Configuration config(&db, ObjectId{});
  config.name_ = std::move(name);
  auto vid = db.PnewRaw(*type_id, Slice(config.EncodePayload()));
  if (!vid.ok()) return vid.status();
  config.oid_ = vid->oid;
  return config;
}

StatusOr<Configuration> Configuration::Load(Database& db, ObjectId oid) {
  auto payload = db.ReadLatest(oid);
  if (!payload.ok()) return payload.status();
  return FromPayload(&db, oid, Slice(*payload));
}

Status Configuration::Persist() {
  return db_->UpdateLatest(oid_, Slice(EncodePayload()));
}

Status Configuration::BindStatic(const std::string& component, VersionId vid) {
  auto exists = db_->VersionExists(vid);
  if (!exists.ok()) return exists.status();
  if (!*exists) return Status::NotFound("no such version to bind");
  bindings_[component] = Binding{BindingKind::kStatic, vid.oid, vid.vnum};
  return Persist();
}

Status Configuration::BindDynamic(const std::string& component, ObjectId oid) {
  auto exists = db_->ObjectExists(oid);
  if (!exists.ok()) return exists.status();
  if (!*exists) return Status::NotFound("no such object to bind");
  bindings_[component] = Binding{BindingKind::kDynamic, oid, kNoVersion};
  return Persist();
}

Status Configuration::Unbind(const std::string& component) {
  if (bindings_.erase(component) == 0) {
    return Status::NotFound("component not bound: " + component);
  }
  return Persist();
}

StatusOr<VersionId> Configuration::Resolve(const std::string& component) const {
  auto it = bindings_.find(component);
  if (it == bindings_.end()) {
    return Status::NotFound("component not bound: " + component);
  }
  const Binding& binding = it->second;
  if (binding.kind == BindingKind::kStatic) {
    return VersionId{binding.oid, binding.vnum};
  }
  return db_->Latest(binding.oid);
}

StatusOr<std::map<std::string, VersionId>> Configuration::ResolveAll() const {
  std::map<std::string, VersionId> resolved;
  for (const auto& [component, binding] : bindings_) {
    (void)binding;
    auto vid = Resolve(component);
    if (!vid.ok()) return vid.status();
    resolved[component] = *vid;
  }
  return resolved;
}

Status Configuration::Freeze() {
  for (auto& [component, binding] : bindings_) {
    if (binding.kind == BindingKind::kDynamic) {
      auto latest = db_->Latest(binding.oid);
      if (!latest.ok()) return latest.status();
      binding.kind = BindingKind::kStatic;
      binding.vnum = latest->vnum;
    }
  }
  return Persist();
}

}  // namespace ode
