#include "policy/migrate.h"

#include <optional>
#include <vector>

#include "core/cursor.h"
#include "util/byte_buffer.h"

namespace ode {
namespace migrate {

namespace {

constexpr uint32_t kFormatVersion = 1;

struct ExportedVersion {
  VersionNum vnum;
  VersionNum derived_from;
  uint64_t created_ts;
  std::string payload;
};

/// Reverse type lookup: id -> name (the names tree maps name -> id).
StatusOr<std::string> TypeNameOf(Database& db, uint32_t type_id) {
  std::optional<std::string> found;
  TypeCursor types(db);
  for (; types.Valid(); types.Next()) {
    if (types.id() == type_id) {
      found = types.name();
      break;
    }
  }
  ODE_RETURN_IF_ERROR(types.status());
  if (!found.has_value()) {
    return Status::NotFound("type id " + std::to_string(type_id) +
                            " has no registered name");
  }
  return *found;
}

}  // namespace

StatusOr<std::string> ExportObject(Database& db, ObjectId oid) {
  auto header = db.Header(oid);
  if (!header.ok()) return header.status();
  auto type_name = TypeNameOf(db, header->type_id);
  if (!type_name.ok()) return type_name.status();

  std::vector<ExportedVersion> versions;
  VersionCursor scan(db, oid);
  for (; scan.Valid(); scan.Next()) {
    versions.push_back(ExportedVersion{scan.vid().vnum,
                                       scan.meta().derived_from,
                                       scan.meta().created_ts, std::string()});
  }
  ODE_RETURN_IF_ERROR(scan.status());
  for (ExportedVersion& version : versions) {
    auto payload = db.ReadVersion(VersionId{oid, version.vnum});
    if (!payload.ok()) return payload.status();
    version.payload = std::move(*payload);
  }

  BufferWriter w;
  w.WriteU32(kFormatVersion);
  w.WriteString(Slice(*type_name));
  w.WriteVarint64(versions.size());
  for (const ExportedVersion& version : versions) {
    w.WriteU32(version.vnum);
    w.WriteU32(version.derived_from);
    w.WriteU64(version.created_ts);
    w.WriteString(Slice(version.payload));
  }
  return w.Release();
}

StatusOr<ImportResult> ImportObject(Database& db, const Slice& exported) {
  BufferReader r(exported);
  uint32_t format = 0;
  ODE_RETURN_IF_ERROR(r.ReadU32(&format));
  if (format != kFormatVersion) {
    return Status::NotSupported("unknown export format " +
                                std::to_string(format));
  }
  std::string type_name;
  ODE_RETURN_IF_ERROR(r.ReadString(&type_name));
  uint64_t count = 0;
  ODE_RETURN_IF_ERROR(r.ReadVarint64(&count));
  if (count == 0) return Status::InvalidArgument("export holds no versions");
  std::vector<ExportedVersion> versions;
  versions.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    ExportedVersion version;
    ODE_RETURN_IF_ERROR(r.ReadU32(&version.vnum));
    ODE_RETURN_IF_ERROR(r.ReadU32(&version.derived_from));
    ODE_RETURN_IF_ERROR(r.ReadU64(&version.created_ts));
    ODE_RETURN_IF_ERROR(r.ReadString(&version.payload));
    versions.push_back(std::move(version));
  }

  auto type_id = db.RegisterType(type_name);
  if (!type_id.ok()) return type_id.status();

  const bool own_txn = !db.InTransaction();
  if (own_txn) ODE_RETURN_IF_ERROR(db.Begin());
  ImportResult result;
  Status s = [&]() -> Status {
    // First version establishes the object.
    auto first = db.PnewRaw(*type_id, Slice(versions[0].payload));
    if (!first.ok()) return first.status();
    result.oid = first->oid;
    result.vnum_map[versions[0].vnum] = first->vnum;
    // Remaining versions in temporal order; the derivation parent always
    // precedes its children temporally, so it is already mapped.
    for (size_t i = 1; i < versions.size(); ++i) {
      const ExportedVersion& version = versions[i];
      StatusOr<VersionId> created = Status::Internal("unset");
      if (version.derived_from == kNoVersion) {
        created = db.NewDetachedVersion(result.oid, Slice(version.payload));
      } else {
        auto mapped = result.vnum_map.find(version.derived_from);
        if (mapped == result.vnum_map.end()) {
          return Status::Corruption(
              "export references unexported parent v" +
              std::to_string(version.derived_from));
        }
        created = db.NewVersionFrom(VersionId{result.oid, mapped->second});
        if (created.ok()) {
          ODE_RETURN_IF_ERROR(
              db.UpdateVersion(*created, Slice(version.payload)));
        }
      }
      if (!created.ok()) return created.status();
      result.vnum_map[version.vnum] = created->vnum;
    }
    return Status::OK();
  }();
  if (own_txn) {
    if (s.ok()) {
      ODE_RETURN_IF_ERROR(db.Commit());
    } else {
      Status abort_status = db.Abort();
      if (!abort_status.ok()) return abort_status;
    }
  }
  if (!s.ok()) return s;
  return result;
}

StatusOr<ImportResult> CopyObject(Database& src, ObjectId oid, Database& dst) {
  auto exported = ExportObject(src, oid);
  if (!exported.ok()) return exported.status();
  return ImportObject(dst, Slice(*exported));
}

}  // namespace migrate
}  // namespace ode
