#ifndef ODE_POLICY_CONFIGURATION_H_
#define ODE_POLICY_CONFIGURATION_H_

#include <map>
#include <string>
#include <vector>

#include "core/database.h"
#include "core/ids.h"
#include "util/statusor.h"

namespace ode {

/// A configuration: a named composition of specific versions of component
/// objects (§5 of the paper, after Katz et al.).  Each named component is
/// bound either
///   - statically: to one pinned VersionId (early binding), or
///   - dynamically: to an ObjectId, resolving to its latest version at each
///     use (late binding).
///
/// Configurations are themselves persistent, versionable objects of type
/// "ode.Configuration" — exactly the paper's point that configurations need
/// no new primitive: they are ordinary objects holding version references.
/// Mutators persist immediately (each is one transaction unless grouped).
class Configuration {
 public:
  enum class BindingKind : uint8_t { kStatic = 0, kDynamic = 1 };

  struct Binding {
    BindingKind kind;
    ObjectId oid;          // Always set.
    VersionNum vnum = kNoVersion;  // kStatic only.
  };

  /// Creates a new, empty, persistent configuration.
  static StatusOr<Configuration> Create(Database& db, std::string name);

  /// Loads an existing configuration by object id.
  static StatusOr<Configuration> Load(Database& db, ObjectId oid);

  /// Pins `component` to the specific version `vid`.
  Status BindStatic(const std::string& component, VersionId vid);

  /// Binds `component` to whatever is the latest version of `oid` at
  /// resolve time.
  Status BindDynamic(const std::string& component, ObjectId oid);

  /// Removes a component binding.
  Status Unbind(const std::string& component);

  /// Resolves one component to a concrete version.
  StatusOr<VersionId> Resolve(const std::string& component) const;

  /// Resolves every component.
  StatusOr<std::map<std::string, VersionId>> ResolveAll() const;

  /// Converts every dynamic binding into a static binding at its current
  /// resolution — "releasing" the configuration.
  Status Freeze();

  const std::string& name() const { return name_; }
  ObjectId oid() const { return oid_; }
  const std::map<std::string, Binding>& bindings() const { return bindings_; }

  /// The persistent type name configurations are stored under.
  static constexpr char kTypeName[] = "ode.Configuration";

 private:
  Configuration(Database* db, ObjectId oid) : db_(db), oid_(oid) {}

  Status Persist();
  static StatusOr<Configuration> FromPayload(Database* db, ObjectId oid,
                                             const Slice& payload);
  std::string EncodePayload() const;

  Database* db_;
  ObjectId oid_;
  std::string name_;
  std::map<std::string, Binding> bindings_;
};

}  // namespace ode

#endif  // ODE_POLICY_CONFIGURATION_H_
