#ifndef ODE_POLICY_CONTEXT_H_
#define ODE_POLICY_CONTEXT_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/database.h"
#include "core/ids.h"
#include "util/statusor.h"

namespace ode {

/// A context: a set of per-object *default versions* (§5, after
/// Dittrich/Lorie and ORION).  Dereferencing an object id "in a context"
/// yields the context's chosen version rather than the latest.
///
/// Contexts are persistent objects of type "ode.Context" so a team can share
/// them; like Configuration they are a pure policy over the kernel.
class Context {
 public:
  static StatusOr<Context> Create(Database& db, std::string name);
  static StatusOr<Context> Load(Database& db, ObjectId oid);

  /// Sets this context's default version for `vid.oid` to `vid.vnum`.
  Status SetDefault(VersionId vid);

  /// Removes the default for `oid`.
  Status ClearDefault(ObjectId oid);

  /// This context's default for `oid`, if any.
  std::optional<VersionNum> DefaultFor(ObjectId oid) const;

  const std::string& name() const { return name_; }
  ObjectId oid() const { return oid_; }
  size_t size() const { return defaults_.size(); }

  static constexpr char kTypeName[] = "ode.Context";

 private:
  friend class ContextStack;
  Context(Database* db, ObjectId oid) : db_(db), oid_(oid) {}

  Status Persist();
  std::string EncodePayload() const;

  Database* db_;
  ObjectId oid_;
  std::string name_;
  std::map<uint64_t, VersionNum> defaults_;  // oid value -> default vnum.
};

/// A stack of contexts searched top-down, falling back to the latest
/// version — the standard "current context" discipline layered over
/// generic references.
class ContextStack {
 public:
  explicit ContextStack(Database* db) : db_(db) {}

  void Push(Context context) { stack_.push_back(std::move(context)); }
  void Pop() {
    if (!stack_.empty()) stack_.pop_back();
  }
  size_t depth() const { return stack_.size(); }

  /// Resolves `oid` through the context stack: the topmost context with a
  /// default for it wins; with no default anywhere, the latest version.
  StatusOr<VersionId> Resolve(ObjectId oid) const;

  /// Resolve + read, the context-aware counterpart of ReadLatest.
  StatusOr<std::string> Read(ObjectId oid) const;

 private:
  Database* db_;
  std::vector<Context> stack_;
};

}  // namespace ode

#endif  // ODE_POLICY_CONTEXT_H_
