#ifndef ODE_POLICY_EQUIVALENCE_H_
#define ODE_POLICY_EQUIVALENCE_H_

#include <map>
#include <memory>
#include <vector>

#include "core/database.h"
#include "core/ids.h"
#include "util/statusor.h"

namespace ode {

/// Equivalences: "different views of an object" — the third leg of the
/// Katz framework (version histories, configurations, equivalences) the
/// paper's §7 says "can easily be implemented by using the facilities
/// provided in O++".  This is that implementation.
///
/// An equivalence class groups objects that represent the same design
/// entity in different representations (e.g., the layout view, netlist
/// view, and behavioral view of one adder).  Classes are disjoint
/// (union-find semantics); state persists in a singleton
/// "ode.Equivalences" object.
class Equivalences {
 public:
  static StatusOr<std::unique_ptr<Equivalences>> Open(Database& db);

  Equivalences(const Equivalences&) = delete;
  Equivalences& operator=(const Equivalences&) = delete;

  /// Declares `a` and `b` views of the same entity (merging their classes).
  Status Relate(ObjectId a, ObjectId b);

  /// Removes `oid` from its class (it becomes a singleton again).
  Status Dissociate(ObjectId oid);

  /// True if the two objects are views of the same entity.
  bool Equivalent(ObjectId a, ObjectId b) const;

  /// Every member of `oid`'s class, ascending, including `oid` itself.
  std::vector<ObjectId> ClassOf(ObjectId oid) const;

  /// The other views of `oid` (its class minus itself).
  std::vector<ObjectId> ViewsOf(ObjectId oid) const;

  /// Number of non-singleton classes.
  size_t class_count() const;

  static constexpr char kTypeName[] = "ode.Equivalences";

 private:
  explicit Equivalences(Database* db) : db_(db) {}

  Status Persist();
  std::string EncodePayload() const;
  Status DecodePayload(const Slice& payload);
  uint64_t Find(uint64_t oid) const;

  Database* db_;
  ObjectId state_oid_;
  // Union-find parent map; absent key = singleton.  Stored flattened.
  std::map<uint64_t, uint64_t> parent_;
};

}  // namespace ode

#endif  // ODE_POLICY_EQUIVALENCE_H_
