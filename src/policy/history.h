#ifndef ODE_POLICY_HISTORY_H_
#define ODE_POLICY_HISTORY_H_

#include <optional>
#include <string>
#include <vector>

#include "core/database.h"
#include "core/ids.h"
#include "util/statusor.h"

namespace ode {

/// Analytics over the automatically maintained version relationships —
/// the derived-from tree and the temporal chain (§4.3).  All functions are
/// policies in the paper's sense: they are built purely on the traversal
/// primitives, never on private state.
namespace history {

/// Versions from `vid` back to its derivation root (inclusive), i.e., the
/// paper's "version history" (e.g., v3, v1, v0).
StatusOr<std::vector<VersionId>> PathToRoot(Database& db, VersionId vid);

/// Versions of `oid` with no derived versions — "each leaf of the tree
/// represents the most up-to-date version of an alternative design".
StatusOr<std::vector<VersionId>> Leaves(Database& db, ObjectId oid);

/// Root versions of `oid`'s derivation forest (derived_from == none).
StatusOr<std::vector<VersionId>> Roots(Database& db, ObjectId oid);

/// Sibling versions derived from the same parent as `vid` (the paper's
/// *alternatives*), excluding `vid` itself.
StatusOr<std::vector<VersionId>> Alternatives(Database& db, VersionId vid);

/// Nearest common derivation ancestor of `a` and `b` (same object), if any.
StatusOr<std::optional<VersionId>> CommonAncestor(Database& db, VersionId a,
                                                  VersionId b);

/// Number of derived-from edges from `vid` up to its root.
StatusOr<uint32_t> Depth(Database& db, VersionId vid);

/// `n` derived-from steps back from `vid` ("the version three derivations
/// ago") — the paper notes such history accessors are macro-expressible
/// over the primitives (§5); these are the library form.  Empty when the
/// history is shorter than `n`.
StatusOr<std::optional<VersionId>> NthDprevious(Database& db, VersionId vid,
                                                uint32_t n);

/// `n` temporal steps back from `vid`.
StatusOr<std::optional<VersionId>> NthTprevious(Database& db, VersionId vid,
                                                uint32_t n);

/// Deletes `vid` and every version transitively derived from it — pruning a
/// whole line of development (alternative) from the design history.  The
/// temporal chain of the survivors stays intact.  Returns the number of
/// versions deleted.  Runs in one transaction.
StatusOr<uint32_t> DeleteSubtree(Database& db, VersionId vid);

/// One node of a rendered derivation tree.
struct GraphNode {
  VersionId vid;
  std::vector<GraphNode> children;
};

/// The whole derivation forest of `oid` plus the temporal order, suitable
/// for printing or structural assertions.
struct VersionGraph {
  std::vector<GraphNode> forest;          // Derived-from trees.
  std::vector<VersionId> temporal_order;  // Creation order.
  VersionId latest;
};

StatusOr<VersionGraph> Collect(Database& db, ObjectId oid);

/// ASCII rendering of Collect()'s result, e.g.:
///
///   object 7 (latest: v3)
///   derived-from tree:
///     v1
///     +- v2
///     +- v3
///   temporal chain: v1 -> v2 -> v3
std::string Render(const VersionGraph& graph);

/// Convenience: Collect + Render.
StatusOr<std::string> RenderGraph(Database& db, ObjectId oid);

}  // namespace history
}  // namespace ode

#endif  // ODE_POLICY_HISTORY_H_
