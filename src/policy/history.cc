#include "policy/history.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace ode {
namespace history {

StatusOr<std::vector<VersionId>> PathToRoot(Database& db, VersionId vid) {
  std::vector<VersionId> path;
  VersionId current = vid;
  while (true) {
    path.push_back(current);
    auto prev = db.Dprevious(current);
    if (!prev.ok()) return prev.status();
    if (!prev->has_value()) break;
    current = prev->value();
    if (path.size() > 1000000) {
      return Status::Corruption("derivation cycle");
    }
  }
  return path;
}

StatusOr<std::vector<VersionId>> Roots(Database& db, ObjectId oid) {
  auto versions = db.VersionsOf(oid);
  if (!versions.ok()) return versions.status();
  std::vector<VersionId> roots;
  for (VersionId vid : *versions) {
    auto meta = db.Meta(vid);
    if (!meta.ok()) return meta.status();
    if (meta->derived_from == kNoVersion) roots.push_back(vid);
  }
  return roots;
}

StatusOr<std::vector<VersionId>> Leaves(Database& db, ObjectId oid) {
  auto versions = db.VersionsOf(oid);
  if (!versions.ok()) return versions.status();
  // A version is a leaf iff nothing lists it as derived_from.
  std::set<VersionNum> parents;
  for (VersionId vid : *versions) {
    auto meta = db.Meta(vid);
    if (!meta.ok()) return meta.status();
    if (meta->derived_from != kNoVersion) parents.insert(meta->derived_from);
  }
  std::vector<VersionId> leaves;
  for (VersionId vid : *versions) {
    if (parents.count(vid.vnum) == 0) leaves.push_back(vid);
  }
  return leaves;
}

StatusOr<std::vector<VersionId>> Alternatives(Database& db, VersionId vid) {
  auto prev = db.Dprevious(vid);
  if (!prev.ok()) return prev.status();
  std::vector<VersionId> siblings;
  if (!prev->has_value()) {
    // Root version: its alternatives are the other roots.
    auto roots = Roots(db, vid.oid);
    if (!roots.ok()) return roots.status();
    for (VersionId root : *roots) {
      if (root != vid) siblings.push_back(root);
    }
    return siblings;
  }
  auto children = db.Dnext(prev->value());
  if (!children.ok()) return children.status();
  for (VersionId child : *children) {
    if (child != vid) siblings.push_back(child);
  }
  return siblings;
}

StatusOr<std::optional<VersionId>> CommonAncestor(Database& db, VersionId a,
                                                  VersionId b) {
  if (a.oid != b.oid) {
    return Status::InvalidArgument("versions belong to different objects");
  }
  auto path_a = PathToRoot(db, a);
  if (!path_a.ok()) return path_a.status();
  std::set<VersionNum> ancestors;
  for (VersionId vid : *path_a) ancestors.insert(vid.vnum);
  auto path_b = PathToRoot(db, b);
  if (!path_b.ok()) return path_b.status();
  for (VersionId vid : *path_b) {
    if (ancestors.count(vid.vnum) > 0) return std::optional<VersionId>(vid);
  }
  return std::optional<VersionId>();
}

StatusOr<uint32_t> Depth(Database& db, VersionId vid) {
  auto path = PathToRoot(db, vid);
  if (!path.ok()) return path.status();
  return static_cast<uint32_t>(path->size() - 1);
}

StatusOr<uint32_t> DeleteSubtree(Database& db, VersionId vid) {
  // Collect the subtree bottom-up (children before parents) so each
  // PdeleteVersion never needs to re-parent within the doomed set.
  std::vector<VersionId> order;
  std::vector<VersionId> stack = {vid};
  while (!stack.empty()) {
    VersionId current = stack.back();
    stack.pop_back();
    order.push_back(current);
    auto children = db.Dnext(current);
    if (!children.ok()) return children.status();
    for (VersionId child : *children) stack.push_back(child);
    if (order.size() > 1000000) return Status::Corruption("derivation cycle");
  }
  const bool own_txn = !db.InTransaction();
  if (own_txn) ODE_RETURN_IF_ERROR(db.Begin());
  Status s = Status::OK();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    s = db.PdeleteVersion(*it);
    if (!s.ok()) break;
  }
  if (own_txn) {
    if (s.ok()) {
      ODE_RETURN_IF_ERROR(db.Commit());
    } else {
      Status abort_status = db.Abort();
      if (!abort_status.ok()) return abort_status;
    }
  }
  if (!s.ok()) return s;
  return static_cast<uint32_t>(order.size());
}

StatusOr<std::optional<VersionId>> NthDprevious(Database& db, VersionId vid,
                                                uint32_t n) {
  VersionId current = vid;
  for (uint32_t i = 0; i < n; ++i) {
    auto prev = db.Dprevious(current);
    if (!prev.ok()) return prev.status();
    if (!prev->has_value()) return std::optional<VersionId>();
    current = prev->value();
  }
  return std::optional<VersionId>(current);
}

StatusOr<std::optional<VersionId>> NthTprevious(Database& db, VersionId vid,
                                                uint32_t n) {
  VersionId current = vid;
  for (uint32_t i = 0; i < n; ++i) {
    auto prev = db.Tprevious(current);
    if (!prev.ok()) return prev.status();
    if (!prev->has_value()) return std::optional<VersionId>();
    current = prev->value();
  }
  return std::optional<VersionId>(current);
}

StatusOr<VersionGraph> Collect(Database& db, ObjectId oid) {
  VersionGraph graph;
  auto versions = db.VersionsOf(oid);
  if (!versions.ok()) return versions.status();
  graph.temporal_order = *versions;
  auto latest = db.Latest(oid);
  if (!latest.ok()) return latest.status();
  graph.latest = *latest;

  std::map<VersionNum, std::vector<VersionNum>> children;
  std::vector<VersionNum> roots;
  for (VersionId vid : *versions) {
    auto meta = db.Meta(vid);
    if (!meta.ok()) return meta.status();
    if (meta->derived_from == kNoVersion) {
      roots.push_back(vid.vnum);
    } else {
      children[meta->derived_from].push_back(vid.vnum);
    }
  }
  // Recursive tree build (iterative DFS to avoid recursion depth limits).
  struct Builder {
    const std::map<VersionNum, std::vector<VersionNum>>& children;
    ObjectId oid;
    GraphNode Build(VersionNum vnum) const {
      GraphNode node;
      node.vid = VersionId{oid, vnum};
      auto it = children.find(vnum);
      if (it != children.end()) {
        for (VersionNum child : it->second) {
          node.children.push_back(Build(child));
        }
      }
      return node;
    }
  };
  Builder builder{children, oid};
  for (VersionNum root : roots) {
    graph.forest.push_back(builder.Build(root));
  }
  return graph;
}

namespace {

void RenderNode(const GraphNode& node, const std::string& prefix, bool last,
                bool is_root, std::ostringstream& out) {
  if (is_root) {
    out << "  v" << node.vid.vnum << "\n";
  } else {
    out << prefix << (last ? "`- " : "+- ") << "v" << node.vid.vnum << "\n";
  }
  const std::string child_prefix =
      is_root ? "  " : prefix + (last ? "   " : "|  ");
  for (size_t i = 0; i < node.children.size(); ++i) {
    RenderNode(node.children[i], child_prefix, i + 1 == node.children.size(),
               false, out);
  }
}

}  // namespace

std::string Render(const VersionGraph& graph) {
  std::ostringstream out;
  out << "object " << (graph.temporal_order.empty()
                           ? 0
                           : graph.temporal_order.front().oid.value)
      << " (latest: v" << graph.latest.vnum << ")\n";
  out << "derived-from tree:\n";
  for (const GraphNode& root : graph.forest) {
    RenderNode(root, "", true, true, out);
  }
  out << "temporal chain: ";
  for (size_t i = 0; i < graph.temporal_order.size(); ++i) {
    if (i > 0) out << " -> ";
    out << "v" << graph.temporal_order[i].vnum;
  }
  out << "\n";
  return out.str();
}

StatusOr<std::string> RenderGraph(Database& db, ObjectId oid) {
  auto graph = Collect(db, oid);
  if (!graph.ok()) return graph.status();
  return Render(*graph);
}

}  // namespace history
}  // namespace ode
