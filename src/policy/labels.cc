#include "policy/labels.h"

#include "util/byte_buffer.h"
#include "util/logging.h"

namespace ode {

constexpr char VersionLabels::kTypeName[];

StatusOr<std::unique_ptr<VersionLabels>> VersionLabels::Open(Database& db) {
  auto type_id = db.RegisterType(kTypeName);
  if (!type_id.ok()) return type_id.status();
  auto labels = std::unique_ptr<VersionLabels>(new VersionLabels(&db));
  auto existing = db.ClusterScan(*type_id);
  if (!existing.ok()) return existing.status();
  if (existing->empty()) {
    auto vid = db.PnewRaw(*type_id, Slice(labels->EncodePayload()));
    if (!vid.ok()) return vid.status();
    labels->state_oid_ = vid->oid;
  } else {
    labels->state_oid_ = existing->front();
    auto payload = db.ReadLatest(labels->state_oid_);
    if (!payload.ok()) return payload.status();
    ODE_RETURN_IF_ERROR(labels->DecodePayload(Slice(*payload)));
  }
  VersionLabels* raw = labels.get();
  labels->version_trigger_ = db.RegisterTrigger(
      TriggerEvent::kDeleteVersion,
      [raw](Database&, const TriggerInfo& info) { raw->OnDelete(info); });
  labels->object_trigger_ = db.RegisterTrigger(
      TriggerEvent::kDeleteObject,
      [raw](Database&, const TriggerInfo& info) { raw->OnDelete(info); });
  return labels;
}

VersionLabels::~VersionLabels() {
  db_->UnregisterTrigger(version_trigger_);
  db_->UnregisterTrigger(object_trigger_);
}

std::string VersionLabels::EncodePayload() const {
  BufferWriter w;
  w.WriteVarint64(labels_.size());
  for (const auto& [key, tags] : labels_) {
    w.WriteU64(key.first);
    w.WriteU32(key.second);
    w.WriteVarint64(tags.size());
    for (const std::string& tag : tags) w.WriteString(Slice(tag));
  }
  return w.Release();
}

Status VersionLabels::DecodePayload(const Slice& payload) {
  labels_.clear();
  BufferReader r(payload);
  uint64_t count = 0;
  ODE_RETURN_IF_ERROR(r.ReadVarint64(&count));
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t oid = 0;
    VersionNum vnum = kNoVersion;
    uint64_t tag_count = 0;
    ODE_RETURN_IF_ERROR(r.ReadU64(&oid));
    ODE_RETURN_IF_ERROR(r.ReadU32(&vnum));
    ODE_RETURN_IF_ERROR(r.ReadVarint64(&tag_count));
    std::set<std::string> tags;
    for (uint64_t t = 0; t < tag_count; ++t) {
      std::string tag;
      ODE_RETURN_IF_ERROR(r.ReadString(&tag));
      tags.insert(std::move(tag));
    }
    labels_[{oid, vnum}] = std::move(tags);
  }
  return Status::OK();
}

Status VersionLabels::Persist() {
  return db_->UpdateLatest(state_oid_, Slice(EncodePayload()));
}

Status VersionLabels::Add(VersionId vid, const std::string& label) {
  auto exists = db_->VersionExists(vid);
  if (!exists.ok()) return exists.status();
  if (!*exists) return Status::NotFound("no such version");
  labels_[{vid.oid.value, vid.vnum}].insert(label);
  return Persist();
}

Status VersionLabels::Remove(VersionId vid, const std::string& label) {
  auto it = labels_.find({vid.oid.value, vid.vnum});
  if (it == labels_.end() || it->second.erase(label) == 0) {
    return Status::NotFound("label not present");
  }
  if (it->second.empty()) labels_.erase(it);
  return Persist();
}

std::vector<std::string> VersionLabels::LabelsOf(VersionId vid) const {
  auto it = labels_.find({vid.oid.value, vid.vnum});
  if (it == labels_.end()) return {};
  return std::vector<std::string>(it->second.begin(), it->second.end());
}

std::vector<VersionId> VersionLabels::VersionsWith(
    const std::string& label) const {
  std::vector<VersionId> result;
  for (const auto& [key, tags] : labels_) {
    if (tags.count(label) > 0) {
      result.push_back(VersionId{ObjectId{key.first}, key.second});
    }
  }
  return result;
}

std::vector<VersionId> VersionLabels::VersionsOfWith(
    ObjectId oid, const std::string& label) const {
  std::vector<VersionId> result;
  auto it = labels_.lower_bound({oid.value, 0});
  for (; it != labels_.end() && it->first.first == oid.value; ++it) {
    if (it->second.count(label) > 0) {
      result.push_back(VersionId{oid, it->first.second});
    }
  }
  return result;
}

bool VersionLabels::Has(VersionId vid, const std::string& label) const {
  auto it = labels_.find({vid.oid.value, vid.vnum});
  return it != labels_.end() && it->second.count(label) > 0;
}

void VersionLabels::OnDelete(const TriggerInfo& info) {
  bool changed = false;
  if (info.event == TriggerEvent::kDeleteVersion) {
    changed = labels_.erase({info.vid.oid.value, info.vid.vnum}) > 0;
  } else {
    // Whole object: drop every label of its versions.
    auto it = labels_.lower_bound({info.vid.oid.value, 0});
    while (it != labels_.end() && it->first.first == info.vid.oid.value) {
      it = labels_.erase(it);
      changed = true;
    }
  }
  if (changed && info.vid.oid != state_oid_) {
    Status s = Persist();
    if (!s.ok()) {
      ODE_LOG_WARN << "label cleanup persist failed: " << s;
    }
  }
}

}  // namespace ode
