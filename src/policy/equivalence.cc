#include "policy/equivalence.h"

#include <algorithm>
#include <set>

#include "util/byte_buffer.h"

namespace ode {

constexpr char Equivalences::kTypeName[];

StatusOr<std::unique_ptr<Equivalences>> Equivalences::Open(Database& db) {
  auto type_id = db.RegisterType(kTypeName);
  if (!type_id.ok()) return type_id.status();
  auto eq = std::unique_ptr<Equivalences>(new Equivalences(&db));
  auto existing = db.ClusterScan(*type_id);
  if (!existing.ok()) return existing.status();
  if (existing->empty()) {
    auto vid = db.PnewRaw(*type_id, Slice(eq->EncodePayload()));
    if (!vid.ok()) return vid.status();
    eq->state_oid_ = vid->oid;
  } else {
    eq->state_oid_ = existing->front();
    auto payload = db.ReadLatest(eq->state_oid_);
    if (!payload.ok()) return payload.status();
    ODE_RETURN_IF_ERROR(eq->DecodePayload(Slice(*payload)));
  }
  return eq;
}

std::string Equivalences::EncodePayload() const {
  BufferWriter w;
  w.WriteVarint64(parent_.size());
  for (const auto& [child, parent] : parent_) {
    w.WriteU64(child);
    w.WriteU64(parent);
  }
  return w.Release();
}

Status Equivalences::DecodePayload(const Slice& payload) {
  parent_.clear();
  BufferReader r(payload);
  uint64_t count = 0;
  ODE_RETURN_IF_ERROR(r.ReadVarint64(&count));
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t child = 0, parent = 0;
    ODE_RETURN_IF_ERROR(r.ReadU64(&child));
    ODE_RETURN_IF_ERROR(r.ReadU64(&parent));
    parent_[child] = parent;
  }
  return Status::OK();
}

Status Equivalences::Persist() {
  return db_->UpdateLatest(state_oid_, Slice(EncodePayload()));
}

uint64_t Equivalences::Find(uint64_t oid) const {
  uint64_t current = oid;
  for (int guard = 0; guard < 1000000; ++guard) {
    auto it = parent_.find(current);
    if (it == parent_.end() || it->second == current) return current;
    current = it->second;
  }
  return current;
}

Status Equivalences::Relate(ObjectId a, ObjectId b) {
  for (ObjectId oid : {a, b}) {
    auto exists = db_->ObjectExists(oid);
    if (!exists.ok()) return exists.status();
    if (!*exists) {
      return Status::NotFound("no such object: " + std::to_string(oid.value));
    }
  }
  const uint64_t root_a = Find(a.value);
  const uint64_t root_b = Find(b.value);
  if (root_a == root_b) return Status::OK();  // Already related.
  // Deterministic union: larger root joins the smaller.
  const uint64_t new_root = std::min(root_a, root_b);
  const uint64_t other = std::max(root_a, root_b);
  parent_[other] = new_root;
  parent_.try_emplace(new_root, new_root);  // Mark membership.
  return Persist();
}

Status Equivalences::Dissociate(ObjectId oid) {
  if (parent_.find(oid.value) == parent_.end()) {
    return Status::NotFound("object is not in any equivalence class");
  }
  // Group the surviving members by class (the removed object may have been
  // the root, so group by old root first, then re-root each group).
  std::map<uint64_t, std::vector<uint64_t>> groups;
  for (const auto& [member, parent] : parent_) {
    (void)parent;
    if (member != oid.value) groups[Find(member)].push_back(member);
  }
  std::map<uint64_t, uint64_t> rebuilt;
  for (const auto& [old_root, members] : groups) {
    (void)old_root;
    if (members.size() < 2) continue;  // Singletons drop out entirely.
    const uint64_t new_root =
        *std::min_element(members.begin(), members.end());
    for (uint64_t member : members) rebuilt[member] = new_root;
  }
  parent_ = std::move(rebuilt);
  return Persist();
}

bool Equivalences::Equivalent(ObjectId a, ObjectId b) const {
  if (a == b) return true;
  if (parent_.find(a.value) == parent_.end() ||
      parent_.find(b.value) == parent_.end()) {
    return false;
  }
  return Find(a.value) == Find(b.value);
}

std::vector<ObjectId> Equivalences::ClassOf(ObjectId oid) const {
  std::vector<ObjectId> members;
  if (parent_.find(oid.value) == parent_.end()) {
    members.push_back(oid);
    return members;
  }
  const uint64_t root = Find(oid.value);
  for (const auto& [member, parent] : parent_) {
    (void)parent;
    if (Find(member) == root) members.push_back(ObjectId{member});
  }
  return members;
}

std::vector<ObjectId> Equivalences::ViewsOf(ObjectId oid) const {
  std::vector<ObjectId> views;
  for (ObjectId member : ClassOf(oid)) {
    if (member != oid) views.push_back(member);
  }
  return views;
}

size_t Equivalences::class_count() const {
  std::set<uint64_t> roots;
  for (const auto& [member, parent] : parent_) {
    (void)parent;
    roots.insert(Find(member));
  }
  return roots.size();
}

}  // namespace ode
