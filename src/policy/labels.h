#ifndef ODE_POLICY_LABELS_H_
#define ODE_POLICY_LABELS_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/database.h"
#include "core/ids.h"
#include "util/statusor.h"

namespace ode {

/// Version labels: free-form tags partitioning versions by property, after
/// the "version environments" of Klahold et al. [24] which the paper cites
/// as orderings/partitions implementable over its primitives ("valid",
/// "invalid", "in-progress", "effective", ...).
///
/// Labels live in a persistent singleton object ("ode.VersionLabels").  A
/// trigger keeps them consistent with deletions: labels of deleted versions
/// disappear automatically — a concrete example of the paper's pattern of
/// building bookkeeping policies on triggers.
class VersionLabels {
 public:
  /// Loads (or creates) the label state and registers the cleanup triggers
  /// (which hold the object's address — hence the unique_ptr).  `db` must
  /// outlive the returned object.
  static StatusOr<std::unique_ptr<VersionLabels>> Open(Database& db);
  ~VersionLabels();

  VersionLabels(const VersionLabels&) = delete;
  VersionLabels& operator=(const VersionLabels&) = delete;

  /// Tags `vid` with `label` (idempotent).
  Status Add(VersionId vid, const std::string& label);

  /// Removes one tag; kNotFound if not present.
  Status Remove(VersionId vid, const std::string& label);

  /// All labels of one version (sorted).
  std::vector<std::string> LabelsOf(VersionId vid) const;

  /// All versions carrying `label` (ascending by id).
  std::vector<VersionId> VersionsWith(const std::string& label) const;

  /// Versions of `oid` carrying `label` — e.g., "the valid versions of this
  /// design".
  std::vector<VersionId> VersionsOfWith(ObjectId oid,
                                        const std::string& label) const;

  bool Has(VersionId vid, const std::string& label) const;

  static constexpr char kTypeName[] = "ode.VersionLabels";

 private:
  explicit VersionLabels(Database* db) : db_(db) {}

  Status Persist();
  std::string EncodePayload() const;
  Status DecodePayload(const Slice& payload);
  void OnDelete(const TriggerInfo& info);

  Database* db_;
  ObjectId state_oid_;
  uint64_t version_trigger_ = 0;
  uint64_t object_trigger_ = 0;
  // (oid value, vnum) -> labels.
  std::map<std::pair<uint64_t, VersionNum>, std::set<std::string>> labels_;
};

}  // namespace ode

#endif  // ODE_POLICY_LABELS_H_
