#ifndef ODE_STORAGE_BTREE_H_
#define ODE_STORAGE_BTREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/page_io.h"
#include "storage/page.h"
#include "util/slice.h"
#include "util/status.h"
#include "util/statusor.h"

namespace ode {

/// Persistent B+tree with variable-length byte-string keys and values,
/// ordered by memcmp.
///
/// Properties:
///  - One node per page.  Leaves are doubly linked for ordered scans in both
///    directions; internal nodes hold (separator key, child) entries plus a
///    leftmost child.
///  - Put() inserts or replaces.  Nodes split when full; the root grows a
///    level when it splits.
///  - Delete() removes the entry.  Emptied nodes are left in place (no merge
///    or page reclamation — the vacuum strategy of several production trees);
///    iteration and lookup skip them.
///  - The root page id is persisted in a superblock root slot, so the tree
///    is found again after reopen and root changes are WAL-covered.
///
/// The encoded entry (key + value + varint headers) must fit kMaxCellBytes so
/// a node always holds at least two entries; larger payloads belong in the
/// heap file with the tree storing the record id.
///
/// All page access goes through the caller's PageIO (i.e., the current
/// transaction), so tree mutations are atomic with everything else in the
/// transaction.
class BTree {
 public:
  /// Largest encoded cell (varint lengths + key + value).
  static constexpr uint32_t kMaxCellBytes = 1800;

  /// Opens the tree persisted in superblock root slot `root_slot`, creating
  /// an empty tree (and claiming the slot) if the slot is 0.
  static StatusOr<BTree> Open(PageIO* io, int root_slot);

  /// Inserts `key` -> `value`, replacing any existing value.
  Status Put(const Slice& key, const Slice& value);

  /// Looks up `key`.
  StatusOr<std::string> Get(const Slice& key);

  /// Removes `key`; kNotFound if absent.
  Status Delete(const Slice& key);

  /// Number of live entries (full scan).
  StatusOr<uint64_t> Count();

  /// Number of pages the tree currently occupies (all nodes, including
  /// emptied ones awaiting vacuum).
  StatusOr<uint32_t> PageCountUsed();

  /// Rebuilds the tree compactly: every entry is re-inserted into a fresh
  /// tree and all old node pages (including leaves emptied by deletions)
  /// are returned to the allocator.  Invalidates outstanding iterators.
  Status Vacuum();

  /// Frees EVERY page of the tree and zeroes its root slot, unclaiming it.
  /// The object is unusable afterwards (reopen the slot to get a fresh
  /// tree).  Used by incremental vacuum to abandon or retire a shadow tree.
  Status Drop();

  /// Height of the tree (1 = just a root leaf).
  StatusOr<uint32_t> Height();

  /// Forward/backward cursor.  Iterators are invalidated by any tree
  /// mutation; keys and values are copied out, so reading them is safe
  /// regardless.
  class Iterator {
   public:
    bool Valid() const { return valid_; }
    const std::string& key() const { return key_; }
    const std::string& value() const { return value_; }
    Status status() const { return status_; }

    /// Positions at the first entry >= `target`.
    void Seek(const Slice& target);
    /// Positions at the last entry <= `target`.
    void SeekForPrev(const Slice& target);
    void SeekToFirst();
    void SeekToLast();
    void Next();
    void Prev();

   private:
    friend class BTree;
    Iterator(PageIO* io, PageId root) : io_(io), root_(root) {}

    /// Loads entry `index` of leaf `leaf` into key_/value_.
    void LoadCurrent();
    /// Advances to the next non-empty leaf (direction +1/-1), or invalidates.
    void StepLeaf(int direction);

    PageIO* io_;
    PageId root_;
    PageId leaf_ = kInvalidPageId;
    int index_ = 0;
    /// Leaf transitions since the last Seek*.  A chain longer than the
    /// database has pages means the sibling links cycle (corruption); the
    /// bound makes a full scan over a corrupted tree terminate with a typed
    /// error instead of looping forever.
    uint64_t leaf_steps_ = 0;
    bool valid_ = false;
    std::string key_;
    std::string value_;
    Status status_;
  };

  Iterator NewIterator() { return Iterator(io_, root_); }

  PageId root() const { return root_; }

 private:
  BTree(PageIO* io, int root_slot, PageId root)
      : io_(io), root_slot_(root_slot), root_(root) {}

  /// Descends to the leaf that should contain `key`; fills `path` with the
  /// page ids from root to leaf (inclusive).
  Status DescendToLeaf(const Slice& key, std::vector<PageId>* path);

  /// Inserts (key, child) into the internal node at path[level], splitting
  /// upward as needed.
  Status InsertIntoInternal(std::vector<PageId>& path, int level,
                            std::string key, PageId child);

  /// Makes a new root holding separator `key` between `left` and `right`.
  Status GrowRoot(PageId left, std::string key, PageId right);

  Status SetRootAndPersist(PageId new_root);

  PageIO* io_;
  int root_slot_;
  PageId root_;
};

}  // namespace ode

#endif  // ODE_STORAGE_BTREE_H_
