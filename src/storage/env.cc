#include "storage/env.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <dirent.h>
#include <map>
#include <memory>
#include <set>

namespace ode {

namespace {

Status PosixError(const std::string& context, int err) {
  return Status::IOError(context + ": " + std::strerror(err));
}

// ---------------------------------------------------------------------------
// POSIX implementation
// ---------------------------------------------------------------------------

class PosixFile : public File {
 public:
  PosixFile(std::string path, int fd) : path_(std::move(path)), fd_(fd) {}
  ~PosixFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Read(uint64_t offset, size_t n, std::string* scratch,
              Slice* result) override {
    scratch->resize(n);
    ssize_t r = ::pread(fd_, scratch->data(), n, static_cast<off_t>(offset));
    if (r < 0) return PosixError("pread " + path_, errno);
    *result = Slice(scratch->data(), static_cast<size_t>(r));
    return Status::OK();
  }

  Status Write(uint64_t offset, const Slice& data) override {
    const char* p = data.data();
    size_t left = data.size();
    uint64_t off = offset;
    while (left > 0) {
      ssize_t w = ::pwrite(fd_, p, left, static_cast<off_t>(off));
      if (w < 0) {
        if (errno == EINTR) continue;
        return PosixError("pwrite " + path_, errno);
      }
      p += w;
      left -= static_cast<size_t>(w);
      off += static_cast<uint64_t>(w);
    }
    return Status::OK();
  }

  Status Append(const Slice& data) override {
    auto size = Size();
    if (!size.ok()) return size.status();
    return Write(*size, data);
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) return PosixError("fsync " + path_, errno);
    return Status::OK();
  }

  Status Truncate(uint64_t size) override {
    if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
      return PosixError("ftruncate " + path_, errno);
    }
    return Status::OK();
  }

  StatusOr<uint64_t> Size() override {
    struct stat st;
    if (::fstat(fd_, &st) != 0) return PosixError("fstat " + path_, errno);
    return static_cast<uint64_t>(st.st_size);
  }

 private:
  std::string path_;
  int fd_;
};

class PosixEnv : public Env {
 public:
  StatusOr<std::unique_ptr<File>> OpenFile(const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
    if (fd < 0) return PosixError("open " + path, errno);
    return std::unique_ptr<File>(new PosixFile(path, fd));
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  Status DeleteFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) {
      if (errno == ENOENT) return Status::NotFound("no such file: " + path);
      return PosixError("unlink " + path, errno);
    }
    return Status::OK();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return PosixError("rename " + from, errno);
    }
    return Status::OK();
  }

  Status CreateDir(const std::string& path) override {
    if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
      return PosixError("mkdir " + path, errno);
    }
    return Status::OK();
  }

  StatusOr<std::vector<std::string>> ListDir(const std::string& path) override {
    DIR* dir = ::opendir(path.c_str());
    if (dir == nullptr) return PosixError("opendir " + path, errno);
    std::vector<std::string> names;
    while (struct dirent* entry = ::readdir(dir)) {
      std::string name = entry->d_name;
      if (name != "." && name != "..") names.push_back(std::move(name));
    }
    ::closedir(dir);
    return names;
  }
};

}  // namespace

Env* Env::Posix() {
  static PosixEnv* env = new PosixEnv();  // Intentionally leaked singleton.
  return env;
}

// ---------------------------------------------------------------------------
// In-memory implementation
// ---------------------------------------------------------------------------

namespace {

struct MemFileData {
  std::string contents;
};

class MemFile : public File {
 public:
  explicit MemFile(std::shared_ptr<MemFileData> data)
      : data_(std::move(data)) {}

  Status Read(uint64_t offset, size_t n, std::string* scratch,
              Slice* result) override {
    const std::string& c = data_->contents;
    if (offset >= c.size()) {
      *result = Slice();
      return Status::OK();
    }
    size_t avail = std::min<size_t>(n, c.size() - offset);
    scratch->assign(c.data() + offset, avail);
    *result = Slice(*scratch);
    return Status::OK();
  }

  Status Write(uint64_t offset, const Slice& data) override {
    std::string& c = data_->contents;
    if (offset + data.size() > c.size()) c.resize(offset + data.size());
    std::memcpy(c.data() + offset, data.data(), data.size());
    return Status::OK();
  }

  Status Append(const Slice& data) override {
    data_->contents.append(data.data(), data.size());
    return Status::OK();
  }

  Status Sync() override { return Status::OK(); }

  Status Truncate(uint64_t size) override {
    data_->contents.resize(size);
    return Status::OK();
  }

  StatusOr<uint64_t> Size() override {
    return static_cast<uint64_t>(data_->contents.size());
  }

 private:
  std::shared_ptr<MemFileData> data_;
};

}  // namespace

struct MemEnv::Impl {
  std::map<std::string, std::shared_ptr<MemFileData>> files;
  std::set<std::string> dirs;
};

MemEnv::MemEnv() : impl_(new Impl()) {}
MemEnv::~MemEnv() = default;

StatusOr<std::unique_ptr<File>> MemEnv::OpenFile(const std::string& path) {
  auto it = impl_->files.find(path);
  if (it == impl_->files.end()) {
    it = impl_->files.emplace(path, std::make_shared<MemFileData>()).first;
  }
  return std::unique_ptr<File>(new MemFile(it->second));
}

bool MemEnv::FileExists(const std::string& path) {
  return impl_->files.count(path) > 0;
}

Status MemEnv::DeleteFile(const std::string& path) {
  if (impl_->files.erase(path) == 0) {
    return Status::NotFound("no such file: " + path);
  }
  return Status::OK();
}

Status MemEnv::RenameFile(const std::string& from, const std::string& to) {
  auto it = impl_->files.find(from);
  if (it == impl_->files.end()) {
    return Status::NotFound("no such file: " + from);
  }
  impl_->files[to] = it->second;
  impl_->files.erase(it);
  return Status::OK();
}

Status MemEnv::CreateDir(const std::string& path) {
  impl_->dirs.insert(path);
  return Status::OK();
}

StatusOr<std::vector<std::string>> MemEnv::ListDir(const std::string& path) {
  std::vector<std::string> names;
  std::string prefix = path;
  if (!prefix.empty() && prefix.back() != '/') prefix += '/';
  for (const auto& [name, data] : impl_->files) {
    (void)data;
    if (name.size() > prefix.size() && name.compare(0, prefix.size(), prefix) == 0) {
      names.push_back(name.substr(prefix.size()));
    }
  }
  return names;
}

}  // namespace ode
