#include "storage/payload_store.h"

#include "storage/btree.h"
#include "util/byte_buffer.h"

namespace ode {

std::string EncodePayloadStoreEntry(const PayloadStoreEntry& entry) {
  BufferWriter w;
  w.WriteVarint64(entry.refcount);
  w.WriteVarint64(entry.size);
  w.WriteU64(entry.rid.Encode());
  return w.Release();
}

Status DecodePayloadStoreEntry(const Slice& bytes, PayloadStoreEntry* out) {
  BufferReader r(bytes);
  ODE_RETURN_IF_ERROR(r.ReadVarint64(&out->refcount));
  ODE_RETURN_IF_ERROR(r.ReadVarint64(&out->size));
  uint64_t rid = 0;
  ODE_RETURN_IF_ERROR(r.ReadU64(&rid));
  out->rid = RecordId::Decode(rid);
  if (!r.AtEnd()) {
    return Status::Corruption("payload store entry has trailing bytes");
  }
  return Status::OK();
}

namespace {

std::string EncodeEntry(const PayloadStoreEntry& entry) {
  return EncodePayloadStoreEntry(entry);
}

Status DecodeEntry(const Slice& bytes, PayloadStoreEntry* out) {
  return DecodePayloadStoreEntry(bytes, out);
}

}  // namespace

void PayloadStore::AttachMetrics(MetricsRegistry* registry) {
  dedupe_hits_ = registry->GetCounter("payload_store.dedupe_hits");
  dedupe_bytes_saved_ =
      registry->GetCounter("payload_store.dedupe_bytes_saved");
  blobs_created_ = registry->GetCounter("payload_store.blobs_created");
  blobs_freed_ = registry->GetCounter("payload_store.blobs_freed");
}

Status PayloadStore::PutEntry(PageIO* io, const Hash128& hash,
                              const PayloadStoreEntry& entry) {
  auto tree = BTree::Open(io, kPayloadsTreeSlot);
  if (!tree.ok()) return tree.status();
  return tree->Put(Slice(hash.Encode()), Slice(EncodeEntry(entry)));
}

StatusOr<RecordId> PayloadStore::Ref(PageIO* io, HeapFile& heap,
                                     const Slice& payload, Hash128* hash_out) {
  const Hash128 hash = HashPayload128(payload);
  if (hash_out != nullptr) *hash_out = hash;
  auto tree = BTree::Open(io, kPayloadsTreeSlot);
  if (!tree.ok()) return tree.status();
  const std::string key = hash.Encode();
  auto existing = tree->Get(Slice(key));
  if (existing.ok()) {
    PayloadStoreEntry entry;
    ODE_RETURN_IF_ERROR(DecodeEntry(Slice(*existing), &entry));
    if (entry.size != payload.size()) {
      return Status::Corruption("payload store: content hash collision (" +
                                hash.ToHex() + ")");
    }
    entry.refcount += 1;
    ODE_RETURN_IF_ERROR(tree->Put(Slice(key), Slice(EncodeEntry(entry))));
    if (dedupe_hits_ != nullptr) {
      dedupe_hits_->Increment();
      dedupe_bytes_saved_->Add(payload.size());
    }
    return entry.rid;
  }
  if (!existing.status().IsNotFound()) return existing.status();
  auto rid = heap.Insert(io, payload);
  if (!rid.ok()) return rid.status();
  PayloadStoreEntry entry;
  entry.refcount = 1;
  entry.size = payload.size();
  entry.rid = *rid;
  ODE_RETURN_IF_ERROR(tree->Put(Slice(key), Slice(EncodeEntry(entry))));
  if (blobs_created_ != nullptr) blobs_created_->Increment();
  return *rid;
}

StatusOr<RecordId> PayloadStore::RefExisting(PageIO* io, const Hash128& hash) {
  auto tree = BTree::Open(io, kPayloadsTreeSlot);
  if (!tree.ok()) return tree.status();
  const std::string key = hash.Encode();
  auto existing = tree->Get(Slice(key));
  if (!existing.ok()) return existing.status();
  PayloadStoreEntry entry;
  ODE_RETURN_IF_ERROR(DecodeEntry(Slice(*existing), &entry));
  entry.refcount += 1;
  ODE_RETURN_IF_ERROR(tree->Put(Slice(key), Slice(EncodeEntry(entry))));
  if (dedupe_hits_ != nullptr) {
    dedupe_hits_->Increment();
    dedupe_bytes_saved_->Add(entry.size);
  }
  return entry.rid;
}

Status PayloadStore::Unref(PageIO* io, HeapFile& heap, const Hash128& hash,
                           RecordId expected_rid) {
  auto tree = BTree::Open(io, kPayloadsTreeSlot);
  if (!tree.ok()) return tree.status();
  const std::string key = hash.Encode();
  auto existing = tree->Get(Slice(key));
  if (!existing.ok()) {
    if (existing.status().IsNotFound()) {
      return Status::Corruption("payload store: unref of missing blob " +
                                hash.ToHex());
    }
    return existing.status();
  }
  PayloadStoreEntry entry;
  ODE_RETURN_IF_ERROR(DecodeEntry(Slice(*existing), &entry));
  if (!(entry.rid == expected_rid)) {
    return Status::Corruption(
        "payload store: record id mismatch on unref of " + hash.ToHex());
  }
  if (entry.refcount == 0) {
    return Status::Corruption("payload store: double unref of " +
                              hash.ToHex());
  }
  entry.refcount -= 1;
  if (entry.refcount == 0) {
    ODE_RETURN_IF_ERROR(heap.Delete(io, entry.rid));
    ODE_RETURN_IF_ERROR(tree->Delete(Slice(key)));
    if (blobs_freed_ != nullptr) blobs_freed_->Increment();
    return Status::OK();
  }
  return tree->Put(Slice(key), Slice(EncodeEntry(entry)));
}

StatusOr<PayloadStoreEntry> PayloadStore::Lookup(PageIO* io,
                                                 const Hash128& hash) {
  // Probe the slot first: BTree::Open would CREATE the tree when the slot is
  // unclaimed, which a read-only PageIO must never do.
  auto root = io->GetRoot(kPayloadsTreeSlot);
  if (!root.ok()) return root.status();
  if (*root == 0) return Status::NotFound("payload store is empty");
  auto tree = BTree::Open(io, kPayloadsTreeSlot);
  if (!tree.ok()) return tree.status();
  auto value = tree->Get(Slice(hash.Encode()));
  if (!value.ok()) return value.status();
  PayloadStoreEntry entry;
  ODE_RETURN_IF_ERROR(DecodeEntry(Slice(*value), &entry));
  return entry;
}

Status PayloadStore::ForEach(
    PageIO* io,
    const std::function<bool(const Hash128&, const PayloadStoreEntry&)>& fn) {
  auto root = io->GetRoot(kPayloadsTreeSlot);
  if (!root.ok()) return root.status();
  if (*root == 0) return Status::OK();  // Never claimed: nothing stored.
  auto tree = BTree::Open(io, kPayloadsTreeSlot);
  if (!tree.ok()) return tree.status();
  auto it = tree->NewIterator();
  for (it.SeekToFirst(); it.Valid(); it.Next()) {
    Hash128 hash;
    if (!Hash128::Decode(Slice(it.key()), &hash)) {
      return Status::Corruption("payload store: malformed index key");
    }
    PayloadStoreEntry entry;
    ODE_RETURN_IF_ERROR(DecodeEntry(Slice(it.value()), &entry));
    if (!fn(hash, entry)) break;
  }
  return it.status();
}

}  // namespace ode
