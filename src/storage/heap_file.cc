#include "storage/heap_file.h"

#include <cstring>

#include "storage/slotted_page.h"
#include "util/coding.h"

namespace ode {

namespace {

PageType TypeOf(const char* page) {
  return static_cast<PageType>(static_cast<uint8_t>(page[0]));
}

}  // namespace

Status HeapFile::EnsureCache(PageIO* io) {
  if (cache_valid_) return Status::OK();
  space_cache_.clear();
  uint32_t page_count = 0;
  {
    auto pc = io->PageCount();
    if (!pc.ok()) return pc.status();
    page_count = *pc;
  }
  for (PageId id = 1; id < page_count; ++id) {
    auto handle = io->Fetch(id);
    if (!handle.ok()) return handle.status();
    if (TypeOf(handle->data()) == PageType::kHeap) {
      SlottedPage view(const_cast<char*>(handle->data()));
      space_cache_[id] = view.FreeSpace();
    }
  }
  cache_valid_ = true;
  return Status::OK();
}

StatusOr<PageId> HeapFile::PickPage(PageIO* io, uint32_t need) {
  ODE_RETURN_IF_ERROR(EnsureCache(io));
  for (const auto& [id, free] : space_cache_) {
    if (free >= need) return id;
  }
  auto id = io->AllocatePage();
  if (!id.ok()) return id.status();
  auto handle = io->Fetch(*id);
  if (!handle.ok()) return handle.status();
  SlottedPage view(handle->mutable_data());
  view.Init();
  space_cache_[*id] = view.FreeSpace();
  return *id;
}

StatusOr<RecordId> HeapFile::Insert(PageIO* io, const Slice& payload) {
  std::string cell;
  PageId first_overflow = kInvalidPageId;

  if (payload.size() + 1 <= SlottedPage::kMaxCellSize) {
    cell.push_back(static_cast<char>(kInline));
    cell.append(payload.data(), payload.size());
  } else {
    // Write the payload into an overflow chain, back to front so each page
    // can point at the next.
    size_t remaining = payload.size();
    // Chunk boundaries: all chunks full-size except possibly the last.
    size_t num_chunks = (remaining + kOverflowCapacity - 1) / kOverflowCapacity;
    PageId next = kInvalidPageId;
    for (size_t chunk_idx = num_chunks; chunk_idx-- > 0;) {
      const size_t chunk_off = chunk_idx * kOverflowCapacity;
      const size_t chunk_len =
          std::min<size_t>(kOverflowCapacity, payload.size() - chunk_off);
      auto pid = io->AllocatePage();
      if (!pid.ok()) return pid.status();
      auto handle = io->Fetch(*pid);
      if (!handle.ok()) return handle.status();
      char* data = handle->mutable_data();
      std::memset(data, 0, kPageSize);
      data[0] = static_cast<char>(PageType::kOverflow);
      EncodeFixed32(data + 4, next);
      EncodeFixed32(data + 8, static_cast<uint32_t>(chunk_len));
      // Offset math is chunk-aligned within payload.
      // ode_lint: allow(unchecked-cast) chunk_len <= kOverflowCapacity (min above)
      std::memcpy(data + kOverflowDataOffset, payload.data() + chunk_off,
                  chunk_len);
      next = *pid;
    }
    first_overflow = next;
    cell.push_back(static_cast<char>(kSpanningHead));
    PutFixed32(&cell, static_cast<uint32_t>(payload.size()));
    PutFixed32(&cell, first_overflow);
  }

  auto pid = PickPage(io, static_cast<uint32_t>(cell.size()));
  if (!pid.ok()) return pid.status();
  auto handle = io->Fetch(*pid);
  if (!handle.ok()) return handle.status();
  SlottedPage view(handle->mutable_data());
  auto slot = view.Insert(Slice(cell));
  if (!slot.ok()) return slot.status();
  space_cache_[*pid] = view.FreeSpace();
  return RecordId{*pid, *slot};
}

StatusOr<std::string> HeapFile::Read(PageIO* io, RecordId rid) {
  auto handle = io->Fetch(rid.page);
  if (!handle.ok()) return handle.status();
  SlottedPage view(const_cast<char*>(handle->data()));
  if (!view.IsHeapPage()) return Status::NotFound("not a heap page");
  auto cell = view.Get(rid.slot);
  if (!cell.ok()) return cell.status();
  Slice data = *cell;
  if (data.empty()) return Status::Corruption("empty heap cell");
  const uint8_t tag = static_cast<uint8_t>(data[0]);
  data.remove_prefix(1);
  if (tag == kInline) {
    return data.ToString();
  }
  if (tag != kSpanningHead || data.size() != 8) {
    return Status::Corruption("bad heap cell tag");
  }
  const uint32_t total_len = DecodeFixed32(data.data());
  PageId next = DecodeFixed32(data.data() + 4);
  std::string out;
  out.reserve(total_len);
  // A corrupt chain can loop (a zero-length cycle would otherwise spin
  // forever; a fat one would allocate without bound), so walk at most the
  // number of chunks the declared length legitimately needs.
  const uint64_t max_chunks =
      (static_cast<uint64_t>(total_len) + kOverflowCapacity - 1) /
      kOverflowCapacity;
  uint64_t chunks = 0;
  while (next != kInvalidPageId) {
    if (++chunks > max_chunks) {
      return Status::Corruption("overflow chain longer than declared length");
    }
    auto oh = io->Fetch(next);
    if (!oh.ok()) return oh.status();
    const char* page = oh->data();
    if (TypeOf(page) != PageType::kOverflow) {
      return Status::Corruption("broken overflow chain");
    }
    const uint32_t chunk_len = DecodeFixed32(page + 8);
    if (chunk_len > kOverflowCapacity) {
      return Status::Corruption("overflow chunk too large");
    }
    out.append(page + kOverflowDataOffset, chunk_len);
    next = DecodeFixed32(page + 4);
  }
  if (out.size() != total_len) {
    return Status::Corruption("overflow chain length mismatch");
  }
  return out;
}

Status HeapFile::FreeOverflowChain(PageIO* io, PageId head) {
  PageId next = head;
  while (next != kInvalidPageId) {
    auto handle = io->Fetch(next);
    if (!handle.ok()) return handle.status();
    if (TypeOf(handle->data()) != PageType::kOverflow) {
      return Status::Corruption("broken overflow chain on delete");
    }
    PageId after = DecodeFixed32(handle->data() + 4);
    handle->Release();
    ODE_RETURN_IF_ERROR(io->FreePage(next));
    next = after;
  }
  return Status::OK();
}

Status HeapFile::Delete(PageIO* io, RecordId rid) {
  auto handle = io->Fetch(rid.page);
  if (!handle.ok()) return handle.status();
  SlottedPage view(handle->mutable_data());
  if (!view.IsHeapPage()) return Status::NotFound("not a heap page");
  auto cell = view.Get(rid.slot);
  if (!cell.ok()) return cell.status();
  Slice data = *cell;
  if (data.empty()) return Status::Corruption("empty heap cell");
  const uint8_t tag = static_cast<uint8_t>(data[0]);
  PageId overflow_head = kInvalidPageId;
  if (tag == kSpanningHead) {
    if (data.size() != 9) return Status::Corruption("bad spanning head");
    overflow_head = DecodeFixed32(data.data() + 5);
  }
  ODE_RETURN_IF_ERROR(view.Delete(rid.slot));
  const bool page_empty = view.LiveSlots() == 0;
  if (cache_valid_) space_cache_[rid.page] = view.FreeSpace();
  handle->Release();
  if (overflow_head != kInvalidPageId) {
    ODE_RETURN_IF_ERROR(FreeOverflowChain(io, overflow_head));
  }
  if (page_empty) {
    ODE_RETURN_IF_ERROR(io->FreePage(rid.page));
    if (cache_valid_) space_cache_.erase(rid.page);
  }
  return Status::OK();
}

Status HeapFile::ForEach(
    PageIO* io, const std::function<bool(RecordId, const Slice&)>& fn) {
  uint32_t page_count = 0;
  {
    auto pc = io->PageCount();
    if (!pc.ok()) return pc.status();
    page_count = *pc;
  }
  for (PageId id = 1; id < page_count; ++id) {
    auto handle = io->Fetch(id);
    if (!handle.ok()) return handle.status();
    if (TypeOf(handle->data()) != PageType::kHeap) continue;
    SlottedPage view(const_cast<char*>(handle->data()));
    for (uint16_t slot = 0; slot < view.SlotCount(); ++slot) {
      auto cell = view.Get(slot);
      if (!cell.ok()) continue;  // Free slot.
      RecordId rid{id, slot};
      auto payload = Read(io, rid);
      if (!payload.ok()) return payload.status();
      if (!fn(rid, Slice(*payload))) return Status::OK();
    }
  }
  return Status::OK();
}

StatusOr<HeapStats> HeapFile::Stats(PageIO* io) {
  HeapStats stats;
  uint32_t page_count = 0;
  {
    auto pc = io->PageCount();
    if (!pc.ok()) return pc.status();
    page_count = *pc;
  }
  for (PageId id = 1; id < page_count; ++id) {
    auto handle = io->Fetch(id);
    if (!handle.ok()) return handle.status();
    const PageType type = TypeOf(handle->data());
    if (type == PageType::kOverflow) {
      ++stats.overflow_pages;
    } else if (type == PageType::kHeap) {
      ++stats.heap_pages;
      SlottedPage view(const_cast<char*>(handle->data()));
      for (uint16_t slot = 0; slot < view.SlotCount(); ++slot) {
        auto cell = view.Get(slot);
        if (cell.ok()) {
          ++stats.live_records;
          stats.live_bytes += cell->size();
        }
      }
    }
  }
  return stats;
}

}  // namespace ode
