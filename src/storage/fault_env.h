#ifndef ODE_STORAGE_FAULT_ENV_H_
#define ODE_STORAGE_FAULT_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/env.h"
#include "util/status.h"
#include "util/statusor.h"

namespace ode {

class EventLog;

/// Classes of I/O operation the fault injector can count and target.
enum class FaultOp : uint8_t {
  kRead = 0,
  kWrite = 1,
  kAppend = 2,
  kSync = 3,
  kTruncate = 4,
  kOpen = 5,
  kDelete = 6,
  kRename = 7,
};
inline constexpr int kNumFaultOps = 8;

/// Cumulative I/O accounting for a FaultInjectionEnv (attempted operations,
/// whether or not the injector failed them).  Returned by value.
struct IoCounts {
  uint64_t ops[kNumFaultOps] = {};
  uint64_t bytes_written = 0;  ///< Write + Append payload bytes.
  uint64_t bytes_read = 0;     ///< Bytes actually returned by Read.

  uint64_t of(FaultOp op) const { return ops[static_cast<int>(op)]; }
  /// Operations that mutate durable state (everything except Read/Open).
  uint64_t mutating() const {
    return of(FaultOp::kWrite) + of(FaultOp::kAppend) + of(FaultOp::kSync) +
           of(FaultOp::kTruncate) + of(FaultOp::kDelete) + of(FaultOp::kRename);
  }
};

/// How much un-synced data survives a simulated crash.  The "unsynced
/// region" of a file is the byte range where its current contents differ
/// from its contents at the last successful Sync() (for the append-only WAL
/// this is exactly the unsynced tail).
enum class CrashTear : uint8_t {
  /// Nothing after the last Sync() survives (classic lost page cache).
  kLoseAll = 0,
  /// Everything survives even though it was never fsynced (the OS happened
  /// to flush on its own; legal, and the adversarial case for "commit
  /// returned an error but became durable anyway").
  kKeepAll = 1,
  /// The first half of the unsynced region survives (torn multi-record
  /// append).
  kTearHalf = 2,
  /// All but the final unsynced byte survives (a write torn mid-sector).
  kTornByte = 3,
  /// Everything survives but the last unsynced byte is bit-flipped
  /// (corruption inside a torn sector).
  kCorruptLast = 4,
};
inline constexpr int kNumCrashTears = 5;

/// Env wrapper that simulates crashes and I/O failures.
///
/// Three facilities, composable and all deterministic:
///  1. Crash simulation: `Crash(tear)` reverts every file to its state at
///     that file's last Sync(), optionally keeping a configurable partial /
///     corrupted tail of the unsynced region (see CrashTear).  Open handles
///     become invalid (further use returns kIOError) until reopened.
///     `ScheduleCrash(n, tear)` arms the same crash to fire *instead of* the
///     Nth subsequent mutating operation, so a test can sweep a crash point
///     across every WAL append/fsync of a workload.
///  2. Error injection: `FailNth(op, n, error)` makes the Nth subsequent
///     operation of one kind fail with a configurable Status; sticky mode
///     models a dying disk (every later mutating op fails too).
///     `FailAfterSyncs(n)` is the legacy dying-disk form.
///  3. Accounting: `counts()` reports every operation and byte moved, for
///     asserting WAL discipline (e.g. exactly one fsync per commit).
///
/// Files live in an internal in-memory store (the `base` Env is not
/// consulted); semantics match MemEnv plus the per-file synced shadow state.
/// The concurrency contract also matches MemEnv: concurrent reads are safe,
/// any write or Env-level mutation must be externally excluded — which the
/// storage engine's writer lock guarantees.
class FaultInjectionEnv : public Env {
 public:
  /// `base` is unused beyond construction (kept for signature compatibility);
  /// pass nullptr.
  explicit FaultInjectionEnv(Env* base);
  ~FaultInjectionEnv() override;

  StatusOr<std::unique_ptr<File>> OpenFile(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Status DeleteFile(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status CreateDir(const std::string& path) override;
  StatusOr<std::vector<std::string>> ListDir(const std::string& path) override;

  // -- Crash simulation ------------------------------------------------------

  /// Crashes now with CrashTear::kLoseAll (the legacy form): reverts every
  /// file to its last-synced state and invalidates open handles.  Also
  /// disarms any scheduled crash or failure injection (the "machine" reboots
  /// with a healthy disk).
  void CrashAndLoseUnsynced();

  /// Crashes now with the given tear mode (see CrashTear).
  void Crash(CrashTear tear);

  /// Arms a crash to fire when the Nth (0-based, counted from this call)
  /// subsequent *mutating* operation (Write/Append/Sync/Truncate/Delete/
  /// Rename) is attempted: that operation does not execute — the crash
  /// happens first and the operation returns kIOError.  Sweep `nth` from 0
  /// upward to place a crash at every durability point of a workload; once
  /// `crash_fired()` stays false the workload has no more crash points.
  void ScheduleCrash(uint64_t nth_mutating_op, CrashTear tear);

  /// True once a crash (immediate or scheduled) has fired and the env has
  /// not been rearmed.  Cleared by Crash*/ScheduleCrash/ClearFaults.
  bool crash_fired() const;

  // -- Error injection -------------------------------------------------------

  /// The Nth (0-based, counted from this call) subsequent operation of kind
  /// `op` fails with `error`.  With `sticky` (default), every *mutating*
  /// operation after the failure also fails with `error` — a dying disk.
  /// One plan at a time; a new call replaces the previous plan.
  void FailNth(FaultOp op, uint64_t nth, Status error, bool sticky = true);

  /// Legacy dying-disk knob: after `n` more successful Sync() calls, every
  /// subsequent mutating operation fails with kIOError.  n < 0 disables.
  void FailAfterSyncs(int n);

  /// Disarms every failure plan and scheduled crash and clears the sticky
  /// failing state (file contents are untouched; crash_fired() resets).
  void ClearFaults();

  /// Journals every fired injection (scheduled crash, FailNth trigger) as a
  /// kFaultInjection record, so diagnostics dumps show *which* simulated
  /// fault preceded a poison.  Null disables (the default).  The log must
  /// outlive this env or be cleared with set_event_log(nullptr).
  void set_event_log(EventLog* log);

  // -- Accounting ------------------------------------------------------------

  /// Snapshot of the cumulative operation counters.
  IoCounts counts() const;

  /// Mutating operations attempted since construction or ResetCounts()
  /// (the clock ScheduleCrash counts against is separate and restarts at
  /// each ScheduleCrash call).
  uint64_t mutating_op_count() const;

  /// Successful Sync() calls observed (legacy accessor; injected failures
  /// are not counted — use counts().of(FaultOp::kSync) for attempts).
  int sync_count() const;

  /// Zeroes the cumulative counters (does not affect armed plans).
  void ResetCounts();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ode

#endif  // ODE_STORAGE_FAULT_ENV_H_
