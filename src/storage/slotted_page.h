#ifndef ODE_STORAGE_SLOTTED_PAGE_H_
#define ODE_STORAGE_SLOTTED_PAGE_H_

#include <cstdint>

#include "storage/page.h"
#include "util/slice.h"
#include "util/status.h"
#include "util/statusor.h"

namespace ode {

/// View over one heap page laid out as a classic slotted page.
///
/// Layout:
///   [0]      u8   page type (kHeap)
///   [1..7]        reserved / type-specific
///   [8..9]   u16  slot count
///   [10..11] u16  cell area start (lowest used byte; cells grow downward)
///   [12..13] u16  fragmented bytes (freed cell space reclaimable by compact)
///   [14..]        slot directory: per slot { u16 cell offset, u16 length }
///   ...cells...   grow from the page end toward the slot directory
///
/// A slot with offset 0 is free (no cell can legally start inside the
/// header).  Record ids held by callers are (page, slot) pairs; slots are
/// stable across compaction and are reused by later inserts.
///
/// SlottedPage does not own the buffer; it wraps page bytes pinned in the
/// buffer pool.  Const-correctness mirrors the dirty protocol: mutating
/// operations require construction from a mutable buffer.
class SlottedPage {
 public:
  /// Largest record payload a single page can hold.
  static constexpr uint32_t kMaxCellSize =
      kPageSize - 14 /*header*/ - 4 /*one slot*/;

  explicit SlottedPage(char* data) : data_(data) {}

  /// Formats a fresh heap page.
  void Init();

  /// True if the buffer looks like an initialized heap page.
  bool IsHeapPage() const;

  /// Inserts `record`, returning its slot.  Fails with kOutOfRange if the
  /// page cannot fit it even after compaction.
  StatusOr<uint16_t> Insert(const Slice& record);

  /// Returns the record in `slot` (aliases the page buffer).
  StatusOr<Slice> Get(uint16_t slot) const;

  /// Frees `slot`.  The slot number may be reused by later inserts.
  Status Delete(uint16_t slot);

  /// Replaces the record in `slot`.  Fails with kOutOfRange if the new value
  /// cannot fit on this page (caller then relocates the record).
  Status Update(uint16_t slot, const Slice& record);

  /// Bytes a new insert could claim (including its slot-directory entry),
  /// counting fragmented space reclaimable by compaction.
  uint32_t FreeSpace() const;

  /// Number of live (occupied) slots.
  uint16_t LiveSlots() const;

  /// Total slots in the directory (live + free).
  uint16_t SlotCount() const;

  /// Rewrites the cell area to squeeze out fragmentation.
  void Compact();

 private:
  uint16_t ReadU16At(uint32_t off) const;
  void WriteU16At(uint32_t off, uint16_t v);

  /// Most slots the directory can physically hold.  A stored slot count
  /// above this is corruption: trusting it would read the "directory"
  /// beyond the page end.
  static constexpr uint16_t kMaxSlots =
      static_cast<uint16_t>((kPageSize - 14) / 4);

  /// Stored slot count clamped to what the page can hold; every loop and
  /// directory-offset computation uses this, so a hostile count cannot
  /// drive reads past the page.
  uint16_t checked_slot_count() const;

  /// True if `slot`'s directory entry describes a cell fully inside the
  /// page (offset past the header, end within kPageSize).
  bool CellInBounds(uint16_t slot) const;

  uint16_t slot_count() const { return ReadU16At(8); }
  uint16_t cell_start() const { return ReadU16At(10); }
  uint16_t frag_bytes() const { return ReadU16At(12); }
  void set_slot_count(uint16_t v) { WriteU16At(8, v); }
  void set_cell_start(uint16_t v) { WriteU16At(10, v); }
  void set_frag_bytes(uint16_t v) { WriteU16At(12, v); }

  static constexpr uint32_t kSlotDirStart = 14;
  uint32_t SlotEntryOffset(uint16_t slot) const {
    return kSlotDirStart + 4u * slot;
  }
  uint16_t SlotCellOffset(uint16_t slot) const {
    return ReadU16At(SlotEntryOffset(slot));
  }
  uint16_t SlotCellLength(uint16_t slot) const {
    return ReadU16At(SlotEntryOffset(slot) + 2);
  }
  void SetSlot(uint16_t slot, uint16_t cell_offset, uint16_t length) {
    WriteU16At(SlotEntryOffset(slot), cell_offset);
    WriteU16At(SlotEntryOffset(slot) + 2, length);
  }

  /// Contiguous gap between the slot directory end and the cell area.
  uint32_t ContiguousFree() const;

  char* data_;
};

}  // namespace ode

#endif  // ODE_STORAGE_SLOTTED_PAGE_H_
