#ifndef ODE_STORAGE_DISK_MANAGER_H_
#define ODE_STORAGE_DISK_MANAGER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "storage/env.h"
#include "storage/page.h"
#include "util/status.h"
#include "util/statusor.h"

namespace ode {

/// Page-granular access to the single database file.
///
/// DiskManager is deliberately dumb: it reads and writes whole pages and
/// syncs the file.  All allocation state (free list, page count, root
/// pointers) lives *inside* page 0 (the superblock) and is manipulated by
/// higher layers through the BufferPool, so that it is covered by write-ahead
/// logging exactly like every other page and therefore recovers correctly
/// after a crash.
///
/// Reading a page past the current end of file yields zero bytes; the file
/// grows lazily when such a page is first written.  This makes redo-based
/// recovery (replaying page after-images, possibly beyond old EOF) trivially
/// correct.
class DiskManager {
 public:
  /// Opens (or creates) the database file at `path`.
  static StatusOr<std::unique_ptr<DiskManager>> Open(Env* env,
                                                     const std::string& path);

  /// Reads page `id` into `buf` (exactly kPageSize bytes).  Pages beyond EOF
  /// read as all zeroes.
  Status ReadPage(PageId id, char* buf);

  /// Writes `buf` (exactly kPageSize bytes) as page `id`, growing the file
  /// if needed.
  Status WritePage(PageId id, const char* buf);

  /// Durably flushes the file.
  Status Sync();

  /// Number of whole pages currently materialized in the file.
  StatusOr<uint32_t> FilePageCount();

 private:
  explicit DiskManager(std::unique_ptr<File> file) : file_(std::move(file)) {}

  std::unique_ptr<File> file_;
};

}  // namespace ode

#endif  // ODE_STORAGE_DISK_MANAGER_H_
