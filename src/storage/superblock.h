#ifndef ODE_STORAGE_SUPERBLOCK_H_
#define ODE_STORAGE_SUPERBLOCK_H_

#include <cstdint>
#include <cstring>

#include "storage/page.h"
#include "util/coding.h"

namespace ode {

/// Read-only view over page 0, the database superblock.
///
/// The superblock is an ordinary page manipulated through the buffer pool so
/// that every change to allocation state is WAL-logged and crash-safe.
///
/// Layout:
///   [0]       u8   page type (kSuper)
///   [1..7]         reserved
///   [8..15]   u64  magic
///   [16..19]  u32  logical page count (next never-used page id)
///   [20..23]  u32  free-list head (0 = empty)
///   [24..55]  u32  x 8 root slots (B+tree roots etc., owned by upper layers)
///   [56..119] u64  x 8 general-purpose persistent counters
///
/// Read-only accessors take a `const char*`, so the shared (multi-reader)
/// page path never needs a writable view — and never marks the page dirty.
class ConstSuperblockView {
 public:
  static constexpr uint64_t kMagic = 0x4f44455644423931ull;  // "ODEVDB91"
  static constexpr int kNumRoots = 8;
  static constexpr int kNumCounters = 8;

  explicit ConstSuperblockView(const char* data) : cdata_(data) {}

  bool IsValid() const { return DecodeFixed64(cdata_ + 8) == kMagic; }

  uint32_t page_count() const { return DecodeFixed32(cdata_ + 16); }
  PageId free_list_head() const { return DecodeFixed32(cdata_ + 20); }
  PageId root(int slot) const { return DecodeFixed32(cdata_ + 24 + 4 * slot); }
  uint64_t counter(int i) const { return DecodeFixed64(cdata_ + 56 + 8 * i); }

 private:
  const char* cdata_;
};

/// Writable superblock view (construct from `mutable_data()` only; taking
/// one marks the page dirty through the buffer pool's usual machinery).
class SuperblockView : public ConstSuperblockView {
 public:
  explicit SuperblockView(char* data) : ConstSuperblockView(data), data_(data) {}

  void Init() {
    std::memset(data_, 0, kPageSize);
    data_[0] = static_cast<char>(PageType::kSuper);
    EncodeFixed64(data_ + 8, kMagic);
    set_page_count(1);  // Page 0 itself.
    set_free_list_head(kInvalidPageId);
  }

  void set_page_count(uint32_t v) { EncodeFixed32(data_ + 16, v); }
  void set_free_list_head(PageId v) { EncodeFixed32(data_ + 20, v); }
  void set_root(int slot, PageId v) { EncodeFixed32(data_ + 24 + 4 * slot, v); }
  void set_counter(int i, uint64_t v) { EncodeFixed64(data_ + 56 + 8 * i, v); }

 private:
  char* data_;
};

}  // namespace ode

#endif  // ODE_STORAGE_SUPERBLOCK_H_
