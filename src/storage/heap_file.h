#ifndef ODE_STORAGE_HEAP_FILE_H_
#define ODE_STORAGE_HEAP_FILE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "storage/page_io.h"
#include "storage/page.h"
#include "util/slice.h"
#include "util/status.h"
#include "util/statusor.h"

namespace ode {

/// Stable address of a stored record: page + slot.
struct RecordId {
  PageId page = kInvalidPageId;
  uint16_t slot = 0;

  bool valid() const { return page != kInvalidPageId; }
  uint64_t Encode() const {
    return (static_cast<uint64_t>(page) << 16) | slot;
  }
  static RecordId Decode(uint64_t v) {
    return RecordId{static_cast<PageId>(v >> 16),
                    static_cast<uint16_t>(v & 0xffff)};
  }
  friend bool operator==(const RecordId& a, const RecordId& b) {
    return a.page == b.page && a.slot == b.slot;
  }
};

/// Aggregate statistics over the heap file (full scan).
struct HeapStats {
  uint32_t heap_pages = 0;
  uint32_t overflow_pages = 0;
  uint64_t live_records = 0;
  uint64_t live_bytes = 0;
};

/// Record store over slotted pages, with overflow chains for records larger
/// than one page.
///
/// Records are immutable: the version store expresses updates by inserting a
/// new record and repointing metadata, which keeps record ids stable and
/// sidesteps in-place relocation.  Records at most
/// (SlottedPage::kMaxCellSize - 1) bytes are stored inline in one cell;
/// larger payloads live entirely in a chain of overflow pages referenced from
/// a small head cell.
///
/// HeapFile itself is a stateless façade plus an in-memory free-space cache;
/// all page access goes through the PageIO of the current transaction.  The
/// cache is an optimization only — InvalidateCache() (called on transaction
/// abort) forces a rebuild by scanning page types.
class HeapFile {
 public:
  HeapFile() = default;
  HeapFile(const HeapFile&) = delete;
  HeapFile& operator=(const HeapFile&) = delete;

  /// Stores `payload`, returning its stable record id.
  StatusOr<RecordId> Insert(PageIO* io, const Slice& payload);

  /// Fetches the full payload of `rid` (copies; payloads may span pages).
  StatusOr<std::string> Read(PageIO* io, RecordId rid);

  /// Removes `rid`, freeing any overflow pages; empty heap pages return to
  /// the allocator.
  Status Delete(PageIO* io, RecordId rid);

  /// Drops the free-space cache (call after a transaction abort).
  void InvalidateCache() { cache_valid_ = false; }

  /// Scans every live record.  `fn` returns false to stop early.
  Status ForEach(PageIO* io,
                 const std::function<bool(RecordId, const Slice&)>& fn);

  /// Full-scan statistics.
  StatusOr<HeapStats> Stats(PageIO* io);

 private:
  // Cell tags.
  static constexpr uint8_t kInline = 0x01;
  static constexpr uint8_t kSpanningHead = 0x02;
  // Overflow page layout: header byte 0 = kOverflow, bytes 4..7 next page id,
  // bytes 8..11 chunk length, data from byte 12.
  static constexpr uint32_t kOverflowDataOffset = 12;
  static constexpr uint32_t kOverflowCapacity = kPageSize - kOverflowDataOffset;

  Status EnsureCache(PageIO* io);
  /// Finds (or allocates) a heap page with at least `need` free bytes.
  StatusOr<PageId> PickPage(PageIO* io, uint32_t need);
  Status FreeOverflowChain(PageIO* io, PageId head);

  bool cache_valid_ = false;
  std::map<PageId, uint32_t> space_cache_;  // heap page -> free bytes
};

}  // namespace ode

#endif  // ODE_STORAGE_HEAP_FILE_H_
