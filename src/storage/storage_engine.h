#ifndef ODE_STORAGE_STORAGE_ENGINE_H_
#define ODE_STORAGE_STORAGE_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/env.h"
#include "storage/group_commit.h"
#include "storage/heap_file.h"
#include "storage/page_io.h"
#include "storage/payload_store.h"
#include "storage/storage_metrics.h"
#include "storage/wal.h"
#include "storage/write_latch.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/statusor.h"
#include "util/thread_annotations.h"

namespace ode {

class StorageEngine;

/// The engine's durability frontier, for diagnostics dumps and invariant
/// checks.  Monotone under the group-commit contract:
/// durable_txn <= appended_txn <= enqueued_txn, and acked_txn (the highest
/// id whose Commit call may have returned OK) is durable_txn in kSync mode,
/// appended_txn in kAsync mode.
struct WalWatermarks {
  uint64_t enqueued_txn = 0;  ///< Handed to the group-commit queue.
  uint64_t appended_txn = 0;  ///< Written into the WAL file.
  uint64_t durable_txn = 0;   ///< Covered by an fsync.
  uint64_t acked_txn = 0;     ///< Acknowledged to callers (mode-dependent).
};

/// Summary verdict of StorageEngine::HealthCheck().  Ordered by badness so
/// callers (odedump health) can use the numeric value as an exit code.
enum class HealthState : int {
  kOk = 0,
  kDegraded = 1,
  kPoisoned = 2,
};

struct HealthReport {
  HealthState state = HealthState::kOk;
  /// Human-readable reason per degradation/poison (empty when ok).
  std::vector<std::string> reasons;
  uint64_t checkpointer_lag_us = 0;  ///< Now minus last checkpointer tick.
  uint64_t wal_backlog_bytes = 0;    ///< WAL bytes since last checkpoint.
  int64_t async_pending = 0;         ///< Acked-not-yet-durable commits.
};

const char* HealthStateName(HealthState s);

/// Tuning and environment knobs for a storage engine instance.
struct StorageOptions {
  /// Filesystem to use; nullptr means Env::Posix().
  Env* env = nullptr;
  /// Directory holding data file and WAL (created if missing).
  std::string path;
  /// Buffer pool capacity in pages (nominal; grows if all frames are
  /// pinned/dirty).
  size_t buffer_pool_pages = 1024;
  /// Buffer pool latch shards; 0 = auto (collapses to 1 for small pools).
  size_t buffer_pool_shards = 0;
  /// Background checkpoint once the WAL exceeds this many bytes.
  uint64_t checkpoint_wal_bytes = 8ull << 20;
  /// Stripes in the write-latch set exposed via write_latches() (must be a
  /// power of two >= 1).  The engine itself never takes these; the Database
  /// layer keys them by object id to order same-object writers ahead of the
  /// apply latch.
  size_t write_latch_stripes = 64;
  /// Most transactions one group-commit leader batches into a single
  /// append+fsync cycle (>= 1).
  size_t group_commit_max_batch = 64;
  /// Longest a leader lingers for more commits while another writer is
  /// mid-apply, in microseconds (0 disables lingering; a solo writer never
  /// lingers regardless).
  uint32_t group_commit_max_wait_us = 100;
  /// When Commit returns: after the fsync (kSync, full durability) or after
  /// the WAL append (kAsync, prefix durability — see CommitMode).
  CommitMode commit_mode = CommitMode::kSync;
  /// Registry the engine records its instruments into; nullptr means the
  /// engine owns a private registry (instruments always exist either way,
  /// so hot paths never null-check individual counters).
  MetricsRegistry* metrics = nullptr;
  /// Event tracer for storage spans (commit, fsync, checkpoint); nullptr
  /// disables span recording entirely.
  Tracer* tracer = nullptr;
  /// Structured event journal the engine records into (txn lifecycle,
  /// group-commit batches, checkpoints, poison, slow ops); nullptr disables
  /// journaling entirely.  Not owned.
  EventLog* event_log = nullptr;
  /// Slow-op thresholds in microseconds (0 = off).  A commit / checkpoint
  /// exceeding its threshold emits a kSlowOp journal record and an
  /// unconditional trace span (bypassing sampling), so the one operation
  /// that blew its deadline is always visible.
  uint32_t slow_commit_us = 0;
  uint32_t slow_checkpoint_us = 0;
  /// HealthCheck degrades when the WAL backlog exceeds this many bytes
  /// (the checkpointer is falling behind); 0 = auto, 4x
  /// checkpoint_wal_bytes.
  uint64_t health_max_wal_backlog_bytes = 0;
  /// HealthCheck degrades when the background checkpointer's heartbeat is
  /// older than this (it ticks every ~50ms when healthy).
  uint64_t health_max_checkpointer_lag_us = 10'000'000;
  /// Flight-recorder hook: fired at most once, from the background
  /// checkpointer thread, after the engine poisons itself (`trigger` is
  /// "poison").  The Database layer installs its diagnostics dump here.
  /// Must not call back into mutating engine APIs; the snapshot accessors
  /// (watermarks, stats, HealthCheck) are safe.
  std::function<void(const char* trigger)> on_diagnostics;
  /// Called under the exclusive apply latch as a write transaction opens /
  /// closes (`committed` tells which way).  The Database layer drives its
  /// cache epochs from these: within the latch, apply sections are strictly
  /// serialized even though durable-commit waits overlap.  Either may be
  /// null.  Must not call back into the engine.
  std::function<void()> on_apply_begin;
  std::function<void(bool committed)> on_apply_end;
};

/// One open write transaction.
///
/// Implements PageIO so data structures running inside the transaction
/// automatically get: undo capture on first modification of each page
/// (enabling abort), and full-page redo logging at commit (enabling crash
/// recovery).  Page allocation and freeing manipulate the superblock through
/// the same mechanism, so allocation state is transactional too.
class Txn : public PageIO {
 public:
  StatusOr<PageHandle> Fetch(PageId id) override;
  StatusOr<PageId> AllocatePage() override;
  Status FreePage(PageId id) override;
  StatusOr<PageId> GetRoot(int slot) override;
  Status SetRoot(int slot, PageId id) override;
  StatusOr<uint64_t> GetCounter(int idx) override;
  Status SetCounter(int idx, uint64_t value) override;
  StatusOr<uint32_t> PageCount() override;
  StorageMetrics* metrics() override;

  uint64_t id() const { return id_; }

 private:
  friend class StorageEngine;
  Txn() = default;

  struct UndoImage {
    std::string image;  // kPageSize bytes captured before first modification.
    bool was_dirty;     // Dirty flag to restore on abort.
  };

  StorageEngine* engine_ = nullptr;
  uint64_t id_ = 0;
  bool active_ = false;
  std::map<PageId, UndoImage> undo_;
};

/// A lightweight read-only transaction: no undo map, no WAL interaction.
///
/// Implements PageIO so the same data structures (HeapFile reads, BTree
/// lookups) run unchanged on the read path; the mutating PageIO methods fail
/// with FailedPrecondition.  Superblock accessors use the const read view,
/// so a ReadTxn can never dirty a page.
///
/// ReadTxns are created by StorageEngine::WithReadTxn, which holds the
/// engine's shared lock for the duration: any number of ReadTxns run in
/// parallel, all excluded from the (single) apply section.
class ReadTxn : public PageIO {
 public:
  StatusOr<PageHandle> Fetch(PageId id) override;
  StatusOr<PageId> AllocatePage() override;
  Status FreePage(PageId id) override;
  StatusOr<PageId> GetRoot(int slot) override;
  Status SetRoot(int slot, PageId id) override;
  StatusOr<uint64_t> GetCounter(int idx) override;
  Status SetCounter(int idx, uint64_t value) override;
  StatusOr<uint32_t> PageCount() override;
  StorageMetrics* metrics() override;

 private:
  friend class StorageEngine;
  explicit ReadTxn(StorageEngine* engine) : engine_(engine) {}

  StorageEngine* engine_;
};

/// The persistence substrate: a paged, WAL-protected, transactional store
/// offering a heap file for records and B+trees (via BTree::Open on a Txn)
/// for indexes — the role of the "persistence library for C++" [10] in the
/// paper's implementation section.
///
/// Concurrency: multi-writer through an exclusive APPLY latch plus a shared
/// GROUP-COMMIT queue; multi-reader through the shared side of the same
/// latch.  A write transaction holds the apply latch (rw_mutex_, exclusive)
/// only from Begin through the in-memory apply and the enqueue of its
/// serialized WAL records; Commit then RELEASES the latch and blocks in the
/// group-commit queue, where the first waiter elects itself leader and
/// batches every queued transaction into one WAL append sequence and a
/// single fsync.  Since the fsync dominates commit cost, independent writers
/// overlap where it matters: many transactions per fsync
/// (groupcommit.commits / groupcommit.fsyncs > 1 under concurrent load).
/// Enqueue order equals apply order, so any crash-surviving WAL prefix is a
/// prefix of the applied transactions — the classic early-lock-release
/// group-commit design.
///
/// Writers may call Begin from any number of threads: each blocks until the
/// apply latch frees (a second Begin on a thread that already holds an open
/// transaction fails instead of self-deadlocking).  A transaction must stay
/// on one thread from Begin to Commit/Abort.  Read-only work runs through
/// WithReadTxn under the shared side of the latch, so readers see only
/// fully applied states.  Because the pool is no-steal (dirty pages are
/// never flushed mid-transaction) and aborts restore undo images before the
/// latch releases, a shared-lock reader always observes a consistent state.
///
/// Dirty-page flushing is the background checkpointer's job: a dedicated
/// thread checkpoints once the WAL passes checkpoint_wal_bytes (commits just
/// signal it) and, in kAsync mode, periodically fsyncs the un-synced WAL
/// tail so the async durability window stays bounded even when writers go
/// idle.
class StorageEngine {
 public:
  static StatusOr<std::unique_ptr<StorageEngine>> Open(
      const StorageOptions& options);
  ~StorageEngine();

  /// Joins the background checkpointer and fires any still-pending
  /// diagnostics dump.  Idempotent; ~StorageEngine calls it, but an owner
  /// whose on_diagnostics hook walks the owner's own state must call it
  /// BEFORE tearing that state down — in particular, unique_ptr::reset
  /// nulls the owner's engine pointer before ~StorageEngine runs, so a
  /// dump fired from the destructor would re-enter the owner through a
  /// null pointer.
  void Shutdown();

  StorageEngine(const StorageEngine&) = delete;
  StorageEngine& operator=(const StorageEngine&) = delete;

  /// Starts a write transaction, blocking until the exclusive apply latch is
  /// free.  Fails if this thread already has one open (cross-thread callers
  /// queue instead).
  StatusOr<Txn*> Begin();

  /// Commits: serializes Begin/PageImage/Commit records for every dirtied
  /// page into one blob, enqueues it on the group-commit queue, releases the
  /// apply latch, then blocks until the records are fsynced (kSync) or
  /// appended (kAsync) — see CommitMode for the durability contract.
  Status Commit(Txn* txn);

  /// Rolls back: restores every dirtied page from its undo image, entirely
  /// under the apply latch (nothing was enqueued, so nothing can become
  /// durable).  Releases the latch.
  Status Abort(Txn* txn);

  /// Runs `body` inside a write transaction; commits on OK, aborts on error
  /// (and returns the body's error).
  Status WithTxn(const std::function<Status(Txn&)>& body);

  /// Runs `body` under the shared (reader) side of the engine lock.  Safe to
  /// call from any thread, including re-entrantly from inside another
  /// WithReadTxn on the same thread (the nested call reuses the outer shared
  /// lock instead of re-acquiring, which std::shared_mutex forbids).
  Status WithReadTxn(const std::function<Status(ReadTxn&)>& body);

  /// Drains the group-commit queue, fsyncs, flushes all dirty pages to the
  /// data file and truncates the WAL.  Must not be called from a thread with
  /// an open transaction; blocks until concurrent writers drain.
  Status Checkpoint();

  /// Blocks until every transaction with id <= txn_id whose commit was
  /// acknowledged is fsync-durable (the kAsync catch-up path; a no-op in
  /// kSync mode or for read-only transactions).  Pass UINT64_MAX to cover
  /// everything acknowledged so far.
  Status WaitForDurable(uint64_t txn_id);

  /// Record storage shared by all higher layers.
  HeapFile& heap() { return heap_; }

  /// Content-addressed blob index over heap(): identical payloads share one
  /// physical record, with refcounts (see payload_store.h).  Like heap(),
  /// stateless per-call — pass the current transaction's PageIO.
  PayloadStore& payload_store() { return payload_store_; }

  /// Object-keyed stripe latches for callers that must order logically
  /// conflicting writers BEFORE they queue for the apply latch (see
  /// WriteLatchSet; the engine itself never acquires these).
  WriteLatchSet& write_latches() { return *write_latches_; }

  CommitMode commit_mode() const { return options_.commit_mode; }

  /// Snapshot of the buffer pool counters.  Thread-safe.
  BufferPoolStats cache_stats() const { return pool_->stats(); }
  const RecoveryStats& last_recovery() const { return recovery_; }
  uint64_t wal_bytes() const;
  /// Total WAL bytes ever appended this session (not reset by checkpoints).
  uint64_t wal_total_bytes() const;
  uint64_t commit_count() const {
    return commit_count_.load(std::memory_order_relaxed);
  }
  uint64_t checkpoint_count() const {
    return checkpoint_count_.load(std::memory_order_relaxed);
  }
  BufferPool& buffer_pool() { return *pool_; }

  /// The engine's resolved instrument bundle (always valid — backed by
  /// StorageOptions::metrics or an engine-private registry).
  StorageMetrics* metrics() { return &metrics_; }

  /// True once a durability failure has poisoned the engine (see
  /// poison_status()).  Reads stay allowed; Begin/Checkpoint refuse.
  bool poisoned() const {
    return poisoned_.load(std::memory_order_acquire);
  }

  /// The engine's durability frontier (see WalWatermarks).  Thread-safe;
  /// the fields are sampled individually, so a concurrent commit may advance
  /// one watermark between reads — the documented ordering still holds
  /// because each watermark only moves forward.
  WalWatermarks wal_watermarks() const;

  /// Point-in-time health verdict: poisoned beats degraded beats ok.
  /// Degradations: WAL backlog over health_max_wal_backlog_bytes, or the
  /// background checkpointer heartbeat older than
  /// health_max_checkpointer_lag_us.  Also refreshes the health.* gauges.
  /// Thread-safe, takes no engine locks.
  HealthReport HealthCheck() const;

  /// Why the engine is poisoned (OK when healthy).  The engine poisons
  /// itself when a group-commit append/fsync failure leaves unsynced
  /// transaction records in the WAL — a later successful Sync would make an
  /// unacknowledged transaction durable and resurrect it at recovery — or
  /// when an abort cannot restore all undo images.  The only safe
  /// continuation is to discard this engine and re-open (recovery ignores
  /// uncommitted tails).  Returned by value: the poison record is written
  /// once under its own mutex, so taking a reference would race the writer.
  Status poison_status() const;

 private:
  friend class Txn;
  friend class ReadTxn;

  StorageEngine() = default;

  Status InitSuperblockIfNeeded();
  /// Marks the engine permanently failed (first cause wins).
  void Poison(const Status& cause);
  /// Journals + force-traces an operation that exceeded its deadline
  /// (no-op when `threshold_us` is 0).
  void NoteSlowOp(const char* op, uint64_t start_ns, uint32_t threshold_us);
  /// Wakes the background checkpointer for a WAL-threshold check.
  void SignalCheckpointer();
  /// Body of the background checkpointer thread.
  void CheckpointerLoop();

  StorageOptions options_;
  /// Fallback registry when StorageOptions::metrics is null.
  std::unique_ptr<MetricsRegistry> owned_registry_;
  StorageMetrics metrics_;
  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<Wal> wal_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<GroupCommit> group_commit_;
  std::unique_ptr<WriteLatchSet> write_latches_;
  HeapFile heap_;
  PayloadStore payload_store_;
  // --- Apply-section state ------------------------------------------------
  // txn_, txn_open_ and next_txn_id_ are touched only between a successful
  // rw_mutex_.Lock() in Begin and the matching Unlock in Commit/Abort, so
  // the latch orders all access — but the lock lifetime spans three
  // functions, which ODE_GUARDED_BY cannot express (see the rw_mutex_
  // comment).  The TSan Concurrent suite covers the discipline at runtime.
  Txn txn_;
  bool txn_open_ = false;
  uint64_t next_txn_id_ = 1;
  RecoveryStats recovery_;
  /// Thread currently holding the apply latch for a write transaction
  /// (default-constructed id when none).  Lets Begin reject a same-thread
  /// double Begin without touching latch-protected state, and Checkpoint
  /// reject a self-deadlocking mid-transaction call.
  std::atomic<std::thread::id> applying_owner_{};
  /// Writers between Begin-intent and their group-commit enqueue: the
  /// lingering leader's "more commits are imminent" probe.
  std::atomic<uint64_t> writers_in_flight_{0};
  /// Highest transaction id ever handed to the group-commit queue
  /// (WaitForDurable clamps to it so read-only txn ids don't wait forever).
  std::atomic<uint64_t> last_enqueued_txn_{0};
  // --- Poison record ------------------------------------------------------
  mutable Mutex poison_mu_;
  Status poison_ ODE_GUARDED_BY(poison_mu_);
  std::atomic<bool> poisoned_{false};  ///< Fast-path mirror of !poison_.ok().
  /// Set by Poison, consumed by the checkpointer thread: fire the
  /// on_diagnostics flight-recorder hook outside every engine lock.
  std::atomic<bool> diagnostics_pending_{false};
  /// Last checkpointer-loop tick, steady-clock microseconds (heartbeat).
  std::atomic<uint64_t> ckpt_heartbeat_us_{0};
  // --- Background checkpointer --------------------------------------------
  Mutex ckpt_mu_;
  CondVar ckpt_cv_;
  bool ckpt_stop_ ODE_GUARDED_BY(ckpt_mu_) = false;
  bool ckpt_signal_ ODE_GUARDED_BY(ckpt_mu_) = false;
  std::thread checkpointer_;  // Started last in Open, joined first in dtor.
  // --- Monitoring counters ------------------------------------------------
  // Written by committing writers (under the apply latch), but read by *any*
  // thread through the public accessors (stats paths run concurrently with a
  // committing writer), so they must be atomic.
  std::atomic<uint64_t> wal_bytes_at_truncate_{0};
  std::atomic<uint64_t> commit_count_{0};
  std::atomic<uint64_t> checkpoint_count_{0};
  /// The apply latch: writers exclusive, readers shared.  Held from Begin
  /// through Commit's enqueue (NOT through the fsync wait) or through the
  /// whole of Abort, and across the whole of WithReadTxn — a lock lifetime
  /// that spans function boundaries, which is why Begin/Commit/Abort opt
  /// out of the static analysis (see the .cc).  For the same reason no
  /// field can carry ODE_GUARDED_BY(rw_mutex_): the fields it protects
  /// (the entire on-disk/buffered state reachable through
  /// disk_/wal_/pool_/heap_) are touched by functions that receive the
  /// lock from their caller rather than taking it themselves.
  // ode_lint: allow(mutex-guard): lock lifetime spans Begin..Commit.
  SharedMutex rw_mutex_;
};

}  // namespace ode

#endif  // ODE_STORAGE_STORAGE_ENGINE_H_
