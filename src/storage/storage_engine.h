#ifndef ODE_STORAGE_STORAGE_ENGINE_H_
#define ODE_STORAGE_STORAGE_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/env.h"
#include "storage/heap_file.h"
#include "storage/page_io.h"
#include "storage/storage_metrics.h"
#include "storage/wal.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/statusor.h"
#include "util/thread_annotations.h"

namespace ode {

class StorageEngine;

/// Tuning and environment knobs for a storage engine instance.
struct StorageOptions {
  /// Filesystem to use; nullptr means Env::Posix().
  Env* env = nullptr;
  /// Directory holding data file and WAL (created if missing).
  std::string path;
  /// Buffer pool capacity in pages (nominal; grows if all frames are
  /// pinned/dirty).
  size_t buffer_pool_pages = 1024;
  /// Buffer pool latch shards; 0 = auto (collapses to 1 for small pools).
  size_t buffer_pool_shards = 0;
  /// Automatic checkpoint once the WAL exceeds this many bytes.
  uint64_t checkpoint_wal_bytes = 8ull << 20;
  /// Registry the engine records its instruments into; nullptr means the
  /// engine owns a private registry (instruments always exist either way,
  /// so hot paths never null-check individual counters).
  MetricsRegistry* metrics = nullptr;
  /// Event tracer for storage spans (commit, fsync, checkpoint); nullptr
  /// disables span recording entirely.
  Tracer* tracer = nullptr;
};

/// One open (single-writer) transaction.
///
/// Implements PageIO so data structures running inside the transaction
/// automatically get: undo capture on first modification of each page
/// (enabling abort), and full-page redo logging at commit (enabling crash
/// recovery).  Page allocation and freeing manipulate the superblock through
/// the same mechanism, so allocation state is transactional too.
class Txn : public PageIO {
 public:
  StatusOr<PageHandle> Fetch(PageId id) override;
  StatusOr<PageId> AllocatePage() override;
  Status FreePage(PageId id) override;
  StatusOr<PageId> GetRoot(int slot) override;
  Status SetRoot(int slot, PageId id) override;
  StatusOr<uint64_t> GetCounter(int idx) override;
  Status SetCounter(int idx, uint64_t value) override;
  StatusOr<uint32_t> PageCount() override;
  StorageMetrics* metrics() override;

  uint64_t id() const { return id_; }

 private:
  friend class StorageEngine;
  Txn() = default;

  struct UndoImage {
    std::string image;  // kPageSize bytes captured before first modification.
    bool was_dirty;     // Dirty flag to restore on abort.
  };

  StorageEngine* engine_ = nullptr;
  uint64_t id_ = 0;
  bool active_ = false;
  std::map<PageId, UndoImage> undo_;
};

/// A lightweight read-only transaction: no undo map, no WAL interaction.
///
/// Implements PageIO so the same data structures (HeapFile reads, BTree
/// lookups) run unchanged on the read path; the mutating PageIO methods fail
/// with FailedPrecondition.  Superblock accessors use the const read view,
/// so a ReadTxn can never dirty a page.
///
/// ReadTxns are created by StorageEngine::WithReadTxn, which holds the
/// engine's shared lock for the duration: any number of ReadTxns run in
/// parallel, all excluded from the (single) write transaction.
class ReadTxn : public PageIO {
 public:
  StatusOr<PageHandle> Fetch(PageId id) override;
  StatusOr<PageId> AllocatePage() override;
  Status FreePage(PageId id) override;
  StatusOr<PageId> GetRoot(int slot) override;
  Status SetRoot(int slot, PageId id) override;
  StatusOr<uint64_t> GetCounter(int idx) override;
  Status SetCounter(int idx, uint64_t value) override;
  StatusOr<uint32_t> PageCount() override;
  StorageMetrics* metrics() override;

 private:
  friend class StorageEngine;
  explicit ReadTxn(StorageEngine* engine) : engine_(engine) {}

  StorageEngine* engine_;
};

/// The persistence substrate: a paged, WAL-protected, transactional store
/// offering a heap file for records and B+trees (via BTree::Open on a Txn)
/// for indexes — the role of the "persistence library for C++" [10] in the
/// paper's implementation section.
///
/// Concurrency: single-writer / multi-reader.  Write transactions
/// (Begin/Commit/Abort, WithTxn) hold an engine-level exclusive lock, so at
/// most one runs at a time and must stay on one thread from Begin to
/// Commit/Abort.  Read-only work runs through WithReadTxn under the shared
/// side of the same lock, from any number of threads in parallel.  Because
/// the pool is no-steal (dirty pages are never flushed mid-transaction) and
/// the exclusive lock covers the whole write transaction, a shared-lock
/// reader always observes a consistent committed state.  (The paper sets
/// aside concurrency control; this is the minimal model that lets reads
/// scale with cores.)
class StorageEngine {
 public:
  static StatusOr<std::unique_ptr<StorageEngine>> Open(
      const StorageOptions& options);
  ~StorageEngine();

  StorageEngine(const StorageEngine&) = delete;
  StorageEngine& operator=(const StorageEngine&) = delete;

  /// Starts the (single) write transaction, taking the exclusive lock.
  /// Fails if one is already open.
  StatusOr<Txn*> Begin();

  /// Durably commits: logs after-images of every dirtied page, then the
  /// commit record, then syncs the WAL.  Releases the exclusive lock; may
  /// trigger an automatic checkpoint.
  Status Commit(Txn* txn);

  /// Rolls back: restores every dirtied page from its undo image.  Releases
  /// the exclusive lock.
  Status Abort(Txn* txn);

  /// Runs `body` inside a write transaction; commits on OK, aborts on error
  /// (and returns the body's error).
  Status WithTxn(const std::function<Status(Txn&)>& body);

  /// Runs `body` under the shared (reader) side of the engine lock.  Safe to
  /// call from any thread, including re-entrantly from inside another
  /// WithReadTxn on the same thread (the nested call reuses the outer shared
  /// lock instead of re-acquiring, which std::shared_mutex forbids).
  Status WithReadTxn(const std::function<Status(ReadTxn&)>& body);

  /// Flushes all dirty pages to the data file and truncates the WAL.  Must
  /// not be called with an open transaction.  Takes the exclusive lock.
  Status Checkpoint();

  /// Record storage shared by all higher layers.
  HeapFile& heap() { return heap_; }

  /// Snapshot of the buffer pool counters.  Thread-safe.
  BufferPoolStats cache_stats() const { return pool_->stats(); }
  const RecoveryStats& last_recovery() const { return recovery_; }
  uint64_t wal_bytes() const;
  /// Total WAL bytes ever appended this session (not reset by checkpoints).
  uint64_t wal_total_bytes() const;
  uint64_t commit_count() const {
    return commit_count_.load(std::memory_order_relaxed);
  }
  uint64_t checkpoint_count() const {
    return checkpoint_count_.load(std::memory_order_relaxed);
  }
  BufferPool& buffer_pool() { return *pool_; }

  /// The engine's resolved instrument bundle (always valid — backed by
  /// StorageOptions::metrics or an engine-private registry).
  StorageMetrics* metrics() { return &metrics_; }

  /// True once a durability failure has poisoned the engine (see
  /// poison_status()).  Reads stay allowed; Begin/Commit/Checkpoint refuse.
  bool poisoned() const { return !poison_.ok(); }

  /// Why the engine is poisoned (OK when healthy).  The engine poisons
  /// itself when a failed durable-commit leaves unsynced transaction records
  /// in the WAL — a later successful Sync would make the rolled-back
  /// transaction durable and resurrect it at recovery — or when an abort
  /// cannot restore all undo images.  The only safe continuation is to
  /// discard this engine and re-open (recovery ignores uncommitted tails).
  const Status& poison_status() const { return poison_; }

 private:
  friend class Txn;
  friend class ReadTxn;

  StorageEngine() = default;

  Status InitSuperblockIfNeeded();

  StorageOptions options_;
  /// Fallback registry when StorageOptions::metrics is null.
  std::unique_ptr<MetricsRegistry> owned_registry_;
  StorageMetrics metrics_;
  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<Wal> wal_;
  std::unique_ptr<BufferPool> pool_;
  HeapFile heap_;
  // --- Writer-thread state ------------------------------------------------
  // txn_, txn_open_, next_txn_id_, poison_ and recovery_ are only touched by
  // the (single) writer thread: Begin reads txn_open_ *before* taking the
  // exclusive lock (taking it first would deadlock a double-Begin), so these
  // fields cannot carry ODE_GUARDED_BY(rw_mutex_) — the discipline is the
  // single-writer contract, enforced by the TSan Concurrent suite.
  Txn txn_;
  bool txn_open_ = false;
  uint64_t next_txn_id_ = 1;
  Status poison_;  ///< Non-OK after an unrecoverable durability failure.
  RecoveryStats recovery_;
  // --- Monitoring counters ------------------------------------------------
  // Written by the writer thread (under the exclusive lock), but read by
  // *any* thread through the public accessors (stats paths run concurrently
  // with a committing writer), so they must be atomic.
  std::atomic<uint64_t> wal_bytes_at_truncate_{0};
  std::atomic<uint64_t> commit_count_{0};
  std::atomic<uint64_t> checkpoint_count_{0};
  /// Writers exclusive, readers shared.  Held across the whole write
  /// transaction (Begin to Commit/Abort) and the whole of WithReadTxn —
  /// a lock lifetime that spans function boundaries, which is why Begin/
  /// Commit/Abort opt out of the static analysis (see the .cc).  For the
  /// same reason no field can carry ODE_GUARDED_BY(rw_mutex_): the fields
  /// it protects (the entire on-disk/buffered state reachable through
  /// disk_/wal_/pool_/heap_) are touched by functions that receive the
  /// lock from their caller rather than taking it themselves.
  // ode_lint: allow(mutex-guard): lock lifetime spans Begin..Commit.
  SharedMutex rw_mutex_;
};

}  // namespace ode

#endif  // ODE_STORAGE_STORAGE_ENGINE_H_
