#ifndef ODE_STORAGE_PAGE_H_
#define ODE_STORAGE_PAGE_H_

#include <cstdint>

namespace ode {

/// Size of every page in the database file.  4 KiB matches common filesystem
/// block sizes; all on-disk structures (heap, B+tree, superblock) are page
/// granular.
inline constexpr uint32_t kPageSize = 4096;

/// Page number within the database file.  Page 0 is the superblock.
using PageId = uint32_t;

/// Sentinel for "no page".
inline constexpr PageId kInvalidPageId = 0;

/// Discriminates the on-disk layout of a page.  Stored in the first byte of
/// every page so integrity checks and the heap free-space scan can classify
/// pages without external metadata.
enum class PageType : uint8_t {
  kFree = 0,       ///< On the free list (or never classified).
  kSuper = 1,      ///< Page 0: database header.
  kHeap = 2,       ///< Slotted page holding record fragments.
  kOverflow = 3,   ///< Continuation page of a large record.
  kBTreeLeaf = 4,  ///< B+tree leaf node.
  kBTreeInternal = 5,  ///< B+tree internal node.
};

/// Common 8-byte header at the start of every non-super page:
///   byte 0    : PageType
///   bytes 1-3 : reserved (zero)
///   bytes 4-7 : page-type-specific (e.g., free-list next pointer)
inline constexpr uint32_t kPageHeaderSize = 8;

}  // namespace ode

#endif  // ODE_STORAGE_PAGE_H_
