#ifndef ODE_STORAGE_ENV_H_
#define ODE_STORAGE_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/slice.h"
#include "util/status.h"
#include "util/statusor.h"

namespace ode {

/// Random-access file handle.
///
/// All storage-layer I/O flows through this interface so tests can run on an
/// in-memory filesystem and fault-injection wrappers can simulate crashes.
/// Offsets are absolute; files grow automatically on writes past EOF.
class File {
 public:
  virtual ~File() = default;

  /// Reads up to `n` bytes at `offset` into `scratch`; `*result` points into
  /// scratch (or an internal buffer) and may be shorter than `n` at EOF.
  virtual Status Read(uint64_t offset, size_t n, std::string* scratch,
                      Slice* result) = 0;

  /// Writes `data` at `offset`, extending the file if needed.
  virtual Status Write(uint64_t offset, const Slice& data) = 0;

  /// Appends `data` at the current end of file.
  virtual Status Append(const Slice& data) = 0;

  /// Durably flushes all written data (fsync).
  virtual Status Sync() = 0;

  /// Truncates the file to `size` bytes.
  virtual Status Truncate(uint64_t size) = 0;

  /// Current size in bytes.
  virtual StatusOr<uint64_t> Size() = 0;
};

/// Filesystem abstraction (the RocksDB Env idiom).
class Env {
 public:
  virtual ~Env() = default;

  /// Opens `path` read-write, creating it if absent.
  virtual StatusOr<std::unique_ptr<File>> OpenFile(const std::string& path) = 0;

  virtual bool FileExists(const std::string& path) = 0;
  virtual Status DeleteFile(const std::string& path) = 0;
  virtual Status RenameFile(const std::string& from, const std::string& to) = 0;
  virtual Status CreateDir(const std::string& path) = 0;
  virtual StatusOr<std::vector<std::string>> ListDir(
      const std::string& path) = 0;

  /// Process-wide POSIX environment (never deleted).
  static Env* Posix();
};

/// Fully in-memory Env for unit tests and benchmarks: identical semantics to
/// the POSIX Env, no disk I/O.  Concurrency contract matches the library's
/// single-writer / multi-reader model: concurrent Read/Size on a file are
/// safe (they touch the backing string read-only), but any write (Write,
/// Append, Truncate) and any Env-level mutation (OpenFile, DeleteFile, ...)
/// must be externally excluded from all other accesses — which the storage
/// engine's writer lock guarantees.
class MemEnv : public Env {
 public:
  MemEnv();
  ~MemEnv() override;

  StatusOr<std::unique_ptr<File>> OpenFile(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Status DeleteFile(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status CreateDir(const std::string& path) override;
  StatusOr<std::vector<std::string>> ListDir(const std::string& path) override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// The crash / fault-injection Env wrapper lives in storage/fault_env.h.

}  // namespace ode

#endif  // ODE_STORAGE_ENV_H_
