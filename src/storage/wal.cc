#include "storage/wal.h"

#include <cstring>
#include <set>

#include "storage/storage_metrics.h"
#include "util/byte_buffer.h"
#include "util/coding.h"
#include "util/crc32c.h"
#include "util/logging.h"

namespace ode {

StatusOr<std::unique_ptr<Wal>> Wal::Open(Env* env, const std::string& path) {
  auto file = env->OpenFile(path);
  if (!file.ok()) return file.status();
  return std::unique_ptr<Wal>(new Wal(std::move(*file)));
}

namespace {

/// Wraps `payload` in the on-disk frame (u32 length | u32 masked CRC32C)
/// and appends the framed bytes to `*out`.
void Frame(const std::string& payload, std::string* out) {
  PutFixed32(out, static_cast<uint32_t>(payload.size()));
  PutFixed32(out,
             crc32c::Mask(crc32c::Value(payload.data(), payload.size())));
  out->append(payload);
}

}  // namespace

void Wal::EncodeBegin(uint64_t txn_id, std::string* out) {
  std::string payload;
  payload.push_back(static_cast<char>(WalRecordType::kBegin));
  PutVarint64(&payload, txn_id);
  Frame(payload, out);
}

void Wal::EncodePageImage(uint64_t txn_id, PageId page_id, const char* image,
                          std::string* out) {
  // Trailing zeros are suppressed: pages are often half-empty (fresh
  // slotted pages, short B+tree nodes), and recovery pads them back.
  size_t effective = kPageSize;
  while (effective > 0 && image[effective - 1] == '\0') --effective;

  std::string payload;
  payload.reserve(1 + 10 + 4 + 5 + effective);
  payload.push_back(static_cast<char>(WalRecordType::kPageImage));
  PutVarint64(&payload, txn_id);
  PutFixed32(&payload, page_id);
  PutVarint64(&payload, effective);
  payload.append(image, effective);
  Frame(payload, out);
}

void Wal::EncodeCommit(uint64_t txn_id, std::string* out) {
  std::string payload;
  payload.push_back(static_cast<char>(WalRecordType::kCommit));
  PutVarint64(&payload, txn_id);
  Frame(payload, out);
}

Status Wal::AppendBlob(const std::string& framed, uint64_t record_count) {
  {
    ScopedLatency timer(metrics_ != nullptr ? metrics_->wal_append_ns
                                            : nullptr);
    ODE_RETURN_IF_ERROR(file_->Append(Slice(framed)));
  }
  bytes_appended_.fetch_add(framed.size(), std::memory_order_relaxed);
  if (metrics_ != nullptr) {
    metrics_->wal_appends->Add(record_count);
    metrics_->wal_append_bytes->Add(framed.size());
  }
  return Status::OK();
}

Status Wal::AppendBegin(uint64_t txn_id) {
  std::string framed;
  EncodeBegin(txn_id, &framed);
  return AppendBlob(framed, 1);
}

Status Wal::AppendPageImage(uint64_t txn_id, PageId page_id,
                            const char* image) {
  std::string framed;
  EncodePageImage(txn_id, page_id, image, &framed);
  return AppendBlob(framed, 1);
}

Status Wal::AppendCommit(uint64_t txn_id) {
  std::string framed;
  EncodeCommit(txn_id, &framed);
  return AppendBlob(framed, 1);
}

Status Wal::Sync() {
  TraceSpan span(metrics_ != nullptr ? metrics_->tracer : nullptr, "wal.fsync",
                 "storage");
  ScopedLatency timer(metrics_ != nullptr ? metrics_->wal_fsync_ns : nullptr);
  ODE_RETURN_IF_ERROR(file_->Sync());
  sync_count_.fetch_add(1, std::memory_order_relaxed);
  if (metrics_ != nullptr) metrics_->wal_fsyncs->Increment();
  return Status::OK();
}

Status Wal::Truncate() {
  ODE_RETURN_IF_ERROR(file_->Truncate(0));
  return file_->Sync();
}

Status Wal::Scan(std::vector<WalRecord>* records, bool* tail_truncated) {
  *tail_truncated = false;
  auto size_or = file_->Size();
  if (!size_or.ok()) return size_or.status();
  const uint64_t file_size = *size_or;

  uint64_t offset = 0;
  std::string scratch;
  while (offset + 8 <= file_size) {
    Slice header;
    ODE_RETURN_IF_ERROR(file_->Read(offset, 8, &scratch, &header));
    if (header.size() < 8) {
      *tail_truncated = true;
      break;
    }
    const uint32_t length = DecodeFixed32(header.data());
    const uint32_t masked_crc = DecodeFixed32(header.data() + 4);
    if (offset + 8 + length > file_size || length > (64u << 20)) {
      *tail_truncated = true;  // Torn append or garbage length.
      break;
    }
    std::string payload_scratch;
    Slice payload;
    ODE_RETURN_IF_ERROR(
        file_->Read(offset + 8, length, &payload_scratch, &payload));
    if (payload.size() < length ||
        crc32c::Unmask(masked_crc) !=
            crc32c::Value(payload.data(), payload.size())) {
      *tail_truncated = true;
      break;
    }

    BufferReader reader(payload);
    uint8_t type_byte = 0;
    uint64_t txn_id = 0;
    Status s = reader.ReadU8(&type_byte);
    if (s.ok()) s = reader.ReadVarint64(&txn_id);
    if (!s.ok()) {
      *tail_truncated = true;
      break;
    }
    WalRecord record;
    record.txn_id = txn_id;
    switch (static_cast<WalRecordType>(type_byte)) {
      case WalRecordType::kBegin:
        record.type = WalRecordType::kBegin;
        break;
      case WalRecordType::kCommit:
        record.type = WalRecordType::kCommit;
        break;
      case WalRecordType::kPageImage: {
        record.type = WalRecordType::kPageImage;
        uint32_t pid = 0;
        uint64_t effective = 0;
        s = reader.ReadU32(&pid);
        if (s.ok()) s = reader.ReadVarint64(&effective);
        if (!s.ok() || effective > kPageSize ||
            reader.remaining() != effective) {
          *tail_truncated = true;
          return Status::OK();
        }
        record.page_id = pid;
        // Re-pad the suppressed trailing zeros.
        record.image.assign(reader.rest().data(), effective);
        record.image.resize(kPageSize, '\0');
        break;
      }
      default:
        *tail_truncated = true;
        return Status::OK();
    }
    records->push_back(std::move(record));
    offset += 8 + length;
  }
  if (offset < file_size && !*tail_truncated) *tail_truncated = true;
  return Status::OK();
}

StatusOr<std::vector<WalRecord>> Wal::ReadAll() {
  std::vector<WalRecord> records;
  bool tail_truncated = false;
  ODE_RETURN_IF_ERROR(Scan(&records, &tail_truncated));
  return records;
}

StatusOr<RecoveryStats> Wal::Recover(DiskManager* disk) {
  std::vector<WalRecord> records;
  RecoveryStats stats;
  ODE_RETURN_IF_ERROR(Scan(&records, &stats.tail_truncated));
  stats.records_scanned = records.size();

  std::set<uint64_t> committed;
  std::set<uint64_t> begun;
  for (const WalRecord& r : records) {
    if (r.type == WalRecordType::kBegin) begun.insert(r.txn_id);
    if (r.type == WalRecordType::kCommit) committed.insert(r.txn_id);
  }
  stats.committed_txns = committed.size();
  for (uint64_t t : begun) {
    if (committed.count(t) == 0) ++stats.discarded_txns;
  }

  // Redo in log order: later images of the same page overwrite earlier ones,
  // which is exactly the desired last-committed-writer-wins semantics.
  for (const WalRecord& r : records) {
    if (r.type == WalRecordType::kPageImage && committed.count(r.txn_id) > 0) {
      ODE_RETURN_IF_ERROR(disk->WritePage(r.page_id, r.image.data()));
      ++stats.pages_replayed;
    }
  }
  if (stats.pages_replayed > 0) {
    ODE_RETURN_IF_ERROR(disk->Sync());
  }
  ODE_LOG_INFO << "WAL recovery: " << stats.committed_txns
               << " committed txns, " << stats.pages_replayed
               << " pages replayed, " << stats.discarded_txns << " discarded";
  return stats;
}

}  // namespace ode
