#ifndef ODE_STORAGE_BUFFER_POOL_H_
#define ODE_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "storage/disk_manager.h"
#include "storage/page.h"
#include "util/status.h"
#include "util/statusor.h"

namespace ode {

class BufferPool;

/// RAII pin on a cached page frame.
///
/// While a PageHandle is alive the frame cannot be evicted.  `data()` gives
/// read access; `mutable_data()` additionally marks the page dirty, which (on
/// the first modification within the current epoch, i.e., transaction) fires
/// the pool's pre-dirty hook so the transaction layer can capture an undo
/// image.
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;
  PageHandle(PageHandle&& other) noexcept { MoveFrom(other); }
  PageHandle& operator=(PageHandle&& other) noexcept {
    if (this != &other) {
      Release();
      MoveFrom(other);
    }
    return *this;
  }
  ~PageHandle() { Release(); }

  bool valid() const { return pool_ != nullptr; }
  PageId id() const { return id_; }
  const char* data() const;
  /// Returns writable page bytes, marking the page dirty.
  char* mutable_data();

  /// Drops the pin early.
  void Release();

 private:
  friend class BufferPool;
  PageHandle(BufferPool* pool, PageId id) : pool_(pool), id_(id) {}
  void MoveFrom(PageHandle& other) {
    pool_ = other.pool_;
    id_ = other.id_;
    other.pool_ = nullptr;
    other.id_ = kInvalidPageId;
  }

  BufferPool* pool_ = nullptr;
  PageId id_ = kInvalidPageId;
};

/// Cache statistics (cumulative since construction).
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t flushes = 0;
};

/// LRU page cache over a DiskManager.
///
/// Policy choices, driven by the WAL design (redo logging of page
/// after-images, no-steal for uncommitted pages):
///  - Dirty frames are NEVER written back by eviction; only FlushAll() (the
///    checkpoint path) writes pages.  If every frame is pinned or dirty the
///    pool grows past its nominal capacity rather than fail.
///  - An "epoch" corresponds to one transaction.  The first time a frame is
///    dirtied within an epoch the pre-dirty hook runs with the frame's
///    current contents, letting the transaction capture an undo image for
///    abort.
///
/// Single-threaded by design (the paper explicitly sets aside concurrency
/// control).
class BufferPool {
 public:
  /// Called with (page id, pre-modification bytes, was already dirty from an
  /// earlier epoch) on the first modification of a page in this epoch.
  using PreDirtyHook =
      std::function<void(PageId, const char* data, bool was_dirty)>;

  BufferPool(DiskManager* disk, size_t capacity_pages);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins page `id`, reading it from disk on a miss.
  StatusOr<PageHandle> Fetch(PageId id);

  /// Begins a new dirty-tracking epoch (call at transaction start).
  void BeginEpoch();

  /// Pages first dirtied in the current epoch, in dirtying order.
  const std::vector<PageId>& EpochDirtyPages() const {
    return epoch_dirty_list_;
  }

  /// Overwrites the cached frame of `id` with `image` and sets its dirty flag
  /// to `dirty` (transaction abort path).  The page must be resident.
  Status RestorePage(PageId id, const char* image, bool dirty);

  /// Marks every epoch-dirty page as plain-dirty (commit path: the epoch's
  /// undo images are no longer needed, but pages still await a checkpoint
  /// flush).
  void CommitEpoch();

  /// Writes all dirty frames to disk and clears their dirty flags.  Must not
  /// be called mid-transaction (checked).
  Status FlushAll();

  /// Drops every unpinned frame (clean or dirty) without writing.  Used by
  /// recovery tests to force re-reads from disk.
  void DropAllUnpinned();

  void set_pre_dirty_hook(PreDirtyHook hook) { pre_dirty_hook_ = std::move(hook); }

  const BufferPoolStats& stats() const { return stats_; }
  size_t resident_pages() const { return frames_.size(); }
  size_t capacity() const { return capacity_; }
  bool in_epoch() const { return in_epoch_; }

 private:
  friend class PageHandle;

  struct Frame {
    PageId id = kInvalidPageId;
    std::unique_ptr<char[]> data;
    int pin_count = 0;
    bool dirty = false;        // Modified since last flush.
    bool epoch_dirty = false;  // Modified in the current epoch.
    std::list<PageId>::iterator lru_pos;
    bool in_lru = false;
  };

  const char* FrameData(PageId id) const;
  char* FrameMutableData(PageId id);
  void Unpin(PageId id);
  Status EvictOneIfNeeded();
  void TouchLru(Frame* frame);

  DiskManager* disk_;
  size_t capacity_;
  std::unordered_map<PageId, Frame> frames_;
  std::list<PageId> lru_;  // Front = most recently used.
  std::vector<PageId> epoch_dirty_list_;
  bool in_epoch_ = false;
  PreDirtyHook pre_dirty_hook_;
  BufferPoolStats stats_;
};

}  // namespace ode

#endif  // ODE_STORAGE_BUFFER_POOL_H_
