#ifndef ODE_STORAGE_BUFFER_POOL_H_
#define ODE_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "storage/disk_manager.h"
#include "storage/page.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/statusor.h"
#include "util/thread_annotations.h"

namespace ode {

class BufferPool;
struct StorageMetrics;

/// RAII pin on a cached page frame.
///
/// While a PageHandle is alive the frame cannot be evicted.  `data()` gives
/// read access; `mutable_data()` additionally marks the page dirty, which (on
/// the first modification within the current epoch, i.e., transaction) fires
/// the pool's pre-dirty hook so the transaction layer can capture an undo
/// image.
///
/// The handle caches the frame pointer, so `data()` and `Release()` are
/// lock-free: unordered_map guarantees element address stability and a pinned
/// frame is never evicted, so the pointer stays valid for the handle's
/// lifetime.
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;
  PageHandle(PageHandle&& other) noexcept { MoveFrom(other); }
  PageHandle& operator=(PageHandle&& other) noexcept {
    if (this != &other) {
      Release();
      MoveFrom(other);
    }
    return *this;
  }
  ~PageHandle() { Release(); }

  bool valid() const { return pool_ != nullptr; }
  PageId id() const { return id_; }
  const char* data() const;
  /// Returns writable page bytes, marking the page dirty.  Writer-side only.
  char* mutable_data();

  /// Drops the pin early.
  void Release();

 private:
  friend class BufferPool;
  struct Frame;
  PageHandle(BufferPool* pool, Frame* frame, PageId id)
      : pool_(pool), frame_(frame), id_(id) {}
  void MoveFrom(PageHandle& other) {
    pool_ = other.pool_;
    frame_ = other.frame_;
    id_ = other.id_;
    other.pool_ = nullptr;
    other.frame_ = nullptr;
    other.id_ = kInvalidPageId;
  }

  BufferPool* pool_ = nullptr;
  Frame* frame_ = nullptr;
  PageId id_ = kInvalidPageId;
};

/// One cached page.  Frames live in a shard's unordered_map, whose elements
/// have stable addresses, so PageHandle can hold a raw Frame* across its
/// lifetime.  `pin_count` is atomic: handles release pins without taking the
/// shard lock, and eviction (which does hold the lock) acquire-loads it.
/// The dirty/LRU fields are only read or written under the owning shard's
/// mutex — a guard relationship that spans objects, which the static
/// analysis cannot express (ODE_GUARDED_BY can only name a field of the
/// same class), so it is enforced by review plus the TSan Concurrent suite.
struct PageHandle::Frame {
  PageId id = kInvalidPageId;
  std::unique_ptr<char[]> data;
  std::atomic<int> pin_count{0};
  bool dirty = false;        // Modified since last flush.
  bool epoch_dirty = false;  // Modified in the current epoch.
  std::list<PageId>::iterator lru_pos;
  bool in_lru = false;
};

/// Cache statistics (cumulative since construction).  Returned by value as a
/// coherent snapshot of the pool's per-shard counters.
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t flushes = 0;
};

/// Sharded LRU page cache over a DiskManager.
///
/// Policy choices, driven by the WAL design (redo logging of page
/// after-images, no-steal for uncommitted pages):
///  - Dirty frames are NEVER written back by eviction; only FlushAll() (the
///    checkpoint path) writes pages.  If every frame is pinned or dirty the
///    pool grows past its nominal capacity rather than fail.
///  - An "epoch" corresponds to one transaction.  The first time a frame is
///    dirtied within an epoch the pre-dirty hook runs with the frame's
///    current contents, letting the transaction capture an undo image for
///    abort.
///
/// Concurrency contract (single-writer / multi-reader):
///  - Fetch(), data(), Release() and stats() may be called from any number
///    of reader threads concurrently.  The frame table and LRU are
///    partitioned into shards, each guarded by its own mutex (annotated
///    below, so `clang -Wthread-safety` proves every access), so concurrent
///    fetches of pages in different shards never contend.  Pin counts are
///    atomic, making handle release lock-free.
///  - Everything that mutates page contents or epoch state (mutable_data,
///    BeginEpoch/CommitEpoch, RestorePage, FlushAll, DropAllUnpinned,
///    set_pre_dirty_hook) is writer-side: the caller (StorageEngine) must
///    ensure no reader runs concurrently, which it does with an engine-level
///    shared mutex.  Shard locks are still taken where those paths touch
///    shard structures so reader-vs-writer metadata access stays ordered.
class BufferPool {
 public:
  /// Called with (page id, pre-modification bytes, was already dirty from an
  /// earlier epoch) on the first modification of a page in this epoch.
  using PreDirtyHook =
      std::function<void(PageId, const char* data, bool was_dirty)>;

  /// `shards` = 0 picks automatically: the largest power of two <= 16 that
  /// keeps at least 64 pages per shard.  Small pools therefore collapse to a
  /// single shard and behave exactly like the classic single-structure LRU
  /// (same eviction order and counts), which exact-count tests rely on.
  /// Explicit counts are rounded down to a power of two.
  BufferPool(DiskManager* disk, size_t capacity_pages, size_t shards = 0);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins page `id`, reading it from disk on a miss.  Thread-safe.
  StatusOr<PageHandle> Fetch(PageId id);

  /// Begins a new dirty-tracking epoch (call at transaction start).
  void BeginEpoch();

  /// Pages first dirtied in the current epoch, in dirtying order.
  const std::vector<PageId>& EpochDirtyPages() const {
    return epoch_dirty_list_;
  }

  /// Overwrites the cached frame of `id` with `image` and sets its dirty flag
  /// to `dirty` (transaction abort path).  The page must be resident.
  Status RestorePage(PageId id, const char* image, bool dirty);

  /// Marks every epoch-dirty page as plain-dirty (commit path: the epoch's
  /// undo images are no longer needed, but pages still await a checkpoint
  /// flush).
  void CommitEpoch();

  /// Writes all dirty frames to disk and clears their dirty flags.  Must not
  /// be called mid-transaction (checked).
  Status FlushAll();

  /// Drops every unpinned frame (clean or dirty) without writing.  Used by
  /// recovery tests to force re-reads from disk.
  void DropAllUnpinned();

  void set_pre_dirty_hook(PreDirtyHook hook) { pre_dirty_hook_ = std::move(hook); }

  /// Attaches the owning engine's instrument bundle: disk reads on misses
  /// and checkpoint writes get counted and timed.  The hit/miss/eviction
  /// counters stay per-shard (see stats()) and are mirrored into the
  /// registry only at snapshot time, keeping Fetch free of extra atomics.
  void set_metrics(StorageMetrics* metrics) { metrics_ = metrics; }

  /// Coherent snapshot of the cumulative counters.  Thread-safe.
  BufferPoolStats stats() const;
  /// Total resident frames across all shards.  Thread-safe.
  size_t resident_pages() const;
  size_t capacity() const { return capacity_; }
  size_t shard_count() const { return shards_.size(); }
  bool in_epoch() const { return in_epoch_; }

 private:
  friend class PageHandle;
  using Frame = PageHandle::Frame;

  /// One latch-partition of the pool: a slice of the frame table plus its
  /// own LRU list, guarded by a single mutex.
  struct Shard {
    Mutex mu;
    std::unordered_map<PageId, Frame> frames ODE_GUARDED_BY(mu);
    std::list<PageId> lru ODE_GUARDED_BY(mu);  // Front = most recently used.
    size_t capacity = 0;  // Nominal frame budget; immutable after init.
    BufferPoolStats stats ODE_GUARDED_BY(mu);
  };

  Shard& ShardFor(PageId id);
  char* FrameMutableData(Frame* frame);
  Status EvictOneIfNeeded(Shard& shard) ODE_REQUIRES(shard.mu);
  void TouchLru(Shard& shard, Frame* frame) ODE_REQUIRES(shard.mu);

  DiskManager* disk_;
  size_t capacity_;
  size_t shard_mask_ = 0;  // shard count - 1 (count is a power of two).
  std::vector<std::unique_ptr<Shard>> shards_;
  // Writer-side epoch state: only touched between BeginEpoch/CommitEpoch
  // while the engine holds its exclusive lock.
  std::vector<PageId> epoch_dirty_list_;
  bool in_epoch_ = false;
  PreDirtyHook pre_dirty_hook_;
  StorageMetrics* metrics_ = nullptr;
};

}  // namespace ode

#endif  // ODE_STORAGE_BUFFER_POOL_H_
