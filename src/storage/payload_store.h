#ifndef ODE_STORAGE_PAYLOAD_STORE_H_
#define ODE_STORAGE_PAYLOAD_STORE_H_

#include <cstdint>
#include <functional>
#include <string>

#include "storage/heap_file.h"
#include "storage/page_io.h"
#include "util/hash128.h"
#include "util/metrics.h"
#include "util/slice.h"
#include "util/status.h"
#include "util/statusor.h"

namespace ode {

/// Superblock root slot of the content-addressed payload index.  Slots 0-4
/// belong to the core catalog trees (core/meta.h); slot 7 is the core
/// layer's vacuum scratch slot.
inline constexpr int kPayloadsTreeSlot = 5;

/// One entry of the content-addressed index: hash -> (refcount, size, rid).
struct PayloadStoreEntry {
  uint64_t refcount = 0;
  /// Byte length of the stored blob; checked on every dedupe hit so a hash
  /// collision surfaces as Corruption instead of silently aliasing payloads.
  uint64_t size = 0;
  /// Heap record holding the blob bytes.
  RecordId rid;
};

/// Wire form of one index entry: varint refcount | varint size | u64 rid.
std::string EncodePayloadStoreEntry(const PayloadStoreEntry& entry);

/// Decodes an index entry read from the tree.  The bytes are disk input:
/// truncation, varint overrun, and trailing garbage all fail as Corruption.
Status DecodePayloadStoreEntry(const Slice& bytes, PayloadStoreEntry* out);

/// Content-addressed blob store: payload bytes are keyed by their 128-bit
/// content hash, with refcounts, so identical payloads anywhere in the
/// database share ONE physical heap record.
///
/// Layout: the blob bytes live in the shared HeapFile; an index B+tree at
/// superblock slot kPayloadsTreeSlot maps Hash128::Encode() -> entry
/// (refcount, size, record id).  Like HeapFile, this class is a stateless
/// façade — every call runs against the caller's PageIO (the current
/// transaction), so ref/unref mutations are covered by the engine's
/// physical page-image WAL exactly like any other tree or heap edit: no new
/// logical record types, and crash recovery replays or discards a whole
/// transaction's refcount changes atomically with the metadata that
/// justified them.
///
/// Concurrency: mutating calls take a Txn's PageIO and therefore run under
/// the engine's exclusive apply latch; read-only calls (Lookup/ForEach) are
/// safe under the shared latch.  The metrics counters are atomic.
class PayloadStore {
 public:
  PayloadStore() = default;
  PayloadStore(const PayloadStore&) = delete;
  PayloadStore& operator=(const PayloadStore&) = delete;

  /// Resolves the store's instruments out of `registry` (called once by
  /// StorageEngine::Open; recording through the pointers is lock-free).
  void AttachMetrics(MetricsRegistry* registry);

  /// Stores `payload` under its content hash.  If an identical blob already
  /// exists its refcount is bumped and the existing record id is returned
  /// (a dedupe hit: no payload bytes are written); otherwise the bytes are
  /// inserted into `heap` and a fresh entry with refcount 1 is created.
  /// Reports the content hash through `hash_out` (never the zero hash).
  StatusOr<RecordId> Ref(PageIO* io, HeapFile& heap, const Slice& payload,
                         Hash128* hash_out);

  /// Bumps the refcount of the existing blob `hash` (the blob-sharing path:
  /// the caller already knows the bytes are present).  Returns the record id
  /// holding the bytes; NotFound if no such blob exists.
  StatusOr<RecordId> RefExisting(PageIO* io, const Hash128& hash);

  /// Drops one reference from blob `hash`.  At zero the index entry is
  /// removed and the heap record freed.  `expected_rid` cross-checks the
  /// caller's metadata against the index (mismatch = Corruption).
  Status Unref(PageIO* io, HeapFile& heap, const Hash128& hash,
               RecordId expected_rid);

  /// Index lookup; NotFound if `hash` has no entry.
  StatusOr<PayloadStoreEntry> Lookup(PageIO* io, const Hash128& hash);

  /// Scans every index entry in hash order.  `fn` returns false to stop.
  Status ForEach(
      PageIO* io,
      const std::function<bool(const Hash128&, const PayloadStoreEntry&)>& fn);

  // Session counters (monotonic; see AttachMetrics).
  Counter* dedupe_hits() const { return dedupe_hits_; }
  Counter* dedupe_bytes_saved() const { return dedupe_bytes_saved_; }
  Counter* blobs_created() const { return blobs_created_; }
  Counter* blobs_freed() const { return blobs_freed_; }

 private:
  Status PutEntry(PageIO* io, const Hash128& hash,
                  const PayloadStoreEntry& entry);

  Counter* dedupe_hits_ = nullptr;
  Counter* dedupe_bytes_saved_ = nullptr;
  Counter* blobs_created_ = nullptr;
  Counter* blobs_freed_ = nullptr;
};

}  // namespace ode

#endif  // ODE_STORAGE_PAYLOAD_STORE_H_
