#include "storage/storage_engine.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstring>
#include <vector>

#include "storage/superblock.h"
#include "util/coding.h"
#include "util/logging.h"

namespace ode {

namespace {

/// Engines this thread currently holds a shared (reader) lock on.  Nested
/// WithReadTxn calls on the same engine (e.g. ReadVersion while an
/// ObjectCursor scan is refilling) reuse the outer lock: recursively
/// acquiring a std::shared_mutex on one thread is undefined behavior.
thread_local std::vector<const StorageEngine*> tls_read_locked_engines;

bool ThisThreadHoldsReadLock(const StorageEngine* engine) {
  for (const StorageEngine* held : tls_read_locked_engines) {
    if (held == engine) return true;
  }
  return false;
}

size_t RoundUpToPowerOfTwo(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

/// Background checkpointer heartbeat: threshold checks ride on commit
/// signals, so the timed tick only bounds the kAsync durability window.
constexpr std::chrono::milliseconds kCheckpointerTick{50};

}  // namespace

// ---------------------------------------------------------------------------
// Txn
// ---------------------------------------------------------------------------

StatusOr<PageHandle> Txn::Fetch(PageId id) {
  if (!active_) return Status::FailedPrecondition("transaction not active");
  return engine_->pool_->Fetch(id);
}

StatusOr<PageId> Txn::AllocatePage() {
  if (!active_) return Status::FailedPrecondition("transaction not active");
  auto super = Fetch(0);
  if (!super.ok()) return super.status();
  SuperblockView sb(super->mutable_data());
  PageId pid = sb.free_list_head();
  if (pid != kInvalidPageId) {
    // Pop the free list: the next pointer lives at bytes 4..7 of the free
    // page's header.
    auto page = Fetch(pid);
    if (!page.ok()) return page.status();
    const PageId next = DecodeFixed32(page->data() + 4);
    sb.set_free_list_head(next);
    std::memset(page->mutable_data(), 0, kPageSize);
    return pid;
  }
  pid = sb.page_count();
  sb.set_page_count(pid + 1);
  auto page = Fetch(pid);
  if (!page.ok()) return page.status();
  // Beyond-EOF reads are zeroed already; dirty the frame so the page gets
  // logged and eventually materialized even if the caller writes nothing.
  std::memset(page->mutable_data(), 0, kPageSize);
  return pid;
}

Status Txn::FreePage(PageId id) {
  if (!active_) return Status::FailedPrecondition("transaction not active");
  if (id == 0) return Status::InvalidArgument("cannot free the superblock");
  auto super = Fetch(0);
  if (!super.ok()) return super.status();
  SuperblockView sb(super->mutable_data());
  auto page = Fetch(id);
  if (!page.ok()) return page.status();
  char* data = page->mutable_data();
  std::memset(data, 0, kPageSize);
  data[0] = static_cast<char>(PageType::kFree);
  EncodeFixed32(data + 4, sb.free_list_head());
  sb.set_free_list_head(id);
  return Status::OK();
}

StatusOr<PageId> Txn::GetRoot(int slot) {
  if (slot < 0 || slot >= SuperblockView::kNumRoots) {
    return Status::InvalidArgument("root slot out of range");
  }
  auto super = Fetch(0);
  if (!super.ok()) return super.status();
  return ConstSuperblockView(super->data()).root(slot);
}

Status Txn::SetRoot(int slot, PageId id) {
  if (slot < 0 || slot >= SuperblockView::kNumRoots) {
    return Status::InvalidArgument("root slot out of range");
  }
  auto super = Fetch(0);
  if (!super.ok()) return super.status();
  SuperblockView(super->mutable_data()).set_root(slot, id);
  return Status::OK();
}

StatusOr<uint64_t> Txn::GetCounter(int idx) {
  if (idx < 0 || idx >= SuperblockView::kNumCounters) {
    return Status::InvalidArgument("counter index out of range");
  }
  auto super = Fetch(0);
  if (!super.ok()) return super.status();
  return ConstSuperblockView(super->data()).counter(idx);
}

Status Txn::SetCounter(int idx, uint64_t value) {
  if (idx < 0 || idx >= SuperblockView::kNumCounters) {
    return Status::InvalidArgument("counter index out of range");
  }
  auto super = Fetch(0);
  if (!super.ok()) return super.status();
  SuperblockView(super->mutable_data()).set_counter(idx, value);
  return Status::OK();
}

StatusOr<uint32_t> Txn::PageCount() {
  auto super = Fetch(0);
  if (!super.ok()) return super.status();
  return ConstSuperblockView(super->data()).page_count();
}

StorageMetrics* Txn::metrics() {
  // engine_ is null until the first Begin binds this Txn to its engine.
  return engine_ != nullptr ? &engine_->metrics_ : nullptr;
}

// ---------------------------------------------------------------------------
// ReadTxn
// ---------------------------------------------------------------------------

StatusOr<PageHandle> ReadTxn::Fetch(PageId id) {
  return engine_->pool_->Fetch(id);
}

StatusOr<PageId> ReadTxn::AllocatePage() {
  return Status::FailedPrecondition("read-only transaction");
}

Status ReadTxn::FreePage(PageId) {
  return Status::FailedPrecondition("read-only transaction");
}

StatusOr<PageId> ReadTxn::GetRoot(int slot) {
  if (slot < 0 || slot >= SuperblockView::kNumRoots) {
    return Status::InvalidArgument("root slot out of range");
  }
  auto super = Fetch(0);
  if (!super.ok()) return super.status();
  return ConstSuperblockView(super->data()).root(slot);
}

Status ReadTxn::SetRoot(int, PageId) {
  return Status::FailedPrecondition("read-only transaction");
}

StatusOr<uint64_t> ReadTxn::GetCounter(int idx) {
  if (idx < 0 || idx >= SuperblockView::kNumCounters) {
    return Status::InvalidArgument("counter index out of range");
  }
  auto super = Fetch(0);
  if (!super.ok()) return super.status();
  return ConstSuperblockView(super->data()).counter(idx);
}

Status ReadTxn::SetCounter(int, uint64_t) {
  return Status::FailedPrecondition("read-only transaction");
}

StatusOr<uint32_t> ReadTxn::PageCount() {
  auto super = Fetch(0);
  if (!super.ok()) return super.status();
  return ConstSuperblockView(super->data()).page_count();
}

StorageMetrics* ReadTxn::metrics() { return &engine_->metrics_; }

// ---------------------------------------------------------------------------
// StorageEngine
// ---------------------------------------------------------------------------

StatusOr<std::unique_ptr<StorageEngine>> StorageEngine::Open(
    const StorageOptions& options) {
  auto engine = std::unique_ptr<StorageEngine>(new StorageEngine());
  engine->options_ = options;
  Env* env = options.env != nullptr ? options.env : Env::Posix();
  engine->options_.env = env;
  ODE_RETURN_IF_ERROR(env->CreateDir(options.path));

  // Resolve instruments first so everything below (including recovery and
  // the superblock bootstrap transaction) records into them.
  MetricsRegistry* registry = options.metrics;
  if (registry == nullptr) {
    engine->owned_registry_ = std::make_unique<MetricsRegistry>();
    registry = engine->owned_registry_.get();
  }
  engine->metrics_.Attach(registry, options.tracer);
  engine->metrics_.events = options.event_log;
  engine->payload_store_.AttachMetrics(registry);

  {
    auto disk = DiskManager::Open(env, options.path + "/data.odb");
    if (!disk.ok()) return disk.status();
    engine->disk_ = std::move(*disk);
  }
  {
    auto wal = Wal::Open(env, options.path + "/wal.log");
    if (!wal.ok()) return wal.status();
    engine->wal_ = std::move(*wal);
    engine->wal_->set_metrics(&engine->metrics_);
  }

  // Redo recovery, then drop the now-applied log.
  {
    auto recovery = engine->wal_->Recover(engine->disk_.get());
    if (!recovery.ok()) return recovery.status();
    engine->recovery_ = *recovery;
    ODE_RETURN_IF_ERROR(engine->wal_->Truncate());
    engine->wal_bytes_at_truncate_ = engine->wal_->bytes_appended();
    engine->metrics_.RecordEvent(
        EventType::kRecovery, EventSeverity::kInfo,
        engine->recovery_.committed_txns, engine->recovery_.discarded_txns,
        engine->recovery_.pages_replayed);
  }

  StorageEngine* raw = engine.get();
  engine->write_latches_ = std::make_unique<WriteLatchSet>(
      RoundUpToPowerOfTwo(std::max<size_t>(1, options.write_latch_stripes)),
      engine->metrics_.write_latch_wait_ns);
  engine->group_commit_ = std::make_unique<GroupCommit>(
      engine->wal_.get(), options.group_commit_max_batch,
      options.group_commit_max_wait_us, &engine->metrics_);
  engine->group_commit_->set_more_expected_probe([raw] {
    return raw->writers_in_flight_.load(std::memory_order_relaxed) > 0;
  });
  engine->group_commit_->set_on_failure([raw](const Status& cause) {
    // The WAL may hold an unsynced (possibly torn) batch whose commit
    // records a later successful fsync would make durable; recovery would
    // then resurrect transactions nobody acknowledged.  Refuse all further
    // writes: the caller must discard this engine and re-open (recovery
    // discards the unsynced tail).
    raw->Poison(Status::FailedPrecondition(
        "engine poisoned by failed group-commit append/fsync: " +
        cause.ToString()));
  });

  engine->pool_ = std::make_unique<BufferPool>(engine->disk_.get(),
                                               options.buffer_pool_pages,
                                               options.buffer_pool_shards);
  engine->pool_->set_metrics(&engine->metrics_);
  engine->pool_->set_pre_dirty_hook(
      [raw](PageId id, const char* data, bool was_dirty) {
        // Pages are only dirtied inside the apply latch, so txn_open_ and
        // the undo map are stable for the duration of this hook.
        if (!raw->txn_open_) return;
        auto& undo = raw->txn_.undo_;
        if (undo.find(id) == undo.end()) {
          undo.emplace(id,
                       Txn::UndoImage{std::string(data, kPageSize), was_dirty});
        }
      });

  ODE_RETURN_IF_ERROR(engine->InitSuperblockIfNeeded());

  // Started last so the loop never observes a half-built engine.
  engine->checkpointer_ = std::thread([raw] { raw->CheckpointerLoop(); });
  return engine;
}

Status StorageEngine::InitSuperblockIfNeeded() {
  return WithTxn([](Txn& txn) -> Status {
    auto super = txn.Fetch(0);
    if (!super.ok()) return super.status();
    if (!ConstSuperblockView(super->data()).IsValid()) {
      SuperblockView(super->mutable_data()).Init();
    }
    return Status::OK();
  });
}

void StorageEngine::Shutdown() {
  // Stop the checkpointer before touching any state it might read.
  if (checkpointer_.joinable()) {
    {
      MutexLock lock(ckpt_mu_);
      ckpt_stop_ = true;
    }
    ckpt_cv_.NotifyAll();
    checkpointer_.join();
  }
  // A poison immediately before close can beat the checkpointer's next
  // tick; the flight recorder still owes a dump (no locks held here).
  if (diagnostics_pending_.exchange(false, std::memory_order_acq_rel)) {
    if (options_.on_diagnostics) options_.on_diagnostics("poison");
  }
}

StorageEngine::~StorageEngine() {
  Shutdown();
  // Destruction requires all user threads to be done with the engine, so an
  // open transaction can only belong to the destroying thread.
  if (txn_open_) {
    if (applying_owner_.load(std::memory_order_relaxed) ==
        std::this_thread::get_id()) {
      Status s = Abort(&txn_);
      if (!s.ok()) { ODE_LOG_WARN << "abort on close failed: " << s; }
    } else {
      ODE_LOG_WARN << "engine destroyed with a transaction open on another "
                      "thread; skipping abort";
    }
  }
  if (poisoned()) {
    // Flushing pages that may disagree with the durable WAL would persist a
    // rolled-back transaction; leave the files for recovery instead.
    ODE_LOG_WARN << "closing poisoned engine without checkpoint: "
                 << poison_status();
    return;
  }
  // A partially-constructed engine (Open returned an error before the
  // WAL / group commit / pool came up) has nothing to checkpoint.
  if (wal_ == nullptr || group_commit_ == nullptr || pool_ == nullptr) {
    return;
  }
  // Checkpoint drains the group-commit queue (fsyncing any async tail)
  // before flushing pages, so nothing acknowledged is lost on a clean close.
  Status s = Checkpoint();
  if (!s.ok()) { ODE_LOG_WARN << "checkpoint on close failed: " << s; }
}

void StorageEngine::Poison(const Status& cause) {
  {
    MutexLock lock(poison_mu_);
    if (!poison_.ok()) return;  // First cause wins; later ones are echoes.
    poison_ = cause;
    poisoned_.store(true, std::memory_order_release);
  }
  metrics_.RecordEvent(EventType::kPoison, EventSeverity::kError, 0, 0, 0,
                       cause.ToString());
  // Flight recorder: hand the dump to the checkpointer thread.  Poison can
  // fire under the group-commit mutex or the apply latch, and the dump
  // reads both subsystems' snapshot state — running it here would deadlock.
  if (options_.on_diagnostics) {
    diagnostics_pending_.store(true, std::memory_order_release);
    SignalCheckpointer();
  }
}

Status StorageEngine::poison_status() const {
  if (!poisoned_.load(std::memory_order_acquire)) return Status::OK();
  MutexLock lock(poison_mu_);
  return poison_;
}

// Begin acquires rw_mutex_ exclusively and *returns still holding it*; the
// matching release happens in Commit or Abort.  A lock lifetime spanning
// three functions is outside what the capability analysis can express
// (ODE_ACQUIRE would flag the early-return paths, ODE_RELEASE would flag
// every caller), so these three opt out; the crash matrix and TSan suites
// cover this protocol at runtime.
StatusOr<Txn*> StorageEngine::Begin() ODE_NO_THREAD_SAFETY_ANALYSIS {
  // A second Begin from the thread that already holds the apply latch would
  // self-deadlock on rw_mutex_; reject it up front.  Begins from *other*
  // threads queue on the latch below — that is the multi-writer path.
  if (applying_owner_.load(std::memory_order_relaxed) ==
      std::this_thread::get_id()) {
    return Status::FailedPrecondition(
        "a transaction is already open on this thread");
  }
  if (poisoned()) return poison_status();
  // Count ourselves before queuing for the latch so a lingering group-commit
  // leader knows another commit is imminent (see the probe in Open).
  writers_in_flight_.fetch_add(1, std::memory_order_relaxed);
  rw_mutex_.Lock();  // Held until Commit's enqueue or the whole of Abort.
  if (poisoned()) {
    // Poisoned while we queued (a concurrent commit's fsync failed).
    writers_in_flight_.fetch_sub(1, std::memory_order_relaxed);
    rw_mutex_.Unlock();
    return poison_status();
  }
  applying_owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
  txn_.engine_ = this;
  txn_.id_ = next_txn_id_++;
  txn_.active_ = true;
  txn_.undo_.clear();
  txn_open_ = true;
  pool_->BeginEpoch();
  if (options_.on_apply_begin) options_.on_apply_begin();
  metrics_.txn_begins->Increment();
  metrics_.RecordEvent(EventType::kTxnBegin, EventSeverity::kDebug, txn_.id_);
  return &txn_;
}

// Releases the exclusive latch Begin acquired — after the apply section but
// BEFORE the durability wait; see the note on Begin.
Status StorageEngine::Commit(Txn* txn) ODE_NO_THREAD_SAFETY_ANALYSIS {
  if (applying_owner_.load(std::memory_order_relaxed) !=
          std::this_thread::get_id() ||
      !txn_open_ || txn != &txn_ || !txn->active_) {
    return Status::FailedPrecondition("no such open transaction");
  }
  const bool sync_mode = options_.commit_mode == CommitMode::kSync;
  const uint64_t txn_id = txn->id_;
  const uint64_t commit_t0_ns = Histogram::NowNanos();
  size_t dirty_pages = 0;
  Status wait_status;
  {
    // The timing scope covers apply + enqueue + the durability wait (but not
    // checkpoint signaling), so txn.commit_ns measures what the caller
    // experiences for the chosen commit mode.
    TraceSpan span(metrics_.tracer, "txn.commit", "storage");
    ScopedLatency timer(metrics_.txn_commit_ns);
    uint64_t ticket = 0;
    bool enqueued = false;
    const auto& dirtied = pool_->EpochDirtyPages();
    dirty_pages = dirtied.size();
    if (!dirtied.empty()) {
      // Serialize the whole record sequence into one pre-framed blob while
      // still under the latch: enqueue order = apply order, which is what
      // makes a crash-surviving WAL prefix a prefix of applied transactions.
      std::string blob;
      Status s = [&]() -> Status {
        Wal::EncodeBegin(txn->id_, &blob);
        for (PageId pid : dirtied) {
          auto handle = pool_->Fetch(pid);
          if (!handle.ok()) return handle.status();
          Wal::EncodePageImage(txn->id_, pid, handle->data(), &blob);
        }
        Wal::EncodeCommit(txn->id_, &blob);
        return Status::OK();
      }();
      if (!s.ok()) {
        // Nothing reached the WAL yet, so a plain abort fully undoes the
        // transaction — no need to poison (unlike an append/fsync failure).
        Status abort_status = Abort(txn);
        if (!abort_status.ok()) {
          ODE_LOG_ERROR << "abort after failed commit serialization also "
                        << "failed: " << abort_status;
          return abort_status;
        }
        return s;
      }
      ticket = group_commit_->Enqueue(std::move(blob), txn->id_,
                                      /*record_count=*/2 + dirtied.size(),
                                      /*needs_sync=*/sync_mode);
      last_enqueued_txn_.store(txn->id_, std::memory_order_release);
      enqueued = true;
    }
    pool_->CommitEpoch();
    txn->active_ = false;
    txn->undo_.clear();
    txn_open_ = false;
    if (options_.on_apply_end) options_.on_apply_end(/*committed=*/true);
    commit_count_.fetch_add(1, std::memory_order_relaxed);
    metrics_.txn_commits->Increment();
    applying_owner_.store(std::thread::id(), std::memory_order_relaxed);
    // Past the enqueue: stop telling the leader more work is imminent.
    writers_in_flight_.fetch_sub(1, std::memory_order_relaxed);
    rw_mutex_.Unlock();

    // Early lock release: the latch is free for the next writer while we
    // wait (or lead a batch) here.  A read-only transaction skips the queue
    // entirely — it has nothing to make durable.
    if (enqueued) {
      wait_status = sync_mode ? group_commit_->WaitDurable(ticket)
                              : group_commit_->WaitAppended(ticket);
    }
  }
  metrics_.RecordEvent(EventType::kTxnCommit, EventSeverity::kDebug, txn_id,
                       dirty_pages,
                       (Histogram::NowNanos() - commit_t0_ns) / 1000);
  NoteSlowOp("slow.commit", commit_t0_ns, options_.slow_commit_us);
  if (wal_bytes() > options_.checkpoint_wal_bytes) SignalCheckpointer();
  return wait_status;
}

// Runs entirely under the latch Begin acquired, then releases it; nothing of
// an aborted transaction was ever enqueued, so nothing can become durable.
Status StorageEngine::Abort(Txn* txn) ODE_NO_THREAD_SAFETY_ANALYSIS {
  if (applying_owner_.load(std::memory_order_relaxed) !=
          std::this_thread::get_id() ||
      !txn_open_ || txn != &txn_ || !txn->active_) {
    return Status::FailedPrecondition("no such open transaction");
  }
  Status restore_status = Status::OK();
  for (const auto& [pid, undo] : txn->undo_) {
    Status s = pool_->RestorePage(pid, undo.image.data(), undo.was_dirty);
    if (!s.ok() && restore_status.ok()) restore_status = s;
  }
  metrics_.RecordEvent(EventType::kTxnAbort, EventSeverity::kDebug, txn->id_);
  pool_->CommitEpoch();  // Clears epoch bookkeeping; pages already restored.
  txn->active_ = false;
  txn->undo_.clear();
  txn_open_ = false;
  heap_.InvalidateCache();
  if (options_.on_apply_end) options_.on_apply_end(/*committed=*/false);
  metrics_.txn_aborts->Increment();
  if (!restore_status.ok()) {
    // Some pages still carry the aborted transaction's changes; writing on
    // top of them would corrupt committed state.
    Poison(Status::FailedPrecondition(
        "engine poisoned by failed abort restore: " +
        restore_status.ToString()));
  }
  applying_owner_.store(std::thread::id(), std::memory_order_relaxed);
  writers_in_flight_.fetch_sub(1, std::memory_order_relaxed);
  rw_mutex_.Unlock();
  return restore_status;
}

Status StorageEngine::WithTxn(const std::function<Status(Txn&)>& body) {
  auto txn = Begin();
  if (!txn.ok()) return txn.status();
  Status s = body(**txn);
  if (!s.ok()) {
    Status abort_status = Abort(*txn);
    if (!abort_status.ok()) {
      ODE_LOG_ERROR << "abort failed after error: " << abort_status;
      return abort_status;
    }
    return s;
  }
  return Commit(*txn);
}

Status StorageEngine::WithReadTxn(const std::function<Status(ReadTxn&)>& body) {
  ReadTxn txn(this);
  if (ThisThreadHoldsReadLock(this)) {
    // Nested read on the same thread: the outer call's shared lock already
    // protects us.
    return body(txn);
  }
  // Only a *contended* acquisition pays for clock reads and a histogram
  // record; the uncontended fast path costs just the try-lock.  The
  // histogram's count is therefore "number of contended acquisitions".
  if (!rw_mutex_.TryLockShared()) {
    const uint64_t t0 = Histogram::NowNanos();
    rw_mutex_.LockShared();
    metrics_.read_lock_wait_ns->Record(Histogram::NowNanos() - t0);
  }
  tls_read_locked_engines.push_back(this);
  Status s = body(txn);
  tls_read_locked_engines.pop_back();
  rw_mutex_.UnlockShared();
  return s;
}

Status StorageEngine::Checkpoint() {
  // A checkpoint from the thread that holds the apply latch would
  // self-deadlock on WriterMutexLock below; other threads' transactions
  // just delay us until they release.
  if (applying_owner_.load(std::memory_order_relaxed) ==
      std::this_thread::get_id()) {
    return Status::FailedPrecondition("cannot checkpoint mid-transaction");
  }
  if (poisoned()) return poison_status();
  TraceSpan span(metrics_.tracer, "storage.checkpoint", "storage");
  ScopedLatency timer(metrics_.checkpoint_ns);
  const uint64_t ckpt_t0_ns = Histogram::NowNanos();
  const uint64_t wal_backlog = wal_bytes();
  WriterMutexLock lock(rw_mutex_);
  // WAL-before-data: every queued/appended commit must be fsynced before its
  // dirty pages may reach the data file (and before Truncate drops the only
  // redo copy).  Holding the latch guarantees no new enqueues race the
  // drain.
  ODE_RETURN_IF_ERROR(group_commit_->Flush());
  ODE_RETURN_IF_ERROR(pool_->FlushAll());
  ODE_RETURN_IF_ERROR(wal_->Truncate());
  wal_bytes_at_truncate_.store(wal_->bytes_appended(),
                               std::memory_order_relaxed);
  checkpoint_count_.fetch_add(1, std::memory_order_relaxed);
  metrics_.checkpoints->Increment();
  metrics_.RecordEvent(EventType::kCheckpoint, EventSeverity::kInfo,
                       checkpoint_count_.load(std::memory_order_relaxed),
                       wal_backlog);
  NoteSlowOp("slow.checkpoint", ckpt_t0_ns, options_.slow_checkpoint_us);
  return Status::OK();
}

void StorageEngine::NoteSlowOp(const char* op, uint64_t start_ns,
                               uint32_t threshold_us) {
  if (threshold_us == 0) return;
  const uint64_t end_ns = Histogram::NowNanos();
  const uint64_t duration_us = (end_ns - start_ns) / 1000;
  if (duration_us <= threshold_us) return;
  metrics_.RecordEvent(EventType::kSlowOp, EventSeverity::kWarn, duration_us,
                       threshold_us, 0, op);
  // Bypass sampling: the one operation that blew its deadline must appear
  // in the trace even when the tracer would have sampled it out.
  if (metrics_.tracer != nullptr) {
    metrics_.tracer->Record(op, "slow", start_ns, end_ns);
  }
}

Status StorageEngine::WaitForDurable(uint64_t txn_id) {
  // Clamp to the highest id that ever entered the queue: read-only
  // transactions consume ids without enqueuing, and UINT64_MAX means
  // "everything acknowledged so far".
  const uint64_t target =
      std::min(txn_id, last_enqueued_txn_.load(std::memory_order_acquire));
  if (target == 0) return Status::OK();
  return group_commit_->WaitDurableTxn(target);
}

void StorageEngine::SignalCheckpointer() {
  {
    MutexLock lock(ckpt_mu_);
    ckpt_signal_ = true;
  }
  ckpt_cv_.NotifyAll();
}

void StorageEngine::CheckpointerLoop() {
  ckpt_heartbeat_us_.store(Histogram::NowNanos() / 1000,
                           std::memory_order_relaxed);
  for (;;) {
    {
      MutexLock lock(ckpt_mu_);
      if (!ckpt_stop_ && !ckpt_signal_) {
        (void)ckpt_cv_.WaitFor(ckpt_mu_, kCheckpointerTick);
      }
      if (ckpt_stop_) return;
      ckpt_signal_ = false;
    }
    ckpt_heartbeat_us_.store(Histogram::NowNanos() / 1000,
                             std::memory_order_relaxed);
    // Flight recorder: fire the poison dump here, outside every engine
    // lock, so the hook can safely read watermarks/stats/health.
    if (diagnostics_pending_.exchange(false, std::memory_order_acq_rel)) {
      if (options_.on_diagnostics) options_.on_diagnostics("poison");
    }
    if (poisoned()) continue;
    if (wal_bytes() > options_.checkpoint_wal_bytes) {
      // Failure must not kill the loop: the WAL keeps growing but stays
      // replayable, and the next signal retries.
      Status s = Checkpoint();
      if (!s.ok()) { ODE_LOG_WARN << "background checkpoint failed: " << s; }
    } else if (options_.commit_mode == CommitMode::kAsync) {
      // Bound the async durability window: fsync the appended-but-unsynced
      // tail even when writers have gone idle.
      const uint64_t tail =
          last_enqueued_txn_.load(std::memory_order_acquire);
      if (tail > group_commit_->durable_txn_id()) {
        Status s = group_commit_->WaitDurableTxn(tail);
        if (!s.ok()) { ODE_LOG_WARN << "async tail fsync failed: " << s; }
      }
    }
  }
}

const char* HealthStateName(HealthState s) {
  switch (s) {
    case HealthState::kOk:
      return "ok";
    case HealthState::kDegraded:
      return "degraded";
    case HealthState::kPoisoned:
      return "poisoned";
  }
  return "unknown";
}

WalWatermarks StorageEngine::wal_watermarks() const {
  WalWatermarks w;
  w.enqueued_txn = last_enqueued_txn_.load(std::memory_order_acquire);
  w.appended_txn = group_commit_->appended_txn_id();
  w.durable_txn = group_commit_->durable_txn_id();
  w.acked_txn = options_.commit_mode == CommitMode::kSync ? w.durable_txn
                                                          : w.appended_txn;
  return w;
}

HealthReport StorageEngine::HealthCheck() const {
  HealthReport report;
  const uint64_t now_us = Histogram::NowNanos() / 1000;
  const uint64_t heartbeat =
      ckpt_heartbeat_us_.load(std::memory_order_relaxed);
  report.checkpointer_lag_us =
      (heartbeat == 0 || heartbeat > now_us) ? 0 : now_us - heartbeat;
  report.wal_backlog_bytes = wal_bytes();
  report.async_pending = metrics_.gc_async_pending->value();
  if (poisoned()) {
    report.state = HealthState::kPoisoned;
    report.reasons.push_back("engine poisoned: " +
                             poison_status().ToString());
  } else {
    const uint64_t backlog_limit =
        options_.health_max_wal_backlog_bytes != 0
            ? options_.health_max_wal_backlog_bytes
            : 4 * options_.checkpoint_wal_bytes;
    if (report.wal_backlog_bytes > backlog_limit) {
      report.state = HealthState::kDegraded;
      report.reasons.push_back(
          "wal backlog " + std::to_string(report.wal_backlog_bytes) +
          " bytes exceeds " + std::to_string(backlog_limit) +
          " (checkpointer falling behind)");
    }
    if (heartbeat != 0 &&
        report.checkpointer_lag_us > options_.health_max_checkpointer_lag_us) {
      report.state = HealthState::kDegraded;
      report.reasons.push_back(
          "checkpointer heartbeat " +
          std::to_string(report.checkpointer_lag_us) +
          "us old (limit " +
          std::to_string(options_.health_max_checkpointer_lag_us) + "us)");
    }
  }
  // Refresh the health gauges so scrapes see what this verdict saw.
  metrics_.hb_checkpointer_us->Set(static_cast<int64_t>(heartbeat));
  metrics_.hb_gc_leader_us->Set(
      static_cast<int64_t>(group_commit_->leader_heartbeat_us()));
  metrics_.checkpointer_lag_us->Set(
      static_cast<int64_t>(report.checkpointer_lag_us));
  metrics_.health_state->Set(static_cast<int64_t>(report.state));
  return report;
}

uint64_t StorageEngine::wal_bytes() const {
  return wal_->bytes_appended() -
         wal_bytes_at_truncate_.load(std::memory_order_relaxed);
}

uint64_t StorageEngine::wal_total_bytes() const {
  return wal_->bytes_appended();
}

}  // namespace ode
