#include "storage/storage_engine.h"

#include <cassert>
#include <cstring>
#include <vector>

#include "storage/superblock.h"
#include "util/coding.h"
#include "util/logging.h"

namespace ode {

namespace {

/// Engines this thread currently holds a shared (reader) lock on.  Nested
/// WithReadTxn calls on the same engine (e.g. ReadVersion inside a
/// ForEachObject callback) reuse the outer lock: recursively acquiring a
/// std::shared_mutex on one thread is undefined behavior.
thread_local std::vector<const StorageEngine*> tls_read_locked_engines;

bool ThisThreadHoldsReadLock(const StorageEngine* engine) {
  for (const StorageEngine* held : tls_read_locked_engines) {
    if (held == engine) return true;
  }
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// Txn
// ---------------------------------------------------------------------------

StatusOr<PageHandle> Txn::Fetch(PageId id) {
  if (!active_) return Status::FailedPrecondition("transaction not active");
  return engine_->pool_->Fetch(id);
}

StatusOr<PageId> Txn::AllocatePage() {
  if (!active_) return Status::FailedPrecondition("transaction not active");
  auto super = Fetch(0);
  if (!super.ok()) return super.status();
  SuperblockView sb(super->mutable_data());
  PageId pid = sb.free_list_head();
  if (pid != kInvalidPageId) {
    // Pop the free list: the next pointer lives at bytes 4..7 of the free
    // page's header.
    auto page = Fetch(pid);
    if (!page.ok()) return page.status();
    const PageId next = DecodeFixed32(page->data() + 4);
    sb.set_free_list_head(next);
    std::memset(page->mutable_data(), 0, kPageSize);
    return pid;
  }
  pid = sb.page_count();
  sb.set_page_count(pid + 1);
  auto page = Fetch(pid);
  if (!page.ok()) return page.status();
  // Beyond-EOF reads are zeroed already; dirty the frame so the page gets
  // logged and eventually materialized even if the caller writes nothing.
  std::memset(page->mutable_data(), 0, kPageSize);
  return pid;
}

Status Txn::FreePage(PageId id) {
  if (!active_) return Status::FailedPrecondition("transaction not active");
  if (id == 0) return Status::InvalidArgument("cannot free the superblock");
  auto super = Fetch(0);
  if (!super.ok()) return super.status();
  SuperblockView sb(super->mutable_data());
  auto page = Fetch(id);
  if (!page.ok()) return page.status();
  char* data = page->mutable_data();
  std::memset(data, 0, kPageSize);
  data[0] = static_cast<char>(PageType::kFree);
  EncodeFixed32(data + 4, sb.free_list_head());
  sb.set_free_list_head(id);
  return Status::OK();
}

StatusOr<PageId> Txn::GetRoot(int slot) {
  if (slot < 0 || slot >= SuperblockView::kNumRoots) {
    return Status::InvalidArgument("root slot out of range");
  }
  auto super = Fetch(0);
  if (!super.ok()) return super.status();
  return ConstSuperblockView(super->data()).root(slot);
}

Status Txn::SetRoot(int slot, PageId id) {
  if (slot < 0 || slot >= SuperblockView::kNumRoots) {
    return Status::InvalidArgument("root slot out of range");
  }
  auto super = Fetch(0);
  if (!super.ok()) return super.status();
  SuperblockView(super->mutable_data()).set_root(slot, id);
  return Status::OK();
}

StatusOr<uint64_t> Txn::GetCounter(int idx) {
  if (idx < 0 || idx >= SuperblockView::kNumCounters) {
    return Status::InvalidArgument("counter index out of range");
  }
  auto super = Fetch(0);
  if (!super.ok()) return super.status();
  return ConstSuperblockView(super->data()).counter(idx);
}

Status Txn::SetCounter(int idx, uint64_t value) {
  if (idx < 0 || idx >= SuperblockView::kNumCounters) {
    return Status::InvalidArgument("counter index out of range");
  }
  auto super = Fetch(0);
  if (!super.ok()) return super.status();
  SuperblockView(super->mutable_data()).set_counter(idx, value);
  return Status::OK();
}

StatusOr<uint32_t> Txn::PageCount() {
  auto super = Fetch(0);
  if (!super.ok()) return super.status();
  return ConstSuperblockView(super->data()).page_count();
}

StorageMetrics* Txn::metrics() {
  // engine_ is null until the first Begin binds this Txn to its engine.
  return engine_ != nullptr ? &engine_->metrics_ : nullptr;
}

// ---------------------------------------------------------------------------
// ReadTxn
// ---------------------------------------------------------------------------

StatusOr<PageHandle> ReadTxn::Fetch(PageId id) {
  return engine_->pool_->Fetch(id);
}

StatusOr<PageId> ReadTxn::AllocatePage() {
  return Status::FailedPrecondition("read-only transaction");
}

Status ReadTxn::FreePage(PageId) {
  return Status::FailedPrecondition("read-only transaction");
}

StatusOr<PageId> ReadTxn::GetRoot(int slot) {
  if (slot < 0 || slot >= SuperblockView::kNumRoots) {
    return Status::InvalidArgument("root slot out of range");
  }
  auto super = Fetch(0);
  if (!super.ok()) return super.status();
  return ConstSuperblockView(super->data()).root(slot);
}

Status ReadTxn::SetRoot(int, PageId) {
  return Status::FailedPrecondition("read-only transaction");
}

StatusOr<uint64_t> ReadTxn::GetCounter(int idx) {
  if (idx < 0 || idx >= SuperblockView::kNumCounters) {
    return Status::InvalidArgument("counter index out of range");
  }
  auto super = Fetch(0);
  if (!super.ok()) return super.status();
  return ConstSuperblockView(super->data()).counter(idx);
}

Status ReadTxn::SetCounter(int, uint64_t) {
  return Status::FailedPrecondition("read-only transaction");
}

StatusOr<uint32_t> ReadTxn::PageCount() {
  auto super = Fetch(0);
  if (!super.ok()) return super.status();
  return ConstSuperblockView(super->data()).page_count();
}

StorageMetrics* ReadTxn::metrics() { return &engine_->metrics_; }

// ---------------------------------------------------------------------------
// StorageEngine
// ---------------------------------------------------------------------------

StatusOr<std::unique_ptr<StorageEngine>> StorageEngine::Open(
    const StorageOptions& options) {
  auto engine = std::unique_ptr<StorageEngine>(new StorageEngine());
  engine->options_ = options;
  Env* env = options.env != nullptr ? options.env : Env::Posix();
  engine->options_.env = env;
  ODE_RETURN_IF_ERROR(env->CreateDir(options.path));

  // Resolve instruments first so everything below (including recovery and
  // the superblock bootstrap transaction) records into them.
  MetricsRegistry* registry = options.metrics;
  if (registry == nullptr) {
    engine->owned_registry_ = std::make_unique<MetricsRegistry>();
    registry = engine->owned_registry_.get();
  }
  engine->metrics_.Attach(registry, options.tracer);

  {
    auto disk = DiskManager::Open(env, options.path + "/data.odb");
    if (!disk.ok()) return disk.status();
    engine->disk_ = std::move(*disk);
  }
  {
    auto wal = Wal::Open(env, options.path + "/wal.log");
    if (!wal.ok()) return wal.status();
    engine->wal_ = std::move(*wal);
    engine->wal_->set_metrics(&engine->metrics_);
  }

  // Redo recovery, then drop the now-applied log.
  {
    auto recovery = engine->wal_->Recover(engine->disk_.get());
    if (!recovery.ok()) return recovery.status();
    engine->recovery_ = *recovery;
    ODE_RETURN_IF_ERROR(engine->wal_->Truncate());
    engine->wal_bytes_at_truncate_ = engine->wal_->bytes_appended();
  }

  engine->pool_ = std::make_unique<BufferPool>(engine->disk_.get(),
                                               options.buffer_pool_pages,
                                               options.buffer_pool_shards);
  engine->pool_->set_metrics(&engine->metrics_);
  StorageEngine* raw = engine.get();
  engine->pool_->set_pre_dirty_hook(
      [raw](PageId id, const char* data, bool was_dirty) {
        if (!raw->txn_open_) return;
        auto& undo = raw->txn_.undo_;
        if (undo.find(id) == undo.end()) {
          undo.emplace(id,
                       Txn::UndoImage{std::string(data, kPageSize), was_dirty});
        }
      });

  ODE_RETURN_IF_ERROR(engine->InitSuperblockIfNeeded());
  return engine;
}

Status StorageEngine::InitSuperblockIfNeeded() {
  return WithTxn([](Txn& txn) -> Status {
    auto super = txn.Fetch(0);
    if (!super.ok()) return super.status();
    if (!ConstSuperblockView(super->data()).IsValid()) {
      SuperblockView(super->mutable_data()).Init();
    }
    return Status::OK();
  });
}

StorageEngine::~StorageEngine() {
  if (txn_open_) {
    Status s = Abort(&txn_);
    if (!s.ok()) { ODE_LOG_WARN << "abort on close failed: " << s; }
  }
  if (poisoned()) {
    // Flushing pages that may disagree with the durable WAL would persist a
    // rolled-back transaction; leave the files for recovery instead.
    ODE_LOG_WARN << "closing poisoned engine without checkpoint: " << poison_;
    return;
  }
  Status s = Checkpoint();
  if (!s.ok()) { ODE_LOG_WARN << "checkpoint on close failed: " << s; }
}

// Begin acquires rw_mutex_ exclusively and *returns still holding it*; the
// matching release happens in Commit or Abort.  A lock lifetime spanning
// three functions is outside what the capability analysis can express
// (ODE_ACQUIRE would flag the early-return paths, ODE_RELEASE would flag
// every caller), so these three opt out; the crash matrix and TSan suites
// cover this protocol at runtime.
StatusOr<Txn*> StorageEngine::Begin() ODE_NO_THREAD_SAFETY_ANALYSIS {
  // txn_open_ is writer-thread state: with a single writer this read cannot
  // race another Begin, and readers never touch it.
  if (txn_open_) {
    return Status::FailedPrecondition("a transaction is already open");
  }
  if (poisoned()) return poison_;
  rw_mutex_.Lock();  // Held until Commit/Abort closes the transaction.
  txn_.engine_ = this;
  txn_.id_ = next_txn_id_++;
  txn_.active_ = true;
  txn_.undo_.clear();
  txn_open_ = true;
  pool_->BeginEpoch();
  metrics_.txn_begins->Increment();
  return &txn_;
}

// Releases the exclusive lock Begin acquired; see the note on Begin.
Status StorageEngine::Commit(Txn* txn) ODE_NO_THREAD_SAFETY_ANALYSIS {
  if (!txn_open_ || txn != &txn_ || !txn->active_) {
    return Status::FailedPrecondition("no such open transaction");
  }
  {
    // The timing scope ends before the auto-checkpoint below, so
    // txn.commit_ns measures only the durable-commit path.
    TraceSpan span(metrics_.tracer, "txn.commit", "storage");
    ScopedLatency timer(metrics_.txn_commit_ns);
    const auto& dirtied = pool_->EpochDirtyPages();
    if (!dirtied.empty()) {
      // If any step of making the transaction durable fails, roll it back so
      // the in-memory state matches what recovery would reconstruct (the
      // commit record never became durable).
      Status s = [&]() -> Status {
        ODE_RETURN_IF_ERROR(wal_->AppendBegin(txn->id_));
        for (PageId pid : dirtied) {
          auto handle = pool_->Fetch(pid);
          if (!handle.ok()) return handle.status();
          ODE_RETURN_IF_ERROR(
              wal_->AppendPageImage(txn->id_, pid, handle->data()));
        }
        ODE_RETURN_IF_ERROR(wal_->AppendCommit(txn->id_));
        return wal_->Sync();
      }();
      if (!s.ok()) {
        // The WAL may now hold unsynced records of this failed transaction
        // (possibly including its commit record).  A later successful Sync
        // would make them durable and recovery would resurrect the
        // rolled-back transaction, so refuse all further writes: the caller
        // must discard this engine and re-open (recovery discards the
        // uncommitted / unsynced WAL tail).
        poison_ = Status::FailedPrecondition(
            "engine poisoned by failed durable commit: " + s.ToString());
        // Abort closes the transaction and releases the exclusive lock.
        Status abort_status = Abort(txn);
        if (!abort_status.ok()) {
          ODE_LOG_ERROR << "abort after failed commit also failed: "
                        << abort_status;
        }
        return s;
      }
    }
    pool_->CommitEpoch();
    txn->active_ = false;
    txn_open_ = false;
    commit_count_.fetch_add(1, std::memory_order_relaxed);
    metrics_.txn_commits->Increment();
    rw_mutex_.Unlock();
  }

  // The auto-checkpoint runs outside the transaction's exclusive section;
  // Checkpoint re-acquires the lock itself.  Its failure must NOT fail this
  // Commit: the transaction is already durable (the WAL sync above
  // succeeded), so reporting an error here would tell the caller a committed
  // transaction didn't happen.  Checkpointing retries on a later commit, and
  // recovery replays the un-truncated WAL either way.
  if (wal_bytes() > options_.checkpoint_wal_bytes) {
    Status s = Checkpoint();
    if (!s.ok()) { ODE_LOG_WARN << "auto-checkpoint failed: " << s; }
  }
  return Status::OK();
}

// Releases the exclusive lock Begin acquired; see the note on Begin.
Status StorageEngine::Abort(Txn* txn) ODE_NO_THREAD_SAFETY_ANALYSIS {
  if (!txn_open_ || txn != &txn_ || !txn->active_) {
    return Status::FailedPrecondition("no such open transaction");
  }
  Status restore_status = Status::OK();
  for (const auto& [pid, undo] : txn->undo_) {
    Status s = pool_->RestorePage(pid, undo.image.data(), undo.was_dirty);
    if (!s.ok() && restore_status.ok()) restore_status = s;
  }
  pool_->CommitEpoch();  // Clears epoch bookkeeping; pages already restored.
  txn->active_ = false;
  txn->undo_.clear();
  txn_open_ = false;
  heap_.InvalidateCache();
  metrics_.txn_aborts->Increment();
  if (!restore_status.ok() && poison_.ok()) {
    // Some pages still carry the aborted transaction's changes; writing on
    // top of them would corrupt committed state.
    poison_ = Status::FailedPrecondition(
        "engine poisoned by failed abort restore: " +
        restore_status.ToString());
  }
  rw_mutex_.Unlock();
  return restore_status;
}

Status StorageEngine::WithTxn(const std::function<Status(Txn&)>& body) {
  auto txn = Begin();
  if (!txn.ok()) return txn.status();
  Status s = body(**txn);
  if (!s.ok()) {
    Status abort_status = Abort(*txn);
    if (!abort_status.ok()) {
      ODE_LOG_ERROR << "abort failed after error: " << abort_status;
      return abort_status;
    }
    return s;
  }
  return Commit(*txn);
}

Status StorageEngine::WithReadTxn(const std::function<Status(ReadTxn&)>& body) {
  ReadTxn txn(this);
  if (ThisThreadHoldsReadLock(this)) {
    // Nested read on the same thread: the outer call's shared lock already
    // protects us.
    return body(txn);
  }
  // Only a *contended* acquisition pays for clock reads and a histogram
  // record; the uncontended fast path costs just the try-lock.  The
  // histogram's count is therefore "number of contended acquisitions".
  if (!rw_mutex_.TryLockShared()) {
    const uint64_t t0 = Histogram::NowNanos();
    rw_mutex_.LockShared();
    metrics_.read_lock_wait_ns->Record(Histogram::NowNanos() - t0);
  }
  tls_read_locked_engines.push_back(this);
  Status s = body(txn);
  tls_read_locked_engines.pop_back();
  rw_mutex_.UnlockShared();
  return s;
}

Status StorageEngine::Checkpoint() {
  if (txn_open_) {
    return Status::FailedPrecondition("cannot checkpoint mid-transaction");
  }
  if (poisoned()) return poison_;
  TraceSpan span(metrics_.tracer, "storage.checkpoint", "storage");
  ScopedLatency timer(metrics_.checkpoint_ns);
  WriterMutexLock lock(rw_mutex_);
  ODE_RETURN_IF_ERROR(pool_->FlushAll());
  ODE_RETURN_IF_ERROR(wal_->Truncate());
  wal_bytes_at_truncate_.store(wal_->bytes_appended(),
                               std::memory_order_relaxed);
  checkpoint_count_.fetch_add(1, std::memory_order_relaxed);
  metrics_.checkpoints->Increment();
  return Status::OK();
}

uint64_t StorageEngine::wal_bytes() const {
  return wal_->bytes_appended() -
         wal_bytes_at_truncate_.load(std::memory_order_relaxed);
}

uint64_t StorageEngine::wal_total_bytes() const {
  return wal_->bytes_appended();
}

}  // namespace ode
