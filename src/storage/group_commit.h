#ifndef ODE_STORAGE_GROUP_COMMIT_H_
#define ODE_STORAGE_GROUP_COMMIT_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "storage/wal.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace ode {

struct StorageMetrics;

/// When a commit call returns to the caller.
enum class CommitMode : uint8_t {
  /// Return once the transaction's WAL records are fsynced (classic
  /// durability: an acknowledged commit survives any crash).
  kSync = 0,
  /// Return once the records are appended to the WAL file, BEFORE the fsync.
  /// An acknowledged commit can still be lost to a crash until a later group
  /// fsync (or StorageEngine::WaitForDurable) covers it; ordering is
  /// preserved — a lost commit implies every later commit is lost too, so
  /// recovery always yields a prefix of the acknowledged sequence.
  kAsync = 1,
};

/// The group-commit queue: the single funnel through which transaction
/// records reach the WAL.
///
/// Writers serialize their records into one pre-framed blob under the
/// engine's exclusive apply latch and Enqueue it there — so queue order is
/// exactly apply order, and any crash-surviving WAL prefix corresponds to a
/// prefix of the applied transactions.  They then RELEASE the apply latch and
/// block in WaitAppended/WaitDurable.  The first blocked waiter elects itself
/// leader: it optionally lingers for `max_wait_us` while another writer is
/// mid-apply (so a burst coalesces), pops up to `max_batch` blobs, writes
/// them with one WAL append each, and issues ONE fsync for the whole batch —
/// then wakes everyone whose sequence number is covered.  A solo writer pays
/// no linger (the probe reports no writer in flight) and degenerates to
/// append+fsync, the pre-group-commit behavior.
///
/// Failure contract: an append or fsync error is sticky.  The WAL may hold a
/// partially appended batch (possibly including commit records) that a later
/// successful fsync would resurrect, so every current and future waiter gets
/// the error and `on_failure` (the engine's poison hook) fires once.
///
/// Thread safety: fully thread-safe; Enqueue additionally requires the
/// engine's exclusive latch (for the ordering guarantee above).  Several
/// methods manage lock lifetimes that span the leader's unlocked I/O region
/// and therefore opt out of the capability analysis (see the .cc).
class GroupCommit {
 public:
  /// `max_batch` >= 1; `max_wait_us` bounds the leader's gather linger
  /// (0 disables lingering).  `metrics` may be null.
  GroupCommit(Wal* wal, size_t max_batch, uint32_t max_wait_us,
              StorageMetrics* metrics);
  ~GroupCommit();

  GroupCommit(const GroupCommit&) = delete;
  GroupCommit& operator=(const GroupCommit&) = delete;

  /// Probe consulted by a lingering leader: returns true while more commits
  /// are expected imminently (the engine reports a writer applying or queued
  /// for the apply latch).  Must be lock-free; called under the queue mutex.
  void set_more_expected_probe(std::function<bool()> probe) {
    more_expected_ = std::move(probe);
  }

  /// Fires once, on the first append/fsync failure, with the failing status.
  /// Must not call back into this GroupCommit.
  void set_on_failure(std::function<void(const Status&)> on_failure) {
    on_failure_ = std::move(on_failure);
  }

  /// Queues one transaction's pre-framed records.  Caller must hold the
  /// engine's exclusive apply latch.  `needs_sync` marks a kSync-mode commit
  /// (its batch must fsync before its waiter is released).  Returns the
  /// ticket to pass to WaitAppended/WaitDurable.
  uint64_t Enqueue(std::string framed, uint64_t txn_id, uint64_t record_count,
                   bool needs_sync);

  /// Blocks until the ticket's records are appended (kAsync ack point).
  Status WaitAppended(uint64_t seq);

  /// Blocks until the ticket's records are fsynced (kSync ack point).
  Status WaitDurable(uint64_t seq);

  /// Blocks until every transaction with id <= txn_id that was ever enqueued
  /// is durable.  Leads a sync-only batch if needed (the async catch-up
  /// path).  Requires txn ids to be enqueued in increasing order, which the
  /// apply latch guarantees.
  Status WaitDurableTxn(uint64_t txn_id);

  /// Drains the queue and fsyncs everything appended.  Caller must hold the
  /// engine's exclusive apply latch (so no new Enqueue can race the drain).
  /// Returns the sticky error if the queue has failed.
  Status Flush();

  /// Highest txn id made durable so far.  Thread-safe.
  uint64_t durable_txn_id() const;

  /// Highest txn id appended to the WAL file so far.  Thread-safe.
  uint64_t appended_txn_id() const;

  /// Steady-clock microseconds of the last completed leader batch (0 before
  /// the first batch).  Thread-safe; the liveness signal for HealthCheck and
  /// diagnostics dumps.
  uint64_t leader_heartbeat_us() const {
    return leader_heartbeat_us_.load(std::memory_order_relaxed);
  }

 private:
  struct Pending {
    uint64_t seq = 0;
    uint64_t txn_id = 0;
    uint64_t record_count = 0;
    bool needs_sync = false;
    std::string framed;
  };

  /// Leader duty cycle: gather (optional), pop a batch, append+fsync with
  /// mu_ RELEASED, publish results, wake waiters.  Called with mu_ held;
  /// returns with mu_ held.
  void LeadBatch(bool want_sync, bool allow_gather);
  /// Common wait loop for WaitAppended/WaitDurable.
  Status WaitReached(uint64_t seq, bool durable);
  /// Publishes a failure: sets the sticky error and fires on_failure once.
  void FailLocked(const Status& error) ODE_REQUIRES(mu_);
  void UpdatePendingGauge() ODE_REQUIRES(mu_);

  Wal* const wal_;
  const size_t max_batch_;
  const uint32_t max_wait_us_;
  StorageMetrics* const metrics_;
  std::function<bool()> more_expected_;           // Set once at engine open.
  std::function<void(const Status&)> on_failure_;  // Set once at engine open.

  mutable Mutex mu_;
  CondVar cv_;
  std::deque<Pending> queue_ ODE_GUARDED_BY(mu_);
  uint64_t next_seq_ ODE_GUARDED_BY(mu_) = 1;
  uint64_t appended_seq_ ODE_GUARDED_BY(mu_) = 0;
  uint64_t durable_seq_ ODE_GUARDED_BY(mu_) = 0;
  /// Txn-id mirrors of the seq watermarks (txn ids are enqueued in
  /// increasing order, so these are monotone too).
  uint64_t appended_txn_ ODE_GUARDED_BY(mu_) = 0;
  uint64_t durable_txn_ ODE_GUARDED_BY(mu_) = 0;
  bool leader_active_ ODE_GUARDED_BY(mu_) = false;
  /// Commits appended to the WAL file but not yet covered by an fsync.
  uint64_t appended_not_durable_ ODE_GUARDED_BY(mu_) = 0;
  Status error_ ODE_GUARDED_BY(mu_);  // Sticky; OK while healthy.
  std::atomic<uint64_t> leader_heartbeat_us_{0};
};

}  // namespace ode

#endif  // ODE_STORAGE_GROUP_COMMIT_H_
