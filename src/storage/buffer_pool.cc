#include "storage/buffer_pool.h"

#include <cassert>
#include <cstring>

#include "storage/storage_metrics.h"
#include "util/logging.h"

namespace ode {

const char* PageHandle::data() const {
  assert(valid());
  return frame_->data.get();
}

char* PageHandle::mutable_data() {
  assert(valid());
  return pool_->FrameMutableData(frame_);
}

void PageHandle::Release() {
  if (pool_ != nullptr) {
    int prev = frame_->pin_count.fetch_sub(1, std::memory_order_release);
    assert(prev > 0);
    (void)prev;
    pool_ = nullptr;
    frame_ = nullptr;
    id_ = kInvalidPageId;
  }
}

namespace {

size_t PickShardCount(size_t capacity_pages, size_t requested) {
  // Explicit requests are rounded down to a power of two so shard selection
  // can mask instead of divide.
  if (requested != 0) {
    size_t p = 1;
    while (p * 2 <= requested) p *= 2;
    return p;
  }
  size_t shards = 1;
  while (shards < 16 && capacity_pages / (shards * 2) >= 64) shards *= 2;
  return shards;
}

}  // namespace

BufferPool::BufferPool(DiskManager* disk, size_t capacity_pages, size_t shards)
    : disk_(disk), capacity_(capacity_pages) {
  assert(capacity_ >= 1);
  const size_t n = PickShardCount(capacity_pages, shards);
  shard_mask_ = n - 1;
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto shard = std::make_unique<Shard>();
    // Distribute the budget; every shard gets at least one frame.
    shard->capacity = (capacity_pages + n - 1) / n;
    if (shard->capacity == 0) shard->capacity = 1;
    shards_.push_back(std::move(shard));
  }
}

BufferPool::~BufferPool() = default;

BufferPool::Shard& BufferPool::ShardFor(PageId id) {
  // Mask, not modulo: shard counts are powers of two, and consecutive page
  // ids spread round-robin so no shard is stranded.
  return *shards_[id & shard_mask_];
}

StatusOr<PageHandle> BufferPool::Fetch(PageId id) {
  Shard& shard = ShardFor(id);
  MutexLock lock(shard.mu);
  auto it = shard.frames.find(id);
  if (it != shard.frames.end()) {
    ++shard.stats.hits;
    Frame& frame = it->second;
    frame.pin_count.fetch_add(1, std::memory_order_relaxed);
    TouchLru(shard, &frame);
    return PageHandle(this, &frame, id);
  }
  ++shard.stats.misses;
  ODE_RETURN_IF_ERROR(EvictOneIfNeeded(shard));
  // The disk read happens under the shard lock: concurrent fetches of the
  // same page must not race, and fetches in other shards proceed unblocked.
  auto [ins_it, inserted] = shard.frames.try_emplace(id);
  assert(inserted);
  (void)inserted;
  Frame& frame = ins_it->second;
  frame.id = id;
  frame.data = std::make_unique<char[]>(kPageSize);
  {
    ScopedLatency timer(metrics_ != nullptr ? metrics_->page_read_ns
                                            : nullptr);
    if (Status s = disk_->ReadPage(id, frame.data.get()); !s.ok()) {
      shard.frames.erase(ins_it);
      return s;
    }
  }
  if (metrics_ != nullptr) metrics_->page_reads->Increment();
  frame.pin_count.store(1, std::memory_order_relaxed);
  TouchLru(shard, &frame);
  return PageHandle(this, &frame, id);
}

char* BufferPool::FrameMutableData(Frame* frame) {
  // Writer-side only, but the dirty flags are shared with reader-side
  // eviction, so flip them under the shard lock.
  Shard& shard = ShardFor(frame->id);
  MutexLock lock(shard.mu);
  if (!frame->epoch_dirty) {
    if (pre_dirty_hook_) {
      pre_dirty_hook_(frame->id, frame->data.get(), frame->dirty);
    }
    frame->epoch_dirty = true;
    epoch_dirty_list_.push_back(frame->id);
  }
  frame->dirty = true;
  return frame->data.get();
}

void BufferPool::BeginEpoch() {
  for (PageId id : epoch_dirty_list_) {
    Shard& shard = ShardFor(id);
    MutexLock lock(shard.mu);
    auto it = shard.frames.find(id);
    if (it != shard.frames.end()) it->second.epoch_dirty = false;
  }
  epoch_dirty_list_.clear();
  in_epoch_ = true;
}

Status BufferPool::RestorePage(PageId id, const char* image, bool dirty) {
  Shard& shard = ShardFor(id);
  MutexLock lock(shard.mu);
  auto it = shard.frames.find(id);
  if (it == shard.frames.end()) {
    return Status::Internal("RestorePage: page not resident");
  }
  std::memcpy(it->second.data.get(), image, kPageSize);
  it->second.dirty = dirty;
  it->second.epoch_dirty = false;
  return Status::OK();
}

void BufferPool::CommitEpoch() {
  for (PageId id : epoch_dirty_list_) {
    Shard& shard = ShardFor(id);
    MutexLock lock(shard.mu);
    auto it = shard.frames.find(id);
    if (it != shard.frames.end()) it->second.epoch_dirty = false;
  }
  epoch_dirty_list_.clear();
  in_epoch_ = false;
}

Status BufferPool::FlushAll() {
  if (in_epoch_ && !epoch_dirty_list_.empty()) {
    return Status::FailedPrecondition("FlushAll during an open transaction");
  }
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    MutexLock lock(shard.mu);
    for (auto& [id, frame] : shard.frames) {
      if (frame.dirty) {
        {
          ScopedLatency timer(metrics_ != nullptr ? metrics_->page_write_ns
                                                  : nullptr);
          ODE_RETURN_IF_ERROR(disk_->WritePage(id, frame.data.get()));
        }
        if (metrics_ != nullptr) metrics_->page_writes->Increment();
        frame.dirty = false;
        ++shard.stats.flushes;
      }
    }
  }
  return disk_->Sync();
}

void BufferPool::DropAllUnpinned() {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    MutexLock lock(shard.mu);
    for (auto it = shard.frames.begin(); it != shard.frames.end();) {
      if (it->second.pin_count.load(std::memory_order_acquire) == 0) {
        if (it->second.in_lru) shard.lru.erase(it->second.lru_pos);
        it = shard.frames.erase(it);
      } else {
        ++it;
      }
    }
  }
}

BufferPoolStats BufferPool::stats() const {
  // Counters live per shard (bumped under that shard's mutex, so Fetch pays
  // no atomic RMW for accounting); summing under each lock yields a snapshot
  // covering every operation that completed before this call.
  BufferPoolStats out;
  for (const auto& shard_ptr : shards_) {
    MutexLock lock(shard_ptr->mu);
    const BufferPoolStats& s = shard_ptr->stats;
    out.hits += s.hits;
    out.misses += s.misses;
    out.evictions += s.evictions;
    out.flushes += s.flushes;
  }
  return out;
}

size_t BufferPool::resident_pages() const {
  size_t total = 0;
  for (const auto& shard_ptr : shards_) {
    MutexLock lock(shard_ptr->mu);
    total += shard_ptr->frames.size();
  }
  return total;
}

Status BufferPool::EvictOneIfNeeded(Shard& shard) {
  // Evicts until the shard is back under capacity.  Single-threaded the loop
  // runs at most once per fetch (the shard never overgrows), preserving the
  // classic LRU eviction counts; after a concurrent pin storm forced the
  // shard past capacity, the next fetch drains the whole overage here.
  while (shard.frames.size() >= shard.capacity) {
    // Scan from least recently used; skip pinned or dirty frames (dirty
    // pages are only written by FlushAll, never by eviction).  The acquire
    // load of pin_count pairs with the release fetch_sub in
    // PageHandle::Release, so a frame observed unpinned is truly done being
    // read.
    bool evicted = false;
    for (auto rit = shard.lru.rbegin(); rit != shard.lru.rend(); ++rit) {
      auto it = shard.frames.find(*rit);
      assert(it != shard.frames.end());
      Frame& frame = it->second;
      if (frame.pin_count.load(std::memory_order_acquire) == 0 &&
          !frame.dirty) {
        shard.lru.erase(std::next(rit).base());
        shard.frames.erase(it);
        ++shard.stats.evictions;
        evicted = true;
        break;
      }
    }
    if (!evicted) {
      // Everything pinned or dirty: grow beyond nominal capacity.
      ODE_LOG_DEBUG << "buffer pool shard over capacity ("
                    << shard.frames.size() << " resident, shard capacity "
                    << shard.capacity << ")";
      break;
    }
  }
  return Status::OK();
}

void BufferPool::TouchLru(Shard& shard, Frame* frame) {
  if (frame->in_lru) shard.lru.erase(frame->lru_pos);
  shard.lru.push_front(frame->id);
  frame->lru_pos = shard.lru.begin();
  frame->in_lru = true;
}

}  // namespace ode
