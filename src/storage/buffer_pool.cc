#include "storage/buffer_pool.h"

#include <cassert>
#include <cstring>

#include "util/logging.h"

namespace ode {

const char* PageHandle::data() const {
  assert(valid());
  return pool_->FrameData(id_);
}

char* PageHandle::mutable_data() {
  assert(valid());
  return pool_->FrameMutableData(id_);
}

void PageHandle::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(id_);
    pool_ = nullptr;
    id_ = kInvalidPageId;
  }
}

BufferPool::BufferPool(DiskManager* disk, size_t capacity_pages)
    : disk_(disk), capacity_(capacity_pages) {
  assert(capacity_ >= 1);
}

BufferPool::~BufferPool() = default;

StatusOr<PageHandle> BufferPool::Fetch(PageId id) {
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    ++stats_.hits;
    Frame& frame = it->second;
    ++frame.pin_count;
    TouchLru(&frame);
    return PageHandle(this, id);
  }
  ++stats_.misses;
  ODE_RETURN_IF_ERROR(EvictOneIfNeeded());
  Frame frame;
  frame.id = id;
  frame.data = std::make_unique<char[]>(kPageSize);
  ODE_RETURN_IF_ERROR(disk_->ReadPage(id, frame.data.get()));
  frame.pin_count = 1;
  auto [ins_it, inserted] = frames_.emplace(id, std::move(frame));
  assert(inserted);
  TouchLru(&ins_it->second);
  return PageHandle(this, id);
}

const char* BufferPool::FrameData(PageId id) const {
  auto it = frames_.find(id);
  assert(it != frames_.end());
  return it->second.data.get();
}

char* BufferPool::FrameMutableData(PageId id) {
  auto it = frames_.find(id);
  assert(it != frames_.end());
  Frame& frame = it->second;
  if (!frame.epoch_dirty) {
    if (pre_dirty_hook_) pre_dirty_hook_(id, frame.data.get(), frame.dirty);
    frame.epoch_dirty = true;
    epoch_dirty_list_.push_back(id);
  }
  frame.dirty = true;
  return frame.data.get();
}

void BufferPool::Unpin(PageId id) {
  auto it = frames_.find(id);
  assert(it != frames_.end());
  assert(it->second.pin_count > 0);
  --it->second.pin_count;
}

void BufferPool::BeginEpoch() {
  for (PageId id : epoch_dirty_list_) {
    auto it = frames_.find(id);
    if (it != frames_.end()) it->second.epoch_dirty = false;
  }
  epoch_dirty_list_.clear();
  in_epoch_ = true;
}

Status BufferPool::RestorePage(PageId id, const char* image, bool dirty) {
  auto it = frames_.find(id);
  if (it == frames_.end()) {
    return Status::Internal("RestorePage: page not resident");
  }
  std::memcpy(it->second.data.get(), image, kPageSize);
  it->second.dirty = dirty;
  it->second.epoch_dirty = false;
  return Status::OK();
}

void BufferPool::CommitEpoch() {
  for (PageId id : epoch_dirty_list_) {
    auto it = frames_.find(id);
    if (it != frames_.end()) it->second.epoch_dirty = false;
  }
  epoch_dirty_list_.clear();
  in_epoch_ = false;
}

Status BufferPool::FlushAll() {
  if (in_epoch_ && !epoch_dirty_list_.empty()) {
    return Status::FailedPrecondition("FlushAll during an open transaction");
  }
  for (auto& [id, frame] : frames_) {
    if (frame.dirty) {
      ODE_RETURN_IF_ERROR(disk_->WritePage(id, frame.data.get()));
      frame.dirty = false;
      ++stats_.flushes;
    }
  }
  return disk_->Sync();
}

void BufferPool::DropAllUnpinned() {
  for (auto it = frames_.begin(); it != frames_.end();) {
    if (it->second.pin_count == 0) {
      if (it->second.in_lru) lru_.erase(it->second.lru_pos);
      it = frames_.erase(it);
    } else {
      ++it;
    }
  }
}

Status BufferPool::EvictOneIfNeeded() {
  if (frames_.size() < capacity_) return Status::OK();
  // Scan from least recently used; skip pinned or dirty frames (dirty pages
  // are only written by FlushAll, never by eviction).
  for (auto rit = lru_.rbegin(); rit != lru_.rend(); ++rit) {
    auto it = frames_.find(*rit);
    assert(it != frames_.end());
    Frame& frame = it->second;
    if (frame.pin_count == 0 && !frame.dirty) {
      lru_.erase(std::next(rit).base());
      frames_.erase(it);
      ++stats_.evictions;
      return Status::OK();
    }
  }
  // Everything pinned or dirty: grow beyond nominal capacity.
  ODE_LOG_DEBUG << "buffer pool over capacity (" << frames_.size()
                << " resident, capacity " << capacity_ << ")";
  return Status::OK();
}

void BufferPool::TouchLru(Frame* frame) {
  if (frame->in_lru) lru_.erase(frame->lru_pos);
  lru_.push_front(frame->id);
  frame->lru_pos = lru_.begin();
  frame->in_lru = true;
}

}  // namespace ode
