#ifndef ODE_STORAGE_WAL_H_
#define ODE_STORAGE_WAL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/disk_manager.h"
#include "storage/env.h"
#include "storage/page.h"
#include "util/status.h"
#include "util/statusor.h"

namespace ode {

struct StorageMetrics;

/// Kinds of write-ahead-log records.
enum class WalRecordType : uint8_t {
  kBegin = 1,      ///< Transaction started.
  kPageImage = 2,  ///< Full after-image of one page.
  kCommit = 3,     ///< Transaction committed (durable once this is synced).
};

/// One decoded WAL record (page image records carry the page bytes).
struct WalRecord {
  WalRecordType type;
  uint64_t txn_id;
  PageId page_id = kInvalidPageId;  // kPageImage only.
  std::string image;                // kPageImage only, kPageSize bytes.
};

/// Statistics about a completed recovery pass.
struct RecoveryStats {
  uint64_t committed_txns = 0;
  uint64_t discarded_txns = 0;  ///< Begun but never committed (crash victims).
  uint64_t pages_replayed = 0;
  uint64_t records_scanned = 0;
  bool tail_truncated = false;  ///< A torn/corrupt tail record was dropped.
};

/// Append-only redo log of full page after-images (trailing zeros of each
/// image are suppressed on disk and re-padded during recovery).
///
/// Protocol (enforced by StorageEngine): every page a transaction modifies is
/// logged as a kPageImage record, followed by kCommit, followed by Sync().
/// Dirty pages reach the data file only at checkpoints, strictly after their
/// commit record is durable — so recovery is pure redo: replay page images of
/// committed transactions in log order and ignore everything else.
///
/// Record wire format:
///   u32 payload length | u32 masked CRC32C of payload | payload
/// A record whose length or CRC does not check out is treated as the torn
/// tail of an interrupted append: it and everything after it are discarded.
class Wal {
 public:
  static StatusOr<std::unique_ptr<Wal>> Open(Env* env, const std::string& path);

  Status AppendBegin(uint64_t txn_id);
  Status AppendPageImage(uint64_t txn_id, PageId page_id, const char* image);
  Status AppendCommit(uint64_t txn_id);

  // -- Group-commit support --------------------------------------------------
  //
  // A committing transaction serializes its whole record sequence (Begin,
  // PageImages, Commit) into one pre-framed blob under the engine's apply
  // latch, then hands the blob to the group-commit queue; the leader writes
  // many blobs with one Append each and a single fsync.  Each Encode* call
  // appends one fully framed record (identical wire format to the Append*
  // methods above) to `*out`, so a recovered log cannot tell batched and
  // unbatched commits apart.

  static void EncodeBegin(uint64_t txn_id, std::string* out);
  static void EncodePageImage(uint64_t txn_id, PageId page_id,
                              const char* image, std::string* out);
  static void EncodeCommit(uint64_t txn_id, std::string* out);

  /// Appends a pre-framed blob of `record_count` records in one file write.
  Status AppendBlob(const std::string& framed, uint64_t record_count);

  /// Durably flushes appended records.
  Status Sync();

  /// Empties the log (checkpoint step; caller must have flushed data pages
  /// first).
  Status Truncate();

  /// Replays committed transactions into `disk`, then syncs it.
  StatusOr<RecoveryStats> Recover(DiskManager* disk);

  /// Decodes every well-formed record (stops at a torn tail).  For tests.
  StatusOr<std::vector<WalRecord>> ReadAll();

  uint64_t bytes_appended() const {
    return bytes_appended_.load(std::memory_order_relaxed);
  }
  uint64_t sync_count() const {
    return sync_count_.load(std::memory_order_relaxed);
  }

  /// Attaches the owning engine's instrument bundle (appends, bytes, fsyncs
  /// and their latencies record into it).  Null = no metrics.
  void set_metrics(StorageMetrics* metrics) { metrics_ = metrics; }

 private:
  explicit Wal(std::unique_ptr<File> file) : file_(std::move(file)) {}

  /// Scans the log; fills `records`.  Sets `tail_truncated` if a torn tail
  /// was found.
  Status Scan(std::vector<WalRecord>* records, bool* tail_truncated);

  std::unique_ptr<File> file_;
  // Written only by the engine's writer thread, but read by any thread via
  // the monitoring accessors above (Database::stats() runs concurrently
  // with a committing writer), so both must be atomic.
  std::atomic<uint64_t> bytes_appended_{0};
  std::atomic<uint64_t> sync_count_{0};
  StorageMetrics* metrics_ = nullptr;
};

}  // namespace ode

#endif  // ODE_STORAGE_WAL_H_
