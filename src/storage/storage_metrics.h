#ifndef ODE_STORAGE_STORAGE_METRICS_H_
#define ODE_STORAGE_STORAGE_METRICS_H_

#include "util/event_log.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace ode {

/// Pre-resolved instrument handles for the storage layer, looked up once at
/// engine open so hot paths never touch the registry's name table.  One
/// instance per StorageEngine; shared (by pointer) with the WAL, the buffer
/// pool and — through PageIO::metrics() — the B+tree.
///
/// Naming convention: `<component>.<event>` counters, `<...>_ns` histograms
/// recording nanoseconds.
struct StorageMetrics {
  // Data-file page I/O (buffer-pool miss reads, checkpoint writes).
  Counter* page_reads = nullptr;
  Histogram* page_read_ns = nullptr;
  Counter* page_writes = nullptr;
  Histogram* page_write_ns = nullptr;

  // Write-ahead log.
  Counter* wal_appends = nullptr;
  Counter* wal_append_bytes = nullptr;
  Histogram* wal_append_ns = nullptr;
  Counter* wal_fsyncs = nullptr;
  Histogram* wal_fsync_ns = nullptr;

  // Transactions (engine level).
  Counter* txn_begins = nullptr;
  Counter* txn_commits = nullptr;
  Counter* txn_aborts = nullptr;
  Histogram* txn_commit_ns = nullptr;
  /// Shared-lock acquisition wait in WithReadTxn (lock contention signal).
  Histogram* read_lock_wait_ns = nullptr;
  /// Contended stripe-latch acquisition wait (WriteLatchSet; writer-vs-writer
  /// conflict signal, same convention as read_lock_wait_ns).
  Histogram* write_latch_wait_ns = nullptr;

  // Group commit (storage/group_commit.h).  commits/fsyncs > 1 is the whole
  // point: many transactions amortizing one fsync.
  Counter* gc_batches = nullptr;      ///< Leader batches written.
  Counter* gc_commits = nullptr;      ///< Transactions committed via batches.
  Counter* gc_fsyncs = nullptr;       ///< Fsyncs issued by group commit.
  Histogram* gc_batch_size = nullptr; ///< Commits per batch.
  /// Commits queued or appended but not yet fsync-covered (the async-mode
  /// durability lag; returns to zero when sync batches drain the queue).
  Gauge* gc_async_pending = nullptr;

  // Catalog B+tree.
  Counter* btree_descents = nullptr;
  Histogram* btree_descend_ns = nullptr;

  // Checkpoints.
  Counter* checkpoints = nullptr;
  Histogram* checkpoint_ns = nullptr;

  // Buffer-pool mirrors, refreshed at snapshot time from the pool's
  // per-shard counters (nothing extra on the Fetch hot path).
  Counter* pool_hits = nullptr;
  Counter* pool_misses = nullptr;
  Counter* pool_evictions = nullptr;
  Counter* pool_flushes = nullptr;
  Gauge* pool_resident_pages = nullptr;

  // Background-task health heartbeats (steady-clock microseconds, written
  // by the task itself via Gauge::Set — lock-free) and the lag gauges
  // HealthCheck() derives from them.  A heartbeat of 0 means the task has
  // not run yet this session.
  Gauge* hb_checkpointer_us = nullptr;
  Gauge* hb_gc_leader_us = nullptr;
  Gauge* hb_vacuum_us = nullptr;
  Gauge* checkpointer_lag_us = nullptr;
  Gauge* health_state = nullptr;  ///< 0 ok / 1 degraded / 2 poisoned.

  /// Event tracer for this engine's spans; may be null (tracing not set up).
  Tracer* tracer = nullptr;

  /// Structured event journal (util/event_log.h); may be null (journaling
  /// not set up).  Set by the engine from StorageOptions::event_log, not by
  /// Attach — the journal is owned above the registry.
  EventLog* events = nullptr;

  /// Null-safe journal append, so instrumented components need no checks.
  void RecordEvent(EventType type, EventSeverity severity, uint64_t a = 0,
                   uint64_t b = 0, uint64_t c = 0,
                   std::string_view detail = {}) const {
    if (events != nullptr) events->Record(type, severity, a, b, c, detail);
  }

  void Attach(MetricsRegistry* registry, Tracer* trace) {
    page_reads = registry->GetCounter("storage.page_reads");
    page_read_ns = registry->GetHistogram("storage.page_read_ns");
    page_writes = registry->GetCounter("storage.page_writes");
    page_write_ns = registry->GetHistogram("storage.page_write_ns");
    wal_appends = registry->GetCounter("wal.appends");
    wal_append_bytes = registry->GetCounter("wal.append_bytes");
    wal_append_ns = registry->GetHistogram("wal.append_ns");
    wal_fsyncs = registry->GetCounter("wal.fsyncs");
    wal_fsync_ns = registry->GetHistogram("wal.fsync_ns");
    txn_begins = registry->GetCounter("txn.begins");
    txn_commits = registry->GetCounter("txn.commits");
    txn_aborts = registry->GetCounter("txn.aborts");
    txn_commit_ns = registry->GetHistogram("txn.commit_ns");
    read_lock_wait_ns = registry->GetHistogram("txn.read_lock_wait_ns");
    write_latch_wait_ns = registry->GetHistogram("txn.write_latch_wait_ns");
    gc_batches = registry->GetCounter("groupcommit.batches");
    gc_commits = registry->GetCounter("groupcommit.commits");
    gc_fsyncs = registry->GetCounter("groupcommit.fsyncs");
    gc_batch_size = registry->GetHistogram("groupcommit.batch_size");
    gc_async_pending = registry->GetGauge("groupcommit.async_pending");
    btree_descents = registry->GetCounter("btree.descents");
    btree_descend_ns = registry->GetHistogram("btree.descend_ns");
    checkpoints = registry->GetCounter("storage.checkpoints");
    checkpoint_ns = registry->GetHistogram("storage.checkpoint_ns");
    pool_hits = registry->GetCounter("bufferpool.hits");
    pool_misses = registry->GetCounter("bufferpool.misses");
    pool_evictions = registry->GetCounter("bufferpool.evictions");
    pool_flushes = registry->GetCounter("bufferpool.flushes");
    pool_resident_pages = registry->GetGauge("bufferpool.resident_pages");
    hb_checkpointer_us = registry->GetGauge("health.checkpointer_heartbeat_us");
    hb_gc_leader_us = registry->GetGauge("health.gc_leader_heartbeat_us");
    hb_vacuum_us = registry->GetGauge("health.vacuum_heartbeat_us");
    checkpointer_lag_us = registry->GetGauge("health.checkpointer_lag_us");
    health_state = registry->GetGauge("health.state");
    tracer = trace;
  }
};

}  // namespace ode

#endif  // ODE_STORAGE_STORAGE_METRICS_H_
