#include "storage/fault_env.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <optional>

#include "util/event_log.h"

namespace ode {

namespace {

/// Per-file shadow state: `synced` is what survives a crash, `current` is
/// what readers see now.
struct FaultFileState {
  std::string synced;
  std::string current;
  uint64_t generation = 0;  // Bumped on crash to invalidate open handles.
};

/// What a file looks like after a crash: the synced image with a prefix of
/// the unsynced modification region overlaid (see CrashTear).
std::string ApplyTear(const std::string& synced, const std::string& current,
                      CrashTear tear) {
  if (tear == CrashTear::kLoseAll) return synced;
  if (tear == CrashTear::kKeepAll) return current;
  // The unsynced region starts at the first byte where current diverges from
  // the synced image and runs to current EOF.
  size_t d = 0;
  const size_t common = std::min(synced.size(), current.size());
  while (d < common && synced[d] == current[d]) ++d;
  if (d >= current.size()) return synced;  // Only an unsynced truncate; lose it.
  const size_t region = current.size() - d;
  size_t keep = 0;
  switch (tear) {
    case CrashTear::kTearHalf:
      keep = region / 2;
      break;
    case CrashTear::kTornByte:
      keep = region - 1;
      break;
    case CrashTear::kCorruptLast:
      keep = region;
      break;
    default:
      break;
  }
  std::string out = synced;
  if (keep > 0) {
    if (out.size() < d + keep) out.resize(d + keep, '\0');
    out.replace(d, keep, current, d, keep);
    if (tear == CrashTear::kCorruptLast) out[d + keep - 1] ^= 0x01;
  }
  return out;
}

struct FailurePlan {
  FaultOp op;
  uint64_t remaining;  // Matching ops to let through before failing.
  Status error;
  bool sticky;
};

struct FaultState {
  std::map<std::string, std::shared_ptr<FaultFileState>> files;

  // Accounting.
  IoCounts counts;
  uint64_t successful_syncs = 0;  // Legacy sync_count() semantics.

  // Dying-disk state: once failing, every mutating op returns failing_error.
  bool failing = false;
  Status failing_error = Status::IOError("simulated disk failure");
  int syncs_until_failure = -1;  // < 0: disabled (legacy FailAfterSyncs).
  std::optional<FailurePlan> plan;

  // Scheduled crash.
  bool crash_armed = false;
  uint64_t crash_at_op = 0;  // Mutating ops since arming.
  uint64_t ops_since_arm = 0;
  CrashTear crash_tear = CrashTear::kLoseAll;
  bool crash_fired = false;

  // Optional journal for fired injections (see set_event_log).
  EventLog* events = nullptr;

  void CrashNow(CrashTear tear) {
    for (auto& [name, state] : files) {
      (void)name;
      state->current = ApplyTear(state->synced, state->current, tear);
      state->synced = state->current;  // Post-reboot, disk content is the baseline.
      ++state->generation;
    }
    failing = false;
    syncs_until_failure = -1;
    plan.reset();
    crash_armed = false;
    crash_fired = true;
  }

  /// Runs the injection pipeline for one attempted operation.  Returns the
  /// error the op must fail with, or OK to let it execute.
  Status CheckOp(FaultOp op) {
    const bool mutating = op != FaultOp::kRead && op != FaultOp::kOpen;
    ++counts.ops[static_cast<int>(op)];
    if (mutating) {
      if (crash_armed) {
        if (ops_since_arm == crash_at_op) {
          CrashNow(crash_tear);
          if (events != nullptr) {
            events->Record(EventType::kFaultInjection, EventSeverity::kWarn,
                           static_cast<uint64_t>(op), /*b=*/1, crash_at_op,
                           "simulated crash");
          }
          return Status::IOError("simulated crash");
        }
        ++ops_since_arm;
      }
    }
    if (plan.has_value() && plan->op == op) {
      if (plan->remaining == 0) {
        const Status error = plan->error;
        if (plan->sticky) {
          failing = true;
          failing_error = error;
        }
        plan.reset();
        if (events != nullptr) {
          events->Record(EventType::kFaultInjection, EventSeverity::kWarn,
                         static_cast<uint64_t>(op), /*b=*/0, 0,
                         error.ToString());
        }
        return error;
      }
      --plan->remaining;
    }
    if (op == FaultOp::kSync && syncs_until_failure == 0) failing = true;
    if (mutating && failing) return failing_error;
    if (op == FaultOp::kSync && syncs_until_failure > 0) --syncs_until_failure;
    return Status::OK();
  }
};

class FaultFile : public File {
 public:
  FaultFile(std::shared_ptr<FaultFileState> state, FaultState* global)
      : state_(std::move(state)),
        global_(global),
        generation_(state_->generation) {}

  Status Read(uint64_t offset, size_t n, std::string* scratch,
              Slice* result) override {
    ODE_RETURN_IF_ERROR(CheckAlive());
    ODE_RETURN_IF_ERROR(global_->CheckOp(FaultOp::kRead));
    const std::string& c = state_->current;
    if (offset >= c.size()) {
      *result = Slice();
      return Status::OK();
    }
    size_t avail = std::min<size_t>(n, c.size() - offset);
    scratch->assign(c.data() + offset, avail);
    *result = Slice(*scratch);
    global_->counts.bytes_read += avail;
    return Status::OK();
  }

  Status Write(uint64_t offset, const Slice& data) override {
    ODE_RETURN_IF_ERROR(CheckAlive());
    ODE_RETURN_IF_ERROR(global_->CheckOp(FaultOp::kWrite));
    std::string& c = state_->current;
    if (offset + data.size() > c.size()) c.resize(offset + data.size());
    std::memcpy(c.data() + offset, data.data(), data.size());
    global_->counts.bytes_written += data.size();
    return Status::OK();
  }

  Status Append(const Slice& data) override {
    ODE_RETURN_IF_ERROR(CheckAlive());
    ODE_RETURN_IF_ERROR(global_->CheckOp(FaultOp::kAppend));
    state_->current.append(data.data(), data.size());
    global_->counts.bytes_written += data.size();
    return Status::OK();
  }

  Status Sync() override {
    ODE_RETURN_IF_ERROR(CheckAlive());
    ODE_RETURN_IF_ERROR(global_->CheckOp(FaultOp::kSync));
    state_->synced = state_->current;
    ++global_->successful_syncs;
    return Status::OK();
  }

  Status Truncate(uint64_t size) override {
    ODE_RETURN_IF_ERROR(CheckAlive());
    ODE_RETURN_IF_ERROR(global_->CheckOp(FaultOp::kTruncate));
    state_->current.resize(size);
    return Status::OK();
  }

  StatusOr<uint64_t> Size() override {
    ODE_RETURN_IF_ERROR(CheckAlive());
    return static_cast<uint64_t>(state_->current.size());
  }

 private:
  Status CheckAlive() const {
    if (generation_ != state_->generation) {
      return Status::IOError("file handle invalidated by simulated crash");
    }
    return Status::OK();
  }

  std::shared_ptr<FaultFileState> state_;
  FaultState* global_;
  uint64_t generation_;
};

}  // namespace

struct FaultInjectionEnv::Impl {
  Env* base;  // Unused beyond construction; fault env keeps its own store.
  FaultState state;
};

FaultInjectionEnv::FaultInjectionEnv(Env* base) : impl_(new Impl()) {
  impl_->base = base;
}
FaultInjectionEnv::~FaultInjectionEnv() = default;

StatusOr<std::unique_ptr<File>> FaultInjectionEnv::OpenFile(
    const std::string& path) {
  ODE_RETURN_IF_ERROR(impl_->state.CheckOp(FaultOp::kOpen));
  auto it = impl_->state.files.find(path);
  if (it == impl_->state.files.end()) {
    it = impl_->state.files.emplace(path, std::make_shared<FaultFileState>())
             .first;
  }
  return std::unique_ptr<File>(new FaultFile(it->second, &impl_->state));
}

bool FaultInjectionEnv::FileExists(const std::string& path) {
  return impl_->state.files.count(path) > 0;
}

Status FaultInjectionEnv::DeleteFile(const std::string& path) {
  ODE_RETURN_IF_ERROR(impl_->state.CheckOp(FaultOp::kDelete));
  if (impl_->state.files.erase(path) == 0) {
    return Status::NotFound("no such file: " + path);
  }
  return Status::OK();
}

Status FaultInjectionEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  ODE_RETURN_IF_ERROR(impl_->state.CheckOp(FaultOp::kRename));
  auto it = impl_->state.files.find(from);
  if (it == impl_->state.files.end()) {
    return Status::NotFound("no such file: " + from);
  }
  impl_->state.files[to] = it->second;
  impl_->state.files.erase(it);
  return Status::OK();
}

Status FaultInjectionEnv::CreateDir(const std::string&) { return Status::OK(); }

StatusOr<std::vector<std::string>> FaultInjectionEnv::ListDir(
    const std::string& path) {
  std::vector<std::string> names;
  std::string prefix = path;
  if (!prefix.empty() && prefix.back() != '/') prefix += '/';
  for (const auto& [name, state] : impl_->state.files) {
    (void)state;
    if (name.size() > prefix.size() &&
        name.compare(0, prefix.size(), prefix) == 0) {
      names.push_back(name.substr(prefix.size()));
    }
  }
  return names;
}

void FaultInjectionEnv::CrashAndLoseUnsynced() { Crash(CrashTear::kLoseAll); }

void FaultInjectionEnv::Crash(CrashTear tear) {
  impl_->state.CrashNow(tear);
  // An explicit Crash() is the start of the next experiment, not a pending
  // result to poll; leave crash_fired for ScheduleCrash sweeps.
  impl_->state.crash_fired = false;
}

void FaultInjectionEnv::ScheduleCrash(uint64_t nth_mutating_op,
                                      CrashTear tear) {
  FaultState& s = impl_->state;
  s.crash_armed = true;
  s.crash_at_op = nth_mutating_op;
  s.ops_since_arm = 0;
  s.crash_tear = tear;
  s.crash_fired = false;
}

bool FaultInjectionEnv::crash_fired() const { return impl_->state.crash_fired; }

void FaultInjectionEnv::FailNth(FaultOp op, uint64_t nth, Status error,
                                bool sticky) {
  impl_->state.plan = FailurePlan{op, nth, std::move(error), sticky};
}

void FaultInjectionEnv::FailAfterSyncs(int n) {
  impl_->state.syncs_until_failure = n;
  impl_->state.failing = (n == 0);
  impl_->state.failing_error = Status::IOError("simulated disk failure");
}

void FaultInjectionEnv::ClearFaults() {
  FaultState& s = impl_->state;
  s.failing = false;
  s.syncs_until_failure = -1;
  s.plan.reset();
  s.crash_armed = false;
  s.crash_fired = false;
}

void FaultInjectionEnv::set_event_log(EventLog* log) {
  impl_->state.events = log;
}

IoCounts FaultInjectionEnv::counts() const { return impl_->state.counts; }

uint64_t FaultInjectionEnv::mutating_op_count() const {
  return impl_->state.counts.mutating();
}

int FaultInjectionEnv::sync_count() const {
  return static_cast<int>(impl_->state.successful_syncs);
}

void FaultInjectionEnv::ResetCounts() {
  impl_->state.counts = IoCounts{};
  impl_->state.successful_syncs = 0;
}

}  // namespace ode
