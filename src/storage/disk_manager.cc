#include "storage/disk_manager.h"

#include <cstring>

namespace ode {

StatusOr<std::unique_ptr<DiskManager>> DiskManager::Open(
    Env* env, const std::string& path) {
  auto file = env->OpenFile(path);
  if (!file.ok()) return file.status();
  return std::unique_ptr<DiskManager>(
      new DiskManager(std::move(*file)));
}

Status DiskManager::ReadPage(PageId id, char* buf) {
  std::string scratch;
  Slice result;
  ODE_RETURN_IF_ERROR(file_->Read(static_cast<uint64_t>(id) * kPageSize,
                                  kPageSize, &scratch, &result));
  std::memset(buf, 0, kPageSize);
  std::memcpy(buf, result.data(), result.size());
  return Status::OK();
}

Status DiskManager::WritePage(PageId id, const char* buf) {
  return file_->Write(static_cast<uint64_t>(id) * kPageSize,
                      Slice(buf, kPageSize));
}

Status DiskManager::Sync() { return file_->Sync(); }

StatusOr<uint32_t> DiskManager::FilePageCount() {
  auto size = file_->Size();
  if (!size.ok()) return size.status();
  return static_cast<uint32_t>((*size + kPageSize - 1) / kPageSize);
}

}  // namespace ode
