#include "storage/slotted_page.h"

#include <algorithm>
#include <cstring>
#include <vector>

namespace ode {

uint16_t SlottedPage::ReadU16At(uint32_t off) const {
  return static_cast<uint16_t>(static_cast<uint8_t>(data_[off])) |
         (static_cast<uint16_t>(static_cast<uint8_t>(data_[off + 1])) << 8);
}

void SlottedPage::WriteU16At(uint32_t off, uint16_t v) {
  data_[off] = static_cast<char>(v & 0xff);
  data_[off + 1] = static_cast<char>((v >> 8) & 0xff);
}

void SlottedPage::Init() {
  std::memset(data_, 0, kPageSize);
  data_[0] = static_cast<char>(PageType::kHeap);
  set_slot_count(0);
  set_cell_start(static_cast<uint16_t>(kPageSize));
  set_frag_bytes(0);
}

bool SlottedPage::IsHeapPage() const {
  return static_cast<PageType>(static_cast<uint8_t>(data_[0])) ==
         PageType::kHeap;
}

uint16_t SlottedPage::checked_slot_count() const {
  const uint16_t n = slot_count();
  return n > kMaxSlots ? kMaxSlots : n;
}

bool SlottedPage::CellInBounds(uint16_t slot) const {
  const uint32_t off = SlotCellOffset(slot);
  const uint32_t len = SlotCellLength(slot);
  return off >= kSlotDirStart && off + len <= kPageSize;
}

uint32_t SlottedPage::ContiguousFree() const {
  const uint32_t dir_end = kSlotDirStart + 4u * checked_slot_count();
  // Clamp: a corrupt cell-start above the page end must not inflate the
  // reported free space (Insert sizes its memcpy from it).
  const uint32_t start = std::min<uint32_t>(cell_start(), kPageSize);
  return start > dir_end ? start - dir_end : 0;
}

uint32_t SlottedPage::FreeSpace() const {
  // A new insert may also need a 4-byte slot entry (unless a free slot is
  // reusable, but be conservative).
  const uint32_t contiguous = ContiguousFree();
  const uint32_t total = contiguous + frag_bytes();
  return total > 4 ? total - 4 : 0;
}

uint16_t SlottedPage::LiveSlots() const {
  uint16_t live = 0;
  for (uint16_t i = 0; i < checked_slot_count(); ++i) {
    if (SlotCellOffset(i) != 0) ++live;
  }
  return live;
}

uint16_t SlottedPage::SlotCount() const { return checked_slot_count(); }

void SlottedPage::Compact() {
  // Collect live cells, rewrite them right-justified.  Every directory
  // field is untrusted disk input: out-of-bounds cells are dropped (their
  // slot is freed) rather than copied from memory outside the page — a
  // well-formed page never has any, so this only changes corrupt-page
  // behavior from UB to data-loss-with-typed-errors downstream.
  struct LiveCell {
    uint16_t slot;
    uint16_t length;
    std::vector<char> bytes;
  };
  const uint16_t n = checked_slot_count();
  std::vector<LiveCell> cells;
  for (uint16_t i = 0; i < n; ++i) {
    const uint16_t off = SlotCellOffset(i);
    if (off == 0) continue;
    if (!CellInBounds(i)) {
      SetSlot(i, 0, 0);
      continue;
    }
    const uint16_t len = SlotCellLength(i);
    LiveCell cell;
    cell.slot = i;
    cell.length = len;
    cell.bytes.assign(data_ + off, data_ + off + len);
    cells.push_back(std::move(cell));
  }
  const uint32_t dir_end = kSlotDirStart + 4u * n;
  uint32_t write_pos = kPageSize;
  for (const LiveCell& cell : cells) {
    if (cell.length > write_pos - dir_end) {
      // Overlapping corrupt cells can sum past the free area; dropping the
      // overflow keeps the rewrite inside the page.
      SetSlot(cell.slot, 0, 0);
      continue;
    }
    write_pos -= cell.length;
    if (cell.length > 0) {
      // ode_lint: allow(unchecked-cast) bounds proven by the checks above.
      std::memcpy(data_ + write_pos, cell.bytes.data(), cell.length);
    }
    SetSlot(cell.slot, static_cast<uint16_t>(write_pos), cell.length);
  }
  set_cell_start(static_cast<uint16_t>(write_pos));
  set_frag_bytes(0);
}

StatusOr<uint16_t> SlottedPage::Insert(const Slice& record) {
  if (record.size() > kMaxCellSize) {
    return Status::InvalidArgument("record too large for one page");
  }
  if (slot_count() > kMaxSlots || cell_start() > kPageSize) {
    // The write below derives its target address from these fields; a
    // corrupt header must fail typed instead of writing out of bounds.
    return Status::Corruption("slotted page header out of bounds");
  }
  const uint16_t len = static_cast<uint16_t>(record.size());

  // Find a reusable free slot, else plan to append one.
  uint16_t slot = slot_count();
  bool reuse = false;
  for (uint16_t i = 0; i < slot_count(); ++i) {
    if (SlotCellOffset(i) == 0) {
      slot = i;
      reuse = true;
      break;
    }
  }
  const uint32_t slot_cost = reuse ? 0 : 4;

  if (ContiguousFree() < slot_cost + len) {
    if (ContiguousFree() + frag_bytes() < slot_cost + len) {
      return Status::OutOfRange("page full");
    }
    Compact();
    if (ContiguousFree() < slot_cost + len) {
      return Status::OutOfRange("page full after compaction");
    }
  }

  if (!reuse) set_slot_count(static_cast<uint16_t>(slot_count() + 1));
  const uint16_t new_start = static_cast<uint16_t>(cell_start() - len);
  // ode_lint: allow(unchecked-cast) Insert pre-checked len against free space.
  if (len > 0) std::memcpy(data_ + new_start, record.data(), len);
  set_cell_start(new_start);
  // Zero-length records still need a nonzero offset to read as live; point
  // at the current cell start (no bytes are read for them).
  SetSlot(slot, len > 0 ? new_start : static_cast<uint16_t>(kPageSize - 1),
          len);
  return slot;
}

StatusOr<Slice> SlottedPage::Get(uint16_t slot) const {
  if (slot >= checked_slot_count() || SlotCellOffset(slot) == 0) {
    return Status::NotFound("no record in slot");
  }
  if (!CellInBounds(slot)) {
    return Status::Corruption("slotted page cell outside page bounds");
  }
  return Slice(data_ + SlotCellOffset(slot), SlotCellLength(slot));
}

Status SlottedPage::Delete(uint16_t slot) {
  if (slot >= checked_slot_count() || SlotCellOffset(slot) == 0) {
    return Status::NotFound("no record in slot");
  }
  const uint16_t len = SlotCellLength(slot);
  const uint16_t off = SlotCellOffset(slot);
  // If this was the lowest cell, shrink the cell area directly.
  if (off == cell_start() && len > 0) {
    set_cell_start(static_cast<uint16_t>(cell_start() + len));
  } else {
    set_frag_bytes(static_cast<uint16_t>(frag_bytes() + len));
  }
  SetSlot(slot, 0, 0);
  return Status::OK();
}

Status SlottedPage::Update(uint16_t slot, const Slice& record) {
  if (slot >= checked_slot_count() || SlotCellOffset(slot) == 0) {
    return Status::NotFound("no record in slot");
  }
  if (record.size() > kMaxCellSize) {
    return Status::OutOfRange("record too large for one page");
  }
  if (!CellInBounds(slot) || cell_start() > kPageSize) {
    // Both the shrink-in-place write and the grow path's re-insert derive
    // addresses from these fields.
    return Status::Corruption("slotted page cell outside page bounds");
  }
  const uint16_t old_len = SlotCellLength(slot);
  const uint16_t new_len = static_cast<uint16_t>(record.size());
  if (new_len <= old_len) {
    // Shrink in place; tail bytes become fragmentation.
    const uint16_t off = SlotCellOffset(slot);
    // ode_lint: allow(unchecked-cast) shrink in place: new_len <= old cell.
    if (new_len > 0) std::memcpy(data_ + off, record.data(), new_len);
    set_frag_bytes(static_cast<uint16_t>(frag_bytes() + (old_len - new_len)));
    SetSlot(slot, off, new_len);
    return Status::OK();
  }
  // Grow: free the old cell, then re-insert into the same slot.
  const uint16_t off = SlotCellOffset(slot);
  if (off == cell_start() && old_len > 0) {
    set_cell_start(static_cast<uint16_t>(cell_start() + old_len));
  } else {
    set_frag_bytes(static_cast<uint16_t>(frag_bytes() + old_len));
  }
  SetSlot(slot, 0, 0);
  if (ContiguousFree() < new_len) {
    if (ContiguousFree() + frag_bytes() < new_len) {
      // Restore is impossible (old cell already freed); report and let the
      // caller relocate.  The slot stays free; caller re-inserts elsewhere.
      return Status::OutOfRange("updated record does not fit on page");
    }
    Compact();
  }
  const uint16_t new_start = static_cast<uint16_t>(cell_start() - new_len);
  // ode_lint: allow(unchecked-cast) ContiguousFree() >= new_len ensured above.
  std::memcpy(data_ + new_start, record.data(), new_len);
  set_cell_start(new_start);
  SetSlot(slot, new_start, new_len);
  return Status::OK();
}

}  // namespace ode
