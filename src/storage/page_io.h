#ifndef ODE_STORAGE_PAGE_IO_H_
#define ODE_STORAGE_PAGE_IO_H_

#include <cstdint>

#include "storage/buffer_pool.h"
#include "storage/page.h"
#include "util/status.h"
#include "util/statusor.h"

namespace ode {

struct StorageMetrics;

/// The capability surface data structures (heap file, B+tree) use to touch
/// pages.  Implemented by StorageEngine's transaction object, so every page
/// access automatically participates in dirty tracking, undo capture, and
/// WAL logging.
class PageIO {
 public:
  virtual ~PageIO() = default;

  /// The storage layer's instrument bundle, letting data structures (BTree)
  /// time their own operations.  nullptr when the backing store records no
  /// metrics (the default for ad-hoc PageIO implementations in tests).
  virtual StorageMetrics* metrics() { return nullptr; }

  /// Pins a page.
  virtual StatusOr<PageHandle> Fetch(PageId id) = 0;

  /// Allocates a page (reusing the free list or growing the file).  The
  /// page's in-memory contents are zeroed; the caller formats it.
  virtual StatusOr<PageId> AllocatePage() = 0;

  /// Returns a page to the free list.
  virtual Status FreePage(PageId id) = 0;

  /// Superblock root-slot accessors (kNumRoots slots).
  virtual StatusOr<PageId> GetRoot(int slot) = 0;
  virtual Status SetRoot(int slot, PageId id) = 0;

  /// Superblock persistent counters (kNumCounters of them).
  virtual StatusOr<uint64_t> GetCounter(int idx) = 0;
  virtual Status SetCounter(int idx, uint64_t value) = 0;

  /// Logical page count (from the superblock).
  virtual StatusOr<uint32_t> PageCount() = 0;
};

}  // namespace ode

#endif  // ODE_STORAGE_PAGE_IO_H_
