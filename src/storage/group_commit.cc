#include "storage/group_commit.h"

#include <algorithm>
#include <chrono>
#include <vector>

#include "storage/storage_metrics.h"

namespace ode {

GroupCommit::GroupCommit(Wal* wal, size_t max_batch, uint32_t max_wait_us,
                         StorageMetrics* metrics)
    : wal_(wal),
      max_batch_(max_batch < 1 ? 1 : max_batch),
      max_wait_us_(max_wait_us),
      metrics_(metrics) {}

GroupCommit::~GroupCommit() = default;

uint64_t GroupCommit::Enqueue(std::string framed, uint64_t txn_id,
                              uint64_t record_count, bool needs_sync) {
  MutexLock lock(mu_);
  const uint64_t seq = next_seq_++;
  Pending pending;
  pending.seq = seq;
  pending.txn_id = txn_id;
  pending.record_count = record_count;
  pending.needs_sync = needs_sync;
  pending.framed = std::move(framed);
  queue_.push_back(std::move(pending));
  UpdatePendingGauge();
  // Wake a lingering leader (its batch just grew) and idle waiters that may
  // now elect themselves leader.
  cv_.NotifyAll();
  return seq;
}

Status GroupCommit::WaitAppended(uint64_t seq) {
  return WaitReached(seq, /*durable=*/false);
}

Status GroupCommit::WaitDurable(uint64_t seq) {
  return WaitReached(seq, /*durable=*/true);
}

// WaitReached and LeadBatch cooperate on a lock lifetime the capability
// analysis cannot express: the loop holds mu_, but the leader's I/O section
// inside LeadBatch releases it around the WAL calls and reacquires before
// publishing.  Both opt out; the TSan Concurrent suite covers the protocol.
Status GroupCommit::WaitReached(uint64_t seq,
                                bool durable) ODE_NO_THREAD_SAFETY_ANALYSIS {
  mu_.Lock();
  for (;;) {
    const uint64_t reached = durable ? durable_seq_ : appended_seq_;
    if (reached >= seq) {
      mu_.Unlock();
      return Status::OK();
    }
    if (!error_.ok()) {
      Status failed = error_;
      mu_.Unlock();
      return failed;
    }
    if (!leader_active_) {
      LeadBatch(/*want_sync=*/durable, /*allow_gather=*/true);
      continue;  // Re-check; our seq may still be beyond this batch.
    }
    cv_.Wait(mu_);
  }
}

Status GroupCommit::WaitDurableTxn(uint64_t txn_id)
    ODE_NO_THREAD_SAFETY_ANALYSIS {
  mu_.Lock();
  for (;;) {
    if (durable_txn_ >= txn_id) {
      mu_.Unlock();
      return Status::OK();
    }
    if (!error_.ok()) {
      Status failed = error_;
      mu_.Unlock();
      return failed;
    }
    if (!leader_active_) {
      LeadBatch(/*want_sync=*/true, /*allow_gather=*/true);
      continue;
    }
    cv_.Wait(mu_);
  }
}

Status GroupCommit::Flush() ODE_NO_THREAD_SAFETY_ANALYSIS {
  mu_.Lock();
  for (;;) {
    if (!error_.ok()) {
      Status failed = error_;
      mu_.Unlock();
      return failed;
    }
    if (queue_.empty() && appended_not_durable_ == 0) {
      mu_.Unlock();
      return Status::OK();
    }
    if (leader_active_) {
      // An elected leader is mid-batch; it will publish and wake us.
      cv_.Wait(mu_);
      continue;
    }
    // No lingering: the caller holds the apply latch, so no new commit can
    // arrive — gathering would just burn the wait budget.
    LeadBatch(/*want_sync=*/true, /*allow_gather=*/false);
  }
}

uint64_t GroupCommit::durable_txn_id() const {
  MutexLock lock(mu_);
  return durable_txn_;
}

uint64_t GroupCommit::appended_txn_id() const {
  MutexLock lock(mu_);
  return appended_txn_;
}

void GroupCommit::FailLocked(const Status& error) {
  if (!error_.ok()) return;  // First failure wins; later ones are echoes.
  error_ = error;
  if (on_failure_) on_failure_(error);
}

void GroupCommit::UpdatePendingGauge() {
  if (metrics_ == nullptr) return;
  metrics_->gc_async_pending->Set(
      static_cast<int64_t>(queue_.size() + appended_not_durable_));
}

void GroupCommit::LeadBatch(bool want_sync,
                            bool allow_gather) ODE_NO_THREAD_SAFETY_ANALYSIS {
  leader_active_ = true;

  // Gather linger: while another writer is applying (or queued for the apply
  // latch), its commit is at most one apply-section away — waiting a bounded
  // slice of the fsync cost multiplies commits-per-fsync.  A solo writer
  // skips this entirely (the probe is false), keeping uncontended commit
  // latency at the pre-group-commit baseline.
  if (allow_gather && max_wait_us_ > 0 && more_expected_ &&
      queue_.size() < max_batch_) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::microseconds(max_wait_us_);
    while (queue_.size() < max_batch_ && more_expected_()) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) break;
      // Enqueue notifies, so a grown batch re-checks immediately.
      (void)cv_.WaitFor(mu_, deadline - now);
    }
  }

  std::vector<Pending> batch;
  batch.reserve(std::min(queue_.size(), max_batch_));
  bool do_sync = false;
  while (!queue_.empty() && batch.size() < max_batch_) {
    do_sync = do_sync || queue_.front().needs_sync;
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }

  if (batch.empty()) {
    // Sync-only duty: everything is appended but a durable waiter needs an
    // fsync to cover the tail (async catch-up, WaitForDurable, Flush).
    if (!want_sync || appended_not_durable_ == 0) {
      leader_active_ = false;
      cv_.NotifyAll();
      return;
    }
    const uint64_t synced_seq = appended_seq_;
    const uint64_t synced_txn = appended_txn_;
    mu_.Unlock();
    Status s = wal_->Sync();
    mu_.Lock();
    if (!s.ok()) {
      FailLocked(s);
    } else {
      durable_seq_ = std::max(durable_seq_, synced_seq);
      durable_txn_ = std::max(durable_txn_, synced_txn);
      // Anything appended after our unlock is NOT covered by this fsync.
      appended_not_durable_ = appended_seq_ > synced_seq
                                  ? appended_not_durable_
                                  : 0;
      if (metrics_ != nullptr) metrics_->gc_fsyncs->Increment();
    }
    leader_heartbeat_us_.store(Histogram::NowNanos() / 1000,
                               std::memory_order_relaxed);
    UpdatePendingGauge();
    leader_active_ = false;
    cv_.NotifyAll();
    return;
  }

  const uint64_t last_seq = batch.back().seq;
  const uint64_t last_txn = batch.back().txn_id;
  const uint64_t batch_commits = batch.size();
  uint64_t batch_bytes = 0;
  for (const Pending& p : batch) batch_bytes += p.framed.size();

  mu_.Unlock();
  Status s = Status::OK();
  for (const Pending& p : batch) {
    s = wal_->AppendBlob(p.framed, p.record_count);
    if (!s.ok()) break;
  }
  if (s.ok() && do_sync) s = wal_->Sync();
  mu_.Lock();

  if (!s.ok()) {
    // The file may hold a torn batch whose commit records a later fsync
    // would resurrect; the engine's poison hook (on_failure) refuses all
    // further writes for exactly this reason.
    FailLocked(s);
  } else {
    appended_seq_ = last_seq;
    appended_txn_ = std::max(appended_txn_, last_txn);
    if (do_sync) {
      durable_seq_ = last_seq;
      durable_txn_ = appended_txn_;
      appended_not_durable_ = 0;
      if (metrics_ != nullptr) metrics_->gc_fsyncs->Increment();
    } else {
      appended_not_durable_ += batch_commits;
    }
    if (metrics_ != nullptr) {
      metrics_->gc_batches->Increment();
      metrics_->gc_commits->Add(batch_commits);
      metrics_->gc_batch_size->Record(batch_commits);
      metrics_->RecordEvent(EventType::kGroupCommitBatch,
                            EventSeverity::kDebug, batch_commits, batch_bytes,
                            durable_txn_);
    }
  }
  leader_heartbeat_us_.store(Histogram::NowNanos() / 1000,
                             std::memory_order_relaxed);
  UpdatePendingGauge();
  leader_active_ = false;
  cv_.NotifyAll();
}

}  // namespace ode
