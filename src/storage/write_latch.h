#ifndef ODE_STORAGE_WRITE_LATCH_H_
#define ODE_STORAGE_WRITE_LATCH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "util/metrics.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace ode {

/// A fixed array of mutex stripes keyed by a 64-bit id (object id at the
/// Database layer).  Writers take the stripe(s) of the objects they are about
/// to mutate BEFORE entering the storage engine's apply latch, which orders
/// logically conflicting writers (same object) while letting independent
/// objects proceed to the group-commit queue concurrently.
///
/// Latch order (deadlock freedom): stripe latches are always acquired before
/// the engine's rw_mutex_ and never while holding it; multi-key acquisition
/// locks stripes in ascending stripe-index order with duplicates collapsed.
///
/// A contended acquisition records its wait into the (optional) latch-wait
/// histogram; the uncontended fast path costs one try-lock.
class WriteLatchSet {
 public:
  /// `stripes` must be a power of two >= 1 (stripe selection is a mask).
  /// `wait_ns` may be null (no wait accounting).
  explicit WriteLatchSet(size_t stripes, Histogram* wait_ns = nullptr);

  WriteLatchSet(const WriteLatchSet&) = delete;
  WriteLatchSet& operator=(const WriteLatchSet&) = delete;

  size_t stripe_count() const { return stripes_.size(); }
  size_t StripeOf(uint64_t key) const;

  void Lock(uint64_t key);
  void Unlock(uint64_t key);

  /// Total acquisitions across all stripes (monitoring; not a hot path).
  uint64_t acquisitions() const;

 private:
  friend class WriteLatchGuard;

  struct Stripe {
    Mutex mu;
    uint64_t acquisitions ODE_GUARDED_BY(mu) = 0;
  };

  void LockStripe(size_t index);
  void UnlockStripe(size_t index);

  size_t mask_;
  std::vector<std::unique_ptr<Stripe>> stripes_;
  Histogram* wait_ns_;
};

/// RAII acquisition of the stripes covering one or two keys (two-key form for
/// future cross-object operations); stripes are locked in ascending index
/// order, duplicates collapsed.
class WriteLatchGuard {
 public:
  WriteLatchGuard(WriteLatchSet& set, uint64_t key);
  WriteLatchGuard(WriteLatchSet& set, uint64_t key_a, uint64_t key_b);
  ~WriteLatchGuard();

  WriteLatchGuard(const WriteLatchGuard&) = delete;
  WriteLatchGuard& operator=(const WriteLatchGuard&) = delete;

 private:
  WriteLatchSet& set_;
  size_t stripe_a_;
  size_t stripe_b_;  // == stripe_a_ when only one stripe is held.
};

}  // namespace ode

#endif  // ODE_STORAGE_WRITE_LATCH_H_
