#include "storage/write_latch.h"

#include <algorithm>
#include <cassert>

namespace ode {

namespace {

/// splitmix64 finalizer: object ids are sequential, so without mixing,
/// neighboring oids would always collide into neighboring stripes.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

WriteLatchSet::WriteLatchSet(size_t stripes, Histogram* wait_ns)
    : wait_ns_(wait_ns) {
  assert(stripes >= 1 && (stripes & (stripes - 1)) == 0);
  mask_ = stripes - 1;
  stripes_.reserve(stripes);
  for (size_t i = 0; i < stripes; ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
}

size_t WriteLatchSet::StripeOf(uint64_t key) const {
  return static_cast<size_t>(Mix(key)) & mask_;
}

// LockStripe leaves the stripe mutex held for the guard's lifetime and
// UnlockStripe releases a mutex acquired elsewhere — lock lifetimes the
// capability analysis cannot follow (same situation as the engine's
// Begin..Commit protocol), so both opt out.
void WriteLatchSet::LockStripe(size_t index) ODE_NO_THREAD_SAFETY_ANALYSIS {
  Stripe& stripe = *stripes_[index];
  // Like WithReadTxn's shared path: only a contended acquisition pays for
  // clock reads and a histogram record.
  if (!stripe.mu.TryLock()) {
    const uint64_t t0 = Histogram::NowNanos();
    stripe.mu.Lock();
    if (wait_ns_ != nullptr) {
      wait_ns_->Record(Histogram::NowNanos() - t0);
    }
  }
  ++stripe.acquisitions;
}

void WriteLatchSet::UnlockStripe(size_t index) ODE_NO_THREAD_SAFETY_ANALYSIS {
  stripes_[index]->mu.Unlock();
}

void WriteLatchSet::Lock(uint64_t key) { LockStripe(StripeOf(key)); }

void WriteLatchSet::Unlock(uint64_t key) { UnlockStripe(StripeOf(key)); }

uint64_t WriteLatchSet::acquisitions() const {
  uint64_t total = 0;
  for (const auto& stripe : stripes_) {
    MutexLock lock(stripe->mu);
    total += stripe->acquisitions;
  }
  return total;
}

WriteLatchGuard::WriteLatchGuard(WriteLatchSet& set, uint64_t key)
    : set_(set), stripe_a_(set.StripeOf(key)), stripe_b_(stripe_a_) {
  set_.LockStripe(stripe_a_);
}

WriteLatchGuard::WriteLatchGuard(WriteLatchSet& set, uint64_t key_a,
                                 uint64_t key_b)
    : set_(set), stripe_a_(set.StripeOf(key_a)), stripe_b_(set.StripeOf(key_b)) {
  if (stripe_a_ > stripe_b_) std::swap(stripe_a_, stripe_b_);
  set_.LockStripe(stripe_a_);
  if (stripe_b_ != stripe_a_) set_.LockStripe(stripe_b_);
}

WriteLatchGuard::~WriteLatchGuard() {
  if (stripe_b_ != stripe_a_) set_.UnlockStripe(stripe_b_);
  set_.UnlockStripe(stripe_a_);
}

}  // namespace ode
