#include "storage/btree.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "storage/storage_metrics.h"
#include "util/coding.h"

namespace ode {

namespace {

// Node layout (see btree.h):
//   [0]      u8   page type (kBTreeLeaf / kBTreeInternal)
//   [1..3]        reserved
//   [4..7]   u32  leaf: next-leaf page id; internal: leftmost child page id
//   [8..9]   u16  entry count
//   [10..11] u16  cell area start
//   [12..13] u16  fragmented bytes
//   [14..17] u32  leaf: prev-leaf page id; internal: unused
//   [18..]        directory of {u16 cell offset, u16 cell length}, key-sorted
// Cells grow downward from the page end.
//   leaf cell:     varint klen | varint vlen | key bytes | value bytes
//   internal cell: varint klen | key bytes | u32 child page id

constexpr uint32_t kDirStart = 18;

struct LeafEntry {
  std::string key;
  std::string value;
};

struct InternalEntry {
  std::string key;
  PageId child;
};

uint8_t NodeType(const char* p) { return static_cast<uint8_t>(p[0]); }
bool IsLeaf(const char* p) {
  return NodeType(p) == static_cast<uint8_t>(PageType::kBTreeLeaf);
}
bool IsInternal(const char* p) {
  return NodeType(p) == static_cast<uint8_t>(PageType::kBTreeInternal);
}

uint32_t GetLink(const char* p) { return DecodeFixed32(p + 4); }
void SetLink(char* p, uint32_t v) { EncodeFixed32(p + 4, v); }
uint32_t GetPrev(const char* p) { return DecodeFixed32(p + 14); }
void SetPrev(char* p, uint32_t v) { EncodeFixed32(p + 14, v); }
uint16_t GetCount(const char* p) { return DecodeFixed16(p + 8); }

uint16_t DirOffset(const char* p, int i) {
  return DecodeFixed16(p + kDirStart + 4 * i);
}
uint16_t DirLength(const char* p, int i) {
  return DecodeFixed16(p + kDirStart + 4 * i + 2);
}

/// Most directory entries a page can physically hold; an entry count above
/// this cannot have come from WriteNode and would walk the directory reads
/// past the page end.
constexpr int kMaxDirEntries = static_cast<int>((kPageSize - kDirStart) / 4);

/// Resolves directory entry `i` to its cell bytes, treating every field as
/// untrusted: the count, the directory slot, and the cell's [offset, length)
/// must all stay inside the page, or a corrupt page would read out of
/// bounds.
Status CheckedCell(const char* p, int i, Slice* cell) {
  const int count = GetCount(p);
  if (count > kMaxDirEntries) {
    return Status::Corruption("btree entry count exceeds page capacity");
  }
  if (i < 0 || i >= count) {
    return Status::Corruption("btree cell index out of range");
  }
  const uint32_t off = DirOffset(p, i);
  const uint32_t len = DirLength(p, i);
  if (off < kDirStart || off + len > kPageSize) {
    return Status::Corruption("btree cell outside page bounds");
  }
  *cell = Slice(p + off, len);
  return Status::OK();
}

Status DecodeLeafCell(const char* p, int i, Slice* key, Slice* value) {
  Slice cell;
  ODE_RETURN_IF_ERROR(CheckedCell(p, i, &cell));
  uint32_t klen = 0, vlen = 0;
  // Sum in 64 bits: klen + vlen can wrap uint32_t, faking a fit.
  if (!GetVarint32(&cell, &klen) || !GetVarint32(&cell, &vlen) ||
      cell.size() != static_cast<uint64_t>(klen) + vlen) {
    return Status::Corruption("bad leaf cell");
  }
  *key = Slice(cell.data(), klen);
  *value = Slice(cell.data() + klen, vlen);
  return Status::OK();
}

Status DecodeInternalCell(const char* p, int i, Slice* key, PageId* child) {
  Slice cell;
  ODE_RETURN_IF_ERROR(CheckedCell(p, i, &cell));
  uint32_t klen = 0;
  if (!GetVarint32(&cell, &klen) ||
      cell.size() != static_cast<uint64_t>(klen) + 4) {
    return Status::Corruption("bad internal cell");
  }
  *key = Slice(cell.data(), klen);
  *child = DecodeFixed32(cell.data() + klen);
  return Status::OK();
}

std::string EncodeLeafCell(const Slice& key, const Slice& value) {
  std::string cell;
  PutVarint32(&cell, static_cast<uint32_t>(key.size()));
  PutVarint32(&cell, static_cast<uint32_t>(value.size()));
  cell.append(key.data(), key.size());
  cell.append(value.data(), value.size());
  return cell;
}

std::string EncodeInternalCell(const Slice& key, PageId child) {
  std::string cell;
  PutVarint32(&cell, static_cast<uint32_t>(key.size()));
  cell.append(key.data(), key.size());
  PutFixed32(&cell, child);
  return cell;
}

/// Rewrites `page` as a node of `type` containing `cells` in order,
/// preserving links passed in.  Returns false if the cells do not fit.
bool WriteNode(char* page, PageType type, uint32_t link, uint32_t prev,
               const std::vector<std::string>& cells) {
  uint32_t needed = kDirStart + 4 * static_cast<uint32_t>(cells.size());
  for (const auto& c : cells) needed += static_cast<uint32_t>(c.size());
  if (needed > kPageSize) return false;

  std::memset(page, 0, kPageSize);
  page[0] = static_cast<char>(type);
  SetLink(page, link);
  SetPrev(page, prev);
  EncodeFixed16(page + 8, static_cast<uint16_t>(cells.size()));
  EncodeFixed16(page + 12, 0);
  uint32_t write_pos = kPageSize;
  for (size_t i = 0; i < cells.size(); ++i) {
    write_pos -= static_cast<uint32_t>(cells[i].size());
    // ode_lint: allow(unchecked-cast) WriteNode pre-checked needed <= kPageSize.
    std::memcpy(page + write_pos, cells[i].data(), cells[i].size());
    EncodeFixed16(page + kDirStart + 4 * i, static_cast<uint16_t>(write_pos));
    EncodeFixed16(page + kDirStart + 4 * i + 2,
                  static_cast<uint16_t>(cells[i].size()));
  }
  EncodeFixed16(page + 10, static_cast<uint16_t>(write_pos));
  return true;
}

Status LoadLeafEntries(const char* page, std::vector<LeafEntry>* out) {
  out->clear();
  const int n = GetCount(page);
  out->reserve(n);
  for (int i = 0; i < n; ++i) {
    Slice key, value;
    ODE_RETURN_IF_ERROR(DecodeLeafCell(page, i, &key, &value));
    out->push_back(LeafEntry{key.ToString(), value.ToString()});
  }
  return Status::OK();
}

Status LoadInternalEntries(const char* page, std::vector<InternalEntry>* out) {
  out->clear();
  const int n = GetCount(page);
  out->reserve(n);
  for (int i = 0; i < n; ++i) {
    Slice key;
    PageId child = kInvalidPageId;
    ODE_RETURN_IF_ERROR(DecodeInternalCell(page, i, &key, &child));
    out->push_back(InternalEntry{key.ToString(), child});
  }
  return Status::OK();
}

std::vector<std::string> EncodeLeafEntries(const std::vector<LeafEntry>& es) {
  std::vector<std::string> cells;
  cells.reserve(es.size());
  for (const auto& e : es) cells.push_back(EncodeLeafCell(e.key, e.value));
  return cells;
}

std::vector<std::string> EncodeInternalEntries(
    const std::vector<InternalEntry>& es) {
  std::vector<std::string> cells;
  cells.reserve(es.size());
  for (const auto& e : es) cells.push_back(EncodeInternalCell(e.key, e.child));
  return cells;
}

/// Index of the first entry with key >= target (entries sorted).
template <typename Entry>
int LowerBound(const std::vector<Entry>& entries, const Slice& target) {
  int lo = 0, hi = static_cast<int>(entries.size());
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    if (Slice(entries[mid].key).compare(target) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// Child to descend into when searching for `target` in an internal node
/// with `leftmost` and sorted separator entries: the child of the largest
/// separator <= target, or leftmost if target < all separators.
PageId PickChild(PageId leftmost, const std::vector<InternalEntry>& entries,
                 const Slice& target) {
  PageId child = leftmost;
  for (const auto& e : entries) {
    if (Slice(e.key).compare(target) <= 0) {
      child = e.child;
    } else {
      break;
    }
  }
  return child;
}

/// Splits `cells` into two byte-balanced halves, both nonempty.
size_t SplitPoint(const std::vector<std::string>& cells) {
  size_t total = 0;
  for (const auto& c : cells) total += c.size() + 4;
  size_t acc = 0;
  for (size_t i = 0; i + 1 < cells.size(); ++i) {
    acc += cells[i].size() + 4;
    if (acc >= total / 2) return i + 1;
  }
  return cells.size() - 1;
}

}  // namespace

StatusOr<BTree> BTree::Open(PageIO* io, int root_slot) {
  auto root = io->GetRoot(root_slot);
  if (!root.ok()) return root.status();
  PageId root_pid = *root;
  if (root_pid == kInvalidPageId) {
    auto pid = io->AllocatePage();
    if (!pid.ok()) return pid.status();
    auto handle = io->Fetch(*pid);
    if (!handle.ok()) return handle.status();
    WriteNode(handle->mutable_data(), PageType::kBTreeLeaf, kInvalidPageId,
              kInvalidPageId, {});
    ODE_RETURN_IF_ERROR(io->SetRoot(root_slot, *pid));
    root_pid = *pid;
  }
  return BTree(io, root_slot, root_pid);
}

Status BTree::DescendToLeaf(const Slice& key, std::vector<PageId>* path) {
  StorageMetrics* metrics = io_->metrics();
  ScopedLatency timer(metrics != nullptr ? metrics->btree_descend_ns
                                         : nullptr);
  if (metrics != nullptr) metrics->btree_descents->Increment();
  path->clear();
  PageId current = root_;
  for (int depth = 0; depth < 64; ++depth) {
    path->push_back(current);
    auto handle = io_->Fetch(current);
    if (!handle.ok()) return handle.status();
    const char* page = handle->data();
    if (IsLeaf(page)) return Status::OK();
    if (!IsInternal(page)) return Status::Corruption("not a btree page");
    std::vector<InternalEntry> entries;
    ODE_RETURN_IF_ERROR(LoadInternalEntries(page, &entries));
    current = PickChild(GetLink(page), entries, key);
    if (current == kInvalidPageId) {
      return Status::Corruption("null child pointer in btree");
    }
  }
  return Status::Corruption("btree too deep (cycle?)");
}

StatusOr<std::string> BTree::Get(const Slice& key) {
  std::vector<PageId> path;
  ODE_RETURN_IF_ERROR(DescendToLeaf(key, &path));
  auto handle = io_->Fetch(path.back());
  if (!handle.ok()) return handle.status();
  const char* page = handle->data();
  const int n = GetCount(page);
  int lo = 0, hi = n;
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    Slice k, v;
    ODE_RETURN_IF_ERROR(DecodeLeafCell(page, mid, &k, &v));
    int cmp = k.compare(key);
    if (cmp < 0) {
      lo = mid + 1;
    } else if (cmp > 0) {
      hi = mid;
    } else {
      return v.ToString();
    }
  }
  return Status::NotFound("key not in btree");
}

Status BTree::Put(const Slice& key, const Slice& value) {
  const std::string cell = EncodeLeafCell(key, value);
  if (cell.size() > kMaxCellBytes) {
    return Status::InvalidArgument("btree entry too large");
  }
  std::vector<PageId> path;
  ODE_RETURN_IF_ERROR(DescendToLeaf(key, &path));
  const PageId leaf_pid = path.back();
  auto handle = io_->Fetch(leaf_pid);
  if (!handle.ok()) return handle.status();
  char* page = handle->mutable_data();

  std::vector<LeafEntry> entries;
  ODE_RETURN_IF_ERROR(LoadLeafEntries(page, &entries));
  const int pos = LowerBound(entries, key);
  if (pos < static_cast<int>(entries.size()) &&
      Slice(entries[pos].key) == key) {
    entries[pos].value = value.ToString();
  } else {
    entries.insert(entries.begin() + pos,
                   LeafEntry{key.ToString(), value.ToString()});
  }

  const uint32_t next = GetLink(page);
  const uint32_t prev = GetPrev(page);
  std::vector<std::string> cells = EncodeLeafEntries(entries);
  if (WriteNode(page, PageType::kBTreeLeaf, next, prev, cells)) {
    return Status::OK();
  }

  // Split: left half stays in `leaf_pid`, right half moves to a new page.
  const size_t split = SplitPoint(cells);
  std::vector<std::string> left_cells(cells.begin(), cells.begin() + split);
  std::vector<std::string> right_cells(cells.begin() + split, cells.end());
  std::string separator = entries[split].key;

  auto right_pid = io_->AllocatePage();
  if (!right_pid.ok()) return right_pid.status();
  auto right_handle = io_->Fetch(*right_pid);
  if (!right_handle.ok()) return right_handle.status();

  if (!WriteNode(right_handle->mutable_data(), PageType::kBTreeLeaf, next,
                 leaf_pid, right_cells) ||
      !WriteNode(page, PageType::kBTreeLeaf, *right_pid, prev, left_cells)) {
    return Status::Internal("leaf split halves do not fit");
  }
  if (next != kInvalidPageId) {
    auto next_handle = io_->Fetch(next);
    if (!next_handle.ok()) return next_handle.status();
    SetPrev(next_handle->mutable_data(), *right_pid);
  }
  return InsertIntoInternal(path, static_cast<int>(path.size()) - 2,
                            std::move(separator), *right_pid);
}

Status BTree::InsertIntoInternal(std::vector<PageId>& path, int level,
                                 std::string key, PageId child) {
  if (level < 0) {
    return GrowRoot(path.empty() ? root_ : path[0], std::move(key), child);
  }
  const PageId node_pid = path[level];
  auto handle = io_->Fetch(node_pid);
  if (!handle.ok()) return handle.status();
  char* page = handle->mutable_data();
  if (!IsInternal(page)) return Status::Corruption("expected internal node");

  std::vector<InternalEntry> entries;
  ODE_RETURN_IF_ERROR(LoadInternalEntries(page, &entries));
  const int pos = LowerBound(entries, Slice(key));
  entries.insert(entries.begin() + pos, InternalEntry{std::move(key), child});

  const PageId leftmost = GetLink(page);
  std::vector<std::string> cells = EncodeInternalEntries(entries);
  if (WriteNode(page, PageType::kBTreeInternal, leftmost, 0, cells)) {
    return Status::OK();
  }

  // Split the internal node: middle separator moves up.
  const size_t split = SplitPoint(cells);
  const size_t mid = std::min(split, entries.size() - 1);
  std::string promoted = entries[mid].key;
  const PageId right_leftmost = entries[mid].child;
  std::vector<InternalEntry> left_entries(entries.begin(),
                                          entries.begin() + mid);
  std::vector<InternalEntry> right_entries(entries.begin() + mid + 1,
                                           entries.end());

  auto right_pid = io_->AllocatePage();
  if (!right_pid.ok()) return right_pid.status();
  auto right_handle = io_->Fetch(*right_pid);
  if (!right_handle.ok()) return right_handle.status();

  if (!WriteNode(right_handle->mutable_data(), PageType::kBTreeInternal,
                 right_leftmost, 0, EncodeInternalEntries(right_entries)) ||
      !WriteNode(page, PageType::kBTreeInternal, leftmost, 0,
                 EncodeInternalEntries(left_entries))) {
    return Status::Internal("internal split halves do not fit");
  }
  return InsertIntoInternal(path, level - 1, std::move(promoted), *right_pid);
}

Status BTree::GrowRoot(PageId left, std::string key, PageId right) {
  auto new_root = io_->AllocatePage();
  if (!new_root.ok()) return new_root.status();
  auto handle = io_->Fetch(*new_root);
  if (!handle.ok()) return handle.status();
  std::vector<std::string> cells;
  cells.push_back(EncodeInternalCell(key, right));
  if (!WriteNode(handle->mutable_data(), PageType::kBTreeInternal, left, 0,
                 cells)) {
    return Status::Internal("new root does not fit");
  }
  return SetRootAndPersist(*new_root);
}

Status BTree::SetRootAndPersist(PageId new_root) {
  root_ = new_root;
  return io_->SetRoot(root_slot_, new_root);
}

Status BTree::Delete(const Slice& key) {
  std::vector<PageId> path;
  ODE_RETURN_IF_ERROR(DescendToLeaf(key, &path));
  auto handle = io_->Fetch(path.back());
  if (!handle.ok()) return handle.status();
  char* page = handle->mutable_data();
  std::vector<LeafEntry> entries;
  ODE_RETURN_IF_ERROR(LoadLeafEntries(page, &entries));
  const int pos = LowerBound(entries, key);
  if (pos >= static_cast<int>(entries.size()) ||
      Slice(entries[pos].key) != key) {
    return Status::NotFound("key not in btree");
  }
  entries.erase(entries.begin() + pos);
  const uint32_t next = GetLink(page);
  const uint32_t prev = GetPrev(page);
  if (!WriteNode(page, PageType::kBTreeLeaf, next, prev,
                 EncodeLeafEntries(entries))) {
    return Status::Internal("rewrite after delete failed");
  }
  return Status::OK();
}

StatusOr<uint64_t> BTree::Count() {
  uint64_t count = 0;
  Iterator it = NewIterator();
  for (it.SeekToFirst(); it.Valid(); it.Next()) ++count;
  ODE_RETURN_IF_ERROR(it.status());
  return count;
}

namespace {

/// Collects every node page of the subtree rooted at `root`.
Status CollectPages(PageIO* io, PageId root, std::vector<PageId>* pages) {
  std::vector<PageId> stack = {root};
  while (!stack.empty()) {
    const PageId current = stack.back();
    stack.pop_back();
    pages->push_back(current);
    auto handle = io->Fetch(current);
    if (!handle.ok()) return handle.status();
    const char* page = handle->data();
    if (IsLeaf(page)) continue;
    if (!IsInternal(page)) return Status::Corruption("not a btree page");
    stack.push_back(GetLink(page));
    std::vector<InternalEntry> entries;
    ODE_RETURN_IF_ERROR(LoadInternalEntries(page, &entries));
    for (const InternalEntry& entry : entries) stack.push_back(entry.child);
    if (pages->size() > (1u << 26)) {
      return Status::Corruption("btree page cycle");
    }
  }
  return Status::OK();
}

}  // namespace

StatusOr<uint32_t> BTree::PageCountUsed() {
  std::vector<PageId> pages;
  ODE_RETURN_IF_ERROR(CollectPages(io_, root_, &pages));
  return static_cast<uint32_t>(pages.size());
}

Status BTree::Vacuum() {
  // Snapshot all live entries.
  std::vector<std::pair<std::string, std::string>> entries;
  {
    Iterator it = NewIterator();
    for (it.SeekToFirst(); it.Valid(); it.Next()) {
      entries.emplace_back(it.key(), it.value());
    }
    ODE_RETURN_IF_ERROR(it.status());
  }
  // Collect and free the old tree's pages.
  std::vector<PageId> old_pages;
  ODE_RETURN_IF_ERROR(CollectPages(io_, root_, &old_pages));
  for (PageId pid : old_pages) {
    ODE_RETURN_IF_ERROR(io_->FreePage(pid));
  }
  // Fresh root leaf; re-insert in sorted order.
  auto new_root = io_->AllocatePage();
  if (!new_root.ok()) return new_root.status();
  {
    auto handle = io_->Fetch(*new_root);
    if (!handle.ok()) return handle.status();
    WriteNode(handle->mutable_data(), PageType::kBTreeLeaf, kInvalidPageId,
              kInvalidPageId, {});
  }
  ODE_RETURN_IF_ERROR(SetRootAndPersist(*new_root));
  for (const auto& [key, value] : entries) {
    ODE_RETURN_IF_ERROR(Put(Slice(key), Slice(value)));
  }
  return Status::OK();
}

Status BTree::Drop() {
  std::vector<PageId> pages;
  ODE_RETURN_IF_ERROR(CollectPages(io_, root_, &pages));
  for (PageId pid : pages) {
    ODE_RETURN_IF_ERROR(io_->FreePage(pid));
  }
  ODE_RETURN_IF_ERROR(io_->SetRoot(root_slot_, 0));
  root_ = kInvalidPageId;
  return Status::OK();
}

StatusOr<uint32_t> BTree::Height() {
  uint32_t height = 1;
  PageId current = root_;
  for (int depth = 0; depth < 64; ++depth) {
    auto handle = io_->Fetch(current);
    if (!handle.ok()) return handle.status();
    const char* page = handle->data();
    if (IsLeaf(page)) return height;
    if (!IsInternal(page)) return Status::Corruption("not a btree page");
    current = GetLink(page);
    ++height;
  }
  return Status::Corruption("btree too deep");
}

// ---------------------------------------------------------------------------
// Iterator
// ---------------------------------------------------------------------------

void BTree::Iterator::LoadCurrent() {
  auto handle = io_->Fetch(leaf_);
  if (!handle.ok()) {
    status_ = handle.status();
    valid_ = false;
    return;
  }
  const char* page = handle->data();
  Slice k, v;
  Status s = DecodeLeafCell(page, index_, &k, &v);
  if (!s.ok()) {
    status_ = s;
    valid_ = false;
    return;
  }
  key_ = k.ToString();
  value_ = v.ToString();
  valid_ = true;
}

void BTree::Iterator::StepLeaf(int direction) {
  // Moves off the current leaf in `direction`, skipping empty leaves, and
  // positions at that leaf's first (forward) or last (backward) entry.
  //
  // `leaf_steps_` accumulates across the iterator's whole scan (reset by
  // the Seek* entry points): a legitimate leaf chain can never be longer
  // than the database has pages, so exceeding that bound means the sibling
  // links cycle — corrupted pages, surfaced as a typed error.  Bounding
  // only this call would not suffice: a cycle through NON-empty leaves
  // returns successfully each step and loops at the caller instead.
  uint64_t bound = 1u << 24;
  if (auto pages = io_->PageCount(); pages.ok()) {
    bound = std::min<uint64_t>(bound, static_cast<uint64_t>(*pages) + 1);
  }
  PageId current = leaf_;
  while (true) {
    if (++leaf_steps_ > bound) {
      status_ = Status::Corruption("leaf chain cycle");
      valid_ = false;
      return;
    }
    auto handle = io_->Fetch(current);
    if (!handle.ok()) {
      status_ = handle.status();
      valid_ = false;
      return;
    }
    const char* page = handle->data();
    const PageId next =
        direction > 0 ? GetLink(page) : GetPrev(page);
    if (next == kInvalidPageId) {
      valid_ = false;
      return;
    }
    auto next_handle = io_->Fetch(next);
    if (!next_handle.ok()) {
      status_ = next_handle.status();
      valid_ = false;
      return;
    }
    const int n = GetCount(next_handle->data());
    if (n > 0) {
      leaf_ = next;
      index_ = direction > 0 ? 0 : n - 1;
      LoadCurrent();
      return;
    }
    current = next;
  }
}

namespace {

/// Descends from `root` to the leaf that would contain `target`.
Status IterDescend(PageIO* io, PageId root, const Slice& target,
                   PageId* leaf) {
  PageId current = root;
  for (int depth = 0; depth < 64; ++depth) {
    auto handle = io->Fetch(current);
    if (!handle.ok()) return handle.status();
    const char* page = handle->data();
    if (IsLeaf(page)) {
      *leaf = current;
      return Status::OK();
    }
    if (!IsInternal(page)) return Status::Corruption("not a btree page");
    std::vector<InternalEntry> entries;
    ODE_RETURN_IF_ERROR(LoadInternalEntries(page, &entries));
    current = PickChild(GetLink(page), entries, target);
  }
  return Status::Corruption("btree too deep");
}

/// Descends to the leftmost (direction < 0) or rightmost (direction > 0)
/// leaf.
Status IterDescendEdge(PageIO* io, PageId root, int direction, PageId* leaf) {
  PageId current = root;
  for (int depth = 0; depth < 64; ++depth) {
    auto handle = io->Fetch(current);
    if (!handle.ok()) return handle.status();
    const char* page = handle->data();
    if (IsLeaf(page)) {
      *leaf = current;
      return Status::OK();
    }
    if (!IsInternal(page)) return Status::Corruption("not a btree page");
    if (direction < 0) {
      current = GetLink(page);
    } else {
      std::vector<InternalEntry> entries;
      ODE_RETURN_IF_ERROR(LoadInternalEntries(page, &entries));
      current = entries.empty() ? GetLink(page) : entries.back().child;
    }
  }
  return Status::Corruption("btree too deep");
}

}  // namespace

void BTree::Iterator::Seek(const Slice& target) {
  status_ = Status::OK();
  leaf_steps_ = 0;
  Status s = IterDescend(io_, root_, target, &leaf_);
  if (!s.ok()) {
    status_ = s;
    valid_ = false;
    return;
  }
  auto handle = io_->Fetch(leaf_);
  if (!handle.ok()) {
    status_ = handle.status();
    valid_ = false;
    return;
  }
  const char* page = handle->data();
  const int n = GetCount(page);
  int lo = 0, hi = n;
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    Slice k, v;
    Status ds = DecodeLeafCell(page, mid, &k, &v);
    if (!ds.ok()) {
      status_ = ds;
      valid_ = false;
      return;
    }
    if (k.compare(target) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < n) {
    index_ = lo;
    LoadCurrent();
  } else {
    StepLeaf(+1);
  }
}

void BTree::Iterator::SeekForPrev(const Slice& target) {
  status_ = Status::OK();
  leaf_steps_ = 0;
  Status s = IterDescend(io_, root_, target, &leaf_);
  if (!s.ok()) {
    status_ = s;
    valid_ = false;
    return;
  }
  auto handle = io_->Fetch(leaf_);
  if (!handle.ok()) {
    status_ = handle.status();
    valid_ = false;
    return;
  }
  const char* page = handle->data();
  const int n = GetCount(page);
  // Last entry <= target.
  int best = -1;
  int lo = 0, hi = n;
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    Slice k, v;
    Status ds = DecodeLeafCell(page, mid, &k, &v);
    if (!ds.ok()) {
      status_ = ds;
      valid_ = false;
      return;
    }
    if (k.compare(target) <= 0) {
      best = mid;
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (best >= 0) {
    index_ = best;
    LoadCurrent();
  } else {
    StepLeaf(-1);
  }
}

void BTree::Iterator::SeekToFirst() {
  status_ = Status::OK();
  leaf_steps_ = 0;
  Status s = IterDescendEdge(io_, root_, -1, &leaf_);
  if (!s.ok()) {
    status_ = s;
    valid_ = false;
    return;
  }
  auto handle = io_->Fetch(leaf_);
  if (!handle.ok()) {
    status_ = handle.status();
    valid_ = false;
    return;
  }
  if (GetCount(handle->data()) > 0) {
    index_ = 0;
    LoadCurrent();
  } else {
    StepLeaf(+1);
  }
}

void BTree::Iterator::SeekToLast() {
  status_ = Status::OK();
  leaf_steps_ = 0;
  Status s = IterDescendEdge(io_, root_, +1, &leaf_);
  if (!s.ok()) {
    status_ = s;
    valid_ = false;
    return;
  }
  auto handle = io_->Fetch(leaf_);
  if (!handle.ok()) {
    status_ = handle.status();
    valid_ = false;
    return;
  }
  const int n = GetCount(handle->data());
  if (n > 0) {
    index_ = n - 1;
    LoadCurrent();
  } else {
    StepLeaf(-1);
  }
}

void BTree::Iterator::Next() {
  if (!valid_) return;
  auto handle = io_->Fetch(leaf_);
  if (!handle.ok()) {
    status_ = handle.status();
    valid_ = false;
    return;
  }
  const int n = GetCount(handle->data());
  if (index_ + 1 < n) {
    ++index_;
    LoadCurrent();
  } else {
    StepLeaf(+1);
  }
}

void BTree::Iterator::Prev() {
  if (!valid_) return;
  if (index_ > 0) {
    --index_;
    LoadCurrent();
  } else {
    StepLeaf(-1);
  }
}

}  // namespace ode
