#include "fuzz/fuzz.h"

namespace ode {
namespace fuzz {

// Per-translation-unit registration hooks (defined in targets_*.cc).
// Explicit calls instead of static initializers: see fuzz.h.
void RegisterNetTargets();
void RegisterStorageTargets();
void RegisterCoreTargets();
void RegisterUtilTargets();

namespace {

std::vector<FuzzTarget>& Registry() {
  static std::vector<FuzzTarget> targets;
  return targets;
}

}  // namespace

void RegisterFuzzTarget(const char* name, const char* description,
                        FuzzEntry entry) {
  for (const FuzzTarget& t : Registry()) {
    if (t.name == name) {
      std::fprintf(stderr, "duplicate fuzz target: %s\n", name);
      std::abort();
    }
  }
  Registry().push_back(FuzzTarget{name, description, entry});
}

void RegisterAllFuzzTargets() {
  static const bool done = [] {
    RegisterNetTargets();
    RegisterStorageTargets();
    RegisterCoreTargets();
    RegisterUtilTargets();
    return true;
  }();
  (void)done;
}

const std::vector<FuzzTarget>& AllFuzzTargets() { return Registry(); }

const FuzzTarget* FindFuzzTarget(const std::string& name) {
  for (const FuzzTarget& t : Registry()) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

}  // namespace fuzz
}  // namespace ode
