#include <string>
#include <string_view>
#include <vector>

#include "fuzz/fuzz.h"
#include "tests/testing/json_util.h"
#include "util/event_log.h"

// Harnesses for the diagnostics trust boundary: ODEJ journal exports read
// back by tooling, and the JSON checker the test layer trusts to validate
// exported documents.

namespace ode {
namespace fuzz {
namespace {

/// ODEJ binary journal codec.  An accepted decode must re-encode to the
/// same record count and decode again identically.
int EventCodec(const uint8_t* data, size_t size) {
  std::vector<EventRecord> records;
  const std::string_view input(reinterpret_cast<const char*>(data), size);
  if (!EventLog::DecodeBinary(input, &records)) return 0;
  std::string encoded;
  EventLog::EncodeBinary(records, &encoded);
  std::vector<EventRecord> again;
  ODE_FUZZ_REQUIRE(EventLog::DecodeBinary(encoded, &again));
  ODE_FUZZ_REQUIRE(again.size() == records.size());
  for (size_t i = 0; i < again.size(); ++i) {
    ODE_FUZZ_REQUIRE(again[i].seq == records[i].seq);
    ODE_FUZZ_REQUIRE(again[i].ts_micros == records[i].ts_micros);
    ODE_FUZZ_REQUIRE(again[i].tid == records[i].tid);
  }
  return 0;
}

/// Strict JSON checker + lexical probes over arbitrary bytes.
int JsonTarget(const uint8_t* data, size_t size) {
  const std::string_view input(reinterpret_cast<const char*>(data), size);
  std::string error;
  (void)testing::IsWellFormedJson(input, &error);
  (void)testing::FindJsonNumber(input, "a");
  (void)testing::FindJsonString(input, "a");
  (void)testing::FindJsonNumber(input, "");
  return 0;
}

}  // namespace

void RegisterUtilTargets() {
  RegisterFuzzTarget("event_codec", "ODEJ binary journal codec", EventCodec);
  RegisterFuzzTarget("json", "JSON well-formedness checker + probes",
                     JsonTarget);
}

}  // namespace fuzz
}  // namespace ode
