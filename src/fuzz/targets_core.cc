#include <cstring>
#include <string>

#include "core/delta.h"
#include "core/meta.h"
#include "fuzz/fuzz.h"
#include "util/slice.h"

// Harnesses for the catalog trust boundary: B+tree values and keys decoded
// back into ObjectHeader / VersionMeta / id forms, and delta payloads
// applied against arbitrary bases.

namespace ode {
namespace fuzz {
namespace {

/// Catalog value + key codecs.  Accepted decodes must round-trip.
int VersionMetaTarget(const uint8_t* data, size_t size) {
  const Slice input(reinterpret_cast<const char*>(data), size);
  {
    ObjectHeader header;
    if (ObjectHeader::Decode(input, &header).ok()) {
      ObjectHeader again;
      ODE_FUZZ_REQUIRE(
          ObjectHeader::Decode(Slice(header.Encode()), &again).ok());
      ODE_FUZZ_REQUIRE(again.type_id == header.type_id);
      ODE_FUZZ_REQUIRE(again.latest == header.latest);
      ODE_FUZZ_REQUIRE(again.version_count == header.version_count);
    }
  }
  {
    VersionMeta meta;
    if (VersionMeta::Decode(input, &meta).ok()) {
      VersionMeta again;
      ODE_FUZZ_REQUIRE(VersionMeta::Decode(Slice(meta.Encode()), &again).ok());
      ODE_FUZZ_REQUIRE(again.vnum == meta.vnum);
      ODE_FUZZ_REQUIRE(again.derived_from == meta.derived_from);
      ODE_FUZZ_REQUIRE(again.kind == meta.kind);
      ODE_FUZZ_REQUIRE(again.logical_size == meta.logical_size);
    }
  }
  {
    VersionId vid;
    (void)ParseVersionKey(input, &vid);
    uint32_t type_id = 0;
    ObjectId oid;
    (void)ParseClusterKey(input, &type_id, &oid);
    (void)ParseObjectKey(input, &oid);
    uint32_t tid = 0;
    if (DecodeTypeId(input, &tid).ok()) {
      ODE_FUZZ_REQUIRE(EncodeTypeId(tid) == input.ToString());
    }
  }
  return 0;
}

/// delta::Apply against hostile (base, delta) pairs, plus the
/// encode-then-apply identity on the same split.
int DeltaApply(const uint8_t* data, size_t size) {
  // First byte picks the split point between base and delta.
  size_t split = 0;
  if (size > 0) {
    split = 1 + (data[0] * (size - 1)) / 256;
  }
  const Slice base(reinterpret_cast<const char*>(data) + (size > 0 ? 1 : 0),
                   size > 0 ? split - 1 : 0);
  const Slice hostile(reinterpret_cast<const char*>(data) + split,
                      size - split);
  auto applied = delta::Apply(base, hostile);
  if (applied.ok()) {
    // An accepted delta must have honored its own declared length.
    uint64_t declared = 0;
    Slice probe = hostile;
    ODE_FUZZ_REQUIRE(GetVarint64(&probe, &declared));
    ODE_FUZZ_REQUIRE(applied->size() == declared);
  }
  // Encode/Apply identity: treating the two halves as (base, target).
  const std::string encoded = delta::Encode(base, hostile);
  auto roundtrip = delta::Apply(base, Slice(encoded));
  ODE_FUZZ_REQUIRE(roundtrip.ok());
  ODE_FUZZ_REQUIRE(Slice(*roundtrip) == hostile);
  return 0;
}

}  // namespace

void RegisterCoreTargets() {
  RegisterFuzzTarget("version_meta",
                     "catalog value/key codecs (ObjectHeader, VersionMeta, "
                     "keys, type ids)",
                     VersionMetaTarget);
  RegisterFuzzTarget("delta_apply",
                     "delta application against hostile base/delta pairs",
                     DeltaApply);
}

}  // namespace fuzz
}  // namespace ode
