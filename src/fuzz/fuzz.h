#ifndef ODE_FUZZ_FUZZ_H_
#define ODE_FUZZ_FUZZ_H_

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

// Unified fuzz-target registry: one harness per untrusted-input decoder.
//
// Every byte sequence that crosses a trust boundary — wire frames off a
// socket, WAL bytes off disk, page images, superblocks, catalog values,
// deltas, payload-index entries, journal exports — has exactly one
// registered FuzzTarget whose contract is:
//
//   typed error or valid object; never a crash, leak, or out-of-bounds
//   access, for ANY input.
//
// Targets are pure functions of (data, size) with no global state, so the
// same entry point serves three drivers:
//   - tests/fuzz/fuzz_replay_main.cc: replays the checked-in seed corpus
//     plus deterministic mutation rounds under ctest (label "fuzz"),
//   - tests/fuzz/libfuzzer_shim.cc: LLVMFuzzerTestOneInput for the clang
//     libFuzzer CI job (-DODE_LIBFUZZER=ON),
//   - tests/net/wire_codec_test.cc: unit tests drive the wire targets
//     directly instead of hand-rolling decode loops.
//
// Registration is explicit (RegisterAllFuzzTargets) rather than via static
// initializers: the targets live in a static library, where unreferenced
// initializer objects are legally dropped by the linker.

namespace ode {
namespace fuzz {

/// Entry point of one fuzz target.  Must return 0 (libFuzzer convention;
/// nonzero is reserved) and must not crash for any input.  Invariant
/// violations abort via ODE_FUZZ_REQUIRE so the sanitizer run fails loudly.
using FuzzEntry = int (*)(const uint8_t* data, size_t size);

struct FuzzTarget {
  std::string name;         ///< Stable id; also the corpus directory name.
  std::string description;  ///< The decoder / trust boundary it covers.
  FuzzEntry entry = nullptr;
};

/// Adds one target.  Duplicate names abort (they would split the corpus).
void RegisterFuzzTarget(const char* name, const char* description,
                        FuzzEntry entry);

/// Registers every built-in target.  Idempotent; call before any lookup.
void RegisterAllFuzzTargets();

/// All registered targets, in registration order.
const std::vector<FuzzTarget>& AllFuzzTargets();

/// Looks up a target by name; nullptr if unknown.
const FuzzTarget* FindFuzzTarget(const std::string& name);

}  // namespace fuzz
}  // namespace ode

/// Asserts a decoder invariant inside a fuzz target.  Unlike assert(), it
/// survives NDEBUG builds: a violated invariant must fail the fuzz run in
/// every configuration.
#define ODE_FUZZ_REQUIRE(cond)                                       \
  do {                                                               \
    if (!(cond)) {                                                   \
      std::fprintf(stderr, "ODE_FUZZ_REQUIRE failed: %s at %s:%d\n", \
                   #cond, __FILE__, __LINE__);                       \
      std::abort();                                                  \
    }                                                                \
  } while (0)

#endif  // ODE_FUZZ_FUZZ_H_
