#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "fuzz/fuzz.h"
#include "storage/btree.h"
#include "storage/disk_manager.h"
#include "storage/env.h"
#include "storage/heap_file.h"
#include "storage/page.h"
#include "storage/payload_store.h"
#include "storage/slotted_page.h"
#include "storage/storage_engine.h"
#include "storage/superblock.h"
#include "storage/wal.h"
#include "util/coding.h"
#include "util/crc32c.h"
#include "util/slice.h"

// Harnesses for the disk trust boundary: every byte of the database file
// and the WAL is untrusted until a decoder validates it.  PageHandle can
// only be minted by a BufferPool, so the page-level targets drive the REAL
// stack — build a pristine database with the engine, corrupt its bytes the
// way bit rot would, reopen, and read — rather than a mocked PageIO.

namespace ode {
namespace fuzz {
namespace {

Status WriteWholeFile(Env* env, const std::string& path, const Slice& bytes) {
  auto f = env->OpenFile(path);
  if (!f.ok()) return f.status();
  ODE_RETURN_IF_ERROR((*f)->Truncate(0));
  return (*f)->Append(bytes);
}

std::string ReadWholeFile(Env* env, const std::string& path) {
  auto f = env->OpenFile(path);
  if (!f.ok()) return {};
  auto size = (*f)->Size();
  if (!size.ok()) return {};
  std::string scratch;
  Slice out;
  if (!(*f)->Read(0, *size, &scratch, &out).ok()) return {};
  return out.ToString();
}

struct BaselineDb {
  std::string image;              ///< data.odb bytes after a checkpoint.
  std::vector<RecordId> records;  ///< Live heap records (incl. spanning).
};

/// Builds one pristine database through the real engine: a populated
/// catalog B+tree in root slot 0 plus inline and overflow-spanning heap
/// records.  Built once per process; every fuzz iteration corrupts a copy.
const BaselineDb& Baseline() {
  static const BaselineDb db = [] {
    BaselineDb out;
    MemEnv env;
    StorageOptions opts;
    opts.env = &env;
    opts.path = "/db";
    opts.buffer_pool_pages = 128;
    auto engine = StorageEngine::Open(opts);
    if (!engine.ok()) return out;
    const Status s = (*engine)->WithTxn([&](Txn& txn) -> Status {
      auto tree = BTree::Open(&txn, 0);
      if (!tree.ok()) return tree.status();
      for (int i = 0; i < 64; ++i) {
        char key[16];
        std::snprintf(key, sizeof(key), "key%03d", i);
        const std::string value(static_cast<size_t>(i) * 7 + 1,
                                static_cast<char>('a' + i % 26));
        ODE_RETURN_IF_ERROR(tree->Put(Slice(key), Slice(value)));
      }
      HeapFile& heap = (*engine)->heap();
      for (int i = 0; i < 8; ++i) {
        const std::string payload(static_cast<size_t>(i) * 97 + 5, 'h');
        auto rid = heap.Insert(&txn, Slice(payload));
        if (!rid.ok()) return rid.status();
        out.records.push_back(*rid);
      }
      // Large enough for a multi-page overflow chain.
      auto rid = heap.Insert(&txn, Slice(std::string(3 * kPageSize, 'O')));
      if (!rid.ok()) return rid.status();
      out.records.push_back(*rid);
      return Status::OK();
    });
    if (!s.ok()) return out;
    if (!(*engine)->Checkpoint().ok()) return out;
    (*engine)->Shutdown();
    engine->reset();
    out.image = ReadWholeFile(&env, "/db/data.odb");
    return out;
  }();
  return db;
}

/// Applies input-directed corruption to `image`, never touching page 0:
/// the superblock has its own target, and keeping it intact here means
/// every iteration reaches the page decoders instead of dying at the magic
/// check.  Front of the input = scattered byte pokes ([3-byte offset][new
/// byte] each); the rest = one contiguous splice.
void CorruptImage(std::string* image, const uint8_t* data, size_t size) {
  if (image->size() <= kPageSize) return;
  const size_t span = image->size() - kPageSize;
  const size_t pokes = std::min<size_t>(size / 4, 32);
  size_t i = 0;
  for (size_t p = 0; p < pokes; ++p, i += 4) {
    const uint32_t raw = static_cast<uint32_t>(data[i]) |
                         (static_cast<uint32_t>(data[i + 1]) << 8) |
                         (static_cast<uint32_t>(data[i + 2]) << 16);
    (*image)[kPageSize + raw % span] = static_cast<char>(data[i + 3]);
  }
  if (i + 4 <= size) {
    const uint32_t raw = static_cast<uint32_t>(data[i]) |
                         (static_cast<uint32_t>(data[i + 1]) << 8) |
                         (static_cast<uint32_t>(data[i + 2]) << 16);
    const size_t off = kPageSize + raw % span;
    const size_t n = std::min(size - (i + 3), image->size() - off);
    std::memcpy(&(*image)[off], data + i + 3, n);
  }
}

StatusOr<std::unique_ptr<StorageEngine>> OpenOver(MemEnv* env,
                                                  const Slice& image) {
  (void)env->CreateDir("/db");
  ODE_RETURN_IF_ERROR(WriteWholeFile(env, "/db/data.odb", image));
  StorageOptions opts;
  opts.env = env;
  opts.path = "/db";
  opts.buffer_pool_pages = 64;
  return StorageEngine::Open(opts);
}

/// WAL framing + record decode + recovery replay over hostile log bytes.
int WalReplay(const uint8_t* data, size_t size) {
  const Slice input(reinterpret_cast<const char*>(data), size);
  // Phase 1: the raw input is the log file — exercises the frame scan
  // (lengths, CRCs, torn-tail discipline).
  {
    MemEnv env;
    (void)env.CreateDir("/fz");
    (void)WriteWholeFile(&env, "/fz/wal.log", input);
    auto wal = Wal::Open(&env, "/fz/wal.log");
    if (wal.ok()) {
      auto records = (*wal)->ReadAll();
      // Replay only when every page image targets a small page id:
      // CRC-valid records are trusted by design (the corruption model is
      // bit rot and torn appends, which the CRC catches), so a huge page
      // id here would just ask MemEnv for a terabyte file — harness OOM,
      // not a decoder defect.
      bool sane = records.ok();
      if (records.ok()) {
        for (const WalRecord& r : *records) {
          if (r.type == WalRecordType::kPageImage && r.page_id > 64) {
            sane = false;
          }
        }
      }
      if (sane) {
        auto disk = DiskManager::Open(&env, "/fz/data.odb");
        if (disk.ok()) (void)(*wal)->Recover(disk->get());
      }
    }
  }
  // Phase 2: chunk the input and reframe each chunk with a CORRECT CRC so
  // the scan gets past the checksum gate and the record-level decode
  // (type, txn id, page id, zero-suppressed image length) sees hostile
  // bytes it would otherwise never reach.
  {
    std::string framed;
    size_t pos = 0;
    int chunks = 0;
    while (pos < size && chunks < 16) {
      const size_t n = std::min<size_t>(size - pos, 1 + data[pos] % 96);
      PutFixed32(&framed, static_cast<uint32_t>(n));
      PutFixed32(&framed,
                 crc32c::Mask(crc32c::Value(
                     reinterpret_cast<const char*>(data) + pos, n)));
      framed.append(reinterpret_cast<const char*>(data) + pos, n);
      pos += n;
      ++chunks;
    }
    MemEnv env;
    (void)env.CreateDir("/fz");
    (void)WriteWholeFile(&env, "/fz/wal.log", Slice(framed));
    auto wal = Wal::Open(&env, "/fz/wal.log");
    if (!wal.ok()) return 0;
    auto records = (*wal)->ReadAll();
    if (!records.ok()) return 0;
    bool sane = true;
    for (const WalRecord& r : *records) {
      if (r.type == WalRecordType::kPageImage && r.page_id > 64) sane = false;
    }
    if (sane) {
      auto disk = DiskManager::Open(&env, "/fz/data.odb");
      if (disk.ok()) (void)(*wal)->Recover(disk->get());
    }
  }
  return 0;
}

/// Slotted-page decode over a raw hostile page image (the one page-level
/// structure that needs no engine: SlottedPage wraps any 4 KiB buffer).
int PageSlotted(const uint8_t* data, size_t size) {
  char page[kPageSize];
  std::memset(page, 0, sizeof(page));
  std::memcpy(page, data, std::min<size_t>(size, kPageSize));
  SlottedPage view(page);
  (void)view.IsHeapPage();
  const uint16_t n = view.SlotCount();
  (void)view.LiveSlots();
  (void)view.FreeSpace();
  for (uint16_t i = 0; i < n; ++i) {
    auto cell = view.Get(i);
    if (cell.ok()) {
      ODE_FUZZ_REQUIRE(cell->data() >= page &&
                       cell->data() + cell->size() <= page + kPageSize);
    }
  }
  (void)view.Get(n);       // One past the directory.
  (void)view.Get(0xffff);  // Far out of range.
  (void)view.Insert(Slice("fuzz-insert"));
  if (n > 0) {
    (void)view.Update(0, Slice("upd"));
    (void)view.Delete(static_cast<uint16_t>(n / 2));
  }
  view.Compact();
  for (uint16_t i = 0; i < view.SlotCount(); ++i) {
    auto cell = view.Get(i);
    if (cell.ok()) {
      ODE_FUZZ_REQUIRE(cell->data() >= page &&
                       cell->data() + cell->size() <= page + kPageSize);
    }
  }
  (void)view.Insert(Slice(std::string(SlottedPage::kMaxCellSize, 'x')));
  return 0;
}

/// B+tree node decode: corrupt a real database's pages, reopen through the
/// real engine, and run every read path (point get, both scan directions,
/// seeks).  Typed Corruption or missing data — never a crash.
int PageBtree(const uint8_t* data, size_t size) {
  const BaselineDb& base = Baseline();
  if (base.image.empty()) return 0;
  std::string image = base.image;
  CorruptImage(&image, data, size);
  MemEnv env;
  auto engine = OpenOver(&env, Slice(image));
  if (!engine.ok()) return 0;
  (void)(*engine)->WithReadTxn([](ReadTxn& txn) -> Status {
    auto tree = BTree::Open(&txn, 0);
    if (!tree.ok()) return Status::OK();
    (void)tree->Get(Slice("key010"));
    (void)tree->Get(Slice("key063"));
    (void)tree->Get(Slice("absent"));
    (void)tree->Count();
    (void)tree->Height();
    auto it = tree->NewIterator();
    for (it.SeekToFirst(); it.Valid(); it.Next()) {
    }
    for (it.SeekToLast(); it.Valid(); it.Prev()) {
    }
    it.Seek(Slice("key02"));
    it.SeekForPrev(Slice("key05"));
    return Status::OK();
  });
  (*engine)->Shutdown();
  return 0;
}

/// Heap record decode: cell tags, spanning heads, overflow chains
/// (including cycles and wrong chunk lengths) over a corrupted real
/// database.
int HeapRecord(const uint8_t* data, size_t size) {
  const BaselineDb& base = Baseline();
  if (base.image.empty()) return 0;
  std::string image = base.image;
  CorruptImage(&image, data, size);
  MemEnv env;
  auto engine = OpenOver(&env, Slice(image));
  if (!engine.ok()) return 0;
  (void)(*engine)->WithReadTxn([&](ReadTxn& txn) -> Status {
    HeapFile heap;
    for (const RecordId& rid : base.records) {
      (void)heap.Read(&txn, rid);
    }
    if (size >= 4) {
      // One fuzz-chosen record address (bounded page id so the fetch hits
      // real or near-EOF pages instead of always reading zeroes).
      RecordId rid;
      rid.page = static_cast<PageId>(1 + (data[0] | (data[1] << 8)) % 64);
      rid.slot = static_cast<uint16_t>(data[2] | (data[3] << 8));
      (void)heap.Read(&txn, rid);
    }
    (void)heap.ForEach(&txn, [](RecordId, const Slice&) { return true; });
    (void)heap.Stats(&txn);
    return Status::OK();
  });
  (*engine)->Shutdown();
  return 0;
}

/// Superblock decode: the input IS page 0 (and anything after it).  Also
/// drives a whole-engine open, whose bootstrap path must either accept,
/// typed-reject, or re-initialize — never crash.
int SuperblockTarget(const uint8_t* data, size_t size) {
  {
    char page[kPageSize];
    std::memset(page, 0, sizeof(page));
    std::memcpy(page, data, std::min<size_t>(size, kPageSize));
    ConstSuperblockView view(page);
    (void)view.IsValid();
    (void)view.page_count();
    (void)view.free_list_head();
    for (int s = 0; s < ConstSuperblockView::kNumRoots; ++s) {
      (void)view.root(s);
    }
    for (int c = 0; c < ConstSuperblockView::kNumCounters; ++c) {
      (void)view.counter(c);
    }
  }
  MemEnv env;
  auto engine =
      OpenOver(&env, Slice(reinterpret_cast<const char*>(data), size));
  if (!engine.ok()) return 0;
  (void)(*engine)->WithReadTxn([](ReadTxn& txn) -> Status {
    for (int s = 0; s < ConstSuperblockView::kNumRoots; ++s) {
      (void)txn.GetRoot(s);
    }
    for (int c = 0; c < ConstSuperblockView::kNumCounters; ++c) {
      (void)txn.GetCounter(c);
    }
    (void)txn.PageCount();
    auto tree = BTree::Open(&txn, 0);
    if (tree.ok()) {
      (void)tree->Get(Slice("k"));
      auto it = tree->NewIterator();
      it.SeekToFirst();
      for (int i = 0; i < 32 && it.Valid(); ++i) it.Next();
    }
    return Status::OK();
  });
  (*engine)->Shutdown();
  return 0;
}

/// Payload-store index entry decode (+ canonical round trip on accept).
int PayloadEntry(const uint8_t* data, size_t size) {
  PayloadStoreEntry entry;
  const Status s = DecodePayloadStoreEntry(
      Slice(reinterpret_cast<const char*>(data), size), &entry);
  if (!s.ok()) return 0;
  const std::string encoded = EncodePayloadStoreEntry(entry);
  PayloadStoreEntry again;
  ODE_FUZZ_REQUIRE(DecodePayloadStoreEntry(Slice(encoded), &again).ok());
  ODE_FUZZ_REQUIRE(again.refcount == entry.refcount);
  ODE_FUZZ_REQUIRE(again.size == entry.size);
  ODE_FUZZ_REQUIRE(again.rid == entry.rid);
  return 0;
}

}  // namespace

void RegisterStorageTargets() {
  RegisterFuzzTarget("wal_replay",
                     "WAL frame scan, record decode, recovery replay",
                     WalReplay);
  RegisterFuzzTarget("page_slotted", "slotted heap page decode + mutation",
                     PageSlotted);
  RegisterFuzzTarget("page_btree",
                     "B+tree node decode via corrupted real database",
                     PageBtree);
  RegisterFuzzTarget("heap_record",
                     "heap cell tags + overflow chains via corrupted real "
                     "database",
                     HeapRecord);
  RegisterFuzzTarget("superblock", "superblock decode + engine bootstrap",
                     SuperblockTarget);
  RegisterFuzzTarget("payload_entry",
                     "content-addressed payload index entry codec",
                     PayloadEntry);
}

}  // namespace fuzz
}  // namespace ode
