#include <cstring>

#include "fuzz/fuzz.h"
#include "net/wire.h"
#include "util/slice.h"

// Harnesses for the network trust boundary: bytes arriving from a peer
// socket.  Framing and body decoding are separate targets because they see
// different shapes of hostility — ExtractFrame fights length prefixes,
// DecodeRequest/DecodeResponse fight body structure.

namespace ode {
namespace fuzz {
namespace {

/// Streams the input through ExtractFrame as a receive buffer, decoding
/// every extracted frame both ways (a hostile peer can send either role's
/// bytes).  kError must terminate the connection; kNeedMore must leave the
/// buffer untouched.
int WireExtractFrame(const uint8_t* data, size_t size) {
  Slice input(reinterpret_cast<const char*>(data), size);
  // A tight cap keeps hostile length prefixes interesting without letting
  // the harness buffer 16MB per iteration.
  constexpr size_t kMaxFrame = 1u << 16;
  while (true) {
    Slice frame;
    std::string error;
    const size_t before = input.size();
    const net::FrameResult r =
        net::ExtractFrame(&input, &frame, kMaxFrame, &error);
    if (r == net::FrameResult::kError) {
      ODE_FUZZ_REQUIRE(!error.empty());
      break;
    }
    if (r == net::FrameResult::kNeedMore) {
      ODE_FUZZ_REQUIRE(input.size() == before);
      break;
    }
    ODE_FUZZ_REQUIRE(frame.size() >= net::kFrameMinPayload);
    ODE_FUZZ_REQUIRE(frame.size() <= kMaxFrame);
    ODE_FUZZ_REQUIRE(input.size() < before);
    net::Request req;
    (void)net::DecodeRequest(frame, &req);
    net::Response resp;
    (void)net::DecodeResponse(frame, &resp);
  }
  return 0;
}

/// Treats the whole input as one frame payload.  A decode that succeeds
/// must survive an encode/extract/decode round trip (the codec pair is the
/// server's only contract with itself).
int WireDecodeRequest(const uint8_t* data, size_t size) {
  net::Request req;
  const Status s =
      net::DecodeRequest(Slice(reinterpret_cast<const char*>(data), size),
                         &req);
  if (!s.ok()) return 0;
  std::string encoded;
  net::EncodeRequestFrame(req, &encoded);
  Slice stream(encoded);
  Slice frame;
  std::string error;
  ODE_FUZZ_REQUIRE(net::ExtractFrame(&stream, &frame,
                                     net::kDefaultMaxFrameBytes, &error) ==
                   net::FrameResult::kFrame);
  net::Request again;
  ODE_FUZZ_REQUIRE(net::DecodeRequest(frame, &again).ok());
  ODE_FUZZ_REQUIRE(again.op == req.op);
  ODE_FUZZ_REQUIRE(again.request_id == req.request_id);
  ODE_FUZZ_REQUIRE(again.payload == req.payload);
  ODE_FUZZ_REQUIRE(again.batch.size() == req.batch.size());
  return 0;
}

int WireDecodeResponse(const uint8_t* data, size_t size) {
  net::Response resp;
  const Status s =
      net::DecodeResponse(Slice(reinterpret_cast<const char*>(data), size),
                          &resp);
  if (!s.ok()) return 0;
  std::string encoded;
  net::EncodeResponseFrame(resp, &encoded);
  Slice stream(encoded);
  Slice frame;
  std::string error;
  ODE_FUZZ_REQUIRE(net::ExtractFrame(&stream, &frame,
                                     net::kDefaultMaxFrameBytes, &error) ==
                   net::FrameResult::kFrame);
  net::Response again;
  ODE_FUZZ_REQUIRE(net::DecodeResponse(frame, &again).ok());
  ODE_FUZZ_REQUIRE(again.op == resp.op);
  ODE_FUZZ_REQUIRE(again.status == resp.status);
  ODE_FUZZ_REQUIRE(again.payload == resp.payload);
  ODE_FUZZ_REQUIRE(again.batch.size() == resp.batch.size());
  ODE_FUZZ_REQUIRE(again.entries.size() == resp.entries.size());
  return 0;
}

}  // namespace

void RegisterNetTargets() {
  RegisterFuzzTarget("wire_extract_frame",
                     "frame extraction from a hostile byte stream",
                     WireExtractFrame);
  RegisterFuzzTarget("wire_decode_request",
                     "request body decoding + round-trip", WireDecodeRequest);
  RegisterFuzzTarget("wire_decode_response",
                     "response body decoding + round-trip",
                     WireDecodeResponse);
}

}  // namespace fuzz
}  // namespace ode
