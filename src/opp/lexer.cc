#include "opp/lexer.h"

#include <cctype>

namespace ode {
namespace opp {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

std::vector<Token> Lex(std::string_view source) {
  std::vector<Token> tokens;
  size_t i = 0;
  size_t line = 1;
  const size_t n = source.size();

  auto push = [&](TokenKind kind, size_t start, size_t end) {
    Token token;
    token.kind = kind;
    token.text = std::string(source.substr(start, end - start));
    token.offset = start;
    token.line = line;  // Line where the token STARTS.
    for (char c : token.text) {
      if (c == '\n') ++line;
    }
    tokens.push_back(std::move(token));
  };

  while (i < n) {
    const char c = source[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < n && std::isspace(static_cast<unsigned char>(source[i]))) {
        ++i;
      }
      push(TokenKind::kWhitespace, start, i);
    } else if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      size_t start = i;
      while (i < n && source[i] != '\n') ++i;
      push(TokenKind::kComment, start, i);
    } else if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      size_t start = i;
      i += 2;
      while (i + 1 < n && !(source[i] == '*' && source[i + 1] == '/')) ++i;
      i = (i + 1 < n) ? i + 2 : n;
      push(TokenKind::kComment, start, i);
    } else if (c == '"') {
      size_t start = i++;
      while (i < n && source[i] != '"') {
        if (source[i] == '\\' && i + 1 < n) ++i;
        ++i;
      }
      if (i < n) ++i;  // Closing quote.
      push(TokenKind::kString, start, i);
    } else if (c == '\'') {
      size_t start = i++;
      while (i < n && source[i] != '\'') {
        if (source[i] == '\\' && i + 1 < n) ++i;
        ++i;
      }
      if (i < n) ++i;
      push(TokenKind::kCharLit, start, i);
    } else if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(source[i])) ++i;
      push(TokenKind::kIdentifier, start, i);
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < n && (IsIdentChar(source[i]) || source[i] == '.')) ++i;
      push(TokenKind::kNumber, start, i);
    } else {
      push(TokenKind::kPunct, i, i + 1);
      ++i;
    }
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = n;
  end.line = line;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace opp
}  // namespace ode
