#include "opp/translator.h"

#include <vector>

#include "opp/lexer.h"

namespace ode {
namespace opp {

namespace {

/// Cursor over the lexed token stream with blank-skipping lookahead.
class TokenCursor {
 public:
  explicit TokenCursor(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  const Token& at(size_t i) const { return tokens_[i]; }
  size_t size() const { return tokens_.size(); }

  /// Index of the next non-blank token at or after `i` (may be kEnd).
  size_t SkipBlanks(size_t i) const {
    while (i < tokens_.size() && IsBlank(tokens_[i])) ++i;
    return i < tokens_.size() ? i : tokens_.size() - 1;
  }

  bool IsIdent(size_t i, std::string_view text) const {
    return tokens_[i].kind == TokenKind::kIdentifier &&
           tokens_[i].text == text;
  }
  bool IsPunct(size_t i, char c) const {
    return tokens_[i].kind == TokenKind::kPunct && tokens_[i].text.size() == 1 &&
           tokens_[i].text[0] == c;
  }

 private:
  std::vector<Token> tokens_;
};

/// Appends tokens [from, to) verbatim.
void AppendRange(const TokenCursor& cursor, size_t from, size_t to,
                 std::string* out) {
  for (size_t i = from; i < to; ++i) out->append(cursor.at(i).text);
}

/// Finds the index just past the ')' matching the '(' at `open` (which must
/// be a '(' token).  Returns false on unbalanced input.
bool MatchParen(const TokenCursor& cursor, size_t open, size_t* past_close) {
  int depth = 0;
  for (size_t i = open; i < cursor.size(); ++i) {
    if (cursor.IsPunct(i, '(')) ++depth;
    if (cursor.IsPunct(i, ')')) {
      --depth;
      if (depth == 0) {
        *past_close = i + 1;
        return true;
      }
    }
  }
  return false;
}

}  // namespace

StatusOr<std::string> Translate(std::string_view source,
                                const TranslateOptions& options,
                                TranslateStats* stats) {
  TokenCursor cursor(Lex(source));
  std::string out;
  out.reserve(source.size() + 256);
  TranslateStats local_stats;
  const std::string& db = options.db_expr;

  if (options.add_include) {
    out += "#include \"opp/runtime.h\"  // added by oppc\n";
  }

  size_t i = 0;
  // Multi-declarator bookkeeping: inside `persistent T *a, *b;` the extra
  // '*'s (those directly after a ',' at paren depth 0) must be dropped too.
  bool in_persistent_decl = false;
  int decl_paren_depth = 0;
  char last_significant = '\0';

  while (i < cursor.size() && cursor.at(i).kind != TokenKind::kEnd) {
    const Token& token = cursor.at(i);

    if (in_persistent_decl && token.kind == TokenKind::kPunct) {
      const char c = token.text[0];
      if (c == '(') ++decl_paren_depth;
      if (c == ')') --decl_paren_depth;
      if (c == ';' && decl_paren_depth == 0) in_persistent_decl = false;
      if (c == '*' && decl_paren_depth == 0 && last_significant == ',') {
        // Drop the '*' of the next declarator; keep exactly one separator.
        const bool blank_before = i > 0 && IsBlank(cursor.at(i - 1));
        ++i;
        if (!blank_before && i < cursor.size() && !IsBlank(cursor.at(i))) {
          out += " ";
        }
        continue;
      }
    }
    if (!IsBlank(token) && !token.text.empty()) {
      last_significant = token.text[0];
    }

    // persistent T * name  ->  ode::Ref<T> name
    if (cursor.IsIdent(i, "persistent")) {
      const size_t type_idx = cursor.SkipBlanks(i + 1);
      if (cursor.at(type_idx).kind == TokenKind::kIdentifier) {
        const size_t star_idx = cursor.SkipBlanks(type_idx + 1);
        if (cursor.IsPunct(star_idx, '*')) {
          out += "ode::Ref<" + cursor.at(type_idx).text + ">";
          i = star_idx + 1;
          // `persistent T *p` has no blank between '*' and the name; keep
          // the output well-formed.
          if (i < cursor.size() && !IsBlank(cursor.at(i))) out += " ";
          ++local_stats.persistent_decls;
          in_persistent_decl = true;
          decl_paren_depth = 0;
          continue;
        }
      }
    }

    // pnew T(args)  ->  ode::opp::Pnew<T>(db, T(args))
    if (cursor.IsIdent(i, "pnew")) {
      const size_t type_idx = cursor.SkipBlanks(i + 1);
      if (cursor.at(type_idx).kind == TokenKind::kIdentifier) {
        const std::string& type = cursor.at(type_idx).text;
        const size_t paren_idx = cursor.SkipBlanks(type_idx + 1);
        out += "ode::opp::Pnew<" + type + ">(" + db + ", " + type;
        if (cursor.IsPunct(paren_idx, '(')) {
          size_t past_close = 0;
          if (!MatchParen(cursor, paren_idx, &past_close)) {
            return Status::InvalidArgument(
                "unbalanced parentheses after pnew at line " +
                std::to_string(cursor.at(paren_idx).line));
          }
          AppendRange(cursor, paren_idx, past_close, &out);
          i = past_close;
        } else {
          out += "()";
          i = type_idx + 1;
        }
        out += ")";
        ++local_stats.pnew_exprs;
        continue;
      }
    }

    // pdelete expr  ->  ode::opp::Pdelete(db, expr)
    if (cursor.IsIdent(i, "pdelete")) {
      // The operand extends to the next ';', ',', ')' or '}' at depth 0.
      size_t j = cursor.SkipBlanks(i + 1);
      size_t expr_end = j;
      int depth = 0;
      while (expr_end < cursor.size() &&
             cursor.at(expr_end).kind != TokenKind::kEnd) {
        if (cursor.IsPunct(expr_end, '(')) ++depth;
        if (cursor.IsPunct(expr_end, ')')) {
          if (depth == 0) break;
          --depth;
        }
        if (depth == 0 && (cursor.IsPunct(expr_end, ';') ||
                           cursor.IsPunct(expr_end, ',') ||
                           cursor.IsPunct(expr_end, '}'))) {
          break;
        }
        ++expr_end;
      }
      // Trim trailing blanks from the operand.
      size_t trimmed_end = expr_end;
      while (trimmed_end > j && IsBlank(cursor.at(trimmed_end - 1))) {
        --trimmed_end;
      }
      if (trimmed_end == j) {
        return Status::InvalidArgument("pdelete without operand at line " +
                                       std::to_string(cursor.at(i).line));
      }
      out += "ode::opp::Pdelete(" + db + ", ";
      AppendRange(cursor, j, trimmed_end, &out);
      out += ")";
      AppendRange(cursor, trimmed_end, expr_end, &out);  // Trailing blanks.
      i = expr_end;
      ++local_stats.pdelete_stmts;
      continue;
    }

    // newversion(expr)  ->  ode::opp::NewVersion(db, expr)
    if (cursor.IsIdent(i, "newversion")) {
      const size_t paren_idx = cursor.SkipBlanks(i + 1);
      if (cursor.IsPunct(paren_idx, '(')) {
        out += "ode::opp::NewVersion(" + db + ", ";
        size_t past_close = 0;
        if (!MatchParen(cursor, paren_idx, &past_close)) {
          return Status::InvalidArgument(
              "unbalanced parentheses after newversion at line " +
              std::to_string(cursor.at(i).line));
        }
        // Copy the contents WITHOUT the outer parens, then close.
        AppendRange(cursor, paren_idx + 1, past_close - 1, &out);
        out += ")";
        i = past_close;
        ++local_stats.newversion_calls;
        continue;
      }
    }

    // for (x in T)                     -> range-for over the cluster
    // for (x in T suchthat (cond))     -> range-for + selection
    if (cursor.IsIdent(i, "for")) {
      const size_t open_idx = cursor.SkipBlanks(i + 1);
      if (cursor.IsPunct(open_idx, '(')) {
        const size_t var_idx = cursor.SkipBlanks(open_idx + 1);
        const size_t in_idx = cursor.SkipBlanks(var_idx + 1);
        const size_t type_idx = cursor.SkipBlanks(in_idx + 1);
        const size_t after_type = cursor.SkipBlanks(type_idx + 1);
        if (cursor.at(var_idx).kind == TokenKind::kIdentifier &&
            cursor.IsIdent(in_idx, "in") &&
            cursor.at(type_idx).kind == TokenKind::kIdentifier) {
          const std::string& var = cursor.at(var_idx).text;
          const std::string& type = cursor.at(type_idx).text;
          const std::string range_for = "for (ode::Ref<" + type + "> " + var +
                                        " : ode::opp::ClusterRange<" + type +
                                        ">(" + db + "))";
          if (cursor.IsPunct(after_type, ')')) {
            out += range_for;
            i = after_type + 1;
            ++local_stats.cluster_loops;
            continue;
          }
          if (cursor.IsIdent(after_type, "suchthat")) {
            const size_t cond_open = cursor.SkipBlanks(after_type + 1);
            size_t past_cond = 0;
            if (!cursor.IsPunct(cond_open, '(') ||
                !MatchParen(cursor, cond_open, &past_cond)) {
              return Status::InvalidArgument(
                  "malformed suchthat clause at line " +
                  std::to_string(cursor.at(after_type).line));
            }
            const size_t close_idx = cursor.SkipBlanks(past_cond);
            if (cursor.IsPunct(close_idx, ')')) {
              // `for (...) if (!(cond)); else <body>` keeps the body —
              // statement or block — attached to the selection.
              out += range_for + " if (!";
              AppendRange(cursor, cond_open, past_cond, &out);
              out += "); else";
              i = close_idx + 1;
              ++local_stats.cluster_loops;
              continue;
            }
          }
        }
      }
    }

    out += token.text;
    ++i;
  }

  if (stats != nullptr) *stats = local_stats;
  return out;
}

}  // namespace opp
}  // namespace ode
