#ifndef ODE_OPP_LEXER_H_
#define ODE_OPP_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

namespace ode {
namespace opp {

/// Kinds of lexical tokens.  The lexer is *whitespace- and
/// comment-preserving*: the token stream concatenates back to the original
/// source byte-for-byte, which lets the translator rewrite only the O++
/// constructs and leave everything else untouched.
enum class TokenKind {
  kIdentifier,  ///< Identifiers and keywords (C++ and O++ alike).
  kNumber,      ///< Integer/float literal (loose: enough to skip over).
  kString,      ///< "..." including escapes.
  kCharLit,     ///< '...'.
  kComment,     ///< // ... or /* ... */.
  kWhitespace,  ///< Spaces, tabs, newlines.
  kPunct,       ///< Any other single character (operators split into chars).
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;
  size_t offset;  ///< Byte offset in the source (for diagnostics).
  size_t line;    ///< 1-based line number.
};

/// Splits `source` into tokens.  Never fails: unterminated strings/comments
/// lex as a single token to end-of-input (the C++ compiler downstream will
/// complain with a better message).
std::vector<Token> Lex(std::string_view source);

/// True for tokens that carry no syntax (whitespace, comments).
inline bool IsBlank(const Token& token) {
  return token.kind == TokenKind::kWhitespace ||
         token.kind == TokenKind::kComment;
}

}  // namespace opp
}  // namespace ode

#endif  // ODE_OPP_LEXER_H_
