#ifndef ODE_OPP_RUNTIME_H_
#define ODE_OPP_RUNTIME_H_

#include <vector>

#include "core/database.h"
#include "core/version_ptr.h"
#include "util/logging.h"

namespace ode {
namespace opp {

/// Runtime support for oppc-translated programs.
///
/// O++ expressions have no Status channel, so these helpers adopt the
/// translated program's contract: failures terminate with a diagnostic
/// (exactly as a failed `new` would in the era's C++).  Library code should
/// use the Status-returning API in core/ directly.

/// `pnew T(args)` — creates a persistent object, returns a generic
/// reference.
template <Persistable T>
Ref<T> Pnew(Database& db, const T& value) {
  auto ref = pnew(db, value);
  ODE_CHECK(ref.ok());
  return *ref;
}

/// `newversion(generic ref)` — new version derived from the latest.
template <Persistable T>
VersionPtr<T> NewVersion(Database& db, const Ref<T>& ref) {
  (void)db;  // The reference carries its database.
  auto vp = newversion(ref);
  ODE_CHECK(vp.ok());
  return *vp;
}

/// `newversion(specific ref)` — new version derived from that version.
template <Persistable T>
VersionPtr<T> NewVersion(Database& db, const VersionPtr<T>& vp) {
  (void)db;
  auto result = newversion(vp);
  ODE_CHECK(result.ok());
  return *result;
}

/// `pdelete p` for an object (generic reference).
template <Persistable T>
void Pdelete(Database& db, const Ref<T>& ref) {
  (void)db;
  ODE_CHECK(pdelete(ref).ok());
}

/// `pdelete vp` for one version (specific reference).
template <Persistable T>
void Pdelete(Database& db, const VersionPtr<T>& vp) {
  (void)db;
  ODE_CHECK(pdelete(vp).ok());
}

/// `for (x in T)` — iteration over the cluster (extent) of type T.  The
/// object set is snapshotted at loop entry, so the body may create or delete
/// objects without invalidating the iteration.
template <Persistable T>
class ClusterRange {
 public:
  explicit ClusterRange(Database& db) : db_(&db) {
    auto type_id = db.TypeId<T>();
    ODE_CHECK(type_id.ok());
    auto oids = db.ClusterScan(*type_id);
    ODE_CHECK(oids.ok());
    oids_ = std::move(*oids);
  }

  class iterator {
   public:
    iterator(Database* db, const std::vector<ObjectId>* oids, size_t index)
        : db_(db), oids_(oids), index_(index) {}
    Ref<T> operator*() const { return Ref<T>(db_, (*oids_)[index_]); }
    iterator& operator++() {
      ++index_;
      return *this;
    }
    bool operator!=(const iterator& other) const {
      return index_ != other.index_;
    }

   private:
    Database* db_;
    const std::vector<ObjectId>* oids_;
    size_t index_;
  };

  iterator begin() const { return iterator(db_, &oids_, 0); }
  iterator end() const { return iterator(db_, &oids_, oids_.size()); }
  size_t size() const { return oids_.size(); }

 private:
  Database* db_;
  std::vector<ObjectId> oids_;
};

}  // namespace opp
}  // namespace ode

#endif  // ODE_OPP_RUNTIME_H_
