#ifndef ODE_OPP_TRANSLATOR_H_
#define ODE_OPP_TRANSLATOR_H_

#include <string>
#include <string_view>

#include "util/statusor.h"

namespace ode {
namespace opp {

/// Options for the O++ -> C++ source translation.
struct TranslateOptions {
  /// C++ expression denoting the ode::Database& the translated constructs
  /// operate on.
  std::string db_expr = "db";
  /// Prepend `#include "opp/runtime.h"` to the output.
  bool add_include = true;
};

/// What the translator rewrote (for tests and tooling output).
struct TranslateStats {
  int persistent_decls = 0;
  int pnew_exprs = 0;
  int pdelete_stmts = 0;
  int newversion_calls = 0;
  int cluster_loops = 0;
};

/// Translates the O++ versioning/persistence constructs embedded in
/// otherwise-ordinary C++ into calls on the Ode library — the miniature of
/// the paper's §6 ("We are implementing an O++ compiler which translates
/// O++ programs to C++").
///
/// Recognized constructs:
///
///   persistent T* p;            ->  ode::Ref<T> p;
///   p = pnew T(args);           ->  p = ode::opp::Pnew<T>(db, T(args));
///   pdelete p;                  ->  ode::opp::Pdelete(db, p);
///   newversion(p)               ->  ode::opp::NewVersion(db, p)
///   for (x in T) { ... }        ->  for (ode::Ref<T> x :
///                                        ode::opp::ClusterRange<T>(db)) ...
///   for (x in T suchthat (c))   ->  the same loop with the body guarded by
///                                   the selection predicate `c`
///
/// Everything else — comments, strings, and all other C++ — passes through
/// byte-for-byte.  The output compiles against opp/runtime.h.
StatusOr<std::string> Translate(std::string_view source,
                                const TranslateOptions& options = {},
                                TranslateStats* stats = nullptr);

}  // namespace opp
}  // namespace ode

#endif  // ODE_OPP_TRANSLATOR_H_
