// oppc: the miniature O++-to-C++ translator (paper §6).
//
// Usage:
//   oppc [--db=EXPR] [--no-include] [input.opp [output.cc]]
//
// Reads O++ source (stdin when no input file), writes translated C++
// (stdout when no output file).  See opp/translator.h for the recognized
// constructs.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "opp/translator.h"

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "oppc: %s\n", message.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  ode::opp::TranslateOptions options;
  std::string input_path, output_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--db=", 0) == 0) {
      options.db_expr = arg.substr(5);
    } else if (arg == "--no-include") {
      options.add_include = false;
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: oppc [--db=EXPR] [--no-include] [in.opp [out.cc]]\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return Fail("unknown flag: " + arg);
    } else if (input_path.empty()) {
      input_path = arg;
    } else if (output_path.empty()) {
      output_path = arg;
    } else {
      return Fail("too many arguments");
    }
  }

  std::string source;
  if (input_path.empty()) {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    source = buffer.str();
  } else {
    std::ifstream in(input_path);
    if (!in) return Fail("cannot open " + input_path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    source = buffer.str();
  }

  ode::opp::TranslateStats stats;
  auto translated = ode::opp::Translate(source, options, &stats);
  if (!translated.ok()) return Fail(translated.status().ToString());

  if (output_path.empty()) {
    std::cout << *translated;
  } else {
    std::ofstream out(output_path);
    if (!out) return Fail("cannot write " + output_path);
    out << *translated;
  }
  std::fprintf(stderr,
               "oppc: %d persistent decl(s), %d pnew, %d pdelete, "
               "%d newversion, %d cluster loop(s)\n",
               stats.persistent_decls, stats.pnew_exprs, stats.pdelete_stmts,
               stats.newversion_calls, stats.cluster_loops);
  return 0;
}
