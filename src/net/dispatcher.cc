#include "net/dispatcher.h"

#include <utility>

namespace ode {
namespace net {

namespace {

/// Library status -> wire response (echoing `req`), with the library
/// message carried verbatim so the client sees the same diagnostics a local
/// caller would.
Response FromStatus(const Request& req, const Status& s) {
  Response resp = ResponseFor(req);
  resp.status = ToWireStatus(s.code());
  resp.message = s.message();
  return resp;
}

VersionId Vid(const Request& req) {
  return VersionId{ObjectId{req.oid}, req.vnum};
}

void SetVid(Response* resp, VersionId vid) {
  resp->oid = vid.oid.value;
  resp->vnum = vid.vnum;
}

}  // namespace

Dispatcher::Dispatcher(Database& db) : db_(&db) {
  MetricsRegistry& registry = db.metrics_registry();
  requests_ = registry.GetCounter("net.requests");
  request_errors_ = registry.GetCounter("net.request_errors");
  deref_ns_ = registry.GetHistogram("net.deref_ns");
  mutate_ns_ = registry.GetHistogram("net.mutate_ns");
  cursor_ns_ = registry.GetHistogram("net.cursor_ns");
  txn_ns_ = registry.GetHistogram("net.txn_ns");
  admin_ns_ = registry.GetHistogram("net.admin_ns");
}

Response Dispatcher::Dispatch(const Request& req, Session& session) {
  const uint64_t start_ns = Histogram::NowNanos();
  requests_->Increment();
  ++session.requests;

  Response resp = ResponseFor(req);
  Histogram* family = admin_ns_;
  switch (req.op) {
    case OpCode::kPing:
      break;

    case OpCode::kPnew: {
      family = mutate_ns_;
      auto vid = db_->PnewRaw(req.type_id, Slice(req.payload));
      if (!vid.ok()) { resp = FromStatus(req, vid.status()); break; }
      SetVid(&resp, *vid);
      break;
    }
    case OpCode::kNewVersionOf: {
      family = mutate_ns_;
      auto vid = db_->NewVersionOf(ObjectId{req.oid});
      if (!vid.ok()) { resp = FromStatus(req, vid.status()); break; }
      SetVid(&resp, *vid);
      break;
    }
    case OpCode::kNewVersionFrom: {
      family = mutate_ns_;
      auto vid = db_->NewVersionFrom(Vid(req));
      if (!vid.ok()) { resp = FromStatus(req, vid.status()); break; }
      SetVid(&resp, *vid);
      break;
    }
    case OpCode::kUpdateLatest:
      family = mutate_ns_;
      resp = FromStatus(req, db_->UpdateLatest(ObjectId{req.oid},
                                               Slice(req.payload)));
      break;
    case OpCode::kUpdateVersion:
      family = mutate_ns_;
      resp = FromStatus(req, db_->UpdateVersion(Vid(req), Slice(req.payload)));
      break;

    case OpCode::kDerefLatest: {
      family = deref_ns_;
      VersionId resolved;
      auto bytes = db_->ReadLatest(ObjectId{req.oid}, &resolved);
      if (!bytes.ok()) { resp = FromStatus(req, bytes.status()); break; }
      SetVid(&resp, resolved);
      resp.payload = std::move(*bytes);
      break;
    }
    case OpCode::kDerefVersion: {
      family = deref_ns_;
      auto bytes = db_->ReadVersion(Vid(req));
      if (!bytes.ok()) { resp = FromStatus(req, bytes.status()); break; }
      resp.payload = std::move(*bytes);
      break;
    }
    case OpCode::kDerefBatch: {
      family = deref_ns_;
      resp.batch.reserve(req.batch.size());
      for (const DerefItem& item : req.batch) {
        DerefResult result;
        if (item.vnum == kNoVersion) {
          VersionId resolved;
          auto bytes = db_->ReadLatest(ObjectId{item.oid}, &resolved);
          if (bytes.ok()) {
            result.oid = resolved.oid.value;
            result.vnum = resolved.vnum;
            result.payload = std::move(*bytes);
          } else {
            result.status = ToWireStatus(bytes.status().code());
          }
        } else {
          auto bytes = db_->ReadVersion(VersionId{ObjectId{item.oid},
                                                  item.vnum});
          if (bytes.ok()) {
            result.oid = item.oid;
            result.vnum = item.vnum;
            result.payload = std::move(*bytes);
          } else {
            result.status = ToWireStatus(bytes.status().code());
          }
        }
        resp.batch.push_back(std::move(result));
      }
      break;
    }

    case OpCode::kDeleteObject:
      family = mutate_ns_;
      resp = FromStatus(req, db_->PdeleteObject(ObjectId{req.oid}));
      break;
    case OpCode::kDeleteVersion:
      family = mutate_ns_;
      resp = FromStatus(req, db_->PdeleteVersion(Vid(req)));
      break;

    case OpCode::kLatest: {
      family = deref_ns_;
      auto vid = db_->Latest(ObjectId{req.oid});
      if (!vid.ok()) { resp = FromStatus(req, vid.status()); break; }
      SetVid(&resp, *vid);
      break;
    }
    case OpCode::kVersionsOf: {
      auto vids = db_->VersionsOf(ObjectId{req.oid});
      if (!vids.ok()) { resp = FromStatus(req, vids.status()); break; }
      resp.vnums.reserve(vids->size());
      for (VersionId vid : *vids) resp.vnums.push_back(vid.vnum);
      break;
    }

    case OpCode::kRegisterType: {
      auto id = db_->RegisterType(req.payload);
      if (!id.ok()) { resp = FromStatus(req, id.status()); break; }
      resp.type_id = *id;
      break;
    }
    case OpCode::kLookupType: {
      auto id = db_->LookupType(req.payload);
      if (!id.ok()) { resp = FromStatus(req, id.status()); break; }
      resp.found = id->has_value();
      resp.type_id = id->value_or(0);
      break;
    }

    case OpCode::kCursorOpen:
      family = cursor_ns_;
      resp = DoCursorOpen(req, session);
      break;
    case OpCode::kCursorNext:
      family = cursor_ns_;
      resp = DoCursorNext(req, session);
      break;
    case OpCode::kCursorClose:
      family = cursor_ns_;
      if (session.cursors_.erase(req.cursor_id) == 0) {
        resp = ErrorResponseFor(req, WireStatus::kNotFound,
                                "no cursor " + std::to_string(req.cursor_id));
      }
      break;

    case OpCode::kTxnBegin: {
      family = txn_ns_;
      if (session.in_txn_) {
        resp = ErrorResponseFor(req, WireStatus::kFailedPrecondition,
                                "session already holds a transaction");
        break;
      }
      Status s = db_->Begin();
      if (s.ok()) session.in_txn_ = true;
      resp = FromStatus(req, s);
      break;
    }
    case OpCode::kTxnCommit: {
      family = txn_ns_;
      if (!session.in_txn_) {
        resp = ErrorResponseFor(req, WireStatus::kFailedPrecondition,
                                "session holds no transaction");
        break;
      }
      session.in_txn_ = false;
      resp = FromStatus(req, db_->Commit());
      break;
    }
    case OpCode::kTxnAbort: {
      family = txn_ns_;
      if (!session.in_txn_) {
        resp = ErrorResponseFor(req, WireStatus::kFailedPrecondition,
                                "session holds no transaction");
        break;
      }
      session.in_txn_ = false;
      resp = FromStatus(req, db_->Abort());
      break;
    }

    case OpCode::kStats:
      resp.payload = MetricsRegistry::RenderJson(db_->MetricsSnapshot());
      break;
  }

  if (resp.status != WireStatus::kOk) {
    request_errors_->Increment();
    ++session.errors;
  }
  family->Record(Histogram::NowNanos() - start_ns);
  return resp;
}

Response Dispatcher::DoCursorOpen(const Request& req, Session& session) {
  Response resp = ResponseFor(req);
  if (session.cursors_.size() >= Session::kMaxCursors) {
    return ErrorResponseFor(req, WireStatus::kFailedPrecondition,
                            "session cursor cap (" +
                                std::to_string(Session::kMaxCursors) +
                                ") reached; close cursors first");
  }
  Session::AnyCursor cursor;
  switch (static_cast<CursorKind>(req.cursor_kind)) {
    case CursorKind::kObjects:
      cursor = std::make_unique<ObjectCursor>(*db_);
      break;
    case CursorKind::kVersions:
      cursor = std::make_unique<VersionCursor>(*db_, ObjectId{req.cursor_arg});
      break;
    case CursorKind::kTypes:
      cursor = std::make_unique<TypeCursor>(*db_);
      break;
    case CursorKind::kCluster:
      cursor = std::make_unique<ClusterCursor>(
          *db_, static_cast<uint32_t>(req.cursor_arg));
      break;
    default:
      // DecodeRequest already range-checks; defensive for loopback callers
      // that build Requests by hand.
      return ErrorResponseFor(req, WireStatus::kInvalidArgument,
                              "unknown cursor kind " +
                                  std::to_string(req.cursor_kind));
  }
  const uint64_t id = session.next_cursor_id_++;
  session.cursors_.emplace(id, std::move(cursor));
  resp.cursor_id = id;
  return resp;
}

Response Dispatcher::DoCursorNext(const Request& req, Session& session) {
  Response resp = ResponseFor(req);
  auto it = session.cursors_.find(req.cursor_id);
  if (it == session.cursors_.end()) {
    return ErrorResponseFor(req, WireStatus::kNotFound,
                            "no cursor " + std::to_string(req.cursor_id));
  }

  // Pull up to max_entries from whichever cursor family is open, mapping
  // each position to the kind's documented CursorEntry shape.
  Status cursor_status;
  bool done = false;
  auto pump = [&](auto& cursor, auto&& to_entry) {
    for (uint32_t i = 0; i < req.max_entries && cursor->Valid(); ++i) {
      resp.entries.push_back(to_entry(*cursor));
      cursor->Next();
    }
    done = !cursor->Valid();
    cursor_status = cursor->status();
  };
  std::visit(
      [&](auto& cursor) {
        using T = std::decay_t<decltype(*cursor)>;
        if constexpr (std::is_same_v<T, ObjectCursor>) {
          pump(cursor, [](ObjectCursor& c) {
            return CursorEntry{c.oid().value, c.header().latest,
                               c.header().type_id, {}};
          });
        } else if constexpr (std::is_same_v<T, VersionCursor>) {
          pump(cursor, [](VersionCursor& c) {
            return CursorEntry{c.vid().oid.value, c.vid().vnum,
                               c.meta().derived_from, {}};
          });
        } else if constexpr (std::is_same_v<T, TypeCursor>) {
          pump(cursor, [](TypeCursor& c) {
            return CursorEntry{c.id(), 0, 0, c.name()};
          });
        } else {
          pump(cursor, [](ClusterCursor& c) {
            return CursorEntry{c.oid().value, 0, 0, {}};
          });
        }
      },
      it->second);

  if (!cursor_status.ok()) {
    session.cursors_.erase(it);
    return FromStatus(req, cursor_status);
  }
  resp.done = done;
  if (done) session.cursors_.erase(it);  // Exhausted cursors self-close.
  return resp;
}

void Dispatcher::CloseSession(Session& session) {
  if (session.in_txn_) {
    session.in_txn_ = false;
    // Best-effort: the client is gone, there is nobody to report to; a
    // failed abort poisons the engine, which the health check surfaces.
    db_->Abort().IgnoreError();
  }
  session.cursors_.clear();
}

}  // namespace net
}  // namespace ode
