#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/logging.h"

namespace ode {
namespace net {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

}  // namespace

Status ServerOptions::Validate() const {
  if (workers < 1) {
    return Status::InvalidArgument("ServerOptions::workers must be >= 1");
  }
  if (max_frame_bytes < kFrameMinPayload) {
    return Status::InvalidArgument(
        "ServerOptions::max_frame_bytes must be >= " +
        std::to_string(kFrameMinPayload));
  }
  if (max_pipeline < 1) {
    return Status::InvalidArgument("ServerOptions::max_pipeline must be >= 1");
  }
  if (max_outbox_bytes < 1) {
    return Status::InvalidArgument(
        "ServerOptions::max_outbox_bytes must be >= 1");
  }
  if (listen_backlog < 1) {
    return Status::InvalidArgument(
        "ServerOptions::listen_backlog must be >= 1");
  }
  return Status::OK();
}

StatusOr<std::unique_ptr<Server>> Server::Start(Database& db,
                                                const ServerOptions& options) {
  ODE_RETURN_IF_ERROR(options.Validate());
  std::unique_ptr<Server> server(new Server());
  Status s = server->Init(db, options);
  if (!s.ok()) {
    server->Stop();
    return s;
  }
  return server;
}

Status Server::Init(Database& db, const ServerOptions& options) {
  options_ = options;
  db_ = &db;
  dispatcher_ = std::make_unique<Dispatcher>(db);

  MetricsRegistry& registry = db.metrics_registry();
  accepted_ = registry.GetCounter("server.connections_accepted");
  closed_count_ = registry.GetCounter("server.connections_closed");
  bytes_in_ = registry.GetCounter("server.bytes_in");
  bytes_out_ = registry.GetCounter("server.bytes_out");
  protocol_errors_ = registry.GetCounter("server.protocol_errors");
  shed_pipeline_ = registry.GetCounter("server.shed_backpressure");
  shed_slow_consumer_ = registry.GetCounter("server.shed_slow_consumer");
  open_gauge_ = registry.GetGauge("server.open_connections");

  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Errno("socket");
  const int one = 1;
  // Best-effort: without REUSEADDR a quick restart fails in TIME_WAIT, but
  // the bind below still reports the real error if it matters.
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("ServerOptions::host is not an IPv4 "
                                   "address: " + options_.host);
  }
  // ode_lint: allow(unchecked-cast) POSIX sockaddr idiom, sizeof-bounded.
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    return Errno("bind " + options_.host + ":" + std::to_string(options_.port));
  }
  socklen_t addr_len = sizeof(addr);
  // ode_lint: allow(unchecked-cast) POSIX sockaddr idiom, sizeof-bounded.
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len) <
      0) {
    return Errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  if (listen(listen_fd_, options_.listen_backlog) < 0) return Errno("listen");
  ODE_RETURN_IF_ERROR(SetNonBlocking(listen_fd_));

  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return Errno("epoll_create1");
  wake_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) return Errno("eventfd");

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) < 0) {
    return Errno("epoll_ctl(listen)");
  }
  ev.data.fd = wake_fd_;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) < 0) {
    return Errno("epoll_ctl(wake)");
  }

  workers_.reserve(static_cast<size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  for (int i = 0; i < options_.workers; ++i) {
    workers_[static_cast<size_t>(i)]->thread =
        std::thread([this, i] { WorkerLoop(static_cast<size_t>(i)); });
  }
  io_thread_ = std::thread([this] { IoLoop(); });
  return Status::OK();
}

Server::~Server() { Stop(); }

void Server::Stop() {
  if (stopped_.exchange(true)) return;
  stopping_.store(true);
  WakeIo();
  if (io_thread_.joinable()) io_thread_.join();

  // The IO loop's epilogue enqueued a teardown for every live connection;
  // now drain the workers (they answer still-queued requests with
  // kShuttingDown and abort session transactions on their own threads).
  for (auto& worker : workers_) {
    {
      MutexLock lock(worker->mu);
      worker->stop = true;
    }
    worker->cv.NotifyAll();
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }

  // Best-effort final flush (shutdown errors, half-written responses), then
  // release the sockets.
  for (auto& [fd, conn] : conns_) {
    TryFlush(conn);
    if (!conn->closed.exchange(true)) {
      close(conn->fd);
      closed_count_->Increment();
      open_gauge_->Add(-1);
      open_conns_.fetch_sub(1);
    }
  }
  conns_.clear();
  if (wake_fd_ >= 0) close(wake_fd_);
  if (epoll_fd_ >= 0) close(epoll_fd_);
  if (listen_fd_ >= 0) close(listen_fd_);
  wake_fd_ = epoll_fd_ = listen_fd_ = -1;
}

// ---------------------------------------------------------------------------
// IO thread
// ---------------------------------------------------------------------------

void Server::IoLoop() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (!stopping_.load()) {
    const int n = epoll_wait(epoll_fd_, events, kMaxEvents, 100);
    if (n < 0) {
      if (errno == EINTR) continue;
      ODE_LOG_ERROR << "ode_server epoll_wait: " << std::strerror(errno);
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == listen_fd_) {
        HandleAccept();
        continue;
      }
      if (fd == wake_fd_) {
        uint64_t drained = 0;
        while (read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;  // Raced with a close.
      ConnPtr conn = it->second;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        CloseConn(conn);
        continue;
      }
      if ((events[i].events & EPOLLIN) != 0) HandleReadable(conn);
      if ((events[i].events & EPOLLOUT) != 0) HandleWritable(conn);
    }
    // Flush outboxes the workers filled since the last pass.
    std::vector<ConnPtr> dirty;
    {
      MutexLock lock(dirty_mu_);
      dirty.swap(dirty_);
    }
    for (const ConnPtr& conn : dirty) {
      if (!conn->closed.load()) TryFlush(conn);
    }
  }

  // Epilogue: hand every live session to its worker for teardown (txn
  // aborts must run on the session's thread) with a shutdown notice for
  // anything still unanswered.
  for (auto& [fd, conn] : conns_) {
    Task task;
    task.conn = conn;
    task.teardown = true;
    Enqueue(conn->worker, std::move(task));
  }
}

void Server::HandleAccept() {
  while (true) {
    sockaddr_in peer{};
    socklen_t peer_len = sizeof(peer);
    // ode_lint: allow(unchecked-cast) POSIX sockaddr idiom, sizeof-bounded.
    const int fd = accept4(listen_fd_, reinterpret_cast<sockaddr*>(&peer),
                           &peer_len, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      ODE_LOG_ERROR << "ode_server accept: " << std::strerror(errno);
      return;
    }
    const int one = 1;
    // Pipelined request/response traffic is latency-bound; Nagle only adds
    // stalls.  Best-effort (the connection works without it).
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    conn->id = next_conn_id_++;
    conn->worker = conn->id % workers_.size();
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ODE_LOG_ERROR << "ode_server epoll_ctl(add conn): "
                    << std::strerror(errno);
      close(fd);
      continue;
    }
    conns_.emplace(fd, conn);
    accepted_->Increment();
    open_gauge_->Add(1);
    open_conns_.fetch_add(1);
  }
}

void Server::HandleReadable(const ConnPtr& conn) {
  if (conn->shed.load()) {
    // A shed connection's input no longer matters; swallow it so the peer's
    // sends don't stall while the shutdown error drains toward it.
    char discard[4096];
    while (read(conn->fd, discard, sizeof(discard)) > 0) {
    }
    return;
  }
  char buf[64 * 1024];
  while (true) {
    const ssize_t got = read(conn->fd, buf, sizeof(buf));
    if (got > 0) {
      conn->rbuf.append(buf, static_cast<size_t>(got));
      conn->bytes_in += static_cast<uint64_t>(got);
      bytes_in_->Add(static_cast<uint64_t>(got));
      continue;
    }
    if (got == 0) {  // Orderly EOF.
      CloseConn(conn);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConn(conn);
    return;
  }
  DrainReadBuffer(conn);
}

void Server::DrainReadBuffer(const ConnPtr& conn) {
  Slice input(conn->rbuf);
  while (!conn->shed.load()) {
    Slice frame;
    std::string frame_error;
    const FrameResult r =
        ExtractFrame(&input, &frame, options_.max_frame_bytes, &frame_error);
    if (r == FrameResult::kNeedMore) break;
    if (r == FrameResult::kError) {
      protocol_errors_->Increment();
      ShedConn(conn, Request{}, WireStatus::kProtocolError, frame_error);
      break;
    }
    Request req;
    Status decoded = DecodeRequest(frame, &req);
    if (!decoded.ok()) {
      protocol_errors_->Increment();
      ShedConn(conn, req, WireStatus::kProtocolError, decoded.message());
      break;
    }
    if (conn->pending.load() >= options_.max_pipeline) {
      shed_pipeline_->Increment();
      ShedConn(conn, req, WireStatus::kBackpressure,
               "pipeline cap (" + std::to_string(options_.max_pipeline) +
                   " unanswered requests) exceeded");
      break;
    }
    conn->pending.fetch_add(1);
    Task task;
    task.conn = conn;
    task.req = std::move(req);
    Enqueue(conn->worker, std::move(task));
  }
  conn->rbuf.erase(0, conn->rbuf.size() - input.size());
  if (conn->shed.load()) conn->rbuf.clear();
}

void Server::ShedConn(const ConnPtr& conn, const Request& req, WireStatus ws,
                      const std::string& message) {
  conn->shed.store(true);
  {
    MutexLock lock(conn->mu);
    EncodeResponseFrame(ErrorResponseFor(req, ws, message), &conn->outbox);
    conn->close_after_flush = true;
  }
  TryFlush(conn);
}

void Server::HandleWritable(const ConnPtr& conn) { TryFlush(conn); }

void Server::TryFlush(const ConnPtr& conn) {
  if (conn->closed.load()) return;
  bool close_now = false;
  bool want_write = false;
  {
    MutexLock lock(conn->mu);
    while (!conn->outbox.empty()) {
      const ssize_t wrote = write(conn->fd, conn->outbox.data(),
                                  conn->outbox.size());
      if (wrote > 0) {
        bytes_out_->Add(static_cast<uint64_t>(wrote));
        conn->outbox.erase(0, static_cast<size_t>(wrote));
        continue;
      }
      if (wrote < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        want_write = true;
        break;
      }
      if (wrote < 0 && errno == EINTR) continue;
      close_now = true;  // Peer is gone; drop the rest.
      break;
    }
    if (conn->outbox.empty() && conn->close_after_flush) close_now = true;
  }
  if (close_now) {
    CloseConn(conn);
    return;
  }
  ArmWrite(conn, want_write);
}

void Server::ArmWrite(const ConnPtr& conn, bool enable) {
  epoll_event ev{};
  ev.events = EPOLLIN | (enable ? EPOLLOUT : 0u);
  ev.data.fd = conn->fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev) < 0 &&
      errno != ENOENT && errno != EBADF) {
    ODE_LOG_ERROR << "ode_server epoll_ctl(mod): " << std::strerror(errno);
  }
}

void Server::CloseConn(const ConnPtr& conn) {
  if (conn->closed.exchange(true)) return;
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  close(conn->fd);
  conns_.erase(conn->fd);
  closed_count_->Increment();
  open_gauge_->Add(-1);
  open_conns_.fetch_sub(1);
  // The session (cursors, possibly an open transaction) dies on its own
  // worker thread, after any requests already queued for it.
  Task task;
  task.conn = conn;
  task.teardown = true;
  Enqueue(conn->worker, std::move(task));
}

// ---------------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------------

void Server::Enqueue(size_t worker, Task task) {
  Worker& w = *workers_[worker];
  {
    MutexLock lock(w.mu);
    w.queue.push_back(std::move(task));
  }
  w.cv.NotifyOne();
}

void Server::WorkerLoop(size_t index) {
  Worker& w = *workers_[index];
  while (true) {
    Task task;
    bool draining = false;
    {
      MutexLock lock(w.mu);
      while (w.queue.empty() && !w.stop) w.cv.Wait(w.mu);
      draining = w.stop;
      if (w.queue.empty()) {
        // Drain mode with an empty queue: unpark anything still deferred
        // behind a transaction and answer it below.
        if (w.parked.empty()) break;
        w.queue.insert(w.queue.end(),
                       std::make_move_iterator(w.parked.begin()),
                       std::make_move_iterator(w.parked.end()));
        w.parked.clear();
      }
      task = std::move(w.queue.front());
      w.queue.pop_front();
    }

    if (task.teardown) {
      if (w.txn_owner == task.conn.get()) {
        w.txn_owner = nullptr;
        // Whatever was parked behind the transaction can run now.
        MutexLock lock(w.mu);
        w.queue.insert(w.queue.begin(),
                       std::make_move_iterator(w.parked.begin()),
                       std::make_move_iterator(w.parked.end()));
        w.parked.clear();
      }
      dispatcher_->CloseSession(task.conn->session);
      continue;
    }

    // Transaction gate: while one session holds the (thread-affine)
    // transaction, other sessions' tasks must not run on this thread — they
    // would join the foreign transaction through the thread-local txn
    // registry.  Park them; they resume the moment the transaction ends.
    if (w.txn_owner != nullptr && task.conn.get() != w.txn_owner &&
        !draining) {
      w.parked.push_back(std::move(task));
      continue;
    }

    Response resp;
    if (draining) {
      resp = ErrorResponseFor(task.req, WireStatus::kShuttingDown,
                              "server stopping");
    } else {
      resp = dispatcher_->Dispatch(task.req, task.conn->session);
      if (task.conn->session.in_txn()) {
        w.txn_owner = task.conn.get();
      } else if (w.txn_owner == task.conn.get()) {
        w.txn_owner = nullptr;
        MutexLock lock(w.mu);
        w.queue.insert(w.queue.begin(),
                       std::make_move_iterator(w.parked.begin()),
                       std::make_move_iterator(w.parked.end()));
        w.parked.clear();
      }
    }
    task.conn->pending.fetch_sub(1);
    PushResponse(task.conn, resp);
  }
}

void Server::PushResponse(const ConnPtr& conn, const Response& resp) {
  std::string encoded;
  EncodeResponseFrame(resp, &encoded);
  {
    MutexLock lock(conn->mu);
    if (conn->outbox.size() + encoded.size() > options_.max_outbox_bytes &&
        !conn->close_after_flush) {
      // Slow consumer: it requested more than it is reading.  Replace the
      // overflowing response with a typed shed error and close after the
      // buffered bytes drain.
      shed_slow_consumer_->Increment();
      conn->shed.store(true);
      conn->close_after_flush = true;
      Request as_requested;
      as_requested.op = resp.op;
      as_requested.request_id = resp.request_id;
      EncodeResponseFrame(
          ErrorResponseFor(as_requested, WireStatus::kBackpressure,
                           "outbox cap (" +
                               std::to_string(options_.max_outbox_bytes) +
                               " bytes) exceeded; read faster"),
          &conn->outbox);
    } else {
      conn->outbox.append(encoded);
    }
  }
  {
    MutexLock lock(dirty_mu_);
    dirty_.push_back(conn);
  }
  WakeIo();
}

void Server::WakeIo() {
  if (wake_fd_ < 0) return;
  const uint64_t one = 1;
  // A full eventfd counter already guarantees a wakeup; nothing to handle.
  ssize_t ignored = write(wake_fd_, &one, sizeof(one));
  (void)ignored;
}

}  // namespace net
}  // namespace ode
