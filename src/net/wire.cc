#include "net/wire.h"

#include "util/coding.h"

namespace ode {
namespace net {

namespace {

/// Every opcode this protocol version understands, for IsKnownOpCode.
constexpr uint8_t kMinOpCode = static_cast<uint8_t>(OpCode::kPing);
constexpr uint8_t kMaxOpCode = static_cast<uint8_t>(OpCode::kStats);

Status Truncated(const char* what) {
  return Status::InvalidArgument(std::string("wire: truncated ") + what);
}

/// Shared request/response prefix: version, opcode, request id.  Leaves
/// *input positioned at the status byte (responses) or body (requests).
Status DecodePrefix(Slice* input, OpCode* op, uint64_t* request_id) {
  if (input->size() < kFrameMinPayload) {
    return Status::InvalidArgument("wire: frame shorter than header");
  }
  const uint8_t version = static_cast<uint8_t>((*input)[0]);
  const uint8_t opcode = static_cast<uint8_t>((*input)[1]);
  input->remove_prefix(2);
  if (version != kWireVersion) {
    return Status::InvalidArgument("wire: unsupported protocol version " +
                                   std::to_string(version));
  }
  if (!IsKnownOpCode(opcode)) {
    return Status::InvalidArgument("wire: unknown opcode " +
                                   std::to_string(opcode));
  }
  uint64_t id = 0;
  if (!GetFixed64(input, &id)) return Truncated("request id");
  *op = static_cast<OpCode>(opcode);
  *request_id = id;
  return Status::OK();
}

void PutPrefix(std::string* out, OpCode op, uint64_t request_id) {
  out->push_back(static_cast<char>(kWireVersion));
  out->push_back(static_cast<char>(op));
  PutFixed64(out, request_id);
}

/// The decoded body must end exactly at the frame boundary: a frame with
/// trailing bytes is malformed (torn pipelining, host bug, or hostile).
Status RequireExhausted(const Slice& input) {
  if (!input.empty()) {
    return Status::InvalidArgument("wire: " + std::to_string(input.size()) +
                                   " trailing bytes after message body");
  }
  return Status::OK();
}

Status GetCount(Slice* input, uint32_t* count, const char* what) {
  if (!GetVarint32(input, count)) return Truncated(what);
  if (*count > kMaxBatchItems) {
    return Status::InvalidArgument("wire: " + std::string(what) + " count " +
                                   std::to_string(*count) + " exceeds cap " +
                                   std::to_string(kMaxBatchItems));
  }
  return Status::OK();
}

Status GetString(Slice* input, std::string* out, const char* what) {
  Slice s;
  if (!GetLengthPrefixedSlice(input, &s)) return Truncated(what);
  out->assign(s.data(), s.size());
  return Status::OK();
}

bool IsKnownWireStatus(uint8_t v) {
  return v <= static_cast<uint8_t>(WireStatus::kInternal) ||
         (v >= static_cast<uint8_t>(WireStatus::kProtocolError) &&
          v <= static_cast<uint8_t>(WireStatus::kShuttingDown));
}

}  // namespace

std::string_view OpCodeName(OpCode op) {
  switch (op) {
    case OpCode::kPing: return "ping";
    case OpCode::kPnew: return "pnew";
    case OpCode::kNewVersionOf: return "newversion-of";
    case OpCode::kNewVersionFrom: return "newversion-from";
    case OpCode::kUpdateLatest: return "update-latest";
    case OpCode::kUpdateVersion: return "update-version";
    case OpCode::kDerefLatest: return "deref-latest";
    case OpCode::kDerefVersion: return "deref-version";
    case OpCode::kDerefBatch: return "deref-batch";
    case OpCode::kDeleteObject: return "delete-object";
    case OpCode::kDeleteVersion: return "delete-version";
    case OpCode::kLatest: return "latest";
    case OpCode::kVersionsOf: return "versions-of";
    case OpCode::kRegisterType: return "register-type";
    case OpCode::kLookupType: return "lookup-type";
    case OpCode::kCursorOpen: return "cursor-open";
    case OpCode::kCursorNext: return "cursor-next";
    case OpCode::kCursorClose: return "cursor-close";
    case OpCode::kTxnBegin: return "txn-begin";
    case OpCode::kTxnCommit: return "txn-commit";
    case OpCode::kTxnAbort: return "txn-abort";
    case OpCode::kStats: return "stats";
  }
  return "?";
}

bool IsKnownOpCode(uint8_t op) {
  return op >= kMinOpCode && op <= kMaxOpCode;
}

WireStatus ToWireStatus(StatusCode code) {
  // The first 11 values correspond numerically (pinned by
  // tests/net/wire_enum_test.cc), so the cast IS the mapping.
  return static_cast<WireStatus>(static_cast<uint8_t>(code));
}

Status FromWireStatus(WireStatus ws, std::string message) {
  switch (ws) {
    case WireStatus::kOk:
      return Status::OK();
    case WireStatus::kProtocolError:
      return Status::InvalidArgument("protocol error: " + message);
    case WireStatus::kBackpressure:
      return Status::Aborted("server backpressure: " + message);
    case WireStatus::kShuttingDown:
      return Status::FailedPrecondition("server shutting down: " + message);
    default:
      return Status(static_cast<StatusCode>(ws), std::move(message));
  }
}

Response ResponseFor(const Request& req) {
  Response resp;
  resp.op = req.op;
  resp.request_id = req.request_id;
  resp.status = WireStatus::kOk;
  return resp;
}

Response ErrorResponseFor(const Request& req, WireStatus ws,
                          std::string message) {
  Response resp = ResponseFor(req);
  resp.status = ws;
  resp.message = std::move(message);
  return resp;
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

namespace {

void EncodeRequestBody(const Request& req, std::string* out) {
  switch (req.op) {
    case OpCode::kPing:
    case OpCode::kTxnBegin:
    case OpCode::kTxnCommit:
    case OpCode::kTxnAbort:
    case OpCode::kStats:
      break;
    case OpCode::kPnew:
      PutVarint32(out, req.type_id);
      PutLengthPrefixedSlice(out, Slice(req.payload));
      break;
    case OpCode::kNewVersionOf:
    case OpCode::kDerefLatest:
    case OpCode::kDeleteObject:
    case OpCode::kLatest:
    case OpCode::kVersionsOf:
      PutFixed64(out, req.oid);
      break;
    case OpCode::kNewVersionFrom:
    case OpCode::kDerefVersion:
    case OpCode::kDeleteVersion:
      PutFixed64(out, req.oid);
      PutVarint32(out, req.vnum);
      break;
    case OpCode::kUpdateLatest:
      PutFixed64(out, req.oid);
      PutLengthPrefixedSlice(out, Slice(req.payload));
      break;
    case OpCode::kUpdateVersion:
      PutFixed64(out, req.oid);
      PutVarint32(out, req.vnum);
      PutLengthPrefixedSlice(out, Slice(req.payload));
      break;
    case OpCode::kDerefBatch:
      PutVarint32(out, static_cast<uint32_t>(req.batch.size()));
      for (const DerefItem& item : req.batch) {
        PutFixed64(out, item.oid);
        PutVarint32(out, item.vnum);
      }
      break;
    case OpCode::kRegisterType:
    case OpCode::kLookupType:
      PutLengthPrefixedSlice(out, Slice(req.payload));
      break;
    case OpCode::kCursorOpen:
      out->push_back(static_cast<char>(req.cursor_kind));
      PutFixed64(out, req.cursor_arg);
      break;
    case OpCode::kCursorNext:
      PutFixed64(out, req.cursor_id);
      PutVarint32(out, req.max_entries);
      break;
    case OpCode::kCursorClose:
      PutFixed64(out, req.cursor_id);
      break;
  }
}

void EncodeResponseBody(const Response& resp, std::string* out) {
  switch (resp.op) {
    case OpCode::kPing:
    case OpCode::kUpdateLatest:
    case OpCode::kUpdateVersion:
    case OpCode::kDeleteObject:
    case OpCode::kDeleteVersion:
    case OpCode::kCursorClose:
    case OpCode::kTxnBegin:
    case OpCode::kTxnCommit:
    case OpCode::kTxnAbort:
      break;
    case OpCode::kPnew:
    case OpCode::kNewVersionOf:
    case OpCode::kNewVersionFrom:
    case OpCode::kLatest:
      PutFixed64(out, resp.oid);
      PutVarint32(out, resp.vnum);
      break;
    case OpCode::kDerefLatest:
      PutFixed64(out, resp.oid);
      PutVarint32(out, resp.vnum);
      PutLengthPrefixedSlice(out, Slice(resp.payload));
      break;
    case OpCode::kDerefVersion:
      PutLengthPrefixedSlice(out, Slice(resp.payload));
      break;
    case OpCode::kDerefBatch:
      PutVarint32(out, static_cast<uint32_t>(resp.batch.size()));
      for (const DerefResult& item : resp.batch) {
        out->push_back(static_cast<char>(item.status));
        if (item.status == WireStatus::kOk) {
          PutFixed64(out, item.oid);
          PutVarint32(out, item.vnum);
          PutLengthPrefixedSlice(out, Slice(item.payload));
        }
      }
      break;
    case OpCode::kVersionsOf:
      PutVarint32(out, static_cast<uint32_t>(resp.vnums.size()));
      for (uint32_t vnum : resp.vnums) PutVarint32(out, vnum);
      break;
    case OpCode::kRegisterType:
      PutVarint32(out, resp.type_id);
      break;
    case OpCode::kLookupType:
      out->push_back(resp.found ? 1 : 0);
      PutVarint32(out, resp.type_id);
      break;
    case OpCode::kCursorOpen:
      PutFixed64(out, resp.cursor_id);
      break;
    case OpCode::kCursorNext:
      out->push_back(resp.done ? 1 : 0);
      PutVarint32(out, static_cast<uint32_t>(resp.entries.size()));
      for (const CursorEntry& e : resp.entries) {
        PutFixed64(out, e.a);
        PutVarint32(out, e.b);
        PutVarint32(out, e.c);
        PutLengthPrefixedSlice(out, Slice(e.s));
      }
      break;
    case OpCode::kStats:
      PutLengthPrefixedSlice(out, Slice(resp.payload));
      break;
  }
}

/// Wraps `payload` (already holding version..body) in the length prefix.
void AppendFrame(std::string* out, const std::string& payload) {
  PutFixed32(out, static_cast<uint32_t>(payload.size()));
  out->append(payload);
}

}  // namespace

void EncodeRequestFrame(const Request& req, std::string* out) {
  std::string payload;
  PutPrefix(&payload, req.op, req.request_id);
  EncodeRequestBody(req, &payload);
  AppendFrame(out, payload);
}

void EncodeResponseFrame(const Response& resp, std::string* out) {
  std::string payload;
  PutPrefix(&payload, resp.op, resp.request_id);
  payload.push_back(static_cast<char>(resp.status));
  PutLengthPrefixedSlice(&payload, Slice(resp.message));
  if (resp.status == WireStatus::kOk) EncodeResponseBody(resp, &payload);
  AppendFrame(out, payload);
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

FrameResult ExtractFrame(Slice* input, Slice* frame, size_t max_frame_bytes,
                         std::string* error) {
  if (input->size() < kFrameLenBytes) return FrameResult::kNeedMore;
  const uint32_t len = DecodeFixed32(input->data());
  if (len < kFrameMinPayload) {
    *error = "frame length " + std::to_string(len) + " below minimum " +
             std::to_string(kFrameMinPayload);
    return FrameResult::kError;
  }
  if (len > max_frame_bytes) {
    *error = "frame length " + std::to_string(len) + " exceeds cap " +
             std::to_string(max_frame_bytes);
    return FrameResult::kError;
  }
  if (input->size() < kFrameLenBytes + len) return FrameResult::kNeedMore;
  *frame = Slice(input->data() + kFrameLenBytes, len);
  input->remove_prefix(kFrameLenBytes + len);
  return FrameResult::kFrame;
}

Status DecodeRequest(const Slice& frame, Request* out) {
  Slice input = frame;
  Request req;
  ODE_RETURN_IF_ERROR(DecodePrefix(&input, &req.op, &req.request_id));
  switch (req.op) {
    case OpCode::kPing:
    case OpCode::kTxnBegin:
    case OpCode::kTxnCommit:
    case OpCode::kTxnAbort:
    case OpCode::kStats:
      break;
    case OpCode::kPnew:
      if (!GetVarint32(&input, &req.type_id)) return Truncated("type id");
      ODE_RETURN_IF_ERROR(GetString(&input, &req.payload, "payload"));
      break;
    case OpCode::kNewVersionOf:
    case OpCode::kDerefLatest:
    case OpCode::kDeleteObject:
    case OpCode::kLatest:
    case OpCode::kVersionsOf:
      if (!GetFixed64(&input, &req.oid)) return Truncated("object id");
      break;
    case OpCode::kNewVersionFrom:
    case OpCode::kDerefVersion:
    case OpCode::kDeleteVersion:
      if (!GetFixed64(&input, &req.oid)) return Truncated("object id");
      if (!GetVarint32(&input, &req.vnum)) return Truncated("version number");
      break;
    case OpCode::kUpdateLatest:
      if (!GetFixed64(&input, &req.oid)) return Truncated("object id");
      ODE_RETURN_IF_ERROR(GetString(&input, &req.payload, "payload"));
      break;
    case OpCode::kUpdateVersion:
      if (!GetFixed64(&input, &req.oid)) return Truncated("object id");
      if (!GetVarint32(&input, &req.vnum)) return Truncated("version number");
      ODE_RETURN_IF_ERROR(GetString(&input, &req.payload, "payload"));
      break;
    case OpCode::kDerefBatch: {
      uint32_t count = 0;
      ODE_RETURN_IF_ERROR(GetCount(&input, &count, "deref batch"));
      req.batch.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        DerefItem item;
        if (!GetFixed64(&input, &item.oid)) return Truncated("batch item oid");
        if (!GetVarint32(&input, &item.vnum)) {
          return Truncated("batch item vnum");
        }
        req.batch.push_back(item);
      }
      break;
    }
    case OpCode::kRegisterType:
    case OpCode::kLookupType:
      ODE_RETURN_IF_ERROR(GetString(&input, &req.payload, "type name"));
      break;
    case OpCode::kCursorOpen: {
      if (input.empty()) return Truncated("cursor kind");
      req.cursor_kind = static_cast<uint8_t>(input[0]);
      input.remove_prefix(1);
      if (req.cursor_kind > static_cast<uint8_t>(CursorKind::kCluster)) {
        return Status::InvalidArgument("wire: unknown cursor kind " +
                                       std::to_string(req.cursor_kind));
      }
      if (!GetFixed64(&input, &req.cursor_arg)) {
        return Truncated("cursor argument");
      }
      break;
    }
    case OpCode::kCursorNext:
      if (!GetFixed64(&input, &req.cursor_id)) return Truncated("cursor id");
      if (!GetVarint32(&input, &req.max_entries)) {
        return Truncated("cursor batch bound");
      }
      if (req.max_entries == 0 || req.max_entries > kMaxBatchItems) {
        return Status::InvalidArgument(
            "wire: cursor batch bound " + std::to_string(req.max_entries) +
            " outside [1, " + std::to_string(kMaxBatchItems) + "]");
      }
      break;
    case OpCode::kCursorClose:
      if (!GetFixed64(&input, &req.cursor_id)) return Truncated("cursor id");
      break;
  }
  ODE_RETURN_IF_ERROR(RequireExhausted(input));
  *out = std::move(req);
  return Status::OK();
}

Status DecodeResponse(const Slice& frame, Response* out) {
  Slice input = frame;
  Response resp;
  ODE_RETURN_IF_ERROR(DecodePrefix(&input, &resp.op, &resp.request_id));
  if (input.empty()) return Truncated("status byte");
  const uint8_t status = static_cast<uint8_t>(input[0]);
  input.remove_prefix(1);
  if (!IsKnownWireStatus(status)) {
    return Status::InvalidArgument("wire: unknown status code " +
                                   std::to_string(status));
  }
  resp.status = static_cast<WireStatus>(status);
  ODE_RETURN_IF_ERROR(GetString(&input, &resp.message, "status message"));
  if (resp.status != WireStatus::kOk) {
    ODE_RETURN_IF_ERROR(RequireExhausted(input));
    *out = std::move(resp);
    return Status::OK();
  }
  switch (resp.op) {
    case OpCode::kPing:
    case OpCode::kUpdateLatest:
    case OpCode::kUpdateVersion:
    case OpCode::kDeleteObject:
    case OpCode::kDeleteVersion:
    case OpCode::kCursorClose:
    case OpCode::kTxnBegin:
    case OpCode::kTxnCommit:
    case OpCode::kTxnAbort:
      break;
    case OpCode::kPnew:
    case OpCode::kNewVersionOf:
    case OpCode::kNewVersionFrom:
    case OpCode::kLatest:
      if (!GetFixed64(&input, &resp.oid)) return Truncated("result oid");
      if (!GetVarint32(&input, &resp.vnum)) return Truncated("result vnum");
      break;
    case OpCode::kDerefLatest:
      if (!GetFixed64(&input, &resp.oid)) return Truncated("result oid");
      if (!GetVarint32(&input, &resp.vnum)) return Truncated("result vnum");
      ODE_RETURN_IF_ERROR(GetString(&input, &resp.payload, "payload"));
      break;
    case OpCode::kDerefVersion:
      ODE_RETURN_IF_ERROR(GetString(&input, &resp.payload, "payload"));
      break;
    case OpCode::kDerefBatch: {
      uint32_t count = 0;
      ODE_RETURN_IF_ERROR(GetCount(&input, &count, "deref batch"));
      resp.batch.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        DerefResult item;
        if (input.empty()) return Truncated("batch item status");
        const uint8_t item_status = static_cast<uint8_t>(input[0]);
        input.remove_prefix(1);
        if (!IsKnownWireStatus(item_status)) {
          return Status::InvalidArgument("wire: unknown batch item status " +
                                         std::to_string(item_status));
        }
        item.status = static_cast<WireStatus>(item_status);
        if (item.status == WireStatus::kOk) {
          if (!GetFixed64(&input, &item.oid)) {
            return Truncated("batch item oid");
          }
          if (!GetVarint32(&input, &item.vnum)) {
            return Truncated("batch item vnum");
          }
          ODE_RETURN_IF_ERROR(
              GetString(&input, &item.payload, "batch item payload"));
        }
        resp.batch.push_back(std::move(item));
      }
      break;
    }
    case OpCode::kVersionsOf: {
      uint32_t count = 0;
      ODE_RETURN_IF_ERROR(GetCount(&input, &count, "version list"));
      resp.vnums.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        uint32_t vnum = 0;
        if (!GetVarint32(&input, &vnum)) return Truncated("version number");
        resp.vnums.push_back(vnum);
      }
      break;
    }
    case OpCode::kRegisterType:
      if (!GetVarint32(&input, &resp.type_id)) return Truncated("type id");
      break;
    case OpCode::kLookupType:
      if (input.empty()) return Truncated("found flag");
      resp.found = input[0] != 0;
      input.remove_prefix(1);
      if (!GetVarint32(&input, &resp.type_id)) return Truncated("type id");
      break;
    case OpCode::kCursorOpen:
      if (!GetFixed64(&input, &resp.cursor_id)) return Truncated("cursor id");
      break;
    case OpCode::kCursorNext: {
      if (input.empty()) return Truncated("done flag");
      resp.done = input[0] != 0;
      input.remove_prefix(1);
      uint32_t count = 0;
      ODE_RETURN_IF_ERROR(GetCount(&input, &count, "cursor batch"));
      resp.entries.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        CursorEntry e;
        if (!GetFixed64(&input, &e.a)) return Truncated("cursor entry");
        if (!GetVarint32(&input, &e.b)) return Truncated("cursor entry");
        if (!GetVarint32(&input, &e.c)) return Truncated("cursor entry");
        ODE_RETURN_IF_ERROR(GetString(&input, &e.s, "cursor entry string"));
        resp.entries.push_back(std::move(e));
      }
      break;
    }
    case OpCode::kStats:
      ODE_RETURN_IF_ERROR(GetString(&input, &resp.payload, "stats document"));
      break;
  }
  ODE_RETURN_IF_ERROR(RequireExhausted(input));
  *out = std::move(resp);
  return Status::OK();
}

}  // namespace net
}  // namespace ode
