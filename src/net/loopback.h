#ifndef ODE_NET_LOOPBACK_H_
#define ODE_NET_LOOPBACK_H_

#include <string>

#include "net/dispatcher.h"
#include "net/wire.h"
#include "util/slice.h"
#include "util/status.h"

namespace ode {
namespace net {

/// In-process transport: byte-identical to a socket connection — same
/// framing, same codec, same Dispatcher, same Session semantics — minus the
/// kernel.  Two jobs:
///
///  1. Tests drive the full wire path (including garbage) without ports.
///  2. Embedders get the unified request/response surface locally, so code
///     written against the protocol runs unchanged in- or out-of-process.
///
/// Single-threaded, like the connection it stands in for.
class LoopbackTransport {
 public:
  explicit LoopbackTransport(Database& db,
                             size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : dispatcher_(db), max_frame_bytes_(max_frame_bytes) {}

  ~LoopbackTransport() { dispatcher_.CloseSession(session_); }

  LoopbackTransport(const LoopbackTransport&) = delete;
  LoopbackTransport& operator=(const LoopbackTransport&) = delete;

  /// Feeds `bytes` (any split of any number of pipelined request frames)
  /// into the connection, appending every completed response frame to
  /// *responses.  Returns non-OK exactly when a server would close the
  /// connection: unrecoverable framing (bad length prefix) or an
  /// undecodable request — in both cases a kProtocolError response frame is
  /// appended first (request id 0 when the frame was too broken to tell),
  /// matching the server's answer-then-close behavior.  After an error the
  /// transport is dead: further Feed calls return FailedPrecondition.
  Status Feed(const Slice& bytes, std::string* responses) {
    if (dead_) {
      return Status::FailedPrecondition("loopback connection already closed");
    }
    buffer_.append(bytes.data(), bytes.size());
    Slice input(buffer_);
    while (true) {
      Slice frame;
      std::string frame_error;
      const FrameResult r =
          ExtractFrame(&input, &frame, max_frame_bytes_, &frame_error);
      if (r == FrameResult::kNeedMore) break;
      if (r == FrameResult::kError) {
        Request broken;  // id 0: the frame never yielded one.
        EncodeResponseFrame(ErrorResponseFor(broken, WireStatus::kProtocolError,
                                             frame_error),
                            responses);
        return Close(Status::InvalidArgument("wire: " + frame_error));
      }
      Request req;
      Status decoded = DecodeRequest(frame, &req);
      if (!decoded.ok()) {
        EncodeResponseFrame(ErrorResponseFor(req, WireStatus::kProtocolError,
                                             decoded.message()),
                            responses);
        return Close(decoded);
      }
      EncodeResponseFrame(dispatcher_.Dispatch(req, session_), responses);
    }
    // Keep only the unconsumed tail (a partial frame, if any).
    buffer_.erase(0, buffer_.size() - input.size());
    return Status::OK();
  }

  /// Convenience: one decoded request in, one decoded response out (skips
  /// the byte stream but still round-trips through the codec, so every
  /// field crosses the wire format).
  Response Call(const Request& req) {
    std::string in;
    std::string out;
    EncodeRequestFrame(req, &in);
    Response resp;
    if (Status fed = Feed(Slice(in), &out); !fed.ok()) {
      return ErrorResponseFor(req, WireStatus::kProtocolError, fed.message());
    }
    Slice stream(out);
    Slice frame;
    std::string frame_error;
    if (ExtractFrame(&stream, &frame, max_frame_bytes_, &frame_error) !=
            FrameResult::kFrame ||
        !DecodeResponse(frame, &resp).ok()) {
      return ErrorResponseFor(req, WireStatus::kInternal,
                              "loopback produced an undecodable response");
    }
    return resp;
  }

  Session& session() { return session_; }
  Dispatcher& dispatcher() { return dispatcher_; }
  bool dead() const { return dead_; }

 private:
  Status Close(Status why) {
    dead_ = true;
    dispatcher_.CloseSession(session_);
    return why;
  }

  Dispatcher dispatcher_;
  Session session_;
  std::string buffer_;
  size_t max_frame_bytes_;
  bool dead_ = false;
};

}  // namespace net
}  // namespace ode

#endif  // ODE_NET_LOOPBACK_H_
