#ifndef ODE_NET_DISPATCHER_H_
#define ODE_NET_DISPATCHER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <variant>

#include "core/cursor.h"
#include "core/database.h"
#include "net/wire.h"
#include "util/metrics.h"

namespace ode {
namespace net {

/// Per-connection server-side state: the cursors a session has open, and
/// whether it holds the (database-wide, session-exclusive) transaction.
///
/// A Session is single-threaded BY CONTRACT: the server pins each connection
/// to one worker thread (src/net/server.cc), the loopback transport runs on
/// its caller's thread.  This matters twice over — catalog cursors are
/// single-threaded objects, and Database transactions are thread-affine
/// (Begin/operations/Commit must share a thread), so session->thread
/// affinity is exactly what makes txn-over-the-wire sound.
class Session {
 public:
  /// Open cursors per session are bounded: a client that opens cursors in a
  /// loop without closing them is a resource leak, not a workload.
  static constexpr size_t kMaxCursors = 64;

  Session() = default;
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  bool in_txn() const { return in_txn_; }

  /// Requests this session has had dispatched / answered with an error.
  uint64_t requests = 0;
  uint64_t errors = 0;

 private:
  friend class Dispatcher;

  using AnyCursor =
      std::variant<std::unique_ptr<ObjectCursor>, std::unique_ptr<VersionCursor>,
                   std::unique_ptr<TypeCursor>, std::unique_ptr<ClusterCursor>>;

  std::map<uint64_t, AnyCursor> cursors_;
  uint64_t next_cursor_id_ = 1;
  bool in_txn_ = false;
};

/// The single entry point mapping decoded wire requests onto the Database
/// API.  The network server, the in-process loopback transport, and any
/// future replica-replay path all dispatch through this class — there is
/// deliberately no second door into Database for remote operations, so the
/// wire surface can't drift from what a local caller would get.
///
/// Thread model: Dispatch() may be called concurrently from many threads
/// with DIFFERENT sessions (the Database itself is multi-reader /
/// multi-writer); calls sharing one Session must be externally serialized
/// and, while that session holds a transaction, must stay on one thread
/// (see Session).  The dispatcher itself keeps no per-request mutable state.
class Dispatcher {
 public:
  explicit Dispatcher(Database& db);

  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  /// Executes `req` against the database, using and mutating `session`.
  /// Never fails at the C++ level: every outcome, including invalid
  /// requests, comes back as a Response carrying a WireStatus.
  Response Dispatch(const Request& req, Session& session);

  /// Tears a session down: aborts its open transaction (if any) and drops
  /// its cursors.  Must run on the session's thread (transaction affinity).
  /// Called by the server when a connection closes; safe to call twice.
  void CloseSession(Session& session);

  Database& db() { return *db_; }

 private:
  Response DoCursorOpen(const Request& req, Session& session);
  Response DoCursorNext(const Request& req, Session& session);

  Database* db_;

  /// Dispatcher-level instruments (in the database's registry, so `odedump
  /// stats`/`ode_top`/METRICS.json see server traffic with zero extra
  /// wiring).  Latency histograms are split by op family: fine-grained
  /// enough to see "derefs are fast, txns are slow", coarse enough to stay
  /// readable in a stats dump.
  Counter* requests_ = nullptr;
  Counter* request_errors_ = nullptr;
  Histogram* deref_ns_ = nullptr;   ///< kDeref* (incl. batch), kLatest.
  Histogram* mutate_ns_ = nullptr;  ///< kPnew/kNewVersion*/kUpdate*/kDelete*.
  Histogram* cursor_ns_ = nullptr;  ///< kCursor*.
  Histogram* txn_ns_ = nullptr;     ///< kTxn*.
  Histogram* admin_ns_ = nullptr;   ///< kPing/kStats/type ops/kVersionsOf.
};

}  // namespace net
}  // namespace ode

#endif  // ODE_NET_DISPATCHER_H_
