#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace ode {
namespace net {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

}  // namespace

StatusOr<std::unique_ptr<Client>> Client::Connect(const std::string& host,
                                                  uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  // ode_lint: allow(unchecked-cast) POSIX sockaddr idiom, sizeof-bounded.
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status s = Errno("connect " + host + ":" + std::to_string(port));
    close(fd);
    return s;
  }
  const int one = 1;
  // Request/response traffic; Nagle only delays small frames (best-effort).
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<Client>(new Client(fd));
}

Client::~Client() {
  if (fd_ >= 0) close(fd_);
}

Status Client::Send(Request& req, uint64_t* id) {
  req.request_id = next_id_++;
  if (id != nullptr) *id = req.request_id;
  EncodeRequestFrame(req, &wbuf_);
  return Status::OK();
}

Status Client::Flush() {
  size_t off = 0;
  while (off < wbuf_.size()) {
    const ssize_t wrote =
        write(fd_, wbuf_.data() + off, wbuf_.size() - off);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return Errno("write");
    }
    off += static_cast<size_t>(wrote);
  }
  wbuf_.clear();
  return Status::OK();
}

Status Client::Recv(Response* resp) {
  char buf[64 * 1024];
  while (true) {
    Slice input(rbuf_);
    Slice frame;
    std::string frame_error;
    const FrameResult r =
        ExtractFrame(&input, &frame, kDefaultMaxFrameBytes, &frame_error);
    if (r == FrameResult::kError) {
      return Status::InvalidArgument("server sent garbage: " + frame_error);
    }
    if (r == FrameResult::kFrame) {
      Status decoded = DecodeResponse(frame, resp);
      rbuf_.erase(0, rbuf_.size() - input.size());
      return decoded;
    }
    const ssize_t got = read(fd_, buf, sizeof(buf));
    if (got < 0) {
      if (errno == EINTR) continue;
      return Errno("read");
    }
    if (got == 0) {
      return Status::IOError("server closed the connection");
    }
    rbuf_.append(buf, static_cast<size_t>(got));
  }
}

Status Client::Call(Request& req, Response* resp) {
  ODE_RETURN_IF_ERROR(Send(req));
  ODE_RETURN_IF_ERROR(Flush());
  ODE_RETURN_IF_ERROR(Recv(resp));
  if (resp->request_id != req.request_id) {
    return Status::Internal(
        "response id " + std::to_string(resp->request_id) +
        " does not match request id " + std::to_string(req.request_id) +
        " (mixing Call with unconsumed pipelined Sends?)");
  }
  return Status::OK();
}

Status Client::SimpleCall(Request& req, Response* resp) {
  ODE_RETURN_IF_ERROR(Call(req, resp));
  if (resp->status != WireStatus::kOk) {
    return FromWireStatus(resp->status, resp->message);
  }
  return Status::OK();
}

Status Client::Ping() {
  Request req;
  req.op = OpCode::kPing;
  Response resp;
  return SimpleCall(req, &resp);
}

StatusOr<uint32_t> Client::RegisterType(const std::string& name) {
  Request req;
  req.op = OpCode::kRegisterType;
  req.payload = name;
  Response resp;
  ODE_RETURN_IF_ERROR(SimpleCall(req, &resp));
  return resp.type_id;
}

StatusOr<VersionId> Client::Pnew(uint32_t type_id, const std::string& payload) {
  Request req;
  req.op = OpCode::kPnew;
  req.type_id = type_id;
  req.payload = payload;
  Response resp;
  ODE_RETURN_IF_ERROR(SimpleCall(req, &resp));
  return VersionId{ObjectId{resp.oid}, resp.vnum};
}

StatusOr<VersionId> Client::NewVersionOf(ObjectId oid) {
  Request req;
  req.op = OpCode::kNewVersionOf;
  req.oid = oid.value;
  Response resp;
  ODE_RETURN_IF_ERROR(SimpleCall(req, &resp));
  return VersionId{ObjectId{resp.oid}, resp.vnum};
}

Status Client::UpdateLatest(ObjectId oid, const std::string& payload) {
  Request req;
  req.op = OpCode::kUpdateLatest;
  req.oid = oid.value;
  req.payload = payload;
  Response resp;
  return SimpleCall(req, &resp);
}

Status Client::UpdateVersion(VersionId vid, const std::string& payload) {
  Request req;
  req.op = OpCode::kUpdateVersion;
  req.oid = vid.oid.value;
  req.vnum = vid.vnum;
  req.payload = payload;
  Response resp;
  return SimpleCall(req, &resp);
}

StatusOr<std::string> Client::DerefLatest(ObjectId oid, VersionId* resolved) {
  Request req;
  req.op = OpCode::kDerefLatest;
  req.oid = oid.value;
  Response resp;
  ODE_RETURN_IF_ERROR(SimpleCall(req, &resp));
  if (resolved != nullptr) {
    *resolved = VersionId{ObjectId{resp.oid}, resp.vnum};
  }
  return std::move(resp.payload);
}

StatusOr<std::string> Client::DerefVersion(VersionId vid) {
  Request req;
  req.op = OpCode::kDerefVersion;
  req.oid = vid.oid.value;
  req.vnum = vid.vnum;
  Response resp;
  ODE_RETURN_IF_ERROR(SimpleCall(req, &resp));
  return std::move(resp.payload);
}

StatusOr<std::vector<DerefResult>> Client::DerefBatch(
    const std::vector<DerefItem>& items) {
  Request req;
  req.op = OpCode::kDerefBatch;
  req.batch = items;
  Response resp;
  ODE_RETURN_IF_ERROR(SimpleCall(req, &resp));
  return std::move(resp.batch);
}

Status Client::DeleteObject(ObjectId oid) {
  Request req;
  req.op = OpCode::kDeleteObject;
  req.oid = oid.value;
  Response resp;
  return SimpleCall(req, &resp);
}

StatusOr<std::vector<VersionNum>> Client::VersionsOf(ObjectId oid) {
  Request req;
  req.op = OpCode::kVersionsOf;
  req.oid = oid.value;
  Response resp;
  ODE_RETURN_IF_ERROR(SimpleCall(req, &resp));
  return std::move(resp.vnums);
}

Status Client::TxnBegin() {
  Request req;
  req.op = OpCode::kTxnBegin;
  Response resp;
  return SimpleCall(req, &resp);
}

Status Client::TxnCommit() {
  Request req;
  req.op = OpCode::kTxnCommit;
  Response resp;
  return SimpleCall(req, &resp);
}

Status Client::TxnAbort() {
  Request req;
  req.op = OpCode::kTxnAbort;
  Response resp;
  return SimpleCall(req, &resp);
}

StatusOr<std::string> Client::Stats() {
  Request req;
  req.op = OpCode::kStats;
  Response resp;
  ODE_RETURN_IF_ERROR(SimpleCall(req, &resp));
  return std::move(resp.payload);
}

}  // namespace net
}  // namespace ode
