#ifndef ODE_NET_WIRE_H_
#define ODE_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/ids.h"
#include "util/slice.h"
#include "util/status.h"

namespace ode {
namespace net {

// ---------------------------------------------------------------------------
// The Ode wire protocol, version 1
// ---------------------------------------------------------------------------
//
// Every message travels in one length-prefixed frame:
//
//   [u32 LE length][u8 version][u8 opcode][u64 LE request_id][body...]
//
// `length` counts everything after itself (version byte through body end).
// Requests and responses share the framing; a response echoes the request's
// opcode and request_id and inserts a status byte + detail message before
// the op-specific body.  All integers are little-endian fixed-width or
// LEB128 varints (util/coding.h) — the same codecs every on-disk structure
// uses, so the garbage-rejection discipline is identical: every decoder
// consumes from a Slice, fails loudly on truncation or overflow, and never
// reads past the frame.
//
// Compatibility contract: the numeric values of OpCode, WireStatus and
// CursorKind are FROZEN — they are the wire format.  Add new values at the
// end with explicit numbers; never renumber or reuse (enforced by
// tests/net/wire_enum_test.cc).

/// Protocol version stamped into every frame.  A peer speaking a different
/// version is rejected with kProtocolError before any body decoding.
inline constexpr uint8_t kWireVersion = 1;

/// Frame length prefix is a u32; `length` excludes the prefix itself.
inline constexpr size_t kFrameLenBytes = 4;
/// version + opcode + request_id: the smallest legal `length`.
inline constexpr size_t kFrameMinPayload = 1 + 1 + 8;

/// Default cap on one frame's `length`.  A length prefix above the
/// transport's configured cap is a protocol error (the peer is shed, not
/// buffered): this is the over-read guard for hostile length prefixes.
inline constexpr size_t kDefaultMaxFrameBytes = 16u << 20;

/// Cap on counted repetitions inside one message (batched-deref items,
/// cursor batch entries, version lists).  Bounds decoder allocation even
/// when the frame length itself is legal.
inline constexpr uint32_t kMaxBatchItems = 65536;

/// Operation selectors.  FROZEN numeric values (see above).
enum class OpCode : uint8_t {
  kPing = 1,            ///< Liveness probe; echoes.
  kPnew = 2,            ///< Create object (type_id, payload) -> VersionId.
  kNewVersionOf = 3,    ///< Derive from latest of oid -> VersionId.
  kNewVersionFrom = 4,  ///< Derive from specific (oid, vnum) -> VersionId.
  kUpdateLatest = 5,    ///< Replace latest payload of oid.
  kUpdateVersion = 6,   ///< Replace payload of (oid, vnum).
  kDerefLatest = 7,     ///< Generic dereference -> (resolved vid, payload).
  kDerefVersion = 8,    ///< Specific dereference -> payload.
  kDerefBatch = 9,      ///< Many derefs in one frame, per-item status.
  kDeleteObject = 10,   ///< pdelete(oid): object and all versions.
  kDeleteVersion = 11,  ///< pdelete(oid, vnum): splice one version.
  kLatest = 12,         ///< Resolve generic ref -> VersionId (no payload).
  kVersionsOf = 13,     ///< All live vnums of oid, temporal order.
  kRegisterType = 14,   ///< name -> type id (creating on first use).
  kLookupType = 15,     ///< name -> type id (never creates).
  kCursorOpen = 16,     ///< Open a server-side catalog cursor.
  kCursorNext = 17,     ///< Fetch the next batch of cursor entries.
  kCursorClose = 18,    ///< Drop a cursor (also implicit at disconnect).
  kTxnBegin = 19,       ///< Open the session-scoped transaction.
  kTxnCommit = 20,
  kTxnAbort = 21,
  kStats = 22,          ///< Server + database metrics as a JSON document.
};

/// Human-readable opcode name ("pnew", "cursor-next", ...); "?" if unknown.
std::string_view OpCodeName(OpCode op);

/// True if `op` is a value this protocol version understands.
bool IsKnownOpCode(uint8_t op);

/// Outcome codes on the wire.  Values 0..10 mirror ode::StatusCode one to
/// one (frozen on both sides; wire_enum_test.cc pins the correspondence).
/// Values >= 32 are transport-level conditions that have no library-Status
/// origin.  FROZEN numeric values.
enum class WireStatus : uint8_t {
  kOk = 0,
  kNotFound = 1,
  kCorruption = 2,
  kInvalidArgument = 3,
  kIOError = 4,
  kAlreadyExists = 5,
  kNotSupported = 6,
  kFailedPrecondition = 7,
  kAborted = 8,
  kOutOfRange = 9,
  kInternal = 10,
  /// Malformed frame: bad version, unknown opcode, truncated or oversized
  /// body, trailing garbage.  The server answers once, then closes.
  kProtocolError = 32,
  /// The client overran the server's pipeline or outbox bound and is being
  /// shed (DESIGN.md §4i).  Retry against a fresh connection, more slowly.
  kBackpressure = 33,
  /// The server is shutting down; in-flight requests get this, not silence.
  kShuttingDown = 34,
};

/// Library status -> wire code (exact for all 11 StatusCode values).
WireStatus ToWireStatus(StatusCode code);

/// Wire code -> client-side Status.  The net-only codes map onto library
/// categories a caller can dispatch on: kProtocolError -> kInvalidArgument,
/// kBackpressure -> kAborted (retryable), kShuttingDown ->
/// kFailedPrecondition; the message always carries the wire-level name.
Status FromWireStatus(WireStatus ws, std::string message);

/// Catalog cursor families a client can open.  FROZEN numeric values.
enum class CursorKind : uint8_t {
  kObjects = 0,   ///< Every object: entry {a=oid, b=latest, c=type_id}.
  kVersions = 1,  ///< Versions of `arg` oid: {a=oid, b=vnum, c=derived_from}.
  kTypes = 2,     ///< Registered types: {a=type_id, s=name}.
  kCluster = 3,   ///< Objects of type `arg`: {a=oid}.
};

/// One item of a batched dereference.  vnum == kNoVersion (0) means the
/// generic (latest) form; any other vnum is a specific dereference.
struct DerefItem {
  uint64_t oid = 0;
  uint32_t vnum = 0;
};

/// Decoded request: a tagged union in flat form — `op` selects which fields
/// are meaningful (the codec encodes exactly those, nothing else).
struct Request {
  OpCode op = OpCode::kPing;
  uint64_t request_id = 0;

  uint64_t oid = 0;          ///< Object operand.
  uint32_t vnum = 0;         ///< Version operand (specific forms).
  uint32_t type_id = 0;      ///< kPnew.
  std::string payload;       ///< Payload bytes, or the type name.
  std::vector<DerefItem> batch;  ///< kDerefBatch.
  uint8_t cursor_kind = 0;   ///< kCursorOpen (a CursorKind value).
  uint64_t cursor_arg = 0;   ///< kCursorOpen: oid / type id operand.
  uint64_t cursor_id = 0;    ///< kCursorNext / kCursorClose.
  uint32_t max_entries = 0;  ///< kCursorNext batch bound (1..kMaxBatchItems).
};

/// One entry of a cursor batch.  Field meaning depends on the CursorKind
/// (documented per kind above); unused fields encode as zero/empty.
struct CursorEntry {
  uint64_t a = 0;
  uint32_t b = 0;
  uint32_t c = 0;
  std::string s;
};

/// Per-item outcome of a batched dereference.
struct DerefResult {
  WireStatus status = WireStatus::kOk;
  uint64_t oid = 0;      ///< Resolved id (generic items report the vnum hit).
  uint32_t vnum = 0;
  std::string payload;   ///< Present when status == kOk.
};

/// Decoded response.  `op`/`request_id` echo the request; `status` gates the
/// body (a non-OK response encodes no op-specific fields, only `message`).
struct Response {
  OpCode op = OpCode::kPing;
  uint64_t request_id = 0;
  WireStatus status = WireStatus::kOk;
  std::string message;

  uint64_t oid = 0;       ///< Resolved VersionId (creation ops, kLatest...).
  uint32_t vnum = 0;
  uint32_t type_id = 0;   ///< kRegisterType / kLookupType.
  bool found = false;     ///< kLookupType.
  std::string payload;    ///< Dereference bytes / kStats JSON.
  std::vector<uint32_t> vnums;       ///< kVersionsOf.
  std::vector<DerefResult> batch;    ///< kDerefBatch.
  uint64_t cursor_id = 0;            ///< kCursorOpen.
  bool done = false;                 ///< kCursorNext: cursor exhausted.
  std::vector<CursorEntry> entries;  ///< kCursorNext.
};

/// Response skeleton echoing `req`'s opcode and id, status kOk.
Response ResponseFor(const Request& req);

/// Error-response helper: echoes `req`, carries (`ws`, `message`), no body.
Response ErrorResponseFor(const Request& req, WireStatus ws,
                          std::string message);

// -- Encoding ---------------------------------------------------------------

/// Appends one complete frame (length prefix included) to *out.
void EncodeRequestFrame(const Request& req, std::string* out);
void EncodeResponseFrame(const Response& resp, std::string* out);

// -- Decoding ---------------------------------------------------------------

/// Outcome of trying to slice one frame off a byte stream.
enum class FrameResult : uint8_t {
  kFrame,     ///< *frame holds one complete frame payload (length stripped).
  kNeedMore,  ///< The stream ends mid-frame; read more bytes and retry.
  kError,     ///< The stream is unrecoverable (oversized/undersized length).
};

/// Attempts to extract one frame from the front of `*input` (which aliases
/// the connection's receive buffer).  On kFrame, `*frame` aliases the frame
/// payload and `*input` advances past it.  On kNeedMore, `*input` is
/// unchanged.  On kError, `*error` names the violation; the connection
/// cannot be resynchronized and must be closed (a torn or hostile length
/// prefix poisons everything after it).
FrameResult ExtractFrame(Slice* input, Slice* frame, size_t max_frame_bytes,
                         std::string* error);

/// Decodes a frame payload (from ExtractFrame) as a request.  Rejects: bad
/// protocol version, unknown opcode, truncated body, oversized counts, and
/// trailing bytes after the body (every request shape is fixed, so trailing
/// garbage means a framing bug or an attack — never silently ignored).
Status DecodeRequest(const Slice& frame, Request* out);

/// Decodes a frame payload as a response (same strictness).
Status DecodeResponse(const Slice& frame, Response* out);

}  // namespace net
}  // namespace ode

#endif  // ODE_NET_WIRE_H_
