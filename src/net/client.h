#ifndef ODE_NET_CLIENT_H_
#define ODE_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/ids.h"
#include "net/wire.h"
#include "util/status.h"
#include "util/statusor.h"

namespace ode {
namespace net {

/// Blocking TCP client for ode_server.  Two usage styles over one socket:
///
///   Sync:      Response r; client->Call(req, &r);
///   Pipelined: client->Send(a); client->Send(b); client->Flush();
///              client->Recv(&ra); client->Recv(&rb);
///
/// Send() assigns monotonically increasing request ids; the server answers
/// strictly in order, so Recv() returns responses in Send() order.  Convenience
/// wrappers cover the common operations and translate wire errors back into
/// the same Status a local Database caller would see.
///
/// Not thread-safe: one Client per thread (open several for parallel load —
/// that is what bench_server does).
class Client {
 public:
  static StatusOr<std::unique_ptr<Client>> Connect(const std::string& host,
                                                   uint16_t port);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // -- Pipelined surface -----------------------------------------------------

  /// Stamps a fresh request id into `req` (reported back via *id if non-null)
  /// and buffers the encoded frame.  Nothing hits the socket until Flush().
  Status Send(Request& req, uint64_t* id = nullptr);
  /// Writes every buffered frame.
  Status Flush();
  /// Blocks for the next response frame.  Non-OK only for transport-level
  /// trouble (EOF, garbage from the server); application errors come back
  /// inside *resp as a WireStatus.
  Status Recv(Response* resp);

  // -- Sync surface ----------------------------------------------------------

  /// Send + Flush + Recv, checking that the response matches the request id.
  Status Call(Request& req, Response* resp);

  // -- Convenience wrappers (sync; wire errors become library Status) --------

  Status Ping();
  StatusOr<uint32_t> RegisterType(const std::string& name);
  StatusOr<VersionId> Pnew(uint32_t type_id, const std::string& payload);
  StatusOr<VersionId> NewVersionOf(ObjectId oid);
  Status UpdateLatest(ObjectId oid, const std::string& payload);
  Status UpdateVersion(VersionId vid, const std::string& payload);
  /// Returns the payload; *resolved (optional) receives the version the
  /// "latest" ref bound to.
  StatusOr<std::string> DerefLatest(ObjectId oid, VersionId* resolved = nullptr);
  StatusOr<std::string> DerefVersion(VersionId vid);
  /// One round trip, n answers (per-item status inside each DerefResult).
  StatusOr<std::vector<DerefResult>> DerefBatch(
      const std::vector<DerefItem>& items);
  Status DeleteObject(ObjectId oid);
  StatusOr<std::vector<VersionNum>> VersionsOf(ObjectId oid);
  Status TxnBegin();
  Status TxnCommit();
  Status TxnAbort();
  /// Server metrics snapshot as JSON (the same shape odedump stats prints).
  StatusOr<std::string> Stats();

  uint64_t requests_sent() const { return next_id_ - 1; }

  /// Test hook: replaces the buffered (unsent) bytes wholesale, letting
  /// protocol tests push deliberately hostile frames through Flush().
  void TestOnlyReplaceSendBuffer(std::string bytes) {
    wbuf_ = std::move(bytes);
  }

 private:
  explicit Client(int fd) : fd_(fd) {}

  /// Shared tail of the convenience wrappers: Call(), then lift a non-kOk
  /// WireStatus into the equivalent library Status.
  Status SimpleCall(Request& req, Response* resp);

  int fd_;
  uint64_t next_id_ = 1;
  std::string wbuf_;
  std::string rbuf_;
};

}  // namespace net
}  // namespace ode

#endif  // ODE_NET_CLIENT_H_
