#ifndef ODE_NET_SERVER_H_
#define ODE_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/database.h"
#include "net/dispatcher.h"
#include "net/wire.h"
#include "util/metrics.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/statusor.h"
#include "util/thread_annotations.h"

namespace ode {
namespace net {

/// Configuration of one ode_server instance.
struct ServerOptions {
  /// Address to bind.  Tests use 127.0.0.1 with port 0 (ephemeral; read the
  /// bound port back via Server::port()).
  std::string host = "127.0.0.1";
  uint16_t port = 0;

  /// Worker threads executing requests against the Database.  Legal: >= 1.
  /// Each connection is pinned to one worker for its whole life — that
  /// affinity is what makes sessions (cursors, transactions) sound, see
  /// Session.
  int workers = 4;

  /// Hard cap on one frame's length prefix; larger prefixes are a protocol
  /// error and the connection is closed (never buffered toward a hostile
  /// 4-GiB "frame").
  size_t max_frame_bytes = kDefaultMaxFrameBytes;

  /// Pipelining bound: unanswered requests one connection may have in
  /// flight.  The request that overflows the cap is answered with
  /// kBackpressure and the connection is shed.  Legal: >= 1.
  size_t max_pipeline = 256;

  /// Bound on one connection's buffered response bytes.  A client that
  /// stops reading while requesting more (the classic slow-consumer attack
  /// on a pipelined server) is shed with kBackpressure when its outbox
  /// would exceed this.  Legal: >= 1.
  size_t max_outbox_bytes = 32u << 20;

  /// listen(2) backlog.
  int listen_backlog = 128;

  /// Checks every knob; InvalidArgument naming the first bad field.
  Status Validate() const;
};

/// The Ode network front end: one epoll IO thread multiplexing every
/// connection, a pool of worker threads executing requests through the
/// shared Dispatcher, per-connection sessions pinned to workers.
///
/// Lifecycle: Start() binds/listens and spins up threads; Stop() (or the
/// destructor) sheds every connection — queued requests are answered with
/// kShuttingDown, open transactions aborted, buffered responses flushed
/// best-effort — then joins.  The Database must outlive the Server.
///
/// DESIGN.md §4i documents the threading and backpressure model.
class Server {
 public:
  static StatusOr<std::unique_ptr<Server>> Start(Database& db,
                                                 const ServerOptions& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Idempotent; blocks until every thread is joined.
  void Stop();

  /// The bound TCP port (the ephemeral pick when options.port was 0).
  uint16_t port() const { return port_; }

  /// Live connection count (also exported as gauge server.open_connections).
  uint64_t open_connections() const { return open_conns_.load(); }

 private:
  /// One accepted connection.  Field ownership is split by thread:
  /// `rbuf`/`bytes_in` belong to the IO thread, `session` to the pinned
  /// worker, the outbox to whoever holds `mu`.
  struct Conn {
    int fd = -1;
    uint64_t id = 0;
    size_t worker = 0;
    std::string rbuf;  ///< IO thread only.
    Session session;   ///< Pinned worker thread only.
    uint64_t bytes_in = 0;  ///< IO thread only.

    /// Requests handed to the worker and not yet answered.
    std::atomic<uint32_t> pending{0};
    /// Set once the connection stops accepting input (shed / EOF / error);
    /// the IO thread discards any buffered or future reads.
    std::atomic<bool> shed{false};
    /// Guards the close(2) + teardown-enqueue transition.
    std::atomic<bool> closed{false};

    Mutex mu;
    std::string outbox ODE_GUARDED_BY(mu);
    bool close_after_flush ODE_GUARDED_BY(mu) = false;
  };
  using ConnPtr = std::shared_ptr<Conn>;

  /// Unit of worker work: one decoded request, or a session teardown.
  struct Task {
    ConnPtr conn;
    Request req;
    bool teardown = false;
  };

  struct Worker {
    Mutex mu;
    CondVar cv;
    std::deque<Task> queue ODE_GUARDED_BY(mu);
    bool stop ODE_GUARDED_BY(mu) = false;      ///< Drain-and-exit.
    std::thread thread;

    // Worker-thread-private transaction gate (no lock: only the worker
    // thread touches these).  While `txn_owner` is set, tasks from other
    // connections are parked in `parked` — a Database transaction is
    // thread-local state, so running another session's request on this
    // thread meanwhile would silently join it to the foreign transaction.
    Conn* txn_owner = nullptr;
    std::deque<Task> parked;
  };

  Server() = default;

  Status Init(Database& db, const ServerOptions& options);
  void IoLoop();
  void WorkerLoop(size_t index);

  // -- IO-thread helpers -----------------------------------------------------
  void HandleAccept();
  void HandleReadable(const ConnPtr& conn);
  void HandleWritable(const ConnPtr& conn);
  /// Parses conn->rbuf, enqueueing complete requests; applies the pipeline
  /// cap and protocol-error shedding.
  void DrainReadBuffer(const ConnPtr& conn);
  /// Appends an error frame and schedules close-after-flush.
  void ShedConn(const ConnPtr& conn, const Request& req, WireStatus ws,
                const std::string& message);
  /// Non-blocking flush; closes the fd when drained and close_after_flush.
  void TryFlush(const ConnPtr& conn);
  void CloseConn(const ConnPtr& conn);
  void ArmWrite(const ConnPtr& conn, bool enable);

  // -- Worker helpers --------------------------------------------------------
  void Enqueue(size_t worker, Task task);
  /// Appends an encoded response to the conn's outbox and wakes the IO
  /// thread to flush it.  `shed_slow_consumer` handling lives here: a
  /// response that would blow the outbox cap is replaced by a typed error.
  void PushResponse(const ConnPtr& conn, const Response& resp);
  void WakeIo();

  ServerOptions options_;
  Database* db_ = nullptr;
  std::unique_ptr<Dispatcher> dispatcher_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  ///< eventfd the workers signal after PushResponse.
  uint16_t port_ = 0;

  std::thread io_thread_;
  std::vector<std::unique_ptr<Worker>> workers_;

  /// Connections by fd.  IO thread only (workers reach conns through the
  /// shared_ptr in their tasks, never through this map).
  std::unordered_map<int, ConnPtr> conns_;
  uint64_t next_conn_id_ = 1;

  /// Connections with fresh outbox bytes, handed from workers to the IO
  /// thread (paired with a wake_fd_ signal).
  Mutex dirty_mu_;
  std::vector<ConnPtr> dirty_ ODE_GUARDED_BY(dirty_mu_);

  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<uint64_t> open_conns_{0};

  // Server-level instruments (the dispatcher owns the per-op histograms).
  Counter* accepted_ = nullptr;
  Counter* closed_count_ = nullptr;
  Counter* bytes_in_ = nullptr;
  Counter* bytes_out_ = nullptr;
  Counter* protocol_errors_ = nullptr;
  Counter* shed_pipeline_ = nullptr;
  Counter* shed_slow_consumer_ = nullptr;
  Gauge* open_gauge_ = nullptr;
};

}  // namespace net
}  // namespace ode

#endif  // ODE_NET_SERVER_H_
