#ifndef ODE_UTIL_TRACE_H_
#define ODE_UTIL_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/metrics.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace ode {

// ---------------------------------------------------------------------------
// Trace-event instrumentation
// ---------------------------------------------------------------------------
//
// A Tracer collects timed spans into per-thread ring buffers and drains them
// to Chrome `trace_event` JSON (load the file at chrome://tracing or
// https://ui.perfetto.dev).  Design constraints, in order:
//
//  1. A *disabled* tracer must cost nearly nothing on hot paths: a
//     TraceSpan against a tracer with sampling off is one relaxed load and
//     a branch.  Compiling with -DODE_TRACE_DISABLED removes even that.
//  2. Recording never takes a shared lock: each thread owns a ring buffer
//     (guarded by its own mutex, contended only by a concurrent drain).
//     When the ring wraps, the oldest events are overwritten and counted in
//     dropped_events() — tracing never blocks the traced operation.
//  3. Run-time sampling (`set_sample_every`): record one in N spans,
//     countdown kept thread-local.  0 disables, 1 records everything.
//
// Span names/categories must be string literals (or otherwise outlive the
// tracer): the ring stores the pointers, not copies.

/// One completed span.
struct TraceEvent {
  const char* name = nullptr;
  const char* category = nullptr;
  uint64_t start_ns = 0;     ///< Monotonic clock, see Histogram::NowNanos().
  uint64_t duration_ns = 0;
  uint32_t tid = 0;          ///< Tracer-assigned dense thread index.
};

class Tracer {
 public:
  /// `buffer_events` is the per-thread ring capacity (min 8).
  explicit Tracer(size_t buffer_events = 8192);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Record one in `n` spans (0 = tracing off, 1 = everything).
  void set_sample_every(uint32_t n) {
    sample_every_.store(n, std::memory_order_relaxed);
  }
  uint32_t sample_every() const {
    return sample_every_.load(std::memory_order_relaxed);
  }
  bool enabled() const { return sample_every() != 0; }

  /// Sampling decision for the calling thread; also lazily registers the
  /// thread's ring buffer.  Called by TraceSpan; callers wanting manual
  /// spans may use it with Record().
  bool BeginSample();

  /// Appends a completed span to the calling thread's ring.
  void Record(const char* name, const char* category, uint64_t start_ns,
              uint64_t end_ns);

  /// Moves every thread's buffered events (oldest first per thread) into
  /// `*out` and clears the rings.  Safe concurrently with recording.
  void Drain(std::vector<TraceEvent>* out);

  /// Drains and renders the Chrome trace_event JSON object
  /// (`{"traceEvents":[...]}`; `ts`/`dur` in microseconds).
  std::string DrainToChromeJson();

  /// Renders already-drained events; exposed so tools can merge drains.
  static std::string ToChromeJson(const std::vector<TraceEvent>& events);

  /// Events overwritten because a ring wrapped before a drain.
  uint64_t dropped_events() const;

  /// Buffered (not yet drained) events across all threads.
  size_t pending_events() const;

 private:
  struct ThreadBuffer {
    Mutex mu;
    // Ring contents and cursors are shared between the owning thread
    // (Record) and any thread draining, hence guarded.
    std::vector<TraceEvent> ring ODE_GUARDED_BY(mu);  // Fixed cap, wraps.
    uint64_t next ODE_GUARDED_BY(mu) = 0;     // Total events ever written.
    uint64_t drained_mark ODE_GUARDED_BY(mu) = 0;  // `next` at last drain.
    uint64_t dropped ODE_GUARDED_BY(mu) = 0;
    uint32_t tid = 0;  // Immutable once the buffer is published.
    uint32_t sample_countdown = 0;  // Owner-thread only; never drained.
  };

  ThreadBuffer* BufferForThisThread();

  const size_t buffer_events_;
  const uint64_t id_;  // Distinguishes tracers across create/destroy cycles.
  std::atomic<uint32_t> sample_every_{0};
  mutable Mutex mu_;  // Guards buffers_ (registration + drain).
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_ ODE_GUARDED_BY(mu_);
  uint32_t next_tid_ ODE_GUARDED_BY(mu_) = 0;
};

/// RAII span: records [construction, destruction) into `tracer` when the
/// sampling decision says so.  Null tracer or sampling off = no-op.
class TraceSpan {
 public:
#ifdef ODE_TRACE_DISABLED
  TraceSpan(Tracer*, const char*, const char*) {}
  ~TraceSpan() = default;
#else
  TraceSpan(Tracer* tracer, const char* name, const char* category)
      : tracer_(nullptr) {
    if (tracer != nullptr && tracer->enabled() && tracer->BeginSample()) {
      tracer_ = tracer;
      name_ = name;
      category_ = category;
      start_ns_ = Histogram::NowNanos();
    }
  }
  ~TraceSpan() {
    if (tracer_ != nullptr) {
      tracer_->Record(name_, category_, start_ns_, Histogram::NowNanos());
    }
  }
#endif
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
#ifndef ODE_TRACE_DISABLED
  Tracer* tracer_;
  const char* name_ = nullptr;
  const char* category_ = nullptr;
  uint64_t start_ns_ = 0;
#endif
};

}  // namespace ode

#endif  // ODE_UTIL_TRACE_H_
