#ifndef ODE_UTIL_STATUSOR_H_
#define ODE_UTIL_STATUSOR_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace ode {

/// Holds either a value of type T or a non-OK Status explaining its absence.
///
/// StatusOr mirrors the familiar absl::StatusOr contract: it is constructible
/// implicitly from either a T or a non-OK Status, `ok()` reports which state
/// it is in, and `value()` asserts on misuse.  It is the return type of every
/// fallible factory in the library.
///
/// Like Status, StatusOr is [[nodiscard]]: a dropped StatusOr is a dropped
/// error.  Use `.IgnoreError()` (with a comment) for intentional discards.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Constructs from an error.  `status` must not be OK: an OK status carries
  /// no value and would leave the StatusOr in a contradictory state.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!status_.ok() && "StatusOr(Status) requires a non-OK status");
    if (status_.ok()) {
      status_ = Status::Internal("OK status passed to StatusOr error ctor");
    }
  }

  /// Constructs from a value; the resulting StatusOr is OK.
  StatusOr(T value)  // NOLINT(runtime/explicit)
      : status_(Status::OK()), value_(std::move(value)) {}

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) noexcept = default;
  StatusOr& operator=(StatusOr&&) noexcept = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value if OK, otherwise `fallback`.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

  /// Explicitly discards the result (and any error).  See
  /// Status::IgnoreError for the usage rules.
  void IgnoreError() const {}

 private:
  Status status_;
  std::optional<T> value_;
};

/// Evaluates `rexpr` (a StatusOr); on error returns its status, otherwise
/// assigns the value into `lhs` (which must be an existing lvalue).
#define ODE_ASSIGN_OR_RETURN(lhs, rexpr)              \
  do {                                                \
    auto _ode_statusor = (rexpr);                     \
    if (!_ode_statusor.ok()) return _ode_statusor.status(); \
    lhs = std::move(_ode_statusor).value();           \
  } while (0)

}  // namespace ode

#endif  // ODE_UTIL_STATUSOR_H_
