#include "util/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace ode {

namespace {

/// Tracer ids are globally unique and never reused, so the thread-local
/// buffer map below can key on them safely even after a Tracer at the same
/// address is destroyed and another constructed.
std::atomic<uint64_t> g_next_tracer_id{1};

struct TlsEntry {
  uint64_t tracer_id;
  std::shared_ptr<void> buffer;  // Actually Tracer::ThreadBuffer.
};

/// Per-thread map of tracer id -> this thread's ring buffer.  Tiny (one
/// entry per tracer the thread ever recorded into), scanned linearly.
thread_local std::vector<TlsEntry> tls_buffers;

}  // namespace

Tracer::Tracer(size_t buffer_events)
    : buffer_events_(std::max<size_t>(buffer_events, 8)),
      id_(g_next_tracer_id.fetch_add(1, std::memory_order_relaxed)) {}

Tracer::~Tracer() = default;

Tracer::ThreadBuffer* Tracer::BufferForThisThread() {
  for (const TlsEntry& e : tls_buffers) {
    if (e.tracer_id == id_) {
      return static_cast<ThreadBuffer*>(e.buffer.get());
    }
  }
  auto buffer = std::make_shared<ThreadBuffer>();
  {
    // Pre-publication, so the lock is uncontended; taken anyway because the
    // ring is a guarded field and this keeps the capability analysis exact.
    MutexLock buf_lock(buffer->mu);
    buffer->ring.resize(buffer_events_);
  }
  {
    MutexLock lock(mu_);
    buffer->tid = next_tid_++;
    buffers_.push_back(buffer);
  }
  tls_buffers.push_back(TlsEntry{id_, buffer});
  return buffer.get();
}

bool Tracer::BeginSample() {
  const uint32_t every = sample_every_.load(std::memory_order_relaxed);
  if (every == 0) return false;
  ThreadBuffer* buf = BufferForThisThread();
  // sample_countdown is only touched by the owning thread.
  if (buf->sample_countdown == 0) {
    buf->sample_countdown = every - 1;
    return true;
  }
  --buf->sample_countdown;
  return false;
}

void Tracer::Record(const char* name, const char* category, uint64_t start_ns,
                    uint64_t end_ns) {
  ThreadBuffer* buf = BufferForThisThread();
  MutexLock lock(buf->mu);  // Uncontended except vs drain.
  TraceEvent& slot = buf->ring[buf->next % buf->ring.size()];
  slot.name = name;
  slot.category = category;
  slot.start_ns = start_ns;
  slot.duration_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
  slot.tid = buf->tid;
  ++buf->next;
  const uint64_t live = buf->next - buf->drained_mark;
  if (live > buf->ring.size()) {
    ++buf->dropped;
    buf->drained_mark = buf->next - buf->ring.size();
  }
}

void Tracer::Drain(std::vector<TraceEvent>* out) {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    MutexLock lock(mu_);
    buffers = buffers_;
  }
  for (const auto& buf : buffers) {
    MutexLock lock(buf->mu);
    const uint64_t live = buf->next - buf->drained_mark;
    const uint64_t start = buf->next - live;
    for (uint64_t i = start; i < buf->next; ++i) {
      out->push_back(buf->ring[i % buf->ring.size()]);
    }
    buf->drained_mark = buf->next;
  }
  // Chrome sorts for display anyway, but a time-ordered file is nicer to
  // eyeball and makes the output deterministic for tests.
  std::stable_sort(out->begin(), out->end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.start_ns < b.start_ns;
                   });
}

uint64_t Tracer::dropped_events() const {
  uint64_t total = 0;
  MutexLock lock(mu_);
  for (const auto& buf : buffers_) {
    MutexLock buf_lock(buf->mu);
    total += buf->dropped;
  }
  return total;
}

size_t Tracer::pending_events() const {
  size_t total = 0;
  MutexLock lock(mu_);
  for (const auto& buf : buffers_) {
    MutexLock buf_lock(buf->mu);
    total += static_cast<size_t>(buf->next - buf->drained_mark);
  }
  return total;
}

namespace {

/// Escapes for a JSON string body (names are C identifiers in practice, but
/// the format must stay valid for any input).
void AppendJsonEscaped(std::string* out, const char* s) {
  for (; s != nullptr && *s != '\0'; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      case '\r':
        out->append("\\r");
        break;
      default:
        if (c < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x", c);
          out->append(hex);
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
}

}  // namespace

std::string Tracer::ToChromeJson(const std::vector<TraceEvent>& events) {
  // Complete events ("ph":"X") with ts/dur in microseconds; Chrome accepts
  // fractional microseconds, which preserves our nanosecond resolution.
  std::string out;
  out.reserve(events.size() * 96 + 64);
  out.append("{\"traceEvents\":[");
  bool first = true;
  char num[64];
  for (const TraceEvent& e : events) {
    if (!first) out.push_back(',');
    first = false;
    out.append("{\"name\":\"");
    AppendJsonEscaped(&out, e.name);
    out.append("\",\"cat\":\"");
    AppendJsonEscaped(&out, e.category != nullptr ? e.category : "ode");
    out.append("\",\"ph\":\"X\",\"pid\":1,\"tid\":");
    std::snprintf(num, sizeof(num), "%" PRIu32, e.tid);
    out.append(num);
    out.append(",\"ts\":");
    std::snprintf(num, sizeof(num), "%.3f",
                  static_cast<double>(e.start_ns) / 1000.0);
    out.append(num);
    out.append(",\"dur\":");
    std::snprintf(num, sizeof(num), "%.3f",
                  static_cast<double>(e.duration_ns) / 1000.0);
    out.append(num);
    out.append("}");
  }
  out.append("],\"displayTimeUnit\":\"ms\"}");
  return out;
}

std::string Tracer::DrainToChromeJson() {
  std::vector<TraceEvent> events;
  Drain(&events);
  return ToChromeJson(events);
}

}  // namespace ode
