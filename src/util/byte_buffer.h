#ifndef ODE_UTIL_BYTE_BUFFER_H_
#define ODE_UTIL_BYTE_BUFFER_H_

#include <cstdint>
#include <string>

#include "util/coding.h"
#include "util/slice.h"
#include "util/status.h"

namespace ode {

/// Append-only byte sink used to build serialized records.
///
/// Thin typed veneer over std::string + coding.h; exists so serialization
/// code reads as intent ("writer.WriteU64(oid)") rather than mechanism.
class BufferWriter {
 public:
  BufferWriter() = default;

  void WriteU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void WriteU16(uint16_t v) { PutFixed16(&buf_, v); }
  void WriteU32(uint32_t v) { PutFixed32(&buf_, v); }
  void WriteU64(uint64_t v) { PutFixed64(&buf_, v); }
  void WriteVarint32(uint32_t v) { PutVarint32(&buf_, v); }
  void WriteVarint64(uint64_t v) { PutVarint64(&buf_, v); }
  void WriteI64(int64_t v) {
    // ZigZag so small negative numbers stay small.
    PutVarint64(&buf_, (static_cast<uint64_t>(v) << 1) ^
                           static_cast<uint64_t>(v >> 63));
  }
  void WriteDouble(double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    PutFixed64(&buf_, bits);
  }
  void WriteBool(bool v) { WriteU8(v ? 1 : 0); }
  void WriteString(const Slice& s) { PutLengthPrefixedSlice(&buf_, s); }
  void WriteRaw(const Slice& s) { buf_.append(s.data(), s.size()); }

  const std::string& data() const { return buf_; }
  size_t size() const { return buf_.size(); }
  Slice slice() const { return Slice(buf_); }
  std::string Release() { return std::move(buf_); }
  void Clear() { buf_.clear(); }

 private:
  std::string buf_;
};

/// Consuming reader over a byte range; every Read returns a Status so
/// truncated or corrupt input surfaces as kCorruption, never as UB.
class BufferReader {
 public:
  explicit BufferReader(Slice input) : input_(input) {}

  Status ReadU8(uint8_t* v) {
    if (input_.empty()) return Truncated("u8");
    *v = static_cast<uint8_t>(input_[0]);
    input_.remove_prefix(1);
    return Status::OK();
  }
  Status ReadU16(uint16_t* v) {
    if (input_.size() < 2) return Truncated("u16");
    *v = DecodeFixed16(input_.data());
    input_.remove_prefix(2);
    return Status::OK();
  }
  Status ReadU32(uint32_t* v) {
    if (!GetFixed32(&input_, v)) return Truncated("u32");
    return Status::OK();
  }
  Status ReadU64(uint64_t* v) {
    if (!GetFixed64(&input_, v)) return Truncated("u64");
    return Status::OK();
  }
  Status ReadVarint32(uint32_t* v) {
    if (!GetVarint32(&input_, v)) return Truncated("varint32");
    return Status::OK();
  }
  Status ReadVarint64(uint64_t* v) {
    if (!GetVarint64(&input_, v)) return Truncated("varint64");
    return Status::OK();
  }
  Status ReadI64(int64_t* v) {
    uint64_t zz = 0;
    ODE_RETURN_IF_ERROR(ReadVarint64(&zz));
    *v = static_cast<int64_t>((zz >> 1) ^ (~(zz & 1) + 1));
    return Status::OK();
  }
  Status ReadDouble(double* v) {
    uint64_t bits = 0;
    ODE_RETURN_IF_ERROR(ReadU64(&bits));
    std::memcpy(v, &bits, sizeof(bits));
    return Status::OK();
  }
  Status ReadBool(bool* v) {
    uint8_t b = 0;
    ODE_RETURN_IF_ERROR(ReadU8(&b));
    *v = (b != 0);
    return Status::OK();
  }
  /// Reads a length-prefixed byte string into an owned std::string.
  Status ReadString(std::string* out) {
    Slice s;
    if (!GetLengthPrefixedSlice(&input_, &s)) return Truncated("string");
    out->assign(s.data(), s.size());
    return Status::OK();
  }
  /// Reads a length-prefixed byte string as a view into the input buffer.
  Status ReadStringView(Slice* out) {
    if (!GetLengthPrefixedSlice(&input_, out)) return Truncated("string");
    return Status::OK();
  }
  /// Reads exactly `n` raw bytes as a view into the input buffer.
  Status ReadRaw(size_t n, Slice* out) {
    if (input_.size() < n) return Truncated("raw bytes");
    *out = Slice(input_.data(), n);
    input_.remove_prefix(n);
    return Status::OK();
  }

  size_t remaining() const { return input_.size(); }
  bool AtEnd() const { return input_.empty(); }
  Slice rest() const { return input_; }

 private:
  static Status Truncated(const char* what) {
    return Status::Corruption(std::string("truncated input reading ") + what);
  }

  Slice input_;
};

}  // namespace ode

#endif  // ODE_UTIL_BYTE_BUFFER_H_
