#ifndef ODE_UTIL_CODING_H_
#define ODE_UTIL_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "util/slice.h"

namespace ode {

// Little-endian fixed-width and LEB128-style varint encodings used by every
// on-disk structure (pages, WAL records, serialized objects).  All encoders
// append to a std::string; all decoders consume from a Slice and report
// success/failure so corrupt input never crashes.

inline void EncodeFixed16(char* dst, uint16_t value) {
  dst[0] = static_cast<char>(value & 0xff);
  dst[1] = static_cast<char>((value >> 8) & 0xff);
}

inline void EncodeFixed32(char* dst, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    dst[i] = static_cast<char>((value >> (8 * i)) & 0xff);
  }
}

inline void EncodeFixed64(char* dst, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    dst[i] = static_cast<char>((value >> (8 * i)) & 0xff);
  }
}

inline uint16_t DecodeFixed16(const char* src) {
  return static_cast<uint16_t>(static_cast<uint8_t>(src[0])) |
         (static_cast<uint16_t>(static_cast<uint8_t>(src[1])) << 8);
}

inline uint32_t DecodeFixed32(const char* src) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<uint8_t>(src[i]);
  }
  return v;
}

inline uint64_t DecodeFixed64(const char* src) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<uint8_t>(src[i]);
  }
  return v;
}

inline void PutFixed16(std::string* dst, uint16_t value) {
  char buf[2];
  EncodeFixed16(buf, value);
  dst->append(buf, 2);
}

inline void PutFixed32(std::string* dst, uint32_t value) {
  char buf[4];
  EncodeFixed32(buf, value);
  dst->append(buf, 4);
}

inline void PutFixed64(std::string* dst, uint64_t value) {
  char buf[8];
  EncodeFixed64(buf, value);
  dst->append(buf, 8);
}

/// Appends `value` as a varint (1-10 bytes).
void PutVarint32(std::string* dst, uint32_t value);
void PutVarint64(std::string* dst, uint64_t value);

/// Appends a varint length prefix followed by the bytes of `value`.
void PutLengthPrefixedSlice(std::string* dst, const Slice& value);

/// Consumes a varint from the front of `*input`.  Returns false on
/// truncated/overlong input, leaving *input unspecified.
bool GetVarint32(Slice* input, uint32_t* value);
bool GetVarint64(Slice* input, uint64_t* value);

/// Consumes a length-prefixed slice from the front of `*input`.  The
/// resulting Slice aliases the input buffer.
bool GetLengthPrefixedSlice(Slice* input, Slice* result);

/// Consumes fixed-width integers; returns false on truncation.
bool GetFixed32(Slice* input, uint32_t* value);
bool GetFixed64(Slice* input, uint64_t* value);

/// Number of bytes PutVarint64 would emit for `value`.
int VarintLength(uint64_t value);

}  // namespace ode

#endif  // ODE_UTIL_CODING_H_
