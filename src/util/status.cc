#include "util/status.h"

namespace ode {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kNotFound:
      return "not found";
    case StatusCode::kCorruption:
      return "corruption";
    case StatusCode::kInvalidArgument:
      return "invalid argument";
    case StatusCode::kIOError:
      return "io error";
    case StatusCode::kAlreadyExists:
      return "already exists";
    case StatusCode::kNotSupported:
      return "not supported";
    case StatusCode::kFailedPrecondition:
      return "failed precondition";
    case StatusCode::kAborted:
      return "aborted";
    case StatusCode::kOutOfRange:
      return "out of range";
    case StatusCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string result(StatusCodeName(code_));
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

}  // namespace ode
