#ifndef ODE_UTIL_EVENT_LOG_H_
#define ODE_UTIL_EVENT_LOG_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/clock.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace ode {

class JsonWriter;

// ---------------------------------------------------------------------------
// Structured event journal (the flight recorder's memory)
// ---------------------------------------------------------------------------
//
// An EventLog is an always-on, bounded journal of typed engine events: every
// record says *what happened* (txn commit, group-commit batch, checkpoint,
// vacuum step, poison, injected fault, slow op, ...) with a global sequence
// number, a timestamp, and up to three numeric arguments whose meaning is
// fixed per type (see the EventType docs).  When the engine poisons itself
// or a crash-matrix run fails, the journal is what the diagnostics dump
// snapshots — the last few thousand engine decisions, in order.
//
// The recording path follows the Tracer's design (util/trace.h): each
// thread owns a ring buffer guarded by its own mutex, contended only by a
// concurrent snapshot/drain, so recording never takes a shared lock.  The
// only cross-thread state touched on record is one relaxed fetch_add for
// the global sequence number.  When a ring wraps before a drain the oldest
// records are overwritten and counted in dropped_events() — journaling
// never blocks the journaled operation.
//
// Timestamps come from an internal lock-free monotone wall-micros source by
// default.  Tests inject a Clock (util/clock.h) for determinism; injected
// clocks are not required to be thread-safe, so that path serializes on a
// mutex (test-only, cost irrelevant there).

/// Event taxonomy.  The trailing comment gives the meaning of the numeric
/// args (a, b, c); unused args are 0.
enum class EventType : uint8_t {
  kTxnBegin = 0,        ///< a=txn_id
  kTxnCommit = 1,       ///< a=txn_id, b=dirty_pages, c=duration_us
  kTxnAbort = 2,        ///< a=txn_id
  kGroupCommitBatch = 3,///< a=batch_txns, b=bytes, c=durable_txn
  kCheckpoint = 4,      ///< a=pages_flushed, b=wal_bytes_truncated
  kVacuumStep = 5,      ///< a=tree_index, b=entries_copied, c=steps_done
  kPoison = 6,          ///< a=0; detail = cause status
  kFaultInjection = 7,  ///< a=op (FaultOp), b=countdown/crash flag
  kSlowOp = 8,          ///< a=duration_us, b=threshold_us; detail = op name
  kRecovery = 9,        ///< a=committed_txns, b=discarded_txns, c=pages
  kHealth = 10,         ///< a=state (0 ok / 1 degraded / 2 poisoned)
};

enum class EventSeverity : uint8_t {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
};

/// One journal record.  Fixed size — recording never allocates.
struct EventRecord {
  static constexpr size_t kDetailBytes = 48;

  uint64_t seq = 0;        ///< Global total order across all threads.
  uint64_t ts_micros = 0;  ///< From the log's clock source.
  uint64_t a = 0;
  uint64_t b = 0;
  uint64_t c = 0;
  EventType type = EventType::kTxnBegin;
  EventSeverity severity = EventSeverity::kDebug;
  uint32_t tid = 0;        ///< Log-assigned dense thread index.
  char detail[kDetailBytes] = {};  ///< NUL-terminated, truncated to fit.
};

class EventLog {
 public:
  /// `buffer_events` is the per-thread ring capacity (min 8);
  /// `ring_events` bounds the merged journal a snapshot/drain returns
  /// (oldest beyond the bound are discarded — the "global ring").
  explicit EventLog(size_t buffer_events = 1024, size_t ring_events = 8192,
                    Clock* clock = nullptr);
  ~EventLog();

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Records below this severity are dropped at the call site (one relaxed
  /// load + compare).  Default kDebug: everything is journaled.
  void set_min_severity(EventSeverity s) {
    min_severity_.store(static_cast<uint8_t>(s), std::memory_order_relaxed);
  }
  EventSeverity min_severity() const {
    return static_cast<EventSeverity>(
        min_severity_.load(std::memory_order_relaxed));
  }

  /// Master switch (A/B benches, paranoid deployments).  Disabled recording
  /// is one relaxed load and a branch.
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Appends one record to the calling thread's ring.  `detail` is copied
  /// (truncated to EventRecord::kDetailBytes - 1); pass only when the event
  /// carries text (poison cause, slow-op name).
  void Record(EventType type, EventSeverity severity, uint64_t a = 0,
              uint64_t b = 0, uint64_t c = 0, std::string_view detail = {});

  /// Copies the journal (merged across threads, ascending seq, capped to
  /// the newest `ring_events`) without consuming it — the flight recorder
  /// uses this so a dump does not erase evidence a later dump still wants.
  void Snapshot(std::vector<EventRecord>* out) const;

  /// Like Snapshot but consumes: drained records are not returned again.
  void Drain(std::vector<EventRecord>* out);

  /// Records overwritten because a ring wrapped before a drain.
  uint64_t dropped_events() const;
  /// Buffered (not yet drained) records across all threads.
  size_t pending_events() const;
  /// Total records ever accepted (= the next record's seq).
  uint64_t total_recorded() const {
    return next_seq_.load(std::memory_order_relaxed);
  }

  // --- Rendering / wire formats ---

  /// JSON array of record objects (stable schema: seq, ts_micros, type,
  /// severity, tid, a, b, c, detail).
  static std::string ToJson(const std::vector<EventRecord>& events);
  /// Appends one record as a JSON object to `w` (diagnostics dumps embed
  /// the journal inside a larger document).
  static void AppendJson(JsonWriter* w, const EventRecord& e);

  /// Compact binary frame: "ODEJ" magic, format version, record count,
  /// fixed-width little-endian records.  Round-trips through DecodeBinary.
  static void EncodeBinary(const std::vector<EventRecord>& events,
                           std::string* out);
  /// Returns false on a malformed frame (bad magic/version/truncation).
  static bool DecodeBinary(std::string_view in,
                           std::vector<EventRecord>* out);

  static const char* TypeName(EventType t);
  static const char* SeverityName(EventSeverity s);

  /// The timestamp source records are stamped with (injected Clock, else the
  /// internal monotone wall-micros source).  Public so the diagnostics
  /// exporter stamps its documents with the same clock the journal uses.
  uint64_t NowMicros();

 private:
  struct ThreadBuffer {
    Mutex mu;
    std::vector<EventRecord> ring ODE_GUARDED_BY(mu);  // Fixed cap, wraps.
    uint64_t next ODE_GUARDED_BY(mu) = 0;      // Total records ever written.
    uint64_t drained_mark ODE_GUARDED_BY(mu) = 0;  // `next` at last drain.
    uint64_t dropped ODE_GUARDED_BY(mu) = 0;
    uint32_t tid = 0;  // Immutable once the buffer is published.
  };

  ThreadBuffer* BufferForThisThread();
  /// Shared walk for Snapshot/Drain; advances drained_mark when consuming.
  void Collect(std::vector<EventRecord>* out, bool consume) const;

  const size_t buffer_events_;
  const size_t ring_events_;
  const uint64_t id_;  // Distinguishes logs across create/destroy cycles.
  Clock* const clock_;            // Nullable; serialized by clock_mu_.
  mutable Mutex clock_mu_;        // Only used when clock_ != nullptr.
  std::atomic<uint64_t> wall_last_{0};  // Monotone floor for NowMicros().
  std::atomic<bool> enabled_{true};
  std::atomic<uint8_t> min_severity_{0};
  std::atomic<uint64_t> next_seq_{0};
  mutable Mutex mu_;  // Guards buffers_ (registration + drain).
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_ ODE_GUARDED_BY(mu_);
  uint32_t next_tid_ ODE_GUARDED_BY(mu_) = 0;
};

}  // namespace ode

#endif  // ODE_UTIL_EVENT_LOG_H_
