#ifndef ODE_UTIL_HASH128_H_
#define ODE_UTIL_HASH128_H_

#include <cstdint>
#include <string>

#include "util/slice.h"

namespace ode {

/// A 128-bit content hash (see hash128.cc for the construction).
///
/// Used by the content-addressed payload store (storage/payload_store.h) to
/// key physical blobs: two payloads with equal bytes hash equal and share one
/// stored copy.  128 bits makes an accidental collision astronomically
/// unlikely (~2^-64 at a billion blobs); the store still verifies sizes on
/// every dedupe hit so a collision surfaces as Corruption, never as silent
/// payload aliasing.
struct Hash128 {
  uint64_t lo = 0;
  uint64_t hi = 0;

  friend bool operator==(const Hash128& a, const Hash128& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
  friend bool operator!=(const Hash128& a, const Hash128& b) {
    return !(a == b);
  }
  /// Byte order follows the encoded form, so sorting hashes sorts their
  /// store keys identically.
  friend bool operator<(const Hash128& a, const Hash128& b) {
    return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
  }

  /// True for the all-zero value, which VersionMeta uses as "no hash
  /// recorded" (a content-addressed write never produces it: the finalizer
  /// maps an all-zero result away from zero).
  bool IsZero() const { return lo == 0 && hi == 0; }

  /// 16-byte big-endian encoding (hi first) — memcmp order on the encoded
  /// form equals operator< order, so B+tree keys sort like hashes.
  std::string Encode() const;
  /// Inverse of Encode; false if `bytes` is not exactly 16 bytes.
  static bool Decode(const Slice& bytes, Hash128* out);

  /// 32-hex-digit rendering for tooling / diagnostics.
  std::string ToHex() const;
};

/// Hashes `data` to 128 bits.  Deterministic across platforms, processes and
/// endiannesses (the on-disk payload store depends on that); never returns
/// the all-zero value.
Hash128 HashPayload128(const Slice& data);

}  // namespace ode

#endif  // ODE_UTIL_HASH128_H_
