#ifndef ODE_UTIL_THREAD_ANNOTATIONS_H_
#define ODE_UTIL_THREAD_ANNOTATIONS_H_

// Clang thread-safety-analysis annotations (no-ops elsewhere).
//
// These macros let the locking discipline that DESIGN.md describes in prose
// be stated in the type system and checked by `clang -Wthread-safety`:
// which mutex guards which field, which methods require a lock to be held,
// and which functions acquire or release one.  GCC builds see empty macros,
// so the annotations cost nothing outside the analysis.
//
// Vocabulary (mirrors the standard capability-analysis macro set):
//
//   ODE_CAPABILITY("mutex")       - on a class: instances are lockable.
//   ODE_SCOPED_CAPABILITY         - on a class: RAII lock guard.
//   ODE_GUARDED_BY(mu)            - on a field: reads and writes require mu.
//   ODE_PT_GUARDED_BY(mu)         - on a pointer field: the pointee requires
//                                   mu (the pointer itself does not).
//   ODE_REQUIRES(mu)              - on a function: caller must hold mu
//                                   exclusively.
//   ODE_REQUIRES_SHARED(mu)       - caller must hold mu at least shared.
//   ODE_ACQUIRE(mu)/ODE_RELEASE(mu)           - function locks/unlocks mu.
//   ODE_ACQUIRE_SHARED/ODE_RELEASE_SHARED     - shared (reader) flavor.
//   ODE_RELEASE_GENERIC(mu)       - releases mu whichever mode it was held
//                                   in (scoped-guard destructors).
//   ODE_TRY_ACQUIRE(bool, mu)     - try-lock; first arg is the return value
//                                   that means "acquired".
//   ODE_EXCLUDES(mu)              - caller must NOT hold mu (deadlock guard).
//   ODE_ASSERT_CAPABILITY(mu)     - runtime assertion that mu is held.
//   ODE_NO_THREAD_SAFETY_ANALYSIS - opt a function out.  Reserved for lock
//                                   lifetimes the analysis cannot express
//                                   (see StorageEngine::Begin, whose
//                                   exclusive lock outlives the call); every
//                                   use carries a comment saying why.
//
// The project lint (tools/ode_lint) enforces the companion rule that every
// class declaring a mutex member annotates at least one field with
// ODE_GUARDED_BY, so new locking code cannot silently skip the analysis.

#if defined(__clang__) && (!defined(SWIG))
#define ODE_THREAD_ANNOTATION_ATTRIBUTE_(x) __attribute__((x))
#else
#define ODE_THREAD_ANNOTATION_ATTRIBUTE_(x)  // no-op
#endif

#define ODE_CAPABILITY(x) ODE_THREAD_ANNOTATION_ATTRIBUTE_(capability(x))

#define ODE_SCOPED_CAPABILITY ODE_THREAD_ANNOTATION_ATTRIBUTE_(scoped_lockable)

#define ODE_GUARDED_BY(x) ODE_THREAD_ANNOTATION_ATTRIBUTE_(guarded_by(x))

#define ODE_PT_GUARDED_BY(x) ODE_THREAD_ANNOTATION_ATTRIBUTE_(pt_guarded_by(x))

#define ODE_ACQUIRED_BEFORE(...) \
  ODE_THREAD_ANNOTATION_ATTRIBUTE_(acquired_before(__VA_ARGS__))

#define ODE_ACQUIRED_AFTER(...) \
  ODE_THREAD_ANNOTATION_ATTRIBUTE_(acquired_after(__VA_ARGS__))

#define ODE_REQUIRES(...) \
  ODE_THREAD_ANNOTATION_ATTRIBUTE_(requires_capability(__VA_ARGS__))

#define ODE_REQUIRES_SHARED(...) \
  ODE_THREAD_ANNOTATION_ATTRIBUTE_(requires_shared_capability(__VA_ARGS__))

#define ODE_ACQUIRE(...) \
  ODE_THREAD_ANNOTATION_ATTRIBUTE_(acquire_capability(__VA_ARGS__))

#define ODE_ACQUIRE_SHARED(...) \
  ODE_THREAD_ANNOTATION_ATTRIBUTE_(acquire_shared_capability(__VA_ARGS__))

#define ODE_RELEASE(...) \
  ODE_THREAD_ANNOTATION_ATTRIBUTE_(release_capability(__VA_ARGS__))

#define ODE_RELEASE_SHARED(...) \
  ODE_THREAD_ANNOTATION_ATTRIBUTE_(release_shared_capability(__VA_ARGS__))

#define ODE_RELEASE_GENERIC(...) \
  ODE_THREAD_ANNOTATION_ATTRIBUTE_(release_generic_capability(__VA_ARGS__))

#define ODE_TRY_ACQUIRE(...) \
  ODE_THREAD_ANNOTATION_ATTRIBUTE_(try_acquire_capability(__VA_ARGS__))

#define ODE_TRY_ACQUIRE_SHARED(...) \
  ODE_THREAD_ANNOTATION_ATTRIBUTE_(try_acquire_shared_capability(__VA_ARGS__))

#define ODE_EXCLUDES(...) \
  ODE_THREAD_ANNOTATION_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

#define ODE_ASSERT_CAPABILITY(x) \
  ODE_THREAD_ANNOTATION_ATTRIBUTE_(assert_capability(x))

#define ODE_ASSERT_SHARED_CAPABILITY(x) \
  ODE_THREAD_ANNOTATION_ATTRIBUTE_(assert_shared_capability(x))

#define ODE_RETURN_CAPABILITY(x) \
  ODE_THREAD_ANNOTATION_ATTRIBUTE_(lock_returned(x))

#define ODE_NO_THREAD_SAFETY_ANALYSIS \
  ODE_THREAD_ANNOTATION_ATTRIBUTE_(no_thread_safety_analysis)

#endif  // ODE_UTIL_THREAD_ANNOTATIONS_H_
