#ifndef ODE_UTIL_MUTEX_H_
#define ODE_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/thread_annotations.h"

namespace ode {

// Thin, zero-overhead wrappers over std::mutex / std::shared_mutex that
// carry Clang capability annotations (util/thread_annotations.h), plus the
// matching RAII guards.  The standard types cannot be annotated after the
// fact, so library code uses these instead; every method inlines to the
// underlying std call and the wrappers add no state.
//
// Lint rule (tools/ode_lint): a class declaring a Mutex/SharedMutex member
// must annotate at least one field with ODE_GUARDED_BY in the same class
// body — a lock nothing is declared to guard is either dead weight or an
// unstated invariant.

/// Exclusive mutex.  Non-reentrant, non-copyable.
class ODE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ODE_ACQUIRE() { mu_.lock(); }
  void Unlock() ODE_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool TryLock() ODE_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// Writer-exclusive / reader-shared mutex.  Non-reentrant in either mode
/// (recursively acquiring the shared side on one thread is UB in the
/// underlying std::shared_mutex — see StorageEngine::WithReadTxn for the
/// re-entrancy protocol built on top).
class ODE_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ODE_ACQUIRE() { mu_.lock(); }
  void Unlock() ODE_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool TryLock() ODE_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void LockShared() ODE_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() ODE_RELEASE_SHARED() { mu_.unlock_shared(); }
  [[nodiscard]] bool TryLockShared() ODE_TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

/// Condition variable usable with ode::Mutex (the annotated wrapper above
/// cannot feed a std::condition_variable directly).  Wait/WaitFor must be
/// called with `mu` held; both release it while blocked and reacquire before
/// returning, exactly like the std equivalents.  As always, guard against
/// spurious wakeups by re-checking the predicate in a loop.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) ODE_REQUIRES(mu) {
    LockAdapter adapter(mu);
    cv_.wait(adapter);
  }

  /// Returns false if the wait timed out without a notification.
  template <class Rep, class Period>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout)
      ODE_REQUIRES(mu) {
    LockAdapter adapter(mu);
    return cv_.wait_for(adapter, timeout) == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  /// BasicLockable view of a Mutex for std::condition_variable_any.  The
  /// lock/unlock pair happens inside cv_.wait, where the analysis cannot
  /// follow; ODE_REQUIRES on Wait/WaitFor keeps callers honest instead.
  class LockAdapter {
   public:
    explicit LockAdapter(Mutex& mu) : mu_(mu) {}
    void lock() ODE_NO_THREAD_SAFETY_ANALYSIS { mu_.Lock(); }
    void unlock() ODE_NO_THREAD_SAFETY_ANALYSIS { mu_.Unlock(); }

   private:
    Mutex& mu_;
  };

  std::condition_variable_any cv_;
};

/// RAII exclusive lock on a Mutex (the annotated std::lock_guard).
class ODE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ODE_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() ODE_RELEASE_GENERIC() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII exclusive (writer) lock on a SharedMutex.
class ODE_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) ODE_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() ODE_RELEASE_GENERIC() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared (reader) lock on a SharedMutex.
class ODE_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) ODE_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderMutexLock() ODE_RELEASE_GENERIC() { mu_.UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace ode

#endif  // ODE_UTIL_MUTEX_H_
