#ifndef ODE_UTIL_MUTEX_H_
#define ODE_UTIL_MUTEX_H_

#include <mutex>
#include <shared_mutex>

#include "util/thread_annotations.h"

namespace ode {

// Thin, zero-overhead wrappers over std::mutex / std::shared_mutex that
// carry Clang capability annotations (util/thread_annotations.h), plus the
// matching RAII guards.  The standard types cannot be annotated after the
// fact, so library code uses these instead; every method inlines to the
// underlying std call and the wrappers add no state.
//
// Lint rule (tools/ode_lint): a class declaring a Mutex/SharedMutex member
// must annotate at least one field with ODE_GUARDED_BY in the same class
// body — a lock nothing is declared to guard is either dead weight or an
// unstated invariant.

/// Exclusive mutex.  Non-reentrant, non-copyable.
class ODE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ODE_ACQUIRE() { mu_.lock(); }
  void Unlock() ODE_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool TryLock() ODE_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// Writer-exclusive / reader-shared mutex.  Non-reentrant in either mode
/// (recursively acquiring the shared side on one thread is UB in the
/// underlying std::shared_mutex — see StorageEngine::WithReadTxn for the
/// re-entrancy protocol built on top).
class ODE_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ODE_ACQUIRE() { mu_.lock(); }
  void Unlock() ODE_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool TryLock() ODE_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void LockShared() ODE_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() ODE_RELEASE_SHARED() { mu_.unlock_shared(); }
  [[nodiscard]] bool TryLockShared() ODE_TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock on a Mutex (the annotated std::lock_guard).
class ODE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ODE_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() ODE_RELEASE_GENERIC() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII exclusive (writer) lock on a SharedMutex.
class ODE_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) ODE_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() ODE_RELEASE_GENERIC() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared (reader) lock on a SharedMutex.
class ODE_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) ODE_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderMutexLock() ODE_RELEASE_GENERIC() { mu_.UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace ode

#endif  // ODE_UTIL_MUTEX_H_
