#ifndef ODE_UTIL_CRC32C_H_
#define ODE_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace ode {
namespace crc32c {

/// Returns the CRC-32C (Castagnoli) of data[0, n), extending `init_crc`.
/// Pure software table implementation; used to checksum pages and WAL
/// records.
uint32_t Extend(uint32_t init_crc, const char* data, size_t n);

/// CRC of data[0, n).
inline uint32_t Value(const char* data, size_t n) { return Extend(0, data, n); }

/// Masks a CRC before storing it alongside the data it covers, so that a CRC
/// of bytes that themselves contain CRCs does not degenerate (the
/// LevelDB/RocksDB masking trick).
inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8ul;
}

/// Inverse of Mask().
inline uint32_t Unmask(uint32_t masked) {
  uint32_t rot = masked - 0xa282ead8ul;
  return ((rot >> 17) | (rot << 15));
}

}  // namespace crc32c
}  // namespace ode

#endif  // ODE_UTIL_CRC32C_H_
