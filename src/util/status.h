#ifndef ODE_UTIL_STATUS_H_
#define ODE_UTIL_STATUS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace ode {

/// Canonical error codes used across the Ode library.
///
/// Every fallible operation in the library reports its outcome through a
/// Status (or StatusOr<T>); exceptions are never thrown across library
/// boundaries.  Codes are deliberately coarse: the human-readable message
/// carries the detail, the code carries the dispatchable category.
enum class StatusCode : uint8_t {
  kOk = 0,
  kNotFound = 1,        ///< Object, version, key, or file does not exist.
  kCorruption = 2,      ///< Persistent state failed an integrity check.
  kInvalidArgument = 3, ///< Caller passed something semantically invalid.
  kIOError = 4,         ///< The environment (filesystem) failed.
  kAlreadyExists = 5,   ///< Unique key/name collision.
  kNotSupported = 6,    ///< Operation not implemented for this configuration.
  kFailedPrecondition = 7, ///< System state forbids the operation.
  kAborted = 8,         ///< Transaction or operation was rolled back.
  kOutOfRange = 9,      ///< Index or offset outside the valid domain.
  kInternal = 10,       ///< Invariant violation inside the library.
};

/// Returns the canonical lowercase name of a code ("ok", "not found", ...).
std::string_view StatusCodeName(StatusCode code);

/// Result of an operation: a code plus an optional detail message.
///
/// Status is cheap to copy in the OK case (no allocation) and cheap to move
/// always.  Typical use:
///
///     Status s = db->Pnew(obj, &oid);
///     if (!s.ok()) return s;   // propagate
///
/// The class is [[nodiscard]]: silently dropping a Status is a compile-time
/// warning (an error under -DODE_WERROR=ON and in CI), because an ignored
/// error from Commit/Sync is exactly how corruption sneaks past the crash
/// matrix.  Where dropping really is the right call, say so explicitly with
/// `.IgnoreError()` and a comment explaining why.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  // Factory helpers, one per category.
  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }

  /// "ok" or "<code name>: <message>".
  std::string ToString() const;

  /// Explicitly discards this status.  The only sanctioned way to drop a
  /// Status on the floor: it defeats [[nodiscard]] visibly and greppably.
  /// Every call site should carry a comment saying why ignoring is safe
  /// (e.g. best-effort cleanup where the primary error is already being
  /// propagated).
  void IgnoreError() const {}

 private:
  StatusCode code_;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}
inline bool operator!=(const Status& a, const Status& b) { return !(a == b); }

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK Status out of the enclosing function.
#define ODE_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::ode::Status _ode_status = (expr);          \
    if (!_ode_status.ok()) return _ode_status;   \
  } while (0)

}  // namespace ode

#endif  // ODE_UTIL_STATUS_H_
