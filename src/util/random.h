#ifndef ODE_UTIL_RANDOM_H_
#define ODE_UTIL_RANDOM_H_

#include <cstdint>
#include <string>

namespace ode {

/// Deterministic xorshift128+ PRNG for tests, workload generators, and
/// benchmarks.  Not cryptographic; chosen for reproducibility (the same seed
/// yields the same workload on every platform).
class Random {
 public:
  explicit Random(uint64_t seed) {
    // SplitMix64 to expand the seed into two nonzero state words.
    s_[0] = SplitMix(&seed);
    s_[1] = SplitMix(&seed);
    if (s_[0] == 0 && s_[1] == 0) s_[0] = 1;
  }

  uint64_t Next() {
    uint64_t x = s_[0];
    const uint64_t y = s_[1];
    s_[0] = y;
    x ^= x << 23;
    s_[1] = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s_[1] + y;
  }

  /// Uniform in [0, n).  n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform in [lo, hi] inclusive.
  uint64_t Range(uint64_t lo, uint64_t hi) {
    return lo + Uniform(hi - lo + 1);
  }

  /// True with probability 1/n.
  bool OneIn(uint64_t n) { return Uniform(n) == 0; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Random printable ASCII string of length `len`.
  std::string NextString(size_t len) {
    static constexpr char kAlphabet[] =
        "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
    std::string out;
    out.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      out.push_back(kAlphabet[Uniform(sizeof(kAlphabet) - 1)]);
    }
    return out;
  }

  /// Random bytes (full 0..255 range) of length `len`.
  std::string NextBytes(size_t len) {
    std::string out;
    out.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      out.push_back(static_cast<char>(Next() & 0xff));
    }
    return out;
  }

 private:
  static uint64_t SplitMix(uint64_t* state) {
    uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  uint64_t s_[2];
};

}  // namespace ode

#endif  // ODE_UTIL_RANDOM_H_
