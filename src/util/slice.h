#ifndef ODE_UTIL_SLICE_H_
#define ODE_UTIL_SLICE_H_

#include <cassert>
#include <cstddef>
#include <cstring>
#include <string>
#include <string_view>

namespace ode {

/// A non-owning view of a byte range (the RocksDB/LevelDB idiom).
///
/// Slice is used on read paths throughout the storage layer to avoid copies.
/// The bytes it points at must outlive the Slice.
class Slice {
 public:
  Slice() : data_(""), size_(0) {}
  Slice(const char* data, size_t size) : data_(data), size_(size) {}
  Slice(const std::string& s) : data_(s.data()), size_(s.size()) {}  // NOLINT
  Slice(std::string_view s) : data_(s.data()), size_(s.size()) {}    // NOLINT
  Slice(const char* cstr) : data_(cstr), size_(std::strlen(cstr)) {}  // NOLINT

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  char operator[](size_t i) const {
    assert(i < size_);
    return data_[i];
  }

  /// Drops the first `n` bytes from the view.
  void remove_prefix(size_t n) {
    assert(n <= size_);
    data_ += n;
    size_ -= n;
  }

  std::string ToString() const { return std::string(data_, size_); }
  std::string_view ToStringView() const {
    return std::string_view(data_, size_);
  }

  int compare(const Slice& other) const {
    const size_t min_len = size_ < other.size_ ? size_ : other.size_;
    int r = std::memcmp(data_, other.data_, min_len);
    if (r == 0) {
      if (size_ < other.size_) r = -1;
      else if (size_ > other.size_) r = 1;
    }
    return r;
  }

  bool starts_with(const Slice& prefix) const {
    return size_ >= prefix.size_ &&
           std::memcmp(data_, prefix.data_, prefix.size_) == 0;
  }

 private:
  const char* data_;
  size_t size_;
};

inline bool operator==(const Slice& a, const Slice& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size()) == 0;
}
inline bool operator!=(const Slice& a, const Slice& b) { return !(a == b); }
inline bool operator<(const Slice& a, const Slice& b) {
  return a.compare(b) < 0;
}

}  // namespace ode

#endif  // ODE_UTIL_SLICE_H_
