#include "util/coding.h"

namespace ode {

void PutVarint32(std::string* dst, uint32_t value) {
  char buf[5];
  int n = 0;
  while (value >= 0x80) {
    buf[n++] = static_cast<char>(value | 0x80);
    value >>= 7;
  }
  buf[n++] = static_cast<char>(value);
  dst->append(buf, n);
}

void PutVarint64(std::string* dst, uint64_t value) {
  char buf[10];
  int n = 0;
  while (value >= 0x80) {
    buf[n++] = static_cast<char>(value | 0x80);
    value >>= 7;
  }
  buf[n++] = static_cast<char>(value);
  dst->append(buf, n);
}

void PutLengthPrefixedSlice(std::string* dst, const Slice& value) {
  PutVarint64(dst, value.size());
  dst->append(value.data(), value.size());
}

bool GetVarint32(Slice* input, uint32_t* value) {
  uint64_t v64 = 0;
  if (!GetVarint64(input, &v64)) return false;
  if (v64 > 0xffffffffull) return false;
  *value = static_cast<uint32_t>(v64);
  return true;
}

bool GetVarint64(Slice* input, uint64_t* value) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63 && !input->empty(); shift += 7) {
    uint8_t byte = static_cast<uint8_t>((*input)[0]);
    input->remove_prefix(1);
    if (byte & 0x80) {
      result |= (static_cast<uint64_t>(byte & 0x7f) << shift);
    } else {
      result |= (static_cast<uint64_t>(byte) << shift);
      *value = result;
      return true;
    }
  }
  return false;
}

bool GetLengthPrefixedSlice(Slice* input, Slice* result) {
  uint64_t len = 0;
  if (!GetVarint64(input, &len)) return false;
  if (len > input->size()) return false;
  *result = Slice(input->data(), static_cast<size_t>(len));
  input->remove_prefix(static_cast<size_t>(len));
  return true;
}

bool GetFixed32(Slice* input, uint32_t* value) {
  if (input->size() < 4) return false;
  *value = DecodeFixed32(input->data());
  input->remove_prefix(4);
  return true;
}

bool GetFixed64(Slice* input, uint64_t* value) {
  if (input->size() < 8) return false;
  *value = DecodeFixed64(input->data());
  input->remove_prefix(8);
  return true;
}

int VarintLength(uint64_t value) {
  int len = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++len;
  }
  return len;
}

}  // namespace ode
