#ifndef ODE_UTIL_CLOCK_H_
#define ODE_UTIL_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace ode {

/// Source of version-creation timestamps.
///
/// The paper orders versions of an object temporally "according to their
/// creation time".  The library only requires the timestamp source to be
/// monotonically non-decreasing per database, so tests inject a
/// LogicalClock for full determinism while production uses WallClock.
/// Concurrent writers (striped write latches, the server's worker pool)
/// tick the clock from many threads, so Now() must be thread-safe.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Returns a timestamp >= every previously returned timestamp.  Safe to
  /// call from any thread.
  virtual uint64_t Now() = 0;
};

/// Deterministic counter clock: 1, 2, 3, ...
class LogicalClock : public Clock {
 public:
  explicit LogicalClock(uint64_t start = 0) : next_(start) {}
  uint64_t Now() override {
    return next_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  /// Fast-forwards so the next tick is at least `t` (used after recovery so
  /// restored timestamps stay monotone).
  void AdvanceTo(uint64_t t) {
    uint64_t prev = next_.load(std::memory_order_relaxed);
    while (t > prev &&
           !next_.compare_exchange_weak(prev, t, std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<uint64_t> next_;
};

/// Microseconds since the Unix epoch, forced monotone.
class WallClock : public Clock {
 public:
  uint64_t Now() override;

 private:
  std::atomic<uint64_t> last_{0};
};

}  // namespace ode

#endif  // ODE_UTIL_CLOCK_H_
