#ifndef ODE_UTIL_CLOCK_H_
#define ODE_UTIL_CLOCK_H_

#include <cstdint>

namespace ode {

/// Source of version-creation timestamps.
///
/// The paper orders versions of an object temporally "according to their
/// creation time".  The library only requires the timestamp source to be
/// monotonically non-decreasing per database, so tests inject a
/// LogicalClock for full determinism while production uses WallClock.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Returns a timestamp >= every previously returned timestamp.
  virtual uint64_t Now() = 0;
};

/// Deterministic counter clock: 1, 2, 3, ...
class LogicalClock : public Clock {
 public:
  explicit LogicalClock(uint64_t start = 0) : next_(start) {}
  uint64_t Now() override { return ++next_; }
  /// Fast-forwards so the next tick is at least `t` (used after recovery so
  /// restored timestamps stay monotone).
  void AdvanceTo(uint64_t t) {
    if (t > next_) next_ = t;
  }

 private:
  uint64_t next_;
};

/// Microseconds since the Unix epoch, forced monotone.
class WallClock : public Clock {
 public:
  uint64_t Now() override;

 private:
  uint64_t last_ = 0;
};

}  // namespace ode

#endif  // ODE_UTIL_CLOCK_H_
