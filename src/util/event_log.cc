#include "util/event_log.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "util/coding.h"
#include "util/json.h"
#include "util/slice.h"

namespace ode {

namespace {

std::atomic<uint64_t> g_next_log_id{1};

struct TlsEntry {
  uint64_t log_id;
  std::shared_ptr<void> buffer;  // Actually EventLog::ThreadBuffer.
};

/// Per-thread map of log id -> this thread's ring buffer (one entry per
/// EventLog the thread ever recorded into, scanned linearly).
thread_local std::vector<TlsEntry> tls_buffers;

constexpr char kBinaryMagic[4] = {'O', 'D', 'E', 'J'};
constexpr uint32_t kBinaryVersion = 1;
// seq + ts + a + b + c (u64) | type + severity (u8) | tid (u32) | detail.
constexpr size_t kBinaryRecordBytes =
    5 * 8 + 2 * 1 + 4 + EventRecord::kDetailBytes;

}  // namespace

EventLog::EventLog(size_t buffer_events, size_t ring_events, Clock* clock)
    : buffer_events_(std::max<size_t>(buffer_events, 8)),
      ring_events_(std::max<size_t>(ring_events, 8)),
      id_(g_next_log_id.fetch_add(1, std::memory_order_relaxed)),
      clock_(clock) {}

EventLog::~EventLog() = default;

EventLog::ThreadBuffer* EventLog::BufferForThisThread() {
  for (const TlsEntry& e : tls_buffers) {
    if (e.log_id == id_) {
      return static_cast<ThreadBuffer*>(e.buffer.get());
    }
  }
  auto buffer = std::make_shared<ThreadBuffer>();
  {
    // Pre-publication, so the lock is uncontended; taken anyway to keep the
    // capability analysis exact (ring is a guarded field).
    MutexLock buf_lock(buffer->mu);
    buffer->ring.resize(buffer_events_);
  }
  {
    MutexLock lock(mu_);
    buffer->tid = next_tid_++;
    buffers_.push_back(buffer);
  }
  tls_buffers.push_back(TlsEntry{id_, buffer});
  return buffer.get();
}

uint64_t EventLog::NowMicros() {
  if (clock_ != nullptr) {
    MutexLock lock(clock_mu_);
    return clock_->Now();
  }
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  uint64_t us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(now).count());
  // Force monotone non-decreasing across threads (relaxed max loop).
  uint64_t last = wall_last_.load(std::memory_order_relaxed);
  while (us > last && !wall_last_.compare_exchange_weak(
                          last, us, std::memory_order_relaxed)) {
  }
  return std::max(us, last);
}

void EventLog::Record(EventType type, EventSeverity severity, uint64_t a,
                      uint64_t b, uint64_t c, std::string_view detail) {
  if (!enabled()) return;
  if (static_cast<uint8_t>(severity) <
      min_severity_.load(std::memory_order_relaxed)) {
    return;
  }
  const uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t ts = NowMicros();
  ThreadBuffer* buf = BufferForThisThread();
  MutexLock lock(buf->mu);  // Uncontended except vs snapshot/drain.
  EventRecord& slot = buf->ring[buf->next % buf->ring.size()];
  slot.seq = seq;
  slot.ts_micros = ts;
  slot.type = type;
  slot.severity = severity;
  slot.tid = buf->tid;
  slot.a = a;
  slot.b = b;
  slot.c = c;
  const size_t n = std::min(detail.size(), EventRecord::kDetailBytes - 1);
  // ode_lint: allow(unchecked-cast) n is min()-clamped to the detail buffer.
  std::memcpy(slot.detail, detail.data(), n);
  slot.detail[n] = '\0';
  ++buf->next;
  const uint64_t live = buf->next - buf->drained_mark;
  if (live > buf->ring.size()) {
    ++buf->dropped;
    buf->drained_mark = buf->next - buf->ring.size();
  }
}

void EventLog::Collect(std::vector<EventRecord>* out, bool consume) const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    MutexLock lock(mu_);
    buffers = buffers_;
  }
  for (const auto& buf : buffers) {
    MutexLock lock(buf->mu);
    const uint64_t live = buf->next - buf->drained_mark;
    const uint64_t start = buf->next - live;
    for (uint64_t i = start; i < buf->next; ++i) {
      out->push_back(buf->ring[i % buf->ring.size()]);
    }
    if (consume) buf->drained_mark = buf->next;
  }
  std::sort(out->begin(), out->end(),
            [](const EventRecord& x, const EventRecord& y) {
              return x.seq < y.seq;
            });
  // The merged journal is itself a bounded ring: keep the newest.
  if (out->size() > ring_events_) {
    out->erase(out->begin(),
               out->begin() + static_cast<ptrdiff_t>(out->size() -
                                                     ring_events_));
  }
}

void EventLog::Snapshot(std::vector<EventRecord>* out) const {
  Collect(out, /*consume=*/false);
}

void EventLog::Drain(std::vector<EventRecord>* out) {
  Collect(out, /*consume=*/true);
}

uint64_t EventLog::dropped_events() const {
  uint64_t total = 0;
  MutexLock lock(mu_);
  for (const auto& buf : buffers_) {
    MutexLock buf_lock(buf->mu);
    total += buf->dropped;
  }
  return total;
}

size_t EventLog::pending_events() const {
  size_t total = 0;
  MutexLock lock(mu_);
  for (const auto& buf : buffers_) {
    MutexLock buf_lock(buf->mu);
    total += static_cast<size_t>(buf->next - buf->drained_mark);
  }
  return total;
}

const char* EventLog::TypeName(EventType t) {
  switch (t) {
    case EventType::kTxnBegin:
      return "txn_begin";
    case EventType::kTxnCommit:
      return "txn_commit";
    case EventType::kTxnAbort:
      return "txn_abort";
    case EventType::kGroupCommitBatch:
      return "group_commit_batch";
    case EventType::kCheckpoint:
      return "checkpoint";
    case EventType::kVacuumStep:
      return "vacuum_step";
    case EventType::kPoison:
      return "poison";
    case EventType::kFaultInjection:
      return "fault_injection";
    case EventType::kSlowOp:
      return "slow_op";
    case EventType::kRecovery:
      return "recovery";
    case EventType::kHealth:
      return "health";
  }
  return "unknown";
}

const char* EventLog::SeverityName(EventSeverity s) {
  switch (s) {
    case EventSeverity::kDebug:
      return "debug";
    case EventSeverity::kInfo:
      return "info";
    case EventSeverity::kWarn:
      return "warn";
    case EventSeverity::kError:
      return "error";
  }
  return "unknown";
}

void EventLog::AppendJson(JsonWriter* w, const EventRecord& e) {
  w->BeginObject();
  w->KV("seq", e.seq);
  w->KV("ts_micros", e.ts_micros);
  w->KV("type", TypeName(e.type));
  w->KV("severity", SeverityName(e.severity));
  w->KV("tid", e.tid);
  w->KV("a", e.a);
  w->KV("b", e.b);
  w->KV("c", e.c);
  w->KV("detail", std::string_view(e.detail));
  w->EndObject();
}

std::string EventLog::ToJson(const std::vector<EventRecord>& events) {
  JsonWriter w;
  w.BeginArray();
  for (const EventRecord& e : events) AppendJson(&w, e);
  w.EndArray();
  return w.Take();
}

void EventLog::EncodeBinary(const std::vector<EventRecord>& events,
                            std::string* out) {
  out->append(kBinaryMagic, sizeof(kBinaryMagic));
  PutFixed32(out, kBinaryVersion);
  PutFixed64(out, events.size());
  out->reserve(out->size() + events.size() * kBinaryRecordBytes);
  for (const EventRecord& e : events) {
    PutFixed64(out, e.seq);
    PutFixed64(out, e.ts_micros);
    PutFixed64(out, e.a);
    PutFixed64(out, e.b);
    PutFixed64(out, e.c);
    out->push_back(static_cast<char>(e.type));
    out->push_back(static_cast<char>(e.severity));
    PutFixed32(out, e.tid);
    out->append(e.detail, EventRecord::kDetailBytes);
  }
}

bool EventLog::DecodeBinary(std::string_view in,
                            std::vector<EventRecord>* out) {
  if (in.size() < sizeof(kBinaryMagic) + 4 + 8) return false;
  if (std::memcmp(in.data(), kBinaryMagic, sizeof(kBinaryMagic)) != 0) {
    return false;
  }
  Slice s(in.data() + sizeof(kBinaryMagic),
          in.size() - sizeof(kBinaryMagic));
  uint32_t version = 0;
  uint64_t count = 0;
  if (!GetFixed32(&s, &version) || version != kBinaryVersion) return false;
  if (!GetFixed64(&s, &count)) return false;
  // Divide, don't multiply: `count * kBinaryRecordBytes` wraps uint64_t for
  // hostile counts, and a wrapped product that happens to equal s.size()
  // would drive a giant reserve() and reads past the buffer below.
  if (count > s.size() / kBinaryRecordBytes) return false;
  if (s.size() != count * kBinaryRecordBytes) return false;
  out->reserve(out->size() + count);
  for (uint64_t i = 0; i < count; ++i) {
    EventRecord e;
    GetFixed64(&s, &e.seq);
    GetFixed64(&s, &e.ts_micros);
    GetFixed64(&s, &e.a);
    GetFixed64(&s, &e.b);
    GetFixed64(&s, &e.c);
    e.type = static_cast<EventType>(s[0]);
    e.severity = static_cast<EventSeverity>(s[1]);
    s.remove_prefix(2);
    uint32_t tid = 0;
    GetFixed32(&s, &tid);
    e.tid = tid;
    // Record size (incl. detail) was checked against the remaining buffer.
    // ode_lint: allow(unchecked-cast) fixed-size copy from a sized record
    std::memcpy(e.detail, s.data(), EventRecord::kDetailBytes);
    e.detail[EventRecord::kDetailBytes - 1] = '\0';
    s.remove_prefix(EventRecord::kDetailBytes);
    out->push_back(e);
  }
  return true;
}

}  // namespace ode
