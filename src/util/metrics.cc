#include "util/metrics.h"

#include <algorithm>
#include <bit>
#include <cctype>
#include <cstdio>

#include "util/json.h"

namespace ode {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

int Histogram::BucketFor(uint64_t value) {
  if (value == 0) return 0;
  // Octaves 0..kSubShift are too narrow to hold kSubBuckets distinct
  // integers; those values (1 .. 2*kSubBuckets-1) map to exact buckets so
  // every bucket index is reachable and bounds round-trip exactly.
  if (value <= kLinearBuckets) return static_cast<int>(value);
  const int octave = std::bit_width(value) - 1;  // floor(log2(value))
  if (octave >= kOctaves) return kNumBuckets - 1;  // Overflow bucket.
  // Position within the octave, in sub-buckets of width 2^(octave-kSubShift).
  const uint64_t offset = value - (uint64_t{1} << octave);
  const int sub = static_cast<int>(offset >> (octave - kSubShift));
  return 1 + kLinearBuckets + (octave - kSubShift - 1) * kSubBuckets + sub;
}

uint64_t Histogram::BucketLowerBound(int b) {
  if (b <= 0) return 0;
  if (b >= kNumBuckets - 1) return uint64_t{1} << kOctaves;
  if (b <= kLinearBuckets) return static_cast<uint64_t>(b);
  const int rel = b - 1 - kLinearBuckets;
  const int octave = kSubShift + 1 + rel / kSubBuckets;
  const int sub = rel % kSubBuckets;
  return (uint64_t{1} << octave) +
         (static_cast<uint64_t>(sub) << (octave - kSubShift));
}

uint64_t Histogram::BucketUpperBound(int b) {
  if (b >= kNumBuckets - 1) return UINT64_MAX;
  return BucketLowerBound(b + 1);
}

void Histogram::Record(uint64_t value) {
  buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t cur = min_.load(std::memory_order_relaxed);
  while (value < cur &&
         !min_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (value > cur &&
         !max_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  // Copy the buckets once so percentile math runs over a stable view.
  std::array<uint64_t, kNumBuckets> counts;
  uint64_t total = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  snap.count = total;
  snap.sum = sum_.load(std::memory_order_relaxed);
  if (total == 0) return snap;
  snap.min = min_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);

  // Percentile by cumulative walk with linear interpolation inside the
  // bucket, clamped to the observed min/max so tails don't overshoot.
  auto percentile = [&](double q) -> double {
    const double rank = q * static_cast<double>(total);
    uint64_t cum = 0;
    for (int i = 0; i < kNumBuckets; ++i) {
      if (counts[i] == 0) continue;
      if (static_cast<double>(cum + counts[i]) >= rank) {
        const double frac =
            (rank - static_cast<double>(cum)) / static_cast<double>(counts[i]);
        const double lo = static_cast<double>(BucketLowerBound(i));
        const double hi = static_cast<double>(
            std::min(BucketUpperBound(i), snap.max + 1));
        double v = lo + frac * (hi - lo);
        v = std::max(v, static_cast<double>(snap.min));
        v = std::min(v, static_cast<double>(snap.max));
        return v;
      }
      cum += counts[i];
    }
    return static_cast<double>(snap.max);
  };
  snap.p50 = percentile(0.50);
  snap.p90 = percentile(0.90);
  snap.p99 = percentile(0.99);
  return snap;
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

MetricsRegistry::Snapshot MetricsRegistry::SnapshotAll() const {
  MutexLock lock(mu_);
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.emplace_back(name, h->Snapshot());
  }
  return snap;
}

// ---------------------------------------------------------------------------
// Export renderers
// ---------------------------------------------------------------------------

namespace {

/// Prometheus metric names admit [a-zA-Z0-9_:]; our dotted instrument names
/// ("wal.appends") become underscored, prefixed with the project namespace.
std::string PromName(const std::string& name) {
  std::string out = "ode_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    const bool ok = (std::isalnum(static_cast<unsigned char>(c)) != 0) ||
                    c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void AppendPromDouble(std::string* out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

}  // namespace

std::string MetricsRegistry::RenderPrometheusText(const Snapshot& snap) {
  std::string out;
  out.reserve(4096);
  for (const auto& [name, value] : snap.counters) {
    const std::string n = PromName(name);
    out.append("# TYPE ").append(n).append(" counter\n");
    out.append(n).append(" ").append(std::to_string(value)).push_back('\n');
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string n = PromName(name);
    out.append("# TYPE ").append(n).append(" gauge\n");
    out.append(n).append(" ").append(std::to_string(value)).push_back('\n');
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string n = PromName(name);
    out.append("# TYPE ").append(n).append(" summary\n");
    const std::pair<const char*, double> quantiles[] = {
        {"0.5", h.p50}, {"0.9", h.p90}, {"0.99", h.p99}};
    for (const auto& [q, v] : quantiles) {
      out.append(n).append("{quantile=\"").append(q).append("\"} ");
      AppendPromDouble(&out, v);
      out.push_back('\n');
    }
    out.append(n).append("_sum ").append(std::to_string(h.sum));
    out.push_back('\n');
    out.append(n).append("_count ").append(std::to_string(h.count));
    out.push_back('\n');
  }
  return out;
}

void MetricsRegistry::AppendJson(JsonWriter* w, const Snapshot& snap) {
  w->BeginObject();
  w->Key("counters");
  w->BeginObject();
  for (const auto& [name, value] : snap.counters) w->KV(name, value);
  w->EndObject();
  w->Key("gauges");
  w->BeginObject();
  for (const auto& [name, value] : snap.gauges) w->KV(name, value);
  w->EndObject();
  w->Key("histograms");
  w->BeginObject();
  for (const auto& [name, h] : snap.histograms) {
    w->Key(name);
    w->BeginObject();
    w->KV("count", h.count);
    w->KV("sum", h.sum);
    w->KV("min", h.min);
    w->KV("max", h.max);
    w->KV("mean", h.mean());
    w->KV("p50", h.p50);
    w->KV("p90", h.p90);
    w->KV("p99", h.p99);
    w->EndObject();
  }
  w->EndObject();
  w->EndObject();
}

std::string MetricsRegistry::RenderJson(const Snapshot& snap) {
  JsonWriter w;
  AppendJson(&w, snap);
  return w.Take();
}

}  // namespace ode
