#ifndef ODE_UTIL_METRICS_H_
#define ODE_UTIL_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace ode {

class JsonWriter;

// ---------------------------------------------------------------------------
// Metrics substrate
// ---------------------------------------------------------------------------
//
// A MetricsRegistry is a name -> instrument table holding three instrument
// kinds, all safe to record into from any number of threads without locks:
//
//  - Counter:   monotonically increasing u64 (relaxed atomic add).
//  - Gauge:     point-in-time i64 (relaxed atomic store).
//  - Histogram: log-bucketed latency/size distribution with lock-free
//               recording and p50/p90/p99/max snapshots.
//
// Lookup by name takes the registry mutex (it is the registration slow
// path); callers resolve instruments ONCE and keep the returned pointer,
// which stays valid for the registry's lifetime.  Recording through a held
// pointer never locks.
//
// `MetricsRegistry::Default()` is the process-wide registry.  A Database
// normally owns a private registry instead (DatabaseOptions::metrics),
// because several databases commonly coexist in one process (every test
// fixture) and their counters must not bleed into each other;
// Database::stats() is a compatibility view over that per-database registry.

/// Monotonic counter.  All methods are thread-safe and lock-free.
class Counter {
 public:
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  /// Overwrites the value.  Only for snapshot-time mirroring of counters
  /// that are maintained elsewhere (e.g. per-shard cache counters).
  void Set(uint64_t v) { value_.store(v, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time signed value.  Thread-safe and lock-free.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Coherent-enough summary of one histogram (counts are read relaxed, so a
/// snapshot taken during concurrent recording may be mid-update by a few
/// events; totals are exact once recording quiesces).
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;  ///< 0 when count == 0.
  uint64_t max = 0;
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;
  double mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / count;
  }
};

/// Log-linear bucketed histogram of unsigned values (we record nanoseconds,
/// but the math is unit-agnostic).
///
/// Buckets: one zero bucket; exact buckets for 1 .. 2*kSubBuckets-1 (octaves
/// this narrow cannot be subdivided, so each integer gets its own bucket);
/// then kSubBuckets buckets per power of two ("octave") up to 2^kOctaves;
/// then one overflow bucket.  Every bucket is reachable and
/// BucketLowerBound(BucketFor(v)) <= v < BucketUpperBound(BucketFor(v))
/// holds for all v — relative bucket width <= 1/kSubBuckets, i.e. quantile
/// error <= 25% with kSubBuckets = 4, plenty for latency work.  Recording
/// is one relaxed fetch_add on the bucket plus count/sum adds and min/max
/// CAS loops: no locks, safe from any thread.
class Histogram {
 public:
  static constexpr int kSubBuckets = 4;   // Per octave; power of two.
  static constexpr int kSubShift = 2;     // log2(kSubBuckets).
  static constexpr int kOctaves = 40;     // 2^40 ns ~ 18 minutes.
  // Values 1 .. 2*kSubBuckets-1 each get an exact bucket.
  static constexpr int kLinearBuckets = 2 * kSubBuckets - 1;
  // [0] zero | kLinearBuckets exact | log-linear octaves | [last] overflow.
  static constexpr int kNumBuckets =
      1 + kLinearBuckets + (kOctaves - kSubShift - 1) * kSubBuckets + 1;

  /// Bucket index for `value` (total order, 0 .. kNumBuckets-1).
  static int BucketFor(uint64_t value);
  /// Smallest value that lands in bucket `b`.
  static uint64_t BucketLowerBound(int b);
  /// One past the largest value in bucket `b` (i.e. lower bound of b+1);
  /// saturates for the overflow bucket.
  static uint64_t BucketUpperBound(int b);

  void Record(uint64_t value);

  HistogramSnapshot Snapshot() const;

  /// Convenience: nanoseconds on the monotonic clock, for Record() timing.
  static uint64_t NowNanos() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

/// RAII latency recorder: records elapsed nanoseconds into `hist` on scope
/// exit.  A null histogram makes the whole object a no-op (the sampled-out
/// case), costing only one branch.
class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram* hist)
      : hist_(hist), start_(hist != nullptr ? Histogram::NowNanos() : 0) {}
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;
  ~ScopedLatency() {
    if (hist_ != nullptr) hist_->Record(Histogram::NowNanos() - start_);
  }

 private:
  Histogram* hist_;
  uint64_t start_;
};

/// Cheap run-time sampling for hot paths: true on every Nth call per thread
/// (N rounded down to a power of two; 0 disables, 1 samples everything).
/// The countdown is thread-local, so the unsampled fast path is one TLS
/// load + mask + branch — no shared cache line, no clock read.
class Sampler {
 public:
  explicit Sampler(uint32_t every) {
    if (every == 0) {
      mask_ = UINT32_MAX;
      enabled_ = false;
    } else {
      uint32_t p = 1;
      while (p * 2 <= every) p *= 2;
      mask_ = p - 1;
      enabled_ = true;
    }
  }
  bool enabled() const { return enabled_; }
  bool Tick() const {
    if (!enabled_) return false;
    thread_local uint32_t n = 0;
    return (n++ & mask_) == 0;
  }

 private:
  uint32_t mask_;
  bool enabled_;
};

/// Name -> instrument table.  GetX() registers on first use and returns a
/// pointer that stays valid for the registry's lifetime; recording through
/// the pointer is lock-free.  The three instrument kinds have independent
/// namespaces, but sharing a name across kinds is a bug by convention.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry, for code not attached to any database.
  static MetricsRegistry& Default();

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  /// Everything in the registry, sorted by name within each kind.
  struct Snapshot {
    std::vector<std::pair<std::string, uint64_t>> counters;
    std::vector<std::pair<std::string, int64_t>> gauges;
    std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
  };
  Snapshot SnapshotAll() const;

  // --- Export renderers (the diagnostics / scrape surface) ---

  /// Prometheus text exposition format (version 0.0.4): counters and gauges
  /// one sample each, histograms as summaries (quantile="0.5|0.9|0.99" plus
  /// `_sum`/`_count`).  Instrument names are prefixed `ode_` and sanitized
  /// (every char outside [a-zA-Z0-9_:] becomes '_', so "wal.appends" scrapes
  /// as ode_wal_appends).  Static overloads render an already-taken
  /// snapshot; the members snapshot first.
  static std::string RenderPrometheusText(const Snapshot& snap);
  std::string RenderPrometheusText() const {
    return RenderPrometheusText(SnapshotAll());
  }

  /// JSON object {"counters":{name:value},"gauges":{...},"histograms":
  /// {name:{count,sum,min,max,mean,p50,p90,p99}}} — the schema odedump
  /// `stats --format=json`, METRICS.json exports, and diagnostics dumps
  /// embed.
  static std::string RenderJson(const Snapshot& snap);
  std::string RenderJson() const { return RenderJson(SnapshotAll()); }

  /// Appends the RenderJson object to an in-progress document (diagnostics
  /// dumps nest the metrics snapshot inside a larger JSON file).
  static void AppendJson(JsonWriter* w, const Snapshot& snap);

 private:
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      ODE_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      ODE_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      ODE_GUARDED_BY(mu_);
};

}  // namespace ode

#endif  // ODE_UTIL_METRICS_H_
