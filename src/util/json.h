#ifndef ODE_UTIL_JSON_H_
#define ODE_UTIL_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ode {

// ---------------------------------------------------------------------------
// Minimal JSON emission
// ---------------------------------------------------------------------------
//
// The diagnostics pipeline (event-log drain, MetricsRegistry::RenderJson,
// StorageEngine::DumpDiagnostics) emits machine-readable JSON from several
// layers.  Hand-rolled string concatenation scattered across those sites is
// how malformed dumps happen, so the escaping and nesting bookkeeping live
// here once.  This is a writer only — the consumers (odedump, ode_top, the
// test parsers) own their own reading side, which keeps util/ free of a
// parser nobody's hot path needs.

/// Appends the JSON string-literal encoding of `s` (including the
/// surrounding quotes) to `out`.  Control characters are \u-escaped; the
/// input is treated as raw bytes (valid UTF-8 passes through unchanged).
void JsonAppendEscaped(std::string* out, std::string_view s);

/// Convenience: the escaped form as a fresh string.
std::string JsonEscape(std::string_view s);

/// Emits one JSON document into an owned buffer.  The caller drives the
/// nesting explicitly (BeginObject/EndObject, BeginArray/EndArray) and the
/// writer inserts commas; mismatched Begin/End pairs produce malformed
/// output rather than crashing, so tests assert on the parsed result.
///
/// Doubles are emitted with enough precision to round-trip; NaN/Inf (not
/// representable in JSON) are emitted as 0.
class JsonWriter {
 public:
  JsonWriter() = default;

  // Values (inside an array, or as the root).
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();
  void Value(std::string_view s);
  void Value(const char* s) { Value(std::string_view(s)); }
  void Value(uint64_t v);
  void Value(int64_t v);
  void Value(uint32_t v) { Value(static_cast<uint64_t>(v)); }
  void Value(int v) { Value(static_cast<int64_t>(v)); }
  void Value(double v);
  void Value(bool v);
  void Null();

  // Key + value (inside an object).
  void Key(std::string_view k);
  template <typename T>
  void KV(std::string_view k, T v) {
    Key(k);
    Value(v);
  }

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  void Comma();

  std::string out_;
  // One bool per open container: true once the first element was written
  // (i.e. the next element needs a leading comma).
  std::vector<bool> need_comma_;
  bool pending_key_ = false;
};

}  // namespace ode

#endif  // ODE_UTIL_JSON_H_
