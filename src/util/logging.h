#ifndef ODE_UTIL_LOGGING_H_
#define ODE_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace ode {

/// Severity levels for the library logger.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

/// Minimal leveled logger writing to stderr.  Level is a process-wide knob;
/// the default (kWarn) keeps the library silent in normal operation, which
/// matters because benchmarks run in-process.
class Logger {
 public:
  static LogLevel level();
  static void set_level(LogLevel level);
  static void Write(LogLevel level, const char* file, int line,
                    const std::string& message);
};

namespace logging_internal {

/// Accumulates one log statement and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { Logger::Write(level_, file_, line_, stream_.str()); }

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace logging_internal

#define ODE_LOG(severity)                                           \
  if (::ode::LogLevel::severity < ::ode::Logger::level()) {         \
  } else                                                            \
    ::ode::logging_internal::LogMessage(::ode::LogLevel::severity,  \
                                        __FILE__, __LINE__)         \
        .stream()

#define ODE_LOG_DEBUG ODE_LOG(kDebug)
#define ODE_LOG_INFO ODE_LOG(kInfo)
#define ODE_LOG_WARN ODE_LOG(kWarn)
#define ODE_LOG_ERROR ODE_LOG(kError)

/// Terminates the process if `condition` is false.  Used only where an API
/// cannot report a Status (e.g., the convenience operator-> of smart
/// pointers); every such site also offers a Status-returning alternative.
#define ODE_CHECK(condition)                                       \
  do {                                                             \
    if (!(condition)) {                                            \
      ::ode::Logger::Write(::ode::LogLevel::kError, __FILE__,      \
                           __LINE__, "CHECK failed: " #condition); \
      ::std::abort();                                              \
    }                                                              \
  } while (0)

}  // namespace ode

#endif  // ODE_UTIL_LOGGING_H_
