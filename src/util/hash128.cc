#include "util/hash128.h"

namespace ode {

namespace {

/// Explicit little-endian load so the hash is identical on any host
/// endianness (the value is persisted as a store key).
uint64_t LoadLE64(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | static_cast<uint8_t>(p[i]);
  return v;
}

uint64_t Rotl64(uint64_t v, int r) { return (v << r) | (v >> (64 - r)); }

/// 64 -> 64 bit finalizer with full avalanche (the xxhash/murmur "fmix"
/// family): every input bit flips ~half the output bits.
uint64_t Mix64(uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdull;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ull;
  k ^= k >> 33;
  return k;
}

constexpr uint64_t kC1 = 0x87c37b91114253d5ull;
constexpr uint64_t kC2 = 0x4cf5ad432745937full;

}  // namespace

Hash128 HashPayload128(const Slice& data) {
  // Murmur3-style x64 128-bit construction: two 64-bit lanes absorbing
  // 16-byte blocks with independent odd multipliers and cross-lane rotation,
  // then a length-keyed finalization.  Not cryptographic — the store's
  // threat model is accidental collision, which this family's avalanche
  // quality covers — but strong enough that 2^64 blobs are needed for a
  // birthday collision.
  const char* p = data.data();
  const size_t len = data.size();
  const size_t nblocks = len / 16;

  uint64_t h1 = 0x9368e53c2f6af274ull ^ len;
  uint64_t h2 = 0x586dcd208f7cd3fdull ^ len;

  for (size_t i = 0; i < nblocks; ++i) {
    uint64_t k1 = LoadLE64(p + i * 16);
    uint64_t k2 = LoadLE64(p + i * 16 + 8);
    k1 *= kC1;
    k1 = Rotl64(k1, 31);
    k1 *= kC2;
    h1 ^= k1;
    h1 = Rotl64(h1, 27);
    h1 += h2;
    h1 = h1 * 5 + 0x52dce729;
    k2 *= kC2;
    k2 = Rotl64(k2, 33);
    k2 *= kC1;
    h2 ^= k2;
    h2 = Rotl64(h2, 31);
    h2 += h1;
    h2 = h2 * 5 + 0x38495ab5;
  }

  // Tail: up to 15 remaining bytes, absorbed via fixed-width loads of the
  // byte-padded remainder (branch ladder mirrors the reference scheme).
  const char* tail = p + nblocks * 16;
  const size_t rem = len & 15;
  uint64_t k1 = 0, k2 = 0;
  if (rem > 8) {
    k1 = LoadLE64(tail);
    for (size_t i = rem; i > 8; --i) {
      k2 = (k2 << 8) | static_cast<uint8_t>(tail[i - 1]);
    }
  } else {
    for (size_t i = rem; i > 0; --i) {
      k1 = (k1 << 8) | static_cast<uint8_t>(tail[i - 1]);
    }
  }
  if (rem > 8) {
    k2 *= kC2;
    k2 = Rotl64(k2, 33);
    k2 *= kC1;
    h2 ^= k2;
  }
  if (rem > 0) {
    k1 *= kC1;
    k1 = Rotl64(k1, 31);
    k1 *= kC2;
    h1 ^= k1;
  }

  h1 ^= len;
  h2 ^= len;
  h1 += h2;
  h2 += h1;
  h1 = Mix64(h1);
  h2 = Mix64(h2);
  h1 += h2;
  h2 += h1;

  Hash128 out{h1, h2};
  // The all-zero value is VersionMeta's "no hash recorded" sentinel; map the
  // (one in 2^128) genuine zero away from it deterministically.
  if (out.IsZero()) out.lo = 1;
  return out;
}

std::string Hash128::Encode() const {
  std::string out;
  out.reserve(16);
  for (int shift = 56; shift >= 0; shift -= 8) {
    out.push_back(static_cast<char>((hi >> shift) & 0xff));
  }
  for (int shift = 56; shift >= 0; shift -= 8) {
    out.push_back(static_cast<char>((lo >> shift) & 0xff));
  }
  return out;
}

bool Hash128::Decode(const Slice& bytes, Hash128* out) {
  if (bytes.size() != 16) return false;
  uint64_t hi = 0, lo = 0;
  for (int i = 0; i < 8; ++i) {
    hi = (hi << 8) | static_cast<uint8_t>(bytes[i]);
  }
  for (int i = 8; i < 16; ++i) {
    lo = (lo << 8) | static_cast<uint8_t>(bytes[i]);
  }
  out->hi = hi;
  out->lo = lo;
  return true;
}

std::string Hash128::ToHex() const {
  static const char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(32);
  const std::string encoded = Encode();
  for (char c : encoded) {
    const auto b = static_cast<uint8_t>(c);
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xf]);
  }
  return out;
}

}  // namespace ode
