#include "util/clock.h"

#include <chrono>

namespace ode {

uint64_t WallClock::Now() {
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  const uint64_t us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(now).count());
  uint64_t prev = last_.load(std::memory_order_relaxed);
  for (;;) {
    const uint64_t candidate = us > prev ? us : prev + 1;
    if (last_.compare_exchange_weak(prev, candidate,
                                    std::memory_order_relaxed)) {
      return candidate;
    }
  }
}

}  // namespace ode
