#include "util/clock.h"

#include <chrono>

namespace ode {

uint64_t WallClock::Now() {
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  uint64_t us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(now).count());
  if (us <= last_) us = last_ + 1;
  last_ = us;
  return us;
}

}  // namespace ode
