#include "util/json.h"

#include <cmath>
#include <cstdio>

namespace ode {

void JsonAppendEscaped(std::string* out, std::string_view s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  JsonAppendEscaped(&out, s);
  return out;
}

void JsonWriter::Comma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // Value directly follows "key": — no comma.
  }
  if (!need_comma_.empty()) {
    if (need_comma_.back()) out_.push_back(',');
    need_comma_.back() = true;
  }
}

void JsonWriter::BeginObject() {
  Comma();
  out_.push_back('{');
  need_comma_.push_back(false);
}

void JsonWriter::EndObject() {
  if (!need_comma_.empty()) need_comma_.pop_back();
  out_.push_back('}');
}

void JsonWriter::BeginArray() {
  Comma();
  out_.push_back('[');
  need_comma_.push_back(false);
}

void JsonWriter::EndArray() {
  if (!need_comma_.empty()) need_comma_.pop_back();
  out_.push_back(']');
}

void JsonWriter::Value(std::string_view s) {
  Comma();
  JsonAppendEscaped(&out_, s);
}

void JsonWriter::Value(uint64_t v) {
  Comma();
  out_.append(std::to_string(v));
}

void JsonWriter::Value(int64_t v) {
  Comma();
  out_.append(std::to_string(v));
}

void JsonWriter::Value(double v) {
  Comma();
  if (!std::isfinite(v)) {
    out_.push_back('0');
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out_.append(buf);
}

void JsonWriter::Value(bool v) {
  Comma();
  out_.append(v ? "true" : "false");
}

void JsonWriter::Null() {
  Comma();
  out_.append("null");
}

void JsonWriter::Key(std::string_view k) {
  Comma();
  JsonAppendEscaped(&out_, k);
  out_.push_back(':');
  pending_key_ = true;
}

}  // namespace ode
