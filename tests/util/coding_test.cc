#include "util/coding.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "util/random.h"

namespace ode {
namespace {

TEST(CodingTest, Fixed16RoundTrip) {
  for (uint32_t v : {0u, 1u, 255u, 256u, 4096u, 65535u}) {
    char buf[2];
    EncodeFixed16(buf, static_cast<uint16_t>(v));
    EXPECT_EQ(DecodeFixed16(buf), v);
  }
}

TEST(CodingTest, Fixed32RoundTrip) {
  for (uint32_t v : {0u, 1u, 0xffu, 0x1234u, 0xdeadbeefu, 0xffffffffu}) {
    char buf[4];
    EncodeFixed32(buf, v);
    EXPECT_EQ(DecodeFixed32(buf), v);
  }
}

TEST(CodingTest, Fixed64RoundTrip) {
  for (uint64_t v : {uint64_t{0}, uint64_t{1}, uint64_t{0xffffffff},
                     uint64_t{0x123456789abcdef0},
                     std::numeric_limits<uint64_t>::max()}) {
    char buf[8];
    EncodeFixed64(buf, v);
    EXPECT_EQ(DecodeFixed64(buf), v);
  }
}

TEST(CodingTest, FixedEncodingIsLittleEndian) {
  char buf[4];
  EncodeFixed32(buf, 0x01020304u);
  EXPECT_EQ(static_cast<uint8_t>(buf[0]), 0x04);
  EXPECT_EQ(static_cast<uint8_t>(buf[3]), 0x01);
}

TEST(CodingTest, Varint32RoundTrip) {
  std::vector<uint32_t> values = {0, 1, 127, 128, 16383, 16384,
                                  0xffffffffu};
  for (uint32_t v : values) {
    std::string buf;
    PutVarint32(&buf, v);
    Slice input(buf);
    uint32_t decoded = 0;
    ASSERT_TRUE(GetVarint32(&input, &decoded));
    EXPECT_EQ(decoded, v);
    EXPECT_TRUE(input.empty());
  }
}

TEST(CodingTest, Varint64RoundTrip) {
  std::vector<uint64_t> values = {0, 1, 127, 128, (1ull << 35),
                                  std::numeric_limits<uint64_t>::max()};
  for (uint64_t v : values) {
    std::string buf;
    PutVarint64(&buf, v);
    Slice input(buf);
    uint64_t decoded = 0;
    ASSERT_TRUE(GetVarint64(&input, &decoded));
    EXPECT_EQ(decoded, v);
  }
}

TEST(CodingTest, VarintLengthMatchesEncoding) {
  for (uint64_t v : {0ull, 127ull, 128ull, 16384ull, (1ull << 62)}) {
    std::string buf;
    PutVarint64(&buf, v);
    EXPECT_EQ(VarintLength(v), static_cast<int>(buf.size()));
  }
}

TEST(CodingTest, TruncatedVarintFails) {
  std::string buf;
  PutVarint64(&buf, 1ull << 40);
  for (size_t cut = 0; cut + 1 < buf.size(); ++cut) {
    Slice input(buf.data(), cut);
    uint64_t v = 0;
    EXPECT_FALSE(GetVarint64(&input, &v)) << "cut=" << cut;
  }
}

TEST(CodingTest, Varint32RejectsOversizedValue) {
  std::string buf;
  PutVarint64(&buf, 0x100000000ull);  // > uint32 max.
  Slice input(buf);
  uint32_t v = 0;
  EXPECT_FALSE(GetVarint32(&input, &v));
}

TEST(CodingTest, LengthPrefixedSliceRoundTrip) {
  std::string buf;
  PutLengthPrefixedSlice(&buf, Slice("hello"));
  PutLengthPrefixedSlice(&buf, Slice(""));
  PutLengthPrefixedSlice(&buf, Slice("world!"));
  Slice input(buf);
  Slice a, b, c;
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &a));
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &b));
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &c));
  EXPECT_EQ(a.ToString(), "hello");
  EXPECT_EQ(b.ToString(), "");
  EXPECT_EQ(c.ToString(), "world!");
  EXPECT_TRUE(input.empty());
}

TEST(CodingTest, LengthPrefixedSliceRejectsBadLength) {
  std::string buf;
  PutVarint64(&buf, 100);  // Claims 100 bytes but provides 3.
  buf += "abc";
  Slice input(buf);
  Slice out;
  EXPECT_FALSE(GetLengthPrefixedSlice(&input, &out));
}

TEST(CodingTest, GetFixedTruncationFails) {
  std::string three(3, 'x');
  Slice in32(three);
  uint32_t v32 = 0;
  EXPECT_FALSE(GetFixed32(&in32, &v32));
  std::string seven(7, 'x');
  Slice in64(seven);
  uint64_t v64 = 0;
  EXPECT_FALSE(GetFixed64(&in64, &v64));
}

TEST(CodingTest, RandomizedVarintRoundTrip) {
  Random rng(20260708);
  std::string buf;
  std::vector<uint64_t> values;
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Next() >> (rng.Uniform(64));
    values.push_back(v);
    PutVarint64(&buf, v);
  }
  Slice input(buf);
  for (uint64_t expected : values) {
    uint64_t v = 0;
    ASSERT_TRUE(GetVarint64(&input, &v));
    EXPECT_EQ(v, expected);
  }
  EXPECT_TRUE(input.empty());
}

}  // namespace
}  // namespace ode
