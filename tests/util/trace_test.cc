// Tests for the trace-event tracer: span capture, sampling, ring-buffer
// wraparound accounting, Chrome JSON rendering (validated with a minimal
// JSON parser), and (under TSan via the *Concurrent* tests) drain racing
// against recording.

#include "util/trace.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace ode {
namespace {

// --- Minimal JSON validator ----------------------------------------------
//
// Just enough of RFC 8259 to prove DrainToChromeJson() emits well-formed
// JSON (objects, arrays, strings with escapes, numbers, literals).  Parses
// the whole input; any syntax error fails.

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // Unescaped.
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(
                    static_cast<unsigned char>(s_[pos_]))) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // Unterminated.
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    if (!DigitRun()) return false;
    if (Peek() == '.') {
      ++pos_;
      if (!DigitRun()) return false;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      if (!DigitRun()) return false;
    }
    return pos_ > start;
  }

  bool DigitRun() {
    const size_t start = pos_;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *p) return false;
    }
    return true;
  }

  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

TEST(JsonParserSelfTest, AcceptsAndRejects) {
  EXPECT_TRUE(JsonParser(R"({"a":[1,2.5,-3e4],"b":"x\n","c":null})").Valid());
  EXPECT_FALSE(JsonParser(R"({"a":1)").Valid());
  EXPECT_FALSE(JsonParser(R"({"a":01x})").Valid());
  EXPECT_FALSE(JsonParser("{\"a\":\"unterminated}").Valid());
}

// --- Span capture ---------------------------------------------------------

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer tracer(64);
  ASSERT_FALSE(tracer.enabled());
  { TraceSpan span(&tracer, "op", "test"); }
  { TraceSpan span(nullptr, "op", "test"); }  // Null tracer: also a no-op.
  EXPECT_EQ(tracer.pending_events(), 0u);
  std::vector<TraceEvent> events;
  tracer.Drain(&events);
  EXPECT_TRUE(events.empty());
}

TEST(TracerTest, SpanFieldsRoundTrip) {
  Tracer tracer(64);
  tracer.set_sample_every(1);
  { TraceSpan span(&tracer, "deref", "core"); }
  std::vector<TraceEvent> events;
  tracer.Drain(&events);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "deref");
  EXPECT_STREQ(events[0].category, "core");
  EXPECT_GT(events[0].start_ns, 0u);

  // Drain cleared the ring (Drain appends to its output, so reset ours).
  events.clear();
  tracer.Drain(&events);
  EXPECT_TRUE(events.empty());
  EXPECT_EQ(tracer.dropped_events(), 0u);
}

TEST(TracerTest, SpansAreSortedByStartTime) {
  Tracer tracer(64);
  tracer.set_sample_every(1);
  for (int i = 0; i < 10; ++i) {
    TraceSpan span(&tracer, "op", "test");
  }
  std::vector<TraceEvent> events;
  tracer.Drain(&events);
  ASSERT_EQ(events.size(), 10u);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].start_ns, events[i].start_ns);
  }
}

TEST(TracerTest, SamplingKeepsOneInN) {
  Tracer tracer(1024);
  tracer.set_sample_every(4);
  // Run on a fresh thread: the sampling countdown is per-thread state that
  // starts at 0 (record) for a newly registered thread.
  std::thread([&tracer] {
    for (int i = 0; i < 400; ++i) {
      TraceSpan span(&tracer, "op", "test");
    }
  }).join();
  std::vector<TraceEvent> events;
  tracer.Drain(&events);
  EXPECT_EQ(events.size(), 100u);
}

// --- Ring wraparound ------------------------------------------------------

TEST(TracerTest, RingWrapsAndCountsDrops) {
  Tracer tracer(8);  // Minimum ring size.
  tracer.set_sample_every(1);
  for (int i = 0; i < 20; ++i) {
    TraceSpan span(&tracer, "op", "test");
  }
  EXPECT_EQ(tracer.pending_events(), 8u);
  EXPECT_EQ(tracer.dropped_events(), 12u);
  std::vector<TraceEvent> events;
  tracer.Drain(&events);
  ASSERT_EQ(events.size(), 8u);
  // The survivors are the newest 8, oldest first.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].start_ns, events[i].start_ns);
  }
  // Drops are cumulative; draining does not reset the counter.
  EXPECT_EQ(tracer.dropped_events(), 12u);
}

// --- Chrome JSON ----------------------------------------------------------

TEST(TracerTest, ChromeJsonIsValidAndComplete) {
  Tracer tracer(256);
  tracer.set_sample_every(1);
  for (int i = 0; i < 5; ++i) {
    TraceSpan span(&tracer, "core.deref_latest", "core");
  }
  const std::string json = tracer.DrainToChromeJson();
  EXPECT_TRUE(JsonParser(json).Valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"core.deref_latest\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // 5 events -> 5 complete-event records.
  size_t count = 0;
  for (size_t pos = 0; (pos = json.find("\"ph\":\"X\"", pos)) !=
                       std::string::npos;
       ++pos) {
    ++count;
  }
  EXPECT_EQ(count, 5u);
}

TEST(TracerTest, ChromeJsonEscapesNames) {
  std::vector<TraceEvent> events(1);
  events[0].name = "quote\"back\\slash\tctrl";
  events[0].category = "test";
  events[0].start_ns = 1000;
  events[0].duration_ns = 500;
  const std::string json = Tracer::ToChromeJson(events);
  EXPECT_TRUE(JsonParser(json).Valid()) << json;
  EXPECT_NE(json.find(R"(quote\"back\\slash\tctrl)"), std::string::npos);
}

TEST(TracerTest, EmptyDrainStillValidJson) {
  Tracer tracer(64);
  const std::string json = tracer.DrainToChromeJson();
  EXPECT_TRUE(JsonParser(json).Valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

// --- Concurrency (names contain "Concurrent" so the TSan CI job picks
// them up via `ctest -R Concurrent`) -------------------------------------

TEST(TracerConcurrentTest, ThreadsGetDistinctTids) {
  Tracer tracer(256);
  tracer.set_sample_every(1);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      for (int i = 0; i < 10; ++i) {
        TraceSpan span(&tracer, "op", "test");
      }
    });
  }
  for (auto& th : threads) th.join();
  std::vector<TraceEvent> events;
  tracer.Drain(&events);
  ASSERT_EQ(events.size(), size_t{kThreads} * 10);
  std::vector<uint32_t> tids;
  for (const TraceEvent& e : events) tids.push_back(e.tid);
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  EXPECT_EQ(tids.size(), size_t{kThreads});
}

TEST(TracerConcurrentTest, DrainWhileRecordingLosesNothingUnwrapped) {
  // Ring large enough never to wrap; every recorded event must surface in
  // exactly one drain.
  Tracer tracer(1 << 16);
  tracer.set_sample_every(1);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5'000;
  std::atomic<int> done{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        TraceSpan span(&tracer, "op", "test");
      }
      done.fetch_add(1);
    });
  }
  size_t total = 0;
  std::vector<TraceEvent> events;
  while (done.load() < kThreads) {
    events.clear();
    tracer.Drain(&events);
    total += events.size();
  }
  for (auto& th : threads) th.join();
  events.clear();
  tracer.Drain(&events);
  total += events.size();
  EXPECT_EQ(total, size_t{kThreads} * kPerThread);
  EXPECT_EQ(tracer.dropped_events(), 0u);
}

}  // namespace
}  // namespace ode
