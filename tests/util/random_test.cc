#include "util/random.h"

#include <gtest/gtest.h>

#include <set>

namespace ode {
namespace {

TEST(RandomTest, SameSeedSameSequence) {
  Random a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RandomTest, UniformStaysInRange) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
  }
}

TEST(RandomTest, RangeInclusive) {
  Random rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // All four values hit in 1000 draws.
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(99);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, OneInRoughFrequency) {
  Random rng(123);
  int hits = 0;
  constexpr int kTrials = 10000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.OneIn(10)) ++hits;
  }
  EXPECT_GT(hits, kTrials / 20);      // > 5%.
  EXPECT_LT(hits, kTrials * 3 / 20);  // < 15%.
}

TEST(RandomTest, NextStringIsPrintableAndSized) {
  Random rng(5);
  std::string s = rng.NextString(64);
  EXPECT_EQ(s.size(), 64u);
  for (char c : s) {
    EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)));
  }
}

TEST(RandomTest, NextBytesCoversFullRange) {
  Random rng(6);
  std::string s = rng.NextBytes(4096);
  std::set<uint8_t> seen;
  for (char c : s) seen.insert(static_cast<uint8_t>(c));
  EXPECT_GT(seen.size(), 200u);  // Nearly all byte values appear.
}

}  // namespace
}  // namespace ode
