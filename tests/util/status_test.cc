#include "util/status.h"

#include <gtest/gtest.h>

#include <sstream>

#include "util/statusor.h"

namespace ode {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_EQ(Status::NotFound("missing thing").message(), "missing thing");
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  EXPECT_EQ(Status::NotFound("no such key").ToString(),
            "not found: no such key");
  EXPECT_EQ(Status::IOError("").ToString(), "io error");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_NE(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_NE(Status::NotFound("a"), Status::Corruption("a"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, StreamOperator) {
  std::ostringstream os;
  os << Status::Aborted("rolled back");
  EXPECT_EQ(os.str(), "aborted: rolled back");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = []() -> Status { return Status::IOError("disk gone"); };
  auto wrapper = [&]() -> Status {
    ODE_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_TRUE(wrapper().IsIOError());
}

TEST(StatusTest, ReturnIfErrorPassesThroughOnOk) {
  auto succeeds = []() -> Status { return Status::OK(); };
  auto wrapper = [&]() -> Status {
    ODE_RETURN_IF_ERROR(succeeds());
    return Status::NotFound("reached end");
  };
  EXPECT_TRUE(wrapper().IsNotFound());
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsNotFound());
  EXPECT_EQ(v.value_or(-1), -1);
}

TEST(StatusOrTest, ValueOrReturnsValueWhenOk) {
  StatusOr<std::string> v = std::string("hello");
  EXPECT_EQ(v.value_or("fallback"), "hello");
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string(1000, 'x');
  std::string taken = std::move(v).value();
  EXPECT_EQ(taken.size(), 1000u);
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v = std::string("abc");
  EXPECT_EQ(v->size(), 3u);
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  auto make = [](bool ok) -> StatusOr<int> {
    if (ok) return 7;
    return Status::Internal("boom");
  };
  auto use = [&](bool ok) -> Status {
    int x = 0;
    ODE_ASSIGN_OR_RETURN(x, make(ok));
    return x == 7 ? Status::OK() : Status::Internal("wrong value");
  };
  EXPECT_TRUE(use(true).ok());
  EXPECT_TRUE(use(false).IsInternal());
}

}  // namespace
}  // namespace ode
