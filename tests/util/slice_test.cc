#include "util/slice.h"

#include <gtest/gtest.h>

namespace ode {
namespace {

TEST(SliceTest, DefaultIsEmpty) {
  Slice s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
}

TEST(SliceTest, FromString) {
  std::string str = "hello";
  Slice s(str);
  EXPECT_EQ(s.size(), 5u);
  EXPECT_EQ(s.data(), str.data());
  EXPECT_EQ(s.ToString(), "hello");
}

TEST(SliceTest, FromCString) {
  Slice s("abc");
  EXPECT_EQ(s.size(), 3u);
}

TEST(SliceTest, Indexing) {
  Slice s("abc");
  EXPECT_EQ(s[0], 'a');
  EXPECT_EQ(s[2], 'c');
}

TEST(SliceTest, RemovePrefix) {
  Slice s("abcdef");
  s.remove_prefix(2);
  EXPECT_EQ(s.ToString(), "cdef");
  s.remove_prefix(4);
  EXPECT_TRUE(s.empty());
}

TEST(SliceTest, CompareOrdersLexicographically) {
  EXPECT_LT(Slice("abc").compare(Slice("abd")), 0);
  EXPECT_GT(Slice("abd").compare(Slice("abc")), 0);
  EXPECT_EQ(Slice("abc").compare(Slice("abc")), 0);
  // Prefix sorts first.
  EXPECT_LT(Slice("ab").compare(Slice("abc")), 0);
  EXPECT_GT(Slice("abc").compare(Slice("ab")), 0);
}

TEST(SliceTest, CompareTreatsBytesUnsigned) {
  const char high[] = {static_cast<char>(0xff)};
  const char low[] = {0x01};
  EXPECT_GT(Slice(high, 1).compare(Slice(low, 1)), 0);
}

TEST(SliceTest, Equality) {
  EXPECT_EQ(Slice("x"), Slice("x"));
  EXPECT_NE(Slice("x"), Slice("y"));
  EXPECT_NE(Slice("x"), Slice("xx"));
}

TEST(SliceTest, StartsWith) {
  EXPECT_TRUE(Slice("abcdef").starts_with(Slice("abc")));
  EXPECT_TRUE(Slice("abc").starts_with(Slice("")));
  EXPECT_FALSE(Slice("ab").starts_with(Slice("abc")));
  EXPECT_FALSE(Slice("xbc").starts_with(Slice("ab")));
}

TEST(SliceTest, EmbeddedNulBytes) {
  std::string data("a\0b", 3);
  Slice s(data);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.ToString(), data);
}

}  // namespace
}  // namespace ode
