// Tests for the metrics substrate: histogram bucket math, percentile
// estimation, registry behaviour, and (under TSan via the *Concurrent*
// tests) lock-free multi-threaded recording.

#include "util/metrics.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace ode {
namespace {

// --- Counter / Gauge ------------------------------------------------------

TEST(CounterTest, AddAndSet) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Set(7);
  EXPECT_EQ(c.value(), 7u);
}

TEST(GaugeTest, SignedSetAndAdd) {
  Gauge g;
  g.Set(-5);
  EXPECT_EQ(g.value(), -5);
  g.Add(15);
  EXPECT_EQ(g.value(), 10);
}

// --- Histogram bucket math ------------------------------------------------

TEST(HistogramBucketTest, ZeroHasItsOwnBucket) {
  EXPECT_EQ(Histogram::BucketFor(0), 0);
  EXPECT_EQ(Histogram::BucketLowerBound(0), 0u);
  EXPECT_EQ(Histogram::BucketFor(1), 1);
}

TEST(HistogramBucketTest, BucketsAreMonotonic) {
  int prev = Histogram::BucketFor(0);
  for (uint64_t v = 1; v < (1u << 20); v = v + (v >> 3) + 1) {
    const int b = Histogram::BucketFor(v);
    EXPECT_GE(b, prev) << "value " << v;
    prev = b;
  }
}

// The defining round-trip: every bucket's lower bound maps back to that
// bucket, and (lower bound - 1) maps strictly below it.
TEST(HistogramBucketTest, LowerBoundRoundTrip) {
  for (int b = 0; b < Histogram::kNumBuckets - 1; ++b) {
    const uint64_t lo = Histogram::BucketLowerBound(b);
    EXPECT_EQ(Histogram::BucketFor(lo), b) << "bucket " << b;
    if (lo > 0) {
      EXPECT_LT(Histogram::BucketFor(lo - 1), b) << "bucket " << b;
    }
  }
}

TEST(HistogramBucketTest, UpperBoundIsNextLowerBound) {
  for (int b = 0; b < Histogram::kNumBuckets - 2; ++b) {
    EXPECT_EQ(Histogram::BucketUpperBound(b), Histogram::BucketLowerBound(b + 1))
        << "bucket " << b;
  }
}

TEST(HistogramBucketTest, HugeValuesLandInOverflow) {
  EXPECT_EQ(Histogram::BucketFor(UINT64_MAX), Histogram::kNumBuckets - 1);
  EXPECT_EQ(Histogram::BucketFor(uint64_t{1} << 63), Histogram::kNumBuckets - 1);
}

// Relative bucket width is 1/kSubBuckets of an octave, so a value's bucket
// bounds are within 2^(1/kSubBuckets)-ish of the value — the quantile error
// contract documented in the header.
TEST(HistogramBucketTest, RelativeErrorBound) {
  for (uint64_t v = 8; v < (1u << 24); v = v * 2 + 3) {
    const int b = Histogram::BucketFor(v);
    const uint64_t lo = Histogram::BucketLowerBound(b);
    const uint64_t hi = Histogram::BucketUpperBound(b);
    EXPECT_LE(lo, v);
    EXPECT_GT(hi, v);
    EXPECT_LE(static_cast<double>(hi - lo) / static_cast<double>(lo),
              1.0 / Histogram::kSubBuckets + 1e-9)
        << "value " << v;
  }
}

// --- Histogram recording + percentiles ------------------------------------

TEST(HistogramTest, EmptySnapshotIsZero) {
  Histogram h;
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum, 0u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 0u);
  EXPECT_EQ(s.p50, 0.0);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(1000);
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.sum, 1000u);
  EXPECT_EQ(s.min, 1000u);
  EXPECT_EQ(s.max, 1000u);
  // Interpolation is clamped to [min, max], so every percentile of a
  // one-value distribution is exactly that value.
  EXPECT_EQ(s.p50, 1000.0);
  EXPECT_EQ(s.p99, 1000.0);
}

TEST(HistogramTest, PercentilesOfUniformRange) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_EQ(s.sum, 1000u * 1001u / 2);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 1000u);
  // Log-bucketing guarantees <= 1/kSubBuckets relative error; allow a
  // little extra for within-bucket interpolation on a uniform input.
  EXPECT_NEAR(s.p50, 500.0, 500.0 * 0.30);
  EXPECT_NEAR(s.p90, 900.0, 900.0 * 0.30);
  EXPECT_NEAR(s.p99, 990.0, 990.0 * 0.30);
  // And they must be ordered.
  EXPECT_LE(s.p50, s.p90);
  EXPECT_LE(s.p90, s.p99);
  EXPECT_LE(s.p99, static_cast<double>(s.max));
  EXPECT_GE(s.p50, static_cast<double>(s.min));
}

TEST(HistogramTest, ZeroAndOverflowValuesCount) {
  Histogram h;
  h.Record(0);
  h.Record(UINT64_MAX);
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 2u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, UINT64_MAX);
}

TEST(HistogramTest, SkewedDistributionTail) {
  // 99 fast ops and 1 slow one: p50 stays near the fast mode, p99 does not
  // reach the outlier (99 of 100 ranks are fast), but max must report it.
  Histogram h;
  for (int i = 0; i < 99; ++i) h.Record(100);
  h.Record(1'000'000);
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_NEAR(s.p50, 100.0, 40.0);
  EXPECT_EQ(s.max, 1'000'000u);
  EXPECT_LT(s.p50, s.p99 + 1e-9);
}

// --- Sampler --------------------------------------------------------------

TEST(SamplerTest, DisabledNeverTicks) {
  Sampler s(0);
  EXPECT_FALSE(s.enabled());
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(s.Tick());
}

TEST(SamplerTest, EveryOneAlwaysTicks) {
  Sampler s(1);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(s.Tick());
}

TEST(SamplerTest, PowerOfTwoRate) {
  // 6 rounds down to 4: exactly one tick per 4 calls on this thread.
  // Run on a fresh thread so this test does not depend on how many ticks
  // other tests consumed from the shared thread-local counter.
  std::thread([] {
    Sampler s(6);
    int ticks = 0;
    for (int i = 0; i < 400; ++i) {
      if (s.Tick()) ++ticks;
    }
    EXPECT_EQ(ticks, 100);
  }).join();
}

// --- Registry -------------------------------------------------------------

TEST(MetricsRegistryTest, SameNameSamePointer) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("x");
  Counter* b = reg.GetCounter("x");
  EXPECT_EQ(a, b);
  EXPECT_NE(reg.GetCounter("y"), a);
  // Kinds have independent namespaces.
  EXPECT_NE(static_cast<void*>(reg.GetGauge("x")), static_cast<void*>(a));
}

TEST(MetricsRegistryTest, PointersSurviveRehashing) {
  MetricsRegistry reg;
  Counter* first = reg.GetCounter("first");
  std::vector<Counter*> all;
  for (int i = 0; i < 1000; ++i) {
    all.push_back(reg.GetCounter("c" + std::to_string(i)));
  }
  first->Add(3);
  EXPECT_EQ(reg.GetCounter("first"), first);
  EXPECT_EQ(first->value(), 3u);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(reg.GetCounter("c" + std::to_string(i)), all[i]);
  }
}

TEST(MetricsRegistryTest, SnapshotAllIsSortedAndComplete) {
  MetricsRegistry reg;
  reg.GetCounter("zeta")->Add(1);
  reg.GetCounter("alpha")->Add(2);
  reg.GetGauge("mid")->Set(-3);
  reg.GetHistogram("lat")->Record(50);
  const MetricsRegistry::Snapshot snap = reg.SnapshotAll();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "alpha");
  EXPECT_EQ(snap.counters[0].second, 2u);
  EXPECT_EQ(snap.counters[1].first, "zeta");
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].second, -3);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].second.count, 1u);
  EXPECT_TRUE(std::is_sorted(snap.counters.begin(), snap.counters.end()));
}

// --- Concurrency (names contain "Concurrent" so the TSan CI job picks
// them up via `ctest -R Concurrent`) -------------------------------------

TEST(MetricsConcurrentTest, CountersAreExactUnderContention) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("contended");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < kPerThread; ++i) c->Increment();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c->value(), uint64_t{kThreads} * kPerThread);
}

TEST(MetricsConcurrentTest, HistogramTotalsAreExactUnderContention) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<uint64_t>(t) * 1000 + 100);
      }
    });
  }
  for (auto& th : threads) th.join();
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(s.min, 100u);
  EXPECT_EQ(s.max, 3100u);
}

TEST(MetricsConcurrentTest, RegistrationRacesYieldOnePointer) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  std::vector<Counter*> seen(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back(
        [&reg, &seen, t] { seen[t] = reg.GetCounter("raced"); });
  }
  for (auto& th : threads) th.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
}

TEST(MetricsConcurrentTest, SnapshotDuringRecordingIsSane) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("live");
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    uint64_t v = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      h->Record(v);
      v = v % 4096 + 1;
    }
  });
  // Wait for the writer to actually start recording (thread startup can
  // outlast the whole snapshot loop on a loaded single-core host).
  while (h->Snapshot().count == 0) std::this_thread::yield();
  for (int i = 0; i < 50; ++i) {
    const HistogramSnapshot s = h->Snapshot();
    // Mid-recording snapshots may be a few events stale but never absurd.
    EXPECT_LE(s.p50, static_cast<double>(s.max) + 1e-9);
    if (s.count > 0) {
      EXPECT_GE(s.max, s.min);
    }
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  const HistogramSnapshot s = h->Snapshot();
  EXPECT_GT(s.count, 0u);
  EXPECT_LE(s.max, 4096u);
}

// --- Export renderers -----------------------------------------------------

// Minimal parser for the Prometheus text exposition format (the subset the
// renderer emits): "# TYPE name kind" declarations followed by samples
// `name value`, `name{quantile="q"} value`, `name_sum v`, `name_count v`.
// The acceptance bar is a round trip: every instrument in the snapshot must
// come back out with its declared type and value.
struct PromDoc {
  std::map<std::string, std::string> types;    // name -> counter/gauge/summary
  std::map<std::string, double> samples;       // full sample key -> value
  bool parse_error = false;

  static PromDoc Parse(const std::string& text) {
    PromDoc doc;
    size_t pos = 0;
    while (pos < text.size()) {
      size_t eol = text.find('\n', pos);
      if (eol == std::string::npos) {
        doc.parse_error = true;  // Renderer always ends lines with '\n'.
        break;
      }
      const std::string line = text.substr(pos, eol - pos);
      pos = eol + 1;
      if (line.empty()) continue;
      if (line[0] == '#') {
        // "# TYPE <name> <kind>"
        std::istringstream in(line);
        std::string hash, type_word, name, kind;
        in >> hash >> type_word >> name >> kind;
        if (hash != "#" || type_word != "TYPE" || name.empty() ||
            kind.empty()) {
          doc.parse_error = true;
        } else {
          doc.types[name] = kind;
        }
        continue;
      }
      const size_t space = line.rfind(' ');
      if (space == std::string::npos) {
        doc.parse_error = true;
        continue;
      }
      const std::string key = line.substr(0, space);
      char* end = nullptr;
      const std::string value_text = line.substr(space + 1);
      const double value = std::strtod(value_text.c_str(), &end);
      if (end == value_text.c_str() || *end != '\0') {
        doc.parse_error = true;
        continue;
      }
      doc.samples[key] = value;
    }
    return doc;
  }
};

TEST(MetricsRenderTest, PrometheusTextRoundTrips) {
  MetricsRegistry reg;
  reg.GetCounter("wal.appends")->Add(42);
  reg.GetCounter("commits")->Add(7);
  reg.GetGauge("pool.resident_pages")->Set(-3);
  Histogram* h = reg.GetHistogram("commit.latency_ns");
  for (uint64_t v = 1; v <= 100; ++v) h->Record(v);

  const MetricsRegistry::Snapshot snap = reg.SnapshotAll();
  const PromDoc doc = PromDoc::Parse(reg.RenderPrometheusText());
  ASSERT_FALSE(doc.parse_error);

  // Counters: dots sanitized to underscores, ode_ prefix, exact values.
  EXPECT_EQ(doc.types.at("ode_wal_appends"), "counter");
  EXPECT_EQ(doc.samples.at("ode_wal_appends"), 42.0);
  EXPECT_EQ(doc.types.at("ode_commits"), "counter");
  EXPECT_EQ(doc.samples.at("ode_commits"), 7.0);

  // Gauges keep their sign.
  EXPECT_EQ(doc.types.at("ode_pool_resident_pages"), "gauge");
  EXPECT_EQ(doc.samples.at("ode_pool_resident_pages"), -3.0);

  // Histograms render as summaries: three quantiles plus _sum/_count, all
  // agreeing with the snapshot the text was rendered from.
  EXPECT_EQ(doc.types.at("ode_commit_latency_ns"), "summary");
  const HistogramSnapshot& hs = snap.histograms.at(0).second;
  ASSERT_EQ(snap.histograms.at(0).first, "commit.latency_ns");
  EXPECT_EQ(doc.samples.at("ode_commit_latency_ns_count"),
            static_cast<double>(hs.count));
  EXPECT_EQ(doc.samples.at("ode_commit_latency_ns_sum"),
            static_cast<double>(hs.sum));
  EXPECT_DOUBLE_EQ(
      doc.samples.at("ode_commit_latency_ns{quantile=\"0.5\"}"), hs.p50);
  EXPECT_DOUBLE_EQ(
      doc.samples.at("ode_commit_latency_ns{quantile=\"0.9\"}"), hs.p90);
  EXPECT_DOUBLE_EQ(
      doc.samples.at("ode_commit_latency_ns{quantile=\"0.99\"}"), hs.p99);

  // Nothing extra leaked into the exposition.
  EXPECT_EQ(doc.types.size(), 4u);
  EXPECT_EQ(doc.samples.size(), 3u + 5u);
}

TEST(MetricsRenderTest, PrometheusTextOfEmptyRegistryIsEmpty) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.RenderPrometheusText(), "");
}

TEST(MetricsRenderTest, JsonCarriesAllInstruments) {
  MetricsRegistry reg;
  reg.GetCounter("ops")->Add(5);
  reg.GetGauge("depth")->Set(9);
  reg.GetHistogram("lat")->Record(1000);
  const std::string json = reg.RenderJson();
  EXPECT_NE(json.find("\"counters\":{\"ops\":5}"), std::string::npos) << json;
  EXPECT_NE(json.find("\"gauges\":{\"depth\":9}"), std::string::npos) << json;
  EXPECT_NE(json.find("\"lat\":{\"count\":1"), std::string::npos) << json;
}

}  // namespace
}  // namespace ode
