// Tests for the structured event journal: ring bounds, severity filtering,
// Snapshot-vs-Drain semantics, drop accounting, multi-threaded sequencing,
// and the JSON / binary wire formats.

#include "util/event_log.h"

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "tests/testing/json_util.h"
#include "util/clock.h"
#include "util/json.h"

namespace ode {
namespace {

TEST(EventLogTest, RecordsCarrySequenceTimestampAndArgs) {
  LogicalClock clock;
  EventLog log(64, 256, &clock);
  log.Record(EventType::kTxnCommit, EventSeverity::kDebug, 7, 3, 950);
  log.Record(EventType::kCheckpoint, EventSeverity::kInfo, 12, 4096);

  std::vector<EventRecord> events;
  log.Snapshot(&events);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[0].type, EventType::kTxnCommit);
  EXPECT_EQ(events[0].a, 7u);
  EXPECT_EQ(events[0].b, 3u);
  EXPECT_EQ(events[0].c, 950u);
  EXPECT_EQ(events[1].seq, 1u);
  EXPECT_EQ(events[1].type, EventType::kCheckpoint);
  // LogicalClock ticks once per record: strictly increasing stamps.
  EXPECT_LT(events[0].ts_micros, events[1].ts_micros);
  EXPECT_EQ(log.total_recorded(), 2u);
}

TEST(EventLogTest, DetailIsCopiedAndTruncated) {
  EventLog log(64, 256);
  log.Record(EventType::kPoison, EventSeverity::kError, 0, 0, 0,
             "IO error: sync failed");
  const std::string long_detail(200, 'x');
  log.Record(EventType::kSlowOp, EventSeverity::kWarn, 1, 2, 0, long_detail);

  std::vector<EventRecord> events;
  log.Snapshot(&events);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].detail, "IO error: sync failed");
  EXPECT_EQ(std::strlen(events[1].detail), EventRecord::kDetailBytes - 1);
}

TEST(EventLogTest, SeverityFilterDropsAtCallSite) {
  EventLog log(64, 256);
  log.set_min_severity(EventSeverity::kWarn);
  log.Record(EventType::kTxnBegin, EventSeverity::kDebug, 1);
  log.Record(EventType::kCheckpoint, EventSeverity::kInfo, 2);
  log.Record(EventType::kSlowOp, EventSeverity::kWarn, 3);
  log.Record(EventType::kPoison, EventSeverity::kError, 4);

  std::vector<EventRecord> events;
  log.Snapshot(&events);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].type, EventType::kSlowOp);
  EXPECT_EQ(events[1].type, EventType::kPoison);
  // Filtered records never consumed a sequence number.
  EXPECT_EQ(log.total_recorded(), 2u);
}

TEST(EventLogTest, DisabledRecordingIsANoOp) {
  EventLog log(64, 256);
  log.set_enabled(false);
  log.Record(EventType::kTxnCommit, EventSeverity::kDebug, 1);
  std::vector<EventRecord> events;
  log.Snapshot(&events);
  EXPECT_TRUE(events.empty());
  EXPECT_EQ(log.total_recorded(), 0u);

  log.set_enabled(true);
  log.Record(EventType::kTxnCommit, EventSeverity::kDebug, 2);
  log.Snapshot(&events);
  EXPECT_EQ(events.size(), 1u);
}

TEST(EventLogTest, SnapshotDoesNotConsumeDrainDoes) {
  EventLog log(64, 256);
  log.Record(EventType::kTxnBegin, EventSeverity::kDebug, 1);
  log.Record(EventType::kTxnCommit, EventSeverity::kDebug, 1);

  std::vector<EventRecord> first, second, drained, after;
  log.Snapshot(&first);
  log.Snapshot(&second);
  EXPECT_EQ(first.size(), 2u);
  EXPECT_EQ(second.size(), 2u);  // Snapshot left the journal intact.

  log.Drain(&drained);
  EXPECT_EQ(drained.size(), 2u);
  log.Drain(&after);
  EXPECT_TRUE(after.empty());  // Drain consumed.
  EXPECT_EQ(log.pending_events(), 0u);
}

TEST(EventLogTest, RingWrapKeepsNewestAndCountsDropped) {
  EventLog log(/*buffer_events=*/8, /*ring_events=*/256);
  for (uint64_t i = 0; i < 20; ++i) {
    log.Record(EventType::kTxnCommit, EventSeverity::kDebug, i);
  }
  std::vector<EventRecord> events;
  log.Snapshot(&events);
  ASSERT_EQ(events.size(), 8u);  // Per-thread ring capacity.
  // The survivors are the newest 8, in order.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].a, 12 + i);
  }
  EXPECT_EQ(log.dropped_events(), 12u);
}

TEST(EventLogTest, GlobalRingBoundsMergedJournal) {
  // Per-thread buffers are big enough to hold everything; the merged view
  // must still be capped to ring_events, keeping the newest.
  EventLog log(/*buffer_events=*/64, /*ring_events=*/16);
  for (uint64_t i = 0; i < 40; ++i) {
    log.Record(EventType::kTxnCommit, EventSeverity::kDebug, i);
  }
  std::vector<EventRecord> events;
  log.Snapshot(&events);
  ASSERT_EQ(events.size(), 16u);
  EXPECT_EQ(events.front().a, 24u);
  EXPECT_EQ(events.back().a, 39u);
}

TEST(EventLogTest, ThreadsGetDistinctTidsAndUniqueSeqs) {
  EventLog log(1024, 8192);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log] {
      for (int i = 0; i < kPerThread; ++i) {
        log.Record(EventType::kTxnBegin, EventSeverity::kDebug, 1);
      }
    });
  }
  for (auto& th : threads) th.join();

  std::vector<EventRecord> events;
  log.Snapshot(&events);
  ASSERT_EQ(events.size(),
            static_cast<size_t>(kThreads) * kPerThread);
  // Merged output is ascending and duplicate-free in seq.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].seq, events[i].seq);
  }
  EXPECT_EQ(log.dropped_events(), 0u);
}

TEST(EventLogTest, JsonIsWellFormedAndNamed) {
  LogicalClock clock;
  EventLog log(64, 256, &clock);
  log.Record(EventType::kGroupCommitBatch, EventSeverity::kInfo, 3, 4096, 17);
  log.Record(EventType::kPoison, EventSeverity::kError, 0, 0, 0,
             "wal: \"torn\"\n");

  std::vector<EventRecord> events;
  log.Snapshot(&events);
  const std::string json = EventLog::ToJson(events);
  std::string error;
  EXPECT_TRUE(testing::IsWellFormedJson(json, &error)) << error << "\n"
                                                       << json;
  EXPECT_NE(json.find("\"type\":\"group_commit_batch\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"severity\":\"error\""), std::string::npos) << json;
  // The detail's quote and newline must have been escaped.
  EXPECT_NE(json.find("wal: \\\"torn\\\"\\n"), std::string::npos) << json;
}

TEST(EventLogTest, BinaryRoundTrip) {
  LogicalClock clock;
  EventLog log(64, 256, &clock);
  log.Record(EventType::kTxnCommit, EventSeverity::kDebug, 7, 3, 950,
             "commit");
  log.Record(EventType::kVacuumStep, EventSeverity::kDebug, 2, 128, 5);
  std::vector<EventRecord> events;
  log.Snapshot(&events);

  std::string wire;
  EventLog::EncodeBinary(events, &wire);
  std::vector<EventRecord> decoded;
  ASSERT_TRUE(EventLog::DecodeBinary(wire, &decoded));
  ASSERT_EQ(decoded.size(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(decoded[i].seq, events[i].seq);
    EXPECT_EQ(decoded[i].ts_micros, events[i].ts_micros);
    EXPECT_EQ(decoded[i].a, events[i].a);
    EXPECT_EQ(decoded[i].b, events[i].b);
    EXPECT_EQ(decoded[i].c, events[i].c);
    EXPECT_EQ(decoded[i].type, events[i].type);
    EXPECT_EQ(decoded[i].severity, events[i].severity);
    EXPECT_EQ(decoded[i].tid, events[i].tid);
    EXPECT_STREQ(decoded[i].detail, events[i].detail);
  }
}

TEST(EventLogTest, BinaryDecodeRejectsGarbage) {
  std::vector<EventRecord> out;
  EXPECT_FALSE(EventLog::DecodeBinary("", &out));
  EXPECT_FALSE(EventLog::DecodeBinary("NOTJ\x01\x00\x00\x00", &out));

  EventLog log(64, 256);
  log.Record(EventType::kTxnBegin, EventSeverity::kDebug, 1);
  std::vector<EventRecord> events;
  log.Snapshot(&events);
  std::string wire;
  EventLog::EncodeBinary(events, &wire);
  // Truncated frame: header promises more records than the bytes hold.
  EXPECT_FALSE(
      EventLog::DecodeBinary(std::string_view(wire).substr(0, wire.size() - 1),
                             &out));
}

TEST(EventLogTest, TypeAndSeverityNamesAreStable) {
  EXPECT_STREQ(EventLog::TypeName(EventType::kTxnCommit), "txn_commit");
  EXPECT_STREQ(EventLog::TypeName(EventType::kFaultInjection),
               "fault_injection");
  EXPECT_STREQ(EventLog::SeverityName(EventSeverity::kWarn), "warn");
}

}  // namespace
}  // namespace ode
