#include "util/hash128.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace ode {
namespace {

TEST(Hash128Test, DeterministicAcrossCalls) {
  const std::string payload = "the quick brown fox jumps over the lazy dog";
  const Hash128 a = HashPayload128(Slice(payload));
  const Hash128 b = HashPayload128(Slice(payload));
  EXPECT_EQ(a, b);
}

TEST(Hash128Test, GoldenVectors) {
  // Pinned outputs: the hash keys PERSISTED index entries, so any change to
  // the function is a disk-format change and must fail loudly here.
  struct Vector {
    const char* input;
    uint64_t lo;
    uint64_t hi;
  };
  const Vector vectors[] = {
      {"", 0x94031e01d8b84f36ull, 0x07bb2ffd0801feb5ull},
      {"a", 0xab5865433c3bc62cull, 0x72a75dc52caac619ull},
      {"abc", 0x2dfcc3b4f21d252aull, 0x3fc96d020658f628ull},
      {"hello world", 0x6e4e6a950b4c0838ull, 0xda3924c9e0dafa6dull},
      {"The quick brown fox jumps over the lazy dog",
       0x298b39ff72199a66ull, 0x7ca6927c50acda7dull},
  };
  for (const Vector& v : vectors) {
    const Hash128 h = HashPayload128(Slice(v.input));
    EXPECT_EQ(h.lo, v.lo) << "input: \"" << v.input << "\"";
    EXPECT_EQ(h.hi, v.hi) << "input: \"" << v.input << "\"";
  }
}

TEST(Hash128Test, NeverReturnsZero) {
  // The zero hash is VersionMeta's "not content-addressed" sentinel; the
  // hash function maps any accidental all-zero digest away from it.
  EXPECT_FALSE(HashPayload128(Slice("")).IsZero());
  EXPECT_FALSE(HashPayload128(Slice("x")).IsZero());
  std::string zeros(4096, '\0');
  EXPECT_FALSE(HashPayload128(Slice(zeros)).IsZero());
}

TEST(Hash128Test, SmallPerturbationsChangeEverything) {
  std::string base(1024, 'q');
  const Hash128 h0 = HashPayload128(Slice(base));
  std::set<std::pair<uint64_t, uint64_t>> seen;
  seen.insert({h0.lo, h0.hi});
  for (size_t i = 0; i < base.size(); i += 37) {
    std::string flipped = base;
    flipped[i] ^= 1;
    const Hash128 h = HashPayload128(Slice(flipped));
    EXPECT_NE(h, h0) << "flip at " << i;
    EXPECT_TRUE(seen.insert({h.lo, h.hi}).second) << "collision at " << i;
  }
}

TEST(Hash128Test, LengthExtensionDistinct) {
  // Same prefix, different lengths must not collide (length is mixed into
  // the seed).
  const std::string payload(64, 'z');
  std::set<std::pair<uint64_t, uint64_t>> seen;
  for (size_t len = 0; len <= payload.size(); ++len) {
    const Hash128 h = HashPayload128(Slice(payload.data(), len));
    EXPECT_TRUE(seen.insert({h.lo, h.hi}).second) << "collision at len " << len;
  }
}

TEST(Hash128Test, EncodeDecodeRoundTrip) {
  const Hash128 h = HashPayload128(Slice("roundtrip"));
  const std::string encoded = h.Encode();
  ASSERT_EQ(encoded.size(), 16u);
  Hash128 decoded;
  ASSERT_TRUE(Hash128::Decode(Slice(encoded), &decoded));
  EXPECT_EQ(decoded, h);
  EXPECT_FALSE(Hash128::Decode(Slice("short"), &decoded));
}

TEST(Hash128Test, EncodedOrderMatchesComparison) {
  // The B+tree stores Encode() and orders by memcmp; operator< must agree so
  // in-memory reasoning about index order holds.
  const Hash128 a = HashPayload128(Slice("a"));
  const Hash128 b = HashPayload128(Slice("b"));
  EXPECT_EQ(a < b, a.Encode() < b.Encode());
  EXPECT_EQ(b < a, b.Encode() < a.Encode());
}

TEST(Hash128Test, ToHexIsStable) {
  const Hash128 h{0x0123456789abcdefull, 0xfedcba9876543210ull};
  EXPECT_EQ(h.ToHex(), "fedcba98765432100123456789abcdef");
}

}  // namespace
}  // namespace ode
