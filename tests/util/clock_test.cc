#include "util/clock.h"

#include <gtest/gtest.h>

namespace ode {
namespace {

TEST(LogicalClockTest, CountsFromStart) {
  LogicalClock clock;
  EXPECT_EQ(clock.Now(), 1u);
  EXPECT_EQ(clock.Now(), 2u);
  EXPECT_EQ(clock.Now(), 3u);
}

TEST(LogicalClockTest, CustomStart) {
  LogicalClock clock(100);
  EXPECT_EQ(clock.Now(), 101u);
}

TEST(LogicalClockTest, AdvanceToSkipsForward) {
  LogicalClock clock;
  clock.AdvanceTo(50);
  EXPECT_EQ(clock.Now(), 51u);
}

TEST(LogicalClockTest, AdvanceToNeverMovesBackward) {
  LogicalClock clock(100);
  clock.AdvanceTo(10);
  EXPECT_EQ(clock.Now(), 101u);
}

TEST(WallClockTest, StrictlyMonotone) {
  WallClock clock;
  uint64_t last = 0;
  for (int i = 0; i < 1000; ++i) {
    uint64_t now = clock.Now();
    EXPECT_GT(now, last);
    last = now;
  }
}

TEST(WallClockTest, RoughlyCurrentEpoch) {
  WallClock clock;
  // After 2020-01-01 and before 2100-01-01, in microseconds.
  const uint64_t t = clock.Now();
  EXPECT_GT(t, 1577836800ull * 1000000);
  EXPECT_LT(t, 4102444800ull * 1000000);
}

}  // namespace
}  // namespace ode
