#include "util/crc32c.h"

#include <gtest/gtest.h>

#include <string>

namespace ode {
namespace {

TEST(Crc32cTest, KnownVectors) {
  // Standard CRC-32C test vectors.
  EXPECT_EQ(crc32c::Value("", 0), 0x00000000u);
  EXPECT_EQ(crc32c::Value("123456789", 9), 0xe3069283u);
  const std::string zeros(32, '\0');
  EXPECT_EQ(crc32c::Value(zeros.data(), zeros.size()), 0x8a9136aau);
}

TEST(Crc32cTest, DifferentInputsDiffer) {
  EXPECT_NE(crc32c::Value("hello", 5), crc32c::Value("world", 5));
  EXPECT_NE(crc32c::Value("hello", 5), crc32c::Value("hello", 4));
}

TEST(Crc32cTest, ExtendMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  for (size_t split = 0; split <= data.size(); split += 7) {
    uint32_t partial = crc32c::Value(data.data(), split);
    uint32_t full = crc32c::Extend(partial, data.data() + split,
                                   data.size() - split);
    EXPECT_EQ(full, crc32c::Value(data.data(), data.size())) << split;
  }
}

TEST(Crc32cTest, MaskRoundTrip) {
  for (uint32_t crc : {0u, 1u, 0xdeadbeefu, 0xffffffffu,
                       crc32c::Value("abc", 3)}) {
    EXPECT_EQ(crc32c::Unmask(crc32c::Mask(crc)), crc);
  }
}

TEST(Crc32cTest, MaskChangesValue) {
  const uint32_t crc = crc32c::Value("data", 4);
  EXPECT_NE(crc32c::Mask(crc), crc);
}

TEST(Crc32cTest, SingleBitFlipDetected) {
  std::string data(128, 'a');
  const uint32_t original = crc32c::Value(data.data(), data.size());
  for (size_t i = 0; i < data.size(); i += 13) {
    std::string corrupted = data;
    corrupted[i] = static_cast<char>(corrupted[i] ^ 0x01);
    EXPECT_NE(crc32c::Value(corrupted.data(), corrupted.size()), original);
  }
}

}  // namespace
}  // namespace ode
