#include "util/byte_buffer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace ode {
namespace {

TEST(ByteBufferTest, ScalarRoundTrip) {
  BufferWriter w;
  w.WriteU8(0xab);
  w.WriteU16(0x1234);
  w.WriteU32(0xdeadbeef);
  w.WriteU64(0x0123456789abcdefull);
  w.WriteVarint32(300);
  w.WriteVarint64(1ull << 40);
  w.WriteBool(true);
  w.WriteBool(false);

  BufferReader r(w.slice());
  uint8_t u8;
  uint16_t u16;
  uint32_t u32;
  uint64_t u64;
  uint32_t v32;
  uint64_t v64;
  bool b1, b2;
  ASSERT_TRUE(r.ReadU8(&u8).ok());
  ASSERT_TRUE(r.ReadU16(&u16).ok());
  ASSERT_TRUE(r.ReadU32(&u32).ok());
  ASSERT_TRUE(r.ReadU64(&u64).ok());
  ASSERT_TRUE(r.ReadVarint32(&v32).ok());
  ASSERT_TRUE(r.ReadVarint64(&v64).ok());
  ASSERT_TRUE(r.ReadBool(&b1).ok());
  ASSERT_TRUE(r.ReadBool(&b2).ok());
  EXPECT_EQ(u8, 0xab);
  EXPECT_EQ(u16, 0x1234);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 0x0123456789abcdefull);
  EXPECT_EQ(v32, 300u);
  EXPECT_EQ(v64, 1ull << 40);
  EXPECT_TRUE(b1);
  EXPECT_FALSE(b2);
  EXPECT_TRUE(r.AtEnd());
}

TEST(ByteBufferTest, SignedZigZagRoundTrip) {
  for (int64_t v : {int64_t{0}, int64_t{-1}, int64_t{1}, int64_t{-1000000},
                    std::numeric_limits<int64_t>::min(),
                    std::numeric_limits<int64_t>::max()}) {
    BufferWriter w;
    w.WriteI64(v);
    BufferReader r(w.slice());
    int64_t decoded = 0;
    ASSERT_TRUE(r.ReadI64(&decoded).ok());
    EXPECT_EQ(decoded, v);
  }
}

TEST(ByteBufferTest, SmallNegativesEncodeSmall) {
  BufferWriter w;
  w.WriteI64(-2);
  EXPECT_LE(w.size(), 1u);
}

TEST(ByteBufferTest, DoubleRoundTrip) {
  for (double v : {0.0, -0.0, 3.141592653589793, -1e300, 1e-300,
                   std::numeric_limits<double>::infinity()}) {
    BufferWriter w;
    w.WriteDouble(v);
    BufferReader r(w.slice());
    double decoded = 0;
    ASSERT_TRUE(r.ReadDouble(&decoded).ok());
    EXPECT_EQ(decoded, v);
  }
}

TEST(ByteBufferTest, NanRoundTripsAsNan) {
  BufferWriter w;
  w.WriteDouble(std::nan(""));
  BufferReader r(w.slice());
  double decoded = 0;
  ASSERT_TRUE(r.ReadDouble(&decoded).ok());
  EXPECT_TRUE(std::isnan(decoded));
}

TEST(ByteBufferTest, StringRoundTrip) {
  BufferWriter w;
  w.WriteString(Slice("hello"));
  w.WriteString(Slice(""));
  w.WriteString(Slice(std::string(10000, 'z')));
  BufferReader r(w.slice());
  std::string a, b, c;
  ASSERT_TRUE(r.ReadString(&a).ok());
  ASSERT_TRUE(r.ReadString(&b).ok());
  ASSERT_TRUE(r.ReadString(&c).ok());
  EXPECT_EQ(a, "hello");
  EXPECT_EQ(b, "");
  EXPECT_EQ(c.size(), 10000u);
}

TEST(ByteBufferTest, StringViewAliasesInput) {
  BufferWriter w;
  w.WriteString(Slice("aliased"));
  const std::string& backing = w.data();
  BufferReader r{Slice(backing)};
  Slice view;
  ASSERT_TRUE(r.ReadStringView(&view).ok());
  EXPECT_GE(view.data(), backing.data());
  EXPECT_LT(view.data(), backing.data() + backing.size());
  EXPECT_EQ(view.ToString(), "aliased");
}

TEST(ByteBufferTest, RawBytes) {
  BufferWriter w;
  w.WriteRaw(Slice("abc"));
  w.WriteRaw(Slice("def"));
  BufferReader r(w.slice());
  Slice first;
  ASSERT_TRUE(r.ReadRaw(3, &first).ok());
  EXPECT_EQ(first.ToString(), "abc");
  EXPECT_EQ(r.rest().ToString(), "def");
}

TEST(ByteBufferTest, TruncationYieldsCorruption) {
  BufferWriter w;
  w.WriteU64(7);
  BufferReader r(Slice(w.data().data(), 4));  // Half the u64.
  uint64_t v = 0;
  Status s = r.ReadU64(&v);
  EXPECT_TRUE(s.IsCorruption());
}

TEST(ByteBufferTest, ReadPastEndOfStringFails) {
  BufferWriter w;
  w.WriteVarint64(100);  // Length prefix promising 100 bytes.
  BufferReader r(w.slice());
  std::string out;
  EXPECT_TRUE(r.ReadString(&out).IsCorruption());
}

TEST(ByteBufferTest, ClearAndRelease) {
  BufferWriter w;
  w.WriteU32(1);
  std::string released = w.Release();
  EXPECT_EQ(released.size(), 4u);
  w.WriteU8(9);
  EXPECT_EQ(w.size(), 1u);
  w.Clear();
  EXPECT_EQ(w.size(), 0u);
}

}  // namespace
}  // namespace ode
