#include "util/logging.h"

#include <gtest/gtest.h>

namespace ode {
namespace {

/// RAII guard restoring the global log level (tests share the process).
class LevelGuard {
 public:
  LevelGuard() : saved_(Logger::level()) {}
  ~LevelGuard() { Logger::set_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(LoggingTest, LevelRoundTrips) {
  LevelGuard guard;
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                         LogLevel::kError, LogLevel::kOff}) {
    Logger::set_level(level);
    EXPECT_EQ(Logger::level(), level);
  }
}

TEST(LoggingTest, SuppressedStatementsDoNotEvaluateOperands) {
  LevelGuard guard;
  Logger::set_level(LogLevel::kOff);
  int evaluations = 0;
  auto expensive = [&]() {
    ++evaluations;
    return "payload";
  };
  ODE_LOG_DEBUG << expensive();
  ODE_LOG_INFO << expensive();
  ODE_LOG_WARN << expensive();
  ODE_LOG_ERROR << expensive();
  EXPECT_EQ(evaluations, 0) << "stream operands must be lazily evaluated";
}

TEST(LoggingTest, EnabledStatementsEvaluateOperands) {
  LevelGuard guard;
  Logger::set_level(LogLevel::kError);
  int evaluations = 0;
  auto counted = [&]() {
    ++evaluations;
    return "";
  };
  ODE_LOG_WARN << counted();   // Below threshold: skipped.
  ODE_LOG_ERROR << counted();  // At threshold: evaluated (and printed).
  EXPECT_EQ(evaluations, 1);
}

TEST(LoggingTest, LogInsideUnbracedIfBindsCorrectly) {
  LevelGuard guard;
  Logger::set_level(LogLevel::kOff);
  // The macro must compose with dangling-else contexts.
  bool else_taken = false;
  if (false)
    ODE_LOG_ERROR << "never";
  else
    else_taken = true;
  EXPECT_TRUE(else_taken);
}

TEST(CheckMacroTest, PassingCheckIsANoop) {
  ODE_CHECK(1 + 1 == 2);
  SUCCEED();
}

}  // namespace
}  // namespace ode
